// Package sudc is a system-level design and total-cost-of-ownership (TCO)
// library for Space Microdatacenters (SµDCs) — satellites hosting
// server-class compute that processes low-Earth-orbit Earth-observation
// imagery in orbit. It reproduces, end to end, the models and experiments
// of "Architecting Space Microdatacenters: A System-level Approach"
// (HPCA 2025).
//
// The package is a facade over the internal model stack:
//
//   - physical sizing: orbits, solar power, active thermal control,
//     propulsion, attitude control, optical inter-satellite links;
//   - costing: an SSCM-style parametric CER model with NRE/RE split,
//     wraps, launch, and operations;
//   - workloads: the Table III Earth-observation application suite and
//     the CNNs behind it;
//   - architecture: an Eyeriss-like accelerator energy model with a
//     7168-point design-space exploration (Global / Per-Network /
//     Per-Layer systems);
//   - system studies: collaborative compute constellations, Wright's-law
//     distributed-vs-monolithic trades, overprovisioning availability,
//     and a discrete-event simulation of the constellation→ISL→SµDC
//     pipeline.
//
// Quickstart:
//
//	design, err := sudc.Design(sudc.Config(4 * sudc.Kilowatt))
//	breakdown, err := design.Cost()
//	fmt.Println(breakdown.TCO())
//
// Every table and figure of the paper's evaluation can be regenerated via
// Experiments / RunExperiment (see also cmd/experiments).
package sudc

import (
	"sudc/internal/core"
	"sudc/internal/experiments"
	"sudc/internal/sscm"
	"sudc/internal/units"
)

// Re-exported quantity types and helpers.
type (
	// Power is electrical power in watts.
	Power = units.Power
	// Dollars is cost in US dollars.
	Dollars = units.Dollars
	// Years is a mission duration in Julian years.
	Years = units.Years
	// DataRate is a channel capacity in bit/s.
	DataRate = units.DataRate
)

// Kilowatt is one kilowatt of electrical power.
const Kilowatt = units.Kilowatt

// KW returns a power of kw kilowatts.
func KW(kw float64) Power { return units.KW(kw) }

// Gbps returns a data rate of g gigabits per second.
func Gbps(g float64) DataRate { return units.GbpsOf(g) }

// SuDCConfig describes a SµDC to design and price; see core.Config for
// the full field list.
type SuDCConfig = core.Config

// SuDCDesign is a closed (mass-converged) physical SµDC design.
type SuDCDesign = core.Design

// CostBreakdown is a full NRE/RE cost estimate by subsystem.
type CostBreakdown = sscm.Breakdown

// Config returns the paper's reference SµDC configuration at the given
// compute power budget: RTX 3090 servers, CONDOR-class ISL auto-sized for
// the design workload, a 550 km orbit, five-year lifetime, and SSCM-SµDC
// costing. Adjust fields before calling Design.
func Config(computePower Power) SuDCConfig {
	return core.DefaultConfig(computePower)
}

// Design closes the physical design: a fixed-point iteration over the
// power/thermal/mass couplings that returns the converged satellite.
func Design(c SuDCConfig) (SuDCDesign, error) {
	return c.Build()
}

// TCO designs and prices the configuration, returning the first-unit
// total cost of ownership (all non-recurring + recurring cost).
func TCO(c SuDCConfig) (Dollars, error) {
	return c.TCO()
}

// Breakdown designs and prices the configuration, returning the full
// per-subsystem cost breakdown.
func Breakdown(c SuDCConfig) (CostBreakdown, error) {
	return c.Breakdown()
}

// Experiment is one paper exhibit (table or figure) that can be
// regenerated; Table is its printable result.
type (
	Experiment = experiments.Experiment
	Table      = experiments.Table
)

// Experiments returns every reproducible exhibit of the paper's
// evaluation, in paper order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment regenerates one exhibit by ID (e.g. "Figure 5",
// "Table III").
func RunExperiment(id string) (Table, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return Table{}, err
	}
	return e.Run()
}
