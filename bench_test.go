package sudc

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=. -benchmem). Each benchmark runs one exhibit
// end to end — physical design closure, costing, and table assembly — and
// prints the resulting rows once, so a bench run doubles as a full
// reproduction log. Paper-vs-measured values are recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sudc/internal/accel"
	"sudc/internal/degrade"
	"sudc/internal/dse"
	"sudc/internal/experiments"
	"sudc/internal/faults"
	"sudc/internal/netsim"
	"sudc/internal/obs"
	"sudc/internal/obs/slo"
	"sudc/internal/obs/trace"
	"sudc/internal/obs/window"
	"sudc/internal/par/partest"
	"sudc/internal/placement"
	"sudc/internal/reliability"
	"sudc/internal/topo"
	"sudc/internal/workload"
)

// printOnce prints each exhibit a single time per bench run, not once per
// benchmark iteration.
var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(id, true); !done {
		b.StopTimer()
		fmt.Printf("\n%s\n", tbl)
		b.StartTimer()
	}
}

func BenchmarkTableI(b *testing.B)   { benchExperiment(b, "Table I") }
func BenchmarkTableII(b *testing.B)  { benchExperiment(b, "Table II") }
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, "Table III") }
func BenchmarkFig3(b *testing.B)     { benchExperiment(b, "Figure 3") }
func BenchmarkFig4(b *testing.B)     { benchExperiment(b, "Figure 4") }
func BenchmarkFig5(b *testing.B)     { benchExperiment(b, "Figure 5") }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "Figure 6") }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "Figure 7") }
func BenchmarkFig8(b *testing.B)     { benchExperiment(b, "Figure 8") }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "Figure 9") }
func BenchmarkFig10(b *testing.B)    { benchExperiment(b, "Figure 10") }
func BenchmarkFig11(b *testing.B)    { benchExperiment(b, "Figure 11") }
func BenchmarkFig12(b *testing.B)    { benchExperiment(b, "Figure 12") }
func BenchmarkFig15(b *testing.B)    { benchExperiment(b, "Figure 15") }
func BenchmarkFig16(b *testing.B)    { benchExperiment(b, "Figure 16") }
func BenchmarkFig17(b *testing.B)    { benchExperiment(b, "Figure 17") }
func BenchmarkFig19(b *testing.B)    { benchExperiment(b, "Figure 19") }
func BenchmarkFig21(b *testing.B)    { benchExperiment(b, "Figure 21") }
func BenchmarkFig22(b *testing.B)    { benchExperiment(b, "Figure 22") }
func BenchmarkFig23(b *testing.B)    { benchExperiment(b, "Figure 23") }
func BenchmarkFig24(b *testing.B)    { benchExperiment(b, "Figure 24") }
func BenchmarkFig25(b *testing.B)    { benchExperiment(b, "Figure 25") }
func BenchmarkFig26(b *testing.B)    { benchExperiment(b, "Figure 26") }
func BenchmarkFig27(b *testing.B)    { benchExperiment(b, "Figure 27") }
func BenchmarkFig28(b *testing.B)    { benchExperiment(b, "Figure 28") }

// BenchmarkDesignClosure measures the core fixed-point design iteration
// alone — the hot path under every TCO query.
func BenchmarkDesignClosure(b *testing.B) {
	cfg := Config(4 * Kilowatt)
	for i := 0; i < b.N; i++ {
		if _, err := Design(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCO measures a full design + costing round trip.
func BenchmarkTCO(b *testing.B) {
	cfg := Config(4 * Kilowatt)
	for i := 0; i < b.N; i++ {
		if _, err := TCO(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks: the design-choice studies behind DESIGN.md.
func benchAblation(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.AblationByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(id, true); !done {
		b.StopTimer()
		fmt.Printf("\n%s\n", tbl)
		b.StartTimer()
	}
}

func BenchmarkAblationThermal(b *testing.B)     { benchAblation(b, "Ablation A1") }
func BenchmarkAblationPowerSource(b *testing.B) { benchAblation(b, "Ablation A2") }
func BenchmarkAblationThruster(b *testing.B)    { benchAblation(b, "Ablation A3") }
func BenchmarkAblationSolarCell(b *testing.B)   { benchAblation(b, "Ablation A4") }
func BenchmarkAblationISLLaw(b *testing.B)      { benchAblation(b, "Ablation A5") }
func BenchmarkAblationDecode(b *testing.B)      { benchAblation(b, "Ablation A6") }
func BenchmarkAblationBatchSize(b *testing.B)   { benchAblation(b, "Ablation A7") }

// BenchmarkDSE measures the full 7168-design exploration.
func BenchmarkDSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DSEResult(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkers are the scaling points tracked PR over PR.
var benchWorkers = []int{1, 2, 4, 8}

// BenchmarkDSEParallel measures the uncached 7168-design exploration at
// fixed worker counts, so the engine's scaling is visible in every bench
// run regardless of the machine's GOMAXPROCS.
func BenchmarkDSEParallel(b *testing.B) {
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			partest.WithDefaultWorkers(b, w)
			for i := 0; i < b.N; i++ {
				if _, err := dse.Explore(workload.Suite, accel.RTX3090Baseline); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonteCarloParallel measures the sharded reliability
// Monte-Carlo at fixed worker counts.
func BenchmarkMonteCarloParallel(b *testing.B) {
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			partest.WithDefaultWorkers(b, w)
			for i := 0; i < b.N; i++ {
				if _, _, err := reliability.Simulate(30, 10, 1.25, 200000, 42); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Extension benchmarks: studies beyond the paper's evaluation.
func benchExtension(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ExtensionByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		tbl, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(id, true); !done {
		b.StopTimer()
		fmt.Printf("\n%s\n", tbl)
		b.StartTimer()
	}
}

func BenchmarkExtFleetPlan(b *testing.B)      { benchExtension(b, "Extension E1") }
func BenchmarkExtMaintenance(b *testing.B)    { benchExtension(b, "Extension E2") }
func BenchmarkExtGEO(b *testing.B)            { benchExtension(b, "Extension E3") }
func BenchmarkExtPipelineTiming(b *testing.B) { benchExtension(b, "Extension E4") }

func BenchmarkExtBentPipe(b *testing.B) { benchExtension(b, "Extension E5") }

func BenchmarkExtTradeStudy(b *testing.B) { benchExtension(b, "Extension E6") }

func BenchmarkExtOverprovision(b *testing.B) { benchExtension(b, "Extension E7") }

// BenchmarkNetsim measures a fault-free 2-hour DES run of the default
// reference scenario — the baseline recorded in BENCH_netsim.json that
// fault-injection overhead is tracked against.
func BenchmarkNetsim(b *testing.B) {
	c := netsim.DefaultConfig(workload.Suite[0])
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimObserved is BenchmarkNetsim with a metrics registry
// attached — the overhead of full observability (series sampled every
// simulated minute, latency histogram, end-of-run counters) relative to
// the BENCH_netsim.json baseline; tracked in BENCH_obs.json with a <5%
// budget.
func BenchmarkNetsimObserved(b *testing.B) {
	c := netsim.DefaultConfig(workload.Suite[0])
	for i := 0; i < b.N; i++ {
		c.Obs = obs.New()
		if _, err := netsim.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimWindowed is BenchmarkNetsimObserved with tumbling
// 10-minute telemetry windows and the SLO engine enabled — the cost of
// per-window aggregation, watermark-ordered flushing, and burn-rate
// evaluation relative to the BENCH_obs.json observed baseline; tracked
// in BENCH_window.json with a <5% budget.
func BenchmarkNetsimWindowed(b *testing.B) {
	c := netsim.DefaultConfig(workload.Suite[0])
	sc := slo.DefaultConfig()
	for i := 0; i < b.N; i++ {
		c.Obs = obs.New()
		c.Window = 10 * time.Minute
		c.OnWindow = func(window.Window) {}
		c.SLO = &sc
		if _, err := netsim.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimTraced is BenchmarkNetsim with the frame-lineage
// flight recorder attached — the cost of remembering every frame's
// lifecycle, relative to the nil-recorder hot path (one nil check per
// lifecycle point, budgeted at <2% in BENCH_trace.json).
func BenchmarkNetsimTraced(b *testing.B) {
	c := netsim.DefaultConfig(workload.Suite[0])
	for i := 0; i < b.N; i++ {
		c.Trace = trace.New(0)
		if _, err := netsim.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimSharded measures a 1024-satellite Walker constellation
// (16 planes × 64 satellites, an SµDC every other plane, 200 ms
// inter-plane ISL) through the sharded conservative-lookahead runner at
// shard counts 1, 2, and 8. Results are byte-identical across shard
// counts; only wall time may differ, and only on multi-core machines.
// BENCH_shard.json gates the deterministic shards=1 cost and records
// the scaling medians.
func BenchmarkNetsimSharded(b *testing.B) {
	g, err := topo.Walker(16, 64, 33, 2, 200*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := netsim.TopologyConfig(workload.Suite[0], g)
			c.Duration = time.Hour
			c.Shards = shards
			for i := 0; i < b.N; i++ {
				if _, err := netsim.Run(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNetsimSharded4k measures the synchronizer at constellation
// scale: a 4096-satellite Walker (64 planes × 64 satellites, an SµDC
// every other plane — 64 cells) over a 10-minute horizon. At this size
// the per-round machinery itself is on the hook: the tournament tree
// replaces what would be two 64-cell scans per round, and the active
// set skips the drained cells. BENCH_shard.json gates the result via
// the sharded4k_ns_per_op auxiliary field.
func BenchmarkNetsimSharded4k(b *testing.B) {
	g, err := topo.Walker(64, 64, 33, 2, 200*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	c := netsim.TopologyConfig(workload.Suite[0], g)
	c.Duration = 10 * time.Minute
	c.Shards = 1
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimFaulted measures the same run with every fault process
// active.
// BenchmarkNetsimDegraded is BenchmarkNetsimFaulted with the full-
// severity COTS degradation schedule layered on top: thermal
// throttling in sunlight, the eclipse brownout with worker re-dispatch,
// and the temperature-modulated SEFI stream. The baseline lives in
// BENCH_degrade.json; the CI gate also pins the disabled-path overhead
// (BenchmarkNetsim is unchanged by the nil fast path).
func BenchmarkNetsimDegraded(b *testing.B) {
	c := netsim.DefaultConfig(workload.Suite[0])
	c.Faults = faults.Scenario{
		NodeMTTF:          8 * time.Hour,
		SEFIMTBE:          30 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	p := degrade.COTSProfile(1)
	c.Degrade = &p
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimPlaced measures the four-tier compute-placement engine
// on the reference run: the queue-aware policy routes every frame
// across onboard / SµDC / ground-edge / cloud with live per-tier queue
// accounting. The baseline lives in BENCH_placement.json; the
// placement-disabled path stays under the BENCH_netsim.json gate, since
// BenchmarkNetsim runs with no placement config at all.
func BenchmarkNetsimPlaced(b *testing.B) {
	c := netsim.DefaultConfig(workload.Suite[0])
	scen := placement.DefaultScenario(workload.Suite[0])
	pc, err := scen.Config(placement.Policy{Kind: placement.QueueAware})
	if err != nil {
		b.Fatal(err)
	}
	c.Placement = pc
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimFaulted(b *testing.B) {
	c := netsim.DefaultConfig(workload.Suite[0])
	c.Faults = faults.Scenario{
		NodeMTTF:          8 * time.Hour,
		SEFIMTBE:          30 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}
