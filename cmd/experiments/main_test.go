package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sudc/internal/obs/trace"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestList(t *testing.T) {
	out := runCmd(t, "-list")
	for _, want := range []string{"Table III", "Figure 5", "Ablation A1", "Extension E5"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q", want)
		}
	}
	// -list must not actually run anything (fast, no tables).
	if strings.Contains(out, "---") {
		t.Error("-list should not render tables")
	}
}

func TestOnly(t *testing.T) {
	out := runCmd(t, "-only", "Figure 12")
	if !strings.Contains(out, "Figure 12") || !strings.Contains(out, "45 °C") {
		t.Errorf("Figure 12 output malformed:\n%s", out)
	}
	if strings.Contains(out, "Figure 5 —") {
		t.Error("-only must run a single exhibit")
	}
	// -only reaches ablations and extensions too.
	out = runCmd(t, "-only", "Ablation A3")
	if !strings.Contains(out, "gridded ion") {
		t.Error("-only must reach ablations")
	}
}

func TestOnlyUnknown(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "Figure 99"}, &b); err == nil {
		t.Error("unknown exhibit must error")
	}
}

func TestAblationsFlag(t *testing.T) {
	out := runCmd(t, "-ablations")
	if !strings.Contains(out, "Ablation A1") || !strings.Contains(out, "Ablation A7") {
		t.Error("-ablations must run all ablation studies")
	}
	if strings.Contains(out, "Figure 5 —") {
		t.Error("-ablations must not run paper exhibits")
	}
}

func TestParallelGoldenOutput(t *testing.T) {
	// -parallel must render byte-identical output to the serial run, for
	// any worker count, across paper exhibits and extensions alike.
	serial := runCmd(t)
	for _, w := range []string{"1", "2", "8"} {
		got := runCmd(t, "-parallel", "-workers", w)
		if got != serial {
			t.Errorf("-parallel -workers %s output differs from serial run", w)
		}
	}
	serialExt := runCmd(t, "-extensions")
	if got := runCmd(t, "-extensions", "-parallel"); got != serialExt {
		t.Error("-extensions -parallel output differs from serial run")
	}
}

func TestMetricsFlagSerial(t *testing.T) {
	out := runCmd(t, "-only", "Figure 12", "-metrics")
	for _, want := range []string{
		"metrics:",
		"span experiments/Figure 12 count=1",
		"wall_ms=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsFlagParallelRecordsEngine(t *testing.T) {
	out := runCmd(t, "-only", "Figure 12", "-parallel", "-metrics")
	for _, want := range []string{
		"counter experiments/exhibits 1",
		"counter par/runs",
		"counter par/items",
		"span experiments/Figure 12 count=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-parallel -metrics output missing %q:\n%s", want, out)
		}
	}
	// The observer must be uninstalled on return: a later run without
	// -metrics prints no metrics section.
	if plain := runCmd(t, "-only", "Figure 12"); strings.Contains(plain, "metrics:") {
		t.Error("metrics must be opt-in per invocation")
	}
}

func TestTraceFlag(t *testing.T) {
	out := runCmd(t, "-only", "Figure 12", "-trace")
	if !strings.Contains(out, "trace experiments/Figure 12 wall=") {
		t.Errorf("-trace must stream the exhibit span:\n%s", out)
	}
	if strings.Contains(out, "metrics:") {
		t.Error("-trace alone must not append the snapshot")
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Error("unknown flag must error")
	}
}

func TestTraceOutRecordsExhibitSpans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	out := runCmd(t, "-only", "Table III", "-trace-out", path)
	if !strings.Contains(out, "trace: wrote") {
		t.Errorf("-trace-out must confirm the write:\n%s", out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := trace.DecodeJSONL(f)
	if err != nil {
		t.Fatalf("written trace does not decode: %v", err)
	}
	var found bool
	for _, e := range rec.Events() {
		if e.Kind == trace.SpanDone && e.Name == "experiments/Table III" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace missing the exhibit span; %d events", rec.Len())
	}
}
