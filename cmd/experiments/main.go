// Command experiments regenerates the paper's evaluation: every table and
// figure, printed as text tables.
//
// Usage:
//
//	experiments             # run all paper exhibits
//	experiments -list       # list exhibit IDs
//	experiments -only "Figure 5"
//	experiments -ablations  # run the design-choice ablation studies
//	experiments -extensions # run the beyond-the-paper extension studies
//	experiments -parallel   # run independent exhibits concurrently
//	experiments -parallel -workers 4
//
// -parallel produces byte-identical output to a serial run for any
// worker count; only wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sudc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	list := fs.Bool("list", false, "list exhibit IDs and exit")
	only := fs.String("only", "", "run a single exhibit by ID (e.g. \"Figure 5\")")
	ablations := fs.Bool("ablations", false, "run the design-choice ablation studies instead")
	extensions := fs.Bool("extensions", false, "run the beyond-the-paper extension studies instead")
	parallel := fs.Bool("parallel", false, "run independent exhibits concurrently (identical output)")
	workers := fs.Int("workers", 0, "worker count for -parallel (default GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	everything := append(append(experiments.All(), experiments.Ablations()...),
		experiments.Extensions()...)

	if *list {
		for _, e := range everything {
			fmt.Fprintf(out, "%-13s %s\n", e.ID, e.Name)
		}
		return nil
	}

	toRun := experiments.All()
	switch {
	case *ablations:
		toRun = experiments.Ablations()
	case *extensions:
		toRun = experiments.Extensions()
	}
	if *only != "" {
		toRun = nil
		for _, e := range everything {
			if strings.EqualFold(e.ID, *only) {
				toRun = []experiments.Experiment{e}
				break
			}
		}
		if toRun == nil {
			return fmt.Errorf("unknown exhibit %q", *only)
		}
	}

	if *parallel {
		// Collect every table before printing so output is byte-identical
		// to the serial path regardless of completion order.
		tables, err := experiments.RunAll(toRun, *workers)
		if err != nil {
			return err
		}
		for _, tbl := range tables {
			fmt.Fprintln(out, tbl)
		}
		return nil
	}
	for _, e := range toRun {
		tbl, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(out, tbl)
	}
	return nil
}
