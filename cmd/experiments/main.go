// Command experiments regenerates the paper's evaluation: every table and
// figure, printed as text tables.
//
// Usage:
//
//	experiments             # run all paper exhibits
//	experiments -list       # list exhibit IDs
//	experiments -only "Figure 5"
//	experiments -ablations  # run the design-choice ablation studies
//	experiments -extensions # run the beyond-the-paper extension studies
//	experiments -parallel   # run independent exhibits concurrently
//	experiments -parallel -workers 4
//	experiments -metrics    # append per-exhibit timing + engine metrics
//	experiments -trace      # stream span trace lines as exhibits finish
//	experiments -trace-out f.jsonl  # record span events as JSONL (sudcmon -load)
//	experiments -pprof localhost:6060
//
// -parallel produces byte-identical output to a serial run for any
// worker count; only wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sudc/internal/experiments"
	"sudc/internal/obs"
	"sudc/internal/obs/trace"
	"sudc/internal/par"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	list := fs.Bool("list", false, "list exhibit IDs and exit")
	only := fs.String("only", "", "run a single exhibit by ID (e.g. \"Figure 5\")")
	ablations := fs.Bool("ablations", false, "run the design-choice ablation studies instead")
	extensions := fs.Bool("extensions", false, "run the beyond-the-paper extension studies instead")
	parallel := fs.Bool("parallel", false, "run independent exhibits concurrently (identical output)")
	workers := fs.Int("workers", 0, "worker count for -parallel (default GOMAXPROCS)")
	metrics := fs.Bool("metrics", false, "append per-exhibit timing and engine metrics")
	traceSpans := fs.Bool("trace", false, "stream span trace lines as exhibits finish")
	traceOut := fs.String("trace-out", "", "record span events to this JSONL file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reg *obs.Registry
	if *metrics || *traceSpans || *traceOut != "" || *pprofAddr != "" {
		reg = obs.New()
		if *traceSpans {
			reg.SetTraceWriter(out)
		}
		// The DSE behind Figure 17 and the parallel engine report through
		// process-wide hooks; uninstall them on return so run() stays
		// reusable (tests call it repeatedly in one process).
		obs.SetGlobal(reg)
		defer obs.SetGlobal(nil)
		par.SetObserver(obs.NewEngineMetrics(reg.Scope("par")))
		defer par.SetObserver(nil)
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New(0)
		reg.SetSpanSink(rec)
	}
	if *pprofAddr != "" {
		addr, err := obs.StartPprof(*pprofAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "pprof: serving on http://%s/debug/pprof/\n", addr)
	}

	everything := append(append(experiments.All(), experiments.Ablations()...),
		experiments.Extensions()...)

	if *list {
		for _, e := range everything {
			fmt.Fprintf(out, "%-13s %s\n", e.ID, e.Name)
		}
		return nil
	}

	toRun := experiments.All()
	switch {
	case *ablations:
		toRun = experiments.Ablations()
	case *extensions:
		toRun = experiments.Extensions()
	}
	if *only != "" {
		toRun = nil
		for _, e := range everything {
			if strings.EqualFold(e.ID, *only) {
				toRun = []experiments.Experiment{e}
				break
			}
		}
		if toRun == nil {
			return fmt.Errorf("unknown exhibit %q", *only)
		}
	}

	if *parallel {
		// Collect every table before printing so output is byte-identical
		// to the serial path regardless of completion order.
		tables, err := experiments.RunAllObserved(toRun, *workers, reg)
		if err != nil {
			return err
		}
		for _, tbl := range tables {
			fmt.Fprintln(out, tbl)
		}
		if err := printMetrics(out, *metrics, reg); err != nil {
			return err
		}
		return writeTrace(out, rec, *traceOut)
	}
	for _, e := range toRun {
		sp := reg.StartSpan("experiments/" + e.ID)
		tbl, err := e.Run()
		sp.End()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(out, tbl)
	}
	if err := printMetrics(out, *metrics, reg); err != nil {
		return err
	}
	return writeTrace(out, rec, *traceOut)
}

// writeTrace dumps the span recording as JSONL when -trace-out is set.
func writeTrace(out io.Writer, rec *trace.Recorder, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "trace: wrote %d events to %s\n", rec.TotalLen(), path)
	return nil
}

// printMetrics appends the registry snapshot to the report when -metrics
// is set. Wall-clock span durations are included: this output is for
// humans, not golden files.
func printMetrics(out io.Writer, enabled bool, reg *obs.Registry) error {
	if !enabled {
		return nil
	}
	_, err := fmt.Fprintf(out, "metrics:\n%s", reg.Snapshot(obs.WithWall()).String())
	return err
}
