package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sudc/internal/obs/trace"
)

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestDefaultRun(t *testing.T) {
	out := runTool(t)
	for _, want := range []string{
		"4 kW compute", "RTX 3090", "Mass budget", "Cost breakdown",
		"first-unit TCO", "power", "structure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Default is a single unit: no Wright's-law line.
	if strings.Contains(out, "-unit run") {
		t.Error("single-unit run must not print production pricing")
	}
}

func TestDeviceSelection(t *testing.T) {
	out := runTool(t, "-device", "H100", "-power", "10")
	if !strings.Contains(out, "H100") || !strings.Contains(out, "10 kW compute") {
		t.Errorf("H100/10kW not reflected in output:\n%s", out)
	}
}

func TestUnknownDevice(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-device", "TPUv9"}, &b); err == nil {
		t.Error("unknown device must error")
	}
}

func TestCompressionFlag(t *testing.T) {
	plain := runTool(t)
	compressed := runTool(t, "-compress", "neural")
	// Neural compression shrinks the installed ISL from ~26 to ~6.6 Gbit/s.
	if !strings.Contains(compressed, "6.55 Gbit/s") {
		t.Errorf("neural compression not reflected:\n%s", compressed)
	}
	if plain == compressed {
		t.Error("compression must change the design")
	}
	var b strings.Builder
	if err := run([]string{"-compress", "zip"}, &b); err == nil {
		t.Error("unknown compression must error")
	}
}

func TestNoISL(t *testing.T) {
	out := runTool(t, "-no-isl")
	if !strings.Contains(out, "0 optical heads") {
		t.Errorf("no-isl must install no heads:\n%s", out)
	}
}

func TestSeerModel(t *testing.T) {
	out := runTool(t, "-seer")
	if !strings.Contains(out, "SEER-like") {
		t.Error("SEER parameter set not used")
	}
}

func TestProductionRun(t *testing.T) {
	out := runTool(t, "-units", "50")
	if !strings.Contains(out, "50-unit run (b=0.75)") {
		t.Errorf("production pricing missing:\n%s", out)
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nonsense"}, &b); err == nil {
		t.Error("unknown flag must error")
	}
}

func TestInvalidPower(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-power", "0"}, &b); err == nil {
		t.Error("zero power must error")
	}
}

func TestMetricsFlag(t *testing.T) {
	out := runTool(t, "-metrics")
	for _, want := range []string{
		"metrics:",
		"gauge design/wet_mass_kg",
		"gauge design/eol_power_w",
		"span sudctool/build count=1",
		"span sudctool/cost count=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out)
		}
	}
	if plain := runTool(t); strings.Contains(plain, "metrics:") {
		t.Error("metrics must be opt-in")
	}
}

func TestTraceFlag(t *testing.T) {
	out := runTool(t, "-trace")
	if !strings.Contains(out, "trace sudctool/build wall=") ||
		!strings.Contains(out, "trace sudctool/cost wall=") {
		t.Errorf("-trace must stream build and cost spans:\n%s", out)
	}
}

func TestBadPprofAddr(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-pprof", "not-an-address"}, &b); err == nil {
		t.Error("unbindable pprof address must error")
	}
}

func TestJSONOutput(t *testing.T) {
	out := runTool(t, "-json")
	var report map[string]any
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if report["compute_power_w"] != 4000.0 {
		t.Errorf("compute_power_w = %v", report["compute_power_w"])
	}
	cost, ok := report["cost_breakdown"].(map[string]any)
	if !ok {
		t.Fatal("missing cost_breakdown")
	}
	if cost["tco_usd"].(float64) <= 0 {
		t.Error("non-positive TCO in JSON")
	}
	if len(report["mass_budget"].([]any)) != 10 {
		t.Error("mass budget rows missing")
	}
}

func TestTraceOutRecordsSpans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	out := runTool(t, "-trace-out", path)
	if !strings.Contains(out, "trace: wrote") {
		t.Errorf("-trace-out must confirm the write:\n%s", out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := trace.DecodeJSONL(f)
	if err != nil {
		t.Fatalf("written trace does not decode: %v", err)
	}
	names := map[string]bool{}
	for _, e := range rec.Events() {
		if e.Kind != trace.SpanDone {
			t.Errorf("sudctool trace must hold only span events, got %v", e.Kind)
		}
		names[e.Name] = true
	}
	if !names["sudctool/build"] || !names["sudctool/cost"] {
		t.Errorf("span trace missing stages, got %v", names)
	}
}
