// Command sudctool designs and prices a Space Microdatacenter from the
// command line: it closes the physical design (power, thermal, mass,
// propulsion) for a given compute budget and prints the mass budget and
// the SSCM-SµDC cost breakdown.
//
// Usage:
//
//	sudctool [flags]
//
//	-power kW        compute power budget in kW (default 4)
//	-lifetime years  mission lifetime (default 5)
//	-device name     compute device: "RTX 3090", "A100", "H100" (default RTX 3090)
//	-isl gbps        ISL capacity in Gbit/s (0 = auto-size for workload)
//	-no-isl          build without an inter-satellite link
//	-compress name   compression: none, ccsds, jpeg2000, neural
//	-altitude km     orbit altitude (default 550)
//	-seer            price with the SEER-like parameter set instead
//	-units n         also price a production run of n units (Wright b=0.75)
//	-json            emit a machine-readable JSON report instead of text
//	-metrics         append design/cost gauges and stage timings
//	-trace           stream span trace lines as stages complete
//	-trace-out file  record span events to a JSONL file (sudcmon -load)
//	-pprof addr      serve net/http/pprof and /metrics on addr
//	                 (e.g. localhost:6060)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sudc/internal/compress"
	"sudc/internal/core"
	"sudc/internal/hardware"
	"sudc/internal/obs"
	"sudc/internal/obs/trace"
	"sudc/internal/orbit"
	"sudc/internal/sscm"
	"sudc/internal/units"
	"sudc/internal/wright"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sudctool:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sudctool", flag.ContinueOnError)
	fs.SetOutput(out)
	powerKW := fs.Float64("power", 4, "compute power budget in kW")
	lifetime := fs.Float64("lifetime", 5, "mission lifetime in years")
	device := fs.String("device", "RTX 3090", "compute device from the Table II catalog")
	islGbps := fs.Float64("isl", 0, "ISL capacity in Gbit/s (0 = auto)")
	noISL := fs.Bool("no-isl", false, "build without an inter-satellite link")
	compression := fs.String("compress", "none", "compression: none, ccsds, jpeg2000, neural")
	altitudeKM := fs.Float64("altitude", 550, "orbit altitude in km")
	seer := fs.Bool("seer", false, "use the SEER-like cost parameter set")
	nUnits := fs.Int("units", 1, "production run length for Wright's-law pricing")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON report")
	metrics := fs.Bool("metrics", false, "append design/cost gauges and stage timings")
	traceSpans := fs.Bool("trace", false, "stream span trace lines as stages complete")
	traceOut := fs.String("trace-out", "", "record span events to this JSONL file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reg *obs.Registry
	if *metrics || *traceSpans || *traceOut != "" || *pprofAddr != "" {
		reg = obs.New()
		if *traceSpans {
			reg.SetTraceWriter(out)
		}
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New(0)
		reg.SetSpanSink(rec)
	}
	if *pprofAddr != "" {
		addr, err := obs.StartPprof(*pprofAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "pprof: serving on http://%s/debug/pprof/\n", addr)
	}

	cfg := core.DefaultConfig(units.KW(*powerKW))
	cfg.Lifetime = units.Years(*lifetime)
	cfg.Orbit = orbit.LEO(*altitudeKM * 1e3)
	cfg.ISLRate = units.GbpsOf(*islGbps)
	cfg.OmitISL = *noISL
	dev, err := hardware.ByName(*device)
	if err != nil {
		return err
	}
	cfg.Server = hardware.DefaultServer(dev)
	switch strings.ToLower(*compression) {
	case "", "none":
	case "ccsds":
		cfg.Compression = compress.CCSDS
	case "jpeg2000":
		cfg.Compression = compress.JPEG2000
	case "neural":
		cfg.Compression = compress.Neural
	default:
		return fmt.Errorf("unknown compression %q", *compression)
	}
	if *seer {
		cfg.CostModel = sscm.Alt()
	}

	sp := reg.StartSpan("sudctool/build")
	d, err := cfg.Build()
	sp.End()
	if err != nil {
		return err
	}
	reg.Gauge("design/wet_mass_kg").Set(d.WetMass.Kilograms())
	reg.Gauge("design/dry_mass_kg").Set(d.DryMass.Kilograms())
	reg.Gauge("design/eol_power_w").Set(float64(d.EOLPower))
	reg.Gauge("design/radiator_m2").Set(d.Thermal.Area.SquareMeters())

	if *asJSON {
		if err := writeJSON(out, cfg, d); err != nil {
			return err
		}
		if err := printMetrics(out, *metrics, reg); err != nil {
			return err
		}
		return writeTrace(out, rec, *traceOut)
	}

	fmt.Fprintf(out, "SµDC design — %s compute (%s), %s, %v lifetime\n\n",
		cfg.ComputePower, dev.Name, cfg.Orbit, cfg.Lifetime)
	fmt.Fprintf(out, "  ISL capacity        %v (%d optical heads, %v)\n",
		d.InstalledISLRate, d.ISL.Heads, d.ISL.Power)
	fmt.Fprintf(out, "  EOL system power    %v\n", d.EOLPower)
	fmt.Fprintf(out, "  BOL array power     %v (%.1f m² array)\n",
		units.Power(d.Drivers.BOLPower), d.EPS.ArrayArea.SquareMeters())
	fmt.Fprintf(out, "  radiator            %.1f m² at %v\n",
		d.Thermal.Area.SquareMeters(), cfg.Radiator.Temperature)
	fmt.Fprintf(out, "  heat pump power     %v\n", d.Thermal.PumpPower)
	fmt.Fprintf(out, "\nMass budget (wet %s):\n", d.WetMass)
	for _, it := range d.MassBreakdown() {
		fmt.Fprintf(out, "  %-16s %8.1f kg  (%4.1f%%)\n",
			it.Name, it.Mass.Kilograms(), 100*float64(it.Mass)/float64(d.WetMass))
	}

	sp = reg.StartSpan("sudctool/cost")
	b, err := d.Cost()
	sp.End()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nCost breakdown (%s):\n", cfg.CostModel.Name)
	for _, it := range b.SortedItems() {
		fmt.Fprintf(out, "  %-16s NRE %10s  RE %10s  (%4.1f%%)\n",
			it.Subsystem, it.Cost.NRE, it.Cost.RE, 100*b.Share(it.Subsystem))
	}
	tot := b.Total()
	fmt.Fprintf(out, "\n  first-unit TCO    %s  (NRE %s + RE %s)\n", b.TCO(), tot.NRE, tot.RE)

	if *nUnits > 1 {
		cum, err := wright.DefaultAerospace.CumulativeCost(tot.RE, *nUnits)
		if err != nil {
			return err
		}
		last, _ := wright.DefaultAerospace.UnitCost(tot.RE, *nUnits)
		fmt.Fprintf(out, "  %d-unit run (b=0.75): total %s, marginal unit %s\n",
			*nUnits, tot.NRE+cum, last)
	}
	if err := printMetrics(out, *metrics, reg); err != nil {
		return err
	}
	return writeTrace(out, rec, *traceOut)
}

// writeTrace dumps the span recording as JSONL when -trace-out is set.
func writeTrace(out io.Writer, rec *trace.Recorder, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\ntrace: wrote %d events to %s\n", rec.TotalLen(), path)
	return nil
}

// printMetrics appends the registry snapshot when -metrics is set. Wall
// span durations are included: this output is for humans, not goldens.
func printMetrics(out io.Writer, enabled bool, reg *obs.Registry) error {
	if !enabled {
		return nil
	}
	_, err := fmt.Fprintf(out, "\nmetrics:\n%s", reg.Snapshot(obs.WithWall()).String())
	return err
}

// jsonReport is the machine-readable output of -json.
type jsonReport struct {
	ComputePowerW float64         `json:"compute_power_w"`
	Device        string          `json:"device"`
	LifetimeYears float64         `json:"lifetime_years"`
	ISLRateBps    float64         `json:"isl_rate_bps"`
	EOLPowerW     float64         `json:"eol_power_w"`
	BOLPowerW     float64         `json:"bol_power_w"`
	RadiatorM2    float64         `json:"radiator_m2"`
	DryMassKg     float64         `json:"dry_mass_kg"`
	WetMassKg     float64         `json:"wet_mass_kg"`
	Mass          []jsonMassRow   `json:"mass_budget"`
	Cost          *sscm.Breakdown `json:"cost_breakdown"`
}

type jsonMassRow struct {
	Name   string  `json:"name"`
	MassKg float64 `json:"mass_kg"`
}

func writeJSON(out io.Writer, cfg core.Config, d core.Design) error {
	b, err := d.Cost()
	if err != nil {
		return err
	}
	r := jsonReport{
		ComputePowerW: float64(cfg.ComputePower),
		Device:        cfg.Server.Device.Name,
		LifetimeYears: float64(cfg.Lifetime),
		ISLRateBps:    float64(d.InstalledISLRate),
		EOLPowerW:     float64(d.EOLPower),
		BOLPowerW:     d.Drivers.BOLPower,
		RadiatorM2:    d.Thermal.Area.SquareMeters(),
		DryMassKg:     d.DryMass.Kilograms(),
		WetMassKg:     d.WetMass.Kilograms(),
		Cost:          &b,
	}
	for _, it := range d.MassBreakdown() {
		r.Mass = append(r.Mass, jsonMassRow{Name: it.Name, MassKg: it.Mass.Kilograms()})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
