package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report output")

const oldBench = `goos: linux
goarch: amd64
pkg: sudc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNetsim-8         	      20	  30000000 ns/op	17517078 B/op	  270657 allocs/op
BenchmarkNetsim-8         	      20	  29800000 ns/op	17517078 B/op	  270657 allocs/op
BenchmarkNetsim-8         	      20	  30400000 ns/op	17517078 B/op	  270657 allocs/op
BenchmarkNetsimObserved-8 	      20	  31000000 ns/op
BenchmarkParOverhead/workers=4/items=65536-8 	    5000	  224000 ns/op	 3.4 ns/item
PASS
`

const newBenchPass = `goos: linux
BenchmarkNetsim-8         	      20	  15700000 ns/op	  179296 B/op	      67 allocs/op
BenchmarkNetsimObserved-8 	      20	  31100000 ns/op
BenchmarkParOverhead/workers=4/items=65536-8 	    5000	  220000 ns/op	 3.3 ns/item
BenchmarkExtra-8          	      10	   1000000 ns/op
PASS
`

const newBenchFail = `BenchmarkNetsim-8         	      20	  36000000 ns/op
BenchmarkParOverhead/workers=4/items=65536-8 	    5000	  220000 ns/op
PASS
`

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGoldenPassReport pins the two-file comparison format byte-exact:
// medians over repeated runs, name-sorted rows, the no-baseline note,
// and the PASS verdict line.
func TestGoldenPassReport(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.txt", oldBench)
	newPath := writeFile(t, dir, "new.txt", newBenchPass)
	var out, errOut strings.Builder
	if code := run([]string{"-threshold", "10", oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	checkGolden(t, "report_pass.golden", out.String())
}

// TestGoldenFailReport pins the regression format: the REGRESSION mark,
// the MISSING row for a baseline benchmark absent from the input, and
// the FAIL verdict with exit code 1.
func TestGoldenFailReport(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.txt", oldBench)
	newPath := writeFile(t, dir, "new.txt", newBenchFail)
	var out, errOut strings.Builder
	if code := run([]string{"-threshold", "10", oldPath, newPath}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	checkGolden(t, "report_fail.golden", out.String())
}

// TestBaselineMode compares bench output against the repo's BENCH_*.json
// schema: {"benchmark": ..., "ns_per_op": ...} plus narrative fields the
// tool ignores.
func TestBaselineMode(t *testing.T) {
	dir := t.TempDir()
	basePath := writeFile(t, dir, "BENCH_x.json", `{
  "benchmark": "BenchmarkNetsim",
  "scenario": "ignored narrative",
  "ns_per_op": 15700000,
  "prior_ns_per_op": 29800000
}`)
	newPath := writeFile(t, dir, "new.txt",
		"BenchmarkNetsim-8 20 16000000 ns/op\nPASS\n")
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", basePath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "PASS: 1 benchmarks within 10.0%") {
		t.Errorf("unexpected report:\n%s", out.String())
	}

	// The same baseline fails once the input regresses past the threshold.
	slowPath := writeFile(t, dir, "slow.txt",
		"BenchmarkNetsim-8 20 18000000 ns/op\nPASS\n")
	out.Reset()
	if code := run([]string{"-baseline", basePath, slowPath}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report missing REGRESSION mark:\n%s", out.String())
	}
}

// TestRepoBaselinesParse guards the checked-in BENCH_*.json files: each
// must carry the benchmark name and ns_per_op benchdiff keys, and any
// aux_gates must resolve against the file's own fields.
func TestRepoBaselinesParse(t *testing.T) {
	for _, name := range []string{"BENCH_netsim.json", "BENCH_obs.json", "BENCH_trace.json", "BENCH_par.json", "BENCH_shard.json"} {
		b, err := readBaseline(filepath.Join("..", "..", name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !strings.HasPrefix(b.Benchmark, "Benchmark") {
			t.Errorf("%s: benchmark %q does not name a Go benchmark", name, b.Benchmark)
		}
	}
	// BENCH_shard.json gates the whole sharded family through aux_gates.
	b, err := readBaseline(filepath.Join("..", "..", "BENCH_shard.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BenchmarkNetsimSharded/shards=2",
		"BenchmarkNetsimSharded/shards=8",
		"BenchmarkNetsimSharded4k",
	} {
		if b.aux[want] <= 0 {
			t.Errorf("BENCH_shard.json: aux gate %q unresolved (aux %v)", want, b.aux)
		}
	}
}

// TestAuxGateBaseline pins the aux_gates expansion: one baseline file
// gates its sibling benchmarks, regressions in an aux benchmark fail
// the run, and dangling field references are usage errors.
func TestAuxGateBaseline(t *testing.T) {
	dir := t.TempDir()
	basePath := writeFile(t, dir, "BENCH_aux.json", `{
  "benchmark": "BenchmarkSharded/shards=1",
  "ns_per_op": 1000,
  "shards8_ns_per_op": 1200,
  "aux_gates": {"BenchmarkSharded/shards=8": "shards8_ns_per_op"}
}`)
	okPath := writeFile(t, dir, "ok.txt",
		"BenchmarkSharded/shards=1-8 5 1010 ns/op\nBenchmarkSharded/shards=8-8 5 1190 ns/op\nPASS\n")
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", basePath, okPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s\n%s", code, errOut.String(), out.String())
	}
	checkGolden(t, "report_aux.golden", out.String())

	// A regression in the aux-gated benchmark alone must fail the gate.
	slowPath := writeFile(t, dir, "slow.txt",
		"BenchmarkSharded/shards=1-8 5 1010 ns/op\nBenchmarkSharded/shards=8-8 5 1500 ns/op\nPASS\n")
	out.Reset()
	if code := run([]string{"-baseline", basePath, slowPath}, &out, &errOut); code != 1 {
		t.Fatalf("aux regression: exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report missing REGRESSION mark:\n%s", out.String())
	}

	// Dangling aux field references and non-benchmark keys are errors.
	for _, bad := range []string{
		`{"benchmark": "BenchmarkX", "ns_per_op": 1, "aux_gates": {"BenchmarkY": "missing_field"}}`,
		`{"benchmark": "BenchmarkX", "ns_per_op": 1, "not_ns": "text", "aux_gates": {"BenchmarkY": "not_ns"}}`,
		`{"benchmark": "BenchmarkX", "ns_per_op": 1, "f": 2, "aux_gates": {"y": "f"}}`,
	} {
		badPath := writeFile(t, dir, "bad.json", bad)
		out.Reset()
		if code := run([]string{"-baseline", badPath, okPath}, &out, &errOut); code != 2 {
			t.Errorf("bad baseline %s: exit %d, want 2", bad, code)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	for _, args := range [][]string{
		{},                              // no inputs
		{"one.txt"},                     // one positional without baselines
		{"-baseline", "x.json"},         // baselines without an input file
		{"a.txt", "b.txt", "c.txt"},     // too many positionals
		{"-threshold", "ten", "a", "b"}, // bad flag value
	} {
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
	dir := t.TempDir()
	empty := writeFile(t, dir, "empty.txt", "no benchmarks here\n")
	full := writeFile(t, dir, "full.txt", "BenchmarkX-8 1 100 ns/op\n")
	if code := run([]string{empty, full}, &out, &errOut); code != 2 {
		t.Error("empty old file must be a usage error")
	}
	if code := run([]string{full, empty}, &out, &errOut); code != 2 {
		t.Error("empty new file must be a usage error")
	}
}

func TestMedianOverRepeatedRuns(t *testing.T) {
	samples, err := parseBench(strings.NewReader(oldBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := median(samples["BenchmarkNetsim"]); got != 30000000 {
		t.Errorf("median = %v, want 30000000", got)
	}
	if got := median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even-count median = %v, want 2.5", got)
	}
}
