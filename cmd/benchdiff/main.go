// Command benchdiff turns benchmark drift into a machine-checked gate.
// It parses `go test -bench` output and compares it either against a
// second bench output (old vs new) or against the repository's recorded
// BENCH_*.json baselines, printing a per-benchmark delta table and
// exiting nonzero when any benchmark regressed beyond the threshold.
//
// Usage:
//
//	benchdiff [-threshold pct] old.txt new.txt
//	benchdiff [-threshold pct] -baseline BENCH_netsim.json [-baseline ...] new.txt
//
// Bench output may contain repeated runs of a benchmark (go test
// -count=N); the median ns/op per benchmark is compared, so the gate is
// robust to a single noisy run. CI runs the netsim and par benchmarks
// through this tool instead of eyeballing free-text bench logs: every
// PR's overhead budget is enforced, not hand-recorded.
//
// A baseline file may gate sibling benchmarks through an "aux_gates"
// object mapping benchmark names to other top-level numeric fields of
// the same file — BENCH_shard.json gates the shards=2/8 fan-out and
// the 4096-satellite run this way, next to its primary shards=1 number.
//
// Exit codes: 0 pass, 1 regression (or baseline benchmark missing from
// the input), 2 usage or parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkNetsim-8   20   15712203 ns/op   179296 B/op   67 allocs/op".
// The trailing -8 is the GOMAXPROCS suffix and is stripped so results
// compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+)\s+ns/op`)

// parseBench collects ns/op samples per benchmark name from bench output.
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %v", sc.Text(), err)
		}
		out[m[1]] = append(out[m[1]], ns)
	}
	return out, sc.Err()
}

// median returns the median of a non-empty sample set.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// medians reduces parseBench samples to one median ns/op per benchmark.
func medians(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, xs := range samples {
		out[name] = median(xs)
	}
	return out
}

// baseline is the machine-readable slice of a BENCH_*.json file. The
// files carry additional narrative fields (scenario, machine, notes,
// prior_ns_per_op trajectory); benchdiff needs the benchmark name, its
// recorded median, and — optionally — an aux_gates object mapping
// further benchmark names to other top-level numeric fields of the
// same file, so one baseline file can gate a whole benchmark family
// (e.g. the per-shard-count variants it records alongside its primary
// number).
type baseline struct {
	Benchmark string            `json:"benchmark"`
	NsPerOp   float64           `json:"ns_per_op"`
	AuxGates  map[string]string `json:"aux_gates"`

	aux map[string]float64 // resolved aux_gates: benchmark name → ns/op
}

// readBaseline loads one BENCH_*.json baseline file and resolves its
// aux_gates references against the file's own top-level fields.
func readBaseline(path string) (baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return baseline{}, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return baseline{}, fmt.Errorf("benchdiff: %s: %v", path, err)
	}
	if b.Benchmark == "" || b.NsPerOp <= 0 {
		return baseline{}, fmt.Errorf("benchdiff: %s: needs non-empty \"benchmark\" and positive \"ns_per_op\"", path)
	}
	if len(b.AuxGates) > 0 {
		var raw map[string]any
		if err := json.Unmarshal(data, &raw); err != nil {
			return baseline{}, fmt.Errorf("benchdiff: %s: %v", path, err)
		}
		b.aux = make(map[string]float64, len(b.AuxGates))
		for bench, field := range b.AuxGates {
			if !strings.HasPrefix(bench, "Benchmark") {
				return baseline{}, fmt.Errorf("benchdiff: %s: aux gate %q does not name a Go benchmark", path, bench)
			}
			ns, ok := raw[field].(float64)
			if !ok || ns <= 0 {
				return baseline{}, fmt.Errorf("benchdiff: %s: aux gate %q needs a positive numeric field %q", path, bench, field)
			}
			b.aux[bench] = ns
		}
	}
	return b, nil
}

// diff is one benchmark's old-vs-new comparison.
type diff struct {
	name     string
	old, new float64
	missing  bool // present in the baseline set but absent from the input
}

// computeDiffs pairs baseline entries with new results, sorted by name
// for a deterministic report. Benchmarks in the input without a baseline
// are ignored (they are counted by the caller for the note line).
func computeDiffs(base, cur map[string]float64) []diff {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]diff, 0, len(names))
	for _, name := range names {
		d := diff{name: name, old: base[name]}
		if ns, ok := cur[name]; ok {
			d.new = ns
		} else {
			d.missing = true
		}
		out = append(out, d)
	}
	return out
}

// report renders the delta table and verdict. It returns true when any
// benchmark regressed beyond thresholdPct (or is missing from the
// input). unmatched is the count of input benchmarks with no baseline.
func report(w io.Writer, diffs []diff, thresholdPct float64, unmatched int) bool {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "benchmark\tbaseline ns/op\tnew ns/op\tdelta\t\n")
	regressed := 0
	for _, d := range diffs {
		if d.missing {
			fmt.Fprintf(tw, "%s\t%.0f\t-\tMISSING\t\n", d.name, d.old)
			regressed++
			continue
		}
		delta := 100 * (d.new - d.old) / d.old
		mark := ""
		if delta > thresholdPct {
			mark = "  REGRESSION"
			regressed++
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%%s\t\n", d.name, d.old, d.new, delta, mark)
	}
	tw.Flush()
	if unmatched > 0 {
		fmt.Fprintf(w, "note: %d benchmark(s) in the input had no baseline\n", unmatched)
	}
	if regressed > 0 {
		fmt.Fprintf(w, "FAIL: %d of %d benchmarks regressed more than %.1f%% (or are missing)\n",
			regressed, len(diffs), thresholdPct)
		return true
	}
	fmt.Fprintf(w, "PASS: %d benchmarks within %.1f%% of baseline\n", len(diffs), thresholdPct)
	return false
}

// baselineList collects repeated -baseline flags.
type baselineList []string

func (b *baselineList) String() string     { return strings.Join(*b, ",") }
func (b *baselineList) Set(v string) error { *b = append(*b, v); return nil }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10, "regression threshold in percent")
	var baselines baselineList
	fs.Var(&baselines, "baseline", "BENCH_*.json baseline file (repeatable)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff [-threshold pct] old.txt new.txt\n")
		fmt.Fprintf(stderr, "       benchdiff [-threshold pct] -baseline BENCH_x.json [-baseline ...] new.txt\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var base map[string]float64
	var newPath string
	switch {
	case len(baselines) > 0 && fs.NArg() == 1:
		base = make(map[string]float64, len(baselines))
		for _, path := range baselines {
			b, err := readBaseline(path)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			base[b.Benchmark] = b.NsPerOp
			for name, ns := range b.aux {
				base[name] = ns
			}
		}
		newPath = fs.Arg(0)
	case len(baselines) == 0 && fs.NArg() == 2:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		samples, err := parseBench(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if len(samples) == 0 {
			fmt.Fprintf(stderr, "benchdiff: no benchmark results in %s\n", fs.Arg(0))
			return 2
		}
		base = medians(samples)
		newPath = fs.Arg(1)
	default:
		fs.Usage()
		return 2
	}

	f, err := os.Open(newPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	samples, err := parseBench(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(samples) == 0 {
		fmt.Fprintf(stderr, "benchdiff: no benchmark results in %s\n", newPath)
		return 2
	}
	cur := medians(samples)

	unmatched := 0
	for name := range cur {
		if _, ok := base[name]; !ok {
			unmatched++
		}
	}
	if report(stdout, computeDiffs(base, cur), *threshold, unmatched) {
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
