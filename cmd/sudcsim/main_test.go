package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sudc/internal/obs/trace"
)

func runSim(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestDefaultSimulation(t *testing.T) {
	out := runSim(t, "-hours", "0.5")
	for _, want := range []string{
		"Flood Detection", "frames generated", "worker utilization", "keeps up",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUndersizedReported(t *testing.T) {
	out := runSim(t, "-app", "Panoptic Segmentation", "-hours", "1")
	if !strings.Contains(out, "UNDERSIZED") {
		t.Errorf("overloaded sim must report undersized:\n%s", out)
	}
}

func TestFilteringHelps(t *testing.T) {
	out := runSim(t, "-app", "Panoptic Segmentation", "-hours", "1", "-filter", "0.8")
	if !strings.Contains(out, "keeps up") {
		t.Errorf("80%% filtering should make panoptic sustainable:\n%s", out)
	}
}

func TestUnknownApp(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-app", "Whale Counting"}, &b); err == nil {
		t.Error("unknown app must error")
	}
}

func TestBadConfig(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-satellites", "0"}, &b); err == nil {
		t.Error("zero satellites must error")
	}
	if err := run([]string{"-isl", "0"}, &b); err == nil {
		t.Error("zero ISL must error")
	}
}

func TestTinyPowerStillRuns(t *testing.T) {
	out := runSim(t, "-power", "0.05", "-hours", "0.2")
	if !strings.Contains(out, "1 ×") {
		t.Errorf("sub-worker budget must clamp to one worker:\n%s", out)
	}
}

func TestFaultFlagsReportFaultBlock(t *testing.T) {
	out := runSim(t, "-app", "Air Pollution", "-satellites", "2", "-hours", "1",
		"-mttf", "2", "-sefi", "20", "-outage", "30", "-spares", "2")
	for _, want := range []string{
		"fault injection", "availability", "degraded time",
		"frames retried", "frames re-dispatched", "2 spare workers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fault output missing %q:\n%s", want, out)
		}
	}
}

func TestFaultFreeRunOmitsFaultBlock(t *testing.T) {
	out := runSim(t, "-hours", "0.5")
	if strings.Contains(out, "fault injection") {
		t.Errorf("fault-free run must not print the fault block:\n%s", out)
	}
}

func TestMetricsFlagPrintsFaultedTimeSeries(t *testing.T) {
	out := runSim(t, "-app", "Air Pollution", "-satellites", "2", "-hours", "1",
		"-outage", "10", "-outage-dur", "60", "-metrics")
	for _, want := range []string{
		"metrics:",
		"series netsim/queue/depth",
		"series netsim/availability",
		"series netsim/retries",
		"counter netsim/frames/generated",
		"counter netsim/events/outage_start",
		"histogram netsim/latency_s",
		"histogram netsim/retry/backoff_s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsOffByDefault(t *testing.T) {
	out := runSim(t, "-hours", "0.2")
	if strings.Contains(out, "metrics:") {
		t.Error("metrics must be opt-in")
	}
}

func TestTraceFlagStreamsSpans(t *testing.T) {
	out := runSim(t, "-hours", "0.2", "-trace")
	if !strings.Contains(out, "trace sudcsim/run wall=") || !strings.Contains(out, "sim=720s") {
		t.Errorf("-trace must stream the run span with simulated time:\n%s", out)
	}
}

func TestShedAllFlag(t *testing.T) {
	out := runSim(t, "-app", "Panoptic Segmentation", "-hours", "0.5", "-shed", "-1", "-metrics")
	if !strings.Contains(out, "counter netsim/frames/processed 0\n") {
		t.Errorf("-shed -1 must starve the workers:\n%s", out)
	}
	var b strings.Builder
	if err := run([]string{"-shed", "-2"}, &b); err == nil {
		t.Error("shed threshold below ShedAll must error")
	}
}

func TestTraceOutWritesLineage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	out := runSim(t, "-satellites", "2", "-hours", "0.5", "-outage", "10", "-trace-out", path)
	if !strings.Contains(out, "trace: wrote") || !strings.Contains(out, path) {
		t.Errorf("-trace-out must confirm the write:\n%s", out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := trace.DecodeJSONL(f)
	if err != nil {
		t.Fatalf("written trace does not decode: %v", err)
	}
	kinds := map[trace.Kind]bool{}
	for _, e := range rec.Events() {
		kinds[e.Kind] = true
	}
	for _, want := range []trace.Kind{trace.FrameCaptured, trace.Dispatched,
		trace.Downlinked, trace.OutageStart, trace.SpanDone} {
		if !kinds[want] {
			t.Errorf("trace missing %v events", want)
		}
	}
	if err := run([]string{"-hours", "0.1", "-trace-out", "/no/such/dir/t.jsonl"}, &strings.Builder{}); err == nil {
		t.Error("unwritable trace path must error")
	}
}

func TestPprofFlag(t *testing.T) {
	out := runSim(t, "-hours", "0.2", "-pprof", "127.0.0.1:0")
	if !strings.Contains(out, "pprof: serving on http://127.0.0.1:") {
		t.Errorf("-pprof must report the bound address:\n%s", out)
	}
	var b strings.Builder
	if err := run([]string{"-pprof", "not-an-address"}, &b); err == nil {
		t.Error("unbindable pprof address must error")
	}
}

func TestBadFaultFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-spares", "-1"}, &b); err == nil {
		t.Error("negative spares must error")
	}
	if err := run([]string{"-mttf", "-2"}, &b); err == nil {
		t.Error("negative MTTF must error")
	}
	if err := run([]string{"-sefi", "10", "-sefi-rec", "0"}, &b); err == nil {
		t.Error("SEFI without recovery must error")
	}
	if err := run([]string{"-retries", "-1"}, &b); err == nil {
		t.Error("negative retries must error")
	}
}

func TestThrottleFlagReportsDegradationBlock(t *testing.T) {
	out := runSim(t, "-satellites", "2", "-hours", "4", "-throttle", "1")
	for _, want := range []string{
		"degradation (xing-cots, severity 1.00)",
		"mean rate mult", "throttled time", "brownout time", "batches deferred",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("degradation output missing %q:\n%s", want, out)
		}
	}
}

func TestThrottleOffOmitsDegradationBlock(t *testing.T) {
	out := runSim(t, "-hours", "0.5")
	if strings.Contains(out, "degradation (") {
		t.Errorf("degradation block must be opt-in:\n%s", out)
	}
}

func TestCalibrationFlag(t *testing.T) {
	out := runSim(t, "-satellites", "2", "-hours", "4", "-throttle", "0.5", "-cots", "integrated-panel", "-eclipse-frac", "0.5")
	if !strings.Contains(out, "degradation (integrated-panel, severity 0.50)") {
		t.Errorf("calibration name missing:\n%s", out)
	}
	var b strings.Builder
	if err := run([]string{"-throttle", "1", "-cots", "unobtainium"}, &b); err == nil {
		t.Error("unknown calibration must error")
	}
	if err := run([]string{"-throttle", "2"}, &b); err == nil {
		t.Error("severity above 1 must error")
	}
}

func TestHorizonYearsRunsSurvivability(t *testing.T) {
	out := runSim(t, "-horizon-years", "6", "-throttle", "0.8")
	for _, want := range []string{
		"survivability: 6-year program",
		"capacity factor", "units built", "capacity avail",
		"year  mean operational",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("survivability output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "frames generated") {
		t.Error("survivability mode must not run the DES")
	}
}

func TestPlacementFlag(t *testing.T) {
	out := runSim(t, "-hours", "0.5", "-placement", "static-space")
	for _, want := range []string{
		"placement (static-space policy", "tier", "onboard", "ground-edge",
		"realized mean cost", "oracle floor",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("placement output missing %q:\n%s", want, out)
		}
	}
}

func TestPlacementFlagOverrides(t *testing.T) {
	out := runSim(t, "-hours", "0.5", "-placement", "greedy",
		"-downlink-gbps", "2.5", "-edge-servers", "3", "-latency-weight", "1e-3",
		"-place-compress", "neural")
	if !strings.Contains(out, "downlink 2.5 Gbit/s") {
		t.Errorf("downlink override not reflected:\n%s", out)
	}
}

func TestPlacementBadPolicy(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-placement", "static-moon"}, &b); err == nil {
		t.Error("unknown placement policy must error")
	}
	if err := run([]string{"-placement", "greedy", "-place-compress", "zstd"}, &b); err == nil {
		t.Error("unknown compression must error")
	}
}

func TestPlacementOffByDefault(t *testing.T) {
	out := runSim(t, "-hours", "0.5")
	if strings.Contains(out, "placement (") {
		t.Errorf("placement block printed without -placement:\n%s", out)
	}
}

func TestShardStatsFlagPrintsSyncSummary(t *testing.T) {
	args := []string{"-planes", "2", "-sats-per-plane", "4", "-hours", "0.5", "-shards", "2"}
	out := runSim(t, append(args, "-shard-stats")...)
	for _, want := range []string{
		"sync:", "windows", "active cells/window", "msgs/window", "mean lookahead",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-shard-stats output missing %q:\n%s", want, out)
		}
	}
	if out := runSim(t, args...); strings.Contains(out, "sync:") {
		t.Errorf("sync summary must be opt-in:\n%s", out)
	}
	// The flag is topology-only: a star-mode run stays silent.
	if out := runSim(t, "-hours", "0.5", "-shard-stats"); strings.Contains(out, "sync:") {
		t.Errorf("star-mode run must not print the sync summary:\n%s", out)
	}
}

func TestSLOFlagPrintsWindowedReport(t *testing.T) {
	out := runSim(t, "-satellites", "2", "-power", "0.5", "-hours", "2",
		"-mttf", "2", "-sefi", "20", "-outage", "15", "-throttle", "1",
		"-shed", "40", "-seed", "7", "-slo", "-watch")
	for _, want := range []string{
		"SLO report:", "burn policy", "burn-rate alerts:", "cause", "attainment:",
		"w000 [", // live -watch line
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The live window lines precede the run summary: the first -watch
	// line must appear before the "frames generated" block.
	if strings.Index(out, "w000 [") > strings.Index(out, "frames generated") {
		t.Errorf("-watch lines must stream before the summary:\n%s", out)
	}
}

func TestWindowFlagAloneIsQuiet(t *testing.T) {
	// -window without -slo/-watch collects windows but prints nothing new.
	out := runSim(t, "-satellites", "2", "-hours", "0.5", "-window", "10")
	for _, banned := range []string{"SLO report", "w000"} {
		if strings.Contains(out, banned) {
			t.Errorf("bare -window must not print %q:\n%s", banned, out)
		}
	}
}

func TestNegativeWindowRejected(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-slo", "-window", "-5"}, &b); err == nil {
		t.Error("negative window width must error")
	}
}
