// Command sudcsim runs the discrete-event simulation of the paper's
// Figure 14 pipeline: EO satellites → FSO inter-satellite link → batcher →
// GPU workers → insight analyzer, and reports whether the SµDC keeps up.
//
// Usage:
//
//	sudcsim [flags]
//
//	-app name        Table III application (default "Flood Detection")
//	-satellites n    EO constellation size (default 64)
//	-power kW        SµDC compute power (default 4)
//	-isl gbps        ISL capacity (default 30)
//	-batch n         batch size (default 8)
//	-filter f        edge filtering rate 0..1 (default 0)
//	-hours h         simulated duration (default 2)
//	-seed n          RNG seed (default 1)
//
// Explicit constellation topology (replaces the implicit single-SµDC
// star with a Walker-style multi-plane graph, simulated in parallel
// cell shards with conservative cross-cell synchronization):
//
//	-planes n        orbital planes; > 0 switches to topology mode
//	-sats-per-plane n  capture satellites per plane (default 16)
//	-sudc-every k    SµDC in every k-th plane; the rest relay around the
//	                 inter-plane ring (default 1)
//	-isl-delay ms    inter-plane ISL propagation delay (default 200)
//	-shards n        parallel cell shards, 0 = one per CPU; any value
//	                 yields byte-identical results
//	-shard-stats     print the synchronizer summary line: windows run,
//	                 mean active cells and cross-cell messages per
//	                 window, and the mean proven lookahead per cell run
//
// Fault injection and degraded-mode operation:
//
//	-mttf h          mean time to permanent worker death in hours (0 = off)
//	-sefi m          mean time between transient SEFI hangs in minutes (0 = off)
//	-sefi-rec s      mean SEFI watchdog recovery in seconds (default 30)
//	-outage m        mean time between ISL outages in minutes (0 = off)
//	-outage-dur s    mean ISL outage duration in seconds (default 60)
//	-spares n        spare workers beyond the sized need (default 0)
//	-retries n       ISL retry budget per frame, 0 = unlimited (default 8)
//	-shed n          input-queue length that triggers load shedding
//	                 (0 = off, -1 = shed every queued frame)
//
// Environment-coupled degradation (COTS-calibrated thermal throttling,
// eclipse power brownouts; see internal/degrade):
//
//	-throttle s      degradation severity 0..1; > 0 layers the COTS
//	                 schedule over the run (0 = off)
//	-cots name       hardware calibration: xing-cots, integrated-panel
//	                 (default xing-cots)
//	-eclipse-frac f  eclipse fraction override; < 0 derives it from the
//	                 default EO orbit (default -1)
//	-throttle-shed   scale the shed threshold down with the active
//	                 throttle multiplier
//	-defer-eclipse   defer partial-batch timeout dispatches past the
//	                 eclipse window
//	-horizon-years y run the compressed-horizon survivability program
//	                 instead of the DES (fleet lifecycle × degradation)
//
// Compute placement ("when to compute in space"; see
// internal/placement): each frame is routed across four tiers —
// onboard flight computer, orbital SµDC, ground-station edge,
// terrestrial cloud — under a latency/cost objective:
//
//	-placement p     routing policy: static-onboard, static-space,
//	                 static-edge, static-cloud, greedy, queue, oracle
//	                 ("" = off, the legacy all-space pipeline)
//	-downlink-gbps f aggregate downlink capacity override in Gbit/s
//	                 (0 = derived from the default ground network)
//	-edge-servers n  ground-edge GPU pool size (default 8)
//	-latency-weight w  latency price in $/frame-second (default 1e-4)
//	-place-compress a  onboard compression before downlink: none, ccsds,
//	                 jpeg2000, neural (default none)
//
// Observability:
//
//	-metrics         print the run's metric snapshot (counters, queue-depth /
//	                 availability / retry time series, latency histogram)
//	-window m        tumbling telemetry window in minutes (0 = off; -slo
//	                 and -watch default it to 10). Windows merge at the
//	                 cross-cell watermark, so the stream is byte-identical
//	                 for any -shards value
//	-slo             evaluate the mission SLOs (availability, frame p99,
//	                 loss rate, $/frame vs the oracle floor) per window
//	                 and print the burn-rate report; alerts also land in
//	                 -trace-out recordings with attributed causes
//	-watch           print one line per completed window as the
//	                 simulation crosses it
//	-trace           stream span trace lines as stages complete
//	-trace-out file  write the frame-lineage flight recording (per-frame
//	                 lifecycle + fault events) as JSONL; analyze with sudcmon
//	-pprof addr      serve net/http/pprof and /metrics on addr
//	                 (e.g. localhost:6060)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sudc/internal/compress"
	"sudc/internal/degrade"
	"sudc/internal/faults"
	"sudc/internal/netsim"
	"sudc/internal/obs"
	"sudc/internal/obs/slo"
	"sudc/internal/obs/trace"
	"sudc/internal/obs/window"
	"sudc/internal/placement"
	"sudc/internal/topo"
	"sudc/internal/units"
	"sudc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sudcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sudcsim", flag.ContinueOnError)
	fs.SetOutput(out)
	appName := fs.String("app", "Flood Detection", "Table III application")
	satellites := fs.Int("satellites", 64, "EO constellation size")
	powerKW := fs.Float64("power", 4, "SµDC compute power in kW")
	islGbps := fs.Float64("isl", 30, "ISL capacity in Gbit/s")
	batch := fs.Int("batch", 8, "batch size")
	filter := fs.Float64("filter", 0, "edge filtering rate [0,1)")
	hours := fs.Float64("hours", 2, "simulated duration in hours")
	seed := fs.Int64("seed", 1, "RNG seed")
	planes := fs.Int("planes", 0, "orbital planes; > 0 replaces the implicit star with a Walker topology")
	satsPerPlane := fs.Int("sats-per-plane", 16, "capture satellites per plane (with -planes)")
	sudcEvery := fs.Int("sudc-every", 1, "SµDC placed every k-th plane; the rest relay (with -planes)")
	islDelayMs := fs.Float64("isl-delay", 200, "inter-plane ISL propagation delay in ms (with -planes)")
	shards := fs.Int("shards", 0, "parallel cell shards for topology runs (0 = one per CPU)")
	shardStats := fs.Bool("shard-stats", false, "print the sharded synchronizer summary (with -planes)")
	mttfH := fs.Float64("mttf", 0, "mean time to permanent worker death in hours (0 = off)")
	sefiM := fs.Float64("sefi", 0, "mean time between SEFI hangs in minutes (0 = off)")
	sefiRecS := fs.Float64("sefi-rec", 30, "mean SEFI recovery in seconds")
	outageM := fs.Float64("outage", 0, "mean time between ISL outages in minutes (0 = off)")
	outageDurS := fs.Float64("outage-dur", 60, "mean ISL outage duration in seconds")
	spares := fs.Int("spares", 0, "spare workers beyond the sized need")
	retries := fs.Int("retries", 8, "ISL retry budget per frame (0 = unlimited)")
	shed := fs.Int("shed", 0, "input-queue length that triggers load shedding (0 = off, -1 = shed everything)")
	throttle := fs.Float64("throttle", 0, "degradation severity 0..1 (0 = off)")
	cots := fs.String("cots", "xing-cots", "COTS hardware calibration name")
	eclipseFrac := fs.Float64("eclipse-frac", -1, "eclipse fraction override (< 0 = orbit-derived)")
	throttleShed := fs.Bool("throttle-shed", false, "scale the shed threshold with the throttle multiplier")
	deferEclipse := fs.Bool("defer-eclipse", false, "defer partial-batch timeouts past the eclipse window")
	horizonYears := fs.Float64("horizon-years", 0, "run the compressed-horizon survivability program over this many years")
	placementPol := fs.String("placement", "", "placement policy: static-<tier>, greedy, queue, oracle (\"\" = off)")
	downlinkGbps := fs.Float64("downlink-gbps", 0, "aggregate downlink capacity override in Gbit/s (0 = derived)")
	edgeServers := fs.Int("edge-servers", 8, "ground-edge GPU pool size (with -placement)")
	latencyWeight := fs.Float64("latency-weight", 1e-4, "latency price in $/frame-second (with -placement)")
	placeCompress := fs.String("place-compress", "", "onboard compression before downlink: none, ccsds, jpeg2000, neural")
	metrics := fs.Bool("metrics", false, "print the run's metric snapshot")
	windowMin := fs.Float64("window", 0, "tumbling telemetry window in minutes (0 = off)")
	sloOn := fs.Bool("slo", false, "evaluate mission SLOs per window and print the burn-rate report")
	watch := fs.Bool("watch", false, "print one line per completed telemetry window")
	traceSpans := fs.Bool("trace", false, "stream span trace lines as stages complete")
	traceOut := fs.String("trace-out", "", "write the frame-lineage flight recording to this JSONL file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reg *obs.Registry
	if *metrics || *traceSpans || *traceOut != "" || *pprofAddr != "" {
		reg = obs.New()
		if *traceSpans {
			reg.SetTraceWriter(out)
		}
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New(0)
		reg.SetSpanSink(rec)
	}
	if *pprofAddr != "" {
		addr, err := obs.StartPprof(*pprofAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "pprof: serving on http://%s/debug/pprof/\n", addr)
	}

	cal, err := degrade.CalibrationByName(*cots)
	if err != nil {
		return err
	}
	if *horizonYears > 0 {
		return runSurvivability(out, cal, *throttle, *eclipseFrac, *horizonYears, *seed)
	}

	app, err := workload.ByName(*appName)
	if err != nil {
		return err
	}
	if *spares < 0 {
		return fmt.Errorf("negative spares %d", *spares)
	}
	workers := int(*powerKW * 1000 / float64(app.GPUPower))
	if workers < 1 {
		workers = 1
	}
	var cfg netsim.Config
	if *planes > 0 {
		// Topology mode: each SµDC plane gets the sized worker count
		// plus the spares; availability is defined by the full per-cell
		// complement.
		g, err := topo.Walker(*planes, *satsPerPlane, workers+*spares, *sudcEvery,
			time.Duration(*islDelayMs*float64(time.Millisecond)))
		if err != nil {
			return err
		}
		cfg = netsim.TopologyConfig(app, g)
		cfg.Constellation.FilterRate = *filter
		cfg.Shards = *shards
	} else {
		cfg = netsim.DefaultConfig(app)
		cfg.Constellation.Satellites = *satellites
		cfg.Constellation.FilterRate = *filter
		cfg.Workers = workers
		cfg.NeedWorkers = cfg.Workers
		cfg.Workers += *spares
	}
	cfg.ISLRate = units.GbpsOf(*islGbps)
	cfg.BatchSize = *batch
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	cfg.Seed = *seed
	cfg.Faults = faults.Scenario{
		NodeMTTF:      time.Duration(*mttfH * float64(time.Hour)),
		SEFIMTBE:      time.Duration(*sefiM * float64(time.Minute)),
		ISLOutageMTBF: time.Duration(*outageM * float64(time.Minute)),
	}
	if cfg.Faults.SEFIMTBE > 0 {
		cfg.Faults.SEFIRecovery = time.Duration(*sefiRecS * float64(time.Second))
	}
	if cfg.Faults.ISLOutageMTBF > 0 {
		cfg.Faults.ISLOutageDuration = time.Duration(*outageDurS * float64(time.Second))
	}
	cfg.RetryLimit = *retries
	cfg.ShedThreshold = *shed
	if *throttle > 0 || *throttleShed || *deferEclipse {
		p := degrade.COTSProfile(*throttle)
		p.Cal = cal
		p.EclipseFraction = *eclipseFrac
		cfg.Degrade = &p
		cfg.ThrottleShed = *throttleShed
		cfg.DeferInEclipse = *deferEclipse
	}
	if *placementPol != "" {
		pol, err := placement.PolicyByName(*placementPol)
		if err != nil {
			return err
		}
		alg, err := compress.ByName(*placeCompress)
		if err != nil {
			return err
		}
		scen := placement.DefaultScenario(app)
		scen.FramesPerMinute = cfg.Constellation.FramesPerMinute
		scen.Satellites = *satellites
		scen.SpacePower = units.KW(*powerKW)
		scen.Workers = workers
		scen.ISLRate = cfg.ISLRate
		scen.EdgeServers = *edgeServers
		scen.LatencyWeight = *latencyWeight
		if alg.Ratio > 1 {
			scen.Compression = alg
		}
		pc, err := scen.Config(pol)
		if err != nil {
			return err
		}
		if *downlinkGbps > 0 {
			pc.DownlinkRate = units.GbpsOf(*downlinkGbps)
		}
		cfg.Placement = pc
	}
	cfg.Obs = reg.Scope("netsim")
	cfg.Trace = rec

	if *windowMin < 0 {
		return fmt.Errorf("sudcsim: -window must be non-negative, got %v", *windowMin)
	}
	var wins []window.Window
	var sloCfg slo.Config
	if *sloOn || *watch || *windowMin > 0 {
		if *windowMin == 0 {
			*windowMin = 10
		}
		cfg.Window = time.Duration(*windowMin * float64(time.Minute))
		cfg.OnWindow = func(w window.Window) {
			wins = append(wins, w)
			if *watch {
				fmt.Fprintf(out, "w%03d [%6.1fm,%6.1fm) gen %5d done %5d avail %6.2f%% p99 %6.1fs loss %5.2f%%\n",
					w.Index, w.Start/60, w.End/60,
					w.Counts[window.CntGenerated], w.Counts[window.CntProcessed],
					100*w.Availability(), w.LatQuantile(0.99), 100*w.LossRate())
			}
		}
		if *sloOn {
			sloCfg = slo.DefaultConfig()
			cfg.SLO = &sloCfg
		}
	}

	sp := reg.StartSpan("sudcsim/run")
	sp.SetSim(cfg.Duration.Seconds())
	s, err := netsim.Run(cfg)
	sp.End()
	if err != nil {
		return err
	}

	if *planes > 0 {
		fmt.Fprintf(out, "%s: %d planes × %d satellites → SµDC every %d planes (%d × %v workers each), %v ISL, batch %d\n\n",
			app.Name, *planes, *satsPerPlane, *sudcEvery, workers+*spares, app.GPUPower, cfg.ISLRate, *batch)
	} else {
		fmt.Fprintf(out, "%s: %d satellites → %.1f kW SµDC (%d × %v workers), %v ISL, batch %d\n\n",
			app.Name, *satellites, *powerKW, cfg.Workers, app.GPUPower, cfg.ISLRate, *batch)
	}
	fmt.Fprintf(out, "  frames generated     %d\n", s.FramesGenerated)
	fmt.Fprintf(out, "  frames processed     %d\n", s.FramesProcessed)
	fmt.Fprintf(out, "  insights downlinked  %d\n", s.InsightsDownlinked)
	fmt.Fprintf(out, "  backlog              %d\n", s.Backlog)
	fmt.Fprintf(out, "  mean latency         %v (p95 %v)\n",
		s.MeanLatency.Truncate(time.Millisecond), s.P95Latency.Truncate(time.Millisecond))
	fmt.Fprintf(out, "  ISL utilization      %.1f%%\n", 100*s.ISLUtilization)
	fmt.Fprintf(out, "  worker utilization   %.1f%%\n", 100*s.WorkerUtilization)
	fmt.Fprintf(out, "  compute energy       %.1f kWh\n", s.ComputeEnergy.WattHours()/1e3)
	if *planes > 0 {
		fmt.Fprintf(out, "  cross-shard frames   %d\n", s.CrossShardFrames)
	}
	if *shardStats && *planes > 0 {
		sy := s.Sync
		rounds := sy.Rounds
		if rounds < 1 {
			rounds = 1
		}
		runs := sy.CellRuns
		if runs < 1 {
			runs = 1
		}
		fmt.Fprintf(out, "  sync: %d windows, %.1f active cells/window, %.1f msgs/window, %.3fs mean lookahead\n",
			sy.Rounds, float64(sy.CellRuns)/float64(rounds),
			float64(sy.CrossMsgs)/float64(rounds), sy.LookaheadSum/float64(runs))
	}
	if cfg.Faults.Enabled() || *spares > 0 {
		if *planes > 0 {
			fmt.Fprintf(out, "\n  fault injection (%d workers per SµDC)\n", workers+*spares)
		} else {
			fmt.Fprintf(out, "\n  fault injection (%d needed + %d spare workers)\n", cfg.NeedWorkers, *spares)
		}
		fmt.Fprintf(out, "  availability         %.2f%%\n", 100*s.Availability)
		fmt.Fprintf(out, "  degraded time        %.1f%%\n", 100*s.DegradedFraction)
		fmt.Fprintf(out, "  worker downtime      %v\n", s.WorkerDowntime.Truncate(time.Second))
		fmt.Fprintf(out, "  ISL downtime         %v\n", s.ISLDowntime.Truncate(time.Second))
		fmt.Fprintf(out, "  frames retried       %d\n", s.FramesRetried)
		fmt.Fprintf(out, "  frames re-dispatched %d\n", s.FramesRedispatched)
		fmt.Fprintf(out, "  frames shed          %d\n", s.FramesShed)
		fmt.Fprintf(out, "  frames lost          %d\n", s.FramesLost)
	}
	if cfg.Degrade != nil {
		fmt.Fprintf(out, "\n  degradation (%s, severity %.2f)\n", cal.Name, *throttle)
		fmt.Fprintf(out, "  mean rate mult       %.3f\n", s.MeanRateMult)
		fmt.Fprintf(out, "  throttled time       %v (%.1f%%)\n",
			s.ThrottledTime.Truncate(time.Second), 100*s.ThrottledTime.Seconds()/cfg.Duration.Seconds())
		fmt.Fprintf(out, "  brownout time        %v (%.1f%%)\n",
			s.BrownoutTime.Truncate(time.Second), 100*s.BrownoutTime.Seconds()/cfg.Duration.Seconds())
		fmt.Fprintf(out, "  batches deferred     %d\n", s.BatchesDeferred)
	}
	if cfg.Placement != nil {
		m := cfg.Placement.Model
		fmt.Fprintf(out, "\n  placement (%s policy, downlink %v, latency weight $%g/frame-s)\n",
			*placementPol, cfg.Placement.DownlinkRate, *latencyWeight)
		fmt.Fprintf(out, "  %-12s %8s %12s %12s %12s\n", "tier", "frames", "mean", "p99", "$/frame")
		for t := placement.Tier(0); t < placement.NumTiers; t++ {
			fmt.Fprintf(out, "  %-12s %8d %12v %12v %12.4g\n", t.String(), s.TierFrames[t],
				s.TierMeanLatency[t].Truncate(time.Millisecond),
				s.TierP99Latency[t].Truncate(time.Millisecond),
				m.Tiers[t].DollarsPerFrame)
		}
		fmt.Fprintf(out, "  realized mean cost   $%.4g/frame (oracle floor $%.4g)\n",
			s.PlacedMeanCost, s.OracleMeanCost)
	}
	if s.KeptUp {
		fmt.Fprintln(out, "\n  → the SµDC keeps up with the constellation")
	} else {
		fmt.Fprintln(out, "\n  → UNDERSIZED: the SµDC falls behind")
	}
	if *sloOn {
		if cfg.Placement != nil {
			sloCfg.CostFloor = cfg.Placement.Model.OracleCost()
		}
		fmt.Fprintln(out)
		slo.WriteReport(out, sloCfg, wins, slo.Run(sloCfg, wins))
	}
	if *metrics {
		fmt.Fprintf(out, "\nmetrics:\n%s", reg.Snapshot().String())
	}
	if *traceOut != "" {
		if err := writeTrace(rec, *traceOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace: wrote %d events to %s\n", rec.TotalLen(), *traceOut)
	}
	return nil
}

// runSurvivability executes the compressed-horizon program: the
// degradation schedule collapsed to its orbit-averaged capacity factor
// and replayed through the fleet-maintenance lifecycle.
func runSurvivability(out io.Writer, cal degrade.Calibration, severity, eclipseFrac, years float64, seed int64) error {
	cfg := degrade.DefaultSurvivalConfig(severity)
	cfg.Profile.Cal = cal
	cfg.Profile.EclipseFraction = eclipseFrac
	cfg.Policy.Horizon = units.Years(years)
	cfg.Seed = seed
	r, err := degrade.Survive(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "survivability: %.0f-year program, %d+%d satellites, %s at severity %.2f\n\n",
		years, cfg.Policy.Target, cfg.Policy.Spares, cal.Name, severity)
	fmt.Fprintf(out, "  capacity factor      %.3f\n", r.CapacityFactor)
	fmt.Fprintf(out, "  units built          %.1f\n", r.UnitsBuilt)
	fmt.Fprintf(out, "  head-count avail     %.1f%%\n", 100*r.Availability)
	fmt.Fprintf(out, "  capacity avail       %.1f%%\n", 100*r.CapacityAvailability)
	fmt.Fprintf(out, "  mean fleet capacity  %.2f\n\n", r.MeanCapacity)
	fmt.Fprintln(out, "  year  mean operational  availability  mean capacity")
	for _, y := range r.Years {
		fmt.Fprintf(out, "  %4d  %16.2f  %11.1f%%  %13.2f\n",
			y.Year, y.MeanOperational, 100*y.Availability, y.MeanCapacity)
	}
	return nil
}

// writeTrace dumps the flight recording as JSONL to path.
func writeTrace(rec *trace.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
