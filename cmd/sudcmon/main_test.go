package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden analysis output")

func runMon(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

// faultedArgs is the pinned golden scenario: small, fault-heavy, seeded.
var faultedArgs = []string{"-satellites", "2", "-power", "0.5", "-hours", "0.2",
	"-mttf", "2", "-sefi", "20", "-outage", "15", "-seed", "7", "-top", "2"}

func TestGoldenFaultedAnalysis(t *testing.T) {
	// The whole report derives from simulated time, so it is pinned
	// byte-for-byte. Regenerate with: go test ./cmd/sudcmon -update
	out := runMon(t, faultedArgs...)
	golden := filepath.Join("testdata", "faulted.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("analysis drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out, want)
	}
}

func TestAnalysisSections(t *testing.T) {
	out := runMon(t, faultedArgs...)
	for _, want := range []string{
		"events recorded",
		"Stage breakdown (completed frames):",
		"queue", "transfer", "retry-backoff", "compute", "downlink-wait", "end-to-end",
		"Top 2 slowest frames:",
		"Degraded intervals:",
		"isl-outage", "sefi",
		"availability from trace:", "(DES reported",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFaultFreeReportsNoDegradedIntervals(t *testing.T) {
	out := runMon(t, "-satellites", "2", "-hours", "0.1", "-top", "1")
	if !strings.Contains(out, "No degraded intervals") {
		t.Errorf("fault-free run must say so:\n%s", out)
	}
}

func TestSaveAndLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "trace.jsonl")
	direct := runMon(t, append(faultedArgs, "-jsonl", jsonl)...)
	loaded := runMon(t, "-load", jsonl, "-top", "2",
		"-workers", "1", "-need", "1")

	// Everything from the stage table onward must match the direct run
	// (headers differ: the loaded report has no scenario/DES context).
	cut := func(s string) string {
		i := strings.Index(s, "Stage breakdown")
		j := strings.Index(s, "availability from trace")
		if i < 0 || j < 0 {
			t.Fatalf("report missing sections:\n%s", s)
		}
		return s[i:j]
	}
	if cut(direct) != cut(loaded) {
		t.Errorf("loaded analysis differs from direct run:\n--- direct ---\n%s\n--- loaded ---\n%s",
			cut(direct), cut(loaded))
	}
	if !strings.Contains(loaded, "loaded "+jsonl) {
		t.Errorf("loaded report missing header:\n%s", loaded)
	}
}

func TestChromeExportFlag(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "trace.json")
	out := runMon(t, append(faultedArgs, "-chrome", chrome)...)
	if !strings.Contains(out, "wrote Chrome trace") {
		t.Errorf("missing Chrome confirmation:\n%s", out)
	}
	b, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Error("Chrome export has no events")
	}
}

func TestBadInputs(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-load", "/no/such/file.jsonl"}, &b); err == nil {
		t.Error("missing load file must error")
	}
	if err := run([]string{"-app", "Whale Counting"}, &b); err == nil {
		t.Error("unknown app must error")
	}
	if err := run([]string{"-spares", "-1"}, &b); err == nil {
		t.Error("negative spares must error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"t\":1,\"k\":\"warp_drive\",\"n\":-1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-load", bad}, &b); err == nil {
		t.Error("malformed trace must error")
	}
}

func TestDegradedScenarioReportsEnvironmentIntervals(t *testing.T) {
	// A throttled run over a full orbit must surface the environmental
	// windows next to the fault windows: throttle intervals with the
	// severity-scaled multiplier and the eclipse brownout.
	out := runMon(t, "-satellites", "2", "-power", "2", "-hours", "2",
		"-mttf", "4", "-seed", "7", "-top", "1", "-throttle", "1")
	for _, want := range []string{"throttle", "brownout", "availability from trace"} {
		if !strings.Contains(out, want) {
			t.Errorf("degraded report missing %q:\n%s", want, out)
		}
	}
}

func TestDegradedRoundTripKeepsEnvironmentIntervals(t *testing.T) {
	// The brownout/throttle events survive the JSONL round trip, so a
	// saved degraded recording reloads with the same interval kinds.
	dir := t.TempDir()
	path := filepath.Join(dir, "deg.jsonl")
	runMon(t, "-satellites", "2", "-power", "2", "-hours", "2",
		"-seed", "7", "-top", "0", "-throttle", "0.8", "-jsonl", path)
	out := runMon(t, "-load", path, "-top", "0")
	for _, want := range []string{"throttle", "brownout"} {
		if !strings.Contains(out, want) {
			t.Errorf("reloaded report missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownCalibrationRejected(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-throttle", "1", "-cots", "unobtainium", "-hours", "0.1"}, &b); err == nil {
		t.Error("unknown calibration must error")
	}
}

// sloArgs is the pinned degraded SLO scenario: the 2-hour horizon
// crosses an eclipse, and the fault stack keeps every attribution
// source (throttle, brownout, outage) active.
var sloArgs = []string{"-satellites", "2", "-power", "0.5", "-hours", "2",
	"-mttf", "2", "-sefi", "20", "-outage", "15", "-throttle", "1",
	"-shed", "40", "-seed", "7", "-top", "2", "-slo-report"}

func TestGoldenSLOReport(t *testing.T) {
	// The windowed report derives from simulated time only, so it is
	// pinned byte-for-byte. Regenerate with: go test ./cmd/sudcmon -update
	out := runMon(t, sloArgs...)
	golden := filepath.Join("testdata", "slo_report.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("SLO report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out, want)
	}
}

func TestSLOReportSections(t *testing.T) {
	out := runMon(t, sloArgs...)
	for _, want := range []string{
		"SLO report:", "burn policy",
		"avail", "p99", "loss", "$/frame", "burn",
		"burn-rate alerts:", "cause",
		"attainment:",
		"worst window w",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SLO report missing %q:\n%s", want, out)
		}
	}
}

func TestDiffComparesTwoRecordings(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	runMon(t, append(faultedArgs, "-jsonl", a)...)
	runMon(t, "-satellites", "2", "-power", "0.5", "-hours", "0.2",
		"-mttf", "2", "-sefi", "20", "-outage", "15", "-throttle", "1",
		"-shed", "40", "-seed", "7", "-top", "2", "-jsonl", b)

	out := runMon(t, "-diff", "-workers", "1", "-need", "1", "-window", "5", a, b)
	for _, want := range []string{
		"diff " + a, "300 s windows",
		"Δavail", "Δp99", "Δloss", "stageΔ", "cause (B)",
		"w000", "attainment",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	// Diffing a recording against itself must show no metric deltas.
	self := runMon(t, "-diff", "-workers", "1", "-need", "1", a, a)
	for _, banned := range []string{"only in A", "only in B"} {
		if strings.Contains(self, banned) {
			t.Errorf("self-diff reports %q:\n%s", banned, self)
		}
	}
	if strings.Contains(self, "+1.") || strings.Contains(self, "-1.") {
		t.Errorf("self-diff shows nonzero deltas:\n%s", self)
	}
}

func TestDiffArgumentErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-diff", "one.jsonl"}, &b); err == nil {
		t.Error("-diff with one path must error")
	}
	if err := run([]string{"-diff", "/no/such/a.jsonl", "/no/such/b.jsonl"}, &b); err == nil {
		t.Error("-diff with missing files must error")
	}
	if err := run([]string{"-window", "0"}, &b); err == nil {
		t.Error("non-positive window width must error")
	}
}

func TestPlacementTierCounts(t *testing.T) {
	out := runMon(t, "-hours", "0.5", "-placement", "static-cloud", "-top", "1")
	if !strings.Contains(out, "placement tiers:") || !strings.Contains(out, "cloud") {
		t.Errorf("per-tier counts missing:\n%s", out)
	}
	if !strings.Contains(out, "placed on the cloud tier") {
		t.Errorf("slowest-frame timeline missing the placed event:\n%s", out)
	}
}
