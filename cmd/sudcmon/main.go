// Command sudcmon analyzes a frame-lineage flight recording: where
// each EO frame's end-to-end latency went (queue, ISL transfer, retry
// backoff, compute, downlink wait), which frames were slowest and why,
// and when the SµDC was degraded by faults. It either runs a scenario
// itself (same flags as sudcsim) or loads a recording saved with
// -trace-out.
//
// Usage:
//
//	sudcmon [scenario flags] [analysis flags]
//	sudcmon -load trace.jsonl [analysis flags]
//	sudcmon -diff [-window m] [-workers n -need n] A.jsonl B.jsonl
//
// Scenario flags (mirroring sudcsim):
//
//	-app name        Table III application (default "Flood Detection")
//	-satellites n    EO constellation size (default 64)
//	-power kW        SµDC compute power (default 4)
//	-isl gbps        ISL capacity (default 30)
//	-batch n         batch size (default 8)
//	-filter f        edge filtering rate 0..1 (default 0)
//	-hours h         simulated duration (default 2)
//	-seed n          RNG seed (default 1)
//	-planes n        orbital planes; > 0 runs the explicit Walker topology
//	-sats-per-plane n  capture satellites per plane (with -planes)
//	-sudc-every k    SµDC in every k-th plane; the rest relay (with -planes)
//	-isl-delay ms    inter-plane ISL propagation delay (default 200)
//	-shards n        parallel cell shards, 0 = one per CPU
//	-mttf h          mean time to permanent worker death in hours (0 = off)
//	-sefi m          mean time between transient SEFI hangs in minutes (0 = off)
//	-sefi-rec s      mean SEFI watchdog recovery in seconds (default 30)
//	-outage m        mean time between ISL outages in minutes (0 = off)
//	-outage-dur s    mean ISL outage duration in seconds (default 60)
//	-spares n        spare workers beyond the sized need (default 0)
//	-retries n       ISL retry budget per frame, 0 = unlimited (default 8)
//	-shed n          input-queue length that triggers load shedding
//	-throttle s      COTS degradation severity 0..1 (0 = off)
//	-cots name       hardware calibration: xing-cots, integrated-panel
//	-eclipse-frac f  eclipse fraction override (< 0 = orbit-derived)
//	-placement p     compute-placement policy: static-<tier>, greedy,
//	                 queue, oracle ("" = off); the report then counts
//	                 frames per tier
//	-downlink-gbps f aggregate downlink capacity override in Gbit/s
//	-edge-servers n  ground-edge GPU pool size (default 8)
//	-latency-weight w  latency price in $/frame-second (default 1e-4)
//	-place-compress a  onboard compression before downlink: none, ccsds,
//	                 jpeg2000, neural
//
// Analysis flags:
//
//	-load file       analyze a saved JSONL recording instead of running
//	-top k           detail the k slowest frames (default 5)
//	-jsonl file      save the recording as JSONL
//	-chrome file     save Chrome trace-event JSON (open in Perfetto:
//	                 ui.perfetto.dev, or chrome://tracing)
//	-workers n       worker count for the availability cross-check when
//	                 loading a saved trace (scenario runs know their own)
//	-need n          workers needed for full service in the cross-check
//	-slo-report      rebuild the windowed telemetry from the recording and
//	                 print the per-window SLO table, the burn-rate alert
//	                 timeline with attributed causes, and a drill-down
//	                 into the worst window's slowest frames
//	-window m        tumbling window width in minutes for -slo-report and
//	                 -diff (default 10)
//	-diff            compare two recordings window by window: metric
//	                 deltas, the stage driving each latency delta, and
//	                 the environment cause attribution on the B side
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sudc/internal/compress"
	"sudc/internal/degrade"
	"sudc/internal/faults"
	"sudc/internal/netsim"
	"sudc/internal/obs/latency"
	"sudc/internal/obs/slo"
	"sudc/internal/obs/trace"
	"sudc/internal/obs/window"
	"sudc/internal/placement"
	"sudc/internal/topo"
	"sudc/internal/units"
	"sudc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sudcmon:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sudcmon", flag.ContinueOnError)
	fs.SetOutput(out)
	appName := fs.String("app", "Flood Detection", "Table III application")
	satellites := fs.Int("satellites", 64, "EO constellation size")
	powerKW := fs.Float64("power", 4, "SµDC compute power in kW")
	islGbps := fs.Float64("isl", 30, "ISL capacity in Gbit/s")
	batch := fs.Int("batch", 8, "batch size")
	filter := fs.Float64("filter", 0, "edge filtering rate [0,1)")
	hours := fs.Float64("hours", 2, "simulated duration in hours")
	seed := fs.Int64("seed", 1, "RNG seed")
	planes := fs.Int("planes", 0, "orbital planes; > 0 runs the explicit Walker topology")
	satsPerPlane := fs.Int("sats-per-plane", 16, "capture satellites per plane (with -planes)")
	sudcEvery := fs.Int("sudc-every", 1, "SµDC placed every k-th plane; the rest relay (with -planes)")
	islDelayMs := fs.Float64("isl-delay", 200, "inter-plane ISL propagation delay in ms (with -planes)")
	shards := fs.Int("shards", 0, "parallel cell shards for topology runs (0 = one per CPU)")
	mttfH := fs.Float64("mttf", 0, "mean time to permanent worker death in hours (0 = off)")
	sefiM := fs.Float64("sefi", 0, "mean time between SEFI hangs in minutes (0 = off)")
	sefiRecS := fs.Float64("sefi-rec", 30, "mean SEFI recovery in seconds")
	outageM := fs.Float64("outage", 0, "mean time between ISL outages in minutes (0 = off)")
	outageDurS := fs.Float64("outage-dur", 60, "mean ISL outage duration in seconds")
	spares := fs.Int("spares", 0, "spare workers beyond the sized need")
	retries := fs.Int("retries", 8, "ISL retry budget per frame (0 = unlimited)")
	shed := fs.Int("shed", 0, "input-queue length that triggers load shedding (0 = off, -1 = shed everything)")
	throttle := fs.Float64("throttle", 0, "COTS degradation severity 0..1 (0 = off)")
	cots := fs.String("cots", "xing-cots", "COTS hardware calibration name")
	eclipseFrac := fs.Float64("eclipse-frac", -1, "eclipse fraction override (< 0 = orbit-derived)")
	placementPol := fs.String("placement", "", "placement policy: static-<tier>, greedy, queue, oracle (\"\" = off)")
	downlinkGbps := fs.Float64("downlink-gbps", 0, "aggregate downlink capacity override in Gbit/s (0 = derived)")
	edgeServers := fs.Int("edge-servers", 8, "ground-edge GPU pool size (with -placement)")
	latencyWeight := fs.Float64("latency-weight", 1e-4, "latency price in $/frame-second (with -placement)")
	placeCompress := fs.String("place-compress", "", "onboard compression before downlink: none, ccsds, jpeg2000, neural")
	load := fs.String("load", "", "analyze a saved JSONL recording instead of running a scenario")
	topK := fs.Int("top", 5, "detail the k slowest frames")
	jsonlOut := fs.String("jsonl", "", "save the recording as JSONL")
	chromeOut := fs.String("chrome", "", "save Chrome trace-event JSON for Perfetto")
	workersFlag := fs.Int("workers", 0, "worker count for the availability cross-check on -load")
	needFlag := fs.Int("need", 0, "workers needed for full service in the cross-check on -load")
	sloReport := fs.Bool("slo-report", false, "print the trace-derived per-window SLO report")
	windowMin := fs.Float64("window", 10, "tumbling window width in minutes for -slo-report and -diff")
	diff := fs.Bool("diff", false, "compare two JSONL recordings window by window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *windowMin <= 0 {
		return fmt.Errorf("window width must be positive, got %v", *windowMin)
	}
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two recordings, got %d", fs.NArg())
		}
		return runDiff(out, fs.Arg(0), fs.Arg(1), *windowMin*60, *workersFlag, *needFlag)
	}

	var (
		rec     *trace.Recorder
		horizon float64
		workers = *workersFlag
		need    = *needFlag
		desAvty = -1.0 // DES-reported availability (scenario runs only)
	)
	if *load != "" {
		var err error
		rec, err = loadRecording(*load)
		if err != nil {
			return err
		}
		horizon = lastEventTime(rec)
		fmt.Fprintf(out, "loaded %s: %d events\n", *load, rec.TotalLen())
	} else {
		app, err := workload.ByName(*appName)
		if err != nil {
			return err
		}
		if *spares < 0 {
			return fmt.Errorf("negative spares %d", *spares)
		}
		sized := int(*powerKW * 1000 / float64(app.GPUPower))
		if sized < 1 {
			sized = 1
		}
		var cfg netsim.Config
		if *planes > 0 {
			g, err := topo.Walker(*planes, *satsPerPlane, sized+*spares, *sudcEvery,
				time.Duration(*islDelayMs*float64(time.Millisecond)))
			if err != nil {
				return err
			}
			cfg = netsim.TopologyConfig(app, g)
			cfg.Constellation.FilterRate = *filter
			cfg.Shards = *shards
		} else {
			cfg = netsim.DefaultConfig(app)
			cfg.Constellation.Satellites = *satellites
			cfg.Constellation.FilterRate = *filter
			cfg.Workers = sized
			cfg.NeedWorkers = cfg.Workers
			cfg.Workers += *spares
		}
		cfg.ISLRate = units.GbpsOf(*islGbps)
		cfg.BatchSize = *batch
		cfg.Duration = time.Duration(*hours * float64(time.Hour))
		cfg.Seed = *seed
		cfg.Faults = faults.Scenario{
			NodeMTTF:      time.Duration(*mttfH * float64(time.Hour)),
			SEFIMTBE:      time.Duration(*sefiM * float64(time.Minute)),
			ISLOutageMTBF: time.Duration(*outageM * float64(time.Minute)),
		}
		if cfg.Faults.SEFIMTBE > 0 {
			cfg.Faults.SEFIRecovery = time.Duration(*sefiRecS * float64(time.Second))
		}
		if cfg.Faults.ISLOutageMTBF > 0 {
			cfg.Faults.ISLOutageDuration = time.Duration(*outageDurS * float64(time.Second))
		}
		cfg.RetryLimit = *retries
		cfg.ShedThreshold = *shed
		if *throttle > 0 {
			cal, err := degrade.CalibrationByName(*cots)
			if err != nil {
				return err
			}
			p := degrade.COTSProfile(*throttle)
			p.Cal = cal
			p.EclipseFraction = *eclipseFrac
			cfg.Degrade = &p
		}
		if *placementPol != "" {
			pol, err := placement.PolicyByName(*placementPol)
			if err != nil {
				return err
			}
			alg, err := compress.ByName(*placeCompress)
			if err != nil {
				return err
			}
			scen := placement.DefaultScenario(app)
			scen.FramesPerMinute = cfg.Constellation.FramesPerMinute
			scen.Satellites = *satellites
			scen.SpacePower = units.KW(*powerKW)
			scen.Workers = sized
			scen.ISLRate = cfg.ISLRate
			scen.EdgeServers = *edgeServers
			scen.LatencyWeight = *latencyWeight
			if alg.Ratio > 1 {
				scen.Compression = alg
			}
			pc, err := scen.Config(pol)
			if err != nil {
				return err
			}
			if *downlinkGbps > 0 {
				pc.DownlinkRate = units.GbpsOf(*downlinkGbps)
			}
			cfg.Placement = pc
		}
		rec = trace.New(0)
		cfg.Trace = rec
		s, err := netsim.Run(cfg)
		if err != nil {
			return err
		}
		horizon = cfg.Duration.Seconds()
		if *planes > 0 {
			// Per-cell scopes each hold the full SµDC complement, so the
			// trace cross-check runs against the per-cell worker count.
			workers, need = sized+*spares, sized+*spares
		} else {
			workers, need = cfg.Workers, cfg.NeedWorkers
		}
		if cfg.Faults.Enabled() {
			desAvty = s.Availability
		}
		if *planes > 0 {
			fmt.Fprintf(out, "%s: %d planes × %d satellites, SµDC every %d planes (%d workers each), %v over %v (seed %d) — %d cross-shard frames, %d events recorded\n",
				app.Name, *planes, *satsPerPlane, *sudcEvery, sized+*spares, cfg.ISLRate, cfg.Duration, *seed, s.CrossShardFrames, rec.TotalLen())
		} else {
			fmt.Fprintf(out, "%s: %d satellites, %d workers, %v over %v (seed %d) — %d events recorded\n",
				app.Name, *satellites, cfg.Workers, cfg.ISLRate, cfg.Duration, *seed, rec.TotalLen())
		}
	}

	analyze(out, rec, horizon, *topK, workers, need, desAvty)
	if *sloReport {
		sloSection(out, rec, *windowMin*60, horizon, workers, need, *topK)
	}

	if *jsonlOut != "" {
		if err := writeFile(*jsonlOut, rec.WriteJSONL); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote JSONL recording to %s\n", *jsonlOut)
	}
	if *chromeOut != "" {
		if err := writeFile(*chromeOut, rec.WriteChrome); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote Chrome trace to %s — open at ui.perfetto.dev\n", *chromeOut)
	}
	return nil
}

// analyze prints the full report: outcomes, stage breakdown, slowest
// frames, and degraded intervals. Everything printed derives from
// simulated time, so the report is deterministic for a given recording.
func analyze(out io.Writer, rec *trace.Recorder, horizon float64, topK, workers, need int, desAvty float64) {
	frames := latency.DecomposeAll(rec)

	outcomes := map[string]int{}
	for _, f := range frames {
		outcomes[f.Outcome]++
	}
	fmt.Fprintf(out, "\nframes: %d total", len(frames))
	for _, o := range []string{"downlinked", "processed", "shed", "lost", "in-flight"} {
		if outcomes[o] > 0 {
			fmt.Fprintf(out, ", %d %s", outcomes[o], o)
		}
	}
	fmt.Fprintln(out)
	tiers := map[string]int{}
	for _, f := range frames {
		if f.Tier != "" {
			tiers[f.Tier]++
		}
	}
	if len(tiers) > 0 {
		fmt.Fprintf(out, "placement tiers:")
		for _, name := range []string{"onboard", "space", "ground-edge", "cloud"} {
			if tiers[name] > 0 {
				fmt.Fprintf(out, " %d %s", tiers[name], name)
			}
		}
		fmt.Fprintln(out)
	}
	if dropped := totalDropped(rec); dropped > 0 {
		fmt.Fprintf(out, "WARNING: recorder dropped %d events at its bound; stats below are partial\n", dropped)
	}

	fmt.Fprintf(out, "\nStage breakdown (completed frames):\n")
	fmt.Fprintf(out, "  %-14s %7s %10s %10s %10s %10s %10s\n",
		"stage", "share", "mean", "p50", "p95", "p99", "max")
	for _, sm := range latency.Summarize(frames) {
		name := "end-to-end"
		if sm.Stage < latency.NumStages {
			name = sm.Stage.String()
		}
		fmt.Fprintf(out, "  %-14s %6.1f%% %9.1fms %8.1fms %8.1fms %8.1fms %8.1fms\n",
			name, 100*sm.Share, 1e3*sm.Mean, 1e3*sm.P50, 1e3*sm.P95, 1e3*sm.P99, 1e3*sm.Max)
	}

	slow := latency.TopK(frames, topK)
	if len(slow) > 0 {
		fmt.Fprintf(out, "\nTop %d slowest frames:\n", len(slow))
	}
	for _, f := range slow {
		scope := f.Scope
		if scope == "" {
			scope = "main"
		}
		fmt.Fprintf(out, "  frame %d [%s] %s after %.1fms (queue %.1f, transfer %.1f, backoff %.1f, compute %.1f, downlink-wait %.1f) causes: %s\n",
			f.ID, scope, f.Outcome, 1e3*f.Total(),
			1e3*f.Stages[latency.StageQueue], 1e3*f.Stages[latency.StageTransfer],
			1e3*f.Stages[latency.StageRetryBackoff], 1e3*f.Stages[latency.StageCompute],
			1e3*f.Stages[latency.StageDownlinkWait], latency.FormatCauses(f.Causes))
		for _, e := range f.Events {
			fmt.Fprintf(out, "    +%9.1fms  %s\n", 1e3*(e.T-f.Captured), describe(e))
		}
	}

	printDegraded(out, rec, horizon, workers, need, desAvty)
}

// printDegraded reports the fault windows of every scope plus the
// availability cross-check recomputed from fault events alone.
func printDegraded(out io.Writer, rec *trace.Recorder, horizon float64, workers, need int, desAvty float64) {
	scopes := append([]string{""}, rec.Scopes()...)
	header := false
	for _, scope := range scopes {
		r := rec
		if scope != "" {
			r = rec.Child(scope)
		}
		events := r.Events()
		ivs := latency.DegradedIntervals(events, horizon)
		if len(ivs) == 0 {
			continue
		}
		if !header {
			fmt.Fprintf(out, "\nDegraded intervals:\n")
			fmt.Fprintf(out, "  %-8s %-12s %10s %10s %5s %7s\n",
				"scope", "kind", "start", "dur", "node", "frames")
			header = true
		}
		name := scope
		if name == "" {
			name = "main"
		}
		for _, iv := range ivs {
			node := "-"
			if iv.Node >= 0 {
				node = fmt.Sprintf("%d", iv.Node)
			}
			fmt.Fprintf(out, "  %-8s %-12s %9.1fs %9.1fs %5s %7d\n",
				name, iv.Kind, iv.Start, iv.Duration(), node, iv.FramesStalled)
		}
		if workers > 0 && need > 0 {
			avty := latency.AvailabilityFromTrace(events, workers, need, horizon)
			fmt.Fprintf(out, "  %-8s availability from trace: %.4f%%", name, 100*avty)
			if desAvty >= 0 {
				fmt.Fprintf(out, " (DES reported %.4f%%)", 100*desAvty)
			}
			fmt.Fprintln(out)
		}
	}
	if !header {
		fmt.Fprintf(out, "\nNo degraded intervals: the recording has no fault events.\n")
	}
}

// describe renders one event for a frame timeline.
func describe(e trace.Event) string {
	switch e.Kind {
	case trace.FrameCaptured:
		return fmt.Sprintf("captured by satellite %d", e.Node)
	case trace.ISLSendStart:
		return "ISL transfer start"
	case trace.ISLSendEnd:
		if e.Cause != "" {
			return fmt.Sprintf("ISL transfer aborted (%s)", e.Cause)
		}
		return "ISL transfer done"
	case trace.Retry:
		return fmt.Sprintf("retry #%d, backoff %.3fs (%s)", e.Attempt, e.Backoff, e.Cause)
	case trace.Enqueued:
		if e.Cause != "" {
			return fmt.Sprintf("re-enqueued (%s)", e.Cause)
		}
		return "enqueued at SµDC input"
	case trace.Dispatched:
		return fmt.Sprintf("dispatched to worker %d", e.Node)
	case trace.ComputeEnd:
		return fmt.Sprintf("compute done on worker %d", e.Node)
	case trace.Downlinked:
		return "insight downlinked"
	case trace.Placed:
		return fmt.Sprintf("placed on the %s tier", e.Tier)
	case trace.Shed:
		return "shed from input queue"
	case trace.Lost:
		return fmt.Sprintf("lost after %d attempts (%s)", e.Attempt, e.Cause)
	case trace.Throttle:
		return fmt.Sprintf("thermal throttle ×%.2f for %.1fs", e.Mult, e.Dur)
	case trace.BrownoutStart:
		return fmt.Sprintf("eclipse brownout parks %d workers (%s)", e.N, e.Cause)
	case trace.BrownoutEnd:
		return fmt.Sprintf("brownout ends, %d workers restored", e.N)
	case trace.SLOAlert:
		return fmt.Sprintf("SLO alert %s fires in window %d, fast burn %.1f (cause %s)",
			e.Name, e.N, e.Mult, e.Cause)
	default:
		return e.Kind.String()
	}
}

// sloSection rebuilds the windowed telemetry from the recording and
// prints the SLO report plus a drill-down into the worst window's
// slowest frames.
func sloSection(out io.Writer, rec *trace.Recorder, width, horizon float64, workers, need, topK int) {
	wins := slo.WindowsFromTrace(rec, width, horizon, workers, need)
	fmt.Fprintln(out)
	if len(wins) == 0 {
		fmt.Fprintln(out, "SLO report: the recording has no frame events to window")
		return
	}
	cfg := slo.DefaultConfig()
	rep := slo.Run(cfg, wins)
	slo.WriteReport(out, cfg, wins, rep)

	// Worst window: the one with the highest summed burn across
	// objectives (earliest on ties).
	worst, worstBurn := -1, 0.0
	burns := map[int]float64{}
	for _, ev := range rep.Evals {
		burns[ev.Window] += ev.Burn
	}
	for _, w := range wins {
		if b := burns[w.Index]; worst < 0 || b > worstBurn {
			worst, worstBurn = w.Index, b
		}
	}
	var ww window.Window
	for _, w := range wins {
		if w.Index == worst {
			ww = w
		}
	}
	var inWin []latency.Frame
	for _, f := range latency.DecomposeAll(rec) {
		if f.Captured >= ww.Start && f.Captured < ww.End {
			inWin = append(inWin, f)
		}
	}
	fmt.Fprintf(out, "\nworst window w%03d [%.1fm, %.1fm): summed burn %.1f, cause %s\n",
		ww.Index, ww.Start/60, ww.End/60, worstBurn, slo.Attribute(&ww.Agg))
	for _, f := range latency.TopK(inWin, topK) {
		fmt.Fprintf(out, "  frame %d %s after %.1fms (queue %.1f, transfer %.1f, backoff %.1f, compute %.1f, downlink-wait %.1f) causes: %s\n",
			f.ID, f.Outcome, 1e3*f.Total(),
			1e3*f.Stages[latency.StageQueue], 1e3*f.Stages[latency.StageTransfer],
			1e3*f.Stages[latency.StageRetryBackoff], 1e3*f.Stages[latency.StageCompute],
			1e3*f.Stages[latency.StageDownlinkWait], latency.FormatCauses(f.Causes))
	}
}

// runDiff compares two recordings window by window: counter and metric
// deltas, the latency stage driving each window's shift, and the B
// side's environment attribution.
func runDiff(out io.Writer, pathA, pathB string, width float64, workers, need int) error {
	recA, err := loadRecording(pathA)
	if err != nil {
		return err
	}
	recB, err := loadRecording(pathB)
	if err != nil {
		return err
	}
	winsA := slo.WindowsFromTrace(recA, width, lastEventTime(recA), workers, need)
	winsB := slo.WindowsFromTrace(recB, width, lastEventTime(recB), workers, need)
	fmt.Fprintf(out, "diff %s (%d windows) → %s (%d windows), %.0f s windows\n\n",
		pathA, len(winsA), pathB, len(winsB), width)

	byIdx := func(wins []window.Window) map[int]window.Window {
		m := make(map[int]window.Window, len(wins))
		for _, w := range wins {
			m[w.Index] = w
		}
		return m
	}
	mA, mB := byIdx(winsA), byIdx(winsB)
	last := -1
	for i := range mA {
		if i > last {
			last = i
		}
	}
	for i := range mB {
		if i > last {
			last = i
		}
	}
	stagesA, stagesB := stagesByWindow(recA, width), stagesByWindow(recB, width)

	fmt.Fprintf(out, "  %-6s %11s %11s %10s %9s %10s  %-13s %s\n",
		"window", "gen", "done", "Δavail", "Δp99", "Δloss", "stageΔ", "cause (B)")
	for i := 0; i <= last; i++ {
		a, okA := mA[i]
		b, okB := mB[i]
		switch {
		case !okA && !okB:
			continue
		case !okB:
			fmt.Fprintf(out, "  w%03d   %5d→    - %5d→    -  only in A\n",
				i, a.Counts[window.CntGenerated], a.Counts[window.CntProcessed])
			continue
		case !okA:
			fmt.Fprintf(out, "  w%03d       -→%5d     -→%5d  only in B, cause %s\n",
				i, b.Counts[window.CntGenerated], b.Counts[window.CntProcessed], slo.Attribute(&b.Agg))
			continue
		}
		fmt.Fprintf(out, "  w%03d   %5d→%-5d %5d→%-5d %+8.2fpp %+8.1fs %+8.2fpp  %-13s %s\n",
			i,
			a.Counts[window.CntGenerated], b.Counts[window.CntGenerated],
			a.Counts[window.CntProcessed], b.Counts[window.CntProcessed],
			100*(b.Availability()-a.Availability()),
			b.LatQuantile(0.99)-a.LatQuantile(0.99),
			100*(b.LossRate()-a.LossRate()),
			stageDelta(stagesA[i], stagesB[i]), slo.Attribute(&b.Agg))
	}

	cfg := slo.DefaultConfig()
	repA, repB := slo.Run(cfg, winsA), slo.Run(cfg, winsB)
	fmt.Fprintf(out, "\nattainment %.1f%% → %.1f%%, burn-rate alerts %d → %d\n",
		100*repA.Attainment, 100*repB.Attainment, len(repA.Alerts), len(repB.Alerts))
	for _, a := range repB.Alerts {
		fmt.Fprintf(out, "  B alert w%03d %-14s fast %.1f  cause %s\n", a.Window, a.Objective, a.Fast, a.Cause)
	}
	return nil
}

// stageWindow is one window's per-stage latency sums over the frames
// completed in it.
type stageWindow struct {
	stages [latency.NumStages]float64
	frames int
}

// stagesByWindow buckets each completed frame's stage decomposition
// into the window holding its completion time.
func stagesByWindow(rec *trace.Recorder, width float64) map[int]stageWindow {
	m := map[int]stageWindow{}
	for _, f := range latency.DecomposeAll(rec) {
		if f.Outcome != "processed" && f.Outcome != "downlinked" {
			continue
		}
		i := int((f.Captured + f.Total()) / width)
		sw := m[i]
		for s := range f.Stages {
			sw.stages[s] += f.Stages[s]
		}
		sw.frames++
		m[i] = sw
	}
	return m
}

// stageDelta names the latency stage with the largest mean-seconds
// shift between two windows, signed ("+queue", "-backoff"); "-" when
// neither window completed frames.
func stageDelta(a, b stageWindow) string {
	var best latency.Stage
	var bestD float64
	found := false
	for s := latency.Stage(0); s < latency.NumStages; s++ {
		var am, bm float64
		if a.frames > 0 {
			am = a.stages[s] / float64(a.frames)
		}
		if b.frames > 0 {
			bm = b.stages[s] / float64(b.frames)
		}
		d := bm - am
		if !found || absf(d) > absf(bestD) {
			best, bestD, found = s, d, true
		}
	}
	if !found || (a.frames == 0 && b.frames == 0) || bestD == 0 {
		return "-"
	}
	sign := "+"
	if bestD < 0 {
		sign = "-"
	}
	return sign + best.String()
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// loadRecording opens and decodes one JSONL flight recording.
func loadRecording(path string) (*trace.Recorder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.DecodeJSONL(f)
}

// lastEventTime finds the recording's latest timestamp across scopes.
func lastEventTime(rec *trace.Recorder) float64 {
	var last float64
	for _, e := range rec.Events() {
		if e.T > last {
			last = e.T
		}
	}
	for _, name := range rec.Scopes() {
		if t := lastEventTime(rec.Child(name)); t > last {
			last = t
		}
	}
	return last
}

// totalDropped sums dropped-event counts across scopes.
func totalDropped(rec *trace.Recorder) int64 {
	n := rec.Dropped()
	for _, name := range rec.Scopes() {
		n += totalDropped(rec.Child(name))
	}
	return n
}

// writeFile creates path and streams the recording into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
