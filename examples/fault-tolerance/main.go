// Fault tolerance walkthrough: inject worker deaths, SEFI hangs, and ISL
// outages into the Figure 14 pipeline simulation, watch the degraded-mode
// policies (retry, re-dispatch, shedding) keep the SµDC alive, and then
// replay the paper's §VII overprovisioning argument end to end — the
// DES-measured availability under spares lands on the closed-form
// binomial curve, and the spares cost almost nothing because compute
// hardware is under 1% of the SµDC's TCO.
package main

import (
	"fmt"
	"log"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/experiments"
	"sudc/internal/faults"
	"sudc/internal/netsim"
	"sudc/internal/planner"
	"sudc/internal/workload"
)

func main() {
	app, err := workload.ByName("Air Pollution")
	if err != nil {
		log.Fatal(err)
	}

	// A small scenario where faults bite within a run: 4 workers whose
	// MTTF is half the simulated horizon, plus transient SEFI hangs and
	// ISL outage windows.
	cfg := netsim.DefaultConfig(app)
	cfg.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	cfg.Workers = 4
	cfg.NeedWorkers = 4
	cfg.BatchSize = 4
	cfg.BatchTimeout = 30 * time.Second
	cfg.Duration = 2 * time.Hour

	clean, err := netsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Faults = faults.Scenario{
		NodeMTTF:          time.Hour,
		SEFIMTBE:          20 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	faulty, err := netsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s over 2 h, 4 workers (MTTF 1 h, SEFI every 20 min, ISL outages):\n\n", app.Name)
	fmt.Printf("%-22s %12s %12s\n", "", "fault-free", "faulted")
	fmt.Printf("%-22s %12d %12d\n", "frames processed", clean.FramesProcessed, faulty.FramesProcessed)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "availability", 100*clean.Availability, 100*faulty.Availability)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "degraded time", 100*clean.DegradedFraction, 100*faulty.DegradedFraction)
	fmt.Printf("%-22s %12v %12v\n", "mean latency",
		clean.MeanLatency.Truncate(time.Second), faulty.MeanLatency.Truncate(time.Second))
	fmt.Printf("%-22s %12d %12d\n", "frames retried", clean.FramesRetried, faulty.FramesRetried)
	fmt.Printf("%-22s %12d %12d\n", "frames re-dispatched", clean.FramesRedispatched, faulty.FramesRedispatched)
	fmt.Printf("%-22s %12d %12d\n", "frames lost", clean.FramesLost, faulty.FramesLost)

	// Sweep spare workers: the DES availability climbs the binomial curve
	// the paper derives analytically, at near-zero TCO cost.
	fmt.Println("\nOverprovisioning sweep (node deaths only, MTTF = 2× horizon, 100 replicas):")
	fmt.Printf("\n%7s %6s %17s %10s %11s\n", "spares", "nodes", "DES availability", "analytic", "spare TCO")
	points, err := experiments.OverprovisionSweep(100)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("%7d %6d %16.1f%% %9.1f%% %10.2f%%\n",
			p.Spares, p.Nodes, 100*p.Measured, 100*p.Analytic, 100*p.SpareTCOShare)
	}

	// Fleet-level spares are whole satellites, so they are not free the
	// way in-chassis compute spares are — but cold-spare SµDCs ride the
	// deep end of the Wright learning curve, so each spare costs a
	// fraction of the lead unit.
	demands := make([]planner.Demand, 0, len(workload.Suite))
	for _, a := range workload.Suite {
		demands = append(demands, planner.Demand{App: a, Coverage: 1})
	}
	plan := planner.DefaultPlan(constellation.Default64, demands)
	plan.Spares = 2
	r, err := plan.Pack()
	if err != nil {
		log.Fatal(err)
	}
	perActive := r.FleetRE.Millions() - r.SpareCost.Millions()
	perActive /= float64(len(r.SuDCs))
	fmt.Printf("\nFleet plan with %d active + %d spare SµDCs: spares add $%.1fM of $%.1fM TCO (%.1f%%),\n",
		len(r.SuDCs), r.SpareUnits, r.SpareCost.Millions(), r.FleetTCO.Millions(),
		100*float64(r.SpareCost)/float64(r.FleetTCO))
	fmt.Printf("$%.1fM per spare vs $%.1fM mean per active unit (Wright learning, b = 0.75)\n",
		r.SpareCost.Millions()/float64(r.SpareUnits), perActive)
}
