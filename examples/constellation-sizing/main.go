// Constellation sizing: given an Earth-observation constellation and an
// application, decide how many SµDCs to fly, whether edge filtering on the
// EO satellites pays off, and whether a distributed fleet beats one big
// satellite — the paper's §V and §VI studies, run as a planning tool.
//
// The example also replays the chosen configuration through the
// discrete-event simulator to confirm the analytical sizing holds under
// bursty arrivals and batching.
package main

import (
	"fmt"
	"log"

	"sudc/internal/constellation"
	"sudc/internal/core"
	"sudc/internal/netsim"
	"sudc/internal/units"
	"sudc/internal/workload"
	"sudc/internal/wright"
)

func main() {
	app, err := workload.ByName("Flood Detection")
	if err != nil {
		log.Fatal(err)
	}
	eo := constellation.Default64

	fmt.Printf("Sizing SµDC capacity for %q over a %d-satellite constellation\n\n",
		app.Name, eo.Satellites)

	// 1. How many 4 kW SµDCs does the constellation need?
	n, err := eo.SuDCsNeeded(app, units.KW(4))
	if err != nil {
		log.Fatal(err)
	}
	demand, _ := eo.DataDemand(app)
	fmt.Printf("Offered load %v → %d × 4 kW SµDC(s)\n\n", demand, n)

	// 2. Would collaborative compute (cloud filtering on the EO
	//    satellites, ~2/3 of frames discarded) shrink the bill?
	base := core.DefaultConfig(units.KW(4))
	for _, phi := range []float64{0, 0.5, 2.0 / 3} {
		cfg, err := constellation.CollaborativeConfig(base, phi, 1)
		if err != nil {
			log.Fatal(err)
		}
		tco, err := cfg.TCO()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  filtering %.2f → %v SµDC, TCO %s\n", phi, cfg.ComputePower, tco)
	}

	// 3. Distributed vs monolithic: for a 16 kW aggregate, is one big
	//    SµDC or several small ones cheaper once Wright's-law learning
	//    kicks in?
	fmt.Println("\nDistributed vs monolithic at 16 kW aggregate (b = 0.75):")
	costFn := func(per units.Power) (units.Dollars, units.Dollars, error) {
		b, err := core.DefaultConfig(per).Breakdown()
		if err != nil {
			return 0, 0, err
		}
		tot := b.Total()
		return tot.NRE, tot.RE, nil
	}
	points, err := wright.DefaultAerospace.Sweep(units.KW(16), 6, costFn)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("  %d × %-7v → %s\n", p.Satellites, p.PerSatellite, p.Total)
	}
	best, _ := wright.Best(points)
	fmt.Printf("  → optimum: %d satellite(s)\n\n", best.Satellites)

	// 4. Confirm the sizing dynamically: replay the scenario in the
	//    discrete-event simulator.
	sim := netsim.DefaultConfig(app)
	stats, err := netsim.Run(sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Discrete-event check (2 h simulated):\n")
	fmt.Printf("  frames %d processed / %d generated, backlog %d\n",
		stats.FramesProcessed, stats.FramesGenerated, stats.Backlog)
	fmt.Printf("  worker utilization %.0f%%, ISL utilization %.0f%%\n",
		100*stats.WorkerUtilization, 100*stats.ISLUtilization)
	fmt.Printf("  mean latency %v (p95 %v)\n", stats.MeanLatency, stats.P95Latency)
	if stats.KeptUp {
		fmt.Println("  → the SµDC keeps up with the constellation")
	} else {
		fmt.Println("  → undersized: the SµDC falls behind")
	}
}
