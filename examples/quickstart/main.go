// Quickstart: design a 4 kW Space Microdatacenter with the library's
// defaults, print its headline physical figures and total cost of
// ownership, and show how the main design knobs move the answer.
package main

import (
	"fmt"
	"log"

	"sudc"
)

func main() {
	// The one-liner: price the paper's reference 4 kW SµDC.
	cfg := sudc.Config(4 * sudc.Kilowatt)
	tco, err := sudc.TCO(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A 4 kW SµDC costs %s over its 5-year mission.\n\n", tco)

	// The two-step flow exposes the full physical design.
	design, err := sudc.Design(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Physical design:\n")
	fmt.Printf("  wet mass      %s\n", design.WetMass)
	fmt.Printf("  solar array   %s at beginning of life\n", design.EPS.BOLArrayPower)
	fmt.Printf("  radiator      %.1f m²\n", design.Thermal.Area.SquareMeters())
	fmt.Printf("  ISL           %s\n\n", design.InstalledISLRate)

	// And the costed breakdown, subsystem by subsystem.
	breakdown, err := design.Cost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top cost drivers:")
	for _, item := range breakdown.SortedItems() {
		if share := breakdown.Share(item.Subsystem); share > 0.08 {
			fmt.Printf("  %-14s %5.1f%%\n", item.Subsystem, 100*share)
		}
	}

	// The paper's headline: TCO scales sublinearly in compute power.
	fmt.Println("\nTCO vs compute power (the paper's Figure 5 headline):")
	base := 0.0
	for _, kw := range []float64{0.5, 2, 4, 10} {
		v, err := sudc.TCO(sudc.Config(sudc.KW(kw)))
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = float64(v)
		}
		fmt.Printf("  %5.1f kW: %8s  (%.2f× the 500 W SµDC)\n", kw, v, float64(v)/base)
	}

	// Longer missions cost superlinearly more.
	fmt.Println("\nTCO vs lifetime for the 4 kW design:")
	for _, years := range []float64{1, 5, 10} {
		c := cfg
		c.Lifetime = sudc.Years(years)
		v, err := sudc.TCO(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f yr: %s\n", years, v)
	}
}
