// Reliability planning: use the paper's §VII/§VIII models to decide how a
// SµDC should buy availability — near-zero-cost compute overprovisioning
// versus classical hardware redundancy — and check that COTS silicon
// survives the LEO radiation environment at all.
package main

import (
	"fmt"
	"log"

	"sudc/internal/core"
	"sudc/internal/orbit"
	"sudc/internal/reliability"
	"sudc/internal/units"
)

func main() {
	// 1. Radiation: does a COTS payload survive a 5-year LEO mission?
	leo := orbit.Orbit{AltitudeM: 550e3, InclinationDeg: 53}
	env := leo.RadiationAt(200) // 200 mils of aluminum shielding
	dose := env.LifetimeDose(5)
	fmt.Printf("5-year dose at 550 km behind 200 mils Al: %v\n", dose)
	for _, r := range reliability.TIDDataset() {
		if r.TechNodeNm <= 32 {
			fmt.Printf("  %-22s tolerates %v krad (%.0f× margin)\n",
				r.Processor, r.ToleranceKrad, r.ToleranceKrad/float64(dose))
		}
	}

	// 2. Overprovisioning: the SµDC needs 10 working servers. Spare
	//    servers are nearly free (<1% of TCO), so how many to fly?
	fmt.Println("\nAvailability with n servers installed (10 needed):")
	fmt.Printf("  %-4s %-22s %-22s\n", "n", "median degradation at", "1% availability at")
	for _, n := range []int{10, 20, 30} {
		median, err := reliability.TimeToAvailability(n, 10, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		one, _ := reliability.TimeToAvailability(n, 10, 0.01)
		fmt.Printf("  %-4d %-22s %-22s\n", n,
			fmt.Sprintf("%.2f × MTTF", median), fmt.Sprintf("%.2f × MTTF", one))
	}

	// What does tripling the server count actually cost? Almost nothing:
	// spares stay powered off, so only hardware mass and price grow.
	base, err := core.DefaultConfig(units.KW(4)).Breakdown()
	if err != nil {
		log.Fatal(err)
	}
	over := core.DefaultConfig(units.KW(4))
	over.Server.IntegrationCostFactor *= 3 // 3× the boards, same power
	ob, err := over.Breakdown()
	if err != nil {
		log.Fatal(err)
	}
	extra := float64(ob.TCO())/float64(base.TCO()) - 1
	fmt.Printf("\n3× compute overprovisioning (powered off) costs +%.1f%% TCO.\n", 100*extra)

	// 3. Compare against hardware redundancy, which multiplies *powered*
	//    compute and drags the whole power/thermal/mass chain with it.
	fmt.Println("\nRedundancy schemes for 4 kW of equivalent compute:")
	baseTCO, err := core.DefaultConfig(units.KW(4)).TCO()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range reliability.Schemes() {
		cfg := core.DefaultConfig(units.Power(4000 * s.PowerOverhead))
		v, err := cfg.TCO()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %.0f%% power overhead → %.2f× TCO\n",
			s.Name, 100*(s.PowerOverhead-1), float64(v)/float64(baseTCO))
	}
	fmt.Println("\n→ software hardening + powered-off spares buy availability for")
	fmt.Println("  a few percent of TCO; TMR nearly doubles it.")

	// 4. Soft errors: the pessimistic accuracy model behind the 20%
	//    software-hardening overhead.
	fmt.Println("\nImageNet accuracy under soft-error flux (pessimistic model):")
	for _, n := range reliability.SoftErrorSuite() {
		clean, _ := n.AccuracyUnderFlux(0)
		noisy, err := n.AccuracyUnderFlux(0.1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %.3f → %.3f at 0.1 upsets/Mbit/s\n", n.Name, clean, noisy)
	}
}
