// Accelerator design-space exploration: sweep the 7168 Eyeriss-like
// row-stationary designs over the Earth-observation CNN suite and compare
// the three system architectures of the paper's Figure 18 — one global
// accelerator, one per network, one per layer — then translate the energy
// efficiency gains into SµDC TCO (the paper's §IV argument that extreme
// heterogeneity wins in space even though it would never pay on Earth).
package main

import (
	"fmt"
	"log"

	"sudc/internal/accel"
	"sudc/internal/core"
	"sudc/internal/dse"
	"sudc/internal/terrestrial"
	"sudc/internal/units"
	"sudc/internal/workload"
)

func main() {
	fmt.Printf("Exploring %d accelerator designs over %d networks…\n\n",
		dse.SpaceSize, len(workload.Networks()))
	result, err := dse.Explore(workload.Suite, accel.RTX3090Baseline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Globally optimal design: %s\n\n", result.Global)
	fmt.Printf("%-14s %10s %10s %10s  %s\n", "network", "global", "per-net", "per-layer", "per-network design")
	for _, n := range result.Networks {
		fmt.Printf("%-14s %9.1f× %9.1f× %9.1f×  %s\n",
			n.Network, n.GlobalGain(), n.PerNetworkGain(), n.PerLayerGain(), n.BestConfig)
	}
	fmt.Printf("%-14s %9.1f× %9.1f× %9.1f×\n\n", "geomean",
		result.MeanGlobalGain(), result.MeanPerNetworkGain(), result.MeanPerLayerGain())

	// Translate energy efficiency into TCO: the same EO workload needs
	// 1/gain of the compute power.
	fmt.Println("SµDC TCO for the 4 kW workload under each architecture:")
	baseISL := core.DesignISLRate(units.KW(4))
	tcoAt := func(gain float64) units.Dollars {
		cfg := core.DefaultConfig(units.Power(4000 / gain))
		cfg.ISLRate = baseISL
		v, err := cfg.TCO()
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	gpu := tcoAt(1)
	rows := []struct {
		name string
		gain float64
	}{
		{"commodity GPU (RTX 3090)", 1},
		{"global accelerator", result.MeanGlobalGain()},
		{"per-network accelerators", result.MeanPerNetworkGain()},
		{"per-layer accelerators", result.MeanPerLayerGain()},
	}
	for _, r := range rows {
		v := tcoAt(r.gain)
		fmt.Printf("  %-26s %8s  (%.0f%% below GPU)\n", r.name, v, 100*(1-float64(v)/float64(gpu)))
	}

	// The same efficiency gain barely moves a terrestrial datacenter's
	// TCO — and with realistic hardware-price scaling it backfires.
	fmt.Println("\nThe same gain applied to a terrestrial datacenter (Hardy model):")
	e := result.MeanPerLayerGain()
	flat, err := terrestrial.Hardy.RelativeTCO(e, terrestrial.DefaultScaling, terrestrial.ConstantPrice)
	if err != nil {
		log.Fatal(err)
	}
	logp, _ := terrestrial.Hardy.RelativeTCO(e, terrestrial.DefaultScaling, terrestrial.LogarithmicPrice)
	fmt.Printf("  constant hardware prices:    %.2f× baseline TCO\n", flat)
	fmt.Printf("  log hardware price scaling:  %.2f× baseline TCO (heterogeneity does not pay on Earth)\n", logp)
}
