// Trade study: sweep the SµDC design space in several dimensions at once
// and extract the Pareto-efficient designs — the multi-dimensional
// generalization of the paper's one-axis sensitivity figures, run the way
// a mission designer would.
package main

import (
	"fmt"
	"log"
	"sort"

	"sudc/internal/core"
	"sudc/internal/trade"
	"sudc/internal/units"
)

func main() {
	base := core.DefaultConfig(units.KW(4))

	// 1. A three-dimensional sweep: compute power × lifetime × altitude.
	dims := []trade.Dimension{
		trade.ComputePowerKW(0.5, 1, 2, 4, 8),
		trade.LifetimeYears(3, 5, 7),
		trade.AltitudeKM(450, 550, 700),
	}
	points, err := trade.Sweep(base, dims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Swept %d designs (power × lifetime × altitude).\n\n", len(points))

	// 2. The cheapest design per compute level.
	fmt.Println("Cheapest design per compute level:")
	byPower := map[float64]trade.Point{}
	for _, p := range points {
		kw := p.Coords["compute kW"]
		if cur, ok := byPower[kw]; !ok || p.TCO < cur.TCO {
			byPower[kw] = p
		}
	}
	var powers []float64
	for kw := range byPower {
		powers = append(powers, kw)
	}
	sort.Float64s(powers)
	for _, kw := range powers {
		p := byPower[kw]
		fmt.Printf("  %4.1f kW → %s at %.0f km, %g yr (%.0f kg wet)\n",
			kw, p.TCO, p.Coords["altitude km"], p.Coords["lifetime yr"],
			p.WetMass.Kilograms())
	}

	// 3. The TCO-vs-capability Pareto front.
	front, err := trade.ParetoFront(points, []trade.Objective{
		trade.MinTCO, trade.MaxComputePower,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPareto front (min TCO, max compute): %d of %d designs\n", len(front), len(points))
	for _, p := range front {
		fmt.Printf("  %4.1f kW, %g yr, %.0f km → %s\n",
			p.Coords["compute kW"], p.Coords["lifetime yr"], p.Coords["altitude km"], p.TCO)
	}

	// 4. And the single cheapest way to fly 4 kW.
	var fourKW []trade.Point
	for _, p := range points {
		if p.Coords["compute kW"] == 4 {
			fourKW = append(fourKW, p)
		}
	}
	best, err := trade.Best(fourKW, trade.MinTCO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCheapest 4 kW mission: %g yr at %.0f km → %s\n",
		best.Coords["lifetime yr"], best.Coords["altitude km"], best.TCO)
}
