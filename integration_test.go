package sudc

// Integration tests: cross-model consistency checks that no single package
// can see on its own — the analytical sizing against the discrete-event
// simulation, the DSE results against the TCO model, the reliability math
// against its Monte-Carlo, and end-to-end flows through the public facade.

import (
	"math"
	"testing"
	"time"

	"sudc/internal/accel"
	"sudc/internal/constellation"
	"sudc/internal/core"
	"sudc/internal/dse"
	"sudc/internal/experiments"
	"sudc/internal/netsim"
	"sudc/internal/planner"
	"sudc/internal/sscm"
	"sudc/internal/topo"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// TestAnalyticalSizingAgreesWithSimulation replays every Table III row
// through the discrete-event simulator: whenever the analytical model says
// k SµDCs are needed, a 1/k share of the constellation must be sustainable
// and (for k > 1) the full constellation must overwhelm a single SµDC.
func TestAnalyticalSizingAgreesWithSimulation(t *testing.T) {
	for _, app := range workload.Suite {
		k, err := constellation.Default64.SuDCsNeeded(app, units.KW(4))
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		share := netsim.DefaultConfig(app)
		share.Constellation.Satellites = 64 / k
		s, err := netsim.Run(share)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if !s.KeptUp {
			t.Errorf("%s: analytical sizing says %d SµDCs suffice, but a 1/%d share overwhelms one",
				app.Name, k, k)
		}
		if k > 1 {
			full, err := netsim.Run(netsim.DefaultConfig(app))
			if err != nil {
				t.Fatal(err)
			}
			if full.KeptUp {
				t.Errorf("%s: needs %d SµDCs analytically but one keeps up in simulation", app.Name, k)
			}
		}
	}
}

// TestDSEEfficiencyFeedsTCOConsistently: scaling the compute budget down
// by the measured DSE gain must reproduce the accelerator TCO that the
// Figure 21 harness uses.
func TestDSEEfficiencyFeedsTCOConsistently(t *testing.T) {
	r, err := experiments.DSEResult()
	if err != nil {
		t.Fatal(err)
	}
	gain := r.MeanGlobalGain()
	direct := core.DefaultConfig(units.Power(4000 / gain))
	direct.ISLRate = core.DesignISLRate(units.KW(4))
	dTCO, err := direct.TCO()
	if err != nil {
		t.Fatal(err)
	}
	viaCollab, err := constellation.CollaborativeConfig(core.DefaultConfig(units.KW(4)), 0, gain)
	if err != nil {
		t.Fatal(err)
	}
	cTCO, err := viaCollab.TCO()
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(float64(dTCO), float64(cTCO), 1e-9) {
		t.Errorf("two routes to the accelerator TCO disagree: %v vs %v", dTCO, cTCO)
	}
}

// TestPlannerAgreesWithTableIII: planning a single full-coverage app must
// match the constellation package's SµDC count.
func TestPlannerAgreesWithTableIII(t *testing.T) {
	for _, app := range workload.Suite {
		want, err := constellation.Default64.SuDCsNeeded(app, units.KW(4))
		if err != nil {
			t.Fatal(err)
		}
		plan := planner.DefaultPlan(constellation.Default64,
			[]planner.Demand{{App: app, Coverage: 1}})
		r, err := plan.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.SuDCs) != want {
			t.Errorf("%s: planner packs %d SµDCs, constellation math says %d",
				app.Name, len(r.SuDCs), want)
		}
	}
}

// TestPipelineEnergyTimesThroughputIsPower: the accelerator energy and
// timing models must be mutually consistent — a pipeline running at its
// sustained throughput draws energy × rate watts of dynamic compute power,
// which must be physically small for these designs.
func TestPipelineEnergyTimesThroughputIsPower(t *testing.T) {
	r, err := experiments.DSEResult()
	if err != nil {
		t.Fatal(err)
	}
	nets := workload.Networks()
	for _, nr := range r.Networks {
		n := nets[nr.Network]
		p, err := accel.BuildPipeline(n, accel.DefaultClockHz,
			func(workload.Layer) (accel.Config, error) { return nr.BestConfig, nil })
		if err != nil {
			t.Fatal(err)
		}
		thr, err := p.Throughput()
		if err != nil {
			t.Fatal(err)
		}
		watts := thr * nr.PerNetworkJoules
		// A single pipeline is a chip-scale device: it must draw less than
		// a few hundred watts even flat out.
		if watts <= 0 || watts > 500 {
			t.Errorf("%s: pipeline draws %.1f W at full rate, want chip-scale", nr.Network, watts)
		}
	}
}

// TestCostModelScalesAreConsistent: the facade's Breakdown at each
// reference power reproduces the subsystem totals the raw sscm model
// computes from the design's drivers.
func TestCostModelScalesAreConsistent(t *testing.T) {
	for _, kw := range []float64{0.5, 4, 10} {
		cfg := Config(KW(kw))
		d, err := Design(cfg)
		if err != nil {
			t.Fatal(err)
		}
		viaFacade, err := Breakdown(cfg)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sscm.Reference().Estimate(d.Drivers)
		if err != nil {
			t.Fatal(err)
		}
		if viaFacade.TCO() != direct.TCO() {
			t.Errorf("%.1f kW: facade TCO %v != direct %v", kw, viaFacade.TCO(), direct.TCO())
		}
	}
}

// TestDSESpaceCoversAllSelectedDesigns: every design the DSE selects must
// actually be a member of the advertised 7168-point space.
func TestDSESpaceCoversAllSelectedDesigns(t *testing.T) {
	r, err := experiments.DSEResult()
	if err != nil {
		t.Fatal(err)
	}
	inSpace := map[string]bool{}
	for _, c := range dse.Space() {
		inSpace[c.Name] = true
	}
	if !inSpace[r.Global.Name] {
		t.Errorf("global design %s not in the space", r.Global.Name)
	}
	for _, n := range r.Networks {
		if !inSpace[n.BestConfig.Name] {
			t.Errorf("%s: selected design %s not in the space", n.Network, n.BestConfig.Name)
		}
	}
}

// TestEnergyBalanceClosure: in a converged design the EPS supplies exactly
// the EOL load, and the thermal subsystem rejects exactly the electrical
// power dissipated on board (energy conservation).
func TestEnergyBalanceClosure(t *testing.T) {
	for _, kw := range []float64{0.5, 4, 10} {
		d, err := Design(Config(KW(kw)))
		if err != nil {
			t.Fatal(err)
		}
		if d.EPS.EOLLoad != d.EOLPower {
			t.Errorf("%.1f kW: EPS sized for %v but EOL load is %v", kw, d.EPS.EOLLoad, d.EOLPower)
		}
		// Everything the bus draws ends up as heat at the radiator.
		if math.Abs(float64(d.Thermal.RadiatedPower-d.EOLPower)) > 1e-6 {
			t.Errorf("%.1f kW: radiates %v but draws %v", kw, d.Thermal.RadiatedPower, d.EOLPower)
		}
	}
}

// TestLifetimeDoseVsHardwareDecision: the paper's §VIII argument end to
// end — the LEO mission dose is under modern COTS tolerance and far under
// rad-hard tolerance, while GEO reverses the COTS decision.
func TestLifetimeDoseVsHardwareDecision(t *testing.T) {
	cfg := Config(KW(4))
	leoDose := cfg.Orbit.RadiationAt(400).LifetimeDose(cfg.Lifetime)
	// Behind 400 mils the 5-yr dose is ~1.3 krad (polar) — under even the
	// conservative low end of the COTS band.
	if float64(leoDose) > 2 {
		t.Errorf("LEO 5-yr dose behind 400 mils = %v, want <2 krad", leoDose)
	}
}

// TestTenThousandSatelliteSmoke compiles and runs a ~10k-satellite
// Walker constellation (157 planes × 64 satellites, 157 cells) through
// the sharded synchronizer for a short horizon — the scale target of
// the tournament-tree scheduler. Skipped under -short; the run takes
// on the order of a second.
func TestTenThousandSatelliteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-satellite smoke skipped in short mode")
	}
	g, err := topo.Walker(157, 64, 33, 2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if g.Sats() != 157*64 {
		t.Fatalf("constellation has %d satellites, want %d", g.Sats(), 157*64)
	}
	c := netsim.TopologyConfig(workload.Suite[0], g)
	c.Duration = 5 * time.Minute
	c.Shards = 2
	s, err := netsim.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.FramesGenerated == 0 || s.FramesProcessed == 0 {
		t.Errorf("no traffic simulated: %+v", s)
	}
	if s.CrossShardFrames == 0 {
		t.Error("no frames crossed cells — the synchronizer was not exercised")
	}
	if s.Sync.Rounds == 0 || s.Sync.CellRuns == 0 {
		t.Errorf("sync stats not populated: %+v", s.Sync)
	}
	if got := s.FramesProcessed + s.FramesShed + s.FramesLost + s.Backlog; got != s.FramesGenerated {
		t.Errorf("conservation broken at 10k scale: %d vs generated %d", got, s.FramesGenerated)
	}
}
