package sudc

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := Config(4 * Kilowatt)
	d, err := Design(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.WetMass <= 0 {
		t.Error("design must have mass")
	}
	b, err := d.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if b.TCO() <= 0 {
		t.Error("TCO must be positive")
	}
	// Convenience entry points agree with the two-step flow.
	v, err := TCO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v != b.TCO() {
		t.Errorf("TCO() = %v, Design+Cost = %v", v, b.TCO())
	}
	bd, err := Breakdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bd.TCO() != v {
		t.Error("Breakdown TCO mismatch")
	}
}

func TestHelpers(t *testing.T) {
	if KW(4) != 4*Kilowatt {
		t.Error("KW helper mismatch")
	}
	if Gbps(25).Gigabits() != 25 {
		t.Error("Gbps helper mismatch")
	}
}

func TestExperimentsExposed(t *testing.T) {
	all := Experiments()
	if len(all) != 25 {
		t.Fatalf("have %d experiments, want 25", len(all))
	}
	tbl, err := RunExperiment("Table III")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Errorf("Table III rows = %d, want 10", len(tbl.Rows))
	}
	if _, err := RunExperiment("Figure 0"); err == nil {
		t.Error("unknown exhibit must error")
	}
}

func TestInvalidConfigSurfacesError(t *testing.T) {
	cfg := Config(0)
	if _, err := Design(cfg); err == nil {
		t.Error("zero power must error")
	}
	if _, err := TCO(cfg); err == nil {
		t.Error("zero power must error through TCO")
	}
	if _, err := Breakdown(cfg); err == nil {
		t.Error("zero power must error through Breakdown")
	}
}
