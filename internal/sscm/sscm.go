// Package sscm implements the parametric cost-estimating-relationship (CER)
// model at the heart of the paper's TCO analysis. It mirrors the structure
// of the Aerospace Corporation's Small Satellite Cost Model (SSCM): every
// satellite subsystem has a non-recurring (NRE: design, verification, test,
// management, prototype) and a recurring (RE: procurement, launch, lifetime
// management) cost-estimating relationship in a physical driver (subsystem
// mass, installed power, data rate), plus "wrap" costs (integration,
// assembly & test; program management; launch & orbital operations support)
// proportional to the bus subtotal.
//
// SSCM's actual regression coefficients are proprietary. The CERs here have
// the same power-law-plus-fixed-share form and are calibrated against the
// behaviours the paper reports: the Figure 3 subsystem breakdown of a 4 kW
// SµDC, <4× TCO growth for 20× compute power (Fig. 5), and compute
// hardware below 1 % of TCO. The fixed share of each CER implements the
// paper's stated source of sublinearity: "costs associated with design,
// test, and integration of these subsystems scale sublinearly".
//
// Two parameter sets ship: Reference (SSCM-SµDC-like; active-cooling power
// is costed in the power subsystem) and Alt (SEER-Space-like; active
// cooling is costed in the thermal subsystem). The paper's Figure 3
// discusses exactly this accounting difference.
package sscm

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"sudc/internal/units"
)

// Subsystem enumerates the cost categories of the model.
type Subsystem int

// Subsystems in reporting order.
const (
	Power Subsystem = iota
	Thermal
	Structure
	ADCS
	Propulsion
	CDH
	TTC
	PayloadCompute
	FSOComm
	IAT
	ProgramMgmt
	LOOS
	Launch
	Operations
	numSubsystems
)

var subsystemNames = [...]string{
	"power", "thermal", "structure", "adcs", "propulsion", "cdh", "ttc",
	"payload-compute", "fso-isl", "iat", "program-mgmt", "loos", "launch",
	"operations",
}

func (s Subsystem) String() string {
	if s < 0 || int(s) >= len(subsystemNames) {
		return fmt.Sprintf("Subsystem(%d)", int(s))
	}
	return subsystemNames[s]
}

// Subsystems returns all cost categories in reporting order.
func Subsystems() []Subsystem {
	out := make([]Subsystem, numSubsystems)
	for i := range out {
		out[i] = Subsystem(i)
	}
	return out
}

// CER is one cost-estimating relationship:
//
//	cost(x) = Base × (FixedShare + (1−FixedShare)·(x/RefDriver)^Exp)
//
// Base is the cost at the reference driver value; FixedShare is the
// fraction of that cost that does not scale with the driver.
type CER struct {
	// Base is the cost in dollars at x = RefDriver.
	Base units.Dollars
	// RefDriver is the driver value the Base is anchored at.
	RefDriver float64
	// Exp is the power-law exponent on the scaling share.
	Exp float64
	// FixedShare in [0,1] is the non-scaling fraction of Base.
	FixedShare float64
}

// Eval evaluates the CER at driver value x (clamped at ≥ 0).
func (c CER) Eval(x float64) units.Dollars {
	if c.Base == 0 {
		return 0
	}
	if x < 0 {
		x = 0
	}
	if c.RefDriver <= 0 {
		return c.Base
	}
	scale := math.Pow(x/c.RefDriver, c.Exp)
	return units.Dollars(float64(c.Base) * (c.FixedShare + (1-c.FixedShare)*scale))
}

// Drivers carries the physical design parameters a sized satellite exposes
// to the cost model (the core package computes these).
type Drivers struct {
	// BOLPower is beginning-of-life installed array power, W.
	BOLPower float64
	// ExtraPowerHardwareCost is pass-through recurring cost for power
	// sources the CER regression does not cover (e.g. an RTG's isotope
	// and thermocouples), $.
	ExtraPowerHardwareCost float64
	// PumpBOLPower is the share of BOLPower attributable to the active
	// thermal-control heat pump, W (used for the SSCM/SEER accounting
	// difference).
	PumpBOLPower float64
	// ThermalMass is radiator + pump + loop mass, kg.
	ThermalMass float64
	// StructureMass is bus primary/secondary structure mass, kg.
	StructureMass float64
	// ADCSMass is attitude-control hardware mass, kg.
	ADCSMass float64
	// PropulsionWetMass is propulsion dry mass + propellant, kg.
	PropulsionWetMass float64
	// CDHRateMbps is the C&DH throughput in Mbit/s *after* the FSO→X-band
	// downscaling (see package fso).
	CDHRateMbps float64
	// ComputeHardwareCost is the recurring compute fleet cost, $.
	ComputeHardwareCost float64
	// ComputeMass is packaged compute mass, kg (drives integration cost).
	ComputeMass float64
	// ISLHardwareCost is the optical terminal hardware cost, $.
	ISLHardwareCost float64
	// ISLMass is optical terminal mass, kg.
	ISLMass float64
	// DryMass and WetMass are satellite totals, kg.
	DryMass float64
	WetMass float64
	// Lifetime is the design mission duration.
	Lifetime units.Years
}

// Validate reports obviously inconsistent drivers.
func (d Drivers) Validate() error {
	switch {
	case d.BOLPower < 0 || d.ThermalMass < 0 || d.StructureMass < 0 ||
		d.ADCSMass < 0 || d.PropulsionWetMass < 0 || d.CDHRateMbps < 0 ||
		d.ExtraPowerHardwareCost < 0:
		return errors.New("sscm: negative driver")
	case d.WetMass < d.DryMass:
		return errors.New("sscm: wet mass below dry mass")
	case d.Lifetime <= 0:
		return errors.New("sscm: non-positive lifetime")
	case d.PumpBOLPower > d.BOLPower:
		return errors.New("sscm: pump power exceeds total BOL power")
	}
	return nil
}

// Cost is an NRE/RE pair.
type Cost struct {
	NRE units.Dollars
	RE  units.Dollars
}

// FirstUnit is NRE + RE — the cost of the first satellite (paper §II).
func (c Cost) FirstUnit() units.Dollars { return c.NRE + c.RE }

// Add returns the sum of two costs.
func (c Cost) Add(o Cost) Cost { return Cost{NRE: c.NRE + o.NRE, RE: c.RE + o.RE} }

// Scale returns the cost with both components multiplied by f.
func (c Cost) Scale(f float64) Cost {
	return Cost{NRE: units.Dollars(float64(c.NRE) * f), RE: units.Dollars(float64(c.RE) * f)}
}

// Breakdown is a full cost estimate by subsystem.
type Breakdown struct {
	Items map[Subsystem]Cost
}

// Total sums all subsystems. Summation is in subsystem order so the result
// is deterministic (float addition is not associative across map order).
func (b Breakdown) Total() Cost {
	var t Cost
	for _, it := range b.SortedItems() {
		t = t.Add(it.Cost)
	}
	return t
}

// TCO returns the first-unit total cost of ownership: all NRE + all RE.
func (b Breakdown) TCO() units.Dollars { return b.Total().FirstUnit() }

// RE returns the recurring total (the marginal satellite before learning).
func (b Breakdown) RE() units.Dollars { return b.Total().RE }

// Share returns subsystem s's fraction of first-unit TCO.
func (b Breakdown) Share(s Subsystem) float64 {
	t := float64(b.TCO())
	if t == 0 {
		return 0
	}
	return float64(b.Items[s].FirstUnit()) / t
}

// SortedItems returns (subsystem, cost) pairs in reporting order, for
// stable printing.
func (b Breakdown) SortedItems() []struct {
	Subsystem Subsystem
	Cost      Cost
} {
	keys := make([]Subsystem, 0, len(b.Items))
	for k := range b.Items {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]struct {
		Subsystem Subsystem
		Cost      Cost
	}, len(keys))
	for i, k := range keys {
		out[i] = struct {
			Subsystem Subsystem
			Cost      Cost
		}{k, b.Items[k]}
	}
	return out
}

// Model is a full CER parameter set.
type Model struct {
	Name string
	// Subsystem CERs (hardware-bearing categories).
	PowerCER      CER // driver: BOL power, W
	ThermalCER    CER // driver: thermal mass, kg
	StructureCER  CER // driver: structure mass, kg
	ADCSCER       CER // driver: ADCS mass, kg
	PropulsionCER CER // driver: propulsion wet mass, kg
	CDHCER        CER // driver: C&DH rate, Mbit/s (X-band equivalent)
	TTCCER        CER // driver: dry mass, kg (antenna/EIRP scales weakly)

	// Payload integration CERs (hardware cost itself is pass-through).
	ComputeIntegrationPerKg units.Dollars
	ISLIntegrationPerKg     units.Dollars

	// Wrap fractions applied to the bus subtotal (hardware subsystems).
	IATFraction  float64
	PMFraction   float64
	LOOSFraction float64

	// LaunchPerKg is launch cost per wet kg.
	LaunchPerKg units.Dollars
	// OpsPerYear is the baseline operations cost per year; it scales with
	// sqrt of dry mass relative to OpsRefDryMass.
	OpsPerYear    units.Dollars
	OpsRefDryMass float64

	// Reliability growth: NRE and RE multipliers grow linearly with
	// lifetime beyond RefLifetime ("NRE and RE costs increase with
	// lifetime, as additional reliability features are required").
	RefLifetime   units.Years
	NREPerYear    float64
	REPerYear     float64
	NREShareOfRef float64 // NRE at the reference point = share × RE
	// NREExp is the exponent coupling NRE to RE across satellite sizes:
	// NRE = NREShareOfRef · Base · (RE/Base)^NREExp. Design, qualification
	// and test effort shrinks far more slowly than recurring hardware cost
	// when the satellite shrinks (NREExp < 1) — which is what keeps a
	// monolithic design competitive against many small satellites under
	// weak learning (Fig. 23).
	NREExp float64

	// ActiveCoolingInThermal books heat-pump power cost under the thermal
	// subsystem (SEER-Space style) instead of power (SSCM-SµDC style).
	ActiveCoolingInThermal bool
}

// Reference returns the SSCM-SµDC-like parameter set. CER bases are
// anchored at the paper's 4 kW reference design point.
func Reference() Model {
	return Model{
		Name: "SSCM-SµDC",
		// 4 kW reference drivers: BOL ≈ 10.6 kW, thermal ≈ 64 kg,
		// structure ≈ 125 kg, ADCS ≈ 14 kg, propulsion wet ≈ 100 kg,
		// C&DH ≈ 130 Mbit/s X-band-equivalent, dry ≈ 650 kg.
		PowerCER:      CER{Base: units.MUSD(17.0), RefDriver: 10600, Exp: 0.87, FixedShare: 0.12},
		ThermalCER:    CER{Base: units.MUSD(2.4), RefDriver: 100, Exp: 0.75, FixedShare: 0.20},
		StructureCER:  CER{Base: units.MUSD(3.2), RefDriver: 135, Exp: 0.75, FixedShare: 0.20},
		ADCSCER:       CER{Base: units.MUSD(2.8), RefDriver: 15, Exp: 0.60, FixedShare: 0.15},
		PropulsionCER: CER{Base: units.MUSD(4.8), RefDriver: 80, Exp: 0.65, FixedShare: 0.25},
		CDHCER:        CER{Base: units.MUSD(2.2), RefDriver: 130, Exp: 0.28, FixedShare: 0.30},
		TTCCER:        CER{Base: units.MUSD(1.0), RefDriver: 700, Exp: 0.20, FixedShare: 0.40},

		ComputeIntegrationPerKg: 1500,
		ISLIntegrationPerKg:     8000,

		IATFraction:  0.15,
		PMFraction:   0.12,
		LOOSFraction: 0.05,

		LaunchPerKg:   3500,
		OpsPerYear:    units.MUSD(0.8),
		OpsRefDryMass: 650,

		RefLifetime:   5,
		NREPerYear:    0.06,
		REPerYear:     0.04,
		NREShareOfRef: 0.89,
		NREExp:        0.60,
	}
}

// Alt returns the SEER-Space-like parameter set: the same physical model
// but with active-cooling power booked under thermal, a cheaper ADCS (no
// fine-grained pointing parameters) and a costlier propulsion treatment
// replaced by an ion-tolerant one (paper Fig. 3 discussion: SEER
// under-books ADCS and SSCM-SµDC over-books propulsion).
func Alt() Model {
	m := Reference()
	m.Name = "SEER-like"
	m.ActiveCoolingInThermal = true
	m.ADCSCER.Base = units.MUSD(2.6)       // coarse stock pointing model
	m.PropulsionCER.Base = units.MUSD(3.4) // ion-thruster-aware CER
	m.StructureCER.Base = units.MUSD(3.0)
	return m
}

// Estimate produces the full NRE/RE breakdown for the drivers.
func (m Model) Estimate(d Drivers) (Breakdown, error) {
	if err := d.Validate(); err != nil {
		return Breakdown{}, err
	}

	// Accounting switch: under SEER-like accounting the power subsystem is
	// costed on the array power net of the pump's share, and the pump's
	// share is costed through the thermal subsystem at the power CER rate.
	powerDriver := d.BOLPower
	var pumpPowerCost Cost
	if m.ActiveCoolingInThermal && d.PumpBOLPower > 0 {
		powerDriver = d.BOLPower - d.PumpBOLPower
		full := m.hw(m.PowerCER, d.BOLPower)
		net := m.hw(m.PowerCER, powerDriver)
		pumpPowerCost = Cost{NRE: full.NRE - net.NRE, RE: full.RE - net.RE}
	}

	powerCost := m.hw(m.PowerCER, powerDriver)
	if d.ExtraPowerHardwareCost > 0 {
		powerCost = powerCost.Add(Cost{
			RE:  units.Dollars(d.ExtraPowerHardwareCost),
			NRE: units.Dollars(0.3 * d.ExtraPowerHardwareCost),
		})
	}
	items := map[Subsystem]Cost{
		Power:      powerCost,
		Thermal:    m.hw(m.ThermalCER, d.ThermalMass).Add(pumpPowerCost),
		Structure:  m.hw(m.StructureCER, d.StructureMass),
		ADCS:       m.hw(m.ADCSCER, d.ADCSMass),
		Propulsion: m.hw(m.PropulsionCER, d.PropulsionWetMass),
		CDH:        m.hw(m.CDHCER, d.CDHRateMbps),
		TTC:        m.hw(m.TTCCER, d.DryMass),
	}

	// Payloads: hardware is pass-through RE; integration per kg; a small
	// NRE share for payload accommodation engineering.
	computeRE := d.ComputeHardwareCost + float64(m.ComputeIntegrationPerKg)*d.ComputeMass
	items[PayloadCompute] = Cost{
		RE:  units.Dollars(computeRE),
		NRE: units.Dollars(0.5 * computeRE),
	}
	islRE := d.ISLHardwareCost + float64(m.ISLIntegrationPerKg)*d.ISLMass
	items[FSOComm] = Cost{
		RE:  units.Dollars(islRE),
		NRE: units.Dollars(0.6 * islRE),
	}

	// Lifetime reliability growth on hardware subsystems. Iterate in
	// fixed subsystem order so the float accumulation is deterministic.
	dl := float64(d.Lifetime - m.RefLifetime)
	nreMult := math.Max(0.5, 1+m.NREPerYear*dl)
	reMult := math.Max(0.5, 1+m.REPerYear*dl)
	var busSubtotal Cost
	for _, s := range Subsystems() {
		c, ok := items[s]
		if !ok {
			continue
		}
		c = Cost{
			NRE: units.Dollars(float64(c.NRE) * nreMult),
			RE:  units.Dollars(float64(c.RE) * reMult),
		}
		items[s] = c
		busSubtotal = busSubtotal.Add(c)
	}

	// Wraps.
	items[IAT] = busSubtotal.Scale(m.IATFraction)
	items[ProgramMgmt] = busSubtotal.Scale(m.PMFraction)
	items[LOOS] = busSubtotal.Scale(m.LOOSFraction)

	// Launch (pure RE) and operations (pure RE, lifetime-proportional).
	items[Launch] = Cost{RE: units.Dollars(float64(m.LaunchPerKg) * d.WetMass)}
	opsScale := 1.0
	if m.OpsRefDryMass > 0 && d.DryMass > 0 {
		opsScale = math.Sqrt(d.DryMass / m.OpsRefDryMass)
	}
	items[Operations] = Cost{
		RE: units.Dollars(float64(m.OpsPerYear) * float64(d.Lifetime) * opsScale),
	}

	return Breakdown{Items: items}, nil
}

// hw builds the NRE/RE pair for a hardware CER: RE is the CER value; NRE
// couples to it sublinearly — equal to NREShareOfRef × RE at the reference
// point, but shrinking (growing) much more slowly than RE away from it.
func (m Model) hw(c CER, driver float64) Cost {
	re := c.Eval(driver)
	nre := 0.0
	if c.Base > 0 && re > 0 {
		nre = m.NREShareOfRef * float64(c.Base) *
			math.Pow(float64(re)/float64(c.Base), m.NREExp)
	}
	return Cost{RE: re, NRE: units.Dollars(nre)}
}

// jsonItem is the serialized form of one subsystem's cost.
type jsonItem struct {
	Subsystem string  `json:"subsystem"`
	NRE       float64 `json:"nre_usd"`
	RE        float64 `json:"re_usd"`
	Share     float64 `json:"share_of_tco"`
}

// jsonBreakdown is the serialized form of a Breakdown.
type jsonBreakdown struct {
	Items []jsonItem `json:"items"`
	NRE   float64    `json:"total_nre_usd"`
	RE    float64    `json:"total_re_usd"`
	TCO   float64    `json:"tco_usd"`
}

// MarshalJSON serializes the breakdown with subsystem names and totals —
// the machine-readable counterpart of SortedItems for downstream tooling.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	out := jsonBreakdown{Items: make([]jsonItem, 0, len(b.Items))}
	for _, it := range b.SortedItems() {
		out.Items = append(out.Items, jsonItem{
			Subsystem: it.Subsystem.String(),
			NRE:       float64(it.Cost.NRE),
			RE:        float64(it.Cost.RE),
			Share:     b.Share(it.Subsystem),
		})
	}
	tot := b.Total()
	out.NRE = float64(tot.NRE)
	out.RE = float64(tot.RE)
	out.TCO = float64(b.TCO())
	return json.Marshal(out)
}

// UnmarshalJSON restores a breakdown serialized by MarshalJSON. Unknown
// subsystem names are rejected.
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var in jsonBreakdown
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	byName := map[string]Subsystem{}
	for _, s := range Subsystems() {
		byName[s.String()] = s
	}
	items := make(map[Subsystem]Cost, len(in.Items))
	for _, it := range in.Items {
		s, ok := byName[it.Subsystem]
		if !ok {
			return fmt.Errorf("sscm: unknown subsystem %q", it.Subsystem)
		}
		items[s] = Cost{NRE: units.Dollars(it.NRE), RE: units.Dollars(it.RE)}
	}
	b.Items = items
	return nil
}
