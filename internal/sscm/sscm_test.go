package sscm

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sudc/internal/units"
)

// refDrivers approximates the 4 kW reference design the CER bases are
// anchored at.
func refDrivers() Drivers {
	return Drivers{
		BOLPower:            10600,
		PumpBOLPower:        1900,
		ThermalMass:         64,
		StructureMass:       125,
		ADCSMass:            14,
		PropulsionWetMass:   100,
		CDHRateMbps:         130,
		ComputeHardwareCost: 30000,
		ComputeMass:         114,
		ISLHardwareCost:     650000,
		ISLMass:             28,
		DryMass:             650,
		WetMass:             710,
		Lifetime:            5,
	}
}

func TestCEREvalAtReference(t *testing.T) {
	c := CER{Base: units.MUSD(10), RefDriver: 100, Exp: 0.8, FixedShare: 0.3}
	if got := c.Eval(100); !units.ApproxEqual(float64(got), 10e6, 1e-12) {
		t.Errorf("CER at reference = %v, want base", got)
	}
}

func TestCEREvalFixedShareFloor(t *testing.T) {
	c := CER{Base: units.MUSD(10), RefDriver: 100, Exp: 0.8, FixedShare: 0.3}
	if got := c.Eval(0); !units.ApproxEqual(float64(got), 3e6, 1e-12) {
		t.Errorf("CER at zero driver = %v, want fixed share 3M", got)
	}
	if got := c.Eval(-5); !units.ApproxEqual(float64(got), 3e6, 1e-12) {
		t.Errorf("CER clamps negative drivers: got %v", got)
	}
}

func TestCERZeroBase(t *testing.T) {
	if got := (CER{}).Eval(100); got != 0 {
		t.Errorf("zero-base CER = %v, want 0", got)
	}
}

func TestCERDegenerateRefDriver(t *testing.T) {
	c := CER{Base: units.MUSD(5)}
	if got := c.Eval(42); got != units.MUSD(5) {
		t.Errorf("CER without RefDriver = %v, want base", got)
	}
}

func TestCERSublinearScaling(t *testing.T) {
	c := CER{Base: units.MUSD(10), RefDriver: 100, Exp: 0.85, FixedShare: 0.25}
	r := float64(c.Eval(2000)) / float64(c.Eval(100))
	if r >= 20 {
		t.Errorf("20× driver must cost <20×, got %.1f×", r)
	}
	if r <= 1 {
		t.Errorf("bigger driver must cost more, got %.2f×", r)
	}
}

func TestDriversValidate(t *testing.T) {
	good := refDrivers()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Drivers)
	}{
		{"negative power", func(d *Drivers) { d.BOLPower = -1 }},
		{"wet < dry", func(d *Drivers) { d.WetMass = d.DryMass - 1 }},
		{"zero lifetime", func(d *Drivers) { d.Lifetime = 0 }},
		{"pump > total", func(d *Drivers) { d.PumpBOLPower = d.BOLPower + 1 }},
	}
	for _, tt := range tests {
		d := refDrivers()
		tt.mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestEstimateRejectsBadDrivers(t *testing.T) {
	d := refDrivers()
	d.Lifetime = 0
	if _, err := Reference().Estimate(d); err == nil {
		t.Error("expected error")
	}
}

func TestEstimateCoversAllSubsystems(t *testing.T) {
	b, err := Reference().Estimate(refDrivers())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Subsystems() {
		if _, ok := b.Items[s]; !ok {
			t.Errorf("missing subsystem %v", s)
		}
	}
	if len(b.Items) != int(numSubsystems) {
		t.Errorf("have %d items, want %d", len(b.Items), numSubsystems)
	}
}

func TestComputeHardwareUnderOnePercent(t *testing.T) {
	// Paper: "the computer hardware cost of a SµDC is < 1% of TCO".
	b, err := Reference().Estimate(refDrivers())
	if err != nil {
		t.Fatal(err)
	}
	if share := b.Share(PayloadCompute); share >= 0.01 {
		t.Errorf("compute share = %.3f, want < 0.01", share)
	}
}

func TestPowerPlusThermalShare(t *testing.T) {
	// Paper Fig. 3: power + thermal ≈ 34% of cost; and "over a third of
	// TCO is in power and thermal management subsystems" (§IV-B).
	b, err := Reference().Estimate(refDrivers())
	if err != nil {
		t.Fatal(err)
	}
	got := b.Share(Power) + b.Share(Thermal)
	if got < 0.28 || got > 0.40 {
		t.Errorf("power+thermal share = %.3f, want ≈1/3", got)
	}
}

func TestAccountingDifferenceSEERvsSSCM(t *testing.T) {
	// Paper Fig. 3: SEER books active cooling under thermal, SSCM-SµDC
	// under power — but the *sum* agrees within ~3% relative.
	d := refDrivers()
	ref, err := Reference().Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := Alt().Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if alt.Share(Thermal) <= ref.Share(Thermal) {
		t.Error("SEER-like must book more cost under thermal")
	}
	if alt.Share(Power) >= ref.Share(Power) {
		t.Error("SEER-like must book less cost under power")
	}
	// "the sum of these two subsystems makes up 34.3% and 33.4% — a percent
	// difference of less than 3%": the share sums agree to a few points.
	sumRef := ref.Share(Power) + ref.Share(Thermal)
	sumAlt := alt.Share(Power) + alt.Share(Thermal)
	if diff := math.Abs(sumRef - sumAlt); diff > 0.035 {
		t.Errorf("power+thermal share sums differ by %.1f points (%.1f%% vs %.1f%%), want <3.5",
			diff*100, sumRef*100, sumAlt*100)
	}
}

func TestNREShare(t *testing.T) {
	// NRE ≈ half of first-unit cost (drives the Fig. 23 distributed-vs-
	// monolithic optimum).
	b, err := Reference().Estimate(refDrivers())
	if err != nil {
		t.Fatal(err)
	}
	tot := b.Total()
	share := float64(tot.NRE) / float64(tot.FirstUnit())
	if share < 0.40 || share > 0.60 {
		t.Errorf("NRE share = %.2f, want ≈0.5", share)
	}
}

func TestLifetimeRaisesCost(t *testing.T) {
	d5 := refDrivers()
	d10 := refDrivers()
	d10.Lifetime = 10
	m := Reference()
	b5, _ := m.Estimate(d5)
	b10, _ := m.Estimate(d10)
	if b10.TCO() <= b5.TCO() {
		t.Error("longer lifetime must cost more (reliability + ops)")
	}
}

func TestLaunchIsPureREAndLinearInWetMass(t *testing.T) {
	d := refDrivers()
	m := Reference()
	b, _ := m.Estimate(d)
	if b.Items[Launch].NRE != 0 {
		t.Error("launch must be pure RE")
	}
	want := float64(m.LaunchPerKg) * d.WetMass
	if got := float64(b.Items[Launch].RE); !units.ApproxEqual(got, want, 1e-12) {
		t.Errorf("launch RE = %v, want %v", got, want)
	}
}

func TestWrapsProportionalToBus(t *testing.T) {
	d := refDrivers()
	m := Reference()
	b, _ := m.Estimate(d)
	var bus Cost
	for _, s := range []Subsystem{Power, Thermal, Structure, ADCS, Propulsion, CDH, TTC, PayloadCompute, FSOComm} {
		bus = bus.Add(b.Items[s])
	}
	wantIAT := float64(bus.RE) * m.IATFraction
	if got := float64(b.Items[IAT].RE); !units.ApproxEqual(got, wantIAT, 1e-9) {
		t.Errorf("IAT RE = %v, want %v", got, wantIAT)
	}
}

func TestCostAlgebra(t *testing.T) {
	a := Cost{NRE: 10, RE: 20}
	b := Cost{NRE: 1, RE: 2}
	if got := a.Add(b); got.NRE != 11 || got.RE != 22 {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Scale(0.5); got.NRE != 5 || got.RE != 10 {
		t.Errorf("Scale = %+v", got)
	}
	if a.FirstUnit() != 30 {
		t.Errorf("FirstUnit = %v", a.FirstUnit())
	}
}

func TestBreakdownShareSumsToOne(t *testing.T) {
	b, _ := Reference().Estimate(refDrivers())
	var sum float64
	for _, s := range Subsystems() {
		sum += b.Share(s)
	}
	if !units.ApproxEqual(sum, 1, 1e-9) {
		t.Errorf("shares sum to %v, want 1", sum)
	}
}

func TestBreakdownEmptyShare(t *testing.T) {
	if (Breakdown{}).Share(Power) != 0 {
		t.Error("empty breakdown share must be 0")
	}
}

func TestSortedItemsStable(t *testing.T) {
	b, _ := Reference().Estimate(refDrivers())
	items := b.SortedItems()
	if len(items) != int(numSubsystems) {
		t.Fatalf("len = %d", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i-1].Subsystem >= items[i].Subsystem {
			t.Error("items not sorted")
		}
	}
}

func TestSubsystemString(t *testing.T) {
	if Power.String() != "power" || Launch.String() != "launch" {
		t.Error("subsystem names wrong")
	}
	if Subsystem(99).String() != "Subsystem(99)" {
		t.Error("unknown subsystem formatting")
	}
}

func TestEstimateMonotoneInBOLPower(t *testing.T) {
	m := Reference()
	f := func(raw uint16) bool {
		d := refDrivers()
		d.BOLPower = 1000 + float64(raw)
		d.PumpBOLPower = 0
		b1, err1 := m.Estimate(d)
		d.BOLPower += 500
		b2, err2 := m.Estimate(d)
		if err1 != nil || err2 != nil {
			return false
		}
		return b2.TCO() > b1.TCO()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCOEqualsNREPlusRE(t *testing.T) {
	b, _ := Reference().Estimate(refDrivers())
	tot := b.Total()
	if b.TCO() != tot.NRE+tot.RE {
		t.Error("TCO must be NRE + RE")
	}
	if b.RE() != tot.RE {
		t.Error("RE accessor mismatch")
	}
}

func TestBreakdownJSONRoundTrip(t *testing.T) {
	b, err := Reference().Estimate(refDrivers())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"subsystem":"power"`) {
		t.Errorf("JSON must name subsystems: %s", data[:120])
	}
	var back Breakdown
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TCO() != b.TCO() {
		t.Errorf("round trip TCO %v != %v", back.TCO(), b.TCO())
	}
	for _, s := range Subsystems() {
		if back.Items[s] != b.Items[s] {
			t.Errorf("%v: round trip mismatch", s)
		}
	}
}

func TestBreakdownUnmarshalRejectsUnknown(t *testing.T) {
	var b Breakdown
	err := json.Unmarshal([]byte(`{"items":[{"subsystem":"warp-drive","nre_usd":1,"re_usd":2}]}`), &b)
	if err == nil {
		t.Error("unknown subsystem must be rejected")
	}
	if err := json.Unmarshal([]byte(`{bad`), &b); err == nil {
		t.Error("malformed JSON must error")
	}
}
