package par

// BenchmarkParOverhead measures the engine's per-item dispatch cost for
// tiny work items — the regime where scheduling overhead, not the work,
// dominates. The ns/item metric is the number tracked in BENCH_par.json:
// it bounds how small a work item can be before funneling it through the
// engine stops paying.

import (
	"fmt"
	"testing"
)

func BenchmarkParOverhead(b *testing.B) {
	for _, workers := range []int{1, 4} {
		for _, items := range []int{1 << 10, 1 << 16} {
			b.Run(fmt.Sprintf("workers=%d/items=%d", workers, items), func(b *testing.B) {
				sink := make([]int64, items)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ForN(items, func(j int) { sink[j]++ }, Workers(workers))
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(items), "ns/item")
			})
		}
	}
}

// TestForNErrReusesRunState pins the descriptor pooling: after a
// parallel run the pooled runState must not retain the caller's closure
// or observer, and repeated multi-worker runs must stay within a small
// constant allocation budget (the old closure-per-call implementation
// paid for the closure plus every captured variable).
func TestForNErrReusesRunState(t *testing.T) {
	var out [64]int64
	fn := func(i int) error { out[i]++; return nil }
	opts := []Option{Workers(4)}
	if err := ForNErr(len(out), fn, opts...); err != nil {
		t.Fatal(err)
	}
	st := statePool.Get().(*runState)
	if st.fn != nil || st.obs != nil || st.firstErr != nil {
		t.Error("pooled runState retains per-run references")
	}
	statePool.Put(st)

	avg := testing.AllocsPerRun(50, func() {
		if err := ForNErr(len(out), fn, opts...); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: runtime goroutine bookkeeping for the 4 spawned workers.
	// The descriptor itself is pooled; the pre-pooling implementation
	// paid for a worker closure plus a heap cell per captured variable
	// on top of the spawns.
	if avg > 6 {
		t.Errorf("ForNErr allocates %.1f per multi-worker call, want ≤ 6", avg)
	}

	serial := []Option{Workers(1)}
	avg = testing.AllocsPerRun(50, func() {
		if err := ForNErr(len(out), fn, serial...); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("serial ForNErr allocates %.1f per call, want 0", avg)
	}
}
