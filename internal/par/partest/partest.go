// Package partest holds test helpers for the parallel engine. It lives
// in its own package so the engine itself never imports testing.
package partest

import (
	"testing"

	"sudc/internal/par"
)

// WithDefaultWorkers overrides the process-wide default worker count
// for the duration of the test (or benchmark) and restores the previous
// override via t.Cleanup — so a failing or panicking test can no longer
// leak its override into later tests in the process.
func WithDefaultWorkers(t testing.TB, n int) {
	t.Helper()
	prev := par.SetDefaultWorkers(n)
	t.Cleanup(func() { par.SetDefaultWorkers(prev) })
}

// WithObserver installs an engine observer for the duration of the test
// and removes it via t.Cleanup, preventing cross-test leakage of the
// process-wide hook.
func WithObserver(t testing.TB, o par.Observer) {
	t.Helper()
	par.SetObserver(o)
	t.Cleanup(func() { par.SetObserver(nil) })
}
