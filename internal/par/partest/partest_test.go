package partest_test

import (
	"testing"

	"sudc/internal/par"
	"sudc/internal/par/partest"
)

func TestWithDefaultWorkersRestoresOnCleanup(t *testing.T) {
	prev := par.SetDefaultWorkers(0)
	par.SetDefaultWorkers(prev)
	t.Run("inner", func(t *testing.T) {
		partest.WithDefaultWorkers(t, 3)
		if par.DefaultWorkers() != 3 {
			t.Errorf("DefaultWorkers = %d inside override, want 3", par.DefaultWorkers())
		}
	})
	if got := par.SetDefaultWorkers(prev); got != prev {
		t.Errorf("override leaked after subtest: lingering value %d, want %d", got, prev)
	}
}

func TestWithDefaultWorkersRestoresAfterFailure(t *testing.T) {
	prev := par.SetDefaultWorkers(0)
	par.SetDefaultWorkers(prev)
	// A failing subtest must still restore the override: this is the
	// leakage scenario the helper exists for.
	t.Run("failing", func(t *testing.T) {
		t.Helper()
		partest.WithDefaultWorkers(t, 7)
		// Simulate a test that bails before any manual restore would run.
		t.Skip("bails out early")
	})
	if got := par.SetDefaultWorkers(prev); got != prev {
		t.Errorf("override leaked past skipped subtest: %d, want %d", got, prev)
	}
}
