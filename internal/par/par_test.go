package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	for _, w := range []int{1, 2, 3, 8, 64} {
		got := Map(items, func(v int) int { return v * v }, Workers(w))
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(nil, func(v int) int { return v }); len(got) != 0 {
		t.Errorf("empty input produced %d results", len(got))
	}
	if got := Map([]int{7}, func(v int) int { return v + 1 }); len(got) != 1 || got[0] != 8 {
		t.Errorf("single item: got %v", got)
	}
}

func TestMapErrSuccess(t *testing.T) {
	items := []int{1, 2, 3, 4, 5}
	got, err := MapErr(items, func(v int) (int, error) { return v * 10, nil }, Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != items[i]*10 {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrReturnsLowestObservedError(t *testing.T) {
	items := make([]int, 500)
	for _, w := range []int{1, 4, 16} {
		_, err := MapErr(items, func(v int) (int, error) {
			return 0, fmt.Errorf("fail") // every item fails
		}, Workers(w))
		if err == nil {
			t.Fatalf("workers=%d: expected error", w)
		}
	}
	// Serial: the very first failing index must win.
	calls := 0
	_, err := MapErr(items, func(v int) (int, error) {
		calls++
		if calls >= 3 {
			return 0, errors.New("third call fails")
		}
		return 0, nil
	}, Workers(1))
	if err == nil || err.Error() != "third call fails" {
		t.Fatalf("serial error = %v", err)
	}
	if calls != 3 {
		t.Errorf("serial run made %d calls after error, want 3 (cancellation)", calls)
	}
}

func TestForNErrCancelsOutstandingWork(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	err := ForNErr(100000, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	}, Workers(4), Chunk(16))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := calls.Load(); n == 100000 {
		t.Error("no cancellation: every item ran despite early error")
	}
}

func TestWorkersBound(t *testing.T) {
	var inflight, peak atomic.Int64
	ForN(256, func(i int) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inflight.Add(-1)
	}, Workers(3), Chunk(1))
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent workers, bound is 3", p)
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	prev := SetDefaultWorkers(5)
	t.Cleanup(func() { SetDefaultWorkers(prev) })
	if DefaultWorkers() != 5 {
		t.Errorf("DefaultWorkers = %d, want 5", DefaultWorkers())
	}
	if got := SetDefaultWorkers(0); got != 5 {
		t.Errorf("SetDefaultWorkers returned %d, want previous 5", got)
	}
	if DefaultWorkers() < 1 {
		t.Error("unset default must fall back to GOMAXPROCS ≥ 1")
	}
}

// countingObserver tallies engine events for the observer-hook tests.
type countingObserver struct {
	runsStarted, runsFinished, items atomic.Int64
}

func (c *countingObserver) RunStarted(items, workers int) { c.runsStarted.Add(1) }
func (c *countingObserver) ItemsDone(n int)               { c.items.Add(int64(n)) }
func (c *countingObserver) RunFinished(items, workers int, wall time.Duration) {
	c.runsFinished.Add(1)
}

func TestObserverSeesEveryItem(t *testing.T) {
	for _, w := range []int{1, 4} {
		var c countingObserver
		SetObserver(&c)
		ForN(257, func(i int) {}, Workers(w), Chunk(8))
		SetObserver(nil)
		if got := c.items.Load(); got != 257 {
			t.Errorf("workers=%d: observer saw %d items, want 257", w, got)
		}
		if c.runsStarted.Load() != 1 || c.runsFinished.Load() != 1 {
			t.Errorf("workers=%d: run events = %d/%d, want 1/1",
				w, c.runsStarted.Load(), c.runsFinished.Load())
		}
	}
}

func TestObserverUnderErrorCountsOnlyCompleted(t *testing.T) {
	var c countingObserver
	SetObserver(&c)
	t.Cleanup(func() { SetObserver(nil) })
	boom := errors.New("boom")
	err := ForNErr(1000, func(i int) error {
		if i == 500 {
			return boom
		}
		return nil
	}, Workers(4), Chunk(16))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := c.items.Load(); got < 1 || got >= 1000 {
		t.Errorf("observer items = %d, want partial completion in [1, 1000)", got)
	}
	if c.runsFinished.Load() != 1 {
		t.Error("RunFinished must fire even on error")
	}
}

func TestForkSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for root := int64(0); root < 4; root++ {
		for i := 0; i < 256; i++ {
			s := ForkSeed(root, i)
			if seen[s] {
				t.Fatalf("collision at root=%d i=%d", root, i)
			}
			seen[s] = true
		}
	}
	// Deterministic.
	if ForkSeed(42, 7) != ForkSeed(42, 7) {
		t.Error("ForkSeed not deterministic")
	}
	// Forked streams start differently.
	a, b := ForkRand(1, 0), ForkRand(1, 1)
	if a.Int63() == b.Int63() {
		t.Error("sibling streams emit identical first draw")
	}
}

func TestResultsInvariantUnderWorkerCount(t *testing.T) {
	// The core engine guarantee: identical output for any worker count,
	// including with per-item forked randomness.
	trial := func(workers int) []float64 {
		out := make([]float64, 64)
		ForN(64, func(i int) {
			rng := ForkRand(99, i)
			var s float64
			for k := 0; k < 100; k++ {
				s += rng.Float64()
			}
			out[i] = s
		}, Workers(workers), Chunk(3))
		return out
	}
	ref := trial(1)
	for _, w := range []int{2, 4, 8} {
		got := trial(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] differs", w, i)
			}
		}
	}
}
