// Package par is the repository's shared parallel evaluation engine.
// Every embarrassingly-parallel hot path — the 7168-design accelerator
// DSE, the trade-study sweeps, the Monte-Carlo reliability and lifecycle
// runs, and the experiment runner — funnels through the primitives here
// rather than hand-rolling goroutines.
//
// Guarantees:
//
//   - Deterministic ordering: Map/MapErr/ForN write result i for item i,
//     so outputs are in input order regardless of completion order.
//   - Worker-count invariance: results never depend on the worker count;
//     only wall-clock time does. Seeded randomness stays invariant too
//     when streams are forked per work item via ForkSeed/ForkRand
//     instead of shared across items.
//   - Cancellation on error: once any item fails, workers stop picking
//     up new work. Among the failures actually observed, the error for
//     the lowest item index is returned.
//   - Bounded workers: at most Workers(n) goroutines (default
//     GOMAXPROCS) run at once; work is handed out in chunks so cheap
//     items do not drown in scheduling overhead.
//
// The package is stdlib-only and has no dependencies on the rest of the
// repository, so any layer may use it.
package par

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// options configures one parallel run.
type options struct {
	workers int
	chunk   int
}

// Option customizes Map, MapErr, ForN, or ForNErr. It is a plain value
// (not a closure) so resolving options never forces the configuration
// to escape to the heap — the engine's dispatch path stays
// allocation-free for serial runs and pool-bounded for parallel ones.
type Option struct {
	workers int
	chunk   int
}

// apply merges one option into the resolved configuration.
func (opt Option) apply(o *options) {
	if opt.workers > 0 {
		o.workers = opt.workers
	}
	if opt.chunk > 0 {
		o.chunk = opt.chunk
	}
}

// Workers bounds the number of concurrent workers. Values ≤ 0 keep the
// default (DefaultWorkers).
func Workers(n int) Option {
	if n < 0 {
		n = 0
	}
	return Option{workers: n}
}

// Chunk sets how many consecutive items a worker claims at a time.
// Values ≤ 0 keep the default (≈4 chunks per worker), which suits both
// cheap items (large chunks amortize scheduling) and expensive ones
// (enough chunks to balance load).
func Chunk(n int) Option {
	if n < 0 {
		n = 0
	}
	return Option{chunk: n}
}

// defaultWorkers, when > 0, overrides GOMAXPROCS as the process-wide
// default worker count.
var defaultWorkers atomic.Int32

// DefaultWorkers returns the worker count used when no Workers option is
// given: the last SetDefaultWorkers override, or GOMAXPROCS.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers overrides the process-wide default worker count and
// returns the previous override (0 if none was set). n ≤ 0 removes the
// override, restoring GOMAXPROCS. Because worker count never affects
// results, this only changes how much hardware parallel runs may use —
// it is the hook behind the CLI worker flags and the scaling benchmarks.
func SetDefaultWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int32(n)))
}

// Observer receives engine lifecycle events, for observability layers
// to count runs, completed items, and worker occupancy without this
// package depending on them. Implementations must be safe for
// concurrent use: ItemsDone is called from every worker goroutine.
type Observer interface {
	// RunStarted fires once per ForNErr call with the item count and
	// the resolved pool size.
	RunStarted(items, workers int)
	// ItemsDone fires after a worker completes a claimed chunk (or,
	// serially, each item), with the number of items finished.
	ItemsDone(n int)
	// RunFinished fires once per ForNErr call with the run's wall time.
	RunFinished(items, workers int, wall time.Duration)
}

// observerHolder wraps the Observer so atomic.Value tolerates differing
// concrete types (and nil, to unregister).
type observerHolder struct{ o Observer }

var engineObserver atomic.Value // observerHolder

// SetObserver installs a process-wide engine observer (nil removes it).
// Observation never changes results — it is the hook behind the CLIs'
// -metrics flags.
func SetObserver(o Observer) { engineObserver.Store(observerHolder{o: o}) }

// currentObserver returns the installed observer, or nil.
func currentObserver() Observer {
	if h, ok := engineObserver.Load().(observerHolder); ok {
		return h.o
	}
	return nil
}

// runState is one parallel run's dispatch descriptor: the shared claim
// cursor, failure tracking, and chunk geometry the workers consult. It
// used to live in locals captured by a per-call worker closure — one
// closure plus a heap cell per captured variable, every Map/ForN call.
// Hoisting it into a pooled struct makes the engine's per-call dispatch
// cost a pool hit: hot paths that issue thousands of small parallel
// runs (DES replica sweeps, DSE shards) stop paying per-call garbage.
type runState struct {
	next     atomic.Int64 // next unclaimed item index
	failIdx  atomic.Int64 // lowest failing index seen (n = none)
	mu       sync.Mutex
	firstErr error
	firstIdx int64
	wg       sync.WaitGroup
	n        int64
	chunk    int64
	fn       func(i int) error
	obs      Observer
}

// statePool recycles runState descriptors across ForNErr calls.
var statePool = sync.Pool{New: func() any { return new(runState) }}

func (st *runState) worker() {
	defer st.wg.Done()
	n, chunk := st.n, st.chunk
	for {
		start := st.next.Add(chunk) - chunk
		if start >= n || start >= st.failIdx.Load() {
			return
		}
		end := start + chunk
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			if i >= st.failIdx.Load() {
				if st.obs != nil && i > start {
					st.obs.ItemsDone(int(i - start))
				}
				return
			}
			if err := st.fn(int(i)); err != nil {
				st.mu.Lock()
				if i < st.firstIdx {
					st.firstIdx, st.firstErr = i, err
				}
				st.mu.Unlock()
				for {
					cur := st.failIdx.Load()
					if i >= cur || st.failIdx.CompareAndSwap(cur, i) {
						break
					}
				}
				if st.obs != nil && i > start {
					st.obs.ItemsDone(int(i - start))
				}
				return
			}
		}
		if st.obs != nil {
			st.obs.ItemsDone(int(end - start))
		}
	}
}

// ForNErr calls fn(0..n-1) across a bounded worker pool and waits for
// completion. After the first failure, no new chunks are claimed; the
// error returned is the one with the lowest index among those observed.
func ForNErr(n int, fn func(i int) error, opts ...Option) error {
	if n <= 0 {
		return nil
	}
	var o options
	for _, opt := range opts {
		opt.apply(&o)
	}
	workers := o.workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	chunk := o.chunk
	if chunk <= 0 {
		chunk = n / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}

	obs := currentObserver()
	if obs != nil {
		obs.RunStarted(n, workers)
		start := time.Now()
		defer func() { obs.RunFinished(n, workers, time.Since(start)) }()
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
			if obs != nil {
				obs.ItemsDone(1)
			}
		}
		return nil
	}

	st := statePool.Get().(*runState)
	st.next.Store(0)
	st.failIdx.Store(int64(n))
	st.firstErr = nil
	st.firstIdx = int64(n)
	st.n, st.chunk = int64(n), int64(chunk)
	st.fn, st.obs = fn, obs
	st.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go st.worker()
	}
	st.wg.Wait()
	err := st.firstErr
	// Drop the caller's references before pooling so the descriptor
	// never retains a closure (and whatever it captured) across runs.
	st.fn, st.obs, st.firstErr = nil, nil, nil
	statePool.Put(st)
	return err
}

// ForN calls fn(0..n-1) across a bounded worker pool and waits for
// completion.
func ForN(n int, fn func(i int), opts ...Option) {
	ForNErr(n, func(i int) error { fn(i); return nil }, opts...)
}

// Map applies fn to every item in parallel, returning results in input
// order.
func Map[T, R any](items []T, fn func(T) R, opts ...Option) []R {
	out := make([]R, len(items))
	ForN(len(items), func(i int) { out[i] = fn(items[i]) }, opts...)
	return out
}

// MapErr applies fn to every item in parallel. On success it returns the
// results in input order; on failure it cancels outstanding work and
// returns the observed error with the lowest item index.
func MapErr[T, R any](items []T, fn func(T) (R, error), opts ...Option) ([]R, error) {
	out := make([]R, len(items))
	err := ForNErr(len(items), func(i int) error {
		r, err := fn(items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForkSeed derives the i-th independent child seed from a root seed via
// the SplitMix64 finalizer, so sibling streams stay decorrelated even
// for adjacent roots and indices. Monte-Carlo code forks one stream per
// work item (trial or fixed-size shard) — never per worker — so results
// are identical under any worker count.
func ForkSeed(root int64, i int) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*(uint64(i)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ForkRand returns a *rand.Rand seeded with ForkSeed(root, i).
func ForkRand(root int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(ForkSeed(root, i)))
}
