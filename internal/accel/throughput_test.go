package accel

import (
	"testing"

	"sudc/internal/workload"
)

func TestLayerTimingBounds(t *testing.T) {
	l := conv(256, 256, 3, 28, 1)
	tm, err := refConfig.LayerTiming(l)
	if err != nil {
		t.Fatal(err)
	}
	if tm.ComputeCycles <= 0 || tm.DRAMCycles <= 0 {
		t.Fatal("cycle counts must be positive")
	}
	if tm.Cycles() < tm.ComputeCycles || tm.Cycles() < tm.DRAMCycles {
		t.Error("bounding cycles must be the max of compute and DRAM")
	}
	// Compute bound: MACs / (3×24 mapped PEs).
	want := float64(l.MACs()) / (3 * 24)
	if tm.ComputeCycles != want {
		t.Errorf("compute cycles = %v, want %v", tm.ComputeCycles, want)
	}
}

func TestLayerTimingErrors(t *testing.T) {
	if _, err := (Config{}).LayerTiming(conv(8, 8, 3, 8, 1)); err == nil {
		t.Error("invalid config must error")
	}
	if _, err := refConfig.LayerTiming(workload.Layer{}); err == nil {
		t.Error("invalid layer must error")
	}
}

func TestSecondsDefaultClock(t *testing.T) {
	tm := LayerTiming{ComputeCycles: DefaultClockHz}
	if got := tm.Seconds(0); got != 1 {
		t.Errorf("default clock Seconds = %v, want 1", got)
	}
	if got := tm.Seconds(2 * DefaultClockHz); got != 0.5 {
		t.Errorf("2× clock Seconds = %v, want 0.5", got)
	}
}

func TestNetworkLatencyReasonable(t *testing.T) {
	// ResNet-50 (~4.1 GMACs) on a 72-PE design at 500 MHz: compute bound
	// alone is ≈0.11 s; DRAM stalls can add more.
	lat, err := refConfig.NetworkLatency(workload.ResNet50(), DefaultClockHz)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 0.05 || lat > 2 {
		t.Errorf("ResNet-50 latency = %.3f s, want O(0.1 s) on a small array", lat)
	}
	// A wider array is faster.
	wide := refConfig
	wide.PEX = 64
	latWide, _ := wide.NetworkLatency(workload.ResNet50(), DefaultClockHz)
	if latWide >= lat {
		t.Error("wider array must reduce latency")
	}
}

func TestPipelineThroughputVsLatency(t *testing.T) {
	n := workload.ResNet18()
	p, err := BuildPipeline(n, DefaultClockHz, func(workload.Layer) (Config, error) {
		return refConfig, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != len(n.Layers) {
		t.Fatalf("pipeline has %d stages, want %d", len(p.Stages), len(n.Layers))
	}
	thr, err := p.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	lat, err := p.Latency()
	if err != nil {
		t.Fatal(err)
	}
	// Pipelining: sustained rate beats 1/latency (stages overlap).
	if thr <= 1/lat {
		t.Errorf("pipeline throughput %.2f/s must exceed 1/latency %.2f/s", thr, 1/lat)
	}
	bi, err := p.Bottleneck()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stages[bi].Timing.Seconds(p.ClockHz); !(got > 0) {
		t.Error("bottleneck stage must have positive time")
	}
	if thr != 1/p.Stages[bi].Timing.Seconds(p.ClockHz) {
		t.Error("throughput must be set by the bottleneck stage")
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := BuildPipeline(workload.ResNet18(), 0, nil); err == nil {
		t.Error("nil selector must error")
	}
	empty := Pipeline{}
	if _, err := empty.Throughput(); err == nil {
		t.Error("empty pipeline throughput must error")
	}
	if _, err := empty.Latency(); err == nil {
		t.Error("empty pipeline latency must error")
	}
	if _, err := empty.Bottleneck(); err == nil {
		t.Error("empty pipeline bottleneck must error")
	}
}

func TestPipelinesSustainConstellationWithinPowerBudget(t *testing.T) {
	// Close the Fig. 18 loop: the 64-satellite constellation offers
	// 64 × 0.1 frames/s × (45 Mpix / 256² pix per tile) ≈ 4400 U-Net
	// tiles/s. One pipeline sustains tens of tiles/s, so a SµDC gangs
	// hundreds of pipelines — and the *power* of that gang must fit well
	// inside the 4 kW budget (that is the accelerator TCO story).
	n := workload.UNet()
	cfg := Config{PEX: 64, PEY: 3, IfmapKB: 64, WeightKB: 128, AccumKB: 64}
	p, err := BuildPipeline(n, DefaultClockHz, func(workload.Layer) (Config, error) {
		return cfg, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	thr, err := p.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if thr < 5 {
		t.Fatalf("one pipeline sustains %.1f tiles/s, want ≥5", thr)
	}
	const demandTilesPerSec = 64 * 0.1 * 45e6 / (256 * 256)
	pipelines := demandTilesPerSec / thr
	energyPerTile, err := cfg.NetworkEnergy(n)
	if err != nil {
		t.Fatal(err)
	}
	watts := demandTilesPerSec * energyPerTile
	t.Logf("%.0f tiles/s over %.0f pipelines → %.0f W", demandTilesPerSec, pipelines, watts)
	if watts > 4000 {
		t.Errorf("accelerator fleet needs %.0f W for the full constellation, want < 4 kW", watts)
	}
}
