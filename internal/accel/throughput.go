package accel

import (
	"errors"
	"fmt"

	"sudc/internal/workload"
)

// Timing model. The energy model prices *what* is moved; this file prices
// *how long* it takes: cycles are bounded by compute (MACs over mapped
// parallelism) and by DRAM bandwidth, whichever is slower. It turns a DSE
// design point into a sustained inference rate, which is what connects the
// Figure 18 accelerator pipelines back to the constellation sizing
// (Table III) and the discrete-event simulation.
const (
	// DefaultClockHz is the PE-array clock (Eyeriss-class 65 nm silicon
	// runs 200 MHz; modern nodes comfortably 2-4×; we use 500 MHz).
	DefaultClockHz = 500e6
	// dramWordsPerCycle is the off-chip bandwidth in 16-bit words per
	// array cycle (≈ 8 GB/s LPDDR class at the default clock).
	dramWordsPerCycle = 8
)

// LayerTiming is the cycle estimate for one layer on one design.
type LayerTiming struct {
	// ComputeCycles is MACs / mapped spatial parallelism.
	ComputeCycles float64
	// DRAMCycles is DRAM traffic / off-chip bandwidth.
	DRAMCycles float64
	// Utilization mirrors the energy model's spatial utilization.
	Utilization float64
}

// Cycles is the bounding cycle count: max(compute, DRAM).
func (t LayerTiming) Cycles() float64 {
	if t.DRAMCycles > t.ComputeCycles {
		return t.DRAMCycles
	}
	return t.ComputeCycles
}

// Seconds converts the bounding cycle count to wall time at clockHz.
func (t LayerTiming) Seconds(clockHz float64) float64 {
	if clockHz <= 0 {
		clockHz = DefaultClockHz
	}
	return t.Cycles() / clockHz
}

// LayerTiming estimates the cycles for one inference of layer l.
func (c Config) LayerTiming(l workload.Layer) (LayerTiming, error) {
	if err := c.Validate(); err != nil {
		return LayerTiming{}, err
	}
	if err := l.Validate(); err != nil {
		return LayerTiming{}, err
	}
	macs := float64(l.MACs())
	rowsMapped := float64(l.R)
	if pey := float64(c.PEY); rowsMapped > pey {
		rowsMapped = pey
	}
	colsNeeded := float64(l.K)
	if l.Depthwise {
		colsNeeded = float64(l.C)
	}
	colsMapped := colsNeeded
	if pex := float64(c.PEX); colsMapped > pex {
		colsMapped = pex
	}
	e, err := c.LayerEnergy(l)
	if err != nil {
		return LayerTiming{}, err
	}
	dramWords := e.DRAM / eDRAM
	return LayerTiming{
		ComputeCycles: macs / (rowsMapped * colsMapped),
		DRAMCycles:    dramWords / dramWordsPerCycle,
		Utilization:   e.Utilization,
	}, nil
}

// NetworkLatency returns the single-inference latency of the network on
// one (non-pipelined) accelerator instance, in seconds.
func (c Config) NetworkLatency(n workload.Network, clockHz float64) (float64, error) {
	var total float64
	for _, l := range n.Layers {
		t, err := c.LayerTiming(l)
		if err != nil {
			return 0, fmt.Errorf("%s/%s: %w", n.Name, l.Name, err)
		}
		total += t.Seconds(clockHz)
	}
	return total, nil
}

// PipelineStage is one accelerator instance in a Figure 18 pipeline.
type PipelineStage struct {
	Layer  workload.Layer
	Config Config
	Timing LayerTiming
}

// Pipeline is an asynchronous, double-buffered accelerator pipeline: one
// stage per layer (Fig. 18c) or one shared design across all stages
// (Figs. 18a/b). Throughput is set by the slowest stage; latency is the
// sum of stages.
type Pipeline struct {
	Stages  []PipelineStage
	ClockHz float64
}

// BuildPipeline assembles a pipeline for the network using configFor to
// pick each stage's design (constant for homogeneous systems, per-layer
// for heterogeneous ones).
func BuildPipeline(n workload.Network, clockHz float64, configFor func(workload.Layer) (Config, error)) (Pipeline, error) {
	if configFor == nil {
		return Pipeline{}, errors.New("accel: nil config selector")
	}
	if clockHz <= 0 {
		clockHz = DefaultClockHz
	}
	p := Pipeline{ClockHz: clockHz, Stages: make([]PipelineStage, 0, len(n.Layers))}
	for _, l := range n.Layers {
		cfg, err := configFor(l)
		if err != nil {
			return Pipeline{}, err
		}
		t, err := cfg.LayerTiming(l)
		if err != nil {
			return Pipeline{}, err
		}
		p.Stages = append(p.Stages, PipelineStage{Layer: l, Config: cfg, Timing: t})
	}
	return p, nil
}

// Throughput returns sustained inferences per second — one over the
// slowest stage's time (double buffering overlaps the rest).
func (p Pipeline) Throughput() (float64, error) {
	if len(p.Stages) == 0 {
		return 0, errors.New("accel: empty pipeline")
	}
	slowest := 0.0
	for _, s := range p.Stages {
		if t := s.Timing.Seconds(p.ClockHz); t > slowest {
			slowest = t
		}
	}
	return 1 / slowest, nil
}

// Latency returns the fill latency of one inference through the pipeline.
func (p Pipeline) Latency() (float64, error) {
	if len(p.Stages) == 0 {
		return 0, errors.New("accel: empty pipeline")
	}
	var sum float64
	for _, s := range p.Stages {
		sum += s.Timing.Seconds(p.ClockHz)
	}
	return sum, nil
}

// Bottleneck returns the index of the slowest stage.
func (p Pipeline) Bottleneck() (int, error) {
	if len(p.Stages) == 0 {
		return 0, errors.New("accel: empty pipeline")
	}
	best, slowest := 0, 0.0
	for i, s := range p.Stages {
		if t := s.Timing.Seconds(p.ClockHz); t > slowest {
			slowest, best = t, i
		}
	}
	return best, nil
}
