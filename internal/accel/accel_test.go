package accel

import (
	"strings"
	"testing"
	"testing/quick"

	"sudc/internal/workload"
)

var refConfig = Config{Name: "ref", PEX: 24, PEY: 3, IfmapKB: 64, WeightKB: 128, AccumKB: 32}

func conv(c, k, r, p, stride int) workload.Layer {
	return workload.Layer{Name: "conv", C: c, K: k, R: r, S: r, P: p, Q: p, Stride: stride}
}

func TestConfigValidate(t *testing.T) {
	if err := refConfig.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{PEX: 0, PEY: 3, IfmapKB: 64, WeightKB: 64, AccumKB: 32},
		{PEX: 8, PEY: 0, IfmapKB: 64, WeightKB: 64, AccumKB: 32},
		{PEX: 8, PEY: 3, IfmapKB: 0, WeightKB: 64, AccumKB: 32},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestConfigString(t *testing.T) {
	if got := refConfig.String(); !strings.Contains(got, "24x3") {
		t.Errorf("String() = %q", got)
	}
	if refConfig.PEs() != 72 {
		t.Errorf("PEs = %d, want 72", refConfig.PEs())
	}
}

func TestLayerEnergyErrors(t *testing.T) {
	if _, err := (Config{}).LayerEnergy(conv(64, 64, 3, 56, 1)); err == nil {
		t.Error("invalid config must error")
	}
	if _, err := refConfig.LayerEnergy(workload.Layer{}); err == nil {
		t.Error("invalid layer must error")
	}
}

func TestEnergyComponentsPositive(t *testing.T) {
	e, err := refConfig.LayerEnergy(conv(64, 256, 3, 28, 1))
	if err != nil {
		t.Fatal(err)
	}
	if e.MAC <= 0 || e.RegFile <= 0 || e.NoC <= 0 || e.Buffer <= 0 || e.DRAM <= 0 || e.Idle <= 0 {
		t.Errorf("all components must be positive: %+v", e)
	}
	if e.Total() <= 0 || e.Joules() != e.Total()*1e-12 {
		t.Error("total/joules inconsistent")
	}
	if e.Utilization <= 0 || e.Utilization > 1 {
		t.Errorf("utilization = %v out of (0,1]", e.Utilization)
	}
}

func TestEnergyPerMACInSaneRange(t *testing.T) {
	// A well-matched accelerator runs CNN layers at a few pJ/MAC.
	l := conv(256, 256, 3, 28, 1)
	e, err := refConfig.LayerEnergy(l)
	if err != nil {
		t.Fatal(err)
	}
	perMAC := e.Total() / float64(l.MACs())
	if perMAC < 0.7 || perMAC > 10 {
		t.Errorf("energy = %.2f pJ/MAC, want a few pJ", perMAC)
	}
}

func TestMismatchedPEYCostsStatic(t *testing.T) {
	// A 1×1 layer on a PEY=3 array idles two of three rows; a PEY=1
	// design avoids that.
	l := conv(256, 256, 1, 28, 1)
	tall := Config{PEX: 24, PEY: 3, IfmapKB: 32, WeightKB: 64, AccumKB: 32}
	flat := tall
	flat.PEY = 1
	eTall, _ := tall.LayerEnergy(l)
	eFlat, _ := flat.LayerEnergy(l)
	if eFlat.Idle >= eTall.Idle {
		t.Error("matched PEY must burn less static energy")
	}
	if eFlat.Total() >= eTall.Total() {
		t.Error("matched design must win on a 1×1 layer")
	}
}

func TestFoldPenaltyForShortArrays(t *testing.T) {
	// A 7×7 filter on PEY=1 folds the row-stationary diagonal and pays
	// extra accumulation-buffer traffic versus PEY=7.
	l := conv(64, 64, 7, 112, 2)
	short := Config{PEX: 24, PEY: 1, IfmapKB: 32, WeightKB: 32, AccumKB: 32}
	tall := short
	tall.PEY = 7
	eShort, _ := short.LayerEnergy(l)
	eTall, _ := tall.LayerEnergy(l)
	if eShort.Buffer <= eTall.Buffer {
		t.Error("folding must raise accumulation buffer traffic")
	}
}

func TestOversizedBuffersLeak(t *testing.T) {
	l := conv(64, 64, 3, 56, 1)
	small := Config{PEX: 24, PEY: 3, IfmapKB: 16, WeightKB: 16, AccumKB: 4}
	big := Config{PEX: 24, PEY: 3, IfmapKB: 128, WeightKB: 128, AccumKB: 256}
	eS, _ := small.LayerEnergy(l)
	eB, _ := big.LayerEnergy(l)
	if eB.Idle <= eS.Idle {
		t.Error("bigger SRAM must leak more")
	}
	if eB.Buffer <= eS.Buffer {
		t.Error("bigger SRAM must cost more per access")
	}
}

func TestUndersizedWeightBufferSpillsActivations(t *testing.T) {
	// A layer whose weights dwarf the weight buffer re-streams its ifmap
	// through DRAM (unless the whole ifmap is resident).
	l := conv(512, 512, 3, 28, 1) // 4.7 MB of weights
	small := Config{PEX: 24, PEY: 3, IfmapKB: 16, WeightKB: 16, AccumKB: 64}
	big := Config{PEX: 24, PEY: 3, IfmapKB: 16, WeightKB: 128, AccumKB: 64}
	eS, _ := small.LayerEnergy(l)
	eB, _ := big.LayerEnergy(l)
	if eS.DRAM <= eB.DRAM {
		t.Error("small weight buffer must cost more DRAM traffic")
	}
}

func TestResidentIfmapAvoidsSpills(t *testing.T) {
	// A tiny layer whose whole ifmap fits on chip pays no activation DRAM
	// regardless of weight tiling.
	l := conv(256, 256, 1, 7, 1) // ifmap 256×7×7×2B = 24.5 KB
	cfg := Config{PEX: 24, PEY: 1, IfmapKB: 32, WeightKB: 16, AccumKB: 16}
	e, err := cfg.LayerEnergy(l)
	if err != nil {
		t.Fatal(err)
	}
	// DRAM is then weight streaming only: weights/batch words.
	maxWeightDRAM := float64(l.Weights()) / batchSize * eDRAM * 1.001
	if e.DRAM > maxWeightDRAM {
		t.Errorf("resident ifmap must avoid activation DRAM: %v > %v", e.DRAM, maxWeightDRAM)
	}
}

func TestDepthwiseLayersHandled(t *testing.T) {
	dw := workload.Layer{Name: "dw", C: 96, K: 96, R: 3, S: 3, P: 56, Q: 56, Stride: 1, Depthwise: true}
	e, err := refConfig.LayerEnergy(dw)
	if err != nil {
		t.Fatal(err)
	}
	if e.Total() <= 0 {
		t.Error("depthwise energy must be positive")
	}
}

func TestNetworkEnergy(t *testing.T) {
	n := workload.ResNet18()
	j, err := refConfig.NetworkEnergy(n)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: a ~2 GMAC network at a few pJ/MAC is a few mJ.
	if j < 1e-3 || j > 50e-3 {
		t.Errorf("ResNet-18 = %.4g J/inference, want a few mJ", j)
	}
	// Must equal the sum of layer energies.
	var sum float64
	for _, l := range n.Layers {
		e, _ := refConfig.LayerEnergy(l)
		sum += e.Joules()
	}
	if sum != j {
		t.Error("NetworkEnergy must sum layer energies")
	}
	bad := n
	bad.Layers = append([]workload.Layer{{}}, n.Layers...)
	if _, err := refConfig.NetworkEnergy(bad); err == nil {
		t.Error("invalid layer must propagate error")
	}
}

func TestGPUBaseline(t *testing.T) {
	n := workload.VGG16()
	full, err := RTX3090Baseline.NetworkEnergy(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	low, _ := RTX3090Baseline.NetworkEnergy(n, 0.1)
	if low <= full {
		t.Error("poorly utilized GPU must burn more energy per inference")
	}
	if _, err := RTX3090Baseline.NetworkEnergy(n, 1.5); err == nil {
		t.Error("utilization > 1 must error")
	}
	if _, err := RTX3090Baseline.NetworkEnergy(n, -0.1); err == nil {
		t.Error("negative utilization must error")
	}
	// Effective full-utilization energy is bounded by ~100× the ALU-only
	// peak even at the utilization floor.
	floorE, _ := RTX3090Baseline.NetworkEnergy(n, 0)
	if floorE/full > 1/RTX3090Baseline.UtilizationFloor*1.01 {
		t.Error("utilization floor must bound the penalty")
	}
}

func TestAcceleratorBeatsGPU(t *testing.T) {
	// The headline effect: a matched accelerator is 1-2 orders of
	// magnitude more energy-efficient than the commodity GPU.
	for _, name := range []string{"resnet-50", "vgg-16", "unet"} {
		n := workload.Networks()[name]
		accelJ, err := refConfig.NetworkEnergy(n)
		if err != nil {
			t.Fatal(err)
		}
		gpuJ, _ := RTX3090Baseline.NetworkEnergy(n, 0.5)
		gain := gpuJ / accelJ
		if gain < 10 || gain > 500 {
			t.Errorf("%s: gain = %.1f×, want 10-500×", name, gain)
		}
	}
}

func TestEnergyMonotoneInMACs(t *testing.T) {
	f := func(raw uint8) bool {
		p := int(raw)%48 + 8
		e1, err1 := refConfig.LayerEnergy(conv(64, 64, 3, p, 1))
		e2, err2 := refConfig.LayerEnergy(conv(64, 64, 3, p+4, 1))
		if err1 != nil || err2 != nil {
			return false
		}
		return e2.Total() > e1.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
