// Package accel is an analytical energy model for Eyeriss-like [13]
// row-stationary CNN accelerators — the stand-in for the paper's
// Timeloop/Accelergy [95] evaluation flow (§IV-B). Given an accelerator
// configuration (PE-array geometry and buffer sizes) and a convolution
// layer in the 7-loop notation, it estimates the energy of one inference
// pass by counting accesses at each level of the storage hierarchy
// (register file → NoC → on-chip buffers → DRAM) and pricing each access
// with Accelergy-style per-component energies (CACTI-like √capacity
// scaling for SRAM buffers).
//
// The row-stationary dataflow's reuse structure drives the counts:
// weights stay in PE register files for a full output row, ifmap rows are
// reused diagonally across up to R PEs, and partial sums accumulate
// spatially along PE columns. Undersized weight buffers force ifmap
// re-streaming from DRAM; undersized accumulation buffers force partial
// sum spills; oversized PE arrays waste energy on idle PEs and longer NoC
// hops. These tensions give every layer shape a different optimal design —
// the effect the paper's per-layer heterogeneity exploits.
package accel

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/workload"
)

// Config is one accelerator design point.
type Config struct {
	Name string
	// PEX and PEY are the PE-array dimensions (paper DSE dimensions 1–2).
	PEX, PEY int
	// IfmapKB, WeightKB, AccumKB are the on-chip buffer capacities in KiB
	// (paper DSE dimensions 3–5).
	IfmapKB, WeightKB, AccumKB int
}

// Validate reports geometry errors.
func (c Config) Validate() error {
	if c.PEX < 1 || c.PEY < 1 {
		return fmt.Errorf("accel: PE array %dx%d invalid", c.PEX, c.PEY)
	}
	if c.IfmapKB < 1 || c.WeightKB < 1 || c.AccumKB < 1 {
		return errors.New("accel: buffers must be at least 1 KiB")
	}
	return nil
}

// PEs returns the PE count.
func (c Config) PEs() int { return c.PEX * c.PEY }

func (c Config) String() string {
	return fmt.Sprintf("%dx%d/if%d/w%d/acc%d", c.PEX, c.PEY, c.IfmapKB, c.WeightKB, c.AccumKB)
}

// Energy component unit costs in picojoules (16-bit datapath, Accelergy/
// Eyeriss-era 45-65 nm class numbers).
const (
	// eMAC is one 16-bit multiply-accumulate.
	eMAC = 0.5
	// eRF is one PE register-file access.
	eRF = 0.08
	// eNoCBase is one word over the array NoC at a 256-PE reference size;
	// actual cost scales with √PEs (average Manhattan distance).
	eNoCBase = 0.15
	// eBufBase is one access to a 64 KiB SRAM buffer; actual cost scales
	// with capacity^0.7 (CACTI-like, periphery-heavy at small sizes).
	eBufBase = 2.0
	// eDRAM is one word from DRAM.
	eDRAM = 220.0
	// eStaticPE is static power (clock tree, pipeline registers, leakage)
	// charged per PE per array cycle — PE rows idled by a filter smaller
	// than the array burn it for nothing.
	eStaticPE = 0.9
	// eLeakPerKB is SRAM retention energy charged per MAC per KiB of
	// on-chip buffer at the design throughput — the term that punishes
	// oversized buffers.
	eLeakPerKB = 0.016
	// rfChannelDepth is how many input channels' filter taps a PE register
	// file holds, bounding temporal partial-sum accumulation in the RF.
	rfChannelDepth = 16
	// batchSize is the energy-minimizing batch the paper's offline
	// processing uses; weight streaming from DRAM amortizes across it.
	batchSize = 16
	// bytesPerWord of the 16-bit datapath.
	bytesPerWord = 2
	// accumBytesPerWord: partial sums are kept at 32 bits.
	accumBytesPerWord = 4
)

// bufAccess returns the per-access energy of a buffer of the given KiB.
func bufAccess(kb int) float64 {
	return eBufBase * math.Pow(float64(kb)/64, 0.7)
}

// nocAccess returns the per-word NoC energy for the array size.
func nocAccess(pes int) float64 {
	return eNoCBase * math.Sqrt(float64(pes)/256)
}

// LayerEnergy is the per-inference energy breakdown for one layer, in pJ.
type LayerEnergy struct {
	MAC, RegFile, NoC, Buffer, DRAM, Idle float64
	// Utilization is the spatial PE utilization achieved on this layer.
	Utilization float64
}

// Total returns total energy in pJ.
func (e LayerEnergy) Total() float64 {
	return e.MAC + e.RegFile + e.NoC + e.Buffer + e.DRAM + e.Idle
}

// Joules returns the total in joules.
func (e LayerEnergy) Joules() float64 { return e.Total() * 1e-12 }

// LayerEnergy estimates the energy of one inference of layer l.
func (c Config) LayerEnergy(l workload.Layer) (LayerEnergy, error) {
	if err := c.Validate(); err != nil {
		return LayerEnergy{}, err
	}
	if err := l.Validate(); err != nil {
		return LayerEnergy{}, err
	}

	macs := float64(l.MACs())
	weights := float64(l.Weights())
	inputs := float64(l.Inputs())
	outputs := float64(l.Outputs())

	// Spatial mapping: filter rows map across PE columns (Y), output rows
	// and channels tile across X. Utilization suffers when R < PEY or the
	// layer is too small to fill X.
	rowsMapped := math.Min(float64(l.R), float64(c.PEY))
	colsNeeded := float64(l.K) // output channels tile across X
	if l.Depthwise {
		colsNeeded = float64(l.C)
	}
	colsMapped := math.Min(colsNeeded, float64(c.PEX))
	util := (rowsMapped * colsMapped) / float64(c.PEs())
	if util > 1 {
		util = 1
	}

	// Register file: weight, ifmap, and psum touched per MAC.
	rf := 3 * macs * eRF

	// Buffer traffic after register-file and spatial reuse:
	//   weights leave the buffer once per output row they serve (reuse Q),
	//   ifmap rows are reused diagonally across the rowsMapped PEs AND
	//   broadcast across PE columns computing different output channels,
	//   psums write back after spatial accumulation over mapped filter
	//   rows and the filter width held in the PE.
	kMapped := math.Min(float64(l.K), float64(c.PEX))
	if l.Depthwise {
		kMapped = 1 // no cross-channel ifmap sharing in depthwise layers
	}
	// A PE array shorter than the filter (PEY < R) cannot hold the full
	// row-stationary diagonal: each fold's partial sums round-trip the
	// accumulation buffer and channel-temporal accumulation in the RF is
	// lost.
	foldsY := math.Ceil(float64(l.R) / float64(c.PEY))
	cTemporal := math.Min(float64(l.C), rfChannelDepth)
	if foldsY > 1 {
		cTemporal = 1
	}
	wBufReads := macs / float64(l.Q)
	iBufReads := macs / (rowsMapped * kMapped)
	pBufAccesses := 2 * macs * foldsY / (rowsMapped * float64(l.S) * cTemporal)
	bufWords := wBufReads + iBufReads + pBufAccesses
	buffer := wBufReads*bufAccess(c.WeightKB) +
		iBufReads*bufAccess(c.IfmapKB) +
		pBufAccesses*bufAccess(c.AccumKB)

	// NoC: every buffer word crosses the array network.
	noc := bufWords * nocAccess(c.PEs())

	// DRAM traffic. Weights always live in DRAM; their streaming
	// amortizes over the processing batch (offline batch processing,
	// paper §IV-A). Activations ride the double-buffered inter-stage
	// feature buffers (Fig. 18) and only touch DRAM when the on-chip
	// capacity cannot hold the pass:
	//   - a weight buffer smaller than the layer forces multiple weight
	//     tiles; unless the whole ifmap is SRAM-resident, every extra
	//     tile re-streams the ifmap through DRAM;
	//   - an ifmap working set (C × one filter-height of rows) that
	//     overflows its buffer cannot be row-streamed and must be staged
	//     in DRAM.
	weightTiles := math.Ceil(weights * bytesPerWord / float64(c.WeightKB*1024))
	ifmapWorking := float64(l.C) * float64(l.InputW()) * float64(l.R) * bytesPerWord
	ifmapResident := inputs*bytesPerWord <= float64(c.IfmapKB*1024)
	wStream := weights / batchSize

	actDram := 0.0
	switch {
	case ifmapResident:
		// Whole ifmap fits on chip: weight tiles replay it from SRAM.
	case weightTiles > 1:
		// Staged in DRAM once, then read back per weight tile.
		actDram = inputs * (weightTiles + 1)
	case ifmapWorking > float64(c.IfmapKB*1024):
		// Working set overflow: stage and re-read once.
		actDram = inputs * 2
	}

	// Partial-sum spills: one output row across all K channels must fit
	// in the accumulation buffer or extra DRAM round trips occur.
	accumNeeded := float64(l.K) * float64(l.Q) * accumBytesPerWord
	spills := math.Ceil(accumNeeded / float64(c.AccumKB*1024))
	dramWords := wStream + actDram + outputs*2*(spills-1)
	dram := dramWords * eDRAM

	// Static energy: the whole array burns static power for every array
	// cycle (cycles = MACs / mapped parallelism), and the SRAM complement
	// pays retention energy per operation at the design throughput.
	cycles := macs / (rowsMapped * colsMapped)
	idle := cycles*eStaticPE*float64(c.PEs()) +
		macs*eLeakPerKB*float64(c.IfmapKB+c.WeightKB+c.AccumKB)

	return LayerEnergy{
		MAC:         macs * eMAC,
		RegFile:     rf,
		NoC:         noc,
		Buffer:      buffer,
		DRAM:        dram,
		Idle:        idle,
		Utilization: util,
	}, nil
}

// NetworkEnergy returns the energy of one inference of the network, in
// joules.
func (c Config) NetworkEnergy(n workload.Network) (float64, error) {
	var total float64
	for _, l := range n.Layers {
		e, err := c.LayerEnergy(l)
		if err != nil {
			return 0, fmt.Errorf("%s/%s: %w", n.Name, l.Name, err)
		}
		total += e.Joules()
	}
	return total, nil
}

// GPUModel is the commodity-GPU energy baseline for Fig. 17, anchored on
// the paper's RTX 3090 measurements: effective energy per MAC is the
// peak-rate energy inflated by the measured utilization (Table III) —
// poorly-utilized launches burn nearly full board power for little work.
type GPUModel struct {
	// PeakPJPerMAC is the energy per MAC at full utilization (2×TDP/peak
	// FLOP rate for MAC=2 FLOPs).
	PeakPJPerMAC float64
	// UtilizationFloor regularizes the utilization divisor: effective
	// energy = peak / (floor + (1-floor)·util).
	UtilizationFloor float64
}

// RTX3090Baseline is the Fig. 17 baseline: 350 W at 35.58 TFLOP/s peak
// gives ~19.7 pJ/MAC at full utilization.
// The ALU-only peak is 2×350 W / 35.58 TFLOP/s ≈ 19.7 pJ/MAC; ALUs are
// only ~27 % of board energy on CNN inference (the rest is DRAM, caches,
// instruction issue), giving ≈ 73 pJ/MAC effective at full utilization.
var RTX3090Baseline = GPUModel{
	PeakPJPerMAC:     2 * 350 / 35.58 / 0.14,
	UtilizationFloor: 0.05,
}

// NetworkEnergy returns the GPU energy for one inference in joules, given
// the measured utilization of the app driving this network.
func (g GPUModel) NetworkEnergy(n workload.Network, utilization float64) (float64, error) {
	if utilization < 0 || utilization > 1 {
		return 0, fmt.Errorf("accel: utilization %v out of [0,1]", utilization)
	}
	eff := g.PeakPJPerMAC / (g.UtilizationFloor + (1-g.UtilizationFloor)*utilization)
	return float64(n.TotalMACs()) * eff * 1e-12, nil
}
