package faults

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func scenario() Scenario {
	return Scenario{
		NodeMTTF:          4 * time.Hour,
		SEFIMTBE:          30 * time.Minute,
		SEFIRecovery:      45 * time.Second,
		ISLOutageMTBF:     20 * time.Minute,
		ISLOutageDuration: 90 * time.Second,
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := (Scenario{}).Validate(); err != nil {
		t.Errorf("zero scenario must be valid (fault-free): %v", err)
	}
	if (Scenario{}).Enabled() {
		t.Error("zero scenario must not be enabled")
	}
	if !scenario().Enabled() {
		t.Error("full scenario must be enabled")
	}
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"negative mttf", func(s *Scenario) { s.NodeMTTF = -1 }},
		{"negative mtbe", func(s *Scenario) { s.SEFIMTBE = -1 }},
		{"negative recovery", func(s *Scenario) { s.SEFIRecovery = -1 }},
		{"negative outage mtbf", func(s *Scenario) { s.ISLOutageMTBF = -1 }},
		{"negative outage duration", func(s *Scenario) { s.ISLOutageDuration = -1 }},
		{"sefi without recovery", func(s *Scenario) { s.SEFIRecovery = 0 }},
		{"outage without duration", func(s *Scenario) { s.ISLOutageDuration = 0 }},
	}
	for _, tt := range tests {
		s := scenario()
		tt.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestBuildRejectsBadInputs(t *testing.T) {
	if _, err := Build(Scenario{NodeMTTF: -1}, 4, time.Hour, 1); err == nil {
		t.Error("invalid scenario must error")
	}
	if _, err := Build(scenario(), 0, time.Hour, 1); err == nil {
		t.Error("zero nodes must error")
	}
	if _, err := Build(scenario(), 4, 0, 1); err == nil {
		t.Error("zero horizon must error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(scenario(), 8, 2*time.Hour, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(scenario(), 8, 2*time.Hour, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same inputs must produce an identical schedule")
	}
	c, err := Build(scenario(), 8, 2*time.Hour, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds must produce different schedules")
	}
}

func TestStreamsIndependentPerProcess(t *testing.T) {
	// Disabling the ISL outage process must not change node draws, and
	// vice versa: streams are forked per entity, never shared.
	full, err := Build(scenario(), 8, 2*time.Hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	noISL := scenario()
	noISL.ISLOutageMTBF, noISL.ISLOutageDuration = 0, 0
	nodesOnly, err := Build(noISL, 8, 2*time.Hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Deaths, nodesOnly.Deaths) || !reflect.DeepEqual(full.Hangs, nodesOnly.Hangs) {
		t.Error("node streams must be independent of the ISL process")
	}
	noNodes := scenario()
	noNodes.SEFIMTBE, noNodes.SEFIRecovery = 0, 0
	islToo, err := Build(noNodes, 8, 2*time.Hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Outages, islToo.Outages) {
		t.Error("the ISL stream must be independent of the SEFI process")
	}
}

func TestDeathsExponential(t *testing.T) {
	// Over many nodes, the fraction dead by t must track 1 − e^{-t/MTTF}.
	const nodes = 4000
	s := Scenario{NodeMTTF: 4 * time.Hour}
	sched, err := Build(s, nodes, 8*time.Hour, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, tOverT := range []float64{0.5, 1, 1.5} {
		tSec := tOverT * s.NodeMTTF.Seconds()
		want := 1 - math.Exp(-tOverT)
		got := float64(sched.DeadBy(tSec)) / nodes
		if math.Abs(got-want) > 0.03 {
			t.Errorf("dead fraction at t=%.1fT: got %.3f, want %.3f", tOverT, got, want)
		}
	}
}

func TestHangsSortedBoundedAndBeforeDeath(t *testing.T) {
	sched, err := Build(scenario(), 16, 4*time.Hour, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Hangs) == 0 {
		t.Fatal("a 30-minute MTBE over 16 nodes × 4 h must produce hangs")
	}
	horizon := (4 * time.Hour).Seconds()
	for i, hg := range sched.Hangs {
		if hg.At < 0 || hg.At >= horizon {
			t.Errorf("hang %d at %v outside [0, horizon)", i, hg.At)
		}
		if hg.Recovery < 0 {
			t.Errorf("hang %d negative recovery", i)
		}
		if hg.At >= sched.Deaths[hg.Node] {
			t.Errorf("hang %d scheduled after node %d death", i, hg.Node)
		}
		if i > 0 && sched.Hangs[i-1].At > hg.At {
			t.Error("hangs must be sorted by time")
		}
	}
}

func TestOutagesSortedNonOverlapping(t *testing.T) {
	sched, err := Build(scenario(), 4, 6*time.Hour, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Outages) == 0 {
		t.Fatal("a 20-minute outage MTBF over 6 h must produce outages")
	}
	prevEnd := 0.0
	for i, o := range sched.Outages {
		if o.Start < prevEnd {
			t.Errorf("outage %d overlaps its predecessor", i)
		}
		if o.Duration < 0 {
			t.Errorf("outage %d negative duration", i)
		}
		prevEnd = o.Start + o.Duration
	}
}

func TestBuildNEmptyShapes(t *testing.T) {
	// Relay cells own links but no workers; leaf cells own workers but
	// no links. Both shapes — and the fully empty one — must build.
	tests := []struct {
		name         string
		nodes, edges int
	}{
		{"no nodes", 0, 3},
		{"no edges", 5, 0},
		{"empty", 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sched, err := BuildN(scenario(), tt.nodes, tt.edges, 2*time.Hour, 9)
			if err != nil {
				t.Fatalf("BuildN(%d nodes, %d edges): %v", tt.nodes, tt.edges, err)
			}
			if len(sched.Deaths) != tt.nodes {
				t.Errorf("got %d deaths, want %d", len(sched.Deaths), tt.nodes)
			}
			if tt.nodes == 0 && len(sched.Hangs) != 0 {
				t.Errorf("no nodes must mean no hangs, got %d", len(sched.Hangs))
			}
			if tt.edges == 0 && len(sched.Outages) != 0 {
				t.Errorf("no edges must mean no outages, got %d", len(sched.Outages))
			}
		})
	}
	if _, err := BuildN(scenario(), -1, 1, time.Hour, 1); err == nil {
		t.Error("negative nodes must error")
	}
	if _, err := BuildN(scenario(), 1, -1, time.Hour, 1); err == nil {
		t.Error("negative edges must error")
	}
}

func TestEnvelopeValidate(t *testing.T) {
	var nilEnv *RateEnvelope
	if err := nilEnv.Validate(); err != nil {
		t.Errorf("nil envelope must be valid: %v", err)
	}
	tests := []struct {
		name string
		env  RateEnvelope
		ok   bool
	}{
		{"single segment", RateEnvelope{Starts: []float64{0}, Mults: []float64{2}}, true},
		{"two segments", RateEnvelope{Starts: []float64{0, 10}, Mults: []float64{1, 3}}, true},
		{"empty", RateEnvelope{}, false},
		{"length mismatch", RateEnvelope{Starts: []float64{0, 1}, Mults: []float64{1}}, false},
		{"nonzero origin", RateEnvelope{Starts: []float64{5}, Mults: []float64{1}}, false},
		{"non-ascending", RateEnvelope{Starts: []float64{0, 10, 10}, Mults: []float64{1, 2, 3}}, false},
		{"negative mult", RateEnvelope{Starts: []float64{0}, Mults: []float64{-1}}, false},
		{"inf mult", RateEnvelope{Starts: []float64{0}, Mults: []float64{math.Inf(1)}}, false},
	}
	for _, tt := range tests {
		err := tt.env.Validate()
		if tt.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tt.name, err)
		}
		if !tt.ok && err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestBuildModulatedIdentity(t *testing.T) {
	// A nil or all-ones envelope must reproduce BuildN byte for byte —
	// the thinning path consumes extra RNG draws and must not engage.
	base, err := BuildN(scenario(), 8, 2, 2*time.Hour, 21)
	if err != nil {
		t.Fatal(err)
	}
	viaNil, err := BuildModulated(scenario(), 8, 2, 2*time.Hour, 21, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, viaNil) {
		t.Error("nil envelope must match BuildN exactly")
	}
	ones := &RateEnvelope{Starts: []float64{0, 3600}, Mults: []float64{1, 1}}
	viaOnes, err := BuildModulated(scenario(), 8, 2, 2*time.Hour, 21, ones)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, viaOnes) {
		t.Error("all-ones envelope must match BuildN exactly")
	}
}

func TestBuildModulatedScalesHangRate(t *testing.T) {
	// Doubling the envelope everywhere should roughly double the hang
	// count; a zero envelope must suppress hangs entirely. Deaths and
	// outages must be untouched by modulation.
	s := scenario()
	s.NodeMTTF = 0 // no censoring, cleaner rate comparison
	base, err := BuildN(s, 64, 1, 8*time.Hour, 33)
	if err != nil {
		t.Fatal(err)
	}
	double := &RateEnvelope{Starts: []float64{0}, Mults: []float64{2}}
	hot, err := BuildModulated(s, 64, 1, 8*time.Hour, 33, double)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(hot.Hangs)) / float64(len(base.Hangs))
	// Recovery windows pause the clock in both, so the ratio undershoots
	// 2 slightly; accept a broad band.
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("2× envelope hang ratio %.2f, want ≈2", ratio)
	}
	if !reflect.DeepEqual(base.Outages, hot.Outages) {
		t.Error("modulation must not touch outages")
	}
	zero := &RateEnvelope{Starts: []float64{0}, Mults: []float64{0}}
	cold, err := BuildModulated(s, 64, 1, 8*time.Hour, 33, zero)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Hangs) != 0 {
		t.Errorf("zero envelope must suppress hangs, got %d", len(cold.Hangs))
	}
}

func TestBuildModulatedPostconditions(t *testing.T) {
	// The modulated schedule obeys the same invariants as the base one:
	// hangs sorted, bounded, before death, non-overlapping per node.
	env := &RateEnvelope{Starts: []float64{0, 1800, 3600}, Mults: []float64{0.3, 2.5, 1}}
	sched, err := BuildModulated(scenario(), 16, 2, 4*time.Hour, 13, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Hangs) == 0 {
		t.Fatal("modulated 30-minute MTBE over 16 nodes × 4 h must produce hangs")
	}
	horizon := (4 * time.Hour).Seconds()
	lastEnd := make(map[int]float64)
	for i, hg := range sched.Hangs {
		if hg.At < 0 || hg.At >= horizon {
			t.Errorf("hang %d at %v outside [0, horizon)", i, hg.At)
		}
		if hg.At >= sched.Deaths[hg.Node] {
			t.Errorf("hang %d scheduled after node %d death", i, hg.Node)
		}
		if i > 0 && sched.Hangs[i-1].At > hg.At {
			t.Error("hangs must be sorted by time")
		}
		if hg.At < lastEnd[hg.Node] {
			t.Errorf("hang %d overlaps node %d's previous recovery", i, hg.Node)
		}
		lastEnd[hg.Node] = hg.At + hg.Recovery
	}
}

func TestDeathsCensoredAtHorizon(t *testing.T) {
	sched, err := Build(Scenario{NodeMTTF: time.Hour}, 64, 30*time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	horizon := (30 * time.Minute).Seconds()
	for i, d := range sched.Deaths {
		if d > horizon && !math.IsInf(d, 1) {
			t.Errorf("node %d death %v beyond horizon must be +Inf", i, d)
		}
	}
	if sched.DeadBy(horizon) == 0 {
		t.Error("with MTTF = 2×horizon over 64 nodes, some deaths expected")
	}
}
