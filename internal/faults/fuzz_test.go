package faults

import (
	"math"
	"testing"
	"time"
)

// FuzzBuildN fuzzes Scenario×shape inputs through BuildN and checks the
// schedule postconditions the DES replay relies on: every death beyond
// the horizon censored to +Inf, hangs sorted by (At, Node) and
// non-overlapping per node and never after that node's death, outages
// sorted by (Start, Edge) and non-overlapping per edge. Invalid inputs
// must error rather than panic or emit a malformed schedule.
func FuzzBuildN(f *testing.F) {
	f.Add(int64(4*time.Hour), int64(30*time.Minute), int64(45*time.Second),
		int64(20*time.Minute), int64(90*time.Second), 8, 2, int64(2*time.Hour), int64(1))
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), 0, 0, int64(time.Hour), int64(7))
	f.Add(int64(time.Minute), int64(time.Second), int64(time.Second),
		int64(time.Second), int64(time.Second), 3, 5, int64(10*time.Minute), int64(-9))
	f.Fuzz(func(t *testing.T, mttf, mtbe, rec, omtbf, odur int64, nodes, edges int, horizon, seed int64) {
		// Bound the work per input: tiny rates over a huge horizon would
		// generate millions of events and time the fuzzer out.
		if nodes < 0 || nodes > 64 || edges < 0 || edges > 16 {
			t.Skip()
		}
		if horizon > int64(100*time.Hour) {
			t.Skip()
		}
		clamp := func(d int64) time.Duration {
			if d > 0 && d < int64(time.Second) {
				return time.Second
			}
			return time.Duration(d)
		}
		s := Scenario{
			NodeMTTF:          clamp(mttf),
			SEFIMTBE:          clamp(mtbe),
			SEFIRecovery:      clamp(rec),
			ISLOutageMTBF:     clamp(omtbf),
			ISLOutageDuration: clamp(odur),
		}
		sched, err := BuildN(s, nodes, edges, time.Duration(horizon), seed)
		if (s.Validate() != nil || horizon <= 0) != (err != nil) {
			t.Fatalf("validity mismatch: scenario err %v, horizon %v, build err %v", s.Validate(), horizon, err)
		}
		if err != nil {
			return
		}
		h := time.Duration(horizon).Seconds()
		if len(sched.Deaths) != nodes {
			t.Fatalf("got %d deaths, want %d", len(sched.Deaths), nodes)
		}
		for i, d := range sched.Deaths {
			if d <= 0 || (d > h && !math.IsInf(d, 1)) {
				t.Fatalf("death %d = %v must be in (0, horizon] or +Inf", i, d)
			}
		}
		lastHangEnd := make(map[int]float64)
		for i, hg := range sched.Hangs {
			if hg.Node < 0 || hg.Node >= nodes {
				t.Fatalf("hang %d references node %d of %d", i, hg.Node, nodes)
			}
			if hg.At < 0 || hg.At >= h {
				t.Fatalf("hang %d at %v outside [0, %v)", i, hg.At, h)
			}
			if hg.Recovery < 0 {
				t.Fatalf("hang %d negative recovery", i)
			}
			if hg.At >= sched.Deaths[hg.Node] {
				t.Fatalf("hang %d after node %d death", i, hg.Node)
			}
			if i > 0 && (sched.Hangs[i-1].At > hg.At ||
				(sched.Hangs[i-1].At == hg.At && sched.Hangs[i-1].Node >= hg.Node)) {
				t.Fatalf("hangs not sorted by (At, Node) at %d", i)
			}
			if hg.At < lastHangEnd[hg.Node] {
				t.Fatalf("hang %d overlaps node %d's recovery window", i, hg.Node)
			}
			lastHangEnd[hg.Node] = hg.At + hg.Recovery
		}
		lastOutEnd := make(map[int]float64)
		for i, o := range sched.Outages {
			if o.Edge < 0 || o.Edge >= edges {
				t.Fatalf("outage %d references edge %d of %d", i, o.Edge, edges)
			}
			if o.Start < 0 || o.Start >= h || o.Duration < 0 {
				t.Fatalf("outage %d window [%v, +%v) out of range", i, o.Start, o.Duration)
			}
			if i > 0 && (sched.Outages[i-1].Start > o.Start ||
				(sched.Outages[i-1].Start == o.Start && sched.Outages[i-1].Edge >= o.Edge)) {
				t.Fatalf("outages not sorted by (Start, Edge) at %d", i)
			}
			if o.Start < lastOutEnd[o.Edge] {
				t.Fatalf("outage %d overlaps edge %d's previous window", i, o.Edge)
			}
			lastOutEnd[o.Edge] = o.Start + o.Duration
		}
	})
}
