// Package faults is the repository's deterministic fault-injection
// engine. It turns a Scenario — rates for permanent node deaths,
// transient SEFI hangs, and ISL outages — into a concrete Schedule of
// timestamped fault events that a simulation replays.
//
// Determinism contract: a Schedule is a pure function of
// (Scenario, nodes, horizon, seed). Each node draws its lifetime and
// hang renewal process from its own RNG stream forked via par.ForkRand,
// and the ISL outage process uses a fixed stream index far above any
// plausible node count, so
//
//   - the same inputs produce a byte-identical schedule on any machine
//     and under any worker count, and
//   - adding or removing one fault process never perturbs the draws of
//     another (streams are independent per entity, not shared).
//
// Node lifetimes are exponential with mean NodeMTTF — the same
// distribution behind reliability.SurvivalProb — so a discrete-event
// simulation replaying a Schedule can be cross-checked against the
// closed-form binomial availability of package reliability.
package faults

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"time"

	"sudc/internal/par"
	"sudc/internal/reliability"
)

// Scenario configures the fault processes. The zero value disables all
// of them (a fault-free world).
type Scenario struct {
	// NodeMTTF is the mean time to permanent node failure (wear-out,
	// TID death); lifetimes are exponential. Zero disables deaths.
	NodeMTTF time.Duration
	// SEFIMTBE is each node's mean time between transient single-event
	// functional interrupts (SEFI hangs). Zero disables hangs.
	SEFIMTBE time.Duration
	// SEFIRecovery is the mean watchdog-recovery time after a SEFI
	// (exponential). Required when SEFIMTBE is set.
	SEFIRecovery time.Duration
	// ISLOutageMTBF is the mean time between ISL outage windows
	// (pointing loss, terminal resets). Zero disables outages.
	ISLOutageMTBF time.Duration
	// ISLOutageDuration is the mean outage length (exponential).
	// Required when ISLOutageMTBF is set.
	ISLOutageDuration time.Duration
}

// Enabled reports whether any fault process is active.
func (s Scenario) Enabled() bool {
	return s.NodeMTTF > 0 || s.SEFIMTBE > 0 || s.ISLOutageMTBF > 0
}

// Validate reports scenario errors.
func (s Scenario) Validate() error {
	switch {
	case s.NodeMTTF < 0:
		return errors.New("faults: negative node MTTF")
	case s.SEFIMTBE < 0:
		return errors.New("faults: negative SEFI MTBE")
	case s.SEFIRecovery < 0:
		return errors.New("faults: negative SEFI recovery")
	case s.ISLOutageMTBF < 0:
		return errors.New("faults: negative ISL outage MTBF")
	case s.ISLOutageDuration < 0:
		return errors.New("faults: negative ISL outage duration")
	case s.SEFIMTBE > 0 && s.SEFIRecovery == 0:
		return errors.New("faults: SEFI hangs need a recovery time")
	case s.ISLOutageMTBF > 0 && s.ISLOutageDuration == 0:
		return errors.New("faults: ISL outages need a duration")
	}
	return nil
}

// Hang is one transient SEFI: node Node stops serving at At and resumes
// Recovery seconds later (times in seconds from run start).
type Hang struct {
	Node         int
	At, Recovery float64
}

// Outage is one ISL outage window starting at Start and lasting
// Duration seconds on link Edge (always 0 for single-link schedules).
type Outage struct {
	Start, Duration float64
	Edge            int
}

// Schedule is a concrete fault timeline for one simulation run.
type Schedule struct {
	// Deaths[i] is node i's permanent death time in seconds;
	// +Inf when the node outlives the horizon.
	Deaths []float64
	// Hangs lists SEFI hangs sorted by (At, Node). A node never hangs
	// after its death, and its own hangs never overlap.
	Hangs []Hang
	// Outages lists ISL outage windows sorted by (Start, Edge);
	// windows on the same edge never overlap.
	Outages []Outage
}

// islStream is the fork index of the first ISL outage RNG stream —
// fixed and far above any plausible node count so node streams never
// collide with it. Link e draws from stream islStream+e, so multi-edge
// topologies get independent outage processes per edge and the
// single-edge schedule is bit-identical to the pre-topology one.
const islStream = 1 << 30

// RateEnvelope is a piecewise-constant fault-intensity multiplier over
// the horizon: the SEFI hang rate at time t is the scenario's base rate
// times the multiplier of the segment containing t. Segments are
// defined by ascending start times (Starts[0] must be 0) and their
// multipliers (≥ 0). A nil envelope, or one whose multipliers are all
// exactly 1, is the identity — BuildModulated then produces the exact
// byte-identical schedule of BuildN.
type RateEnvelope struct {
	Starts []float64
	Mults  []float64
}

// Validate reports envelope shape errors.
func (e *RateEnvelope) Validate() error {
	if e == nil {
		return nil
	}
	if len(e.Starts) == 0 || len(e.Starts) != len(e.Mults) {
		return errors.New("faults: envelope needs equal, non-empty Starts and Mults")
	}
	if e.Starts[0] != 0 {
		return errors.New("faults: envelope must start at t=0")
	}
	for i, t := range e.Starts {
		if math.IsNaN(t) || (i > 0 && t <= e.Starts[i-1]) {
			return errors.New("faults: envelope starts must ascend")
		}
		if e.Mults[i] < 0 || math.IsNaN(e.Mults[i]) || math.IsInf(e.Mults[i], 0) {
			return errors.New("faults: envelope multiplier out of range")
		}
	}
	return nil
}

// identity reports whether the envelope leaves the base rate untouched.
func (e *RateEnvelope) identity() bool {
	if e == nil {
		return true
	}
	for _, m := range e.Mults {
		if m != 1 {
			return false
		}
	}
	return true
}

// at returns the multiplier active at time t (segments are half-open
// [Starts[i], Starts[i+1])).
func (e *RateEnvelope) at(t float64) float64 {
	i := sort.SearchFloat64s(e.Starts, t)
	// SearchFloat64s returns the first index with Starts[i] >= t; the
	// active segment is the one before it unless t hits a start exactly.
	if i == len(e.Starts) || e.Starts[i] > t {
		i--
	}
	if i < 0 {
		return e.Mults[0]
	}
	return e.Mults[i]
}

// max returns the envelope's peak multiplier.
func (e *RateEnvelope) max() float64 {
	m := 0.0
	for _, v := range e.Mults {
		if v > m {
			m = v
		}
	}
	return m
}

// Build materializes the schedule for `nodes` nodes and a single ISL
// over the horizon. See the package comment for the determinism
// contract.
func Build(s Scenario, nodes int, horizon time.Duration, seed int64) (Schedule, error) {
	if nodes < 1 {
		return Schedule{}, errors.New("faults: need at least one node")
	}
	return BuildN(s, nodes, 1, horizon, seed)
}

// BuildN materializes the schedule for `nodes` nodes and `edges` ISL
// links over the horizon. Unlike Build it accepts zero nodes (a relay
// cell owns links but no workers) and zero edges (a leaf cell owns
// workers but no links); nodes=0 with edges=0 is the valid empty
// schedule. The schedule is a pure function of (Scenario, nodes, edges,
// horizon, seed): each edge's outage process draws from its own forked
// stream, so a schedule built for more edges extends — never perturbs —
// the smaller one.
func BuildN(s Scenario, nodes, edges int, horizon time.Duration, seed int64) (Schedule, error) {
	return BuildModulated(s, nodes, edges, horizon, seed, nil)
}

// BuildModulated is BuildN with a time-varying SEFI intensity: the hang
// renewal process of every node is thinned against the envelope, so the
// instantaneous hang rate is base × env(t) — the mechanism behind
// temperature-modulated transient-fault rates. Node deaths and ISL
// outages are not modulated. A nil or identity envelope reproduces the
// unmodulated schedule byte for byte (the thinning path, which consumes
// extra RNG draws, is never entered).
func BuildModulated(s Scenario, nodes, edges int, horizon time.Duration, seed int64, env *RateEnvelope) (Schedule, error) {
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	if nodes < 0 {
		return Schedule{}, errors.New("faults: negative node count")
	}
	if edges < 0 {
		return Schedule{}, errors.New("faults: negative edge count")
	}
	if horizon <= 0 {
		return Schedule{}, errors.New("faults: horizon must be positive")
	}
	if err := env.Validate(); err != nil {
		return Schedule{}, err
	}
	if env.identity() {
		env = nil
	}
	h := horizon.Seconds()
	sched := Schedule{Deaths: make([]float64, nodes)}
	for i := range sched.Deaths {
		rng := par.ForkRand(seed, i)
		death := math.Inf(1)
		if s.NodeMTTF > 0 {
			death = reliability.DrawLifetime(rng, s.NodeMTTF.Seconds())
			if death > h {
				death = math.Inf(1)
			}
		}
		sched.Deaths[i] = death
		if s.SEFIMTBE > 0 {
			limit := math.Min(death, h)
			if env == nil {
				for t := rng.ExpFloat64() * s.SEFIMTBE.Seconds(); t < limit; {
					rec := rng.ExpFloat64() * s.SEFIRecovery.Seconds()
					sched.Hangs = append(sched.Hangs, Hang{Node: i, At: t, Recovery: rec})
					// Next hang cannot begin before this one recovers.
					t += rec + rng.ExpFloat64()*s.SEFIMTBE.Seconds()
				}
			} else {
				sched.Hangs = modulatedHangs(sched.Hangs, s, i, rng, limit, env)
			}
		}
	}
	sort.Slice(sched.Hangs, func(a, b int) bool {
		if sched.Hangs[a].At != sched.Hangs[b].At {
			return sched.Hangs[a].At < sched.Hangs[b].At
		}
		return sched.Hangs[a].Node < sched.Hangs[b].Node
	})
	if s.ISLOutageMTBF > 0 {
		for e := 0; e < edges; e++ {
			rng := par.ForkRand(seed, islStream+e)
			for t := rng.ExpFloat64() * s.ISLOutageMTBF.Seconds(); t < h; {
				dur := rng.ExpFloat64() * s.ISLOutageDuration.Seconds()
				sched.Outages = append(sched.Outages, Outage{Start: t, Duration: dur, Edge: e})
				t += dur + rng.ExpFloat64()*s.ISLOutageMTBF.Seconds()
			}
		}
		sort.Slice(sched.Outages, func(a, b int) bool {
			if sched.Outages[a].Start != sched.Outages[b].Start {
				return sched.Outages[a].Start < sched.Outages[b].Start
			}
			return sched.Outages[a].Edge < sched.Outages[b].Edge
		})
	}
	return sched, nil
}

// modulatedHangs draws node i's hang renewal process with hazard
// rate base × env(t) via Lewis–Shedler thinning: candidates arrive at
// the envelope's peak rate and are accepted with probability
// env(t)/max. Recovery windows still suppress new hangs (the renewal
// clock pauses while hung), matching the unmodulated process shape.
func modulatedHangs(hangs []Hang, s Scenario, node int, rng *rand.Rand, limit float64, env *RateEnvelope) []Hang {
	maxM := env.max()
	if maxM <= 0 {
		return hangs
	}
	mtbe := s.SEFIMTBE.Seconds()
	t := 0.0
	for {
		// Next accepted hang time.
		for {
			t += rng.ExpFloat64() * mtbe / maxM
			if t >= limit {
				return hangs
			}
			if rng.Float64()*maxM < env.at(t) {
				break
			}
		}
		rec := rng.ExpFloat64() * s.SEFIRecovery.Seconds()
		hangs = append(hangs, Hang{Node: node, At: t, Recovery: rec})
		t += rec
	}
}

// DeadBy returns how many nodes have permanently died by time t
// (seconds).
func (s Schedule) DeadBy(t float64) int {
	dead := 0
	for _, d := range s.Deaths {
		if d <= t {
			dead++
		}
	}
	return dead
}
