// Package faults is the repository's deterministic fault-injection
// engine. It turns a Scenario — rates for permanent node deaths,
// transient SEFI hangs, and ISL outages — into a concrete Schedule of
// timestamped fault events that a simulation replays.
//
// Determinism contract: a Schedule is a pure function of
// (Scenario, nodes, horizon, seed). Each node draws its lifetime and
// hang renewal process from its own RNG stream forked via par.ForkRand,
// and the ISL outage process uses a fixed stream index far above any
// plausible node count, so
//
//   - the same inputs produce a byte-identical schedule on any machine
//     and under any worker count, and
//   - adding or removing one fault process never perturbs the draws of
//     another (streams are independent per entity, not shared).
//
// Node lifetimes are exponential with mean NodeMTTF — the same
// distribution behind reliability.SurvivalProb — so a discrete-event
// simulation replaying a Schedule can be cross-checked against the
// closed-form binomial availability of package reliability.
package faults

import (
	"errors"
	"math"
	"sort"
	"time"

	"sudc/internal/par"
	"sudc/internal/reliability"
)

// Scenario configures the fault processes. The zero value disables all
// of them (a fault-free world).
type Scenario struct {
	// NodeMTTF is the mean time to permanent node failure (wear-out,
	// TID death); lifetimes are exponential. Zero disables deaths.
	NodeMTTF time.Duration
	// SEFIMTBE is each node's mean time between transient single-event
	// functional interrupts (SEFI hangs). Zero disables hangs.
	SEFIMTBE time.Duration
	// SEFIRecovery is the mean watchdog-recovery time after a SEFI
	// (exponential). Required when SEFIMTBE is set.
	SEFIRecovery time.Duration
	// ISLOutageMTBF is the mean time between ISL outage windows
	// (pointing loss, terminal resets). Zero disables outages.
	ISLOutageMTBF time.Duration
	// ISLOutageDuration is the mean outage length (exponential).
	// Required when ISLOutageMTBF is set.
	ISLOutageDuration time.Duration
}

// Enabled reports whether any fault process is active.
func (s Scenario) Enabled() bool {
	return s.NodeMTTF > 0 || s.SEFIMTBE > 0 || s.ISLOutageMTBF > 0
}

// Validate reports scenario errors.
func (s Scenario) Validate() error {
	switch {
	case s.NodeMTTF < 0:
		return errors.New("faults: negative node MTTF")
	case s.SEFIMTBE < 0:
		return errors.New("faults: negative SEFI MTBE")
	case s.SEFIRecovery < 0:
		return errors.New("faults: negative SEFI recovery")
	case s.ISLOutageMTBF < 0:
		return errors.New("faults: negative ISL outage MTBF")
	case s.ISLOutageDuration < 0:
		return errors.New("faults: negative ISL outage duration")
	case s.SEFIMTBE > 0 && s.SEFIRecovery == 0:
		return errors.New("faults: SEFI hangs need a recovery time")
	case s.ISLOutageMTBF > 0 && s.ISLOutageDuration == 0:
		return errors.New("faults: ISL outages need a duration")
	}
	return nil
}

// Hang is one transient SEFI: node Node stops serving at At and resumes
// Recovery seconds later (times in seconds from run start).
type Hang struct {
	Node         int
	At, Recovery float64
}

// Outage is one ISL outage window starting at Start and lasting
// Duration seconds on link Edge (always 0 for single-link schedules).
type Outage struct {
	Start, Duration float64
	Edge            int
}

// Schedule is a concrete fault timeline for one simulation run.
type Schedule struct {
	// Deaths[i] is node i's permanent death time in seconds;
	// +Inf when the node outlives the horizon.
	Deaths []float64
	// Hangs lists SEFI hangs sorted by (At, Node). A node never hangs
	// after its death, and its own hangs never overlap.
	Hangs []Hang
	// Outages lists ISL outage windows sorted by (Start, Edge);
	// windows on the same edge never overlap.
	Outages []Outage
}

// islStream is the fork index of the first ISL outage RNG stream —
// fixed and far above any plausible node count so node streams never
// collide with it. Link e draws from stream islStream+e, so multi-edge
// topologies get independent outage processes per edge and the
// single-edge schedule is bit-identical to the pre-topology one.
const islStream = 1 << 30

// Build materializes the schedule for `nodes` nodes and a single ISL
// over the horizon. See the package comment for the determinism
// contract.
func Build(s Scenario, nodes int, horizon time.Duration, seed int64) (Schedule, error) {
	if nodes < 1 {
		return Schedule{}, errors.New("faults: need at least one node")
	}
	return BuildN(s, nodes, 1, horizon, seed)
}

// BuildN materializes the schedule for `nodes` nodes and `edges` ISL
// links over the horizon. Unlike Build it accepts zero nodes (a relay
// cell owns links but no workers). The schedule is a pure function of
// (Scenario, nodes, edges, horizon, seed): each edge's outage process
// draws from its own forked stream, so a schedule built for more edges
// extends — never perturbs — the smaller one.
func BuildN(s Scenario, nodes, edges int, horizon time.Duration, seed int64) (Schedule, error) {
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	if nodes < 0 {
		return Schedule{}, errors.New("faults: negative node count")
	}
	if edges < 1 {
		return Schedule{}, errors.New("faults: need at least one edge")
	}
	if horizon <= 0 {
		return Schedule{}, errors.New("faults: horizon must be positive")
	}
	h := horizon.Seconds()
	sched := Schedule{Deaths: make([]float64, nodes)}
	for i := range sched.Deaths {
		rng := par.ForkRand(seed, i)
		death := math.Inf(1)
		if s.NodeMTTF > 0 {
			death = reliability.DrawLifetime(rng, s.NodeMTTF.Seconds())
			if death > h {
				death = math.Inf(1)
			}
		}
		sched.Deaths[i] = death
		if s.SEFIMTBE > 0 {
			limit := math.Min(death, h)
			for t := rng.ExpFloat64() * s.SEFIMTBE.Seconds(); t < limit; {
				rec := rng.ExpFloat64() * s.SEFIRecovery.Seconds()
				sched.Hangs = append(sched.Hangs, Hang{Node: i, At: t, Recovery: rec})
				// Next hang cannot begin before this one recovers.
				t += rec + rng.ExpFloat64()*s.SEFIMTBE.Seconds()
			}
		}
	}
	sort.Slice(sched.Hangs, func(a, b int) bool {
		if sched.Hangs[a].At != sched.Hangs[b].At {
			return sched.Hangs[a].At < sched.Hangs[b].At
		}
		return sched.Hangs[a].Node < sched.Hangs[b].Node
	})
	if s.ISLOutageMTBF > 0 {
		for e := 0; e < edges; e++ {
			rng := par.ForkRand(seed, islStream+e)
			for t := rng.ExpFloat64() * s.ISLOutageMTBF.Seconds(); t < h; {
				dur := rng.ExpFloat64() * s.ISLOutageDuration.Seconds()
				sched.Outages = append(sched.Outages, Outage{Start: t, Duration: dur, Edge: e})
				t += dur + rng.ExpFloat64()*s.ISLOutageMTBF.Seconds()
			}
		}
		sort.Slice(sched.Outages, func(a, b int) bool {
			if sched.Outages[a].Start != sched.Outages[b].Start {
				return sched.Outages[a].Start < sched.Outages[b].Start
			}
			return sched.Outages[a].Edge < sched.Outages[b].Edge
		})
	}
	return sched, nil
}

// DeadBy returns how many nodes have permanently died by time t
// (seconds).
func (s Schedule) DeadBy(t float64) int {
	dead := 0
	for _, d := range s.Deaths {
		if d <= t {
			dead++
		}
	}
	return dead
}
