// Package thermal models a SµDC's thermal management: radiative heat
// rejection (the only way heat leaves a satellite — paper §III-B), radiator
// sizing via the Stefan–Boltzmann law, and an active heat pump that lifts
// heat from the electronics cold plate to a hotter radiator to shrink the
// required panel area at the price of pump power.
package thermal

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/units"
)

// Radiator describes a deployable radiator panel.
type Radiator struct {
	// Emissivity ε of the panel coating (paper uses 0.86 [92]).
	Emissivity float64
	// Temperature is the panel operating temperature.
	Temperature units.Temperature
	// SinkTemperature is the effective radiative background. Deep space is
	// 2.7 K; panels that view some Earth IR/albedo see a hotter sink.
	SinkTemperature units.Temperature
	// TwoSided reports whether both faces view space (paper's assumption).
	TwoSided bool
	// ArealDensity is panel mass per unit area (deployable radiators with
	// embedded heat pipes run ~3.5–8 kg/m²).
	ArealDensity units.ArealDensity
}

// DefaultRadiator is the paper's radiator: ε = 0.86, both faces toward
// deep space, 45 °C panels.
var DefaultRadiator = Radiator{
	Emissivity:      0.86,
	Temperature:     units.Celsius(45),
	SinkTemperature: units.SpaceBackgroundTemp,
	TwoSided:        true,
	ArealDensity:    5.5,
}

// Validate reports an error for unphysical radiators.
func (r Radiator) Validate() error {
	if r.Emissivity <= 0 || r.Emissivity > 1 {
		return fmt.Errorf("thermal: emissivity %v out of (0,1]", r.Emissivity)
	}
	if r.Temperature <= r.SinkTemperature {
		return errors.New("thermal: radiator must be hotter than its sink")
	}
	return nil
}

// FluxPerArea returns the net radiated power per unit panel area in W/m²
// (counting both faces when TwoSided): εσ(T⁴ − T_sink⁴) × faces.
func (r Radiator) FluxPerArea() float64 {
	faces := 1.0
	if r.TwoSided {
		faces = 2
	}
	t4 := math.Pow(float64(r.Temperature), 4)
	s4 := math.Pow(float64(r.SinkTemperature), 4)
	return r.Emissivity * units.StefanBoltzmann * (t4 - s4) * faces
}

// AreaFor returns the panel area required to reject heat q.
func (r Radiator) AreaFor(q units.Power) (units.Area, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if q < 0 {
		return 0, errors.New("thermal: negative heat load")
	}
	return units.Area(float64(q) / r.FluxPerArea()), nil
}

// Emitted returns the heat rejected by a panel of the given area
// (Equation 1 of the paper, net of the sink background).
func (r Radiator) Emitted(a units.Area) units.Power {
	return units.Power(r.FluxPerArea() * float64(a))
}

// EquilibriumTemp returns the panel temperature at which a radiator of
// the given area rejects exactly q — the inverse of Emitted:
// T = (T_sink⁴ + q/(εσA·faces))^¼. It is the steady-state operating
// temperature of a fixed panel under a varying heat load, the quantity
// the degradation engine's throttle curve keys on.
func EquilibriumTemp(r Radiator, q units.Power, a units.Area) (units.Temperature, error) {
	if r.Emissivity <= 0 || r.Emissivity > 1 {
		return 0, fmt.Errorf("thermal: emissivity %v out of (0,1]", r.Emissivity)
	}
	if a <= 0 {
		return 0, errors.New("thermal: panel area must be positive")
	}
	if q < 0 {
		return 0, errors.New("thermal: negative heat load")
	}
	faces := 1.0
	if r.TwoSided {
		faces = 2
	}
	s4 := math.Pow(float64(r.SinkTemperature), 4)
	t4 := s4 + float64(q)/(r.Emissivity*units.StefanBoltzmann*float64(a)*faces)
	return units.Temperature(math.Pow(t4, 0.25)), nil
}

// HeatPump is the active thermal control element. It moves heat from the
// electronics loop at Cold to the radiator at Hot; its electrical draw is
// heat/CoP with CoP a fraction of the Carnot limit.
type HeatPump struct {
	// Cold is the electronics cold-plate temperature.
	Cold units.Temperature
	// Hot is the radiator loop temperature.
	Hot units.Temperature
	// CarnotFraction is achieved CoP over Carnot CoP (vapor-compression
	// systems reach 0.3–0.5).
	CarnotFraction float64
	// SpecificMass is pump+loop mass per kW of heat lifted, kg/kW.
	SpecificMass float64
}

// DefaultHeatPump matches the paper's 4 kW design: lift from a 20 °C cold
// plate to the 45 °C radiator loop.
var DefaultHeatPump = HeatPump{
	Cold:           units.Celsius(20),
	Hot:            units.Celsius(45),
	CarnotFraction: 0.40,
	SpecificMass:   8,
}

// CoP returns the heat pump's coefficient of performance:
// CarnotFraction × T_cold/(T_hot − T_cold).
func (h HeatPump) CoP() (float64, error) {
	if h.Hot <= h.Cold {
		return 0, errors.New("thermal: heat pump requires Hot > Cold")
	}
	carnot := float64(h.Cold) / float64(h.Hot-h.Cold)
	return h.CarnotFraction * carnot, nil
}

// PumpPower returns the electrical power to lift heat q.
func (h HeatPump) PumpPower(q units.Power) (units.Power, error) {
	cop, err := h.CoP()
	if err != nil {
		return 0, err
	}
	return units.Power(float64(q) / cop), nil
}

// Design is a sized thermal subsystem.
type Design struct {
	// HeatLoad is the waste heat removed from the payload and bus.
	HeatLoad units.Power
	// PumpPower is the electrical draw of the active loop (itself also
	// rejected as heat by the radiator).
	PumpPower units.Power
	// RadiatedPower = HeatLoad + PumpPower.
	RadiatedPower units.Power
	// Area is the radiator panel area.
	Area units.Area
	// PanelMass and PumpMass are the component masses.
	PanelMass units.Mass
	PumpMass  units.Mass
}

// TotalMass returns the thermal subsystem mass.
func (d Design) TotalMass() units.Mass { return d.PanelMass + d.PumpMass }

// Size designs the thermal subsystem for a given waste-heat load using the
// radiator and pump. The pump's own dissipation is added to the radiated
// load (the pump does work on the fluid, and that work leaves as heat too).
func Size(q units.Power, r Radiator, h HeatPump) (Design, error) {
	if q < 0 {
		return Design{}, errors.New("thermal: negative heat load")
	}
	pump, err := h.PumpPower(q)
	if err != nil {
		return Design{}, err
	}
	total := q + pump
	area, err := r.AreaFor(total)
	if err != nil {
		return Design{}, err
	}
	return Design{
		HeatLoad:      q,
		PumpPower:     pump,
		RadiatedPower: total,
		Area:          area,
		PanelMass:     r.ArealDensity.MassFor(area),
		PumpMass:      units.Mass(h.SpecificMass * q.Kilowatts()),
	}, nil
}

// AreaTemperatureCurve returns, for a fixed heat rejection target, the
// required radiator area at each temperature in ts — the data behind the
// paper's Figure 12 trade-off.
func AreaTemperatureCurve(q units.Power, base Radiator, ts []units.Temperature) ([]units.Area, error) {
	out := make([]units.Area, len(ts))
	for i, t := range ts {
		r := base
		r.Temperature = t
		a, err := r.AreaFor(q)
		if err != nil {
			return nil, fmt.Errorf("at %v: %w", t, err)
		}
		out[i] = a
	}
	return out, nil
}

// SizePassive designs a passive thermal subsystem: no heat pump, so the
// radiator runs at the electronics cold-plate temperature and must be
// correspondingly larger (the T⁴ law). This is the configuration SSCM's
// regression data is dominated by, and the baseline the paper's active
// design trades against.
func SizePassive(q units.Power, r Radiator, plateTemp units.Temperature) (Design, error) {
	if q < 0 {
		return Design{}, errors.New("thermal: negative heat load")
	}
	passive := r
	passive.Temperature = plateTemp
	area, err := passive.AreaFor(q)
	if err != nil {
		return Design{}, err
	}
	return Design{
		HeatLoad:      q,
		RadiatedPower: q,
		Area:          area,
		PanelMass:     passive.ArealDensity.MassFor(area),
	}, nil
}
