package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"sudc/internal/units"
)

func TestPaperRadiatorAnchor(t *testing.T) {
	// Paper §III-B: "A 1 m² radiator (ε = 0.86) at 45 °C will emit just shy
	// of 1 kW when both radiator faces are oriented toward deep space."
	got := DefaultRadiator.Emitted(1).Watts()
	if got < 950 || got >= 1000 {
		t.Errorf("1 m² @45°C emits %.1f W, want just shy of 1000", got)
	}
}

func TestFourSquareMeterRadiatorFor4kW(t *testing.T) {
	// Paper: "Only a 4 m² radiator can support the heat dissipated by our
	// 4 kW SµDCs."
	a, err := DefaultRadiator.AreaFor(units.KW(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.SquareMeters(); got < 3.8 || got > 4.3 {
		t.Errorf("area for 4 kW = %.2f m², want ≈4", got)
	}
}

func TestAreaForErrors(t *testing.T) {
	if _, err := DefaultRadiator.AreaFor(units.Power(-5)); err == nil {
		t.Error("negative heat load must error")
	}
	bad := DefaultRadiator
	bad.Emissivity = 0
	if _, err := bad.AreaFor(units.KW(1)); err == nil {
		t.Error("zero emissivity must error")
	}
	cold := DefaultRadiator
	cold.Temperature = 2.0 // below the sink
	if _, err := cold.AreaFor(units.KW(1)); err == nil {
		t.Error("radiator colder than sink must error")
	}
}

func TestOneSidedHalvesFlux(t *testing.T) {
	one := DefaultRadiator
	one.TwoSided = false
	if !units.ApproxEqual(2*one.FluxPerArea(), DefaultRadiator.FluxPerArea(), 1e-12) {
		t.Error("two-sided radiator must emit exactly twice a one-sided one")
	}
}

func TestCoP(t *testing.T) {
	cop, err := DefaultHeatPump.CoP()
	if err != nil {
		t.Fatal(err)
	}
	// Carnot for 293.15 K → 318.15 K is 293.15/25 ≈ 11.7; at 40% ≈ 4.7.
	if cop < 4 || cop > 5.5 {
		t.Errorf("CoP = %.2f, want ≈4.7", cop)
	}
	bad := DefaultHeatPump
	bad.Hot = bad.Cold
	if _, err := bad.CoP(); err == nil {
		t.Error("Hot == Cold must error")
	}
}

func TestPumpPowerFraction(t *testing.T) {
	// Heat pump power for 4 kW of heat should be a modest fraction (~20%).
	p, err := DefaultHeatPump.PumpPower(units.KW(4))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(p) / 4000
	if frac < 0.1 || frac > 0.35 {
		t.Errorf("pump power fraction = %.3f, want 0.1-0.35", frac)
	}
}

func TestSizeIncludesPumpHeat(t *testing.T) {
	d, err := Size(units.KW(4), DefaultRadiator, DefaultHeatPump)
	if err != nil {
		t.Fatal(err)
	}
	if d.RadiatedPower != d.HeatLoad+d.PumpPower {
		t.Error("radiated power must include pump dissipation")
	}
	// So the radiator is larger than the no-pump 4 m².
	noPump, _ := DefaultRadiator.AreaFor(units.KW(4))
	if d.Area <= noPump {
		t.Error("active loop must need more radiator area than heat load alone")
	}
	if d.TotalMass() <= 0 {
		t.Error("thermal mass must be positive")
	}
}

func TestSizeZeroLoad(t *testing.T) {
	d, err := Size(0, DefaultRadiator, DefaultHeatPump)
	if err != nil {
		t.Fatal(err)
	}
	if d.Area != 0 || d.TotalMass() != 0 {
		t.Errorf("zero load must size a zero subsystem, got %+v", d)
	}
}

func TestHotterRadiatorIsSmaller(t *testing.T) {
	ts := []units.Temperature{units.Celsius(0), units.Celsius(45), units.Celsius(90)}
	areas, err := AreaTemperatureCurve(units.KW(4), DefaultRadiator, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !(areas[0] > areas[1] && areas[1] > areas[2]) {
		t.Errorf("area must fall with temperature: %v", areas)
	}
}

func TestAreaTemperatureCurveError(t *testing.T) {
	if _, err := AreaTemperatureCurve(units.KW(1), DefaultRadiator,
		[]units.Temperature{1.0}); err == nil {
		t.Error("sub-sink temperature must error")
	}
}

func TestT4Scaling(t *testing.T) {
	// Doubling absolute temperature (with negligible sink) raises flux ~16×.
	r := DefaultRadiator
	r.Temperature = 300
	f1 := r.FluxPerArea()
	r.Temperature = 600
	f2 := r.FluxPerArea()
	if ratio := f2 / f1; math.Abs(ratio-16) > 0.01 {
		t.Errorf("T⁴ scaling ratio = %.3f, want ≈16", ratio)
	}
}

func TestEmittedInvertsAreaFor(t *testing.T) {
	f := func(raw uint16) bool {
		q := units.Power(1 + float64(raw)) // 1 W .. 65 kW
		a, err := DefaultRadiator.AreaFor(q)
		if err != nil {
			return false
		}
		return units.ApproxEqual(float64(DefaultRadiator.Emitted(a)), float64(q), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeMonotoneInLoad(t *testing.T) {
	f := func(raw uint16) bool {
		q := units.Power(10 + float64(raw))
		d1, err1 := Size(q, DefaultRadiator, DefaultHeatPump)
		d2, err2 := Size(q+50, DefaultRadiator, DefaultHeatPump)
		if err1 != nil || err2 != nil {
			return false
		}
		return d2.Area > d1.Area && d2.TotalMass() > d1.TotalMass()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizePassive(t *testing.T) {
	d, err := SizePassive(units.KW(4), DefaultRadiator, units.Celsius(20))
	if err != nil {
		t.Fatal(err)
	}
	if d.PumpPower != 0 || d.PumpMass != 0 {
		t.Error("passive design must have no pump")
	}
	if d.RadiatedPower != d.HeatLoad {
		t.Error("passive design radiates exactly the heat load")
	}
	// Cooler panels need more area than the active 45 °C design needs for
	// the same heat load alone.
	active, _ := DefaultRadiator.AreaFor(units.KW(4))
	if d.Area <= active {
		t.Errorf("passive 20 °C area (%v) must exceed active 45 °C area (%v)", d.Area, active)
	}
	if _, err := SizePassive(units.Power(-1), DefaultRadiator, units.Celsius(20)); err == nil {
		t.Error("negative load must error")
	}
	if _, err := SizePassive(units.KW(1), DefaultRadiator, 1); err == nil {
		t.Error("sub-sink plate temperature must error")
	}
}
