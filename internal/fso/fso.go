// Package fso models the free-space-optics inter-satellite-link (ISL)
// subsystem of a SµDC: aggregate link power, mass and hardware cost as a
// function of installed capacity, the optical-head catalog (anchored on
// published commercial terminals, per paper §II), and the C&DH data-rate
// downscaling the paper applies before feeding SSCM's RF-era cost
// regressions ("we first downscale the FSO data rate by the bandwidth
// ratio between FSO and X-band RF communications — failure to do this
// results in unreasonably high C&DH cost estimates").
//
// Aggregate link power/mass/cost follow a saturating law
//
//	X(R) = X_peak · (1 − e^(−R/R₀))
//
// — near-linear below the saturation rate R₀ and flattening above it as
// wavelength multiplexing and shared pointing infrastructure amortize
// (the economies the paper points to via Tbit/s DP-QPSK crosslinks [70]).
// This is the form that reproduces the paper's communication results
// simultaneously: 25 Gbit/s costing just under 30 % of a 500 W SµDC's TCO
// (Fig. 7) while full lightest-app capacity on 4–10 kW SµDCs stays under
// 26 %, and the compression/collaborative-filtering savings of
// Figs. 10 & 21.
package fso

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/units"
)

// Link describes an ISL subsystem technology.
type Link struct {
	Name string
	// HeadRate is the capacity of one optical head; heads are ganged for
	// larger aggregates (reported in Design.Heads).
	HeadRate units.DataRate
	// SaturationRate is R₀ of the saturating cost law: capacity below R₀
	// prices near-linearly, capacity above it comes at steep discount.
	SaturationRate units.DataRate
	// PeakPower, PeakMass, PeakCost are the asymptotic subsystem totals at
	// R ≫ R₀.
	PeakPower units.Power
	PeakMass  units.Mass
	PeakCost  units.Dollars
	// Regime is the link class ("LEO-LEO", "LEO-GEO").
	Regime string
}

// Catalog, anchored on commercial optical crosslink classes (CONDOR Mk3
// class heads for LEO-LEO [58]).
var (
	// CondorClass is the LEO-LEO crosslink subsystem used by the paper's
	// reference designs.
	CondorClass = Link{
		Name:           "CONDOR Mk3 class",
		HeadRate:       units.GbpsOf(100),
		SaturationRate: units.GbpsOf(27),
		PeakPower:      560,
		PeakMass:       50,
		PeakCost:       1.3e6,
		Regime:         "LEO-LEO",
	}
	// GEORelayClass is a longer-haul LEO-GEO/MEO subsystem: bigger
	// apertures, more power per bit, earlier saturation.
	GEORelayClass = Link{
		Name:           "LEO-GEO relay class",
		HeadRate:       units.GbpsOf(10),
		SaturationRate: units.GbpsOf(8),
		PeakPower:      1400,
		PeakMass:       150,
		PeakCost:       6e6,
		Regime:         "LEO-GEO",
	}
)

// XBandReferenceRate is the X-band RF downlink capacity SSCM's C&DH cost
// regressions were fit against (hundreds of Mbit/s class).
const XBandReferenceRate = 500 * units.Mbps

// XBandEquivalent downscales an FSO data rate by the FSO-to-X-band
// bandwidth ratio of the link's optical heads, so the result can be fed to
// RF-era C&DH CERs. A link running at one head's full rate maps to the
// X-band reference rate.
func XBandEquivalent(l Link, rate units.DataRate) units.DataRate {
	if l.HeadRate <= 0 || rate <= 0 {
		return 0
	}
	ratio := float64(l.HeadRate) / float64(XBandReferenceRate)
	return units.DataRate(float64(rate) / ratio)
}

// Validate reports parameter errors.
func (l Link) Validate() error {
	if l.HeadRate <= 0 {
		return fmt.Errorf("fso: link %q has no head capacity", l.Name)
	}
	if l.SaturationRate <= 0 {
		return fmt.Errorf("fso: link %q has no saturation rate", l.Name)
	}
	if l.PeakPower <= 0 || l.PeakMass <= 0 || l.PeakCost <= 0 {
		return fmt.Errorf("fso: link %q has non-positive peak figures", l.Name)
	}
	return nil
}

// saturation returns 1 − e^(−R/R₀) ∈ [0, 1).
func (l Link) saturation(rate units.DataRate) float64 {
	return 1 - math.Exp(-float64(rate)/float64(l.SaturationRate))
}

// Design is a sized ISL subsystem.
type Design struct {
	Link Link
	// Rate is the installed aggregate capacity.
	Rate units.DataRate
	// Heads is the number of optical heads installed.
	Heads int
	// Mass, Power, HardwareCost are the subsystem totals under the
	// saturating law.
	Mass         units.Mass
	Power        units.Power
	HardwareCost units.Dollars
}

// Size designs the ISL subsystem for the required aggregate rate. A zero
// rate returns an empty design (no ISL).
func Size(l Link, rate units.DataRate) (Design, error) {
	if rate < 0 {
		return Design{}, errors.New("fso: negative data rate")
	}
	if rate == 0 {
		return Design{Link: l}, nil
	}
	if err := l.Validate(); err != nil {
		return Design{}, err
	}
	s := l.saturation(rate)
	return Design{
		Link:         l,
		Rate:         rate,
		Heads:        int(math.Ceil(float64(rate) / float64(l.HeadRate))),
		Mass:         units.Mass(float64(l.PeakMass) * s),
		Power:        units.Power(float64(l.PeakPower) * s),
		HardwareCost: units.Dollars(float64(l.PeakCost) * s),
	}, nil
}

// WithEfficiencyImprovement returns a copy of the link whose power at
// every rate is divided by factor — modeling "ongoing improvements in FSO
// power efficiency" (paper §III, [42], [70]).
func (l Link) WithEfficiencyImprovement(factor float64) Link {
	if factor <= 0 {
		return l
	}
	out := l
	out.PeakPower = units.Power(float64(l.PeakPower) / factor)
	return out
}
