package fso

import (
	"math"
	"testing"
	"testing/quick"

	"sudc/internal/units"
)

func TestSizeZeroRate(t *testing.T) {
	d, err := Size(CondorClass, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Heads != 0 || d.Mass != 0 || d.Power != 0 || d.HardwareCost != 0 {
		t.Errorf("zero rate must produce empty design: %+v", d)
	}
}

func TestSizeNegativeRate(t *testing.T) {
	if _, err := Size(CondorClass, -1); err == nil {
		t.Error("negative rate must error")
	}
}

func TestSizeInvalidLink(t *testing.T) {
	if _, err := Size(Link{Name: "dud"}, units.GbpsOf(1)); err == nil {
		t.Error("zero-capacity link must error")
	}
	noSat := CondorClass
	noSat.SaturationRate = 0
	if _, err := Size(noSat, units.GbpsOf(1)); err == nil {
		t.Error("zero saturation rate must error")
	}
	noPeak := CondorClass
	noPeak.PeakPower = 0
	if _, err := Size(noPeak, units.GbpsOf(1)); err == nil {
		t.Error("zero peak power must error")
	}
}

func TestSaturatingPower(t *testing.T) {
	// At R = R₀ the subsystem draws (1 − 1/e) ≈ 63.2% of peak.
	d, err := Size(CondorClass, CondorClass.SaturationRate)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(CondorClass.PeakPower) * (1 - 1/math.E)
	if !units.ApproxEqual(float64(d.Power), want, 1e-9) {
		t.Errorf("power at R₀ = %v, want %v", d.Power, want)
	}
	// Far above R₀ the subsystem approaches but never exceeds peak.
	big, _ := Size(CondorClass, units.GbpsOf(2000))
	if big.Power > CondorClass.PeakPower {
		t.Error("power must never exceed peak")
	}
	if float64(big.Power) < 0.99*float64(CondorClass.PeakPower) {
		t.Error("power at 2 Tbit/s should be within 1% of peak")
	}
}

func TestNearLinearBelowSaturation(t *testing.T) {
	// Well below R₀, doubling the rate roughly doubles the cost
	// (within the curvature of the exponential).
	d1, _ := Size(CondorClass, units.GbpsOf(1))
	d2, _ := Size(CondorClass, units.GbpsOf(2))
	ratio := float64(d2.Power) / float64(d1.Power)
	if ratio < 1.9 || ratio > 2.0 {
		t.Errorf("low-rate doubling ratio = %.3f, want ≈2", ratio)
	}
}

func TestEconomiesOfScale(t *testing.T) {
	// The paper's Fig. 7 behaviour: 8× the capacity costs much less than
	// 8× (the marginal Gbit/s gets cheaper).
	small, _ := Size(CondorClass, units.GbpsOf(25))
	large, _ := Size(CondorClass, units.GbpsOf(200))
	if ratio := float64(large.Power) / float64(small.Power); ratio > 2 {
		t.Errorf("200G/25G power ratio = %.2f, want <2 (economies of scale)", ratio)
	}
	if large.HardwareCost <= small.HardwareCost {
		t.Error("more capacity must still cost more")
	}
}

func TestHeadCounting(t *testing.T) {
	d, _ := Size(CondorClass, units.GbpsOf(250))
	if d.Heads != 3 {
		t.Errorf("250 Gbit/s needs %d heads, want 3", d.Heads)
	}
	d, _ = Size(CondorClass, units.GbpsOf(25))
	if d.Heads != 1 {
		t.Errorf("25 Gbit/s needs %d heads, want 1", d.Heads)
	}
}

func TestXBandEquivalent(t *testing.T) {
	// At one head's full rate the equivalent is the X-band reference.
	got := XBandEquivalent(CondorClass, CondorClass.HeadRate)
	if !units.ApproxEqual(float64(got), float64(XBandReferenceRate), 1e-12) {
		t.Errorf("full-rate equivalent = %v, want %v", got, XBandReferenceRate)
	}
	// 25 Gbit/s of FSO books as only 125 Mbit/s of RF-era C&DH throughput.
	got = XBandEquivalent(CondorClass, units.GbpsOf(25))
	if !units.ApproxEqual(float64(got), 125e6, 1e-9) {
		t.Errorf("25 Gbit/s equivalent = %v, want 125 Mbit/s", got)
	}
	if XBandEquivalent(CondorClass, 0) != 0 {
		t.Error("zero rate maps to zero")
	}
	if XBandEquivalent(Link{}, units.GbpsOf(1)) != 0 {
		t.Error("zero-capacity link maps to zero")
	}
}

func TestGEORelayIsHeavierAndHungrier(t *testing.T) {
	leo, _ := Size(CondorClass, units.GbpsOf(10))
	geo, _ := Size(GEORelayClass, units.GbpsOf(10))
	if geo.Mass <= leo.Mass {
		t.Error("LEO-GEO subsystem should be heavier than LEO-LEO at same rate")
	}
	if geo.Power <= leo.Power {
		t.Error("LEO-GEO subsystem should draw more power at same rate")
	}
}

func TestEfficiencyImprovement(t *testing.T) {
	improved := CondorClass.WithEfficiencyImprovement(4)
	if float64(improved.PeakPower)*4 != float64(CondorClass.PeakPower) {
		t.Error("peak power must divide by the factor")
	}
	// factor ≤ 0 is a no-op.
	if same := CondorClass.WithEfficiencyImprovement(0); same != CondorClass {
		t.Error("non-positive factor must be a no-op")
	}
	d0, _ := Size(CondorClass, units.GbpsOf(25))
	d1, _ := Size(improved, units.GbpsOf(25))
	if !units.ApproxEqual(float64(d1.Power)*4, float64(d0.Power), 1e-9) {
		t.Error("improved link must draw 1/4 the power at every rate")
	}
	// Mass and cost are unchanged: the improvement is in photonics power.
	if d1.Mass != d0.Mass || d1.HardwareCost != d0.HardwareCost {
		t.Error("efficiency improvement must not change mass or cost")
	}
}

func TestSizeMonotoneInRate(t *testing.T) {
	f := func(raw uint16) bool {
		r := units.DataRate(1e9 + float64(raw)*1e8)
		d1, err1 := Size(CondorClass, r)
		d2, err2 := Size(CondorClass, r+5e8)
		if err1 != nil || err2 != nil {
			return false
		}
		// Non-strict at very high rates where the law has saturated to
		// the peak within float precision.
		return d2.Power >= d1.Power && d2.Mass >= d1.Mass &&
			d2.HardwareCost >= d1.HardwareCost && d2.Heads >= d1.Heads
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcavityProperty(t *testing.T) {
	// Marginal cost decreases: X(2R) − X(R) < X(R) − X(0).
	f := func(raw uint16) bool {
		r := units.DataRate(1e9 + float64(raw)*2e8)
		d1, err1 := Size(CondorClass, r)
		d2, err2 := Size(CondorClass, 2*r)
		if err1 != nil || err2 != nil {
			return false
		}
		return float64(d2.Power)-float64(d1.Power) <= float64(d1.Power)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
