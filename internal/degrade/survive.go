package degrade

// Compressed-horizon survivability: the modulation schedule replayed
// over a multi-year program window. A week of program time is far too
// coarse for per-orbit phases, so the schedule is compressed to its
// orbit-averaged CapacityFactor and applied per satellite on top of
// solar-array aging, while the fleet itself evolves under the
// lifecycle replenishment policy (scheduled retirement, early
// failures, lead-time launches). The replay follows the weekly-step
// semantics of lifecycle.Policy.Simulate and keeps its determinism
// discipline: one RNG stream per trial forked from the seed, so
// results are identical for any worker count.

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"sudc/internal/lifecycle"
	"sudc/internal/par"
	"sudc/internal/solar"
)

// SurvivalConfig describes one compressed-horizon program run.
type SurvivalConfig struct {
	// Policy is the fleet-maintenance strategy (target, spares,
	// lifetimes, replacement lead time, program horizon).
	Policy lifecycle.Policy
	// Profile is the per-satellite degradation operating point; its
	// orbit-averaged CapacityFactor scales each satellite's capacity.
	Profile Profile
	// Solar supplies the array aging rate: a satellite of age a serves
	// at CapacityFactor × (1 − annualDegradation)^a.
	Solar solar.Config
	// Trials is the Monte-Carlo trial count; Seed forks one RNG stream
	// per trial.
	Trials int
	Seed   int64
}

// DefaultSurvivalConfig is the reference program: the default
// maintenance policy and EPS, the COTS profile at the given severity,
// 200 trials.
func DefaultSurvivalConfig(severity float64) SurvivalConfig {
	return SurvivalConfig{
		Policy:  lifecycle.DefaultPolicy(),
		Profile: COTSProfile(severity),
		Solar:   solar.DefaultConfig(),
		Trials:  200,
		Seed:    1,
	}
}

// YearPoint is one program year's mean fleet state across trials.
type YearPoint struct {
	// Year is the 0-based program year.
	Year int
	// MeanOperational is the time-averaged operational satellite count.
	MeanOperational float64
	// Availability is the fraction of the year with ≥ Target
	// operational satellites (counting heads, not capacity).
	Availability float64
	// MeanCapacity is the time-averaged fleet capacity in units of
	// fully-rated satellites: Σ CapacityFactor × aging^age.
	MeanCapacity float64
}

// SurvivalResult summarizes the compressed-horizon program.
type SurvivalResult struct {
	// CapacityFactor is the orbit-averaged per-satellite capacity
	// multiplier the schedule compressed to.
	CapacityFactor float64
	// UnitsBuilt is the mean satellites manufactured over the horizon.
	UnitsBuilt float64
	// Availability is the head-count availability over the whole
	// program (the lifecycle.SimResult quantity).
	Availability float64
	// CapacityAvailability is the fraction of program time with
	// degradation-adjusted fleet capacity ≥ Target — the metric that
	// breaks first when throttling eats the spare margin.
	CapacityAvailability float64
	// MeanCapacity is the program-averaged fleet capacity.
	MeanCapacity float64
	// Years is the per-year trajectory.
	Years []YearPoint
}

// Validate reports configuration errors.
func (c SurvivalConfig) Validate() error {
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if err := c.Solar.Validate(); err != nil {
		return err
	}
	if c.Trials < 1 {
		return errors.New("degrade: trials must be ≥ 1")
	}
	return nil
}

// trialAccum accumulates one trial's weekly integrals.
type trialAccum struct {
	built     float64
	availWks  float64
	capWks    float64
	opSum     float64
	capSum    float64
	steps     float64
	yearOp    []float64
	yearAvail []float64
	yearCap   []float64
	yearSteps []float64
}

// Survive runs the compressed-horizon program. Deterministic for any
// worker count: trial tr draws from par.ForkRand(Seed, tr) only.
func Survive(cfg SurvivalConfig) (SurvivalResult, error) {
	if err := cfg.Validate(); err != nil {
		return SurvivalResult{}, err
	}
	// Compress the schedule: one orbital period captures the repeating
	// sunlit/eclipse cycle exactly.
	period := time.Duration(cfg.Profile.Orbit.Period() * float64(time.Second))
	sched, err := Build(cfg.Profile, period)
	if err != nil {
		return SurvivalResult{}, err
	}
	capFactor := sched.CapacityFactor()
	years := int(math.Ceil(float64(cfg.Policy.Horizon)))

	parts := make([]trialAccum, cfg.Trials)
	par.ForN(cfg.Trials, func(tr int) {
		parts[tr] = cfg.trial(par.ForkRand(cfg.Seed, tr), capFactor, years)
	})

	out := SurvivalResult{CapacityFactor: capFactor}
	out.Years = make([]YearPoint, years)
	n := float64(cfg.Trials)
	for _, p := range parts {
		out.UnitsBuilt += p.built / n
		out.Availability += p.availWks / p.steps / n
		out.CapacityAvailability += p.capWks / p.steps / n
		out.MeanCapacity += p.capSum / p.steps / n
		for y := 0; y < years; y++ {
			if p.yearSteps[y] == 0 {
				continue
			}
			out.Years[y].MeanOperational += p.yearOp[y] / p.yearSteps[y] / n
			out.Years[y].Availability += p.yearAvail[y] / p.yearSteps[y] / n
			out.Years[y].MeanCapacity += p.yearCap[y] / p.yearSteps[y] / n
		}
	}
	for y := range out.Years {
		out.Years[y].Year = y
	}
	return out, nil
}

// trial replays one program trajectory with the weekly-step fleet
// semantics of lifecycle.Policy.Simulate, adding the per-satellite
// capacity integral.
func (cfg SurvivalConfig) trial(rng *rand.Rand, capFactor float64, years int) trialAccum {
	p := cfg.Policy
	horizon := float64(p.Horizon)
	const dt = 1.0 / 52 // weekly steps
	aging := 1 - cfg.Solar.Cell.AnnualDegradation
	size := p.Target + p.Spares
	target := float64(p.Target)

	a := trialAccum{
		yearOp:    make([]float64, years),
		yearAvail: make([]float64, years),
		yearCap:   make([]float64, years),
		yearSteps: make([]float64, years),
	}
	fleet := make([]float64, size) // ages of flying satellites
	a.built = float64(size)
	var pending []float64
	// Integer week index: repeated float addition (t += dt) accumulates
	// rounding error that misbuckets year-boundary weeks and can run the
	// loop a step long or short over a multi-year horizon. Deriving t
	// from the week counter keeps every year at exactly 52 steps.
	steps := int(math.Round(horizon * 52))
	for w := 0; w < steps; w++ {
		t := float64(w) * dt
		// Deliver arrivals.
		keep := pending[:0]
		for _, at := range pending {
			if at <= t {
				fleet = append(fleet, 0)
			} else {
				keep = append(keep, at)
			}
		}
		pending = keep
		// Age, retire at design lifetime, fail early at 1/MTTF.
		alive := fleet[:0]
		for _, age := range fleet {
			age += dt
			if age >= float64(p.DesignLifetime) {
				continue
			}
			if p.EarlyFailureMTTF > 0 && rng.Float64() < dt/float64(p.EarlyFailureMTTF) {
				continue
			}
			alive = append(alive, age)
		}
		fleet = alive
		// Order replacements, counting only satellites still flying
		// when an ordered unit arrives.
		surviving := 0
		for _, age := range fleet {
			if age+float64(p.ReplacementLeadTime) < float64(p.DesignLifetime) {
				surviving++
			}
		}
		for i := 0; i < size-surviving-len(pending); i++ {
			pending = append(pending, t+float64(p.ReplacementLeadTime))
			a.built++
		}
		// Integrate head-count and degradation-adjusted capacity.
		capSum := 0.0
		for _, age := range fleet {
			capSum += capFactor * math.Pow(aging, age)
		}
		y := w / 52
		if y >= years {
			y = years - 1
		}
		a.steps++
		a.yearSteps[y]++
		a.opSum += float64(len(fleet))
		a.yearOp[y] += float64(len(fleet))
		a.capSum += capSum
		a.yearCap[y] += capSum
		if len(fleet) >= p.Target {
			a.availWks++
			a.yearAvail[y]++
		}
		if capSum >= target {
			a.capWks++
		}
	}
	return a
}
