// Package degrade is the environment-coupled degradation engine: it
// compiles an orbit profile (eclipse phases from package orbit,
// steady-state panel temperatures from package thermal, the eclipse
// power budget the solar sizing assumes) together with a COTS hardware
// calibration (temperature→service-rate throttle curve, eclipse power
// fraction, temperature-modulated SEFI intensity) into a
// piecewise-constant modulation Schedule that a discrete-event
// simulation replays allocation-free.
//
// The calibration shape follows the measured COTS-in-orbit behavior
// reported by Xing et al. ("Deciphering the Enigma of Satellite
// Computing with COTS Devices", PAPERS.md): commercial hardware in
// orbit does not fail cleanly — it throttles under thermal stress,
// loses capacity on the eclipse power budget, and sees elevated
// transient-fault rates when hot. The IntegratedPanel calibration is
// the milder envelope of a Gaalema-style integrated solar-radiator
// panel with more rejection area per watt.
//
// Determinism contract: Build is a pure function of (Profile, horizon)
// and draws no randomness, so a Schedule can be shared read-only
// between shard cells exactly like a compiled fault schedule; the
// per-phase fault-intensity multipliers export as a
// faults.RateEnvelope, keeping the modulated SEFI draws a pure
// function of (Scenario, Profile, seed). At Severity 0 every
// multiplier is exactly 1 (the scaling is 1 − Sev·(1−x), not a
// product), so a zero-severity schedule is detected by Identity() and
// the caller can drop to the nil fast path, byte-identical to a run
// with no degradation at all.
package degrade

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"sudc/internal/faults"
	"sudc/internal/orbit"
	"sudc/internal/thermal"
	"sudc/internal/units"
)

// ThrottlePoint is one knot of the throttle curve: at cold-plate
// temperature TempC (°C) the hardware serves at RateMult of its rated
// throughput. Points between knots interpolate linearly; temperatures
// outside the knot range clamp to the nearest knot.
type ThrottlePoint struct {
	TempC    float64
	RateMult float64
}

// Calibration is a COTS hardware tier's measured degradation envelope.
type Calibration struct {
	// Name labels the tier in reports and CLI flags.
	Name string
	// Throttle is the temperature→service-rate curve, knots ascending
	// in temperature, multipliers in (0, 1].
	Throttle []ThrottlePoint
	// EclipsePowerFrac is the fraction of the worker complement the
	// eclipse power budget sustains (battery + PMAD limits), in (0, 1].
	EclipsePowerFrac float64
	// SEFITempCoeffPerC is the fractional SEFI-rate increase per °C
	// above SEFIRefTempC (hot silicon upsets more often).
	SEFITempCoeffPerC float64
	// SEFIRefTempC is the temperature at which the scenario's base SEFI
	// rate was measured.
	SEFIRefTempC float64
}

// XingCOTS is the calibration anchored on the Xing et al. in-orbit COTS
// measurements: full rate through the qualification envelope (≤45 °C),
// progressive throttling to 40% at 85 °C, half the worker complement on
// the eclipse budget, and a 2%/°C SEFI-rate rise above 25 °C.
var XingCOTS = Calibration{
	Name: "xing-cots",
	Throttle: []ThrottlePoint{
		{TempC: 25, RateMult: 1.0},
		{TempC: 45, RateMult: 1.0},
		{TempC: 60, RateMult: 0.85},
		{TempC: 75, RateMult: 0.60},
		{TempC: 85, RateMult: 0.40},
	},
	EclipsePowerFrac:  0.50,
	SEFITempCoeffPerC: 0.02,
	SEFIRefTempC:      25,
}

// IntegratedPanel is the milder envelope of an integrated
// solar-compute-radiator panel (Gaalema et al., PAPERS.md): the larger
// rejection area keeps the plate cooler, so throttling starts later and
// the eclipse budget sustains more of the complement.
var IntegratedPanel = Calibration{
	Name: "integrated-panel",
	Throttle: []ThrottlePoint{
		{TempC: 25, RateMult: 1.0},
		{TempC: 55, RateMult: 1.0},
		{TempC: 70, RateMult: 0.90},
		{TempC: 85, RateMult: 0.75},
	},
	EclipsePowerFrac:  0.70,
	SEFITempCoeffPerC: 0.015,
	SEFIRefTempC:      25,
}

// Calibrations lists the built-in tiers by name for CLI lookup.
func Calibrations() []Calibration { return []Calibration{XingCOTS, IntegratedPanel} }

// CalibrationByName resolves a built-in calibration.
func CalibrationByName(name string) (Calibration, error) {
	for _, c := range Calibrations() {
		if c.Name == name {
			return c, nil
		}
	}
	return Calibration{}, fmt.Errorf("degrade: unknown calibration %q", name)
}

// Validate reports calibration errors.
func (c Calibration) Validate() error {
	if len(c.Throttle) == 0 {
		return errors.New("degrade: calibration needs at least one throttle point")
	}
	for i, p := range c.Throttle {
		if p.RateMult <= 0 || p.RateMult > 1 || math.IsNaN(p.RateMult) {
			return fmt.Errorf("degrade: throttle multiplier %v at %v °C out of (0,1]", p.RateMult, p.TempC)
		}
		if i > 0 && p.TempC <= c.Throttle[i-1].TempC {
			return errors.New("degrade: throttle knots must ascend in temperature")
		}
	}
	if c.EclipsePowerFrac <= 0 || c.EclipsePowerFrac > 1 {
		return fmt.Errorf("degrade: eclipse power fraction %v out of (0,1]", c.EclipsePowerFrac)
	}
	if c.SEFITempCoeffPerC < 0 {
		return errors.New("degrade: negative SEFI temperature coefficient")
	}
	return nil
}

// RateMultAt interpolates the throttle curve at the given temperature.
func (c Calibration) RateMultAt(tempC float64) float64 {
	ts := c.Throttle
	if tempC <= ts[0].TempC {
		return ts[0].RateMult
	}
	last := ts[len(ts)-1]
	if tempC >= last.TempC {
		return last.RateMult
	}
	for i := 1; i < len(ts); i++ {
		if tempC <= ts[i].TempC {
			frac := (tempC - ts[i-1].TempC) / (ts[i].TempC - ts[i-1].TempC)
			return ts[i-1].RateMult + frac*(ts[i].RateMult-ts[i-1].RateMult)
		}
	}
	return last.RateMult
}

// SEFIMultAt returns the SEFI-rate multiplier at the given temperature:
// 1 + coeff·max(0, T − Tref).
func (c Calibration) SEFIMultAt(tempC float64) float64 {
	if tempC <= c.SEFIRefTempC {
		return 1
	}
	return 1 + c.SEFITempCoeffPerC*(tempC-c.SEFIRefTempC)
}

// Profile couples a calibration to one orbit and thermal operating
// point. Severity scales every degradation linearly between "off"
// (0: all multipliers exactly 1) and the full calibrated envelope (1).
type Profile struct {
	// Orbit sets the period and, unless overridden, the eclipse
	// fraction of the modulation cycle.
	Orbit orbit.Orbit
	// Cal is the hardware tier's degradation envelope.
	Cal Calibration
	// Severity in [0, 1] scales throttle depth, eclipse power loss, and
	// SEFI elevation: mult = 1 − Severity·(1 − calibrated).
	Severity float64
	// EclipseFraction overrides the orbit-derived eclipse fraction when
	// non-negative (must stay < 1); negative derives it from Orbit.
	EclipseFraction float64
	// SunlitTempC and EclipseTempC are the steady-state cold-plate
	// temperatures of the two orbit phases, °C. PanelTemps derives them
	// from a radiator design; the COTSProfile defaults are the Xing
	// hot/cold cases.
	SunlitTempC  float64
	EclipseTempC float64
}

// COTSProfile is the reference degraded-COTS operating point: the
// default EO orbit, the XingCOTS calibration, a 70 °C sunlit hot case
// and 20 °C eclipse cold case, at the given severity.
func COTSProfile(severity float64) Profile {
	return Profile{
		Orbit:           orbit.DefaultEO,
		Cal:             XingCOTS,
		Severity:        severity,
		EclipseFraction: -1,
		SunlitTempC:     70,
		EclipseTempC:    20,
	}
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	if err := p.Orbit.Validate(); err != nil {
		return err
	}
	if err := p.Cal.Validate(); err != nil {
		return err
	}
	if p.Severity < 0 || p.Severity > 1 || math.IsNaN(p.Severity) {
		return fmt.Errorf("degrade: severity %v out of [0,1]", p.Severity)
	}
	if p.EclipseFraction >= 1 {
		return fmt.Errorf("degrade: eclipse fraction %v must stay below 1", p.EclipseFraction)
	}
	if math.IsNaN(p.SunlitTempC) || math.IsNaN(p.EclipseTempC) {
		return errors.New("degrade: temperature is NaN")
	}
	return nil
}

// eclipseFraction resolves the override-or-orbit eclipse fraction.
func (p Profile) eclipseFraction() float64 {
	if p.EclipseFraction >= 0 {
		return p.EclipseFraction
	}
	return p.Orbit.EclipseFraction()
}

// Phase is one piecewise-constant segment of the modulation schedule.
type Phase struct {
	// Start is the segment start in seconds from run start.
	Start float64
	// RateMult scales every worker's service rate in (0, 1].
	RateMult float64
	// PowerFrac is the fraction of each SµDC's worker complement the
	// power budget sustains, in (0, 1].
	PowerFrac float64
	// FaultMult scales the SEFI intensity (≥ 1 for hot phases).
	FaultMult float64
	// Eclipse marks the segment as an eclipse (battery-powered) phase.
	Eclipse bool
	// TempC is the segment's cold-plate temperature, for reporting.
	TempC float64
}

// Schedule is a compiled modulation timeline: phases sorted by Start
// (Phases[0].Start == 0) covering [0, Horizon). It is immutable after
// Build and safe to share across shard cells.
type Schedule struct {
	Phases  []Phase
	Horizon float64 // seconds
}

// maxOrbits bounds the phase count of a DES schedule; multi-decade
// horizons belong to the compressed-horizon survivability run.
const maxOrbits = 1 << 20

// Build compiles the profile over the horizon: each orbit contributes a
// sunlit phase (thermal hot case → throttling, elevated SEFI) followed
// by an eclipse phase (power-capped workers, cold case). Build draws no
// randomness — the schedule is a pure function of its inputs.
func Build(p Profile, horizon time.Duration) (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, errors.New("degrade: horizon must be positive")
	}
	h := horizon.Seconds()
	period := p.Orbit.Period()
	if h/period > maxOrbits {
		return nil, errors.New("degrade: horizon spans too many orbits for a DES schedule; use the compressed-horizon survivability run")
	}
	fe := p.eclipseFraction()
	sunlit := p.phase(false)
	eclipse := p.phase(true)
	sched := &Schedule{Horizon: h}
	for start := 0.0; start < h; start += period {
		sp := sunlit
		sp.Start = start
		sched.Phases = append(sched.Phases, sp)
		if fe > 0 {
			ep := eclipse
			ep.Start = start + (1-fe)*period
			if ep.Start < h {
				sched.Phases = append(sched.Phases, ep)
			}
		}
	}
	return sched, nil
}

// phase evaluates the profile's steady state for one orbit half. The
// severity scaling is affine in each multiplier so Severity 0 yields
// exactly 1 (bit-for-bit, no rounding residue).
func (p Profile) phase(eclipse bool) Phase {
	temp := p.SunlitTempC
	if eclipse {
		temp = p.EclipseTempC
	}
	pf := 1.0
	if eclipse {
		pf = 1 - p.Severity*(1-p.Cal.EclipsePowerFrac)
	}
	return Phase{
		RateMult:  1 - p.Severity*(1-p.Cal.RateMultAt(temp)),
		PowerFrac: pf,
		FaultMult: 1 + p.Severity*(p.Cal.SEFIMultAt(temp)-1),
		Eclipse:   eclipse,
		TempC:     temp,
	}
}

// Identity reports whether the schedule modulates nothing — every
// multiplier exactly 1. Callers drop identity schedules to nil so the
// degradation-disabled hot path is byte-identical to no schedule at
// all.
func (s *Schedule) Identity() bool {
	if s == nil {
		return true
	}
	for i := range s.Phases {
		ph := &s.Phases[i]
		if ph.RateMult != 1 || ph.PowerFrac != 1 || ph.FaultMult != 1 {
			return false
		}
	}
	return true
}

// At returns the index of the phase active at time t (seconds).
func (s *Schedule) At(t float64) int {
	i := sort.Search(len(s.Phases), func(i int) bool { return s.Phases[i].Start > t }) - 1
	if i < 0 {
		return 0
	}
	return i
}

// End returns phase i's end time: the next phase's start, or the
// horizon for the last phase.
func (s *Schedule) End(i int) float64 {
	if i+1 < len(s.Phases) {
		return s.Phases[i+1].Start
	}
	return s.Horizon
}

// CapacityFactor is the schedule's time-averaged capacity multiplier —
// the mean of RateMult·PowerFrac over the horizon. It is the scalar a
// compressed-horizon fleet replay applies per satellite.
func (s *Schedule) CapacityFactor() float64 {
	if s == nil || len(s.Phases) == 0 || s.Horizon <= 0 {
		return 1
	}
	sum := 0.0
	for i := range s.Phases {
		ph := &s.Phases[i]
		end := math.Min(s.End(i), s.Horizon)
		if end > ph.Start {
			sum += (end - ph.Start) * ph.RateMult * ph.PowerFrac
		}
	}
	return sum / s.Horizon
}

// FaultEnvelope exports the schedule's SEFI-intensity timeline as a
// faults.RateEnvelope for BuildModulated. Returns nil when no phase
// modulates the fault rate, so the unmodulated byte-identical fault
// build path is taken.
func (s *Schedule) FaultEnvelope() *faults.RateEnvelope {
	if s == nil {
		return nil
	}
	flat := true
	for i := range s.Phases {
		if s.Phases[i].FaultMult != 1 {
			flat = false
			break
		}
	}
	if flat {
		return nil
	}
	env := &faults.RateEnvelope{
		Starts: make([]float64, len(s.Phases)),
		Mults:  make([]float64, len(s.Phases)),
	}
	for i := range s.Phases {
		env.Starts[i] = s.Phases[i].Start
		env.Mults[i] = s.Phases[i].FaultMult
	}
	return env
}

// PanelTemps derives the sunlit and eclipse steady-state cold-plate
// temperatures (°C) from a radiator design: in sunlight the panel
// rejects the full compute load plus absorbed solar flux; in eclipse
// only the (power-capped) compute load. This is the bridge from the
// thermal sizing of package thermal to the Profile's operating points.
func PanelTemps(r thermal.Radiator, sunlitLoad, eclipseLoad units.Power, area units.Area) (sunC, eclC float64, err error) {
	sun, err := thermal.EquilibriumTemp(r, sunlitLoad, area)
	if err != nil {
		return 0, 0, err
	}
	ecl, err := thermal.EquilibriumTemp(r, eclipseLoad, area)
	if err != nil {
		return 0, 0, err
	}
	return float64(sun) - 273.15, float64(ecl) - 273.15, nil
}
