package degrade

import (
	"math"
	"reflect"
	"testing"
	"time"

	"sudc/internal/orbit"
	"sudc/internal/par"
	"sudc/internal/thermal"
	"sudc/internal/units"
)

func TestCalibrationsValid(t *testing.T) {
	for _, c := range Calibrations() {
		if err := c.Validate(); err != nil {
			t.Errorf("built-in calibration %q invalid: %v", c.Name, err)
		}
		if _, err := CalibrationByName(c.Name); err != nil {
			t.Errorf("CalibrationByName(%q): %v", c.Name, err)
		}
	}
	if _, err := CalibrationByName("no-such-tier"); err == nil {
		t.Error("unknown calibration must error")
	}
}

func TestRateMultInterpolation(t *testing.T) {
	c := XingCOTS
	tests := []struct {
		tempC, want float64
	}{
		{-40, 1.0},    // clamp below first knot
		{25, 1.0},     // first knot
		{45, 1.0},     // qualification envelope edge
		{52.5, 0.925}, // midpoint 45→60
		{60, 0.85},
		{85, 0.40},
		{120, 0.40}, // clamp above last knot
	}
	for _, tt := range tests {
		if got := c.RateMultAt(tt.tempC); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("RateMultAt(%v) = %v, want %v", tt.tempC, got, tt.want)
		}
	}
	if got := c.SEFIMultAt(25); got != 1 {
		t.Errorf("SEFIMultAt at reference = %v, want 1", got)
	}
	if got, want := c.SEFIMultAt(75), 1+0.02*50; math.Abs(got-want) > 1e-12 {
		t.Errorf("SEFIMultAt(75) = %v, want %v", got, want)
	}
}

func TestProfileValidate(t *testing.T) {
	if err := COTSProfile(0.5).Validate(); err != nil {
		t.Fatalf("reference profile invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"severity below 0", func(p *Profile) { p.Severity = -0.1 }},
		{"severity above 1", func(p *Profile) { p.Severity = 1.1 }},
		{"eclipse fraction 1", func(p *Profile) { p.EclipseFraction = 1 }},
		{"NaN temperature", func(p *Profile) { p.SunlitTempC = math.NaN() }},
		{"bad orbit", func(p *Profile) { p.Orbit = orbit.Orbit{AltitudeM: 1} }},
		{"empty calibration", func(p *Profile) { p.Cal = Calibration{} }},
	}
	for _, tt := range tests {
		p := COTSProfile(0.5)
		tt.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestBuildPhaseStructure(t *testing.T) {
	p := COTSProfile(1)
	horizon := 2 * time.Hour
	s, err := Build(p, horizon)
	if err != nil {
		t.Fatal(err)
	}
	period := p.Orbit.Period()
	orbits := int(math.Ceil(horizon.Seconds() / period))
	if len(s.Phases) < 2*orbits-1 || len(s.Phases) > 2*orbits {
		t.Fatalf("got %d phases over %d orbits, want ~%d", len(s.Phases), orbits, 2*orbits)
	}
	if s.Phases[0].Start != 0 {
		t.Errorf("first phase starts at %v, want 0", s.Phases[0].Start)
	}
	fe := p.Orbit.EclipseFraction()
	for i := range s.Phases {
		ph := &s.Phases[i]
		if i > 0 && ph.Start <= s.Phases[i-1].Start {
			t.Fatalf("phase %d start %v not after predecessor", i, ph.Start)
		}
		if ph.Eclipse != (i%2 == 1) {
			t.Errorf("phase %d eclipse=%v, want alternating starting sunlit", i, ph.Eclipse)
		}
		if ph.Eclipse {
			wantLen := fe * period
			gotLen := s.End(i) - ph.Start
			if i+1 < len(s.Phases) && math.Abs(gotLen-wantLen) > 1e-6 {
				t.Errorf("eclipse phase %d length %v, want %v", i, gotLen, wantLen)
			}
			if ph.PowerFrac != XingCOTS.EclipsePowerFrac {
				t.Errorf("eclipse PowerFrac %v, want %v at severity 1", ph.PowerFrac, XingCOTS.EclipsePowerFrac)
			}
		} else if ph.PowerFrac != 1 {
			t.Errorf("sunlit phase %d PowerFrac %v, want 1", i, ph.PowerFrac)
		}
	}
	// Deterministic: same inputs, same schedule.
	again, err := Build(p, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Error("Build must be deterministic")
	}
}

func TestZeroSeverityIsExactIdentity(t *testing.T) {
	s, err := Build(COTSProfile(0), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Identity() {
		t.Fatal("severity-0 schedule must be the exact identity")
	}
	for i := range s.Phases {
		ph := &s.Phases[i]
		if ph.RateMult != 1 || ph.PowerFrac != 1 || ph.FaultMult != 1 {
			t.Fatalf("phase %d multipliers (%v, %v, %v) not exactly 1", i, ph.RateMult, ph.PowerFrac, ph.FaultMult)
		}
	}
	if s.FaultEnvelope() != nil {
		t.Error("identity schedule must export a nil fault envelope")
	}
	var nilSched *Schedule
	if !nilSched.Identity() {
		t.Error("nil schedule must be identity")
	}
}

func TestSeverityScalesMonotonically(t *testing.T) {
	prevCap := math.Inf(1)
	for _, sev := range []float64{0, 0.25, 0.5, 0.75, 1} {
		s, err := Build(COTSProfile(sev), 2*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		cf := s.CapacityFactor()
		if cf > prevCap+1e-12 {
			t.Errorf("capacity factor rose from %v to %v at severity %v", prevCap, cf, sev)
		}
		prevCap = cf
	}
	full, _ := Build(COTSProfile(1), 2*time.Hour)
	if cf := full.CapacityFactor(); cf >= 1 || cf <= 0 {
		t.Errorf("full-severity capacity factor %v out of (0,1)", cf)
	}
}

func TestAtAndEnd(t *testing.T) {
	s, err := Build(COTSProfile(1), 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(0); got != 0 {
		t.Errorf("At(0) = %d, want 0", got)
	}
	for i := range s.Phases {
		mid := (s.Phases[i].Start + s.End(i)) / 2
		if got := s.At(mid); got != i {
			t.Errorf("At(%v) = %d, want %d", mid, got, i)
		}
		if i > 0 {
			if got := s.At(s.Phases[i].Start); got != i {
				t.Errorf("At(start of %d) = %d", i, got)
			}
		}
	}
	if got := s.End(len(s.Phases) - 1); got != s.Horizon {
		t.Errorf("last End = %v, want horizon %v", got, s.Horizon)
	}
}

func TestFaultEnvelopeExport(t *testing.T) {
	s, err := Build(COTSProfile(1), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env := s.FaultEnvelope()
	if env == nil {
		t.Fatal("hot full-severity schedule must export an envelope")
	}
	if err := env.Validate(); err != nil {
		t.Fatalf("exported envelope invalid: %v", err)
	}
	if len(env.Starts) != len(s.Phases) {
		t.Errorf("envelope has %d segments, schedule %d phases", len(env.Starts), len(s.Phases))
	}
	// Sunlit phases are hot → FaultMult > 1; the 20 °C eclipse is below
	// the 25 °C reference → exactly 1.
	for i := range s.Phases {
		if s.Phases[i].Eclipse && env.Mults[i] != 1 {
			t.Errorf("eclipse phase %d fault mult %v, want 1", i, env.Mults[i])
		}
		if !s.Phases[i].Eclipse && env.Mults[i] <= 1 {
			t.Errorf("sunlit phase %d fault mult %v, want > 1", i, env.Mults[i])
		}
	}
}

func TestEclipseFractionOverride(t *testing.T) {
	p := COTSProfile(1)
	p.EclipseFraction = 0
	s, err := Build(p, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Phases {
		if s.Phases[i].Eclipse {
			t.Fatal("zero eclipse fraction must produce no eclipse phases")
		}
	}
	p.EclipseFraction = 0.5
	s, err = Build(p, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	period := p.Orbit.Period()
	if len(s.Phases) < 2 || math.Abs((s.End(1)-s.Phases[1].Start)-0.5*period) > 1e-6 {
		t.Error("eclipse override 0.5 must produce half-period eclipses")
	}
}

func TestPanelTemps(t *testing.T) {
	r := thermal.DefaultRadiator
	// Size the panel for 4 kW at the design temperature, then check the
	// equilibrium inversion round-trips.
	area, err := r.AreaFor(4000)
	if err != nil {
		t.Fatal(err)
	}
	sunC, eclC, err := PanelTemps(r, 5000, 2000, area)
	if err != nil {
		t.Fatal(err)
	}
	if sunC <= eclC {
		t.Errorf("sunlit %v °C must exceed eclipse %v °C", sunC, eclC)
	}
	// At exactly the design load the equilibrium is the design temp.
	eq, err := thermal.EquilibriumTemp(r, 4000, area)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(eq-r.Temperature)) > 0.01 {
		t.Errorf("equilibrium at design load %v K, want %v K", eq, r.Temperature)
	}
	if _, err := thermal.EquilibriumTemp(r, 4000, 0); err == nil {
		t.Error("zero area must error")
	}
	if _, err := thermal.EquilibriumTemp(r, -1, units.Area(1)); err == nil {
		t.Error("negative load must error")
	}
}

func TestSurviveDeterministicAndMonotone(t *testing.T) {
	cfg := DefaultSurvivalConfig(0)
	cfg.Trials = 40
	base, err := Survive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Survive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Error("Survive must be deterministic")
	}
	if base.CapacityFactor != 1 {
		t.Errorf("severity-0 capacity factor %v, want 1", base.CapacityFactor)
	}
	if len(base.Years) != 15 {
		t.Errorf("got %d year points, want 15", len(base.Years))
	}
	// Cross-check against the lifecycle engine: head-count availability
	// and units built use identical fleet semantics, so at severity 0
	// the numbers must be close (different RNG streams, same process).
	lc, err := cfg.Policy.Simulate(cfg.Trials, 99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.Availability-lc.Availability) > 0.03 {
		t.Errorf("availability %v vs lifecycle %v beyond 3%%", base.Availability, lc.Availability)
	}
	if math.Abs(base.UnitsBuilt-lc.UnitsBuilt) > 0.05*lc.UnitsBuilt {
		t.Errorf("units built %v vs lifecycle %v beyond 5%%", base.UnitsBuilt, lc.UnitsBuilt)
	}

	// Severity must not increase capacity availability, and capacity
	// can never beat head count (aging and throttling only subtract).
	prev := math.Inf(1)
	for _, sev := range []float64{0, 0.5, 1} {
		c := DefaultSurvivalConfig(sev)
		c.Trials = 40
		r, err := Survive(c)
		if err != nil {
			t.Fatal(err)
		}
		if r.CapacityAvailability > prev+1e-9 {
			t.Errorf("capacity availability rose to %v at severity %v", r.CapacityAvailability, sev)
		}
		prev = r.CapacityAvailability
		if r.CapacityAvailability > r.Availability+1e-9 {
			t.Errorf("capacity availability %v above head-count %v", r.CapacityAvailability, r.Availability)
		}
	}
	// With aging disabled, severity 0 leaves nothing to subtract: the
	// two availability metrics coincide exactly.
	noAge := DefaultSurvivalConfig(0)
	noAge.Trials = 40
	noAge.Solar.Cell.AnnualDegradation = 0
	r, err := Survive(noAge)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.CapacityAvailability-r.Availability) > 1e-9 {
		t.Errorf("no-aging severity-0 capacity availability %v must equal head-count %v",
			r.CapacityAvailability, r.Availability)
	}
}

func TestSurviveTrialWeekBuckets(t *testing.T) {
	// Regression: the trial loop used to advance program time by repeated
	// float addition (t += 1/52), so accumulated rounding error made
	// int(t) misbucket year-boundary weeks — year 0 absorbed week 52 —
	// and the loop could run a step long or short over a multi-year
	// horizon. With the integer week index every year must hold exactly
	// 52 weekly steps.
	cfg := DefaultSurvivalConfig(0)
	years := int(math.Ceil(float64(cfg.Policy.Horizon)))
	a := cfg.trial(par.ForkRand(cfg.Seed, 0), 1, years)
	if got, want := a.steps, float64(years)*52; got != want {
		t.Errorf("trial ran %v weekly steps over %d years, want %v", got, years, want)
	}
	for y := 0; y < years; y++ {
		if a.yearSteps[y] != 52 {
			t.Errorf("year %d accumulated %v weekly steps, want 52", y, a.yearSteps[y])
		}
	}
}

func TestSurviveAgingOnly(t *testing.T) {
	// With no early failures and lead-time 0 the fleet is always full;
	// capacity then reflects pure array aging and the capacity factor.
	cfg := DefaultSurvivalConfig(1)
	cfg.Trials = 4
	cfg.Policy.EarlyFailureMTTF = 0
	cfg.Policy.ReplacementLeadTime = 0
	r, err := Survive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Synchronized design-lifetime retirements leave one-week gaps even
	// with zero lead time (same semantics as lifecycle.Simulate), so the
	// availability is near — not exactly — 1.
	if r.Availability < 0.98 {
		t.Errorf("no-failure program availability %v, want ~1", r.Availability)
	}
	size := float64(cfg.Policy.Target + cfg.Policy.Spares)
	maxCap := r.CapacityFactor * size
	if r.MeanCapacity >= maxCap || r.MeanCapacity <= 0 {
		t.Errorf("mean capacity %v out of (0, %v)", r.MeanCapacity, maxCap)
	}
}

func TestBuildRejectsHugeDESHorizon(t *testing.T) {
	if _, err := Build(COTSProfile(1), 250*365*24*time.Hour); err == nil {
		t.Error("multi-century DES horizon must error toward the survivability run")
	}
}
