package degrade

import (
	"math"
	"testing"
	"time"
)

// FuzzBuildSchedule throws arbitrary profiles and horizons at Build and
// checks the schedule invariants every consumer relies on: the phase
// list covers [0, Horizon) with strictly ascending starts, every
// multiplier stays in its documented range, severity 0 compiles to the
// identity, and the capacity factor is a true time average.
func FuzzBuildSchedule(f *testing.F) {
	f.Add(0.5, 0.38, 70.0, 20.0, 7200.0)
	f.Add(0.0, -1.0, 70.0, 20.0, 3600.0)
	f.Add(1.0, 0.0, 120.0, -40.0, 86400.0)
	f.Add(0.25, 0.99, 25.0, 25.0, 60.0)
	f.Fuzz(func(t *testing.T, sev, ef, sunC, eclC, horizonS float64) {
		if math.IsNaN(horizonS) || horizonS <= 0 || horizonS > 1e9 {
			return
		}
		p := COTSProfile(sev)
		p.EclipseFraction = ef
		p.SunlitTempC = sunC
		p.EclipseTempC = eclC
		s, err := Build(p, time.Duration(horizonS*float64(time.Second)))
		if err != nil {
			return // invalid profile or over-long horizon: rejection is fine
		}
		if len(s.Phases) == 0 || s.Phases[0].Start != 0 {
			t.Fatalf("schedule must start a phase at 0: %+v", s.Phases)
		}
		for i := range s.Phases {
			ph := &s.Phases[i]
			if i > 0 && ph.Start <= s.Phases[i-1].Start {
				t.Fatalf("phase starts not ascending at %d: %v after %v", i, ph.Start, s.Phases[i-1].Start)
			}
			if ph.Start >= s.Horizon {
				t.Fatalf("phase %d starts at %v beyond horizon %v", i, ph.Start, s.Horizon)
			}
			if !(ph.RateMult > 0 && ph.RateMult <= 1) {
				t.Fatalf("phase %d rate multiplier %v out of (0,1]", i, ph.RateMult)
			}
			if !(ph.PowerFrac > 0 && ph.PowerFrac <= 1) {
				t.Fatalf("phase %d power fraction %v out of (0,1]", i, ph.PowerFrac)
			}
			if ph.FaultMult < 1 || math.IsNaN(ph.FaultMult) {
				t.Fatalf("phase %d fault multiplier %v below 1", i, ph.FaultMult)
			}
			if end := s.End(i); end <= ph.Start {
				t.Fatalf("phase %d empty: start %v end %v", i, ph.Start, end)
			}
		}
		if sev == 0 && !s.Identity() {
			t.Fatal("severity 0 must compile to the identity schedule")
		}
		if cf := s.CapacityFactor(); !(cf > 0 && cf <= 1) {
			t.Fatalf("capacity factor %v out of (0,1]", cf)
		}
		for _, q := range []float64{0, s.Horizon / 3, s.Horizon - 1e-9} {
			i := s.At(q)
			if s.Phases[i].Start > q {
				t.Fatalf("At(%v) = %d starting later at %v", q, i, s.Phases[i].Start)
			}
			if i+1 < len(s.Phases) && s.Phases[i+1].Start <= q {
				t.Fatalf("At(%v) = %d but phase %d already started", q, i, i+1)
			}
		}
	})
}
