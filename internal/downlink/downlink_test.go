package downlink

import (
	"testing"

	"sudc/internal/orbit"
	"sudc/internal/units"
	"sudc/internal/workload"
)

func floodApp(t *testing.T) workload.App {
	t.Helper()
	a, err := workload.ByName("Flood Detection")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestValidate(t *testing.T) {
	if err := DefaultNetwork.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Network{
		{Station: DefaultStation, Count: 0},
		{Station: GroundStation{Rate: 0, MinElevationDeg: 10}, Count: 1},
		{Station: GroundStation{Rate: 1, MinElevationDeg: 95}, Count: 1},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestContactFractionSmall(t *testing.T) {
	// A single station sees a 550 km satellite only a few percent of the
	// time — the geometric root of the downlink deficit.
	cf, err := ContactFraction(orbit.DefaultEO, DefaultStation)
	if err != nil {
		t.Fatal(err)
	}
	if cf < 0.01 || cf > 0.08 {
		t.Errorf("contact fraction = %.4f, want a few percent", cf)
	}
	// Higher orbits see stations longer.
	cfHigh, _ := ContactFraction(orbit.LEO(1200e3), DefaultStation)
	if cfHigh <= cf {
		t.Error("contact fraction must grow with altitude")
	}
	// A stricter mask angle shrinks it.
	strict := DefaultStation
	strict.MinElevationDeg = 30
	cfStrict, _ := ContactFraction(orbit.DefaultEO, strict)
	if cfStrict >= cf {
		t.Error("higher mask angle must shrink contact")
	}
}

func TestContactFractionErrors(t *testing.T) {
	if _, err := ContactFraction(orbit.LEO(10e3), DefaultStation); err == nil {
		t.Error("invalid orbit must error")
	}
	// Geometrically, any mask below 90° retains a sliver of visibility;
	// a nearly-vertical mask must still return a positive fraction.
	grazing := DefaultStation
	grazing.MinElevationDeg = 89.9
	cf, err := ContactFraction(orbit.DefaultEO, grazing)
	if err != nil || cf <= 0 {
		t.Errorf("grazing mask: cf = %v, err = %v; want tiny positive", cf, err)
	}
}

func TestDownlinkDeficitExists(t *testing.T) {
	// One EO satellite at 6 frames/min of 45 Mpix imagery offers
	// 72 Mbit/s average; three Ka stations deliver far less on average —
	// the paper's motivating deficit.
	b, err := Plan(orbit.DefaultEO, DefaultNetwork, floodApp(t), 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b.OfferedRate <= 0 {
		t.Fatal("no offered data")
	}
	if b.DeficitRatio() <= 0.5 {
		t.Errorf("deficit ratio = %.2f, expected a severe constellation-level deficit", b.DeficitRatio())
	}
	if b.Deficit != b.OfferedRate-b.DeliverableRate {
		t.Error("deficit must be offered − deliverable when positive")
	}
	// A single satellite on the same network is nearly viable — the
	// deficit is a constellation-scale phenomenon.
	solo, err := Plan(orbit.DefaultEO, DefaultNetwork, floodApp(t), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if solo.DeficitRatio() >= 0.2 {
		t.Errorf("one satellite should nearly fit the network, deficit ratio %.2f", solo.DeficitRatio())
	}
}

func TestLatencyMeasuredInFractionsOfAnOrbit(t *testing.T) {
	// The paper: bent-pipe latencies are "measured in hours, due in large
	// part to the time it takes an LEO satellite to orbit above a
	// downlink station". With 3 stations the mean wait is ~¼–1 orbit;
	// with 1 station it approaches an hour and real processing queues push
	// it further.
	b3, err := Plan(orbit.DefaultEO, DefaultNetwork, floodApp(t), 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	one := DefaultNetwork
	one.Count = 1
	b1, err := Plan(orbit.DefaultEO, one, floodApp(t), 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b1.MeanLatency <= b3.MeanLatency {
		t.Error("fewer stations must mean longer latency")
	}
	if b1.MeanLatency < 25*60 {
		t.Errorf("single-station latency = %.0f s, want ≥25 min", b1.MeanLatency)
	}
	if b3.MeanGapToPass <= 0 {
		t.Error("gap must be positive")
	}
}

func TestInSpaceProcessingBeatsBentPipe(t *testing.T) {
	// The headline motivation: an ISL to a SµDC carries only insights, so
	// frame-to-result latency is set by batching (minutes, see netsim),
	// while the bent-pipe floor is the pass wait alone.
	b, err := Plan(orbit.DefaultEO, DefaultNetwork, floodApp(t), 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	const sudcLatencySeconds = 5 * 60 // measured by the netsim tests
	if b.MeanLatency < 2*sudcLatencySeconds {
		t.Errorf("bent-pipe latency %.0f s should dwarf in-space %.0f s",
			b.MeanLatency, float64(sudcLatencySeconds))
	}
}

func TestMoreStationsReduceDeficit(t *testing.T) {
	app := floodApp(t)
	prev := units.DataRate(0)
	for count := 1; count <= 8; count *= 2 {
		n := DefaultNetwork
		n.Count = count
		b, err := Plan(orbit.DefaultEO, n, app, 6, 64)
		if err != nil {
			t.Fatal(err)
		}
		if b.DeliverableRate < prev {
			t.Errorf("%d stations deliver less than fewer stations", count)
		}
		prev = b.DeliverableRate
	}
}

func TestPlanErrors(t *testing.T) {
	app := floodApp(t)
	if _, err := Plan(orbit.DefaultEO, Network{}, app, 6, 64); err == nil {
		t.Error("invalid network must error")
	}
	if _, err := Plan(orbit.DefaultEO, DefaultNetwork, workload.App{}, 6, 64); err == nil {
		t.Error("invalid app must error")
	}
	if _, err := Plan(orbit.DefaultEO, DefaultNetwork, app, 0, 64); err == nil {
		t.Error("zero imaging rate must error")
	}
	if _, err := Plan(orbit.DefaultEO, DefaultNetwork, app, 6, 0); err == nil {
		t.Error("zero satellites must error")
	}
}

func TestDeficitRatioZeroSafe(t *testing.T) {
	if (Budget{}).DeficitRatio() != 0 {
		t.Error("empty budget ratio must be 0")
	}
}
