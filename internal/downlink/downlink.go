// Package downlink models the architecture SµDCs replace: the bent-pipe
// model, in which EO satellites store imagery until they pass over a
// ground station and downlink it raw for terrestrial processing. The
// paper's opening motivation (Fig. 1, [19], [86]) is that this path is
// bandwidth-starved ("downlink deficit") and slow ("current EO image
// processing latencies are measured in hours, due in large part to the
// time it takes an LEO satellite to orbit above a downlink station").
//
// The model is analytic: contact geometry gives the fraction of each
// orbit a station is visible, which bounds the downlinkable volume; the
// gap between passes plus the transmission backlog gives the latency a
// frame sees before it is even on the ground.
package downlink

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/orbit"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// GroundStation describes a receiving site.
type GroundStation struct {
	Name string
	// Rate is the downlink capacity while in contact (X/Ka-band).
	Rate units.DataRate
	// MinElevationDeg is the mask angle below which no contact happens.
	MinElevationDeg float64
}

// DefaultStation is a Ka-band polar station (KSAT-class).
var DefaultStation = GroundStation{
	Name:            "polar X-band",
	Rate:            400 * units.Mbps,
	MinElevationDeg: 10,
}

// Network is a set of (assumed well-separated) ground stations.
type Network struct {
	Station GroundStation
	// Count is the number of stations the satellite can use.
	Count int
}

// DefaultNetwork is a three-station polar network.
var DefaultNetwork = Network{Station: DefaultStation, Count: 3}

// Validate reports configuration errors.
func (n Network) Validate() error {
	if n.Count < 1 {
		return errors.New("downlink: need at least one station")
	}
	if n.Station.Rate <= 0 {
		return errors.New("downlink: station needs positive rate")
	}
	if n.Station.MinElevationDeg < 0 || n.Station.MinElevationDeg >= 90 {
		return fmt.Errorf("downlink: mask angle %v out of [0,90)", n.Station.MinElevationDeg)
	}
	return nil
}

// ContactFraction returns the fraction of time the satellite is in view
// of one station, from spherical geometry: a station sees the satellite
// while it is within the Earth-central half-angle
//
//	λ = arccos(Re·cos(ε)/(Re+h)) − ε
//
// of the station's zenith; for a pass through zenith the visible arc is
// 2λ of the orbit's 360°.
func ContactFraction(o orbit.Orbit, s GroundStation) (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	eps := s.MinElevationDeg * math.Pi / 180
	re := units.EarthRadius
	a := o.SemiMajorAxis()
	lambda := math.Acos(re*math.Cos(eps)/a) - eps
	if lambda <= 0 {
		return 0, errors.New("downlink: no visibility above the mask angle")
	}
	// Average over pass geometries: not every orbit passes through zenith.
	// A polar station under a polar orbit sees roughly one pass per orbit
	// with chord lengths averaging ~2/π of the maximum arc.
	return (2 * lambda / (2 * math.Pi)) * (2 / math.Pi), nil
}

// Budget is the bent-pipe capacity and latency estimate.
type Budget struct {
	// OfferedRate is the satellite's average data production.
	OfferedRate units.DataRate
	// DeliverableRate is the network-limited average downlink throughput.
	DeliverableRate units.DataRate
	// Deficit is offered minus deliverable (≥ 0): data that must be
	// discarded, compressed, or processed on board.
	Deficit units.DataRate
	// MeanGapToPass is the average wait until the next usable pass.
	MeanGapToPass float64 // seconds
	// MeanLatency is the expected frame age at ground arrival: half the
	// inter-pass gap plus the backlog drain time within a pass.
	MeanLatency float64 // seconds
}

// DeficitRatio returns the fraction of produced data that cannot come
// down (the paper's "downlink deficit").
func (b Budget) DeficitRatio() float64 {
	if b.OfferedRate <= 0 {
		return 0
	}
	return float64(b.Deficit) / float64(b.OfferedRate)
}

// Plan evaluates the bent-pipe path for a constellation of satellites
// sharing the ground network — the deficit is a constellation-level
// phenomenon: each station serves one satellite at a time.
func Plan(o orbit.Orbit, n Network, app workload.App, framesPerMinute float64, satellites int) (Budget, error) {
	if err := n.Validate(); err != nil {
		return Budget{}, err
	}
	if err := app.Validate(); err != nil {
		return Budget{}, err
	}
	if framesPerMinute <= 0 {
		return Budget{}, errors.New("downlink: imaging rate must be positive")
	}
	if satellites < 1 {
		return Budget{}, errors.New("downlink: need at least one satellite")
	}
	cf, err := ContactFraction(o, n.Station)
	if err != nil {
		return Budget{}, err
	}
	// Each station serves one satellite at a time, so the network's
	// aggregate duty cycle caps at Count full-time stations regardless of
	// how many satellites are overhead.
	aggregateDuty := math.Min(float64(n.Count), cf*float64(satellites)*float64(n.Count))

	offered := units.DataRate(framesPerMinute / 60 * app.FrameBits() * float64(satellites))
	deliverable := units.DataRate(float64(n.Station.Rate) * aggregateDuty)
	deficit := offered - deliverable
	if deficit < 0 {
		deficit = 0
	}

	// Pass cadence: stations distributed along the ground track give
	// Count usable passes per orbit at best; the mean wait for the next
	// pass is half the inter-pass gap.
	period := o.Period()
	gap := period / float64(n.Count)
	meanWait := gap / 2

	// Within a pass, the backlog accumulated over the gap drains at the
	// network rate; a frame waits on average half the drain time beyond
	// its own wait (capped at the gap — beyond that the backlog never
	// clears and data ages out: the deficit).
	drain := 0.0
	if deliverable > 0 {
		backlogBits := float64(offered) * gap
		drain = math.Min(backlogBits/float64(deliverable), gap) / 2
	}
	return Budget{
		OfferedRate:     offered,
		DeliverableRate: deliverable,
		Deficit:         deficit,
		MeanGapToPass:   gap,
		MeanLatency:     meanWait + drain,
	}, nil
}
