package netsim

// Sharded topology execution: each graph cell (orbital plane, cluster)
// runs the allocation-free DES core on its own subgraph, and cells
// synchronize with a conservative lookahead window in the style of
// Chandy–Misra–Bryant. The window width W is the minimum cross-cell
// ISL propagation delay: every event a cell processes in the window
// [T, T+W) can only emit cross-cell frames arriving at ≥ T+W, so a
// cell that stops strictly before T+W can never receive a message from
// the past. Cross-cell frames are carried between windows as
// timestamped shardMsg values and injected before the next window
// opens.
//
// Determinism contract: the window boundaries, the per-cell RNG
// streams (par.ForkSeed(Seed, cell)), and the message injection order
// (cell order, then arrival time, stable) are all pure functions of
// the config — never of Config.Shards, which only caps how many
// goroutines advance cells concurrently. Results are byte-identical
// for any shard count.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sudc/internal/degrade"
	"sudc/internal/faults"
	"sudc/internal/obs/latency"
	"sudc/internal/obs/window"
	"sudc/internal/par"
	"sudc/internal/placement"
	"sudc/internal/units"
)

// shardRunner drives one topology run: the per-cell simulators, the
// pending cross-cell messages, and the synchronization constants.
type shardRunner struct {
	c       Config
	sims    []*simulator
	pending []shardMsg // cross-cell frames awaiting injection

	horizon  float64
	wsec     float64 // conservative lookahead window, s
	hasCross bool
	eff      int // goroutines advancing cells

	weights []int // per-cell worker counts, for merging
	linksN  []int // per-cell link counts
	allLat  []float64

	// winM merges per-cell window fragments at the cross-cell watermark
	// (nil when Config.Window is zero).
	winM *window.Merger

	// Placement merge accumulators (unused without Config.Placement).
	tierLat   [placement.NumTiers][]float64
	placeCost float64
}

// newShardRunner builds the per-cell simulators. A single-cell
// topology runs on the root seed with no observability scoping — the
// Star graph is then equivalent to the legacy implicit star — while
// multi-cell topologies fork one seed, obs scope, and trace child
// ("c%03d") per cell.
func newShardRunner(c Config, plans []cellPlan, deg *degrade.Schedule) (*shardRunner, error) {
	r := &shardRunner{
		c:       c,
		horizon: c.Duration.Seconds(),
		sims:    make([]*simulator, 0, len(plans)),
		weights: make([]int, len(plans)),
		linksN:  make([]int, len(plans)),
	}
	if w, ok := c.Topology.MinCrossDelay(); ok {
		r.hasCross = true
		r.wsec = w.Seconds()
	}
	if c.Window > 0 {
		r.winM = window.NewMerger(c.Window.Seconds(), c.OnWindow)
	}
	r.eff = c.Shards
	if r.eff <= 0 {
		r.eff = par.DefaultWorkers()
	}
	if r.eff > len(plans) {
		r.eff = len(plans)
	}
	multi := len(plans) > 1
	for i := range plans {
		p := &plans[i]
		cc := c
		if multi {
			cc.Seed = par.ForkSeed(c.Seed, i)
			if c.Obs != nil {
				cc.Obs = c.Obs.Scope(fmt.Sprintf("c%03d", i))
			}
			if c.Trace != nil {
				cc.Trace = c.Trace.Child(fmt.Sprintf("c%03d", i))
			}
		}
		// The shared degradation schedule modulates every cell's SEFI
		// stream through the same envelope; each cell still forks its own
		// per-node RNG streams from its cell seed.
		sched, err := faults.BuildModulated(c.Faults, p.workers, len(p.links), c.Duration, cc.Seed, deg.FaultEnvelope())
		if err != nil {
			for _, s := range r.sims {
				putSim(s)
			}
			return nil, err
		}
		s := getSim()
		if s.ownRand == nil {
			s.ownRand = rand.New(rand.NewSource(cc.Seed))
		} else {
			s.ownRand.Seed(cc.Seed)
		}
		r.sims = append(r.sims, s)
		s.resetTopo(cc, p, sched, deg, i, len(plans))
		r.weights[i] = p.workers
		r.linksN[i] = len(p.links)
	}
	return r, nil
}

// window advances every cell through one synchronization window and
// exchanges the cross-cell frames it produced. It returns false once
// no cell holds an event within the horizon.
func (r *shardRunner) window() bool {
	for i := range r.pending {
		m := r.pending[i]
		r.sims[m.cell].inject(m)
	}
	r.pending = r.pending[:0]

	tmin := math.Inf(1)
	for _, s := range r.sims {
		if at := s.nextAt(); at < tmin {
			tmin = at
		}
	}
	if tmin > r.horizon {
		return false
	}
	// Without cross-cell edges the cells are independent: one final
	// window runs each to the horizon. With them, cells may process
	// events strictly below tmin+W; the horizon boundary is inclusive
	// to match the legacy `at > horizon` stop.
	limit, final := r.horizon, true
	if r.hasCross {
		if l := tmin + r.wsec; l < r.horizon {
			limit, final = l, false
		}
	}
	if r.eff <= 1 {
		for _, s := range r.sims {
			s.runUntil(limit, final)
		}
	} else {
		// The per-cell closure is error-free; ForNErr is used for its
		// worker-count option.
		_ = par.ForNErr(len(r.sims), func(i int) error {
			r.sims[i].runUntil(limit, final)
			return nil
		}, par.Workers(r.eff))
	}
	// Gather outboxes in cell order — deterministic regardless of which
	// goroutine finished first — then order by arrival time.
	for _, s := range r.sims {
		r.pending = append(r.pending, s.outbox...)
		s.outbox = s.outbox[:0]
	}
	sortMsgs(r.pending)
	r.flushWindows()
	// A final window can still emit cross-cell frames arriving within
	// the horizon; loop again to deliver them.
	return !final || len(r.pending) > 0
}

// flushWindows advances every cell's window collector to the
// cross-cell watermark — the minimum next event time over all cells
// and in-flight messages, capped at the horizon — and folds the closed
// fragments into the merger. Below the watermark every cell's
// environment is provably constant (its own next event and every
// message that could perturb it lie at or beyond it), so the advance
// is exact. The watermark and the cell drain order are pure functions
// of the config, never of Config.Shards, so the merged window stream
// inherits the byte-identity contract.
func (r *shardRunner) flushWindows() {
	if r.winM == nil {
		return
	}
	wm := r.horizon
	for _, s := range r.sims {
		if at := s.nextAt(); at < wm {
			wm = at
		}
	}
	for i := range r.pending {
		if r.pending[i].at < wm {
			wm = r.pending[i].at
		}
	}
	for _, s := range r.sims {
		s.win.Advance(wm, s.winEnv())
		for _, f := range s.win.Drain() {
			r.winM.Add(f)
		}
	}
	r.winM.Flush(wm)
}

// finish closes every cell and merges the per-cell Stats: frame
// counters sum, availability-style fractions average weighted by
// worker count (so worker-less relay cells drop out), ISL utilization
// averages weighted by link count, and the latency distribution is
// recomputed over the merged samples.
func (r *shardRunner) finish() Stats {
	if len(r.sims) == 1 {
		// Single cell: the cell's stats ARE the run's stats. Bypassing
		// the weighted merge keeps the Star topology bit-identical to
		// the legacy simulator (x*w/w is not an exact float identity).
		s := r.sims[0]
		cs := s.finish()
		s.closeWindows(r.winM)
		putSim(s)
		r.sealWindows()
		return cs
	}
	var out Stats
	var availW, degW, wuW, islW, rateW float64
	totalWorkers, totalLinks := 0, 0
	out.MeanRateMult = 1
	r.allLat = r.allLat[:0]
	for i, s := range r.sims {
		cs := s.finish()
		w := float64(r.weights[i])
		out.FramesGenerated += cs.FramesGenerated
		out.FramesProcessed += cs.FramesProcessed
		out.InsightsDownlinked += cs.InsightsDownlinked
		out.FramesRetried += cs.FramesRetried
		out.FramesRedispatched += cs.FramesRedispatched
		out.FramesShed += cs.FramesShed
		out.FramesLost += cs.FramesLost
		out.CrossShardFrames += cs.CrossShardFrames
		out.ComputeEnergy += cs.ComputeEnergy
		out.WorkerDowntime += cs.WorkerDowntime
		out.ISLDowntime += cs.ISLDowntime
		if cs.MaxInputQueue > out.MaxInputQueue {
			out.MaxInputQueue = cs.MaxInputQueue
		}
		out.BatchesDeferred += cs.BatchesDeferred
		// Every cell replays the same wall-clock degradation schedule, so
		// throttle/brownout time is a max, not a sum (worker-less relay
		// cells report zero brownout time and drop out).
		if cs.ThrottledTime > out.ThrottledTime {
			out.ThrottledTime = cs.ThrottledTime
		}
		if cs.BrownoutTime > out.BrownoutTime {
			out.BrownoutTime = cs.BrownoutTime
		}
		rateW += cs.MeanRateMult * w
		availW += cs.Availability * w
		degW += cs.DegradedFraction * w
		wuW += cs.WorkerUtilization * w
		islW += cs.ISLUtilization * float64(r.linksN[i])
		totalWorkers += r.weights[i]
		totalLinks += r.linksN[i]
		r.allLat = append(r.allLat, s.latencies...)
		if s.place != nil {
			// The per-tier latency distributions are recomputed over the
			// merged samples, exactly like the global distribution.
			for t := range s.tierLats {
				out.TierFrames[t] += cs.TierFrames[t]
				out.TierDollars[t] += cs.TierDollars[t]
				r.tierLat[t] = append(r.tierLat[t], s.tierLats[t]...)
			}
			r.placeCost += s.placeCostSum
			out.OracleMeanCost = cs.OracleMeanCost
		}
		s.closeWindows(r.winM)
		putSim(s)
	}
	r.sealWindows()
	// A frame that crossed cells counts +1 in its producer's generated
	// and −1 via its consumer's processed/shed/lost, so the global sum
	// is the true in-flight backlog.
	out.Backlog = out.FramesGenerated - out.FramesProcessed - out.FramesShed - out.FramesLost
	if totalWorkers > 0 {
		out.Availability = units.Clamp(availW/float64(totalWorkers), 0, 1)
		out.DegradedFraction = units.Clamp(degW/float64(totalWorkers), 0, 1)
		out.WorkerUtilization = units.Clamp(wuW/float64(totalWorkers), 0, 1)
		out.MeanRateMult = rateW / float64(totalWorkers)
	}
	if totalLinks > 0 {
		out.ISLUtilization = units.Clamp(islW/float64(totalLinks), 0, 1)
	}
	if len(r.allLat) > 0 {
		sort.Float64s(r.allLat)
		var sum float64
		for _, l := range r.allLat {
			sum += l
		}
		out.MeanLatency = time.Duration(sum / float64(len(r.allLat)) * float64(time.Second))
		out.P95Latency = time.Duration(r.allLat[int(float64(len(r.allLat))*0.95)] * float64(time.Second))
	}
	if r.c.Placement != nil {
		for t := range r.tierLat {
			v := r.tierLat[t]
			if len(v) == 0 {
				continue
			}
			sort.Float64s(v)
			var sum float64
			for _, l := range v {
				sum += l
			}
			out.TierMeanLatency[t] = time.Duration(sum / float64(len(v)) * float64(time.Second))
			out.TierP99Latency[t] = time.Duration(latency.Quantile(v, 0.99) * float64(time.Second))
		}
		if out.FramesProcessed > 0 {
			out.PlacedMeanCost = r.placeCost / float64(out.FramesProcessed)
		}
	}
	out.KeptUp = out.Backlog <= 2*r.c.BatchSize*totalWorkers
	return out
}

// sealWindows flushes the trailing windows (including a partial one)
// after every cell has closed.
func (r *shardRunner) sealWindows() {
	if r.winM != nil {
		r.winM.Flush(math.Inf(1))
	}
}

// sortMsgs orders cross-cell messages by arrival time with a stable
// insertion sort: per-window message counts are small, and unlike
// sort.SliceStable this keeps the exchange allocation-free.
func sortMsgs(ms []shardMsg) {
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && ms[j].at > m.at {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

// runTopology executes a topology-mode configuration.
func runTopology(c Config) (Stats, error) {
	plans, err := compile(c.Topology)
	if err != nil {
		return Stats{}, err
	}
	deg, err := buildDegrade(c)
	if err != nil {
		return Stats{}, err
	}
	r, err := newShardRunner(c, plans, deg)
	if err != nil {
		return Stats{}, err
	}
	for r.window() {
	}
	stats := r.finish()
	if r.winM != nil {
		emitSLO(c, r.winM.Windows())
	}
	return stats, nil
}
