package netsim

// Sharded topology execution: each graph cell (orbital plane, cluster)
// runs the allocation-free DES core on its own subgraph, and cells
// synchronize conservatively in the style of Chandy–Misra–Bryant.
//
// Per-cell lookahead. Let next_i be cell i's earliest local event and
// d_ji the minimum cross-cell delay of the edges j → i (from
// topo.CellGraph). The earliest simulated time cell j can still act at
// is the relaxation fixpoint
//
//	T_i = min(next_i, min_j (T_j + d_ji))
//
// — j cannot act before its own next event or before the earliest
// message that could reach it wakes it. computeLimits solves the
// fixpoint with a Dijkstra pass over the cell graph (all cells are
// sources, keyed next_i; cross-cell delays are validated positive) and
// sets each cell's run limit to
//
//	limit_i = min_j (T_j + d_ji)
//
// collected as the incoming neighbors j settle. By induction on the
// global event order, nothing cell j ever does happens before T_j, so
// no message can reach cell i before limit_i: i safely processes every
// event with at < limit_i this round. A cell whose limit reaches the
// horizon runs to it inclusively (matching the legacy `at > horizon`
// stop); a cell with no incoming cross-cell edges has limit_i = +Inf
// and finishes in its first round. The fixpoint is never more
// conservative than the old global tmin + min-cross-delay window, and
// on graphs with heterogeneous delays (short FSO hops, long ring ISLs)
// cells run far ahead of the old window, collapsing the round count.
//
// Mechanics per round: pending cross-cell messages are injected (their
// cells' tournament-tree keys refreshed), limits are computed, and the
// active set — cells holding an event below their limit — runs either
// inline or on the persistent worker pool. Each cell sorts its own
// outbox; the runner then k-way-merges the sorted outboxes through the
// same tournament tree, which reproduces the stable
// gather-then-sort order the implementation used before.
//
// Determinism contract: the round structure, the per-cell limits, the
// per-cell RNG streams (par.ForkSeed(Seed, cell)), and the message
// injection order (arrival time, then cell order, stable) are all pure
// functions of the config — never of Config.Shards, which only caps
// how many goroutines advance cells concurrently. Results are
// byte-identical for any shard count.

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sudc/internal/degrade"
	"sudc/internal/faults"
	"sudc/internal/obs/latency"
	"sudc/internal/obs/window"
	"sudc/internal/par"
	"sudc/internal/placement"
	"sudc/internal/units"
)

// cellEdge is one directed cell-graph edge in simulator units.
type cellEdge struct {
	cell  int
	delay float64 // min cross-cell propagation delay, s
}

// shardRunner drives one topology run: the per-cell simulators, the
// pending cross-cell messages, and the synchronization state.
type shardRunner struct {
	c       Config
	sims    []*simulator
	pending []shardMsg // cross-cell frames awaiting injection

	horizon  float64
	hasCross bool
	eff      int // goroutines advancing cells

	// Lookahead state. next holds every cell's next-event time; dij is
	// the Dijkstra scratch tree of tentative output times. The stamp
	// arrays (done, lstamp, touched) are versioned by round so no
	// per-round O(cells) clearing is needed.
	out     [][]cellEdge
	next    minTree
	dij     minTree
	limit   []float64
	lstamp  []int
	finalC  []bool
	done    []int
	touched []int
	tlist   []int
	popped  []int
	active  []int // cells to run this round, ascending
	round   int

	// Outbox-merge scratch.
	msrc  [][]shardMsg
	mhead []int
	mrg   minTree

	// Persistent worker pool (lazy; see runActiveCells). Workers pull
	// active-list indices off workIdx, so the per-round cost is one
	// channel send per worker instead of a goroutine spawn per cell.
	started bool
	wake    []chan struct{}
	wg      sync.WaitGroup
	workIdx atomic.Int64

	syncStats SyncStats

	// winM merges per-cell window fragments at the cross-cell watermark
	// (nil when Config.Window is zero); winNext is the next window
	// boundary to cross, so rounds between boundaries skip the flush.
	winM    *window.Merger
	winNext float64

	weights []int // per-cell worker counts, for merging
	linksN  []int // per-cell link counts
	allLat  []float64

	// Placement merge accumulators (unused without Config.Placement).
	tierLat   [placement.NumTiers][]float64
	placeCost float64
}

// newShardRunner builds the per-cell simulators. A single-cell
// topology runs on the root seed with no observability scoping — the
// Star graph is then equivalent to the legacy implicit star — while
// multi-cell topologies fork one seed, obs scope, and trace child
// ("c%03d") per cell.
func newShardRunner(c Config, plans []cellPlan, deg *degrade.Schedule) (*shardRunner, error) {
	n := len(plans)
	r := &shardRunner{
		c:       c,
		horizon: c.Duration.Seconds(),
		sims:    make([]*simulator, 0, n),
		weights: make([]int, n),
		linksN:  make([]int, n),
		limit:   make([]float64, n),
		lstamp:  make([]int, n),
		finalC:  make([]bool, n),
		done:    make([]int, n),
		touched: make([]int, n),
	}
	if n > 1 {
		outT, _ := c.Topology.CellGraph()
		r.out = make([][]cellEdge, n)
		for i, row := range outT {
			for _, e := range row {
				r.out[i] = append(r.out[i], cellEdge{cell: e.Cell, delay: e.Delay.Seconds()})
				r.hasCross = true
			}
		}
	}
	if c.Window > 0 {
		r.winM = window.NewMerger(c.Window.Seconds(), c.OnWindow)
		r.winNext = c.Window.Seconds()
	}
	r.eff = c.Shards
	if r.eff <= 0 {
		r.eff = par.DefaultWorkers()
	}
	if r.eff > n {
		r.eff = n
	}
	// More runners than schedulable cores is pure scheduler churn —
	// results are shard-invariant, so the cap costs nothing. The floor
	// of two keeps the pool's barrier machinery exercised (and under
	// -race, raced) on single-core hosts.
	if maxp := runtime.GOMAXPROCS(0); r.eff > maxp {
		r.eff = maxp
		if r.eff < 2 {
			r.eff = 2
		}
	}
	multi := n > 1
	for i := range plans {
		p := &plans[i]
		cc := c
		if multi {
			cc.Seed = par.ForkSeed(c.Seed, i)
			if c.Obs != nil {
				cc.Obs = c.Obs.Scope(fmt.Sprintf("c%03d", i))
			}
			if c.Trace != nil {
				cc.Trace = c.Trace.Child(fmt.Sprintf("c%03d", i))
			}
		}
		// The shared degradation schedule modulates every cell's SEFI
		// stream through the same envelope; each cell still forks its own
		// per-node RNG streams from its cell seed.
		sched, err := faults.BuildModulated(c.Faults, p.workers, len(p.links), c.Duration, cc.Seed, deg.FaultEnvelope())
		if err != nil {
			for _, s := range r.sims {
				putSim(s)
			}
			return nil, err
		}
		s := getSim()
		if s.ownRand == nil {
			s.ownRand = rand.New(rand.NewSource(cc.Seed))
		} else {
			s.ownRand.Seed(cc.Seed)
		}
		r.sims = append(r.sims, s)
		s.resetTopo(cc, p, sched, deg, i, n)
		r.weights[i] = p.workers
		r.linksN[i] = len(p.links)
	}
	r.next.reset(n)
	for i, s := range r.sims {
		r.next.update(i, s.nextAt())
	}
	return r, nil
}

// window advances the active cells through one synchronization round
// and exchanges the cross-cell frames they produced. It returns false
// once no cell holds an event within the horizon.
func (r *shardRunner) window() bool {
	r.round++
	// Deliver the messages gathered at the previous barrier and refresh
	// the next-event keys of the cells they landed in.
	for i := range r.pending {
		m := r.pending[i]
		r.sims[m.cell].inject(m)
		if r.touched[m.cell] != r.round {
			r.touched[m.cell] = r.round
			r.tlist = append(r.tlist, m.cell)
		}
	}
	r.pending = r.pending[:0]
	for _, c := range r.tlist {
		r.next.update(c, r.sims[c].nextAt())
	}
	r.tlist = r.tlist[:0]

	tmin := r.next.minKey()
	if tmin > r.horizon {
		return false
	}
	r.computeLimits()
	r.buildActive(tmin)
	if len(r.active) == 0 {
		// Unreachable while tmin ≤ horizon (the tmin cell's limit
		// exceeds tmin by its positive min incoming delay), but kept as
		// a termination backstop.
		return false
	}
	r.runActiveCells()

	// Post-barrier, single-threaded: refresh the ran cells' tree keys
	// and k-way-merge their outboxes into the pending exchange.
	r.msrc = r.msrc[:0]
	nmsg := 0
	for _, c := range r.active {
		s := r.sims[c]
		r.next.update(c, s.nextAt())
		if len(s.outbox) > 0 {
			r.msrc = append(r.msrc, s.outbox)
			nmsg += len(s.outbox)
		}
	}
	r.mergeOutboxes(nmsg)
	for _, c := range r.active {
		r.sims[c].outbox = r.sims[c].outbox[:0]
	}
	r.syncStats.CrossMsgs += nmsg
	r.flushWindows()
	return true
}

// limitOf returns cell i's run limit for this round (+Inf when no
// settled neighbor relaxed it).
func (r *shardRunner) limitOf(i int) float64 {
	if r.lstamp[i] == r.round {
		return r.limit[i]
	}
	return math.Inf(1)
}

// computeLimits solves the lookahead fixpoint for the round (see the
// package comment): a Dijkstra pass over the cell graph keyed by
// next-event times, recording each cell's earliest possible incoming
// message as its neighbors settle. Cells settling past the horizon are
// cut off — their contributions cannot pull any limit below it.
func (r *shardRunner) computeLimits() {
	r.popped = r.popped[:0]
	if !r.hasCross {
		return
	}
	r.dij.loadFrom(&r.next)
	inf := math.Inf(1)
	for {
		u := r.dij.minLeaf()
		k := r.dij.key[u]
		if k > r.horizon {
			return
		}
		r.dij.update(u, inf)
		r.done[u] = r.round
		r.popped = append(r.popped, u)
		for _, e := range r.out[u] {
			cand := k + e.delay
			if r.lstamp[e.cell] != r.round || cand < r.limit[e.cell] {
				r.lstamp[e.cell] = r.round
				r.limit[e.cell] = cand
			}
			if r.done[e.cell] != r.round && cand < r.dij.key[e.cell] {
				r.dij.update(e.cell, cand)
			}
		}
	}
}

// buildActive selects the cells to run this round — every cell holding
// an event below its limit (idle and drained cells are skipped) — and
// fixes each one's run limit and final flag. Only cells settled by the
// Dijkstra pass can qualify, so the scan never touches the full cell
// array on graphs with cross-cell edges.
func (r *shardRunner) buildActive(tmin float64) {
	r.active = r.active[:0]
	if !r.hasCross {
		// Independent cells: one final round runs each to the horizon.
		for i, s := range r.sims {
			if s.nextAt() <= r.horizon {
				r.limit[i], r.lstamp[i], r.finalC[i] = r.horizon, r.round, true
				r.active = append(r.active, i)
			}
		}
	} else {
		for _, u := range r.popped {
			lim := r.limitOf(u)
			nx := r.next.key[u]
			if lim >= r.horizon {
				if nx <= r.horizon {
					r.limit[u], r.lstamp[u], r.finalC[u] = r.horizon, r.round, true
					r.active = append(r.active, u)
				}
			} else if nx < lim {
				r.finalC[u] = false
				r.active = append(r.active, u)
			}
		}
		// Settle order is (T, cell) — re-canonicalize to ascending cell
		// order, which fixes the merge tie-break and the gather order.
		sort.Ints(r.active)
	}
	r.syncStats.Rounds++
	r.syncStats.CellRuns += len(r.active)
	for _, u := range r.active {
		w := r.limit[u]
		if w > r.horizon {
			w = r.horizon
		}
		r.syncStats.LookaheadSum += w - tmin
	}
}

// runActiveCells advances every active cell to its limit. With one
// effective shard (or one active cell) the loop runs inline; otherwise
// the persistent workers are woken and pull cells off the shared
// index. Each cell sorts its own outbox inside the parallel region.
func (r *shardRunner) runActiveCells() {
	if r.eff <= 1 || len(r.active) == 1 {
		for _, c := range r.active {
			r.runCell(c)
		}
		return
	}
	if !r.started {
		r.startPool()
	}
	r.workIdx.Store(0)
	r.wg.Add(len(r.wake))
	for _, ch := range r.wake {
		ch <- struct{}{}
	}
	r.runShare()
	r.wg.Wait()
}

// runCell executes one cell's round.
func (r *shardRunner) runCell(c int) {
	s := r.sims[c]
	s.runUntil(r.limit[c], r.finalC[c])
	sortMsgs(s.outbox, &s.msgScratch)
}

// runShare drains active-list indices until the round's work is gone.
func (r *shardRunner) runShare() {
	for {
		i := int(r.workIdx.Add(1)) - 1
		if i >= len(r.active) {
			return
		}
		r.runCell(r.active[i])
	}
}

// startPool spawns the eff-1 persistent workers (the caller's
// goroutine is the eff-th). Each waits on its wake channel, runs its
// share of the active list, and signals the barrier WaitGroup.
func (r *shardRunner) startPool() {
	r.started = true
	r.wake = make([]chan struct{}, r.eff-1)
	for i := range r.wake {
		ch := make(chan struct{}, 1)
		r.wake[i] = ch
		go func() {
			for range ch {
				r.runShare()
				r.wg.Done()
			}
		}()
	}
}

// stopPool retires the persistent workers.
func (r *shardRunner) stopPool() {
	if !r.started {
		return
	}
	for _, ch := range r.wake {
		close(ch)
	}
	r.started = false
}

// mergeOutboxes k-way-merges the time-sorted per-cell outboxes in
// r.msrc (ascending cell order) into r.pending. Ties resolve to the
// lower source index — the lower cell — and each source is itself
// stable, so the merged order is exactly the stable
// sort-by-arrival-time of the concatenation.
func (r *shardRunner) mergeOutboxes(n int) {
	switch len(r.msrc) {
	case 0:
		return
	case 1:
		r.pending = append(r.pending, r.msrc[0]...)
		return
	}
	if n <= 32 {
		// Typical rounds exchange a handful of messages; gathering in
		// cell order and stable-insertion-sorting the gathered tail by
		// arrival time produces the tree merge's exact order without
		// the tree setup.
		base := len(r.pending)
		for _, src := range r.msrc {
			r.pending = append(r.pending, src...)
		}
		insertMsgs(r.pending[base:])
		return
	}
	r.mhead = r.mhead[:0]
	r.mrg.reset(len(r.msrc))
	for i, src := range r.msrc {
		r.mhead = append(r.mhead, 0)
		r.mrg.update(i, src[0].at)
	}
	for ; n > 0; n-- {
		w := r.mrg.minLeaf()
		r.pending = append(r.pending, r.msrc[w][r.mhead[w]])
		r.mhead[w]++
		if r.mhead[w] < len(r.msrc[w]) {
			r.mrg.update(w, r.msrc[w][r.mhead[w]].at)
		} else {
			r.mrg.update(w, math.Inf(1))
		}
	}
}

// flushWindows advances every cell's window collector to the
// cross-cell watermark — the minimum next event time over all cells
// and in-flight messages, capped at the horizon — and folds the closed
// fragments into the merger. Below the watermark every cell's
// environment is provably constant (its own next event and every
// message that could perturb it lie at or beyond it), so the advance
// is exact. Rounds whose watermark has not crossed the next window
// boundary skip the O(cells) drain entirely: the fragments fold
// identically once the boundary is crossed, because each cell's
// occupancy between its own events is constant. The watermark and the
// cell drain order are pure functions of the config, never of
// Config.Shards, so the merged window stream inherits the
// byte-identity contract.
func (r *shardRunner) flushWindows() {
	if r.winM == nil {
		return
	}
	wm := r.next.minKey()
	if len(r.pending) > 0 && r.pending[0].at < wm {
		wm = r.pending[0].at
	}
	if wm > r.horizon {
		wm = r.horizon
	}
	if wm < r.winNext {
		return
	}
	for _, s := range r.sims {
		s.win.Advance(wm, s.winEnv())
		for _, f := range s.win.Drain() {
			r.winM.Add(f)
		}
	}
	r.winM.Flush(wm)
	width := r.c.Window.Seconds()
	r.winNext = (math.Floor(wm/width) + 1) * width
}

// finish retires the worker pool, closes every cell, and merges the
// per-cell Stats: frame counters sum, availability-style fractions
// average weighted by worker count (so worker-less relay cells drop
// out), ISL utilization averages weighted by link count, and the
// latency distribution is recomputed over the merged samples.
func (r *shardRunner) finish() Stats {
	r.stopPool()
	if len(r.sims) == 1 {
		// Single cell: the cell's stats ARE the run's stats. Bypassing
		// the weighted merge keeps the Star topology bit-identical to
		// the legacy simulator (x*w/w is not an exact float identity).
		s := r.sims[0]
		cs := s.finish()
		s.closeWindows(r.winM)
		putSim(s)
		r.sealWindows()
		return cs
	}
	var out Stats
	var availW, degW, wuW, islW, rateW float64
	totalWorkers, totalLinks := 0, 0
	out.MeanRateMult = 1
	r.allLat = r.allLat[:0]
	for i, s := range r.sims {
		cs := s.finish()
		w := float64(r.weights[i])
		out.FramesGenerated += cs.FramesGenerated
		out.FramesProcessed += cs.FramesProcessed
		out.InsightsDownlinked += cs.InsightsDownlinked
		out.FramesRetried += cs.FramesRetried
		out.FramesRedispatched += cs.FramesRedispatched
		out.FramesShed += cs.FramesShed
		out.FramesLost += cs.FramesLost
		out.CrossShardFrames += cs.CrossShardFrames
		out.ComputeEnergy += cs.ComputeEnergy
		out.WorkerDowntime += cs.WorkerDowntime
		out.ISLDowntime += cs.ISLDowntime
		if cs.MaxInputQueue > out.MaxInputQueue {
			out.MaxInputQueue = cs.MaxInputQueue
		}
		out.BatchesDeferred += cs.BatchesDeferred
		// Every cell replays the same wall-clock degradation schedule, so
		// throttle/brownout time is a max, not a sum (worker-less relay
		// cells report zero brownout time and drop out).
		if cs.ThrottledTime > out.ThrottledTime {
			out.ThrottledTime = cs.ThrottledTime
		}
		if cs.BrownoutTime > out.BrownoutTime {
			out.BrownoutTime = cs.BrownoutTime
		}
		rateW += cs.MeanRateMult * w
		availW += cs.Availability * w
		degW += cs.DegradedFraction * w
		wuW += cs.WorkerUtilization * w
		islW += cs.ISLUtilization * float64(r.linksN[i])
		totalWorkers += r.weights[i]
		totalLinks += r.linksN[i]
		r.allLat = append(r.allLat, s.latencies...)
		if s.place != nil {
			// The per-tier latency distributions are recomputed over the
			// merged samples, exactly like the global distribution.
			for t := range s.tierLats {
				out.TierFrames[t] += cs.TierFrames[t]
				out.TierDollars[t] += cs.TierDollars[t]
				r.tierLat[t] = append(r.tierLat[t], s.tierLats[t]...)
			}
			r.placeCost += s.placeCostSum
			out.OracleMeanCost = cs.OracleMeanCost
		}
		s.closeWindows(r.winM)
		putSim(s)
	}
	r.sealWindows()
	// A frame that crossed cells counts +1 in its producer's generated
	// and −1 via its consumer's processed/shed/lost, so the global sum
	// is the true in-flight backlog.
	out.Backlog = out.FramesGenerated - out.FramesProcessed - out.FramesShed - out.FramesLost
	if totalWorkers > 0 {
		out.Availability = units.Clamp(availW/float64(totalWorkers), 0, 1)
		out.DegradedFraction = units.Clamp(degW/float64(totalWorkers), 0, 1)
		out.WorkerUtilization = units.Clamp(wuW/float64(totalWorkers), 0, 1)
		out.MeanRateMult = rateW / float64(totalWorkers)
	}
	if totalLinks > 0 {
		out.ISLUtilization = units.Clamp(islW/float64(totalLinks), 0, 1)
	}
	if len(r.allLat) > 0 {
		// The merged samples are concatenated in cell order — a pure
		// function of the config — so the mean sum is deterministic, and
		// the p95 is the same order statistic a full sort would index.
		var sum float64
		for _, l := range r.allLat {
			sum += l
		}
		out.MeanLatency = time.Duration(sum / float64(len(r.allLat)) * float64(time.Second))
		p95 := selectKth(r.allLat, int(float64(len(r.allLat))*0.95))
		out.P95Latency = time.Duration(p95 * float64(time.Second))
	}
	if r.c.Placement != nil {
		for t := range r.tierLat {
			v := r.tierLat[t]
			if len(v) == 0 {
				continue
			}
			sort.Float64s(v)
			var sum float64
			for _, l := range v {
				sum += l
			}
			out.TierMeanLatency[t] = time.Duration(sum / float64(len(v)) * float64(time.Second))
			out.TierP99Latency[t] = time.Duration(latency.Quantile(v, 0.99) * float64(time.Second))
		}
		if out.FramesProcessed > 0 {
			out.PlacedMeanCost = r.placeCost / float64(out.FramesProcessed)
		}
	}
	out.KeptUp = out.Backlog <= 2*r.c.BatchSize*totalWorkers
	out.Sync = r.syncStats
	return out
}

// sealWindows flushes the trailing windows (including a partial one)
// after every cell has closed.
func (r *shardRunner) sealWindows() {
	if r.winM != nil {
		r.winM.Flush(math.Inf(1))
	}
}

// selectKth returns the k-th smallest element (0-indexed) of a,
// partially partitioning a in place — the merged-latency p95 without
// the O(n log n) full sort. Median-of-three pivoting with a Hoare
// partition; the selected order statistic is identical to sorting and
// indexing, so the result is deterministic regardless of the
// partition path.
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		p := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return a[k]
		}
	}
	return a[k]
}

// sortMsgs orders cross-cell messages by arrival time, stable. Small
// outboxes use an insertion sort; larger ones (cells with no incoming
// cross-cell edges can emit a whole run's messages in one round) run a
// bottom-up merge sort through the caller's scratch buffer, keeping
// the exchange allocation-free in steady state.
func sortMsgs(ms []shardMsg, scratch *[]shardMsg) {
	const run = 32
	n := len(ms)
	if n <= run {
		insertMsgs(ms)
		return
	}
	for lo := 0; lo < n; lo += run {
		insertMsgs(ms[lo:min(lo+run, n)])
	}
	buf := *scratch
	if cap(buf) < n {
		buf = make([]shardMsg, n)
		*scratch = buf
	} else {
		buf = buf[:n]
	}
	src, dst := ms, buf
	for w := run; w < n; w *= 2 {
		for lo := 0; lo < n; lo += 2 * w {
			mid, hi := min(lo+w, n), min(lo+2*w, n)
			i, j := lo, mid
			for k := lo; k < hi; k++ {
				if j >= hi || (i < mid && src[i].at <= src[j].at) {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &ms[0] {
		copy(ms, src)
	}
}

// insertMsgs is the stable insertion sort of a short message run.
func insertMsgs(ms []shardMsg) {
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && ms[j].at > m.at {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

// runTopology executes a topology-mode configuration.
func runTopology(c Config) (Stats, error) {
	plans, err := compile(c.Topology)
	if err != nil {
		return Stats{}, err
	}
	deg, err := buildDegrade(c)
	if err != nil {
		return Stats{}, err
	}
	r, err := newShardRunner(c, plans, deg)
	if err != nil {
		return Stats{}, err
	}
	for r.window() {
	}
	stats := r.finish()
	if r.winM != nil {
		emitSLO(c, r.winM.Windows())
	}
	return stats, nil
}
