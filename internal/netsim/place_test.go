package netsim

// Tests for the compute-placement wiring: the identity fast path
// (static-to-space replays the placement-free run byte for byte), the
// determinism pins (worker- and shard-count invariance with placement
// enabled), conservation and the Oracle lower bound across policies,
// and the low-load analytic anchor E11 cross-checks.

import (
	"strings"
	"testing"
	"time"

	"sudc/internal/obs"
	"sudc/internal/obs/trace"
	"sudc/internal/placement"
	"sudc/internal/topo"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// placeModel prices the four tiers with round numbers whose ordering
// puts greedy on the space tier: space is cheapest, cloud next, edge
// dearest; the latency weight makes the queue-aware policy sensitive
// to backlog.
func placeModel() placement.Model {
	return placement.Model{
		LatencyWeight: 1e-3,
		Tiers: [placement.NumTiers]placement.TierCost{
			placement.TierOnboard:    {DollarsPerFrame: 0.020, TransportDelay: 0, ServiceTime: 1, Servers: 2},
			placement.TierSpace:      {DollarsPerFrame: 0.002, TransportDelay: 0.05, ServiceTime: 0.5, Servers: 5},
			placement.TierGroundEdge: {DollarsPerFrame: 0.090, TransportDelay: 120, ServiceTime: 1, Servers: 4},
			placement.TierCloud:      {DollarsPerFrame: 0.030, TransportDelay: 120.06, ServiceTime: 1, Servers: 0},
		},
	}
}

// placeConfig is the shared placement configuration over the
// degradeBase scenario: a 5 Gbps downlink, a 2-minute mean pass wait,
// and a 60 ms WAN hop.
func placeConfig(p placement.Policy) *placement.Config {
	return &placement.Config{
		Policy:       p,
		Model:        placeModel(),
		DownlinkRate: units.GbpsOf(5),
		AccessDelay:  2 * time.Minute,
		WANDelay:     60 * time.Millisecond,
		EdgeServers:  4,
	}
}

// stripPlacement zeroes the placement-only Stats fields so a placed
// run can be compared against a placement-free reference.
func stripPlacement(s Stats) Stats {
	s.TierFrames = [placement.NumTiers]int{}
	s.TierMeanLatency = [placement.NumTiers]time.Duration{}
	s.TierP99Latency = [placement.NumTiers]time.Duration{}
	s.TierDollars = [placement.NumTiers]float64{}
	s.PlacedMeanCost = 0
	s.OracleMeanCost = 0
	return s
}

// dropLines removes every line containing any of the substrings.
func dropLines(s string, subs ...string) string {
	lines := strings.Split(s, "\n")
	out := lines[:0]
outer:
	for _, l := range lines {
		for _, sub := range subs {
			if strings.Contains(l, sub) {
				continue outer
			}
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

func TestPlacementStaticSpaceByteIdentical(t *testing.T) {
	// Static-to-space routes every frame down the legacy ISL path and
	// draws no randomness, so the run must replay the placement-free
	// event sequence bit for bit: identical Stats modulo the
	// placement-only fields, identical trace modulo the "placed" lines,
	// and identical metric snapshot modulo the placement-only series
	// and counters.
	c := degradeBase()
	c.Faults = degradeFaults
	c.RetryLimit = 3
	c.ShedThreshold = 40
	refStats, refSnap, refJSONL := exports(t, c)

	p := c
	p.Placement = placeConfig(placement.Policy{Kind: placement.Static, StaticTier: placement.TierSpace})
	s, snap, jsonl := exports(t, p)

	if s.TierFrames[placement.TierSpace] != s.FramesProcessed {
		t.Errorf("static-to-space put %d frames on the space tier, processed %d",
			s.TierFrames[placement.TierSpace], s.FramesProcessed)
	}
	if got := stripPlacement(s); got != refStats {
		t.Errorf("static-to-space stats differ from placement-free run:\n ref %+v\n got %+v", refStats, got)
	}
	if got := dropLines(jsonl, `"k":"placed"`); got != refJSONL {
		t.Error("static-to-space trace differs from placement-free run beyond the placed lines")
	}
	if got := dropLines(snap, "placed/", "downlink/"); got != refSnap {
		t.Error("static-to-space snapshot differs from placement-free run beyond placement series")
	}
}

func TestPlacementWorkerCountInvariance(t *testing.T) {
	// Placement decisions are pure functions of per-cell simulator
	// state, so the replica engine's worker count must not change a
	// byte: stats, merged snapshot, and trace export all identical at
	// workers 1, 2, and 8.
	c := degradeBase()
	c.Faults = degradeFaults
	c.RetryLimit = 3
	c.ShedThreshold = 40
	c.Placement = placeConfig(placement.Policy{Kind: placement.QueueAware})

	run := func(workers int) ([]Stats, string, string) {
		reg := obs.New()
		rec := trace.New(0)
		cc := c
		cc.Obs = reg.Scope("netsim")
		cc.Trace = rec
		stats, err := RunReplicas(cc, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		var jsonl strings.Builder
		if err := rec.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		return stats, reg.Snapshot().String(), jsonl.String()
	}

	refStats, refSnap, refJSONL := run(1)
	for _, w := range []int{2, 8} {
		stats, snap, jsonl := run(w)
		for r := range stats {
			if stats[r] != refStats[r] {
				t.Errorf("workers=%d replica %d stats differ:\n ref %+v\n got %+v", w, r, refStats[r], stats[r])
			}
		}
		if snap != refSnap {
			t.Errorf("workers=%d metric snapshot differs", w)
		}
		if jsonl != refJSONL {
			t.Errorf("workers=%d trace export differs", w)
		}
	}
}

func TestPlacementShardCountInvariance(t *testing.T) {
	// Placement state is per-cell and the downlink splits evenly across
	// cells by construction, so the sharded runner's byte-identity
	// contract extends to placed runs: Stats identical at shards 1, 2,
	// and 8.
	g, err := topo.Walker(4, 16, 8, 2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c := TopologyConfig(workload.Suite[0], g)
	c.Duration = 30 * time.Minute
	c.Faults = topoFaults
	c.RetryLimit = 4
	c.ShedThreshold = 200
	c.Placement = placeConfig(placement.Policy{Kind: placement.QueueAware})
	c.Shards = 1
	ref, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if ref.FramesProcessed == 0 {
		t.Fatal("placed topology run processed no frames")
	}
	for _, sh := range []int{2, 8} {
		cc := c
		cc.Shards = sh
		s, err := Run(cc)
		if err != nil {
			t.Fatal(err)
		}
		if s != ref {
			t.Errorf("shards=%d stats differ:\n ref %+v\n got %+v", sh, ref, s)
		}
	}
}

func TestPlacementConservationAndOracleBound(t *testing.T) {
	// Every policy must conserve frames across tiers (ΣTierFrames =
	// FramesProcessed, on top of the global conservation identity) and
	// realize a mean cost no better than the analytic Oracle floor.
	policies := []placement.Policy{
		{Kind: placement.Static, StaticTier: placement.TierOnboard},
		{Kind: placement.Static, StaticTier: placement.TierGroundEdge},
		{Kind: placement.Static, StaticTier: placement.TierCloud},
		{Kind: placement.GreedyCost},
		{Kind: placement.QueueAware},
		{Kind: placement.Oracle},
	}
	for _, p := range policies {
		name := p.Kind.String()
		if p.Kind == placement.Static {
			name += "-" + p.StaticTier.String()
		}
		t.Run(name, func(t *testing.T) {
			c := degradeBase()
			c.Placement = placeConfig(p)
			s, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			conserve(t, s)
			if s.FramesProcessed == 0 {
				t.Fatal("no frames processed")
			}
			total := 0
			for _, n := range s.TierFrames {
				total += n
			}
			if total != s.FramesProcessed {
				t.Errorf("tier frames sum to %d, processed %d", total, s.FramesProcessed)
			}
			if s.OracleMeanCost <= 0 {
				t.Errorf("oracle mean cost %v, want > 0", s.OracleMeanCost)
			}
			if s.PlacedMeanCost < s.OracleMeanCost*(1-1e-12) {
				t.Errorf("%s realized mean cost %v beats the oracle floor %v", name, s.PlacedMeanCost, s.OracleMeanCost)
			}
			for tier, n := range s.TierFrames {
				if n > 0 && s.TierMeanLatency[tier] <= 0 {
					t.Errorf("%s: tier %v served %d frames with non-positive mean latency", name, placement.Tier(tier), n)
				}
				if n > 0 && s.TierP99Latency[tier] < s.TierMeanLatency[tier]/2 {
					t.Errorf("%s: tier %v p99 %v implausibly below mean %v", name, placement.Tier(tier), s.TierP99Latency[tier], s.TierMeanLatency[tier])
				}
			}
		})
	}
}

func TestPlacementLowLoadMatchesAnalytic(t *testing.T) {
	// The E11 analytic anchor at package level: at ~10% utilization the
	// realized per-tier mean latency must sit on the transport+service
	// floor (queueing wait ≈ 0), in agreement with MMcWait at the same
	// load. The space tier is excluded: its legacy path batches frames,
	// which the four-tier queue model deliberately does not price.
	c := degradeBase()
	pc := placeConfig(placement.Policy{Kind: placement.Static})
	lambda := c.Constellation.FramesPerMinute / 60 * float64(c.Constellation.Satellites)

	dlSend := workload.Suite[0].FrameBits() / float64(pc.DownlinkRate)
	floors := map[placement.Tier]float64{
		placement.TierOnboard: pc.Model.Tiers[placement.TierOnboard].ServiceTime,
		placement.TierGroundEdge: dlSend + pc.AccessDelay.Seconds() +
			pc.Model.Tiers[placement.TierGroundEdge].ServiceTime,
		placement.TierCloud: dlSend + pc.AccessDelay.Seconds() + pc.WANDelay.Seconds() +
			pc.Model.Tiers[placement.TierCloud].ServiceTime,
	}
	for tier, floor := range floors {
		cc := c
		cc.Placement = placeConfig(placement.Policy{Kind: placement.Static, StaticTier: tier})
		s, err := Run(cc)
		if err != nil {
			t.Fatal(err)
		}
		if s.TierFrames[tier] != s.FramesProcessed || s.FramesProcessed == 0 {
			t.Fatalf("static-to-%v served %d of %d frames", tier, s.TierFrames[tier], s.FramesProcessed)
		}
		got := s.TierMeanLatency[tier].Seconds()
		if !units.ApproxEqual(got, floor, 0.02) {
			t.Errorf("%v mean latency %.3fs off the analytic floor %.3fs", tier, got, floor)
		}
		// The M/M/c model agrees the wait is negligible at this load.
		tc := pc.Model.Tiers[tier]
		servers := tc.Servers
		if servers == 0 {
			servers = 1 << 20 // elastic
		}
		if w := placement.MMcWait(lambda, 1/tc.ServiceTime, servers); w > 0.05*floor {
			t.Errorf("%v: M/M/c wait %.3fs not negligible against floor %.3fs — test scenario overloaded", tier, w, floor)
		}
	}
}

func TestPlacementConfigValidation(t *testing.T) {
	c := degradeBase()
	c.Placement = placeConfig(placement.Policy{Kind: placement.GreedyCost})
	if err := c.Validate(); err != nil {
		t.Fatalf("valid placed config rejected: %v", err)
	}
	bad := c
	badPC := *c.Placement
	badPC.DownlinkRate = 0
	bad.Placement = &badPC
	if err := bad.Validate(); err == nil {
		t.Error("zero downlink rate accepted")
	}
	bad = c
	badPC = *c.Placement
	badPC.Policy.Kind = placement.Kind(99)
	bad.Placement = &badPC
	if err := bad.Validate(); err == nil {
		t.Error("invalid policy kind accepted")
	}
}
