package netsim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventHeapMatchesSortedOrder drains a randomly filled heap and
// checks the pop sequence against the (at, seq) total order — the exact
// order the old container/heap implementation produced, which is what
// keeps the determinism goldens byte-identical across the swap.
func TestEventHeapMatchesSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	const n = 5000
	events := make([]event, 0, n)
	for i := 0; i < n; i++ {
		// Coarse timestamps force plenty of at-ties so the seq tiebreak
		// is actually exercised.
		e := event{at: float64(rng.Intn(64)), seq: i + 1, kind: rng.Intn(10), who: i}
		events = append(events, e)
		h.push(e)
	}
	sort.Slice(events, func(i, j int) bool { return eventLess(&events[i], &events[j]) })
	for i := range events {
		if h.len() == 0 {
			t.Fatalf("heap empty after %d pops, want %d", i, n)
		}
		if got := h.pop(); got != events[i] {
			t.Fatalf("pop %d = %+v, want %+v", i, got, events[i])
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap has %d leftover events", h.len())
	}
}

// TestEventHeapInterleavedAgainstReference interleaves pushes and pops
// and checks every pop against a naive min-extraction reference model.
func TestEventHeapInterleavedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h eventHeap
	var ref []event
	seq := 0
	for op := 0; op < 20000; op++ {
		if len(ref) == 0 || rng.Intn(3) != 0 {
			seq++
			e := event{at: float64(rng.Intn(100)), seq: seq}
			h.push(e)
			ref = append(ref, e)
			continue
		}
		min := 0
		for i := 1; i < len(ref); i++ {
			if eventLess(&ref[i], &ref[min]) {
				min = i
			}
		}
		want := ref[min]
		ref = append(ref[:min], ref[min+1:]...)
		if got := h.pop(); got != want {
			t.Fatalf("op %d: pop = %+v, want %+v", op, got, want)
		}
	}
}

// TestEventHeapPopClearsSlot pins the fix for the old eventQueue.Pop
// leaving the popped value live in the backing array until the next
// reslice: pop must zero the vacated tail slot.
func TestEventHeapPopClearsSlot(t *testing.T) {
	var h eventHeap
	h.push(event{at: 1, seq: 1, who: 42, gen: 7})
	h.push(event{at: 2, seq: 2, who: 43, gen: 8})
	h.pop()
	if got := h.a[:2][1]; got != (event{}) {
		t.Errorf("vacated slot not cleared after pop: %+v", got)
	}
	h.pop()
	if got := h.a[:1][0]; got != (event{}) {
		t.Errorf("vacated root slot not cleared after final pop: %+v", got)
	}
}

// TestEventHeapReuseAfterReset pins capacity recycling: reset keeps the
// backing array, so a drained-and-refilled heap never reallocates.
func TestEventHeapReuseAfterReset(t *testing.T) {
	var h eventHeap
	for i := 0; i < 100; i++ {
		h.push(event{at: float64(i), seq: i + 1})
	}
	ptr := &h.a[0]
	c := cap(h.a)
	h.reset()
	if h.len() != 0 {
		t.Fatalf("len after reset = %d", h.len())
	}
	for i := 0; i < 100; i++ {
		h.push(event{at: float64(100 - i), seq: i + 1})
	}
	if &h.a[0] != ptr || cap(h.a) != c {
		t.Error("heap reallocated its backing array after reset")
	}
}
