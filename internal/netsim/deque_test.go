package netsim

import (
	"math/rand"
	"testing"
)

// TestFrameDequeAgainstSliceModel drives the ring deque with a random
// operation mix — including the wrap-inducing pushFront and the
// shedding removeAt — and checks every observation against a plain
// slice model.
func TestFrameDequeAgainstSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var d frameDeque
	var model []frame
	next := int64(0)
	check := func(op int) {
		if d.len() != len(model) {
			t.Fatalf("op %d: len = %d, model %d", op, d.len(), len(model))
		}
		for i := range model {
			if *d.at(i) != model[i] {
				t.Fatalf("op %d: at(%d) = %+v, model %+v", op, i, *d.at(i), model[i])
			}
		}
	}
	for op := 0; op < 30000; op++ {
		switch k := rng.Intn(5); {
		case k <= 1 || len(model) == 0: // bias toward growth
			next++
			f := frame{id: next, born: float64(op), value: rng.Float64()}
			if k == 0 {
				d.pushFront(f)
				model = append([]frame{f}, model...)
			} else {
				d.pushBack(f)
				model = append(model, f)
			}
		case k == 2:
			got, want := d.popFront(), model[0]
			model = model[1:]
			if got != want {
				t.Fatalf("op %d: popFront = %+v, want %+v", op, got, want)
			}
		case k == 3:
			if got, want := *d.front(), model[0]; got != want {
				t.Fatalf("op %d: front = %+v, want %+v", op, got, want)
			}
		default:
			i := rng.Intn(len(model))
			d.removeAt(i)
			model = append(model[:i:i], model[i+1:]...)
		}
		check(op)
	}
}

// TestFrameDequeReuseAfterReset pins that reset keeps the ring's
// backing array so steady-state reuse never reallocates.
func TestFrameDequeReuseAfterReset(t *testing.T) {
	var d frameDeque
	for i := 0; i < 50; i++ {
		d.pushBack(frame{id: int64(i)})
	}
	ptr, c := &d.buf[0], cap(d.buf)
	d.reset()
	if d.len() != 0 {
		t.Fatalf("len after reset = %d", d.len())
	}
	for i := 0; i < c; i++ {
		d.pushBack(frame{id: int64(i)})
	}
	if &d.buf[0] != ptr || cap(d.buf) != c {
		t.Error("deque reallocated its backing array after reset")
	}
}
