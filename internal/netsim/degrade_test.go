package netsim

// Tests for the environment-coupled degradation wiring: the identity
// fast path (zero severity is byte-identical to no degradation at
// all), the throttle/brownout accounting against the compiled
// schedule, the degraded-mode policies, and the analytic
// cross-checks that anchor experiment E9.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/degrade"
	"sudc/internal/faults"
	"sudc/internal/obs"
	"sudc/internal/obs/latency"
	"sudc/internal/obs/trace"
	"sudc/internal/reliability"
	"sudc/internal/topo"
	"sudc/internal/workload"
)

// degradeBase is the shared degraded-run scenario: a small
// constellation over two full orbits of the default EO orbit (period
// ≈ 96 min), so every run crosses at least two eclipse windows.
func degradeBase() Config {
	c := DefaultConfig(workload.Suite[0])
	c.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	c.Workers = 5
	c.NeedWorkers = 4
	c.BatchSize = 4
	c.BatchTimeout = 30 * time.Second
	c.Duration = 4 * time.Hour
	c.Seed = 9
	return c
}

var degradeFaults = faults.Scenario{
	NodeMTTF:          2 * time.Hour,
	SEFIMTBE:          20 * time.Minute,
	SEFIRecovery:      30 * time.Second,
	ISLOutageMTBF:     30 * time.Minute,
	ISLOutageDuration: time.Minute,
}

// exports runs one config with obs and trace attached and returns the
// stats plus both observable byte streams.
func exports(t *testing.T, c Config) (Stats, string, string) {
	t.Helper()
	reg := obs.New()
	rec := trace.New(0)
	c.Obs = reg.Scope("netsim")
	c.Trace = rec
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	var jsonl bytes.Buffer
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	return s, reg.Snapshot().String(), jsonl.String()
}

func TestDegradeZeroSeverityByteIdentical(t *testing.T) {
	// Severity 0 compiles to an identity schedule, which buildDegrade
	// drops to nil: the run must be byte-identical — stats, metric
	// snapshot, and trace export — to a run with no Degrade profile at
	// all, faults included.
	c := degradeBase()
	c.Faults = degradeFaults
	c.RetryLimit = 3
	c.ShedThreshold = 40
	refStats, refSnap, refJSONL := exports(t, c)

	d := c
	p := degrade.COTSProfile(0)
	d.Degrade = &p
	s, snap, jsonl := exports(t, d)
	if s != refStats {
		t.Errorf("zero-severity stats differ:\n ref %+v\n got %+v", refStats, s)
	}
	if snap != refSnap {
		t.Error("zero-severity metric snapshot differs from degradation-free run")
	}
	if jsonl != refJSONL {
		t.Error("zero-severity trace export differs from degradation-free run")
	}
}

func TestDegradeConfigValidation(t *testing.T) {
	c := degradeBase()
	p := degrade.COTSProfile(0.5)
	c.Degrade = &p
	if err := c.Validate(); err != nil {
		t.Fatalf("valid degraded config rejected: %v", err)
	}

	bad := c
	bad.Degrade = nil
	bad.ThrottleShed = true
	if err := bad.Validate(); err == nil {
		t.Error("ThrottleShed accepted without a Degrade profile")
	}
	bad = c
	bad.Degrade = nil
	bad.DeferInEclipse = true
	if err := bad.Validate(); err == nil {
		t.Error("DeferInEclipse accepted without a Degrade profile")
	}
	bad = c
	bad.ThrottleShed = true
	bad.ShedThreshold = 0
	if err := bad.Validate(); err == nil {
		t.Error("ThrottleShed accepted without a shed threshold")
	}
	bad = c
	badProfile := degrade.COTSProfile(2)
	bad.Degrade = &badProfile
	if err := bad.Validate(); err == nil {
		t.Error("severity 2 profile accepted")
	}
}

func TestDegradeThrottleAccountingMatchesSchedule(t *testing.T) {
	// The run's throttle/brownout accounting must reproduce the
	// compiled schedule exactly: ThrottledTime is the total time with
	// RateMult < 1, BrownoutTime the total time with PowerFrac < 1, and
	// MeanRateMult the time-average of RateMult over the horizon.
	c := degradeBase()
	p := degrade.COTSProfile(1)
	c.Degrade = &p

	sched, err := degrade.Build(p, c.Duration)
	if err != nil {
		t.Fatal(err)
	}
	var rateInt, throttled, brownout float64
	for i := range sched.Phases {
		ph := &sched.Phases[i]
		end := sched.End(i)
		if end > sched.Horizon {
			end = sched.Horizon
		}
		dur := end - ph.Start
		rateInt += dur * ph.RateMult
		if ph.RateMult < 1 {
			throttled += dur
		}
		if ph.PowerFrac < 1 {
			brownout += dur
		}
	}
	if throttled == 0 || brownout == 0 {
		t.Fatalf("schedule exercises nothing: throttled=%v brownout=%v", throttled, brownout)
	}

	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ThrottledTime.Seconds(); got < throttled-1e-6 || got > throttled+1e-6 {
		t.Errorf("ThrottledTime = %v s, schedule says %v s", got, throttled)
	}
	if got := s.BrownoutTime.Seconds(); got < brownout-1e-6 || got > brownout+1e-6 {
		t.Errorf("BrownoutTime = %v s, schedule says %v s", got, brownout)
	}
	want := rateInt / sched.Horizon
	if got := s.MeanRateMult; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("MeanRateMult = %v, schedule integral says %v", got, want)
	}
	conserve(t, s)
}

func TestDegradeAvailabilityMonotoneInSeverity(t *testing.T) {
	// With deaths-only faults the death schedule is severity-invariant
	// (no SEFI draws, so the fault envelope never thins a stream) and
	// the browned worker set grows pointwise with severity, so per-run
	// availability must be monotonically non-increasing in severity —
	// exactly, not within a tolerance.
	c := degradeBase()
	c.Faults = faults.Scenario{NodeMTTF: 4 * time.Hour}
	prev := make([]float64, 0, 8)
	for i, sev := range []float64{0, 0.25, 0.5, 0.75, 1} {
		cc := c
		p := degrade.COTSProfile(sev)
		cc.Degrade = &p
		all, err := RunReplicas(cc, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			for _, s := range all {
				prev = append(prev, s.Availability)
			}
			continue
		}
		for r, s := range all {
			if s.Availability > prev[r] {
				t.Errorf("severity %v replica %d: availability %v exceeds previous severity's %v",
					sev, r, s.Availability, prev[r])
			}
			prev[r] = s.Availability
		}
	}
}

func TestDegradeZeroSeverityMatchesAnalyticAvailability(t *testing.T) {
	// E9's anchor row: at severity 0 the degraded sweep must reproduce
	// E7's analytic binomial cross-check — replica-mean availability
	// within 2% of reliability.MeanAvailability at the same
	// (n, need, horizon/MTTF).
	c := degradeBase()
	c.Duration = 2 * time.Hour
	c.Faults = faults.Scenario{NodeMTTF: 4 * time.Hour}
	p := degrade.COTSProfile(0)
	c.Degrade = &p
	all, err := RunReplicas(c, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range all {
		sum += s.Availability
	}
	measured := sum / float64(len(all))
	analytic, err := reliability.MeanAvailability(c.Workers, c.NeedWorkers,
		c.Duration.Seconds()/c.Faults.NodeMTTF.Seconds())
	if err != nil {
		t.Fatal(err)
	}
	if diff := measured - analytic; diff < -0.02 || diff > 0.02 {
		t.Errorf("measured availability %v vs analytic %v: |Δ| exceeds 2%%", measured, analytic)
	}
}

func TestDegradeBrownoutTraceAndIntervals(t *testing.T) {
	// A full-severity run must leave a complete environmental audit
	// trail: throttle phase events with the active multiplier, paired
	// brownout start/end events with the parked worker count and a
	// cause tag, and DegradedIntervals must recover both window kinds.
	c := degradeBase()
	p := degrade.COTSProfile(1)
	c.Degrade = &p
	rec := trace.New(0)
	c.Trace = rec
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.BrownoutTime == 0 {
		t.Fatal("no brownout time over two orbits")
	}
	events := rec.Events()
	var throttles, starts, ends int
	for _, e := range events {
		switch e.Kind {
		case trace.Throttle:
			throttles++
			if e.Mult >= 1 || e.Mult <= 0 {
				t.Errorf("throttle event with multiplier %v", e.Mult)
			}
		case trace.BrownoutStart:
			starts++
			if e.N <= 0 {
				t.Errorf("brownout start parked %d workers", e.N)
			}
			if !strings.HasPrefix(e.Cause, "brownout#") {
				t.Errorf("brownout cause %q lacks attribution tag", e.Cause)
			}
		case trace.BrownoutEnd:
			ends++
		}
	}
	if throttles == 0 || starts == 0 {
		t.Fatalf("degradation events missing: throttles=%d brownouts=%d", throttles, starts)
	}
	if ends != starts && ends != starts-1 {
		t.Errorf("brownout windows unbalanced: %d starts, %d ends", starts, ends)
	}

	horizon := c.Duration.Seconds()
	var throttleIvs, brownIvs int
	for _, iv := range latency.DegradedIntervals(events, horizon) {
		if iv.Start >= iv.End || iv.End > horizon {
			t.Errorf("malformed interval %+v", iv)
		}
		switch iv.Kind {
		case "throttle":
			throttleIvs++
		case "brownout":
			brownIvs++
		}
	}
	if throttleIvs == 0 || brownIvs == 0 {
		t.Errorf("DegradedIntervals recovered throttle=%d brownout=%d windows", throttleIvs, brownIvs)
	}
}

func TestDegradeDeferInEclipse(t *testing.T) {
	// With large batches the timeout path fires on partial batches;
	// DeferInEclipse pushes those timeouts past the eclipse window, so
	// deferred dispatches must be counted and frames still conserved.
	c := degradeBase()
	c.BatchSize = 64
	c.BatchTimeout = 20 * time.Second
	p := degrade.COTSProfile(1)
	c.Degrade = &p
	c.DeferInEclipse = true
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.BatchesDeferred == 0 {
		t.Error("no batch dispatches deferred across two eclipse windows")
	}
	conserve(t, s)

	base := c
	base.DeferInEclipse = false
	bs, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if bs.BatchesDeferred != 0 {
		t.Errorf("deferral disabled but %d batches deferred", bs.BatchesDeferred)
	}
	conserve(t, bs)
}

func TestDegradeThrottleShed(t *testing.T) {
	// Throttle-aware shedding scales the shed threshold down with the
	// active rate multiplier, so an overloaded throttled run sheds at
	// least as much — and here strictly more — than with the static
	// threshold.
	c := degradeBase()
	c.Constellation = constellation.Constellation{Satellites: 4, FramesPerMinute: 60}
	c.Workers = 2
	c.NeedWorkers = 2
	c.ShedThreshold = 50
	c.Duration = 2 * time.Hour
	p := degrade.COTSProfile(1)
	c.Degrade = &p

	static, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.ThrottleShed = true
	scaled, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.FramesShed <= static.FramesShed {
		t.Errorf("throttle-aware shedding shed %d frames, static threshold %d — want strictly more",
			scaled.FramesShed, static.FramesShed)
	}
	conserve(t, static)
	conserve(t, scaled)
}

func TestDegradeStarTopologyMatchesLegacy(t *testing.T) {
	// The degraded Star graph must reproduce the degraded legacy star
	// exactly, faults included — the topology path threads the same
	// schedule through resetTopo.
	legacy := DefaultConfig(workload.Suite[0])
	legacy.Duration = 4 * time.Hour
	legacy.Faults = topoFaults
	legacy.RetryLimit = 4
	legacy.ShedThreshold = 200
	p := degrade.COTSProfile(0.75)
	legacy.Degrade = &p

	star := TopologyConfig(workload.Suite[0], topo.Star(legacy.Constellation.Satellites, legacy.Workers))
	star.Duration = legacy.Duration
	star.Faults = legacy.Faults
	star.RetryLimit = legacy.RetryLimit
	star.ShedThreshold = legacy.ShedThreshold
	star.Degrade = legacy.Degrade

	lreg, treg := obs.New(), obs.New()
	legacy.Obs = lreg
	star.Obs = treg
	ls, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Run(star)
	if err != nil {
		t.Fatal(err)
	}
	if ls != ts {
		t.Errorf("degraded stats differ:\n legacy %+v\n star   %+v", ls, ts)
	}
	if l, s := lreg.Snapshot().String(), treg.Snapshot().String(); l != s {
		t.Error("degraded observability snapshots differ between legacy and Star topology")
	}
	if ts.ThrottledTime == 0 || ts.BrownoutTime == 0 {
		t.Errorf("degradation not exercised: %+v", ts)
	}
	conserve(t, ts)
}
