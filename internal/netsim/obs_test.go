package netsim

import (
	"math"
	"testing"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/faults"
	"sudc/internal/obs"
)

// outageConfig is a small configuration whose ISL spends most of the run
// down, so head-of-line frames accumulate many failed attempts.
func outageConfig(t *testing.T) Config {
	t.Helper()
	c := DefaultConfig(mustApp(t, "Flood Detection"))
	c.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	c.Duration = time.Hour
	c.Faults = faults.Scenario{
		ISLOutageMTBF:     10 * time.Minute,
		ISLOutageDuration: 20 * time.Minute,
	}
	return c
}

func TestUnlimitedRetriesSaturateBackoffAtCap(t *testing.T) {
	// Regression for the retry-backoff growth path: with RetryLimit 0 a
	// head-of-line frame can fail hundreds of times across a long outage,
	// and the exponential 2^(tries-1) must saturate at the cap instead of
	// overflowing float64. A tiny base and cap force many hundreds of
	// attempts per outage.
	c := outageConfig(t)
	c.RetryLimit = 0 // unlimited
	c.RetryBackoff = time.Millisecond
	c.RetryBackoffCap = 100 * time.Millisecond
	reg := obs.New()
	c.Obs = reg

	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.FramesRetried < 2000 {
		t.Errorf("long outages with a 100ms cap must retry thousands of times, got %d", s.FramesRetried)
	}
	if s.FramesLost != 0 {
		t.Errorf("unlimited retries must not lose frames, lost %d", s.FramesLost)
	}
	if got := s.FramesProcessed + s.Backlog + s.FramesShed + s.FramesLost; got != s.FramesGenerated {
		t.Errorf("conservation under saturated retries: %d ≠ %d generated", got, s.FramesGenerated)
	}
	if s.Availability < 0 || s.Availability > 1 || math.IsNaN(s.Availability) {
		t.Errorf("availability corrupted: %v", s.Availability)
	}
	if s.MeanLatency < 0 || s.MeanLatency > c.Duration {
		t.Errorf("latency corrupted by backoff math: mean %v", s.MeanLatency)
	}

	// Every observed delay must stay within [base, cap]: a single +Inf or
	// NaN would show up as a corrupted histogram extremum.
	h := findHistogram(t, reg, "retry/backoff_s")
	if h.Count < 2000 {
		t.Errorf("backoff histogram saw %d delays, want one per retry ≥ 2000", h.Count)
	}
	base, cap := c.RetryBackoff.Seconds(), c.RetryBackoffCap.Seconds()
	if h.Min < base || h.Max > cap {
		t.Errorf("backoff delays [%v, %v] escape [base=%v, cap=%v]", h.Min, h.Max, base, cap)
	}
	if h.Max != cap {
		t.Errorf("hundreds of attempts must reach the cap: max %v, cap %v", h.Max, cap)
	}
}

func TestShedThresholdEdges(t *testing.T) {
	// Pin both edge semantics: 0 disables shedding entirely (the zero
	// value stays backward compatible), and ShedAll is an explicit
	// threshold of zero that shreds every queued frame.
	overload := func(shed int) Stats {
		c := DefaultConfig(mustApp(t, "Panoptic Segmentation"))
		c.Duration = 30 * time.Minute
		c.ShedThreshold = shed
		s, err := Run(c)
		if err != nil {
			t.Fatalf("shed=%d: %v", shed, err)
		}
		return s
	}

	disabled := overload(0)
	if disabled.FramesShed != 0 {
		t.Errorf("ShedThreshold 0 must disable shedding, shed %d", disabled.FramesShed)
	}
	if disabled.Backlog == 0 {
		t.Error("overload without shedding must build a backlog")
	}

	all := overload(ShedAll)
	if all.FramesProcessed != 0 {
		t.Errorf("ShedAll must starve the workers: processed %d", all.FramesProcessed)
	}
	if all.FramesShed == 0 {
		t.Error("ShedAll must shed every frame that lands")
	}
	if all.MaxInputQueue > 1 {
		t.Errorf("ShedAll must keep the queue empty: peak %d", all.MaxInputQueue)
	}
	if got := all.FramesProcessed + all.Backlog + all.FramesShed + all.FramesLost; got != all.FramesGenerated {
		t.Errorf("conservation under ShedAll: %d ≠ %d generated", got, all.FramesGenerated)
	}
}

func TestValidateAcceptsBoundaryValues(t *testing.T) {
	// Each boundary must validate AND behave correctly when simulated —
	// acceptance alone would not catch off-by-one handling inside Run.
	t.Run("insight fraction 0", func(t *testing.T) {
		c := DefaultConfig(mustApp(t, "Air Pollution"))
		c.InsightFraction = 0
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		s, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if s.InsightsDownlinked != 0 {
			t.Errorf("fraction 0 must downlink nothing, got %d", s.InsightsDownlinked)
		}
	})
	t.Run("insight fraction 1", func(t *testing.T) {
		c := DefaultConfig(mustApp(t, "Air Pollution"))
		c.InsightFraction = 1
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		s, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if s.InsightsDownlinked != s.FramesProcessed {
			t.Errorf("fraction 1 must downlink every processed frame: %d of %d",
				s.InsightsDownlinked, s.FramesProcessed)
		}
	})
	t.Run("need equals workers", func(t *testing.T) {
		c := DefaultConfig(mustApp(t, "Air Pollution"))
		c.NeedWorkers = c.Workers
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		s, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if s.Availability != 1 {
			t.Errorf("fault-free run with need == workers must be fully available, got %v", s.Availability)
		}
	})
	t.Run("backoff equals cap", func(t *testing.T) {
		c := outageConfig(t)
		c.RetryBackoff = 50 * time.Millisecond
		c.RetryBackoffCap = 50 * time.Millisecond
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		reg := obs.New()
		c.Obs = reg
		if _, err := Run(c); err != nil {
			t.Fatal(err)
		}
		// With base == cap every delay is exactly the cap, from the very
		// first attempt.
		h := findHistogram(t, reg, "retry/backoff_s")
		if h.Count == 0 {
			t.Fatal("outages must produce retries")
		}
		if want := c.RetryBackoffCap.Seconds(); h.Min != want || h.Max != want {
			t.Errorf("base == cap must pin every delay to %v, got [%v, %v]", want, h.Min, h.Max)
		}
	})
}

func TestObsStreamRecordsFaultedRun(t *testing.T) {
	c := faultConfig(t)
	c.Faults.ISLOutageMTBF = 20 * time.Minute
	c.Faults.ISLOutageDuration = 2 * time.Minute
	run := func() (Stats, obs.Snapshot) {
		reg := obs.New()
		cc := c
		cc.Obs = reg
		s, err := Run(cc)
		if err != nil {
			t.Fatal(err)
		}
		return s, reg.Snapshot()
	}
	s, snap := run()

	counters := map[string]int64{}
	for _, cv := range snap.Counters {
		counters[cv.Name] = cv.Value
	}
	for name, want := range map[string]int{
		"frames/generated": s.FramesGenerated,
		"frames/processed": s.FramesProcessed,
		"frames/retried":   s.FramesRetried,
	} {
		if counters[name] != int64(want) {
			t.Errorf("counter %s = %d, want %d from stats", name, counters[name], want)
		}
	}
	if counters["events/frame_ready"] != int64(s.FramesGenerated) {
		t.Errorf("events/frame_ready = %d, want %d", counters["events/frame_ready"], s.FramesGenerated)
	}

	series := map[string]int{}
	for _, sv := range snap.Series {
		series[sv.Name] = len(sv.Points)
	}
	wantPoints := int(c.Duration / DefaultSampleEvery)
	for _, name := range []string{"queue/depth", "isl/sats-sudc", "backlog", "availability", "workers/effective", "retries", "shed"} {
		if series[name] != wantPoints {
			t.Errorf("series %s has %d points, want %d (one per simulated minute)", name, series[name], wantPoints)
		}
	}

	// The retried and shed series sample per-interval rates, not the
	// cumulative counters: the samples must sum back to the run totals
	// (and would wildly overshoot them if recorded cumulatively).
	if s.FramesRetried == 0 {
		t.Fatal("outage run must retry frames")
	}
	for name, want := range map[string]int{"retries": s.FramesRetried, "shed": s.FramesShed} {
		var sum float64
		for _, sv := range snap.Series {
			if sv.Name == name {
				for _, p := range sv.Points {
					sum += p.V
				}
			}
		}
		if int(sum) != want {
			t.Errorf("series %s rate samples sum to %v, want cumulative total %d", name, sum, want)
		}
	}

	// The metrics themselves must honor the determinism contract.
	if _, snap2 := run(); snap2.String() != snap.String() {
		t.Error("identical runs must produce byte-identical snapshots")
	}

	// A registry-free run must be unaffected (and remains the fast path).
	plain, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if plain != s {
		t.Error("attaching a registry must not change simulation results")
	}
}

func findHistogram(t *testing.T, reg *obs.Registry, name string) obs.HistogramValue {
	t.Helper()
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("histogram %q not recorded", name)
	return obs.HistogramValue{}
}
