package netsim

import (
	"math/rand"
	"testing"
	"time"

	"sudc/internal/faults"
	"sudc/internal/obs"
	"sudc/internal/topo"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// topoFaults is a scenario exercising all three fault processes at
// rates that bite within a 30-minute run.
var topoFaults = faults.Scenario{
	NodeMTTF:          3 * time.Hour,
	SEFIMTBE:          2 * time.Hour,
	SEFIRecovery:      5 * time.Minute,
	ISLOutageMTBF:     time.Hour,
	ISLOutageDuration: 2 * time.Minute,
}

// conserve checks the frame-conservation identity on merged stats.
func conserve(t *testing.T, s Stats) {
	t.Helper()
	if got := s.FramesProcessed + s.FramesShed + s.FramesLost + s.Backlog; got != s.FramesGenerated {
		t.Errorf("conservation broken: processed+shed+lost+backlog = %d, generated = %d", got, s.FramesGenerated)
	}
}

func TestStarTopologyMatchesLegacy(t *testing.T) {
	// The explicit Star graph must reproduce the legacy implicit star
	// exactly — same Stats, same observability stream — because both
	// compile to one source, one zero-delay link, and one SµDC fed by
	// the same RNG stream. Faulted and fault-free.
	for _, tc := range []struct {
		name   string
		faults faults.Scenario
	}{
		{"fault-free", faults.Scenario{}},
		{"faulted", topoFaults},
	} {
		t.Run(tc.name, func(t *testing.T) {
			legacy := DefaultConfig(workload.Suite[0])
			legacy.Duration = time.Hour
			legacy.Faults = tc.faults
			legacy.RetryLimit = 4
			legacy.ShedThreshold = 200

			star := TopologyConfig(workload.Suite[0], topo.Star(legacy.Constellation.Satellites, legacy.Workers))
			star.Duration = legacy.Duration
			star.Faults = tc.faults
			star.RetryLimit = legacy.RetryLimit
			star.ShedThreshold = legacy.ShedThreshold

			lreg, treg := obs.New(), obs.New()
			legacy.Obs = lreg
			star.Obs = treg
			ls, err := Run(legacy)
			if err != nil {
				t.Fatal(err)
			}
			ts, err := Run(star)
			if err != nil {
				t.Fatal(err)
			}
			if ls != ts {
				t.Errorf("stats differ:\n legacy %+v\n star   %+v", ls, ts)
			}
			if l, s := lreg.Snapshot().String(), treg.Snapshot().String(); l != s {
				t.Error("observability snapshots differ between legacy and Star topology")
			}
			conserve(t, ts)
		})
	}
}

func TestWalkerCrossCellTraffic(t *testing.T) {
	// Walker with an SµDC every other plane: half the planes relay all
	// their frames across cell boundaries, so the sharded runner must
	// carry real cross-cell traffic and still conserve frames.
	g, err := topo.Walker(4, 16, 8, 2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c := TopologyConfig(workload.Suite[0], g)
	c.Duration = 30 * time.Minute
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, s)
	if s.CrossShardFrames == 0 {
		t.Error("no cross-shard frames despite relay planes")
	}
	// Every generated frame from the two relay planes crosses exactly
	// one boundary, and no others do.
	if want := s.FramesGenerated / 2; s.CrossShardFrames < want*9/10 || s.CrossShardFrames > want {
		t.Errorf("cross-shard frames = %d, want ≈ half of %d", s.CrossShardFrames, s.FramesGenerated)
	}
	if s.FramesProcessed == 0 || !s.KeptUp {
		t.Errorf("relay planes not being served: %+v", s)
	}
}

func TestShardCountInvariance(t *testing.T) {
	// The tentpole determinism gate at package level: Stats are
	// byte-identical for shard counts 1, 2, and 8 (the root-level
	// determinism test additionally pins obs and trace bytes).
	g, err := topo.Walker(4, 16, 8, 2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c := TopologyConfig(workload.Suite[0], g)
	c.Duration = 30 * time.Minute
	c.Faults = topoFaults
	c.RetryLimit = 4
	c.ShedThreshold = 200
	c.Shards = 1
	ref, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range []int{2, 8} {
		cc := c
		cc.Shards = sh
		s, err := Run(cc)
		if err != nil {
			t.Fatal(err)
		}
		if s != ref {
			t.Errorf("shards=%d stats differ:\n ref %+v\n got %+v", sh, ref, s)
		}
	}
}

func TestClustersPerEdgeObservability(t *testing.T) {
	// Dense clusters give every satellite its own FSO link: the
	// per-edge queue-depth series must appear one per edge under each
	// cell's scope.
	g, err := topo.Clusters(2, 4, 4, units.GbpsOf(10), 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	c := TopologyConfig(workload.Suite[0], g)
	c.Duration = 30 * time.Minute
	reg := obs.New()
	c.Obs = reg
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, s)
	if s.CrossShardFrames != 0 {
		t.Errorf("independent clusters produced %d cross-shard frames", s.CrossShardFrames)
	}
	series := map[string]int{}
	for _, sv := range reg.Snapshot().Series {
		series[sv.Name] = len(sv.Points)
	}
	for _, name := range []string{
		"c000/isl/c00/sat00-c00/hub",
		"c000/isl/c00/sat03-c00/hub",
		"c001/isl/c01/sat00-c01/hub",
	} {
		if series[name] == 0 {
			t.Errorf("per-edge series %q missing from snapshot", name)
		}
	}
}

func TestRelayCellsCarryNoWorkers(t *testing.T) {
	// An SµDC-less relay plane has zero workers; its availability must
	// not drag the merged availability (weight zero), and its frames
	// must still be processed elsewhere.
	g, err := topo.Walker(2, 8, 8, 2, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c := TopologyConfig(workload.Suite[0], g)
	c.Duration = 30 * time.Minute
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, s)
	if s.Availability != 1 {
		t.Errorf("fault-free availability = %v, want 1 (relay cell must weigh zero)", s.Availability)
	}
	if s.FramesProcessed == 0 {
		t.Error("relay plane frames never processed")
	}
}

func TestTopologyConfigValidation(t *testing.T) {
	g := topo.Star(4, 2)
	c := TopologyConfig(workload.Suite[0], g)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid topology config rejected: %v", err)
	}
	bad := c
	bad.NeedWorkers = 2
	if err := bad.Validate(); err == nil {
		t.Error("NeedWorkers accepted in topology mode")
	}
	bad = c
	bad.Shards = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative shard count accepted")
	}
	bad = c
	bad.Topology = &topo.Graph{}
	if err := bad.Validate(); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := RunWithRand(c, rand.New(rand.NewSource(1))); err == nil {
		t.Error("RunWithRand accepted a topology config")
	}
}

// TestCrossShardWindowZeroAllocs pins the cross-shard message path
// allocation-free in steady state: once the outbox, pending buffer,
// arrival slots, and per-cell arenas are warm, a synchronization
// window performs zero allocations (single-goroutine execution; the
// fan-out path additionally pays par's fixed goroutine setup).
func TestCrossShardWindowZeroAllocs(t *testing.T) {
	g, err := topo.Walker(4, 16, 8, 2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c := TopologyConfig(workload.Suite[0], g)
	c.Duration = 12 * time.Hour // long enough that measurement never hits the horizon
	c.Shards = 1
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	plans, err := compile(c.Topology)
	if err != nil {
		t.Fatal(err)
	}
	r, err := newShardRunner(c, plans, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if !r.window() {
			t.Fatal("run ended during warm-up")
		}
	}
	if r.sims[0].crossRecv == 0 && r.sims[1].crossRecv == 0 {
		t.Fatal("warm-up produced no cross-shard traffic")
	}
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < 10; i++ {
			if !r.window() {
				t.Fatal("run ended mid-measurement")
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state window allocates %.2f times per 10 windows, want 0", avg)
	}
}
