package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"sudc/internal/faults"
	"sudc/internal/obs/trace"
	"sudc/internal/units"
)

// randBuf batches Float64 draws from the run's RNG stream. Draws are
// consumed in exactly the order the simulator requests them — buffering
// only moves the underlying generator calls out of the per-event path —
// so the value sequence, and therefore every golden, is unchanged. The
// stream may be advanced past the last consumed draw at the end of a
// run, which is why RunWithRand's contract gives the RNG to the run.
type randBuf struct {
	src  *rand.Rand
	i, n int
	buf  [512]float64
}

func (r *randBuf) reset(src *rand.Rand) {
	r.src, r.i, r.n = src, 0, 0
}

func (r *randBuf) Float64() float64 {
	if r.i >= r.n {
		for j := range r.buf {
			r.buf[j] = r.src.Float64()
		}
		r.i, r.n = 0, len(r.buf)
	}
	v := r.buf[r.i]
	r.i++
	return v
}

// simulator is one run's entire state. The previous implementation kept
// this state in ~30 locals captured by per-purpose closures inside Run;
// hoisting it into a struct makes the loop body allocation-free, lets a
// sync.Pool recycle every backing array across runs (RunReplicas reuses
// queues, heap, and latency buffers instead of reallocating them per
// replica), and gives tests a stepping API to pin the zero-allocation
// steady state with testing.AllocsPerRun.
type simulator struct {
	// Derived per-run constants.
	c            Config
	horizon      float64
	framePeriod  float64
	islTime      float64
	nodePixSec   float64
	framePixels  float64
	need         int
	backoffBase  float64
	backoffCap   float64
	capDoublings int
	shedEnabled  bool
	shedLimit    int
	batchTimeout float64

	rng randBuf
	// ownRand is the pooled RNG used by Run (reseeded in place per run);
	// RunWithRand substitutes the caller's stream instead.
	ownRand *rand.Rand

	q            eventHeap
	seq          int
	islQueue     frameDeque
	inputQueue   frameDeque
	islSending   bool
	islDown      bool
	islGen       int
	islSendStart float64
	retryArmed   bool
	islBusySum   float64
	islDownSum   float64
	workers      []workerState
	freeBatches  [][]frame // batch free-list, recycled on frame completion
	effective    int
	lastT        float64
	upTime       float64
	degradedTime float64
	downWS       float64
	busySum      float64
	timeoutArmed bool
	stats        Stats
	latencies    []float64
	now          float64

	rec     *recorder
	evCount [len(eventNames)]int64

	tr          *trace.Recorder
	frameID     int64
	outageIdx   int
	outageCause string
}

// simPool recycles simulator state — heap, ring buffers, latency and
// batch arrays — across runs, so RunReplicas and repeated sweeps reach
// a steady state with no per-run arena growth.
var simPool = sync.Pool{New: func() any { return new(simulator) }}

func getSim() *simulator { return simPool.Get().(*simulator) }
func putSim(s *simulator) {
	// Drop references owned by the caller so the pool never retains a
	// registry, recorder, or foreign RNG across runs. ownRand stays: the
	// simulator owns it and reseeds it in place.
	s.c = Config{}
	s.rec = nil
	s.tr = nil
	s.rng.src = nil
	simPool.Put(s)
}

// reset prepares the pooled simulator for one run, reusing every backing
// array that is already large enough.
func (s *simulator) reset(c Config, sched faults.Schedule, src *rand.Rand) {
	s.c = c
	s.horizon = c.Duration.Seconds()
	s.framePeriod = 60 / c.Constellation.FramesPerMinute
	frameBits := c.App.FrameBits() * (1 - c.Constellation.FilterRate)
	s.islTime = frameBits / float64(c.ISLRate)
	s.nodePixSec = c.App.KPixelPerJoule * 1e3 * float64(c.WorkerPower)
	s.framePixels = c.App.FrameMPixels * 1e6 * (1 - c.Constellation.FilterRate)

	s.need = c.NeedWorkers
	if s.need == 0 {
		s.need = c.Workers
	}
	s.backoffBase = c.RetryBackoff.Seconds()
	if s.backoffBase <= 0 {
		s.backoffBase = 2
	}
	s.backoffCap = c.RetryBackoffCap.Seconds()
	if s.backoffCap < s.backoffBase {
		s.backoffCap = 60
	}
	if s.backoffCap < s.backoffBase {
		s.backoffCap = s.backoffBase
	}
	// capDoublings is the attempt count at which the exponential backoff
	// saturates at its cap. Clamping the exponent *before* the doubling
	// is applied guards the float64 math: under RetryLimit 0 a frame can
	// accumulate thousands of failed attempts across a long ISL outage,
	// and an unguarded 2^(tries-1) overflows to +Inf — one zero or NaN
	// ingredient away from a corrupted event timestamp that would break
	// the event-queue ordering.
	s.capDoublings = int(math.Ceil(math.Log2(s.backoffCap / s.backoffBase)))
	if s.capDoublings < 0 {
		s.capDoublings = 0
	}
	s.shedEnabled = c.ShedThreshold != 0
	s.shedLimit = c.ShedThreshold
	if c.ShedThreshold == ShedAll {
		s.shedLimit = 0
	}
	s.batchTimeout = c.BatchTimeout.Seconds()

	s.rng.reset(src)

	// Recycle batch slices still attached to the previous run's workers
	// before the worker slice is reused.
	for i := range s.workers {
		if b := s.workers[i].batch; b != nil {
			s.freeBatches = append(s.freeBatches, b[:0])
			s.workers[i].batch = nil
		}
	}
	if cap(s.workers) >= c.Workers {
		s.workers = s.workers[:c.Workers]
		for i := range s.workers {
			s.workers[i] = workerState{}
		}
	} else {
		s.workers = make([]workerState, c.Workers)
	}

	s.q.reset()
	s.q.grow(c.Constellation.Satellites + 4*c.Workers +
		len(sched.Deaths) + len(sched.Hangs) + len(sched.Outages) + 64)
	s.seq = 0
	s.islQueue.reset()
	s.inputQueue.reset()
	s.islSending, s.islDown = false, false
	s.islGen = 0
	s.islSendStart = 0
	s.retryArmed = false
	s.islBusySum, s.islDownSum = 0, 0
	s.effective = c.Workers
	s.lastT, s.upTime, s.degradedTime, s.downWS, s.busySum = 0, 0, 0, 0, 0
	s.timeoutArmed = false
	s.stats = Stats{}
	// Pre-size the latency buffer for the worst-case frame count (5%
	// jitter bound), so steady-state appends never reallocate.
	maxFrames := int(float64(c.Constellation.Satellites)*s.horizon/(s.framePeriod*0.95)) +
		c.Constellation.Satellites + 16
	if cap(s.latencies) < maxFrames {
		s.latencies = make([]float64, 0, maxFrames)
	} else {
		s.latencies = s.latencies[:0]
	}
	s.now = 0

	s.rec = nil
	for i := range s.evCount {
		s.evCount[i] = 0
	}
	if c.Obs != nil {
		s.rec = newRecorder(c.Obs, c.SampleEvery, s)
	}

	// Frame-lineage flight recording. tr stays nil when tracing is off,
	// so the hot loop pays one nil check per lifecycle point. Frame IDs
	// are assigned in capture order and outage windows are numbered in
	// start order — both pure functions of simulated time.
	s.tr = c.Trace
	s.frameID = 0
	s.outageIdx = 0
	s.outageCause = ""

	// Seed per-satellite frame generation with random phase.
	for sat := 0; sat < c.Constellation.Satellites; sat++ {
		s.push(event{at: s.rng.Float64() * s.framePeriod, kind: evFrameReady, who: sat})
	}
	// Inject the fault schedule.
	for w, death := range sched.Deaths {
		if death <= s.horizon {
			s.push(event{at: death, kind: evWorkerDeath, who: w})
		}
	}
	for _, hg := range sched.Hangs {
		s.push(event{at: hg.At, kind: evSEFIStart, who: hg.Node, dur: hg.Recovery})
	}
	for _, o := range sched.Outages {
		s.push(event{at: o.Start, kind: evOutageStart, dur: o.Duration})
	}
}

func (s *simulator) push(e event) {
	s.seq++
	e.seq = s.seq
	s.q.push(e)
}

// getBatch takes a frame slice from the free-list (or allocates one
// during warm-up).
func (s *simulator) getBatch() []frame {
	if n := len(s.freeBatches); n > 0 {
		b := s.freeBatches[n-1]
		s.freeBatches = s.freeBatches[:n-1]
		if cap(b) >= s.c.BatchSize {
			return b[:0]
		}
	}
	return make([]frame, 0, s.c.BatchSize)
}

// putBatch recycles a finished batch's slice.
func (s *simulator) putBatch(b []frame) {
	s.freeBatches = append(s.freeBatches, b[:0])
}

// accrue integrates the availability accumulators up to time t.
func (s *simulator) accrue(t float64) {
	if dt := t - s.lastT; dt > 0 {
		if s.effective >= s.need {
			s.upTime += dt
		}
		if s.effective < s.c.Workers {
			s.degradedTime += dt
		}
		s.downWS += dt * float64(s.c.Workers-s.effective)
	}
	s.lastT = t
}

func (s *simulator) recount() {
	s.effective = 0
	for i := range s.workers {
		if !s.workers[i].dead && !s.workers[i].hung {
			s.effective++
		}
	}
}

// sampleState is the simulator state visible to the series sampler at
// simulated instant t.
func (s *simulator) sampleState(t float64) sampleState {
	up := s.upTime
	if s.effective >= s.need && t > s.lastT {
		up += t - s.lastT
	}
	avail := 1.0
	if t > 0 {
		avail = up / t
	}
	return sampleState{
		t:          t,
		inputQueue: s.inputQueue.len(),
		islQueue:   s.islQueue.len(),
		backlog: s.stats.FramesGenerated - s.stats.FramesProcessed -
			s.stats.FramesShed - s.stats.FramesLost,
		effective:    s.effective,
		availability: avail,
		retried:      s.stats.FramesRetried,
		shed:         s.stats.FramesShed,
	}
}

func (s *simulator) backoff(tries int) float64 {
	k := tries - 1
	if k >= s.capDoublings {
		return s.backoffCap
	}
	d := math.Ldexp(s.backoffBase, k)
	if d > s.backoffCap {
		d = s.backoffCap
	}
	return d
}

// failHead records a failed transmission attempt for the head frame:
// retry after backoff, or drop it past the retry limit.
func (s *simulator) failHead() {
	f := s.islQueue.front()
	f.tries++
	if s.c.RetryLimit > 0 && f.tries > s.c.RetryLimit {
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.Lost, Frame: f.id,
				Node: -1, Attempt: f.tries, Cause: s.outageCause})
		}
		s.islQueue.popFront()
		s.stats.FramesLost++
		return
	}
	s.stats.FramesRetried++
	s.retryArmed = true
	delay := s.backoff(f.tries)
	if s.rec != nil {
		s.rec.backoff.Observe(delay)
	}
	if s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.Retry, Frame: f.id,
			Node: -1, Attempt: f.tries, Backoff: delay, Cause: s.outageCause})
	}
	s.push(event{at: s.now + delay, kind: evISLRetry})
}

// attemptISL starts the head frame's transfer, or fails it into backoff
// when the link is down.
func (s *simulator) attemptISL() {
	for !s.islSending && !s.retryArmed && s.islQueue.len() > 0 {
		if s.islDown {
			s.failHead() // arms a retry (exits loop) or drops the head
			continue
		}
		s.islSending = true
		s.islGen++
		s.islSendStart = s.now
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.ISLSendStart,
				Frame: s.islQueue.front().id, Node: -1})
		}
		s.push(event{at: s.now + s.islTime, kind: evISLDone, gen: s.islGen})
		return
	}
}

// addToInput lands a frame in the batching queue, shedding the
// lowest-value frame when the queue outgrows the threshold.
func (s *simulator) addToInput(f frame) {
	s.inputQueue.pushBack(f)
	if s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.Enqueued, Frame: f.id, Node: -1})
	}
	if s.shedEnabled && s.inputQueue.len() > s.shedLimit {
		low := 0
		for i := 1; i < s.inputQueue.len(); i++ {
			if s.inputQueue.at(i).value < s.inputQueue.at(low).value {
				low = i
			}
		}
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.Shed,
				Frame: s.inputQueue.at(low).id, Node: -1})
		}
		s.inputQueue.removeAt(low)
		s.stats.FramesShed++
	}
	if s.inputQueue.len() > s.stats.MaxInputQueue {
		s.stats.MaxInputQueue = s.inputQueue.len()
	}
}

// freeWorker returns the lowest-index dispatchable worker, for
// deterministic worker selection.
func (s *simulator) freeWorker() int {
	for i := range s.workers {
		if !s.workers[i].dead && !s.workers[i].hung && !s.workers[i].busy {
			return i
		}
	}
	return -1
}

func (s *simulator) dispatch(force bool) {
	for s.inputQueue.len() >= s.c.BatchSize || (force && s.inputQueue.len() > 0) {
		wi := s.freeWorker()
		if wi < 0 {
			break
		}
		n := s.c.BatchSize
		if n > s.inputQueue.len() {
			n = s.inputQueue.len()
		}
		batch := s.getBatch()
		for i := 0; i < n; i++ {
			batch = append(batch, s.inputQueue.popFront())
		}
		w := &s.workers[wi]
		service := float64(n) * s.framePixels / s.nodePixSec
		s.busySum += service
		w.busy = true
		w.batch = batch
		w.gen++
		w.doneAt = s.now + service
		if s.tr != nil {
			for _, f := range batch {
				s.tr.Record(trace.Event{T: s.now, Kind: trace.Dispatched, Frame: f.id, Node: wi})
			}
			s.tr.Record(trace.Event{T: s.now, Kind: trace.ComputeStart, Node: wi, N: n})
		}
		s.push(event{at: w.doneAt, kind: evBatchDone, who: wi, gen: w.gen})
	}
	if s.inputQueue.len() > 0 && !s.timeoutArmed {
		s.timeoutArmed = true
		s.push(event{at: s.now + s.batchTimeout, kind: evBatchingOut})
	}
}

// step pops and applies one event. It returns false once the queue is
// empty or the next event lies past the horizon — the run is over.
func (s *simulator) step() bool {
	if s.q.len() == 0 || s.q.a[0].at > s.horizon {
		return false
	}
	e := s.q.pop()
	if s.rec != nil {
		s.rec.catchUp(e.at)
	}
	s.now = e.at
	s.accrue(e.at)
	s.evCount[e.kind]++
	switch e.kind {
	case evFrameReady:
		s.stats.FramesGenerated++
		s.frameID++
		s.islQueue.pushBack(frame{id: s.frameID, born: s.now, value: s.rng.Float64()})
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.FrameCaptured,
				Frame: s.frameID, Node: e.who})
		}
		s.attemptISL()
		// Next frame from this satellite, with 5% timing jitter.
		jitter := 1 + 0.1*(s.rng.Float64()-0.5)
		s.push(event{at: s.now + s.framePeriod*jitter, kind: evFrameReady, who: e.who})

	case evISLDone:
		if e.gen != s.islGen || !s.islSending {
			break // transfer aborted by an outage
		}
		s.islSending = false
		s.islBusySum += s.now - s.islSendStart
		f := s.islQueue.popFront()
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.ISLSendEnd, Frame: f.id, Node: -1})
		}
		s.addToInput(f)
		s.attemptISL()
		s.dispatch(false)

	case evISLRetry:
		s.retryArmed = false
		s.attemptISL()

	case evOutageStart:
		s.islDown = true
		s.outageIdx++
		s.outageCause = ""
		if s.tr != nil {
			s.outageCause = fmt.Sprintf("isl-outage#%d", s.outageIdx)
			s.tr.Record(trace.Event{T: s.now, Kind: trace.OutageStart,
				Node: -1, Dur: e.dur, Cause: s.outageCause})
		}
		end := s.now + e.dur
		if clip := math.Min(end, s.horizon); clip > s.now {
			s.islDownSum += clip - s.now
		}
		s.push(event{at: end, kind: evOutageEnd})
		if s.islSending {
			// Abort the in-flight transfer; the head frame retries.
			s.islSending = false
			s.islGen++
			s.islBusySum += s.now - s.islSendStart
			if s.tr != nil {
				s.tr.Record(trace.Event{T: s.now, Kind: trace.ISLSendEnd,
					Frame: s.islQueue.front().id, Node: -1, Cause: s.outageCause})
			}
			s.failHead()
			s.attemptISL()
		}

	case evOutageEnd:
		s.islDown = false
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.OutageEnd,
				Node: -1, Cause: s.outageCause})
		}
		s.attemptISL()

	case evWorkerDeath:
		w := &s.workers[e.who]
		if w.dead {
			break
		}
		w.dead = true
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.NodeDeath, Node: e.who})
		}
		if w.busy {
			// The batch is stranded: return its frames to the head of the
			// queue for re-dispatch.
			w.busy = false
			w.gen++
			s.busySum -= w.doneAt - s.now
			s.stats.FramesRedispatched += len(w.batch)
			if s.tr != nil {
				cause := fmt.Sprintf("node-death#%d", e.who)
				for _, f := range w.batch {
					s.tr.Record(trace.Event{T: s.now, Kind: trace.Enqueued,
						Frame: f.id, Node: -1, Cause: cause})
				}
			}
			for i := len(w.batch) - 1; i >= 0; i-- {
				s.inputQueue.pushFront(w.batch[i])
			}
			if s.inputQueue.len() > s.stats.MaxInputQueue {
				s.stats.MaxInputQueue = s.inputQueue.len()
			}
			s.putBatch(w.batch)
			w.batch = nil
		}
		s.recount()
		s.dispatch(false)

	case evSEFIStart:
		w := &s.workers[e.who]
		if w.dead || w.hung {
			break
		}
		w.hung = true
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.SEFIStart, Node: e.who, Dur: e.dur})
		}
		if w.busy {
			// The watchdog reboots the node and the batch resumes:
			// completion slips by the recovery time.
			w.gen++
			w.doneAt += e.dur
			s.push(event{at: w.doneAt, kind: evBatchDone, who: e.who, gen: w.gen})
		}
		s.push(event{at: s.now + e.dur, kind: evSEFIEnd, who: e.who})
		s.recount()

	case evSEFIEnd:
		w := &s.workers[e.who]
		if w.dead || !w.hung {
			break
		}
		w.hung = false
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.SEFIEnd, Node: e.who})
		}
		s.recount()
		s.dispatch(false)

	case evBatchDone:
		w := &s.workers[e.who]
		if w.dead || !w.busy || e.gen != w.gen {
			break // stale: the worker died or the batch slipped
		}
		w.busy = false
		s.stats.FramesProcessed += len(w.batch)
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.ComputeEnd,
				Node: e.who, N: len(w.batch)})
		}
		for _, f := range w.batch {
			s.latencies = append(s.latencies, s.now-f.born)
			if s.rec != nil {
				s.rec.latency.Observe(s.now - f.born)
			}
			if s.tr != nil {
				s.tr.Record(trace.Event{T: s.now, Kind: trace.ComputeEnd,
					Frame: f.id, Node: e.who})
			}
			if f.value >= 1-s.c.InsightFraction {
				s.stats.InsightsDownlinked++
				if s.tr != nil {
					s.tr.Record(trace.Event{T: s.now, Kind: trace.Downlinked,
						Frame: f.id, Node: e.who})
				}
			}
		}
		s.putBatch(w.batch)
		w.batch = nil
		s.dispatch(false)

	case evBatchingOut:
		s.timeoutArmed = false
		s.dispatch(true)
	}
	return true
}

// finish drains the sampling grid, closes the availability integral, and
// assembles the run's Stats.
func (s *simulator) finish() Stats {
	if s.rec != nil {
		// Sample the remaining grid points before the final accrual so
		// the availability integral at each point covers exactly [0, t].
		s.rec.finish(s.horizon)
	}
	s.accrue(s.horizon)

	stats := s.stats
	stats.Backlog = stats.FramesGenerated - stats.FramesProcessed - stats.FramesShed - stats.FramesLost
	if len(s.latencies) > 0 {
		sort.Float64s(s.latencies)
		var sum float64
		for _, l := range s.latencies {
			sum += l
		}
		stats.MeanLatency = time.Duration(sum / float64(len(s.latencies)) * float64(time.Second))
		stats.P95Latency = time.Duration(s.latencies[int(float64(len(s.latencies))*0.95)] * float64(time.Second))
	}
	stats.ISLUtilization = units.Clamp(s.islBusySum/s.horizon, 0, 1)
	stats.WorkerUtilization = units.Clamp(s.busySum/(s.horizon*float64(s.c.Workers)), 0, 1)
	stats.ComputeEnergy = units.Energy(s.busySum * float64(s.c.WorkerPower))
	stats.KeptUp = stats.Backlog <= 2*s.c.BatchSize*s.c.Workers
	stats.WorkerDowntime = time.Duration(s.downWS * float64(time.Second))
	stats.ISLDowntime = time.Duration(s.islDownSum * float64(time.Second))
	stats.DegradedFraction = units.Clamp(s.degradedTime/s.horizon, 0, 1)
	stats.Availability = units.Clamp(s.upTime/s.horizon, 0, 1)
	if s.rec != nil {
		s.rec.flush(s.c.Obs, stats, s.evCount[:])
	}
	return stats
}
