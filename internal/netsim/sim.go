package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"sudc/internal/degrade"
	"sudc/internal/faults"
	"sudc/internal/obs/trace"
	"sudc/internal/obs/window"
	"sudc/internal/placement"
	"sudc/internal/units"
)

// randBuf batches Float64 draws from the run's RNG stream. Draws are
// consumed in exactly the order the simulator requests them — buffering
// only moves the underlying generator calls out of the per-event path —
// so the value sequence, and therefore every golden, is unchanged. The
// stream may be advanced past the last consumed draw at the end of a
// run, which is why RunWithRand's contract gives the RNG to the run.
type randBuf struct {
	src  *rand.Rand
	i, n int
	buf  [512]float64
}

func (r *randBuf) reset(src *rand.Rand) {
	r.src, r.i, r.n = src, 0, 0
}

func (r *randBuf) Float64() float64 {
	if r.i >= r.n {
		for j := range r.buf {
			r.buf[j] = r.src.Float64()
		}
		r.i, r.n = 0, len(r.buf)
	}
	v := r.buf[r.i]
	r.i++
	return v
}

// linkState is one directed ISL edge: its static compile-time routing
// (where a frame delivered at the far end continues) plus the dynamic
// transfer state that used to live as the simulator's single aggregate
// ISL. The legacy star is exactly one linkState with zero delay whose
// continuation is SµDC 0, so the generalized per-edge code replays the
// pre-refactor event sequence bit for bit.
type linkState struct {
	// Static per-run compile outputs.
	sendTime float64 // per-frame transmission time, s
	delay    float64 // propagation delay, s
	dest     int     // local continuation: edge index, or ^sudcIndex
	cross    bool    // continuation lives in another cell
	destCell int     // cross: destination cell
	crossTo  int     // cross: continuation in the destination cell (edge or ^sudc)
	name     string  // metrics label "<from>-<to>"
	label    string  // trace edge label; "" outside topology mode

	// Dynamic transfer state.
	queue      frameDeque // frames waiting for (or crossing) the link
	flight     frameDeque // intra-cell frames in propagation (delay > 0)
	sending    bool
	down       bool
	gen        int // invalidates stale evISLDone events
	sendStart  float64
	retryArmed bool
	busySum    float64
	downSum    float64
	outageIdx  int
	outageName string
}

// sudcState is one SµDC's batching queue over its slice of the flat
// worker array [w0, w0+nw).
type sudcState struct {
	w0, nw       int
	input        frameDeque
	timeoutArmed bool
}

// sourceState is one capture group: sats satellites sharing first-hop
// edge.
type sourceState struct {
	sats int
	edge int
}

// shardMsg is one cross-cell frame in flight: it arrives in cell `cell`
// at simulated time `at` and continues at target (edge index, or
// ^sudcIndex).
type shardMsg struct {
	at     float64
	f      frame
	cell   int
	target int
}

// simulator is one run's (or one shard cell's) entire state. The state
// lives in a struct rather than closure-captured locals so the loop
// body is allocation-free and a sync.Pool can recycle every backing
// array across runs; tests use the stepping API to pin the
// zero-allocation steady state with testing.AllocsPerRun.
type simulator struct {
	// Derived per-run constants.
	c            Config
	horizon      float64
	framePeriod  float64
	frameBits    float64
	nodePixSec   float64
	framePixels  float64
	need         int
	totalWorkers int
	totalSats    int
	backoffBase  float64
	backoffCap   float64
	capDoublings int
	shedEnabled  bool
	shedLimit    int
	batchTimeout float64

	rng randBuf
	// ownRand is the pooled RNG used by Run (reseeded in place per run);
	// RunWithRand substitutes the caller's stream instead.
	ownRand *rand.Rand

	q   eventHeap
	fq  frameHeap // per-satellite capture timers (see frameHeap)
	seq int

	// Compiled topology. The legacy configuration compiles to one
	// source group, one link, and one SµDC.
	sources    []sourceState
	links      []linkState
	sudcs      []sudcState
	satEdge    []int // cell-local satellite index → first-hop edge
	workerSudc []int // flat worker index → SµDC index

	workers     []workerState
	freeBatches [][]frame // batch free-list, recycled on frame completion

	// Cross-cell messaging (sharded runs only).
	outbox    []shardMsg // frames sent to other cells this window
	arrivals  []shardMsg // slot-addressed inbox; evArriveMsg.who indexes it
	freeSlots []int      // recycled arrival slots
	crossSent int
	crossRecv int

	effective    int
	lastT        float64
	upTime       float64
	degradedTime float64
	downWS       float64
	busySum      float64
	stats        Stats
	latencies    []float64
	now          float64

	rec     *recorder
	evCount [len(eventNames)]int64

	tr       *trace.Recorder
	topoMode bool
	// mergeLat marks a multi-cell run: the shard runner recomputes the
	// latency distribution over the merged samples, so finish() skips
	// the per-cell sort (the Mean/P95 of one cell are never published).
	mergeLat bool
	frameID  int64

	// msgScratch is the merge buffer of sortMsgs for this cell's
	// outbox, retained across rounds so sorting stays allocation-free.
	msgScratch []shardMsg

	// Placement engine (place == nil when the run has no placement;
	// every hot-path hook then reduces to one nil check). All service
	// times per tier are constants, so each tier's in-service frames
	// complete in dispatch order and a single FIFO deque per tier
	// suffices — no per-server state.
	place          *placement.Config
	pmodel         placement.Model
	queueLen       [placement.NumTiers]int // frames waiting or in service per tier
	onboardQ       frameDeque              // frames waiting for a flight computer
	onboardRun     frameDeque              // frames in flight-computer service, FIFO
	onboardBusy    int
	onboardServers int        // the cell's satellite count: one flight computer each
	dlQueue        frameDeque // ground-bound frames waiting for (or crossing) the downlink
	dlSending      bool
	edgeWait       frameDeque // downlinked frames in access+propagation to the edge
	cloudWait      frameDeque // downlinked frames in access+WAN to the cloud
	edgeQ          frameDeque // frames waiting for an edge server
	edgeRun        frameDeque // frames in edge service, FIFO
	edgeBusy       int
	cloudRun       frameDeque // frames in (elastic) cloud service, FIFO
	dlSendTime     float64    // per-frame downlink transmission time, s
	accessDelay    float64    // mean wait for a usable ground pass, s
	wanDelay       float64    // ground-station-to-cloud backhaul, s
	onboardSvc     float64    // per-tier unloaded service times, s
	edgeSvc        float64
	cloudSvc       float64
	tierLats       [placement.NumTiers][]float64
	tierFrames     [placement.NumTiers]int
	tierDollars    [placement.NumTiers]float64
	placeCostSum   float64 // Σ realized per-frame cost over completed frames

	// Degradation replay (deg == nil when the run is degradation-free;
	// every hot-path hook below then reduces to one nil/false check).
	deg          *degrade.Schedule
	degPhase     int     // index of the active phase
	rateMult     float64 // active service-rate multiplier (1 when deg == nil)
	throttleShed bool
	deferEclipse bool
	rateMultInt  float64 // ∫ rateMult dt over the run
	throttledSum float64 // time with rateMult < 1
	brownoutSum  float64 // time with ≥ 1 browned worker
	browned      int     // workers currently parked by a brownout
	brownoutIdx  int     // brownout ordinal, for cause attribution

	// Windowed telemetry (win == nil when Config.Window is zero; every
	// hot-path hook then reduces to one nil check). Legacy runs own
	// their merger; topology cells leave winM nil and the shard runner
	// drains their collectors at the cross-cell watermark.
	win       *window.Collector
	winM      *window.Merger
	downLinks int            // ISL edges currently in outage
	placeBase placement.Tier // zero-queue base tier of the placement policy
}

// simPool recycles simulator state — heap, ring buffers, latency and
// batch arrays — across runs, so RunReplicas and repeated sweeps reach
// a steady state with no per-run arena growth.
var simPool = sync.Pool{New: func() any { return new(simulator) }}

func getSim() *simulator { return simPool.Get().(*simulator) }
func putSim(s *simulator) {
	// Drop references owned by the caller so the pool never retains a
	// registry, recorder, or foreign RNG across runs. ownRand stays: the
	// simulator owns it and reseeds it in place.
	s.c = Config{}
	s.rec = nil
	s.tr = nil
	s.rng.src = nil
	s.place = nil
	s.win = nil
	s.winM = nil
	simPool.Put(s)
}

// resizeInts reuses an int slice's backing array for n entries.
func resizeInts(a []int, n int) []int {
	if cap(a) >= n {
		return a[:n]
	}
	return make([]int, n)
}

// resizeLinks resizes the link array to n entries, zeroing per-run
// state while keeping the warmed deque buffers of recycled slots.
func resizeLinks(links []linkState, n int) []linkState {
	if cap(links) >= n {
		links = links[:n]
	} else {
		old := links
		links = make([]linkState, n)
		copy(links, old)
	}
	for i := range links {
		l := &links[i]
		q, fl := l.queue, l.flight
		q.reset()
		fl.reset()
		*l = linkState{queue: q, flight: fl}
	}
	return links
}

// resizeSudcs resizes the SµDC array to n entries, keeping warmed input
// queues.
func resizeSudcs(sudcs []sudcState, n int) []sudcState {
	if cap(sudcs) >= n {
		sudcs = sudcs[:n]
	} else {
		old := sudcs
		sudcs = make([]sudcState, n)
		copy(sudcs, old)
	}
	for i := range sudcs {
		d := &sudcs[i]
		in := d.input
		in.reset()
		*d = sudcState{input: in}
	}
	return sudcs
}

// resetCommon prepares everything that does not depend on the layout:
// derived constants, the RNG, the worker array, counters, and arenas.
func (s *simulator) resetCommon(c Config, src *rand.Rand, workers int) {
	s.c = c
	s.horizon = c.Duration.Seconds()
	s.framePeriod = 60 / c.Constellation.FramesPerMinute
	s.frameBits = c.App.FrameBits() * (1 - c.Constellation.FilterRate)
	s.nodePixSec = c.App.KPixelPerJoule * 1e3 * float64(c.WorkerPower)
	s.framePixels = c.App.FrameMPixels * 1e6 * (1 - c.Constellation.FilterRate)

	s.backoffBase = c.RetryBackoff.Seconds()
	if s.backoffBase <= 0 {
		s.backoffBase = 2
	}
	s.backoffCap = c.RetryBackoffCap.Seconds()
	if s.backoffCap < s.backoffBase {
		s.backoffCap = 60
	}
	if s.backoffCap < s.backoffBase {
		s.backoffCap = s.backoffBase
	}
	// capDoublings is the attempt count at which the exponential backoff
	// saturates at its cap. Clamping the exponent *before* the doubling
	// is applied guards the float64 math: under RetryLimit 0 a frame can
	// accumulate thousands of failed attempts across a long ISL outage,
	// and an unguarded 2^(tries-1) overflows to +Inf — one zero or NaN
	// ingredient away from a corrupted event timestamp that would break
	// the event-queue ordering.
	s.capDoublings = int(math.Ceil(math.Log2(s.backoffCap / s.backoffBase)))
	if s.capDoublings < 0 {
		s.capDoublings = 0
	}
	s.shedEnabled = c.ShedThreshold != 0
	s.shedLimit = c.ShedThreshold
	if c.ShedThreshold == ShedAll {
		s.shedLimit = 0
	}
	s.batchTimeout = c.BatchTimeout.Seconds()

	s.rng.reset(src)

	// Recycle batch slices still attached to the previous run's workers
	// before the worker slice is reused.
	for i := range s.workers {
		if b := s.workers[i].batch; b != nil {
			s.freeBatches = append(s.freeBatches, b[:0])
			s.workers[i].batch = nil
		}
	}
	if cap(s.workers) >= workers {
		s.workers = s.workers[:workers]
		for i := range s.workers {
			s.workers[i] = workerState{}
		}
	} else {
		s.workers = make([]workerState, workers)
	}
	s.totalWorkers = workers

	s.q.reset()
	s.fq.reset()
	s.seq = 0
	s.outbox = s.outbox[:0]
	s.arrivals = s.arrivals[:0]
	s.freeSlots = s.freeSlots[:0]
	s.crossSent, s.crossRecv = 0, 0
	s.effective = workers
	s.lastT, s.upTime, s.degradedTime, s.downWS, s.busySum = 0, 0, 0, 0, 0
	s.stats = Stats{}
	s.now = 0

	s.place = nil
	s.queueLen = [placement.NumTiers]int{}
	s.onboardQ.reset()
	s.onboardRun.reset()
	s.onboardBusy, s.onboardServers = 0, 0
	s.dlQueue.reset()
	s.dlSending = false
	s.edgeWait.reset()
	s.cloudWait.reset()
	s.edgeQ.reset()
	s.edgeRun.reset()
	s.edgeBusy = 0
	s.cloudRun.reset()
	for i := range s.tierLats {
		s.tierLats[i] = s.tierLats[i][:0]
	}
	s.tierFrames = [placement.NumTiers]int{}
	s.tierDollars = [placement.NumTiers]float64{}
	s.placeCostSum = 0

	s.deg = nil
	s.degPhase = 0
	s.rateMult = 1
	s.throttleShed, s.deferEclipse = false, false
	s.rateMultInt, s.throttledSum, s.brownoutSum = 0, 0, 0
	s.browned, s.brownoutIdx = 0, 0

	s.win, s.winM = nil, nil
	s.downLinks = 0
	s.placeBase = 0

	s.mergeLat = false

	s.rec = nil
	for i := range s.evCount {
		s.evCount[i] = 0
	}

	// Frame-lineage flight recording. tr stays nil when tracing is off,
	// so the hot loop pays one nil check per lifecycle point. Frame IDs
	// are assigned in capture order and outage windows are numbered in
	// start order — both pure functions of simulated time.
	s.tr = c.Trace
	s.frameID = 0
}

// sizeLatencies pre-sizes the latency buffer for the worst-case frame
// count (5% jitter bound), so steady-state appends never reallocate.
func (s *simulator) sizeLatencies(sats int) {
	maxFrames := int(float64(sats)*s.horizon/(s.framePeriod*0.95)) + sats + 16
	if cap(s.latencies) < maxFrames {
		s.latencies = make([]float64, 0, maxFrames)
	} else {
		s.latencies = s.latencies[:0]
	}
}

// seedEvents pushes the initial event population: per-satellite frame
// generation with random phase, then the fault schedule. The push order
// is part of the determinism contract (it fixes event sequence numbers).
func (s *simulator) seedEvents(sched faults.Schedule) {
	sat := 0
	for gi := range s.sources {
		g := &s.sources[gi]
		for i := 0; i < g.sats; i++ {
			s.satEdge[sat] = g.edge
			s.pushFrame(s.rng.Float64()*s.framePeriod, sat)
			sat++
		}
	}
	for w, death := range sched.Deaths {
		if death <= s.horizon {
			s.push(event{at: death, kind: evWorkerDeath, who: w})
		}
	}
	for _, hg := range sched.Hangs {
		s.push(event{at: hg.At, kind: evSEFIStart, who: hg.Node, dur: hg.Recovery})
	}
	for _, o := range sched.Outages {
		s.push(event{at: o.Start, kind: evOutageStart, who: o.Edge, dur: o.Duration})
	}
	// Degradation phase transitions go last so degradation-free runs keep
	// their exact pre-degradation event sequence numbers. Phase 0 is
	// applied directly by reset, not via an event.
	if s.deg != nil {
		for i := 1; i < len(s.deg.Phases); i++ {
			s.push(event{at: s.deg.Phases[i].Start, kind: evPhase, who: i})
		}
	}
}

// reset prepares the pooled simulator for one legacy (implicit-star)
// run, reusing every backing array that is already large enough. The
// star compiles to one source group feeding SµDC 0 over link 0 with
// zero propagation delay — the exact pre-topology shape.
func (s *simulator) reset(c Config, sched faults.Schedule, deg *degrade.Schedule, src *rand.Rand) {
	s.resetCommon(c, src, c.Workers)
	s.topoMode = false
	s.setDegrade(deg)

	s.need = c.NeedWorkers
	if s.need == 0 {
		s.need = c.Workers
	}
	s.totalSats = c.Constellation.Satellites
	s.setPlacement(c.Placement, 1)
	if c.Window > 0 {
		w := c.Window.Seconds()
		s.win = window.NewCollector(w, 0)
		s.winM = window.NewMerger(w, c.OnWindow)
	}

	s.links = resizeLinks(s.links, 1)
	l := &s.links[0]
	l.sendTime = s.frameBits / float64(c.ISLRate)
	l.dest = ^0
	l.name = "sats-sudc"

	s.sudcs = resizeSudcs(s.sudcs, 1)
	s.sudcs[0].w0, s.sudcs[0].nw = 0, c.Workers

	if cap(s.sources) >= 1 {
		s.sources = s.sources[:1]
	} else {
		s.sources = make([]sourceState, 1)
	}
	s.sources[0] = sourceState{sats: c.Constellation.Satellites, edge: 0}
	s.satEdge = resizeInts(s.satEdge, c.Constellation.Satellites)
	s.workerSudc = resizeInts(s.workerSudc, c.Workers)
	for i := range s.workerSudc {
		s.workerSudc[i] = 0
	}

	s.q.grow(c.Constellation.Satellites + 4*c.Workers +
		len(sched.Deaths) + len(sched.Hangs) + len(sched.Outages) + s.degPhases() + 64)
	s.fq.grow(c.Constellation.Satellites)
	s.sizeLatencies(c.Constellation.Satellites)

	if c.Obs != nil {
		s.rec = newRecorder(c.Obs, c.SampleEvery, s)
	}
	s.seedEvents(sched)
	if s.deg != nil {
		s.applyPhase(0)
	}
}

// setDegrade installs the (possibly nil) degradation schedule and its
// policy knobs. Must run before seedEvents and newRecorder: both key on
// s.deg.
func (s *simulator) setDegrade(deg *degrade.Schedule) {
	s.deg = deg
	if deg != nil {
		s.throttleShed = s.c.ThrottleShed
		s.deferEclipse = s.c.DeferInEclipse
	}
}

// degPhases returns the phase-event count for event-heap sizing.
func (s *simulator) degPhases() int {
	if s.deg == nil {
		return 0
	}
	return len(s.deg.Phases)
}

func (s *simulator) push(e event) {
	s.seq++
	e.seq = s.seq
	s.q.push(e)
}

// pushFrame schedules a satellite capture, drawing the next global
// sequence number so timers and events share one strict total order.
func (s *simulator) pushFrame(at float64, who int) {
	s.seq++
	s.fq.push(frameTimer{at: at, seq: s.seq, who: who})
}

// nextAt returns the next event time over both heaps, or +Inf when the
// simulation has drained.
func (s *simulator) nextAt() float64 {
	at := math.Inf(1)
	if len(s.q.a) > 0 {
		at = s.q.a[0].at
	}
	if len(s.fq.a) > 0 && s.fq.a[0].at < at {
		at = s.fq.a[0].at
	}
	return at
}

// frameFirst reports whether the next event in (at, seq) order is the
// frame-timer top rather than the event-heap top. Sequence numbers are
// unique across both heaps, so the order is strict and the two-heap
// split pops the exact event sequence a single heap would.
func (s *simulator) frameFirst() bool {
	if len(s.fq.a) == 0 {
		return false
	}
	if len(s.q.a) == 0 {
		return true
	}
	f, e := &s.fq.a[0], &s.q.a[0]
	if f.at != e.at {
		return f.at < e.at
	}
	return f.seq < e.seq
}

// inject lands one cross-cell message: the frame is parked in an
// arrival slot (recycled through freeSlots, so the steady state is
// allocation-free) and an evArriveMsg event delivers it at m.at.
func (s *simulator) inject(m shardMsg) {
	var slot int
	if n := len(s.freeSlots); n > 0 {
		slot = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		s.arrivals[slot] = m
	} else {
		slot = len(s.arrivals)
		s.arrivals = append(s.arrivals, m)
	}
	s.push(event{at: m.at, kind: evArriveMsg, who: slot})
}

// getBatch takes a frame slice from the free-list (or allocates one
// during warm-up).
func (s *simulator) getBatch() []frame {
	if n := len(s.freeBatches); n > 0 {
		b := s.freeBatches[n-1]
		s.freeBatches = s.freeBatches[:n-1]
		if cap(b) >= s.c.BatchSize {
			return b[:0]
		}
	}
	return make([]frame, 0, s.c.BatchSize)
}

// putBatch recycles a finished batch's slice.
func (s *simulator) putBatch(b []frame) {
	s.freeBatches = append(s.freeBatches, b[:0])
}

// accrue integrates the availability accumulators up to time t.
func (s *simulator) accrue(t float64) {
	if dt := t - s.lastT; dt > 0 {
		if s.effective >= s.need {
			s.upTime += dt
		}
		if s.effective < s.totalWorkers {
			s.degradedTime += dt
		}
		s.downWS += dt * float64(s.totalWorkers-s.effective)
		if s.deg != nil {
			s.rateMultInt += dt * s.rateMult
			if s.rateMult < 1 {
				s.throttledSum += dt
			}
			if s.browned > 0 {
				s.brownoutSum += dt
			}
		}
	}
	s.lastT = t
	if s.win != nil {
		// The environment has been constant since the previous event, so
		// the span [lastT, t) integrates exactly. Legacy runs fold and
		// flush closed windows immediately — a single cell's watermark is
		// its own clock; topology cells hold fragments for the shard
		// runner's cross-cell watermark.
		if s.win.Advance(t, s.winEnv()) > 0 && s.winM != nil {
			for _, f := range s.win.Drain() {
				s.winM.Add(f)
			}
			s.winM.Flush(t)
		}
	}
}

// winEnv snapshots the cell environment for window occupancy. Valid
// between events only: callers advance the collector before applying
// the state change at the new event time.
func (s *simulator) winEnv() window.Env {
	return window.Env{
		Up:        s.effective >= s.need,
		Weight:    float64(s.totalWorkers),
		Eclipse:   s.deg != nil && s.deg.Phases[s.degPhase].Eclipse,
		Throttled: s.rateMult < 1,
		Browned:   s.browned > 0,
		DownLinks: s.downLinks,
	}
}

// closeWindows finalizes the window stream after finish(): occupancy
// runs out to the horizon, the trailing partial window closes, and
// every remaining fragment folds into the merger.
func (s *simulator) closeWindows(m *window.Merger) {
	if s.win == nil {
		return
	}
	s.win.Advance(s.horizon, s.winEnv())
	s.win.Close()
	for _, f := range s.win.Drain() {
		m.Add(f)
	}
}

// closeRunWindows seals a legacy run's own merger and returns the
// completed windows (nil when windowing is off).
func (s *simulator) closeRunWindows() []window.Window {
	if s.winM == nil {
		return nil
	}
	s.closeWindows(s.winM)
	s.winM.Flush(math.Inf(1))
	return s.winM.Windows()
}

func (s *simulator) recount() {
	s.effective = 0
	for i := range s.workers {
		if !s.workers[i].dead && !s.workers[i].hung && !s.workers[i].browned {
			s.effective++
		}
	}
}

// sampleState is the simulator state visible to the series sampler at
// simulated instant t. Per-edge queue depths are read off s.links
// directly by the recorder.
func (s *simulator) sampleState(t float64) sampleState {
	up := s.upTime
	if s.effective >= s.need && t > s.lastT {
		up += t - s.lastT
	}
	avail := 1.0
	if t > 0 {
		avail = up / t
	}
	input := 0
	for i := range s.sudcs {
		input += s.sudcs[i].input.len()
	}
	return sampleState{
		t:          t,
		inputQueue: input,
		backlog: s.stats.FramesGenerated + s.crossRecv - s.crossSent -
			s.stats.FramesProcessed - s.stats.FramesShed - s.stats.FramesLost,
		effective:    s.effective,
		availability: avail,
		retried:      s.stats.FramesRetried,
		shed:         s.stats.FramesShed,
		rateMult:     s.rateMult,
		powered:      s.totalWorkers - s.browned,
	}
}

func (s *simulator) backoff(tries int) float64 {
	k := tries - 1
	if k >= s.capDoublings {
		return s.backoffCap
	}
	d := math.Ldexp(s.backoffBase, k)
	if d > s.backoffCap {
		d = s.backoffCap
	}
	return d
}

// failHead records a failed transmission attempt for link ei's head
// frame: retry after backoff, or drop it past the retry limit.
func (s *simulator) failHead(ei int) {
	l := &s.links[ei]
	f := l.queue.front()
	f.tries++
	if s.c.RetryLimit > 0 && f.tries > s.c.RetryLimit {
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.Lost, Frame: f.id,
				Node: -1, Attempt: f.tries, Cause: l.outageName, Edge: l.label})
		}
		l.queue.popFront()
		s.stats.FramesLost++
		s.win.Count(window.CntLost, 1)
		if s.place != nil {
			s.queueLen[placement.TierSpace]--
		}
		return
	}
	s.stats.FramesRetried++
	s.win.Count(window.CntRetried, 1)
	l.retryArmed = true
	delay := s.backoff(f.tries)
	if s.rec != nil {
		s.rec.backoff.Observe(delay)
	}
	if s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.Retry, Frame: f.id,
			Node: -1, Attempt: f.tries, Backoff: delay, Cause: l.outageName, Edge: l.label})
	}
	s.push(event{at: s.now + delay, kind: evISLRetry, who: ei})
}

// attemptISL starts link ei's head-frame transfer, or fails it into
// backoff when the link is down.
func (s *simulator) attemptISL(ei int) {
	l := &s.links[ei]
	for !l.sending && !l.retryArmed && l.queue.len() > 0 {
		if l.down {
			s.failHead(ei) // arms a retry (exits loop) or drops the head
			continue
		}
		l.sending = true
		l.gen++
		l.sendStart = s.now
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.ISLSendStart,
				Frame: l.queue.front().id, Node: -1, Edge: l.label})
		}
		s.push(event{at: s.now + l.sendTime, kind: evISLDone, who: ei, gen: l.gen})
		return
	}
}

// addToInput lands a frame in SµDC si's batching queue, shedding the
// lowest-value frame when the queue outgrows the threshold.
func (s *simulator) addToInput(si int, f frame) {
	in := &s.sudcs[si].input
	in.pushBack(f)
	if s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.Enqueued, Frame: f.id, Node: -1})
	}
	limit := s.shedLimit
	if s.throttleShed && s.rateMult < 1 {
		// Throttle-aware shedding: the queue the SµDC can afford shrinks
		// with its service rate.
		limit = int(float64(limit) * s.rateMult)
	}
	if s.shedEnabled && in.len() > limit {
		low := 0
		for i := 1; i < in.len(); i++ {
			if in.at(i).value < in.at(low).value {
				low = i
			}
		}
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.Shed,
				Frame: in.at(low).id, Node: -1})
		}
		in.removeAt(low)
		s.stats.FramesShed++
		s.win.Count(window.CntShed, 1)
		if s.place != nil {
			s.queueLen[placement.TierSpace]--
		}
	}
	if in.len() > s.stats.MaxInputQueue {
		s.stats.MaxInputQueue = in.len()
	}
}

// freeWorker returns the lowest-index dispatchable worker in the
// SµDC's slice, for deterministic worker selection.
func (s *simulator) freeWorker(d *sudcState) int {
	for i := d.w0; i < d.w0+d.nw; i++ {
		w := &s.workers[i]
		if !w.dead && !w.hung && !w.browned && !w.busy {
			return i
		}
	}
	return -1
}

func (s *simulator) dispatch(si int, force bool) {
	d := &s.sudcs[si]
	for d.input.len() >= s.c.BatchSize || (force && d.input.len() > 0) {
		wi := s.freeWorker(d)
		if wi < 0 {
			break
		}
		n := s.c.BatchSize
		if n > d.input.len() {
			n = d.input.len()
		}
		batch := s.getBatch()
		for i := 0; i < n; i++ {
			batch = append(batch, d.input.popFront())
		}
		w := &s.workers[wi]
		service := float64(n) * s.framePixels / s.nodePixSec
		if s.deg != nil {
			// Thermal throttling stretches service time. Unthrottled
			// phases divide by exactly 1, which is bit-exact.
			service /= s.rateMult
		}
		s.busySum += service
		w.busy = true
		w.batch = batch
		w.gen++
		w.doneAt = s.now + service
		if s.tr != nil {
			for _, f := range batch {
				s.tr.Record(trace.Event{T: s.now, Kind: trace.Dispatched, Frame: f.id, Node: wi})
			}
			s.tr.Record(trace.Event{T: s.now, Kind: trace.ComputeStart, Node: wi, N: n})
		}
		s.push(event{at: w.doneAt, kind: evBatchDone, who: wi, gen: w.gen})
	}
	if d.input.len() > 0 && !d.timeoutArmed {
		d.timeoutArmed = true
		s.push(event{at: s.now + s.batchTimeout, kind: evBatchingOut, who: si})
	}
}

// applyPhase activates degradation phase pi: the service-rate
// multiplier switches, and the phase's power budget parks the
// highest-index workers of every SµDC beyond its powered complement.
// A batch in flight on a parked worker is stranded back to the head of
// the input queue exactly like on a node death, and the surviving
// powered workers pick the frames up in deterministic order.
func (s *simulator) applyPhase(pi int) {
	ph := &s.deg.Phases[pi]
	s.degPhase = pi
	s.rateMult = ph.RateMult
	if s.tr != nil && ph.RateMult != 1 {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.Throttle, Node: -1,
			Mult: ph.RateMult, Dur: s.deg.End(pi) - ph.Start})
	}
	if s.browned > 0 && s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.BrownoutEnd, Node: -1, N: s.browned})
	}
	s.browned = 0
	cause := ""
	if ph.PowerFrac < 1 {
		s.brownoutIdx++
		if s.tr != nil {
			cause = fmt.Sprintf("brownout#%d", s.brownoutIdx)
		}
	}
	for si := range s.sudcs {
		d := &s.sudcs[si]
		powered := d.nw
		if ph.PowerFrac < 1 {
			powered = int(math.Ceil(ph.PowerFrac * float64(d.nw)))
			if powered < 1 {
				powered = 1 // the battery always carries one worker
			}
		}
		for i := d.w0; i < d.w0+powered; i++ {
			s.workers[i].browned = false
		}
		for i := d.w0 + powered; i < d.w0+d.nw; i++ {
			w := &s.workers[i]
			s.browned++
			if w.browned {
				continue
			}
			w.browned = true
			if !w.busy {
				continue
			}
			// Strand the in-flight batch, as evWorkerDeath does.
			w.busy = false
			w.gen++
			s.busySum -= w.doneAt - s.now
			s.stats.FramesRedispatched += len(w.batch)
			s.win.Count(window.CntRedispatched, int64(len(w.batch)))
			if s.tr != nil {
				for _, f := range w.batch {
					s.tr.Record(trace.Event{T: s.now, Kind: trace.Enqueued,
						Frame: f.id, Node: -1, Cause: cause})
				}
			}
			in := &d.input
			for j := len(w.batch) - 1; j >= 0; j-- {
				in.pushFront(w.batch[j])
			}
			if in.len() > s.stats.MaxInputQueue {
				s.stats.MaxInputQueue = in.len()
			}
			s.putBatch(w.batch)
			w.batch = nil
		}
	}
	if s.browned > 0 && s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.BrownoutStart, Node: -1,
			N: s.browned, Dur: s.deg.End(pi) - ph.Start, Cause: cause})
	}
	s.recount()
	for si := range s.sudcs {
		s.dispatch(si, false)
	}
}

// step pops and applies one event. It returns false once both heaps
// are empty or the next event lies past the horizon — the run is over.
func (s *simulator) step() bool {
	if s.frameFirst() {
		if s.fq.a[0].at > s.horizon {
			return false
		}
		s.applyFrame()
		return true
	}
	if len(s.q.a) == 0 || s.q.a[0].at > s.horizon {
		return false
	}
	s.apply(s.q.pop())
	return true
}

// runUntil drains events with at < limit (final windows include the
// boundary: at ≤ limit), the per-window half of the conservative
// synchronizer. Non-final windows must exclude the boundary so a
// cross-cell message arriving exactly at the next window start is
// injected before any local event at that instant is applied.
func (s *simulator) runUntil(limit float64, final bool) {
	for {
		if s.frameFirst() {
			at := s.fq.a[0].at
			if final {
				if at > limit {
					return
				}
			} else if at >= limit {
				return
			}
			s.applyFrame()
			continue
		}
		if len(s.q.a) == 0 {
			return
		}
		at := s.q.a[0].at
		if final {
			if at > limit {
				return
			}
		} else if at >= limit {
			return
		}
		s.apply(s.q.pop())
	}
}

// applyFrame advances the simulation by one satellite capture — the
// evFrameReady arm of apply, fused with the timer reschedule: the heap
// minimum is overwritten in place instead of popped and re-pushed. The
// successor draws its sequence number after any transfer events the
// capture pushed, exactly like the old pop-then-push order, so event
// numbering is unchanged.
func (s *simulator) applyFrame() {
	t := s.fq.a[0]
	if s.rec != nil {
		s.rec.catchUp(t.at)
	}
	s.now = t.at
	s.accrue(t.at)
	s.evCount[evFrameReady]++
	s.stats.FramesGenerated++
	s.win.Count(window.CntGenerated, 1)
	s.frameID++
	// The value draw stays immediately before the jitter draw and the
	// placement decision draws nothing, so the RNG stream is identical
	// with and without placement.
	f := frame{id: s.frameID, born: s.now, value: s.rng.Float64()}
	if s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.FrameCaptured,
			Frame: f.id, Node: t.who})
	}
	if s.place == nil {
		ei := s.satEdge[t.who]
		s.links[ei].queue.pushBack(f)
		s.attemptISL(ei)
	} else {
		s.route(f, t.who)
	}
	// Next frame from this satellite, with 5% timing jitter.
	jitter := 1 + 0.1*(s.rng.Float64()-0.5)
	s.seq++
	s.fq.replaceTop(frameTimer{at: s.now + s.framePeriod*jitter, seq: s.seq, who: t.who})
}

// apply advances the simulation by one event.
func (s *simulator) apply(e event) {
	if s.rec != nil {
		s.rec.catchUp(e.at)
	}
	s.now = e.at
	s.accrue(e.at)
	s.evCount[e.kind]++
	switch e.kind {
	case evISLDone:
		ei := e.who
		l := &s.links[ei]
		if e.gen != l.gen || !l.sending {
			break // transfer aborted by an outage
		}
		l.sending = false
		l.busySum += s.now - l.sendStart
		f := l.queue.popFront()
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.ISLSendEnd, Frame: f.id,
				Node: -1, Edge: l.label})
		}
		switch {
		case l.cross:
			// The frame leaves this cell: it becomes a timestamped
			// message the shard runner delivers at the next barrier.
			s.crossSent++
			if s.place != nil {
				// The frame leaves this cell's space queue; the consumer
				// cell counts it back in on arrival.
				s.queueLen[placement.TierSpace]--
			}
			s.outbox = append(s.outbox, shardMsg{
				at: s.now + l.delay, f: f, cell: l.destCell, target: l.crossTo})
			s.attemptISL(ei)
		case l.delay > 0:
			// Propagation within the cell: the link frees immediately,
			// the frame arrives delay seconds later (per-edge constant
			// delay keeps the flight deque FIFO-correct).
			l.flight.pushBack(f)
			s.push(event{at: s.now + l.delay, kind: evArrive, who: ei})
			s.attemptISL(ei)
		case l.dest >= 0:
			// Zero-delay relay hop onto the next edge.
			s.links[l.dest].queue.pushBack(f)
			s.attemptISL(ei)
			s.attemptISL(l.dest)
		default:
			// Arrival at the SµDC. This operation order (enqueue, next
			// transfer, dispatch) is the legacy event order — do not
			// reorder, the goldens pin it.
			si := ^l.dest
			s.addToInput(si, f)
			s.attemptISL(ei)
			s.dispatch(si, false)
		}

	case evArrive:
		l := &s.links[e.who]
		f := l.flight.popFront()
		if l.dest >= 0 {
			s.links[l.dest].queue.pushBack(f)
			s.attemptISL(l.dest)
		} else {
			si := ^l.dest
			s.addToInput(si, f)
			s.dispatch(si, false)
		}

	case evArriveMsg:
		m := s.arrivals[e.who]
		s.freeSlots = append(s.freeSlots, e.who)
		s.crossRecv++
		s.stats.CrossShardFrames++
		if s.place != nil {
			s.queueLen[placement.TierSpace]++
		}
		if m.target >= 0 {
			s.links[m.target].queue.pushBack(m.f)
			s.attemptISL(m.target)
		} else {
			si := ^m.target
			s.addToInput(si, m.f)
			s.dispatch(si, false)
		}

	case evISLRetry:
		l := &s.links[e.who]
		l.retryArmed = false
		s.attemptISL(e.who)

	case evOutageStart:
		ei := e.who
		l := &s.links[ei]
		if !l.down {
			s.downLinks++
		}
		l.down = true
		l.outageIdx++
		l.outageName = ""
		if s.tr != nil {
			if l.label == "" {
				l.outageName = fmt.Sprintf("isl-outage#%d", l.outageIdx)
			} else {
				l.outageName = fmt.Sprintf("isl-outage#%d@%s", l.outageIdx, l.label)
			}
			s.tr.Record(trace.Event{T: s.now, Kind: trace.OutageStart,
				Node: -1, Dur: e.dur, Cause: l.outageName, Edge: l.label})
		}
		end := s.now + e.dur
		if clip := math.Min(end, s.horizon); clip > s.now {
			l.downSum += clip - s.now
		}
		s.push(event{at: end, kind: evOutageEnd, who: ei})
		if l.sending {
			// Abort the in-flight transfer; the head frame retries.
			l.sending = false
			l.gen++
			l.busySum += s.now - l.sendStart
			if s.tr != nil {
				s.tr.Record(trace.Event{T: s.now, Kind: trace.ISLSendEnd,
					Frame: l.queue.front().id, Node: -1, Cause: l.outageName, Edge: l.label})
			}
			s.failHead(ei)
			s.attemptISL(ei)
		}

	case evOutageEnd:
		l := &s.links[e.who]
		if l.down {
			s.downLinks--
		}
		l.down = false
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.OutageEnd,
				Node: -1, Cause: l.outageName, Edge: l.label})
		}
		s.attemptISL(e.who)

	case evWorkerDeath:
		w := &s.workers[e.who]
		if w.dead {
			break
		}
		w.dead = true
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.NodeDeath, Node: e.who})
		}
		si := s.workerSudc[e.who]
		if w.busy {
			// The batch is stranded: return its frames to the head of the
			// queue for re-dispatch.
			w.busy = false
			w.gen++
			s.busySum -= w.doneAt - s.now
			s.stats.FramesRedispatched += len(w.batch)
			s.win.Count(window.CntRedispatched, int64(len(w.batch)))
			if s.tr != nil {
				cause := fmt.Sprintf("node-death#%d", e.who)
				for _, f := range w.batch {
					s.tr.Record(trace.Event{T: s.now, Kind: trace.Enqueued,
						Frame: f.id, Node: -1, Cause: cause})
				}
			}
			in := &s.sudcs[si].input
			for i := len(w.batch) - 1; i >= 0; i-- {
				in.pushFront(w.batch[i])
			}
			if in.len() > s.stats.MaxInputQueue {
				s.stats.MaxInputQueue = in.len()
			}
			s.putBatch(w.batch)
			w.batch = nil
		}
		s.recount()
		s.dispatch(si, false)

	case evSEFIStart:
		w := &s.workers[e.who]
		if w.dead || w.hung {
			break
		}
		w.hung = true
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.SEFIStart, Node: e.who, Dur: e.dur})
		}
		if w.busy {
			// The watchdog reboots the node and the batch resumes:
			// completion slips by the recovery time.
			w.gen++
			w.doneAt += e.dur
			s.push(event{at: w.doneAt, kind: evBatchDone, who: e.who, gen: w.gen})
		}
		s.push(event{at: s.now + e.dur, kind: evSEFIEnd, who: e.who})
		s.recount()

	case evSEFIEnd:
		w := &s.workers[e.who]
		if w.dead || !w.hung {
			break
		}
		w.hung = false
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.SEFIEnd, Node: e.who})
		}
		s.recount()
		s.dispatch(s.workerSudc[e.who], false)

	case evBatchDone:
		w := &s.workers[e.who]
		if w.dead || !w.busy || e.gen != w.gen {
			break // stale: the worker died or the batch slipped
		}
		w.busy = false
		s.stats.FramesProcessed += len(w.batch)
		s.win.Count(window.CntProcessed, int64(len(w.batch)))
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.ComputeEnd,
				Node: e.who, N: len(w.batch)})
		}
		for _, f := range w.batch {
			s.latencies = append(s.latencies, s.now-f.born)
			s.win.Latency(s.now - f.born)
			if s.rec != nil {
				s.rec.latency.Observe(s.now - f.born)
			}
			if s.tr != nil {
				s.tr.Record(trace.Event{T: s.now, Kind: trace.ComputeEnd,
					Frame: f.id, Node: e.who})
			}
			if s.place != nil {
				s.accountTier(placement.Tier(f.tier), s.now-f.born)
			}
			if f.value >= 1-s.c.InsightFraction {
				s.stats.InsightsDownlinked++
				s.win.Count(window.CntInsights, 1)
				if s.tr != nil {
					s.tr.Record(trace.Event{T: s.now, Kind: trace.Downlinked,
						Frame: f.id, Node: e.who})
				}
			}
		}
		s.putBatch(w.batch)
		w.batch = nil
		s.dispatch(s.workerSudc[e.who], false)

	case evBatchingOut:
		si := e.who
		d := &s.sudcs[si]
		if s.deferEclipse && d.input.len() > 0 && s.deg.Phases[s.degPhase].Eclipse {
			if end := s.deg.End(s.degPhase); end < s.horizon {
				// Deadline-aware deferral: hold the partial batch until
				// sunlit power returns. timeoutArmed stays set so new
				// arrivals don't arm a second timeout. The evPhase event
				// at `end` was seeded earlier, so it applies first and
				// unparks the workers before this re-armed timeout fires.
				s.stats.BatchesDeferred++
				s.win.Count(window.CntDeferred, 1)
				s.push(event{at: end, kind: evBatchingOut, who: si})
				break
			}
		}
		d.timeoutArmed = false
		s.dispatch(si, true)

	case evPhase:
		s.applyPhase(e.who)

	case evOnboardDone:
		f := s.onboardRun.popFront()
		s.onboardBusy--
		s.completePlaced(f)
		if s.onboardQ.len() > 0 {
			s.onboardBusy++
			s.startPlaced(&s.onboardRun, s.onboardQ.popFront(), evOnboardDone, s.onboardSvc)
		}

	case evDownlinkDone:
		s.downlinkDone()

	case evEdgeArrive:
		f := s.edgeWait.popFront()
		if s.edgeBusy < s.place.EdgeServers {
			s.edgeBusy++
			s.startPlaced(&s.edgeRun, f, evEdgeDone, s.edgeSvc)
		} else {
			s.edgeQ.pushBack(f)
		}

	case evCloudArrive:
		// The elastic cloud never queues: service starts on arrival.
		s.startPlaced(&s.cloudRun, s.cloudWait.popFront(), evCloudDone, s.cloudSvc)

	case evEdgeDone:
		f := s.edgeRun.popFront()
		s.edgeBusy--
		s.completePlaced(f)
		if s.edgeQ.len() > 0 {
			s.edgeBusy++
			s.startPlaced(&s.edgeRun, s.edgeQ.popFront(), evEdgeDone, s.edgeSvc)
		}

	case evCloudDone:
		s.completePlaced(s.cloudRun.popFront())
	}
}

// finish drains the sampling grid, closes the availability integral, and
// assembles the run's Stats.
func (s *simulator) finish() Stats {
	if s.rec != nil {
		// Sample the remaining grid points before the final accrual so
		// the availability integral at each point covers exactly [0, t].
		s.rec.finish(s.horizon)
	}
	s.accrue(s.horizon)

	stats := s.stats
	stats.Backlog = stats.FramesGenerated - stats.FramesProcessed - stats.FramesShed - stats.FramesLost
	if len(s.latencies) > 0 && !s.mergeLat {
		sort.Float64s(s.latencies)
		var sum float64
		for _, l := range s.latencies {
			sum += l
		}
		stats.MeanLatency = time.Duration(sum / float64(len(s.latencies)) * float64(time.Second))
		stats.P95Latency = time.Duration(s.latencies[int(float64(len(s.latencies))*0.95)] * float64(time.Second))
	}
	var islBusy, islDown float64
	for i := range s.links {
		islBusy += s.links[i].busySum
		islDown += s.links[i].downSum
	}
	if len(s.links) > 0 {
		stats.ISLUtilization = units.Clamp(islBusy/(s.horizon*float64(len(s.links))), 0, 1)
	}
	if s.totalWorkers > 0 {
		stats.WorkerUtilization = units.Clamp(s.busySum/(s.horizon*float64(s.totalWorkers)), 0, 1)
	}
	stats.ComputeEnergy = units.Energy(s.busySum * float64(s.c.WorkerPower))
	stats.KeptUp = stats.Backlog <= 2*s.c.BatchSize*s.totalWorkers
	stats.WorkerDowntime = time.Duration(s.downWS * float64(time.Second))
	stats.ISLDowntime = time.Duration(islDown * float64(time.Second))
	stats.DegradedFraction = units.Clamp(s.degradedTime/s.horizon, 0, 1)
	stats.Availability = units.Clamp(s.upTime/s.horizon, 0, 1)
	stats.MeanRateMult = 1
	if s.deg != nil {
		stats.MeanRateMult = s.rateMultInt / s.horizon
		stats.ThrottledTime = time.Duration(s.throttledSum * float64(time.Second))
		stats.BrownoutTime = time.Duration(s.brownoutSum * float64(time.Second))
	}
	if s.place != nil {
		s.finishPlacement(&stats)
	}
	if s.rec != nil {
		s.rec.flush(s.c.Obs, stats, s.evCount[:])
	}
	return stats
}
