package netsim

// Property tests for the incremental synchronization structures: the
// tournament tree against a reference linear scan, and the capture
// timer heap's fused replaceTop against a reference sorted schedule.

import (
	"math"
	"math/rand"
	"testing"
)

// refArgmin is the linear scan the tournament tree replaced: the index
// of the minimum key, ties to the lowest index.
func refArgmin(keys []float64) int {
	m := 0
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[m] {
			m = i
		}
	}
	return m
}

func TestMinTreeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100} {
		keys := make([]float64, n)
		var tr minTree
		tr.reset(n)
		for i := range keys {
			keys[i] = math.Inf(1)
		}
		for step := 0; step < 400; step++ {
			// Random advance sequence: mostly finite keys drawn from a
			// small grid (forcing ties), occasionally +Inf (a drained
			// cell), applied to a random leaf.
			i := rng.Intn(n)
			k := float64(rng.Intn(8))
			if rng.Intn(10) == 0 {
				k = math.Inf(1)
			}
			keys[i] = k
			tr.update(i, k)
			want := refArgmin(keys)
			if got := tr.minLeaf(); got != want {
				t.Fatalf("n=%d step=%d: minLeaf = %d, linear scan = %d (keys %v)", n, step, got, want, keys)
			}
			if got, want := tr.minKey(), keys[want]; got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("n=%d step=%d: minKey = %v, want %v", n, step, got, want)
			}
		}
	}
}

func TestMinTreeLoadFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 2, 5, 16, 31} {
		var src, dst minTree
		src.reset(n)
		keys := make([]float64, n)
		for trial := 0; trial < 50; trial++ {
			for i := range keys {
				keys[i] = float64(rng.Intn(6))
				src.update(i, keys[i])
			}
			dst.loadFrom(&src)
			if got, want := dst.minLeaf(), refArgmin(keys); got != want {
				t.Fatalf("n=%d: loadFrom minLeaf = %d, want %d", n, got, want)
			}
			// The copy must be independent: updating dst never perturbs src.
			dst.update(0, -1)
			if got, want := src.minLeaf(), refArgmin(keys); got != want {
				t.Fatalf("n=%d: src perturbed by dst update (minLeaf %d, want %d)", n, got, want)
			}
		}
	}
}

func TestFrameHeapReplaceTopMatchesReference(t *testing.T) {
	// The fused pop+push must pop the exact (at, seq) order a reference
	// priority queue yields.
	rng := rand.New(rand.NewSource(47))
	const sats = 37
	var h frameHeap
	h.grow(sats)
	seq := 0
	sched := make([]frameTimer, sats)
	for i := 0; i < sats; i++ {
		seq++
		ft := frameTimer{at: rng.Float64(), seq: seq, who: i}
		h.push(ft)
		sched[i] = ft
	}
	for step := 0; step < 2000; step++ {
		// Reference: linear scan for the (at, seq) minimum.
		m := 0
		for i := 1; i < sats; i++ {
			if timerLess(&sched[i], &sched[m]) {
				m = i
			}
		}
		top := h.a[0]
		if top != sched[m] {
			t.Fatalf("step %d: heap top %+v, reference min %+v", step, top, sched[m])
		}
		seq++
		succ := frameTimer{at: top.at + 0.5 + rng.Float64(), seq: seq, who: top.who}
		h.replaceTop(succ)
		sched[m] = succ
	}
}
