package netsim

// Topology compilation: a validated topo.Graph is lowered into one
// cellPlan per graph cell. A cellPlan is the static half of a cell's
// simulator state — source groups, links with their routing
// continuations, and SµDC worker slices — with every reference
// expressed in cell-local indices so each cell simulates its subgraph
// independently. Cross-cell edges record the destination cell and the
// continuation *in that cell's* index space; at run time the frame
// crosses as a timestamped shardMsg.
//
// The compilation is a pure function of the graph (never of the shard
// count), which is what makes the sharded results byte-identical for
// any Config.Shards value.

import (
	"fmt"

	"sudc/internal/degrade"
	"sudc/internal/faults"
	"sudc/internal/obs/window"
	"sudc/internal/topo"
	"sudc/internal/units"
)

// planLink is one compiled ISL edge owned by the cell of its From node.
type planLink struct {
	rate     units.DataRate // 0 = inherit Config.ISLRate
	delay    float64        // propagation delay, s
	dest     int            // local continuation: edge index, or ^sudcIndex
	cross    bool
	destCell int
	crossTo  int // cross continuation, in the destination cell's index space
	name     string
}

// planSudc is one compiled SµDC node.
type planSudc struct {
	workers int
	name    string
}

// planSource is one compiled capture group.
type planSource struct {
	sats int
	edge int // local first-hop edge
}

// cellPlan is one cell's compiled subgraph.
type cellPlan struct {
	sources []planSource
	links   []planLink
	sudcs   []planSudc
	sats    int
	workers int
}

// compile lowers a validated graph into per-cell plans. Node and edge
// iteration order fixes all local indices, so the lowering is
// deterministic.
func compile(g *topo.Graph) ([]cellPlan, error) {
	routes, err := g.Routes()
	if err != nil {
		return nil, err
	}
	plans := make([]cellPlan, g.Cells())

	// SµDC nodes first: their local indices are referenced by edge
	// continuations.
	nodeSudc := make([]int, len(g.Nodes))
	for i := range nodeSudc {
		nodeSudc[i] = -1
	}
	for i, nd := range g.Nodes {
		if nd.Kind != topo.SuDC {
			continue
		}
		p := &plans[nd.Cell]
		nodeSudc[i] = len(p.sudcs)
		p.sudcs = append(p.sudcs, planSudc{workers: nd.Workers, name: nd.Name})
		p.workers += nd.Workers
	}

	// ISL edges, owned by the cell of their From node. Downlink edges
	// carry no simulated frame traffic (insight accounting happens at
	// the SµDC), so they compile away.
	edgeLocal := make([]int, len(g.Edges))
	for i := range edgeLocal {
		edgeLocal[i] = -1
	}
	for ei, e := range g.Edges {
		if e.Kind != topo.ISL {
			continue
		}
		p := &plans[g.Nodes[e.From].Cell]
		edgeLocal[ei] = len(p.links)
		p.links = append(p.links, planLink{
			rate:  e.Rate,
			delay: e.Delay.Seconds(),
			name:  g.EdgeName(ei),
		})
	}

	// Continuations: a frame delivered at edge (u → v) continues into
	// v's input queue (v is an SµDC) or onto v's own route edge.
	for ei, e := range g.Edges {
		if e.Kind != topo.ISL {
			continue
		}
		srcCell := g.Nodes[e.From].Cell
		dstCell := g.Nodes[e.To].Cell
		var target int
		if g.Nodes[e.To].Kind == topo.SuDC {
			target = ^nodeSudc[e.To]
		} else {
			r := routes[e.To]
			if r < 0 {
				return nil, fmt.Errorf("netsim: edge %s delivers to %q, which has no route to an SµDC",
					g.EdgeName(ei), g.Nodes[e.To].Name)
			}
			target = edgeLocal[r]
		}
		l := &plans[srcCell].links[edgeLocal[ei]]
		if srcCell == dstCell {
			l.dest = target
		} else {
			l.cross = true
			l.destCell = dstCell
			l.crossTo = target
			l.dest = ^0
		}
	}

	// Capture groups, in node order within each cell.
	for i, nd := range g.Nodes {
		if nd.Kind != topo.Source {
			continue
		}
		p := &plans[nd.Cell]
		p.sources = append(p.sources, planSource{sats: nd.Sats, edge: edgeLocal[routes[i]]})
		p.sats += nd.Sats
	}
	return plans, nil
}

// frameIDBits is the per-cell frame-ID namespace width: cell c assigns
// IDs starting at c<<frameIDBits, so IDs stay globally unique when a
// frame's lifecycle spans cells.
const frameIDBits = 40

// resetTopo prepares the pooled simulator to run one compiled cell.
// The caller has already scoped c.Obs / c.Trace to the cell and built
// the cell's fault schedule over its own workers and links; cells is
// the total cell count, which splits the shared placement downlink.
func (s *simulator) resetTopo(c Config, p *cellPlan, sched faults.Schedule, deg *degrade.Schedule, cell, cells int) {
	s.resetCommon(c, s.ownRand, p.workers)
	s.topoMode = true
	s.mergeLat = cells > 1
	s.setDegrade(deg)
	s.need = p.workers
	s.totalSats = p.sats
	s.setPlacement(c.Placement, cells)
	if c.Window > 0 {
		// The cell collects its own fragments; the shard runner owns the
		// merger and drains every cell at the cross-cell watermark.
		s.win = window.NewCollector(c.Window.Seconds(), cell)
	}
	s.frameID = int64(cell) << frameIDBits

	s.links = resizeLinks(s.links, len(p.links))
	for i := range p.links {
		pl, l := &p.links[i], &s.links[i]
		rate := pl.rate
		if rate == 0 {
			rate = c.ISLRate
		}
		l.sendTime = s.frameBits / float64(rate)
		l.delay = pl.delay
		l.dest = pl.dest
		l.cross = pl.cross
		l.destCell = pl.destCell
		l.crossTo = pl.crossTo
		l.name = pl.name
		l.label = pl.name
	}

	s.sudcs = resizeSudcs(s.sudcs, len(p.sudcs))
	s.workerSudc = resizeInts(s.workerSudc, p.workers)
	w0 := 0
	for i := range p.sudcs {
		d := &s.sudcs[i]
		d.w0, d.nw = w0, p.sudcs[i].workers
		for w := w0; w < w0+d.nw; w++ {
			s.workerSudc[w] = i
		}
		w0 += d.nw
	}

	if cap(s.sources) >= len(p.sources) {
		s.sources = s.sources[:len(p.sources)]
	} else {
		s.sources = make([]sourceState, len(p.sources))
	}
	for i := range p.sources {
		s.sources[i] = sourceState{sats: p.sources[i].sats, edge: p.sources[i].edge}
	}
	s.satEdge = resizeInts(s.satEdge, p.sats)

	s.q.grow(p.sats + 4*p.workers +
		len(sched.Deaths) + len(sched.Hangs) + len(sched.Outages) + s.degPhases() + 64)
	s.fq.grow(p.sats)
	s.sizeLatencies(p.sats)

	if c.Obs != nil {
		s.rec = newRecorder(c.Obs, c.SampleEvery, s)
	}
	s.seedEvents(sched)
	if s.deg != nil {
		s.applyPhase(0)
	}
}
