package netsim

// frameDeque is a growable ring buffer of frames. The ISL and input
// queues used to be plain slices advanced by reslicing (`q = q[1:]`),
// which walks the backing array forward until append must reallocate —
// a steady drip of allocations proportional to the frame count. The ring
// reuses its array forever: steady-state push/pop is allocation-free,
// and pushFront (batch re-dispatch after a node death) is O(1) instead
// of a copy of the whole queue.
type frameDeque struct {
	buf  []frame
	head int // index of the front element
	n    int
}

func (d *frameDeque) len() int { return d.n }

// reset empties the deque, keeping the backing array. Stale frames are
// plain value structs (no pointers), so they need no clearing to be
// GC-safe.
func (d *frameDeque) reset() { d.head, d.n = 0, 0 }

// at returns the i-th element from the front (0 ≤ i < n).
func (d *frameDeque) at(i int) *frame {
	j := d.head + i
	if j >= len(d.buf) {
		j -= len(d.buf)
	}
	return &d.buf[j]
}

func (d *frameDeque) front() *frame { return &d.buf[d.head] }

// grow reallocates to at least min capacity, unwrapping the ring.
func (d *frameDeque) grow(min int) {
	newCap := 2 * len(d.buf)
	if newCap < min {
		newCap = min
	}
	if newCap < 16 {
		newCap = 16
	}
	nb := make([]frame, newCap)
	for i := 0; i < d.n; i++ {
		nb[i] = *d.at(i)
	}
	d.buf, d.head = nb, 0
}

func (d *frameDeque) pushBack(f frame) {
	if d.n == len(d.buf) {
		d.grow(d.n + 1)
	}
	j := d.head + d.n
	if j >= len(d.buf) {
		j -= len(d.buf)
	}
	d.buf[j] = f
	d.n++
}

func (d *frameDeque) pushFront(f frame) {
	if d.n == len(d.buf) {
		d.grow(d.n + 1)
	}
	d.head--
	if d.head < 0 {
		d.head += len(d.buf)
	}
	d.buf[d.head] = f
	d.n++
}

func (d *frameDeque) popFront() frame {
	f := d.buf[d.head]
	d.head++
	if d.head >= len(d.buf) {
		d.head = 0
	}
	d.n--
	if d.n == 0 {
		d.head = 0
	}
	return f
}

// removeAt deletes the i-th element from the front, shifting whichever
// side of the ring is shorter. Only load shedding uses it, and shedding
// already paid an O(n) scan to find the lowest-value frame.
func (d *frameDeque) removeAt(i int) {
	if i < d.n-1-i {
		for j := i; j > 0; j-- {
			*d.at(j) = *d.at(j - 1)
		}
		d.popFront()
	} else {
		for j := i; j < d.n-1; j++ {
			*d.at(j) = *d.at(j + 1)
		}
		d.n--
	}
}
