package netsim

// Allocation guards for the DES hot loop. The perf contract of the
// allocation-free core rewrite: in the fault-free, obs-off, trace-off
// steady state the simulator performs zero allocations per event —
// the event heap, ring deques, batch free-list, latency buffer, and
// batched RNG all reuse warmed capacity. These tests pin that budget so
// a future change that reintroduces boxing, reslicing, or per-event
// closures fails loudly instead of silently costing 270k allocs/run.

import (
	"math/rand"
	"runtime/debug"
	"testing"
	"time"

	"sudc/internal/faults"
	"sudc/internal/obs/trace"
	"sudc/internal/obs/window"
	"sudc/internal/workload"
)

// steadySim builds a fault-free simulator (obs and tracing off) and
// advances it far enough that every backing array has reached its
// steady-state size.
func steadySim(t testing.TB) *simulator {
	t.Helper()
	c := DefaultConfig(workload.Suite[0])
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	sched, err := faults.Build(c.Faults, c.Workers, c.Duration, c.Seed)
	if err != nil {
		t.Fatal(err)
	}
	s := new(simulator)
	s.reset(c, sched, nil, rand.New(rand.NewSource(c.Seed)))
	for i := 0; i < 4000; i++ {
		if !s.step() {
			t.Fatal("simulation ended during warm-up")
		}
	}
	return s
}

func TestSteadyStateZeroAllocsPerEvent(t *testing.T) {
	s := steadySim(t)
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < 50; i++ {
			if !s.step() {
				t.Fatal("simulation ended mid-measurement")
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state hot loop allocates %.2f times per 50 events, want 0", avg)
	}
}

func TestNilTraceRecorderZeroAllocs(t *testing.T) {
	// The disabled flight recorder costs one nil check per lifecycle
	// point and must never allocate — the trace.Event literal stays on
	// the stack.
	var r *trace.Recorder
	avg := testing.AllocsPerRun(100, func() {
		r.Record(trace.Event{T: 1, Kind: trace.FrameCaptured, Frame: 1, Node: -1})
	})
	if avg != 0 {
		t.Errorf("nil-recorder Record allocates %.2f per call, want 0", avg)
	}
}

func TestNilWindowCollectorZeroAllocs(t *testing.T) {
	// Disabled windowed telemetry (Config.Window == 0) costs one nil
	// check per lifecycle counter and must never allocate.
	var w *window.Collector
	avg := testing.AllocsPerRun(100, func() {
		w.Count(window.CntGenerated, 1)
		w.Latency(42)
	})
	if avg != 0 {
		t.Errorf("nil-collector counters allocate %.2f per call, want 0", avg)
	}
}

func TestSimulatorReusesBackingArrays(t *testing.T) {
	// Re-running a simulator must recycle every arena: the event heap,
	// the latency buffer, and the queues keep their backing arrays
	// across reset — the property that makes RunReplicas reach a
	// zero-growth steady state through the simulator pool.
	c := DefaultConfig(workload.Suite[0])
	c.Duration = 10 * time.Minute
	sched, err := faults.Build(c.Faults, c.Workers, c.Duration, c.Seed)
	if err != nil {
		t.Fatal(err)
	}
	s := new(simulator)
	run := func() {
		s.reset(c, sched, nil, rand.New(rand.NewSource(c.Seed)))
		for s.step() {
		}
		s.finish()
	}
	run()
	heapPtr := &s.q.a[:1][0]
	latPtr := &s.latencies[:1][0]
	islPtr := &s.links[0].queue.buf[0]
	inputPtr := &s.sudcs[0].input.buf[0]
	capQ, capLat := cap(s.q.a), cap(s.latencies)
	run()
	if &s.q.a[:1][0] != heapPtr || cap(s.q.a) != capQ {
		t.Error("event heap backing array was reallocated on reuse")
	}
	if &s.latencies[:1][0] != latPtr || cap(s.latencies) != capLat {
		t.Error("latency buffer was reallocated on reuse")
	}
	if &s.links[0].queue.buf[0] != islPtr {
		t.Error("ISL queue ring was reallocated on reuse")
	}
	if &s.sudcs[0].input.buf[0] != inputPtr {
		t.Error("input queue ring was reallocated on reuse")
	}
}

func TestRunReplicasRecyclesPooledSimulator(t *testing.T) {
	// After RunReplicas finishes, the pool holds warmed simulators whose
	// arenas the next run reuses instead of reallocating. The probe
	// retries: a GC drains sync.Pool (automatic GC is pinned off for the
	// test's duration) and under the race detector Put randomly drops a
	// quarter of returned items, so any single getSim may legitimately
	// come back cold.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	c := DefaultConfig(workload.Suite[0])
	c.Duration = 5 * time.Minute
	for attempt := 0; attempt < 8; attempt++ {
		if _, err := RunReplicas(c, 4, 1); err != nil {
			t.Fatal(err)
		}
		s := getSim()
		if cap(s.q.a) == 0 && cap(s.latencies) == 0 {
			putSim(s) // cold: the pool dropped the warmed simulators
			continue
		}
		if cap(s.q.a) == 0 {
			t.Error("pooled simulator has no warmed event-heap capacity")
		}
		if cap(s.latencies) == 0 {
			t.Error("pooled simulator has no warmed latency capacity")
		}
		if s.rec != nil || s.tr != nil || s.rng.src != nil {
			t.Error("pooled simulator retains per-run references after put")
		}
		if s.win != nil || s.winM != nil {
			t.Error("pooled simulator retains windowed-telemetry state after put")
		}
		putSim(s)
		return
	}
	t.Error("no warmed simulator surfaced from the pool in 8 rounds")
}
