package netsim

import (
	"reflect"
	"testing"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/faults"
	"sudc/internal/obs/trace"
)

// tracedConfig is a fault-heavy scenario exercising every lifecycle
// path: retries, losses, shedding, node deaths, and SEFI hangs.
func tracedConfig(t *testing.T) Config {
	t.Helper()
	c := DefaultConfig(mustApp(t, "Flood Detection"))
	c.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	c.Workers = 5
	c.NeedWorkers = 4
	c.BatchSize = 4
	c.BatchTimeout = 30 * time.Second
	c.Duration = time.Hour
	c.Faults = faults.Scenario{
		NodeMTTF:          2 * time.Hour,
		SEFIMTBE:          20 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	c.Seed = 9
	c.RetryLimit = 3
	c.ShedThreshold = 40
	return c
}

func TestTraceDoesNotPerturbSimulation(t *testing.T) {
	c := tracedConfig(t)
	plain, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Trace = trace.New(0)
	traced, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("attaching the recorder changed the stats:\nplain  %+v\ntraced %+v", plain, traced)
	}
}

func TestTraceLifecycleCountsMatchStats(t *testing.T) {
	c := tracedConfig(t)
	rec := trace.New(0)
	c.Trace = rec
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trace.Kind]int{}
	perFrameComputeEnd := 0
	for _, e := range rec.Events() {
		counts[e.Kind]++
		if e.Kind == trace.ComputeEnd && e.Frame != 0 {
			perFrameComputeEnd++
		}
	}
	if counts[trace.FrameCaptured] != s.FramesGenerated {
		t.Errorf("captured events %d, stats generated %d", counts[trace.FrameCaptured], s.FramesGenerated)
	}
	if perFrameComputeEnd != s.FramesProcessed {
		t.Errorf("per-frame compute ends %d, stats processed %d", perFrameComputeEnd, s.FramesProcessed)
	}
	if counts[trace.Downlinked] != s.InsightsDownlinked {
		t.Errorf("downlink events %d, stats %d", counts[trace.Downlinked], s.InsightsDownlinked)
	}
	if counts[trace.Shed] != s.FramesShed {
		t.Errorf("shed events %d, stats %d", counts[trace.Shed], s.FramesShed)
	}
	if counts[trace.Lost] != s.FramesLost {
		t.Errorf("lost events %d, stats %d", counts[trace.Lost], s.FramesLost)
	}
	if counts[trace.Retry] != s.FramesRetried {
		t.Errorf("retry events %d, stats retried %d", counts[trace.Retry], s.FramesRetried)
	}
	if counts[trace.OutageStart] == 0 || counts[trace.NodeDeath] == 0 || counts[trace.SEFIStart] == 0 {
		t.Errorf("fault-heavy run missing fault events: %v", counts)
	}
	if counts[trace.SEFIStart] != counts[trace.SEFIEnd] {
		t.Errorf("SEFI starts %d != ends %d", counts[trace.SEFIStart], counts[trace.SEFIEnd])
	}
}

func TestTraceEventInvariants(t *testing.T) {
	c := tracedConfig(t)
	rec := trace.New(0)
	c.Trace = rec
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	var lastT float64
	seen := map[int64]bool{}
	firstKind := map[int64]trace.Kind{}
	var maxID int64
	for i, e := range events {
		if e.T < lastT {
			t.Fatalf("event %d goes back in time: %.6f after %.6f", i, e.T, lastT)
		}
		lastT = e.T
		if e.Frame == 0 {
			continue
		}
		if !seen[e.Frame] {
			seen[e.Frame] = true
			firstKind[e.Frame] = e.Kind
		}
		if e.Frame > maxID {
			maxID = e.Frame
		}
	}
	if len(seen) == 0 {
		t.Fatal("no frame events recorded")
	}
	// Frame IDs are 1-based, dense, and assigned in capture order.
	if int(maxID) != len(seen) {
		t.Errorf("frame IDs not dense: max %d over %d frames", maxID, len(seen))
	}
	for id, k := range firstKind {
		if k != trace.FrameCaptured {
			t.Errorf("frame %d: first event %v, want frame_captured", id, k)
		}
	}
}

func TestRunReplicasScopesTracePerReplica(t *testing.T) {
	c := tracedConfig(t)
	c.Duration = 20 * time.Minute
	rec := trace.New(0)
	c.Trace = rec
	if _, err := RunReplicas(c, 3, 2); err != nil {
		t.Fatal(err)
	}
	if got := rec.Scopes(); !reflect.DeepEqual(got, []string{"r000", "r001", "r002"}) {
		t.Fatalf("replica scopes = %v", got)
	}
	if rec.Len() != 0 {
		t.Errorf("root scope must stay empty under RunReplicas, has %d events", rec.Len())
	}
	for _, s := range rec.Scopes() {
		if rec.Child(s).Len() == 0 {
			t.Errorf("replica scope %s recorded nothing", s)
		}
	}
}
