package netsim

import (
	"time"

	"sudc/internal/obs"
	"sudc/internal/placement"
)

// DefaultSampleEvery is the simulated-time sampling period for the
// observability time series when Config.SampleEvery is zero.
const DefaultSampleEvery = time.Minute

// Histogram bucket bounds, in seconds.
var (
	latencyBuckets = []float64{1, 2, 5, 10, 30, 60, 120, 300, 600, 1800, 3600}
	backoffBuckets = []float64{0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 30, 60, 120}
)

// eventNames maps event kinds to observability counter names.
var eventNames = [...]string{
	evFrameReady:   "events/frame_ready",
	evISLDone:      "events/isl_done",
	evBatchDone:    "events/batch_done",
	evBatchingOut:  "events/batch_timeout",
	evISLRetry:     "events/isl_retry",
	evOutageStart:  "events/outage_start",
	evOutageEnd:    "events/outage_end",
	evWorkerDeath:  "events/worker_death",
	evSEFIStart:    "events/sefi_start",
	evSEFIEnd:      "events/sefi_end",
	evArrive:       "events/arrive",
	evArriveMsg:    "events/arrive_msg",
	evPhase:        "events/phase",
	evOnboardDone:  "events/onboard_done",
	evDownlinkDone: "events/downlink_done",
	evEdgeArrive:   "events/edge_arrive",
	evCloudArrive:  "events/cloud_arrive",
	evEdgeDone:     "events/edge_done",
	evCloudDone:    "events/cloud_done",
}

// sampleState is the simulator state visible to the series sampler at
// one simulated instant.
type sampleState struct {
	t            float64 // simulated seconds
	inputQueue   int     // frames waiting for a batch slot
	backlog      int     // frames in flight anywhere in the pipeline
	effective    int     // workers neither dead, hung, nor browned
	availability float64 // availability integral over [0, t]
	retried      int     // cumulative failed-and-retried ISL attempts
	shed         int     // cumulative load-shed frames
	rateMult     float64 // active service-rate multiplier
	powered      int     // workers not parked by a brownout
}

// recorder writes one run's observability stream: per-event counters,
// the latency and retry-backoff histograms, and time series sampled on
// a fixed simulated-time grid. Because every sample is keyed to the
// simulated clock, a run's recorded stream is byte-identical for any
// process worker count — the determinism contract of PR 1/2 extends to
// the metrics.
type recorder struct {
	sim    *simulator
	period float64 // grid spacing, simulated seconds
	next   float64 // next grid point to sample

	queueDepth *obs.Series
	islDepth   []*obs.Series // one per ISL edge, named "isl/<from>-<to>"
	backlog    *obs.Series
	effective  *obs.Series
	avail      *obs.Series
	// retried and shed are per-interval rate series: each sample is the
	// count of new retries/sheds since the previous grid point (the
	// README's "retry and shed rate" reading), so spikes localize to
	// their grid interval. Cumulative totals live in the frames/retried
	// and frames/shed counters; obs.Series.Rate inverts a legacy
	// cumulative recording.
	retried     *obs.Series
	shed        *obs.Series
	prevRetried int
	prevShed    int

	latency *obs.Histogram
	backoff *obs.Histogram

	// Registered only for degraded runs, so degradation-free snapshots
	// stay byte-identical to the pre-degradation exports.
	rateMult *obs.Series
	powered  *obs.Series

	// Registered only for placement runs, same discipline.
	dlDepth *obs.Series
}

// newRecorder builds the run's recorder. The caller configures the
// simulator's link array first: the per-edge ISL depth series are laid
// out one per link, in link order.
func newRecorder(reg *obs.Registry, every time.Duration, sim *simulator) *recorder {
	period := every.Seconds()
	if period <= 0 {
		period = DefaultSampleEvery.Seconds()
	}
	r := &recorder{
		sim:        sim,
		period:     period,
		next:       period,
		queueDepth: reg.Series("queue/depth"),
		backlog:    reg.Series("backlog"),
		effective:  reg.Series("workers/effective"),
		avail:      reg.Series("availability"),
		retried:    reg.Series("retries"),
		shed:       reg.Series("shed"),
		latency:    reg.Histogram("latency_s", latencyBuckets...),
		backoff:    reg.Histogram("retry/backoff_s", backoffBuckets...),
	}
	r.islDepth = make([]*obs.Series, len(sim.links))
	for i := range sim.links {
		r.islDepth[i] = reg.Series("isl/" + sim.links[i].name)
	}
	if sim.deg != nil {
		r.rateMult = reg.Series("throttle/rate_mult")
		r.powered = reg.Series("workers/powered")
	}
	if sim.place != nil {
		r.dlDepth = reg.Series("downlink/depth")
	}
	return r
}

func (r *recorder) record(s sampleState) {
	r.queueDepth.Sample(s.t, float64(s.inputQueue))
	for i, ser := range r.islDepth {
		l := &r.sim.links[i]
		ser.Sample(s.t, float64(l.queue.len()+l.flight.len()))
	}
	r.backlog.Sample(s.t, float64(s.backlog))
	r.effective.Sample(s.t, float64(s.effective))
	r.avail.Sample(s.t, s.availability)
	r.retried.Sample(s.t, float64(s.retried-r.prevRetried))
	r.prevRetried = s.retried
	r.shed.Sample(s.t, float64(s.shed-r.prevShed))
	r.prevShed = s.shed
	if r.rateMult != nil {
		r.rateMult.Sample(s.t, s.rateMult)
		r.powered.Sample(s.t, float64(s.powered))
	}
	if r.dlDepth != nil {
		r.dlDepth.Sample(s.t, float64(r.sim.dlQueue.len()))
	}
}

// catchUp samples every grid point strictly before simulated time t,
// using the simulator state valid since the previously applied event.
func (r *recorder) catchUp(t float64) {
	for r.next < t {
		r.record(r.sim.sampleState(r.next))
		r.next += r.period
	}
}

// finish samples the remaining grid points through the horizon.
func (r *recorder) finish(horizon float64) {
	for r.next <= horizon {
		r.record(r.sim.sampleState(r.next))
		r.next += r.period
	}
}

// flush writes the run's end-of-run counters and gauges.
func (r *recorder) flush(reg *obs.Registry, s Stats, evCount []int64) {
	reg.Counter("frames/generated").Add(int64(s.FramesGenerated))
	reg.Counter("frames/processed").Add(int64(s.FramesProcessed))
	reg.Counter("frames/insights").Add(int64(s.InsightsDownlinked))
	reg.Counter("frames/retried").Add(int64(s.FramesRetried))
	reg.Counter("frames/redispatched").Add(int64(s.FramesRedispatched))
	reg.Counter("frames/shed").Add(int64(s.FramesShed))
	reg.Counter("frames/lost").Add(int64(s.FramesLost))
	for kind, n := range evCount {
		if n > 0 {
			reg.Counter(eventNames[kind]).Add(n)
		}
	}
	reg.Gauge("availability_final").Set(s.Availability)
	reg.Gauge("degraded_fraction").Set(s.DegradedFraction)
	reg.Gauge("utilization/isl").Set(s.ISLUtilization)
	reg.Gauge("utilization/workers").Set(s.WorkerUtilization)
	reg.Gauge("queue/max").Set(float64(s.MaxInputQueue))
	if r.sim.deg != nil {
		reg.Gauge("throttle/mean_rate_mult").Set(s.MeanRateMult)
		reg.Gauge("throttle/time_s").Set(s.ThrottledTime.Seconds())
		reg.Gauge("brownout/time_s").Set(s.BrownoutTime.Seconds())
	}
	if r.sim.place != nil {
		for t := placement.Tier(0); t < placement.NumTiers; t++ {
			reg.Counter("placed/" + t.String()).Add(int64(s.TierFrames[t]))
		}
		reg.Gauge("placed/mean_cost").Set(s.PlacedMeanCost)
		reg.Gauge("placed/oracle_cost").Set(s.OracleMeanCost)
	}
}
