package netsim

import (
	"testing"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/faults"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// FuzzConfigValidate throws arbitrary field values at Validate — it must
// classify every configuration without panicking — and, when the config
// is valid and small enough to simulate quickly, runs it to check that a
// validated config never fails or breaks frame conservation.
func FuzzConfigValidate(f *testing.F) {
	f.Add(2, 6.0, 2, 4, 30.0, 0.2, 300.0, 0.0, 0.0, 0.0, 0, 2.0, 0)
	f.Add(64, 1.2, 33, 8, 120.0, 0.2, 600.0, 3600.0, 0.0, 0.0, 8, 2.0, 0)
	f.Add(1, 0.5, 1, 1, 1.0, 0.0, 60.0, 60.0, 30.0, 10.0, 1, 0.5, 16)
	f.Add(-3, -1.0, 0, -2, -5.0, 1.5, 0.0, -1.0, 5.0, -2.0, -1, -0.1, -9)
	f.Fuzz(func(t *testing.T, sats int, fpm float64, workers, batch int,
		timeoutS, insight, durS, mttfS, sefiS, outageS float64,
		retries int, backoffS float64, shed int) {
		c := Config{
			Constellation:   constellation.Constellation{Satellites: sats, FramesPerMinute: fpm},
			App:             workload.Suite[0],
			ISLRate:         units.GbpsOf(30),
			Workers:         workers,
			WorkerPower:     workload.Suite[0].GPUPower,
			BatchSize:       batch,
			BatchTimeout:    time.Duration(timeoutS * float64(time.Second)),
			InsightFraction: insight,
			Duration:        time.Duration(durS * float64(time.Second)),
			Seed:            1,
			Faults: faults.Scenario{
				NodeMTTF:          time.Duration(mttfS * float64(time.Second)),
				SEFIMTBE:          time.Duration(sefiS * float64(time.Second)),
				SEFIRecovery:      time.Duration(sefiS * float64(time.Second) / 10),
				ISLOutageMTBF:     time.Duration(outageS * float64(time.Second)),
				ISLOutageDuration: time.Duration(outageS * float64(time.Second) / 5),
			},
			RetryLimit:      retries,
			RetryBackoff:    time.Duration(backoffS * float64(time.Second)),
			RetryBackoffCap: time.Duration(backoffS * 4 * float64(time.Second)),
			ShedThreshold:   shed,
		}
		err := c.Validate() // must never panic, whatever the fields
		if err != nil {
			return
		}
		// Only simulate configs cheap enough for a fuzz iteration.
		if sats > 4 || fpm > 30 || workers > 4 || batch > 64 ||
			c.Duration > 10*time.Minute ||
			(c.Faults.SEFIMTBE > 0 && c.Faults.SEFIMTBE < time.Second) ||
			(c.Faults.ISLOutageMTBF > 0 && c.Faults.ISLOutageMTBF < time.Second) ||
			(c.RetryBackoff > 0 && c.RetryBackoff < 100*time.Millisecond) {
			return
		}
		s, runErr := Run(c)
		if runErr != nil {
			t.Fatalf("validated config must simulate: %v", runErr)
		}
		if got := s.FramesProcessed + s.Backlog + s.FramesShed + s.FramesLost; got != s.FramesGenerated {
			t.Fatalf("conservation: processed+backlog+shed+lost = %d ≠ %d generated", got, s.FramesGenerated)
		}
		if s.Availability < 0 || s.Availability > 1 || s.DegradedFraction < 0 || s.DegradedFraction > 1 {
			t.Fatalf("availability %v / degraded %v out of [0,1]", s.Availability, s.DegradedFraction)
		}
	})
}
