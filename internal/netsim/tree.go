package netsim

import "math"

// minTree is an incremental tournament (winner) tree over float64
// keys: the minimum is read in O(1) and a single key update costs
// O(log n), versus the O(n) linear rescan the sharded runner used
// before. Ties break toward the lower leaf index, which is what makes
// the k-way outbox merge reproduce the stable sort it replaced.
//
// Layout: leaves are padded to a power of two (base) and keyed +Inf
// beyond n, so every internal node always has two contestants. Node i
// (1 ≤ i < base) stores the winning leaf index of its subtree in
// win[i]; the children of node i are nodes 2i and 2i+1, and leaf j
// lives at node base+j. win[1] is the overall winner. A base of 1
// (n ≤ 1) has no internal nodes and is special-cased.
type minTree struct {
	n    int
	base int
	key  []float64
	win  []int
}

// reset sizes the tree for n leaves, all keyed +Inf.
func (t *minTree) reset(n int) {
	base := 1
	for base < n {
		base <<= 1
	}
	if cap(t.key) < base {
		t.key = make([]float64, base)
		t.win = make([]int, base)
	} else {
		t.key = t.key[:base]
		t.win = t.win[:base]
	}
	t.n, t.base = n, base
	inf := math.Inf(1)
	for i := range t.key {
		t.key[i] = inf
	}
	// With every key equal the lower leaf index wins each contest, so
	// every internal node inherits its left child's winner.
	for i := base - 1; i >= 1; i-- {
		if 2*i >= base {
			t.win[i] = 2*i - base
		} else {
			t.win[i] = t.win[2*i]
		}
	}
}

// loadFrom copies the leaf keys of src (same leaf count) and rebuilds
// the contests bottom-up in O(n) — the per-round initialization of the
// lookahead Dijkstra.
func (t *minTree) loadFrom(src *minTree) {
	if cap(t.key) < src.base {
		t.key = make([]float64, src.base)
		t.win = make([]int, src.base)
	} else {
		t.key = t.key[:src.base]
		t.win = t.win[:src.base]
	}
	t.n, t.base = src.n, src.base
	copy(t.key, src.key)
	for i := t.base - 1; i >= 1; i-- {
		l, r := t.leafOf(2*i), t.leafOf(2*i+1)
		if t.key[r] < t.key[l] {
			t.win[i] = r
		} else {
			t.win[i] = l
		}
	}
}

// leafOf resolves node c to its winning leaf.
func (t *minTree) leafOf(c int) int {
	if c >= t.base {
		return c - t.base
	}
	return t.win[c]
}

// update sets leaf i's key and replays the contests on its root path.
func (t *minTree) update(i int, k float64) {
	t.key[i] = k
	for p := (t.base + i) >> 1; p >= 1; p >>= 1 {
		l, r := t.leafOf(2*p), t.leafOf(2*p+1)
		// l < r always (left subtree holds the lower leaves), so ties
		// resolve to the lower index.
		if t.key[r] < t.key[l] {
			t.win[p] = r
		} else {
			t.win[p] = l
		}
	}
}

// minLeaf returns the leaf index holding the minimum key (ties → the
// lowest index).
func (t *minTree) minLeaf() int {
	if t.base == 1 {
		return 0
	}
	return t.win[1]
}

// minKey returns the minimum key.
func (t *minTree) minKey() float64 {
	return t.key[t.minLeaf()]
}
