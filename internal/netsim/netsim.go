// Package netsim is a discrete-event simulation of the paper's Figure 14
// processing pipeline: EO satellites produce imagery frames, frames cross
// the shared FSO inter-satellite link into the SµDC's input buffer, a
// batcher groups them into energy-minimizing batches and dispatches them to
// GPU workers, and an analyzer decides which results are "insights" worth
// downlinking.
//
// The simulator cross-validates the analytical sizing: a 4 kW SµDC keeps up
// with a 64-satellite constellation for every Table III application except
// Panoptic Segmentation, which needs four (the "# SµDC" column), and
// batching latency at low frame rates reaches the "several minutes" the
// paper describes.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Constellation produces the frames.
	Constellation constellation.Constellation
	// App is the processed application (frame size, GPU characteristics).
	App workload.App
	// ISLRate is the aggregate link capacity into the SµDC.
	ISLRate units.DataRate
	// Workers is the number of GPU nodes; WorkerPower their per-node draw.
	Workers     int
	WorkerPower units.Power
	// BatchSize is the energy-minimizing batch; a partial batch is
	// dispatched after BatchTimeout.
	BatchSize    int
	BatchTimeout time.Duration
	// InsightFraction of results is downlinked; the rest is discarded by
	// the analyzer.
	InsightFraction float64
	// Duration is the simulated time span.
	Duration time.Duration
	// Seed drives the arrival-jitter and analyzer randomness.
	Seed int64
}

// DefaultConfig simulates the paper's reference scenario for one app: the
// 64-satellite constellation feeding a 4 kW SµDC.
func DefaultConfig(app workload.App) Config {
	workers := int(4000 / float64(app.GPUPower))
	if workers < 1 {
		workers = 1
	}
	return Config{
		Constellation:   constellation.Default64,
		App:             app,
		ISLRate:         units.GbpsOf(30),
		Workers:         workers,
		WorkerPower:     app.GPUPower,
		BatchSize:       8,
		BatchTimeout:    2 * time.Minute,
		InsightFraction: 0.2,
		Duration:        2 * time.Hour,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Constellation.Validate(); err != nil {
		return err
	}
	if err := c.App.Validate(); err != nil {
		return err
	}
	if c.ISLRate <= 0 {
		return errors.New("netsim: ISL rate must be positive")
	}
	if c.Workers < 1 {
		return errors.New("netsim: need at least one worker")
	}
	if c.WorkerPower <= 0 {
		return errors.New("netsim: worker power must be positive")
	}
	if c.BatchSize < 1 {
		return errors.New("netsim: batch size must be ≥ 1")
	}
	if c.BatchTimeout <= 0 {
		return errors.New("netsim: batch timeout must be positive")
	}
	if c.InsightFraction < 0 || c.InsightFraction > 1 {
		return fmt.Errorf("netsim: insight fraction %v out of [0,1]", c.InsightFraction)
	}
	if c.Duration <= 0 {
		return errors.New("netsim: duration must be positive")
	}
	return nil
}

// Stats is the simulation outcome.
type Stats struct {
	// FramesGenerated, FramesProcessed, InsightsDownlinked count frames.
	FramesGenerated    int
	FramesProcessed    int
	InsightsDownlinked int
	// Backlog is frames still in flight or queued at the end of the run.
	Backlog int
	// MeanLatency and P95Latency are generation→processing-complete times.
	MeanLatency time.Duration
	P95Latency  time.Duration
	// ISLUtilization and WorkerUtilization are busy-time fractions.
	ISLUtilization    float64
	WorkerUtilization float64
	// MaxInputQueue is the peak frame count waiting for a batch slot.
	MaxInputQueue int
	// ComputeEnergy is the integrated worker energy over the run.
	ComputeEnergy units.Energy
	// KeptUp reports whether the SµDC drained its input: backlog at the
	// end is below twice a batch per worker.
	KeptUp bool
}

// event kinds.
const (
	evFrameReady  = iota // a satellite finished capturing a frame
	evISLDone            // a frame finished crossing the ISL
	evBatchDone          // a worker finished a batch
	evBatchingOut        // batch timeout fired
)

type event struct {
	at   float64 // seconds
	kind int
	sat  int
	seq  int // heap tiebreak for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type frame struct {
	born float64 // generation time, s
}

// Run executes the simulation with a fresh RNG seeded from c.Seed — the
// deterministic convenience wrapper around RunWithRand.
func Run(c Config) (Stats, error) {
	return RunWithRand(c, rand.New(rand.NewSource(c.Seed)))
}

// RunWithRand executes the simulation drawing all randomness (arrival
// phases and jitter, analyzer decisions) from the injected RNG. The RNG
// is owned by this run: callers running simulations in parallel must
// fork one stream per run (par.ForkRand) rather than share one.
func RunWithRand(c Config, rng *rand.Rand) (Stats, error) {
	if err := c.Validate(); err != nil {
		return Stats{}, err
	}
	if rng == nil {
		return Stats{}, errors.New("netsim: nil rng")
	}
	horizon := c.Duration.Seconds()

	framePeriod := 60 / c.Constellation.FramesPerMinute
	frameBits := c.App.FrameBits() * (1 - c.Constellation.FilterRate)
	islTime := frameBits / float64(c.ISLRate)

	// Worker batch service time: pixels per batch over the node's pixel
	// throughput (Table III kpixel/J × node power).
	nodePixPerSec := c.App.KPixelPerJoule * 1e3 * float64(c.WorkerPower)
	framePixels := c.App.FrameMPixels * 1e6 * (1 - c.Constellation.FilterRate)

	var (
		q            eventQueue
		seq          int
		islQueue     []frame // frames waiting for the link
		islBusy      bool
		islBusyTill  float64
		islBusySum   float64
		inputQueue   []frame // frames landed, waiting to batch
		freeWorkers  = c.Workers
		busySum      float64 // worker-seconds of service
		timeoutArmed bool
		stats        Stats
		latencies    []float64
		now          float64
	)

	push := func(at float64, kind, sat int) {
		seq++
		heap.Push(&q, event{at: at, kind: kind, sat: sat, seq: seq})
	}

	// Seed per-satellite frame generation with random phase.
	for s := 0; s < c.Constellation.Satellites; s++ {
		push(rng.Float64()*framePeriod, evFrameReady, s)
	}

	startISL := func() {
		if islBusy || len(islQueue) == 0 {
			return
		}
		islBusy = true
		islBusyTill = now + islTime
		islBusySum += islTime
		push(islBusyTill, evISLDone, 0)
	}

	dispatch := func(force bool) {
		for freeWorkers > 0 && (len(inputQueue) >= c.BatchSize || (force && len(inputQueue) > 0)) {
			n := c.BatchSize
			if n > len(inputQueue) {
				n = len(inputQueue)
			}
			batch := inputQueue[:n]
			inputQueue = append([]frame(nil), inputQueue[n:]...)
			freeWorkers--
			service := float64(n) * framePixels / nodePixPerSec
			busySum += service
			done := now + service
			for _, f := range batch {
				latencies = append(latencies, done-f.born)
			}
			stats.FramesProcessed += n
			for i := 0; i < n; i++ {
				if rng.Float64() < c.InsightFraction {
					stats.InsightsDownlinked++
				}
			}
			push(done, evBatchDone, 0)
		}
		if len(inputQueue) > 0 && !timeoutArmed {
			timeoutArmed = true
			push(now+c.BatchTimeout.Seconds(), evBatchingOut, 0)
		}
	}

	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		if e.at > horizon {
			break
		}
		now = e.at
		switch e.kind {
		case evFrameReady:
			stats.FramesGenerated++
			islQueue = append(islQueue, frame{born: now})
			startISL()
			// Next frame from this satellite, with 5% timing jitter.
			jitter := 1 + 0.1*(rng.Float64()-0.5)
			push(now+framePeriod*jitter, evFrameReady, e.sat)
		case evISLDone:
			islBusy = false
			f := islQueue[0]
			islQueue = islQueue[1:]
			inputQueue = append(inputQueue, f)
			if len(inputQueue) > stats.MaxInputQueue {
				stats.MaxInputQueue = len(inputQueue)
			}
			startISL()
			dispatch(false)
		case evBatchDone:
			freeWorkers++
			dispatch(false)
		case evBatchingOut:
			timeoutArmed = false
			dispatch(true)
		}
	}

	stats.Backlog = stats.FramesGenerated - stats.FramesProcessed
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		stats.MeanLatency = time.Duration(sum / float64(len(latencies)) * float64(time.Second))
		stats.P95Latency = time.Duration(latencies[int(float64(len(latencies))*0.95)] * float64(time.Second))
	}
	stats.ISLUtilization = units.Clamp(islBusySum/horizon, 0, 1)
	stats.WorkerUtilization = units.Clamp(busySum/(horizon*float64(c.Workers)), 0, 1)
	stats.ComputeEnergy = units.Energy(busySum * float64(c.WorkerPower))
	stats.KeptUp = stats.Backlog <= 2*c.BatchSize*c.Workers
	return stats, nil
}
