// Package netsim is a discrete-event simulation of the paper's Figure 14
// processing pipeline: EO satellites produce imagery frames, frames cross
// the shared FSO inter-satellite link into the SµDC's input buffer, a
// batcher groups them into energy-minimizing batches and dispatches them to
// GPU workers, and an analyzer decides which results are "insights" worth
// downlinking.
//
// The simulator cross-validates the analytical sizing: a 4 kW SµDC keeps up
// with a 64-satellite constellation for every Table III application except
// Panoptic Segmentation, which needs four (the "# SµDC" column), and
// batching latency at low frame rates reaches the "several minutes" the
// paper describes.
//
// Beyond the fault-free pipeline, the simulator replays fault schedules
// from package faults — transient SEFI hangs with watchdog recovery,
// permanent node deaths, and ISL outage windows — under degraded-mode
// policies: frame retry with capped exponential backoff across the ISL,
// re-dispatch of batches stranded on a dead worker, and load-shedding of
// the lowest-value frames once the input queue exceeds a threshold. This
// is how the paper's fourth optimization (near-zero-cost compute
// overprovisioning) is validated end to end: DES-measured availability
// under spares is cross-checked against reliability.Availability.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/faults"
	"sudc/internal/obs"
	"sudc/internal/obs/trace"
	"sudc/internal/par"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// ShedAll is the ShedThreshold sentinel for a threshold of literally
// zero: every frame landing in the input queue is immediately shed (the
// queue is never allowed to hold a frame). The zero value 0 means
// shedding is disabled, so an explicit zero threshold needs its own
// spelling.
const ShedAll = -1

// Config describes one simulation run.
type Config struct {
	// Constellation produces the frames.
	Constellation constellation.Constellation
	// App is the processed application (frame size, GPU characteristics).
	App workload.App
	// ISLRate is the aggregate link capacity into the SµDC.
	ISLRate units.DataRate
	// Workers is the number of GPU nodes; WorkerPower their per-node draw.
	Workers     int
	WorkerPower units.Power
	// BatchSize is the energy-minimizing batch; a partial batch is
	// dispatched after BatchTimeout.
	BatchSize    int
	BatchTimeout time.Duration
	// InsightFraction of results is downlinked; the rest is discarded by
	// the analyzer.
	InsightFraction float64
	// Duration is the simulated time span.
	Duration time.Duration
	// Seed drives the arrival-jitter and analyzer randomness, and forks
	// the fault-schedule streams.
	Seed int64

	// Faults injects worker and ISL faults; the zero value simulates a
	// fault-free world.
	Faults faults.Scenario
	// NeedWorkers is the worker count that defines full service for
	// availability accounting (0 means Workers). With spare nodes, set
	// NeedWorkers to the sized need and Workers to need + spares.
	NeedWorkers int
	// RetryLimit caps failed ISL transmission attempts per frame before
	// the frame is dropped as lost (0 = retry forever).
	RetryLimit int
	// RetryBackoff is the delay before the first ISL retry; it doubles
	// per failed attempt, capped at RetryBackoffCap. Zero values default
	// to 2 s and 60 s.
	RetryBackoff    time.Duration
	RetryBackoffCap time.Duration
	// ShedThreshold sheds the lowest-value queued frame whenever the
	// input queue grows beyond it. The zero value disables shedding;
	// use ShedAll (-1) for an explicit threshold of zero, which sheds
	// every queued frame. Values below ShedAll are invalid.
	ShedThreshold int

	// Obs, when non-nil, receives this run's observability stream:
	// frame counters, the latency and retry-backoff histograms, and
	// queue-depth/backlog/retry/shed/availability time series sampled
	// on the simulated clock every SampleEvery. Because sampling is
	// keyed to simulated time only, the stream is byte-identical for
	// any process worker count. Each run needs its own registry or
	// scope; RunReplicas scopes one per replica automatically.
	Obs *obs.Registry
	// SampleEvery is the simulated-time sampling period for the Obs
	// time series (0 = DefaultSampleEvery; negative is invalid).
	SampleEvery time.Duration

	// Trace, when non-nil, receives the run's frame-lineage flight
	// recording: the full per-frame lifecycle (capture, ISL transfer,
	// retries, batching, compute, downlink) plus the fault events that
	// stalled it, with stable frame IDs assigned in capture order.
	// Emission order is the DES event order — a pure function of
	// simulated time — so recordings are byte-identical for any process
	// worker count. Each run needs its own recorder (or child scope);
	// RunReplicas scopes one child per replica automatically.
	Trace *trace.Recorder
}

// DefaultConfig simulates the paper's reference scenario for one app: the
// 64-satellite constellation feeding a 4 kW SµDC.
func DefaultConfig(app workload.App) Config {
	workers := int(4000 / float64(app.GPUPower))
	if workers < 1 {
		workers = 1
	}
	return Config{
		Constellation:   constellation.Default64,
		App:             app,
		ISLRate:         units.GbpsOf(30),
		Workers:         workers,
		WorkerPower:     app.GPUPower,
		BatchSize:       8,
		BatchTimeout:    2 * time.Minute,
		InsightFraction: 0.2,
		Duration:        2 * time.Hour,
		Seed:            1,
		RetryLimit:      8,
		RetryBackoff:    2 * time.Second,
		RetryBackoffCap: time.Minute,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Constellation.Validate(); err != nil {
		return err
	}
	if err := c.App.Validate(); err != nil {
		return err
	}
	if c.ISLRate <= 0 {
		return errors.New("netsim: ISL rate must be positive")
	}
	if c.Workers < 1 {
		return errors.New("netsim: need at least one worker")
	}
	if c.WorkerPower <= 0 {
		return errors.New("netsim: worker power must be positive")
	}
	if c.BatchSize < 1 {
		return errors.New("netsim: batch size must be ≥ 1")
	}
	if c.BatchTimeout <= 0 {
		return errors.New("netsim: batch timeout must be positive")
	}
	if c.InsightFraction < 0 || c.InsightFraction > 1 {
		return fmt.Errorf("netsim: insight fraction %v out of [0,1]", c.InsightFraction)
	}
	if c.Duration <= 0 {
		return errors.New("netsim: duration must be positive")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.NeedWorkers < 0 {
		return errors.New("netsim: negative need-workers")
	}
	if c.NeedWorkers > c.Workers {
		return fmt.Errorf("netsim: need %d workers but only %d installed", c.NeedWorkers, c.Workers)
	}
	if c.RetryLimit < 0 {
		return errors.New("netsim: negative retry limit")
	}
	if c.RetryBackoff < 0 {
		return errors.New("netsim: negative retry backoff")
	}
	if c.RetryBackoffCap < 0 {
		return errors.New("netsim: negative retry backoff cap")
	}
	if c.RetryBackoffCap > 0 && c.RetryBackoff > c.RetryBackoffCap {
		return errors.New("netsim: retry backoff exceeds its cap")
	}
	if c.ShedThreshold < ShedAll {
		return fmt.Errorf("netsim: shed threshold %d below ShedAll (%d)", c.ShedThreshold, ShedAll)
	}
	if c.SampleEvery < 0 {
		return errors.New("netsim: negative sample period")
	}
	return nil
}

// Stats is the simulation outcome.
type Stats struct {
	// FramesGenerated, FramesProcessed, InsightsDownlinked count frames.
	FramesGenerated    int
	FramesProcessed    int
	InsightsDownlinked int
	// Backlog is frames still in flight or queued at the end of the run.
	Backlog int
	// MeanLatency and P95Latency are generation→processing-complete times.
	MeanLatency time.Duration
	P95Latency  time.Duration
	// ISLUtilization and WorkerUtilization are busy-time fractions.
	ISLUtilization    float64
	WorkerUtilization float64
	// MaxInputQueue is the peak frame count waiting for a batch slot.
	MaxInputQueue int
	// ComputeEnergy is the integrated worker energy over the run.
	ComputeEnergy units.Energy
	// KeptUp reports whether the SµDC drained its input: backlog at the
	// end is below twice a batch per worker.
	KeptUp bool

	// FramesRetried counts failed ISL transmission attempts that were
	// retried with exponential backoff.
	FramesRetried int
	// FramesRedispatched counts frames re-queued after the worker
	// serving their batch died mid-service.
	FramesRedispatched int
	// FramesShed counts lowest-value frames dropped by load shedding.
	FramesShed int
	// FramesLost counts frames dropped at the ISL retry limit.
	FramesLost int
	// WorkerDowntime is the accumulated dead-or-hung worker time summed
	// over all workers (worker-time, not wall-clock).
	WorkerDowntime time.Duration
	// ISLDowntime is the total ISL outage time within the run.
	ISLDowntime time.Duration
	// DegradedFraction is the fraction of the run spent with fewer than
	// the full worker complement in service.
	DegradedFraction float64
	// Availability is the fraction of the run with at least NeedWorkers
	// (default: all workers) in service — the DES counterpart of
	// reliability.Availability.
	Availability float64
}

// event kinds.
const (
	evFrameReady  = iota // a satellite finished capturing a frame
	evISLDone            // a frame finished crossing the ISL
	evBatchDone          // a worker finished a batch
	evBatchingOut        // batch timeout fired
	evISLRetry           // backoff expired, the head frame retries the ISL
	evOutageStart        // the ISL goes down
	evOutageEnd          // the ISL recovers
	evWorkerDeath        // a worker dies permanently
	evSEFIStart          // a worker hangs on a transient SEFI
	evSEFIEnd            // the watchdog recovered a hung worker
)

type event struct {
	at   float64 // seconds
	kind int
	who  int     // satellite or worker index
	gen  int     // invalidation generation for evISLDone / evBatchDone
	dur  float64 // payload: recovery or outage duration, seconds
	seq  int     // heap tiebreak for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type frame struct {
	id    int64   // stable 1-based frame ID, assigned in capture order
	born  float64 // generation time, s
	value float64 // analyzer value draw in [0,1): the top InsightFraction quantile is an insight
	tries int     // failed ISL transmission attempts
}

// workerState is one GPU node's health and service state.
type workerState struct {
	dead   bool
	hung   bool
	busy   bool
	gen    int     // invalidates stale evBatchDone events
	doneAt float64 // pending batch completion time
	batch  []frame // in-flight frames, for re-dispatch on death
}

// Run executes the simulation with a fresh RNG seeded from c.Seed — the
// deterministic convenience wrapper around RunWithRand.
func Run(c Config) (Stats, error) {
	return RunWithRand(c, rand.New(rand.NewSource(c.Seed)))
}

// RunReplicas executes `replicas` independent runs of the configuration,
// seeding replica r with par.ForkSeed(c.Seed, r), evaluated in parallel
// over the shared engine. Both the per-replica fault schedules and the
// returned Stats slice are identical for any worker count (workers ≤ 0
// uses the engine default). Availability experiments average over
// replicas to beat per-trajectory noise.
func RunReplicas(c Config, replicas, workers int) ([]Stats, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if replicas < 1 {
		return nil, errors.New("netsim: replicas must be ≥ 1")
	}
	out := make([]Stats, replicas)
	err := par.ForNErr(replicas, func(r int) error {
		cc := c
		cc.Seed = par.ForkSeed(c.Seed, r)
		if c.Obs != nil {
			// Each replica writes disjoint names into the shared store,
			// so the merged snapshot is identical for any worker count.
			cc.Obs = c.Obs.Scope(fmt.Sprintf("r%03d", r))
		}
		if c.Trace != nil {
			// Same discipline for the flight recorder: one child scope
			// per replica, exported in sorted scope order.
			cc.Trace = c.Trace.Child(fmt.Sprintf("r%03d", r))
		}
		s, err := Run(cc)
		if err != nil {
			return err
		}
		out[r] = s
		return nil
	}, par.Workers(workers))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunWithRand executes the simulation drawing all randomness (arrival
// phases and jitter, analyzer decisions) from the injected RNG. The RNG
// is owned by this run: callers running simulations in parallel must
// fork one stream per run (par.ForkRand) rather than share one. Fault
// schedules are not drawn from this RNG: they fork their own per-node
// streams from c.Seed (package faults), so enabling a fault process
// never perturbs arrivals.
func RunWithRand(c Config, rng *rand.Rand) (Stats, error) {
	if err := c.Validate(); err != nil {
		return Stats{}, err
	}
	if rng == nil {
		return Stats{}, errors.New("netsim: nil rng")
	}
	sched, err := faults.Build(c.Faults, c.Workers, c.Duration, c.Seed)
	if err != nil {
		return Stats{}, err
	}
	horizon := c.Duration.Seconds()

	framePeriod := 60 / c.Constellation.FramesPerMinute
	frameBits := c.App.FrameBits() * (1 - c.Constellation.FilterRate)
	islTime := frameBits / float64(c.ISLRate)

	// Worker batch service time: pixels per batch over the node's pixel
	// throughput (Table III kpixel/J × node power).
	nodePixPerSec := c.App.KPixelPerJoule * 1e3 * float64(c.WorkerPower)
	framePixels := c.App.FrameMPixels * 1e6 * (1 - c.Constellation.FilterRate)

	need := c.NeedWorkers
	if need == 0 {
		need = c.Workers
	}
	backoffBase := c.RetryBackoff.Seconds()
	if backoffBase <= 0 {
		backoffBase = 2
	}
	backoffCap := c.RetryBackoffCap.Seconds()
	if backoffCap < backoffBase {
		backoffCap = 60
	}
	if backoffCap < backoffBase {
		backoffCap = backoffBase
	}
	// capDoublings is the attempt count at which the exponential backoff
	// saturates at its cap. Clamping the exponent *before* the doubling
	// is applied guards the float64 math: under RetryLimit 0 a frame can
	// accumulate thousands of failed attempts across a long ISL outage,
	// and an unguarded 2^(tries-1) overflows to +Inf — one zero or NaN
	// ingredient away from a corrupted event timestamp that would break
	// the event-queue ordering.
	capDoublings := int(math.Ceil(math.Log2(backoffCap / backoffBase)))
	if capDoublings < 0 {
		capDoublings = 0
	}

	var (
		q            eventQueue
		seq          int
		islQueue     []frame // frames waiting for the link
		islSending   bool
		islDown      bool
		islGen       int     // invalidates aborted transfers
		islSendStart float64 // start of the in-flight transfer
		retryArmed   bool    // head frame is waiting out its backoff
		islBusySum   float64
		islDownSum   float64
		inputQueue   []frame // frames landed, waiting to batch
		workers      = make([]workerState, c.Workers)
		effective    = c.Workers // workers neither dead nor hung
		lastT        float64     // last availability-integral checkpoint
		upTime       float64     // time with effective ≥ need
		degradedTime float64     // time with effective < Workers
		downWS       float64     // worker-seconds dead or hung
		busySum      float64     // worker-seconds of useful service
		timeoutArmed bool
		stats        Stats
		latencies    []float64
		now          float64
	)

	push := func(e event) {
		seq++
		e.seq = seq
		heap.Push(&q, e)
	}

	// accrue integrates the availability accumulators up to time t.
	accrue := func(t float64) {
		if dt := t - lastT; dt > 0 {
			if effective >= need {
				upTime += dt
			}
			if effective < c.Workers {
				degradedTime += dt
			}
			downWS += dt * float64(c.Workers-effective)
		}
		lastT = t
	}

	recount := func() {
		effective = 0
		for i := range workers {
			if !workers[i].dead && !workers[i].hung {
				effective++
			}
		}
	}

	// Observability: series are sampled on the simulated-time grid,
	// counters and histograms accumulate as events fire. evCount stays
	// a plain local array so the hot loop pays one increment per event
	// whether or not metrics are enabled.
	var rec *recorder
	var evCount [len(eventNames)]int64
	if c.Obs != nil {
		rec = newRecorder(c.Obs, c.SampleEvery)
	}

	// Frame-lineage flight recording. tr stays nil when tracing is off,
	// so the hot loop pays one nil check per lifecycle point. Frame IDs
	// are assigned in capture order and outage windows are numbered in
	// start order — both pure functions of simulated time.
	tr := c.Trace
	var (
		frameID     int64
		outageIdx   int
		outageCause string
	)
	sampleAt := func(t float64) sampleState {
		up := upTime
		if effective >= need && t > lastT {
			up += t - lastT
		}
		avail := 1.0
		if t > 0 {
			avail = up / t
		}
		return sampleState{
			t:          t,
			inputQueue: len(inputQueue),
			islQueue:   len(islQueue),
			backlog: stats.FramesGenerated - stats.FramesProcessed -
				stats.FramesShed - stats.FramesLost,
			effective:    effective,
			availability: avail,
			retried:      stats.FramesRetried,
			shed:         stats.FramesShed,
		}
	}

	// Seed per-satellite frame generation with random phase.
	for s := 0; s < c.Constellation.Satellites; s++ {
		push(event{at: rng.Float64() * framePeriod, kind: evFrameReady, who: s})
	}
	// Inject the fault schedule.
	for w, death := range sched.Deaths {
		if death <= horizon {
			push(event{at: death, kind: evWorkerDeath, who: w})
		}
	}
	for _, hg := range sched.Hangs {
		push(event{at: hg.At, kind: evSEFIStart, who: hg.Node, dur: hg.Recovery})
	}
	for _, o := range sched.Outages {
		push(event{at: o.Start, kind: evOutageStart, dur: o.Duration})
	}

	backoff := func(tries int) float64 {
		k := tries - 1
		if k >= capDoublings {
			return backoffCap
		}
		d := math.Ldexp(backoffBase, k)
		if d > backoffCap {
			d = backoffCap
		}
		return d
	}

	// failHead records a failed transmission attempt for the head frame:
	// retry after backoff, or drop it past the retry limit.
	failHead := func() {
		f := &islQueue[0]
		f.tries++
		if c.RetryLimit > 0 && f.tries > c.RetryLimit {
			if tr != nil {
				tr.Record(trace.Event{T: now, Kind: trace.Lost, Frame: f.id,
					Node: -1, Attempt: f.tries, Cause: outageCause})
			}
			islQueue = islQueue[1:]
			stats.FramesLost++
			return
		}
		stats.FramesRetried++
		retryArmed = true
		delay := backoff(f.tries)
		if rec != nil {
			rec.backoff.Observe(delay)
		}
		if tr != nil {
			tr.Record(trace.Event{T: now, Kind: trace.Retry, Frame: f.id,
				Node: -1, Attempt: f.tries, Backoff: delay, Cause: outageCause})
		}
		push(event{at: now + delay, kind: evISLRetry})
	}

	// attemptISL starts the head frame's transfer, or fails it into
	// backoff when the link is down.
	attemptISL := func() {
		for !islSending && !retryArmed && len(islQueue) > 0 {
			if islDown {
				failHead() // arms a retry (exits loop) or drops the head
				continue
			}
			islSending = true
			islGen++
			islSendStart = now
			if tr != nil {
				tr.Record(trace.Event{T: now, Kind: trace.ISLSendStart,
					Frame: islQueue[0].id, Node: -1})
			}
			push(event{at: now + islTime, kind: evISLDone, gen: islGen})
			return
		}
	}

	// addToInput lands a frame in the batching queue, shedding the
	// lowest-value frame when the queue outgrows the threshold.
	shedEnabled := c.ShedThreshold != 0
	shedLimit := c.ShedThreshold
	if c.ShedThreshold == ShedAll {
		shedLimit = 0
	}
	addToInput := func(f frame) {
		inputQueue = append(inputQueue, f)
		if tr != nil {
			tr.Record(trace.Event{T: now, Kind: trace.Enqueued, Frame: f.id, Node: -1})
		}
		if shedEnabled && len(inputQueue) > shedLimit {
			low := 0
			for i := 1; i < len(inputQueue); i++ {
				if inputQueue[i].value < inputQueue[low].value {
					low = i
				}
			}
			if tr != nil {
				tr.Record(trace.Event{T: now, Kind: trace.Shed,
					Frame: inputQueue[low].id, Node: -1})
			}
			inputQueue = append(inputQueue[:low], inputQueue[low+1:]...)
			stats.FramesShed++
		}
		if len(inputQueue) > stats.MaxInputQueue {
			stats.MaxInputQueue = len(inputQueue)
		}
	}

	// freeWorker returns the lowest-index dispatchable worker, for
	// deterministic worker selection.
	freeWorker := func() int {
		for i := range workers {
			if !workers[i].dead && !workers[i].hung && !workers[i].busy {
				return i
			}
		}
		return -1
	}

	dispatch := func(force bool) {
		for len(inputQueue) >= c.BatchSize || (force && len(inputQueue) > 0) {
			wi := freeWorker()
			if wi < 0 {
				break
			}
			n := c.BatchSize
			if n > len(inputQueue) {
				n = len(inputQueue)
			}
			batch := append([]frame(nil), inputQueue[:n]...)
			inputQueue = append([]frame(nil), inputQueue[n:]...)
			w := &workers[wi]
			service := float64(n) * framePixels / nodePixPerSec
			busySum += service
			w.busy = true
			w.batch = batch
			w.gen++
			w.doneAt = now + service
			if tr != nil {
				for _, f := range batch {
					tr.Record(trace.Event{T: now, Kind: trace.Dispatched, Frame: f.id, Node: wi})
				}
				tr.Record(trace.Event{T: now, Kind: trace.ComputeStart, Node: wi, N: n})
			}
			push(event{at: w.doneAt, kind: evBatchDone, who: wi, gen: w.gen})
		}
		if len(inputQueue) > 0 && !timeoutArmed {
			timeoutArmed = true
			push(event{at: now + c.BatchTimeout.Seconds(), kind: evBatchingOut})
		}
	}

	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		if e.at > horizon {
			break
		}
		if rec != nil {
			rec.catchUp(e.at, sampleAt)
		}
		now = e.at
		accrue(now)
		evCount[e.kind]++
		switch e.kind {
		case evFrameReady:
			stats.FramesGenerated++
			frameID++
			islQueue = append(islQueue, frame{id: frameID, born: now, value: rng.Float64()})
			if tr != nil {
				tr.Record(trace.Event{T: now, Kind: trace.FrameCaptured,
					Frame: frameID, Node: e.who})
			}
			attemptISL()
			// Next frame from this satellite, with 5% timing jitter.
			jitter := 1 + 0.1*(rng.Float64()-0.5)
			push(event{at: now + framePeriod*jitter, kind: evFrameReady, who: e.who})

		case evISLDone:
			if e.gen != islGen || !islSending {
				break // transfer aborted by an outage
			}
			islSending = false
			islBusySum += now - islSendStart
			f := islQueue[0]
			islQueue = islQueue[1:]
			if tr != nil {
				tr.Record(trace.Event{T: now, Kind: trace.ISLSendEnd, Frame: f.id, Node: -1})
			}
			addToInput(f)
			attemptISL()
			dispatch(false)

		case evISLRetry:
			retryArmed = false
			attemptISL()

		case evOutageStart:
			islDown = true
			outageIdx++
			outageCause = ""
			if tr != nil {
				outageCause = fmt.Sprintf("isl-outage#%d", outageIdx)
				tr.Record(trace.Event{T: now, Kind: trace.OutageStart,
					Node: -1, Dur: e.dur, Cause: outageCause})
			}
			end := now + e.dur
			if clip := math.Min(end, horizon); clip > now {
				islDownSum += clip - now
			}
			push(event{at: end, kind: evOutageEnd})
			if islSending {
				// Abort the in-flight transfer; the head frame retries.
				islSending = false
				islGen++
				islBusySum += now - islSendStart
				if tr != nil {
					tr.Record(trace.Event{T: now, Kind: trace.ISLSendEnd,
						Frame: islQueue[0].id, Node: -1, Cause: outageCause})
				}
				failHead()
				attemptISL()
			}

		case evOutageEnd:
			islDown = false
			if tr != nil {
				tr.Record(trace.Event{T: now, Kind: trace.OutageEnd,
					Node: -1, Cause: outageCause})
			}
			attemptISL()

		case evWorkerDeath:
			w := &workers[e.who]
			if w.dead {
				break
			}
			w.dead = true
			if tr != nil {
				tr.Record(trace.Event{T: now, Kind: trace.NodeDeath, Node: e.who})
			}
			if w.busy {
				// The batch is stranded: return its frames to the head
				// of the queue for re-dispatch.
				w.busy = false
				w.gen++
				busySum -= w.doneAt - now
				stats.FramesRedispatched += len(w.batch)
				if tr != nil {
					cause := fmt.Sprintf("node-death#%d", e.who)
					for _, f := range w.batch {
						tr.Record(trace.Event{T: now, Kind: trace.Enqueued,
							Frame: f.id, Node: -1, Cause: cause})
					}
				}
				inputQueue = append(append([]frame(nil), w.batch...), inputQueue...)
				if len(inputQueue) > stats.MaxInputQueue {
					stats.MaxInputQueue = len(inputQueue)
				}
				w.batch = nil
			}
			recount()
			dispatch(false)

		case evSEFIStart:
			w := &workers[e.who]
			if w.dead || w.hung {
				break
			}
			w.hung = true
			if tr != nil {
				tr.Record(trace.Event{T: now, Kind: trace.SEFIStart, Node: e.who, Dur: e.dur})
			}
			if w.busy {
				// The watchdog reboots the node and the batch resumes:
				// completion slips by the recovery time.
				w.gen++
				w.doneAt += e.dur
				push(event{at: w.doneAt, kind: evBatchDone, who: e.who, gen: w.gen})
			}
			push(event{at: now + e.dur, kind: evSEFIEnd, who: e.who})
			recount()

		case evSEFIEnd:
			w := &workers[e.who]
			if w.dead || !w.hung {
				break
			}
			w.hung = false
			if tr != nil {
				tr.Record(trace.Event{T: now, Kind: trace.SEFIEnd, Node: e.who})
			}
			recount()
			dispatch(false)

		case evBatchDone:
			w := &workers[e.who]
			if w.dead || !w.busy || e.gen != w.gen {
				break // stale: the worker died or the batch slipped
			}
			w.busy = false
			stats.FramesProcessed += len(w.batch)
			if tr != nil {
				tr.Record(trace.Event{T: now, Kind: trace.ComputeEnd,
					Node: e.who, N: len(w.batch)})
			}
			for _, f := range w.batch {
				latencies = append(latencies, now-f.born)
				if rec != nil {
					rec.latency.Observe(now - f.born)
				}
				if tr != nil {
					tr.Record(trace.Event{T: now, Kind: trace.ComputeEnd,
						Frame: f.id, Node: e.who})
				}
				if f.value >= 1-c.InsightFraction {
					stats.InsightsDownlinked++
					if tr != nil {
						tr.Record(trace.Event{T: now, Kind: trace.Downlinked,
							Frame: f.id, Node: e.who})
					}
				}
			}
			w.batch = nil
			dispatch(false)

		case evBatchingOut:
			timeoutArmed = false
			dispatch(true)
		}
	}
	if rec != nil {
		// Sample the remaining grid points before the final accrual so
		// the availability integral at each point covers exactly [0, t].
		rec.finish(horizon, sampleAt)
	}
	accrue(horizon)

	stats.Backlog = stats.FramesGenerated - stats.FramesProcessed - stats.FramesShed - stats.FramesLost
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		stats.MeanLatency = time.Duration(sum / float64(len(latencies)) * float64(time.Second))
		stats.P95Latency = time.Duration(latencies[int(float64(len(latencies))*0.95)] * float64(time.Second))
	}
	stats.ISLUtilization = units.Clamp(islBusySum/horizon, 0, 1)
	stats.WorkerUtilization = units.Clamp(busySum/(horizon*float64(c.Workers)), 0, 1)
	stats.ComputeEnergy = units.Energy(busySum * float64(c.WorkerPower))
	stats.KeptUp = stats.Backlog <= 2*c.BatchSize*c.Workers
	stats.WorkerDowntime = time.Duration(downWS * float64(time.Second))
	stats.ISLDowntime = time.Duration(islDownSum * float64(time.Second))
	stats.DegradedFraction = units.Clamp(degradedTime/horizon, 0, 1)
	stats.Availability = units.Clamp(upTime/horizon, 0, 1)
	if rec != nil {
		rec.flush(c.Obs, stats, evCount[:])
	}
	return stats, nil
}
