// Package netsim is a discrete-event simulation of the paper's Figure 14
// processing pipeline: EO satellites produce imagery frames, frames cross
// the shared FSO inter-satellite link into the SµDC's input buffer, a
// batcher groups them into energy-minimizing batches and dispatches them to
// GPU workers, and an analyzer decides which results are "insights" worth
// downlinking.
//
// The simulator cross-validates the analytical sizing: a 4 kW SµDC keeps up
// with a 64-satellite constellation for every Table III application except
// Panoptic Segmentation, which needs four (the "# SµDC" column), and
// batching latency at low frame rates reaches the "several minutes" the
// paper describes.
//
// Beyond the fault-free pipeline, the simulator replays fault schedules
// from package faults — transient SEFI hangs with watchdog recovery,
// permanent node deaths, and ISL outage windows — under degraded-mode
// policies: frame retry with capped exponential backoff across the ISL,
// re-dispatch of batches stranded on a dead worker, and load-shedding of
// the lowest-value frames once the input queue exceeds a threshold. This
// is how the paper's fourth optimization (near-zero-cost compute
// overprovisioning) is validated end to end: DES-measured availability
// under spares is cross-checked against reliability.Availability.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/degrade"
	"sudc/internal/faults"
	"sudc/internal/obs"
	"sudc/internal/obs/slo"
	"sudc/internal/obs/trace"
	"sudc/internal/obs/window"
	"sudc/internal/par"
	"sudc/internal/placement"
	"sudc/internal/topo"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// ShedAll is the ShedThreshold sentinel for a threshold of literally
// zero: every frame landing in the input queue is immediately shed (the
// queue is never allowed to hold a frame). The zero value 0 means
// shedding is disabled, so an explicit zero threshold needs its own
// spelling.
const ShedAll = -1

// Config describes one simulation run.
type Config struct {
	// Constellation produces the frames.
	Constellation constellation.Constellation
	// App is the processed application (frame size, GPU characteristics).
	App workload.App
	// ISLRate is the aggregate link capacity into the SµDC.
	ISLRate units.DataRate
	// Workers is the number of GPU nodes; WorkerPower their per-node draw.
	Workers     int
	WorkerPower units.Power
	// BatchSize is the energy-minimizing batch; a partial batch is
	// dispatched after BatchTimeout.
	BatchSize    int
	BatchTimeout time.Duration
	// InsightFraction of results is downlinked; the rest is discarded by
	// the analyzer.
	InsightFraction float64
	// Duration is the simulated time span.
	Duration time.Duration
	// Seed drives the arrival-jitter and analyzer randomness, and forks
	// the fault-schedule streams.
	Seed int64

	// Faults injects worker and ISL faults; the zero value simulates a
	// fault-free world.
	Faults faults.Scenario
	// NeedWorkers is the worker count that defines full service for
	// availability accounting (0 means Workers). With spare nodes, set
	// NeedWorkers to the sized need and Workers to need + spares.
	NeedWorkers int
	// RetryLimit caps failed ISL transmission attempts per frame before
	// the frame is dropped as lost (0 = retry forever).
	RetryLimit int
	// RetryBackoff is the delay before the first ISL retry; it doubles
	// per failed attempt, capped at RetryBackoffCap. Zero values default
	// to 2 s and 60 s.
	RetryBackoff    time.Duration
	RetryBackoffCap time.Duration
	// ShedThreshold sheds the lowest-value queued frame whenever the
	// input queue grows beyond it. The zero value disables shedding;
	// use ShedAll (-1) for an explicit threshold of zero, which sheds
	// every queued frame. Values below ShedAll are invalid.
	ShedThreshold int

	// Obs, when non-nil, receives this run's observability stream:
	// frame counters, the latency and retry-backoff histograms, and
	// queue-depth/backlog/retry/shed/availability time series sampled
	// on the simulated clock every SampleEvery. Because sampling is
	// keyed to simulated time only, the stream is byte-identical for
	// any process worker count. Each run needs its own registry or
	// scope; RunReplicas scopes one per replica automatically.
	Obs *obs.Registry
	// SampleEvery is the simulated-time sampling period for the Obs
	// time series (0 = DefaultSampleEvery; negative is invalid).
	SampleEvery time.Duration

	// Topology, when non-nil, replaces the implicit single-SµDC star
	// with an explicit constellation graph: frames route along graph
	// edges toward their nearest SµDC, every ISL edge gets its own
	// queue, transfer state, and outage process, and the simulation is
	// sharded by graph cell (orbital plane or cluster) with conservative
	// cross-cell synchronization. Constellation.Satellites, Workers, and
	// NeedWorkers are defined by the graph in this mode (NeedWorkers
	// must stay 0: each cell's full worker complement defines full
	// service); Constellation.FramesPerMinute, FilterRate, ISLRate (the
	// rate inherited by edges with Rate 0), and every other field keep
	// their meaning. A nil Topology is the legacy star, byte-identical
	// to the pre-topology simulator.
	Topology *topo.Graph
	// Shards caps the number of parallel workers executing topology
	// cells (0 = par.DefaultWorkers()). Results are byte-identical for
	// any value: sharding only schedules which goroutine advances a
	// cell, never what the cell computes. Ignored without Topology.
	Shards int

	// Degrade, when non-nil, couples the run to its orbital environment:
	// a degrade.Schedule compiled over the run horizon slows worker
	// service in hot sunlit phases (thermal throttling), caps the powered
	// worker complement during eclipse (power brownouts — batches
	// stranded on a parked worker re-dispatch like on a node death), and
	// raises SEFI intensity with temperature via faults.BuildModulated.
	// A profile whose schedule compiles to the identity (Severity 0) is
	// dropped to nil internally, so the run is byte-identical to one with
	// no degradation at all.
	Degrade *degrade.Profile
	// ThrottleShed scales the shed threshold by the active throttle
	// multiplier during throttled phases, shedding earlier when service
	// is slow — the throttle-aware load-shedding policy. Requires
	// Degrade and an enabled ShedThreshold.
	ThrottleShed bool
	// DeferInEclipse holds partial-batch timeouts that fire during an
	// eclipse phase until the phase ends, deferring marginal work to
	// sunlit power — the deadline-aware deferral policy. Full batches
	// still dispatch on the surviving powered workers. Requires Degrade.
	DeferInEclipse bool

	// Placement, when non-nil, enables the multi-tier compute-placement
	// engine: at capture time each frame is routed by the configured
	// policy to one of four compute tiers — the capturing satellite's
	// flight computer, the orbital SµDC (the legacy ISL/batch pipeline),
	// a ground-station edge site behind the shared downlink, or the
	// terrestrial cloud behind the WAN — and the run reports per-tier
	// frame counts, latency, and realized $/frame. Routing decisions are
	// pure functions of the model and the observed queue state (no RNG
	// draws, no seed events), so a Static-to-space policy replays the
	// placement-free frame flow byte for byte, modulo the placement-only
	// Stats fields and "placed" trace lines. In topology mode the
	// configured downlink rate is split evenly across cells and each
	// cell gets its own EdgeServers-sized edge pool.
	Placement *placement.Config

	// Trace, when non-nil, receives the run's frame-lineage flight
	// recording: the full per-frame lifecycle (capture, ISL transfer,
	// retries, batching, compute, downlink) plus the fault events that
	// stalled it, with stable frame IDs assigned in capture order.
	// Emission order is the DES event order — a pure function of
	// simulated time — so recordings are byte-identical for any process
	// worker count. Each run needs its own recorder (or child scope);
	// RunReplicas scopes one child per replica automatically.
	Trace *trace.Recorder

	// Window, when positive, enables windowed mission telemetry:
	// tumbling sim-time windows of frame counters, fixed-bucket latency
	// quantiles, and environment occupancy (eclipse, throttle,
	// brownout, ISL outage), merged across topology cells at the
	// conservative cross-cell watermark — the minimum next event time
	// over all cells and in-flight messages, where every cell's
	// environment is provably constant. The merged stream is therefore
	// byte-identical for any Shards value or process worker count. Zero
	// disables windowing at the cost of one nil check per event.
	Window time.Duration
	// OnWindow, when non-nil, observes each completed merged window in
	// index order, live at the watermark that sealed it. Requires
	// Window > 0. Per-run state: RunReplicas rejects it (replicas would
	// interleave their streams nondeterministically).
	OnWindow func(window.Window)
	// SLO, when non-nil, evaluates the declared objectives over the
	// window stream with multi-window burn-rate alerting once the run
	// completes. Requires Window > 0. Each alert is recorded as an
	// "slo_alert" trace event (when Trace is set) carrying the window's
	// ranked environment attribution; a zero CostFloor is filled from
	// the placement model's oracle floor.
	SLO *slo.Config
}

// DefaultConfig simulates the paper's reference scenario for one app: the
// 64-satellite constellation feeding a 4 kW SµDC.
func DefaultConfig(app workload.App) Config {
	workers := int(4000 / float64(app.GPUPower))
	if workers < 1 {
		workers = 1
	}
	return Config{
		Constellation:   constellation.Default64,
		App:             app,
		ISLRate:         units.GbpsOf(30),
		Workers:         workers,
		WorkerPower:     app.GPUPower,
		BatchSize:       8,
		BatchTimeout:    2 * time.Minute,
		InsightFraction: 0.2,
		Duration:        2 * time.Hour,
		Seed:            1,
		RetryLimit:      8,
		RetryBackoff:    2 * time.Second,
		RetryBackoffCap: time.Minute,
	}
}

// TopologyConfig is DefaultConfig for an explicit constellation graph:
// the same reference batching, retry, and timing settings, with the
// satellite and worker populations defined by the graph instead of the
// Constellation/Workers fields.
func TopologyConfig(app workload.App, g *topo.Graph) Config {
	c := DefaultConfig(app)
	c.Topology = g
	c.Workers = 0
	c.NeedWorkers = 0
	c.Constellation.Satellites = 0
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Topology != nil {
		// Topology mode: the graph defines satellites and workers, so
		// only the per-satellite rate and filter fields of the
		// constellation apply.
		if err := c.Topology.Validate(); err != nil {
			return err
		}
		if c.Constellation.FramesPerMinute <= 0 {
			return errors.New("netsim: imaging rate must be positive")
		}
		if c.Constellation.FilterRate < 0 || c.Constellation.FilterRate >= 1 {
			return fmt.Errorf("netsim: filter rate %v out of [0,1)", c.Constellation.FilterRate)
		}
		if c.NeedWorkers != 0 {
			return errors.New("netsim: NeedWorkers is graph-defined in topology mode (must be 0)")
		}
		if c.Shards < 0 {
			return errors.New("netsim: negative shard count")
		}
	} else {
		if err := c.Constellation.Validate(); err != nil {
			return err
		}
		if c.Workers < 1 {
			return errors.New("netsim: need at least one worker")
		}
		if c.NeedWorkers < 0 {
			return errors.New("netsim: negative need-workers")
		}
		if c.NeedWorkers > c.Workers {
			return fmt.Errorf("netsim: need %d workers but only %d installed", c.NeedWorkers, c.Workers)
		}
	}
	if err := c.App.Validate(); err != nil {
		return err
	}
	if c.ISLRate <= 0 {
		return errors.New("netsim: ISL rate must be positive")
	}
	if c.WorkerPower <= 0 {
		return errors.New("netsim: worker power must be positive")
	}
	if c.BatchSize < 1 {
		return errors.New("netsim: batch size must be ≥ 1")
	}
	if c.BatchTimeout <= 0 {
		return errors.New("netsim: batch timeout must be positive")
	}
	if c.InsightFraction < 0 || c.InsightFraction > 1 {
		return fmt.Errorf("netsim: insight fraction %v out of [0,1]", c.InsightFraction)
	}
	if c.Duration <= 0 {
		return errors.New("netsim: duration must be positive")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.RetryLimit < 0 {
		return errors.New("netsim: negative retry limit")
	}
	if c.RetryBackoff < 0 {
		return errors.New("netsim: negative retry backoff")
	}
	if c.RetryBackoffCap < 0 {
		return errors.New("netsim: negative retry backoff cap")
	}
	if c.RetryBackoffCap > 0 && c.RetryBackoff > c.RetryBackoffCap {
		return errors.New("netsim: retry backoff exceeds its cap")
	}
	if c.ShedThreshold < ShedAll {
		return fmt.Errorf("netsim: shed threshold %d below ShedAll (%d)", c.ShedThreshold, ShedAll)
	}
	if c.SampleEvery < 0 {
		return errors.New("netsim: negative sample period")
	}
	if c.Degrade != nil {
		if err := c.Degrade.Validate(); err != nil {
			return err
		}
	} else if c.ThrottleShed || c.DeferInEclipse {
		return errors.New("netsim: ThrottleShed and DeferInEclipse require Degrade")
	}
	if c.ThrottleShed && c.ShedThreshold == 0 {
		return errors.New("netsim: ThrottleShed requires an enabled ShedThreshold")
	}
	if err := c.Placement.Validate(); err != nil {
		return err
	}
	if c.Window < 0 {
		return errors.New("netsim: negative window width")
	}
	if c.OnWindow != nil && c.Window <= 0 {
		return errors.New("netsim: OnWindow requires a positive Window")
	}
	if c.SLO != nil {
		if c.Window <= 0 {
			return errors.New("netsim: SLO requires a positive Window")
		}
		if err := c.SLO.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stats is the simulation outcome.
type Stats struct {
	// FramesGenerated, FramesProcessed, InsightsDownlinked count frames.
	FramesGenerated    int
	FramesProcessed    int
	InsightsDownlinked int
	// Backlog is frames still in flight or queued at the end of the run.
	Backlog int
	// MeanLatency and P95Latency are generation→processing-complete times.
	MeanLatency time.Duration
	P95Latency  time.Duration
	// ISLUtilization and WorkerUtilization are busy-time fractions.
	ISLUtilization    float64
	WorkerUtilization float64
	// MaxInputQueue is the peak frame count waiting for a batch slot.
	MaxInputQueue int
	// ComputeEnergy is the integrated worker energy over the run.
	ComputeEnergy units.Energy
	// KeptUp reports whether the SµDC drained its input: backlog at the
	// end is below twice a batch per worker.
	KeptUp bool

	// FramesRetried counts failed ISL transmission attempts that were
	// retried with exponential backoff.
	FramesRetried int
	// FramesRedispatched counts frames re-queued after the worker
	// serving their batch died mid-service.
	FramesRedispatched int
	// FramesShed counts lowest-value frames dropped by load shedding.
	FramesShed int
	// FramesLost counts frames dropped at the ISL retry limit.
	FramesLost int
	// WorkerDowntime is the accumulated dead-or-hung worker time summed
	// over all workers (worker-time, not wall-clock).
	WorkerDowntime time.Duration
	// ISLDowntime is the total ISL outage time within the run.
	ISLDowntime time.Duration
	// DegradedFraction is the fraction of the run spent with fewer than
	// the full worker complement in service.
	DegradedFraction float64
	// Availability is the fraction of the run with at least NeedWorkers
	// (default: all workers) in service — the DES counterpart of
	// reliability.Availability.
	Availability float64

	// ThrottledTime is the simulated time spent in degradation phases
	// with a service-rate multiplier below 1 (zero without Degrade).
	ThrottledTime time.Duration
	// BrownoutTime is the simulated time with at least one worker parked
	// by an eclipse power brownout.
	BrownoutTime time.Duration
	// MeanRateMult is the time-averaged service-rate multiplier over the
	// run — exactly 1 when degradation is disabled.
	MeanRateMult float64
	// BatchesDeferred counts partial-batch timeouts DeferInEclipse held
	// until the end of their eclipse phase.
	BatchesDeferred int

	// CrossShardFrames counts frames delivered across cell boundaries as
	// timestamped messages by the sharded topology runner. Always zero
	// for legacy (nil-Topology) runs and for topologies whose cells are
	// self-contained.
	CrossShardFrames int

	// TierFrames counts completed frames per placement tier, and
	// TierMeanLatency / TierP99Latency / TierDollars break end-to-end
	// latency and amortized spend down by tier. PlacedMeanCost is the
	// realized mean per-frame cost (tier dollars plus latency-weighted
	// end-to-end latency) and OracleMeanCost the analytic per-frame
	// floor min over tiers of the load-free static cost — no realized
	// policy can beat it. All zero without Config.Placement.
	TierFrames      [placement.NumTiers]int
	TierMeanLatency [placement.NumTiers]time.Duration
	TierP99Latency  [placement.NumTiers]time.Duration
	TierDollars     [placement.NumTiers]float64
	PlacedMeanCost  float64
	OracleMeanCost  float64

	// Sync summarizes the conservative synchronizer of a multi-cell
	// topology run. Zero for legacy and single-cell runs.
	Sync SyncStats
}

// SyncStats describes the sharded runner's synchronization behavior.
// Every field is a pure function of the config — never of
// Config.Shards or the worker count — so it inherits the byte-identity
// contract and is safe to compare across shard counts.
type SyncStats struct {
	// Rounds counts executed synchronization rounds (windows).
	Rounds int
	// CellRuns counts per-cell executions summed over all rounds; idle
	// and drained cells are skipped and contribute nothing.
	CellRuns int
	// CrossMsgs counts cross-cell messages exchanged at round barriers.
	CrossMsgs int
	// LookaheadSum accumulates each executed cell's lookahead width —
	// its run limit (capped at the horizon) minus the round's earliest
	// event time — in simulated seconds. LookaheadSum / CellRuns is the
	// mean lookahead width.
	LookaheadSum float64
}

// event kinds.
const (
	evFrameReady  = iota // a satellite finished capturing a frame
	evISLDone            // a frame finished crossing the ISL
	evBatchDone          // a worker finished a batch
	evBatchingOut        // batch timeout fired
	evISLRetry           // backoff expired, the head frame retries the ISL
	evOutageStart        // the ISL goes down
	evOutageEnd          // the ISL recovers
	evWorkerDeath        // a worker dies permanently
	evSEFIStart          // a worker hangs on a transient SEFI
	evSEFIEnd            // the watchdog recovered a hung worker
	evArrive             // a frame finished propagating an intra-cell edge
	evArriveMsg          // a cross-cell message frame arrives in this cell
	evPhase              // the degradation schedule advances to its next phase

	// Placement-engine events. Appended after the legacy kinds so the
	// placement-free event numbering (and every golden keyed to it) is
	// untouched.
	evOnboardDone  // a satellite flight computer finished a frame
	evDownlinkDone // a ground-bound frame finished crossing the downlink
	evEdgeArrive   // a downlinked frame reached the ground-edge site
	evCloudArrive  // a downlinked frame reached the cloud
	evEdgeDone     // a ground-edge server finished a frame
	evCloudDone    // the cloud finished a frame
)

type event struct {
	at   float64 // seconds
	kind int
	who  int     // satellite, worker, edge, SµDC, or arrival-slot index (by kind)
	gen  int     // invalidation generation for evISLDone / evBatchDone
	dur  float64 // payload: recovery or outage duration, seconds
	seq  int     // heap tiebreak for determinism
}

type frame struct {
	id    int64   // stable 1-based frame ID, assigned in capture order
	born  float64 // generation time, s
	value float64 // analyzer value draw in [0,1): the top InsightFraction quantile is an insight
	tries int     // failed ISL transmission attempts
	tier  int8    // placement.Tier the frame was routed to (placement runs only)
}

// workerState is one GPU node's health and service state.
type workerState struct {
	dead    bool
	hung    bool
	busy    bool
	browned bool    // parked by an eclipse power brownout
	gen     int     // invalidates stale evBatchDone events
	doneAt  float64 // pending batch completion time
	batch   []frame // in-flight frames, for re-dispatch on death
}

// Run executes the simulation seeded from c.Seed — the deterministic
// convenience wrapper around RunWithRand. The RNG stream is identical to
// rand.New(rand.NewSource(c.Seed)); Run reseeds a pooled generator in
// place instead of allocating its ~5 KB state table per run.
func Run(c Config) (Stats, error) {
	if err := c.Validate(); err != nil {
		return Stats{}, err
	}
	if c.Topology != nil {
		return runTopology(c)
	}
	deg, err := buildDegrade(c)
	if err != nil {
		return Stats{}, err
	}
	sched, err := faults.BuildModulated(c.Faults, c.Workers, 1, c.Duration, c.Seed, deg.FaultEnvelope())
	if err != nil {
		return Stats{}, err
	}
	s := getSim()
	if s.ownRand == nil {
		s.ownRand = rand.New(rand.NewSource(c.Seed))
	} else {
		s.ownRand.Seed(c.Seed)
	}
	s.reset(c, sched, deg, s.ownRand)
	for s.step() {
	}
	stats := s.finish()
	wins := s.closeRunWindows()
	putSim(s)
	emitSLO(c, wins)
	return stats, nil
}

// RunReplicas executes `replicas` independent runs of the configuration,
// seeding replica r with par.ForkSeed(c.Seed, r), evaluated in parallel
// over the shared engine. Both the per-replica fault schedules and the
// returned Stats slice are identical for any worker count (workers ≤ 0
// uses the engine default). Availability experiments average over
// replicas to beat per-trajectory noise.
func RunReplicas(c Config, replicas, workers int) ([]Stats, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if replicas < 1 {
		return nil, errors.New("netsim: replicas must be ≥ 1")
	}
	if c.OnWindow != nil {
		// Replicas run concurrently; their window streams would
		// interleave nondeterministically through one callback. Run each
		// replica serially (forking seeds with par.ForkSeed) instead.
		return nil, errors.New("netsim: OnWindow is per-run; RunReplicas cannot multiplex it")
	}
	out := make([]Stats, replicas)
	err := par.ForNErr(replicas, func(r int) error {
		cc := c
		cc.Seed = par.ForkSeed(c.Seed, r)
		if c.Obs != nil {
			// Each replica writes disjoint names into the shared store,
			// so the merged snapshot is identical for any worker count.
			cc.Obs = c.Obs.Scope(fmt.Sprintf("r%03d", r))
		}
		if c.Trace != nil {
			// Same discipline for the flight recorder: one child scope
			// per replica, exported in sorted scope order.
			cc.Trace = c.Trace.Child(fmt.Sprintf("r%03d", r))
		}
		s, err := Run(cc)
		if err != nil {
			return err
		}
		out[r] = s
		return nil
	}, par.Workers(workers))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunWithRand executes the simulation drawing all randomness (arrival
// phases and jitter, analyzer decisions) from the injected RNG. The RNG
// is owned by this run: callers running simulations in parallel must
// fork one stream per run (par.ForkRand) rather than share one, and the
// stream may be advanced past the last draw the run consumed (draws are
// batched). Fault schedules are not drawn from this RNG: they fork their
// own per-node streams from c.Seed (package faults), so enabling a fault
// process never perturbs arrivals.
func RunWithRand(c Config, rng *rand.Rand) (Stats, error) {
	if err := c.Validate(); err != nil {
		return Stats{}, err
	}
	if rng == nil {
		return Stats{}, errors.New("netsim: nil rng")
	}
	if c.Topology != nil {
		// Topology runs fork one RNG stream per cell from c.Seed; a
		// single injected stream cannot express that.
		return Stats{}, errors.New("netsim: topology runs own their RNG streams; use Run")
	}
	deg, err := buildDegrade(c)
	if err != nil {
		return Stats{}, err
	}
	sched, err := faults.BuildModulated(c.Faults, c.Workers, 1, c.Duration, c.Seed, deg.FaultEnvelope())
	if err != nil {
		return Stats{}, err
	}
	s := getSim()
	s.reset(c, sched, deg, rng)
	for s.step() {
	}
	stats := s.finish()
	wins := s.closeRunWindows()
	putSim(s)
	emitSLO(c, wins)
	return stats, nil
}

// buildDegrade compiles the config's degradation schedule over the run
// horizon. Identity schedules (Severity 0) drop to nil so a
// zero-severity run takes the exact degradation-free code path — the
// byte-identity anchor for the severity sweep's baseline.
func buildDegrade(c Config) (*degrade.Schedule, error) {
	if c.Degrade == nil {
		return nil, nil
	}
	deg, err := degrade.Build(*c.Degrade, c.Duration)
	if err != nil {
		return nil, err
	}
	if deg.Identity() {
		return nil, nil
	}
	return deg, nil
}

// emitSLO evaluates the run's SLO objectives over the merged window
// stream and records each burn-rate alert as an "slo_alert" trace
// event. A zero CostFloor is filled from the placement oracle so the
// cost-per-frame objective prices against the provable floor.
func emitSLO(c Config, wins []window.Window) {
	if c.SLO == nil || len(wins) == 0 {
		return
	}
	cfg := *c.SLO
	if cfg.CostFloor == 0 && c.Placement != nil {
		cfg.CostFloor = c.Placement.Model.OracleCost()
	}
	rep := slo.Run(cfg, wins)
	if c.Trace == nil {
		return
	}
	for _, a := range rep.Alerts {
		c.Trace.Record(trace.Event{T: a.End, Kind: trace.SLOAlert, Node: -1,
			N: a.Window, Mult: a.Fast, Dur: a.End - a.Start,
			Cause: a.Cause, Name: a.Objective})
	}
}
