package netsim

// Multi-tier compute placement inside the DES: when Config.Placement is
// set, every captured frame is routed at capture time to one of the
// four placement tiers. The space tier is the legacy ISL/batch pipeline
// untouched; the other three are modeled as FIFO server queues with
// constant service times — a derated flight computer per satellite
// (onboard), a finite premium GPU pool behind the shared downlink
// (ground edge), and an elastic pool behind the downlink plus WAN
// (cloud). Because every tier's service time is a per-run constant,
// in-service frames complete in dispatch order, so one serving deque
// per tier replaces per-server state and the engine stays
// allocation-free in steady state.
//
// Determinism contract: routing decisions are pure functions of the
// priced model and the observed queue lengths — no RNG draws, no seed
// events — and the new event kinds are appended after the legacy ones.
// A Static-to-space policy therefore replays the placement-free event
// sequence bit for bit; the only deltas are the placement-only Stats
// fields and the "placed" trace lines.

import (
	"sort"
	"time"

	"sudc/internal/obs/latency"
	"sudc/internal/obs/trace"
	"sudc/internal/obs/window"
	"sudc/internal/placement"
)

// setPlacement installs the (possibly nil) placement engine. Must run
// after resetCommon (it keys on frameBits) and after totalSats is
// known; cells is the topology cell count the shared downlink rate is
// split across (1 for legacy runs).
func (s *simulator) setPlacement(pc *placement.Config, cells int) {
	s.place = pc
	if pc == nil {
		return
	}
	s.pmodel = pc.Model
	if cells < 1 {
		cells = 1
	}
	s.dlSendTime = s.frameBits / pc.Ratio() / (float64(pc.DownlinkRate) / float64(cells))
	s.accessDelay = pc.AccessDelay.Seconds()
	s.wanDelay = pc.WANDelay.Seconds()
	s.onboardSvc = pc.Model.Tiers[placement.TierOnboard].ServiceTime
	s.edgeSvc = pc.Model.Tiers[placement.TierGroundEdge].ServiceTime
	s.cloudSvc = pc.Model.Tiers[placement.TierCloud].ServiceTime
	// One flight computer per satellite; the cell's onboard capacity is
	// its satellite population (the pool approximation: any satellite's
	// computer can serve, which upper-bounds the per-satellite truth).
	s.onboardServers = s.totalSats
	// The zero-queue base tier: where the policy sends a frame when no
	// queue pressures it elsewhere. Decide draws no RNG, so probing it
	// here leaves the run's stream untouched; a routing that deviates
	// from the base is a queue-aware spillover.
	s.placeBase = pc.Policy.Decide(pc.Model, placement.State{}).Tier
}

// route runs the placement decision for one captured frame and starts
// it down its tier's path.
func (s *simulator) route(f frame, sat int) {
	d := s.place.Policy.Decide(s.pmodel, placement.State{QueueLen: s.queueLen})
	f.tier = int8(d.Tier)
	s.queueLen[d.Tier]++
	cause := ""
	if d.Tier != s.placeBase {
		cause = "spill"
		s.win.Count(window.CntSpilled, 1)
	}
	if s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.Placed, Frame: f.id,
			Node: sat, Tier: d.Tier.String(), Cause: cause})
	}
	switch d.Tier {
	case placement.TierSpace:
		// The legacy pipeline, frame tagged: ISL queue, batcher, workers.
		ei := s.satEdge[sat]
		s.links[ei].queue.pushBack(f)
		s.attemptISL(ei)
	case placement.TierOnboard:
		if s.onboardBusy < s.onboardServers {
			s.onboardBusy++
			s.startPlaced(&s.onboardRun, f, evOnboardDone, s.onboardSvc)
		} else {
			s.onboardQ.pushBack(f)
		}
	default: // ground-bound: the shared downlink first
		s.dlQueue.pushBack(f)
		s.attemptDownlink()
	}
}

// startPlaced begins constant-time service for a placed frame: it
// joins the tier's FIFO serving deque and its completion event fires
// svc seconds later. Dispatched is recorded with Node -1 — tier
// servers are not SµDC workers.
func (s *simulator) startPlaced(run *frameDeque, f frame, kind int, svc float64) {
	run.pushBack(f)
	if s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.Dispatched, Frame: f.id, Node: -1})
	}
	s.push(event{at: s.now + svc, kind: kind})
}

// attemptDownlink starts the shared downlink's head-frame transmission.
// The downlink is a single-server queue: the cell's share of the
// constellation's deliverable ground rate serves ground-bound frames
// one at a time, which is where downlink contention shows up as
// queueing latency.
func (s *simulator) attemptDownlink() {
	if s.dlSending || s.dlQueue.len() == 0 {
		return
	}
	s.dlSending = true
	if s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.ISLSendStart,
			Frame: s.dlQueue.front().id, Node: -1, Edge: "downlink"})
	}
	s.push(event{at: s.now + s.dlSendTime, kind: evDownlinkDone})
}

// downlinkDone lands the transmitted frame on the ground: it continues
// to its tier after the constant access (+ WAN for cloud) delay. The
// mean pass-access wait is applied after transmission; for a constant
// delay this is interchangeable with a pre-transmission wait — it
// shifts every downlink busy period by the same amount without
// changing any queueing wait.
func (s *simulator) downlinkDone() {
	f := s.dlQueue.popFront()
	s.dlSending = false
	if s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.ISLSendEnd, Frame: f.id,
			Node: -1, Edge: "downlink"})
	}
	if placement.Tier(f.tier) == placement.TierCloud {
		s.cloudWait.pushBack(f)
		s.push(event{at: s.now + s.accessDelay + s.wanDelay, kind: evCloudArrive})
	} else {
		s.edgeWait.pushBack(f)
		s.push(event{at: s.now + s.accessDelay, kind: evEdgeArrive})
	}
	s.attemptDownlink()
}

// completePlaced finishes a frame computed off the SµDC path: latency,
// per-tier accounting, and the analyzer's insight decision replayed
// from the value drawn at capture.
func (s *simulator) completePlaced(f frame) {
	lat := s.now - f.born
	s.stats.FramesProcessed++
	s.win.Count(window.CntProcessed, 1)
	s.latencies = append(s.latencies, lat)
	s.win.Latency(lat)
	if s.rec != nil {
		s.rec.latency.Observe(lat)
	}
	if s.tr != nil {
		s.tr.Record(trace.Event{T: s.now, Kind: trace.ComputeEnd, Frame: f.id, Node: -1})
	}
	s.accountTier(placement.Tier(f.tier), lat)
	if f.value >= 1-s.c.InsightFraction {
		s.stats.InsightsDownlinked++
		s.win.Count(window.CntInsights, 1)
		if s.tr != nil {
			s.tr.Record(trace.Event{T: s.now, Kind: trace.Downlinked, Frame: f.id, Node: -1})
		}
	}
}

// accountTier records one completed frame's tier outcome. The realized
// per-frame cost is the tier's amortized dollars plus the
// latency-weighted end-to-end latency — which is what makes the Oracle
// floor a provable lower bound: realized latency ≥ the load-free
// transport+service floor the static cost prices.
func (s *simulator) accountTier(t placement.Tier, lat float64) {
	s.queueLen[t]--
	s.tierFrames[t]++
	s.tierLats[t] = append(s.tierLats[t], lat)
	d := s.pmodel.Tiers[t].DollarsPerFrame
	s.tierDollars[t] += d
	s.placeCostSum += d + s.pmodel.LatencyWeight*lat
	s.win.Cost(d + s.pmodel.LatencyWeight*lat)
}

// finishPlacement assembles the per-tier Stats at the end of a run.
func (s *simulator) finishPlacement(stats *Stats) {
	for t := range s.tierLats {
		stats.TierFrames[t] = s.tierFrames[t]
		stats.TierDollars[t] = s.tierDollars[t]
		v := s.tierLats[t]
		if len(v) == 0 {
			continue
		}
		sort.Float64s(v)
		var sum float64
		for _, l := range v {
			sum += l
		}
		stats.TierMeanLatency[t] = time.Duration(sum / float64(len(v)) * float64(time.Second))
		stats.TierP99Latency[t] = time.Duration(latency.Quantile(v, 0.99) * float64(time.Second))
	}
	if stats.FramesProcessed > 0 {
		stats.PlacedMeanCost = s.placeCostSum / float64(stats.FramesProcessed)
	}
	stats.OracleMeanCost = s.pmodel.OracleCost()
}
