package netsim

import (
	"math/rand"
	"testing"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/units"
	"sudc/internal/workload"
)

func mustApp(t *testing.T, name string) workload.App {
	t.Helper()
	a, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestValidate(t *testing.T) {
	good := DefaultConfig(workload.Suite[0])
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad constellation", func(c *Config) { c.Constellation.Satellites = 0 }},
		{"bad app", func(c *Config) { c.App.GPUPower = 0 }},
		{"no ISL", func(c *Config) { c.ISLRate = 0 }},
		{"no workers", func(c *Config) { c.Workers = 0 }},
		{"no worker power", func(c *Config) { c.WorkerPower = 0 }},
		{"zero batch", func(c *Config) { c.BatchSize = 0 }},
		{"zero timeout", func(c *Config) { c.BatchTimeout = 0 }},
		{"bad insight", func(c *Config) { c.InsightFraction = 1.5 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
	}
	for _, tt := range tests {
		c := DefaultConfig(workload.Suite[0])
		tt.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tt.name)
		}
		if _, err := Run(c); err == nil {
			t.Errorf("%s: Run must reject invalid config", tt.name)
		}
	}
}

func TestConservation(t *testing.T) {
	s, err := Run(DefaultConfig(mustApp(t, "Flood Detection")))
	if err != nil {
		t.Fatal(err)
	}
	if s.FramesGenerated <= 0 {
		t.Fatal("no frames generated")
	}
	if s.FramesProcessed+s.Backlog != s.FramesGenerated {
		t.Errorf("conservation: %d processed + %d backlog != %d generated",
			s.FramesProcessed, s.Backlog, s.FramesGenerated)
	}
	if s.InsightsDownlinked > s.FramesProcessed {
		t.Error("cannot downlink more insights than processed frames")
	}
}

func TestExpectedFrameCount(t *testing.T) {
	// 64 satellites × 6 frames/min × 120 min ≈ 46080 frames (±jitter).
	s, err := Run(DefaultConfig(mustApp(t, "Air Pollution")))
	if err != nil {
		t.Fatal(err)
	}
	want := 64 * 6 * 120
	if s.FramesGenerated < want*95/100 || s.FramesGenerated > want*105/100 {
		t.Errorf("generated %d frames, want ≈%d", s.FramesGenerated, want)
	}
}

func TestFourKWKeepsUpForMostApps(t *testing.T) {
	// The Table III story replayed through the simulator: one 4 kW SµDC
	// keeps up for every app except Panoptic Segmentation.
	for _, app := range workload.Suite {
		s, err := Run(DefaultConfig(app))
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		wantKeptUp := app.Name != "Panoptic Segmentation"
		if s.KeptUp != wantKeptUp {
			t.Errorf("%s: keptUp = %v (backlog %d of %d), want %v",
				app.Name, s.KeptUp, s.Backlog, s.FramesGenerated, wantKeptUp)
		}
	}
}

func TestFourSuDCsHandlePanoptic(t *testing.T) {
	// Table III: Panoptic Segmentation needs 4 SµDCs. Simulate its share:
	// one SµDC serving a quarter of the constellation keeps up.
	app := mustApp(t, "Panoptic Segmentation")
	c := DefaultConfig(app)
	c.Constellation.Satellites = 16 // 64 ÷ 4
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !s.KeptUp {
		t.Errorf("a quarter constellation must be sustainable: backlog %d of %d",
			s.Backlog, s.FramesGenerated)
	}
}

func TestOverloadedSuDCShowsBacklog(t *testing.T) {
	app := mustApp(t, "Panoptic Segmentation")
	s, err := Run(DefaultConfig(app))
	if err != nil {
		t.Fatal(err)
	}
	// Overload: the backlog is a large fraction of generated frames and
	// workers run flat out.
	if float64(s.Backlog) < 0.3*float64(s.FramesGenerated) {
		t.Errorf("expected a growing backlog, got %d of %d", s.Backlog, s.FramesGenerated)
	}
	if s.WorkerUtilization < 0.95 {
		t.Errorf("overloaded workers should be ≈100%% busy, got %.2f", s.WorkerUtilization)
	}
}

func TestBatchingLatencyMinutesAtLowRate(t *testing.T) {
	// Paper §IV-A: "it may take up to several minutes for an
	// energy-minimizing batch size to be reached" when frames trickle in.
	app := mustApp(t, "Air Pollution")
	c := DefaultConfig(app)
	c.Constellation.Satellites = 1 // one EO satellite: 6 frames/min
	c.BatchSize = 32
	c.BatchTimeout = 10 * time.Minute
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanLatency < time.Minute {
		t.Errorf("low-rate batching latency = %v, want minutes", s.MeanLatency)
	}
	if s.P95Latency < s.MeanLatency {
		t.Error("P95 latency must be at least the mean")
	}
}

func TestUndersizedISLQueues(t *testing.T) {
	app := mustApp(t, "Flood Detection")
	c := DefaultConfig(app)
	// Offered load: 64 sats × 0.1 f/s × 45 Mpix × 16 bit = 4.6 Gbit/s.
	c.ISLRate = units.GbpsOf(2) // half the offered load
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.ISLUtilization < 0.95 {
		t.Errorf("starved ISL should be saturated, util = %.2f", s.ISLUtilization)
	}
	if s.KeptUp {
		t.Error("an undersized ISL must leave a backlog")
	}
}

func TestFilteringReducesLoad(t *testing.T) {
	app := mustApp(t, "Flood Detection")
	base := DefaultConfig(app)
	filt := DefaultConfig(app)
	filt.Constellation.FilterRate = 2.0 / 3
	sBase, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sFilt, err := Run(filt)
	if err != nil {
		t.Fatal(err)
	}
	if sFilt.ISLUtilization >= sBase.ISLUtilization {
		t.Error("edge filtering must reduce ISL utilization")
	}
	if sFilt.WorkerUtilization >= sBase.WorkerUtilization {
		t.Error("edge filtering must reduce compute utilization")
	}
	if float64(sFilt.ComputeEnergy) >= float64(sBase.ComputeEnergy) {
		t.Error("edge filtering must reduce compute energy")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	c := DefaultConfig(mustApp(t, "Crop Monitoring"))
	s1, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := Run(c)
	if s1 != s2 {
		t.Error("same seed must reproduce identical stats")
	}
	c.Seed = 2
	s3, _ := Run(c)
	if s3.FramesGenerated == 0 {
		t.Error("different seed must still simulate")
	}
}

func TestInsightFraction(t *testing.T) {
	c := DefaultConfig(mustApp(t, "Air Pollution"))
	c.InsightFraction = 0.5
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(s.InsightsDownlinked) / float64(s.FramesProcessed)
	if got < 0.45 || got > 0.55 {
		t.Errorf("insight fraction = %.3f, want ≈0.5", got)
	}
	c.InsightFraction = 0
	s0, _ := Run(c)
	if s0.InsightsDownlinked != 0 {
		t.Error("zero insight fraction must downlink nothing")
	}
}

func TestUtilizationBounds(t *testing.T) {
	for _, app := range workload.Suite {
		s, err := Run(DefaultConfig(app))
		if err != nil {
			t.Fatal(err)
		}
		if s.ISLUtilization < 0 || s.ISLUtilization > 1 ||
			s.WorkerUtilization < 0 || s.WorkerUtilization > 1 {
			t.Errorf("%s: utilizations out of bounds: %+v", app.Name, s)
		}
		if s.ComputeEnergy < 0 {
			t.Errorf("%s: negative energy", app.Name)
		}
	}
}

func TestSmallConstellation(t *testing.T) {
	c := DefaultConfig(mustApp(t, "Traffic Monitoring"))
	c.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	c.Duration = 30 * time.Minute
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !s.KeptUp {
		t.Error("a 4 kW SµDC trivially keeps up with 2 satellites")
	}
}

func TestRunWithRandMatchesSeededRun(t *testing.T) {
	c := DefaultConfig(mustApp(t, "Flood Detection"))
	c.Duration = 10 * time.Minute
	want, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunWithRand(c, rand.New(rand.NewSource(c.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("RunWithRand(seeded rng) must equal Run with the same seed")
	}
	if _, err := RunWithRand(c, nil); err == nil {
		t.Error("nil rng must error")
	}
}
