package netsim

import (
	"reflect"
	"testing"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/faults"
)

// faultConfig is a small, fast configuration with a few workers and
// permanent deaths likely within the run.
func faultConfig(t *testing.T) Config {
	t.Helper()
	c := DefaultConfig(mustApp(t, "Air Pollution"))
	c.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	c.Workers = 4
	c.NeedWorkers = 4
	c.BatchSize = 4
	c.BatchTimeout = 30 * time.Second
	c.Duration = 2 * time.Hour
	c.Faults = faults.Scenario{NodeMTTF: time.Hour}
	c.Seed = 7
	return c
}

func TestFaultFreeRunHasCleanFaultStats(t *testing.T) {
	s, err := Run(DefaultConfig(mustApp(t, "Flood Detection")))
	if err != nil {
		t.Fatal(err)
	}
	if s.Availability != 1 {
		t.Errorf("fault-free availability = %v, want 1", s.Availability)
	}
	if s.DegradedFraction != 0 {
		t.Errorf("fault-free degraded fraction = %v, want 0", s.DegradedFraction)
	}
	if s.FramesRetried+s.FramesRedispatched+s.FramesShed+s.FramesLost != 0 {
		t.Errorf("fault-free run must not retry/redispatch/shed/lose frames: %+v", s)
	}
	if s.WorkerDowntime != 0 || s.ISLDowntime != 0 {
		t.Errorf("fault-free run must report zero downtime: %+v", s)
	}
}

func TestNodeDeathsDegradeAvailability(t *testing.T) {
	c := faultConfig(t)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// With MTTF = half the run, deaths are near-certain across 4 nodes.
	if s.Availability >= 1 {
		t.Errorf("deaths must reduce availability, got %v", s.Availability)
	}
	if s.DegradedFraction <= 0 {
		t.Errorf("deaths must leave a degraded period, got %v", s.DegradedFraction)
	}
	if s.WorkerDowntime <= 0 {
		t.Error("dead workers must accumulate downtime")
	}
}

func TestSparesRaiseAvailability(t *testing.T) {
	// Average availability over replicas, with and without spare nodes.
	mean := func(workers int) float64 {
		c := faultConfig(t)
		c.Workers = workers // NeedWorkers stays 4: extras are spares
		all, err := RunReplicas(c, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, s := range all {
			sum += s.Availability
		}
		return sum / float64(len(all))
	}
	bare, spared := mean(4), mean(7)
	if spared <= bare {
		t.Errorf("3 spares must raise mean availability: %v → %v", bare, spared)
	}
}

func TestDeadWorkerBatchesRedispatch(t *testing.T) {
	// Saturated workers + aggressive deaths: stranded batches must be
	// re-dispatched, and conservation must hold including losses.
	c := DefaultConfig(mustApp(t, "Flood Detection"))
	c.Duration = time.Hour
	c.Faults = faults.Scenario{NodeMTTF: 30 * time.Minute}
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.FramesRedispatched == 0 {
		t.Error("busy workers dying mid-batch must strand frames for re-dispatch")
	}
	if got := s.FramesProcessed + s.Backlog + s.FramesShed + s.FramesLost; got != s.FramesGenerated {
		t.Errorf("conservation with faults: %d ≠ %d generated", got, s.FramesGenerated)
	}
}

func TestSEFIHangsDelayButDoNotDrop(t *testing.T) {
	c := DefaultConfig(mustApp(t, "Air Pollution"))
	c.Duration = time.Hour
	c.Faults = faults.Scenario{SEFIMTBE: 10 * time.Minute, SEFIRecovery: time.Minute}
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.WorkerDowntime <= 0 {
		t.Error("SEFI hangs must accumulate worker downtime")
	}
	if s.DegradedFraction <= 0 {
		t.Error("SEFI hangs must show as degraded time")
	}
	if s.FramesLost != 0 || s.FramesShed != 0 {
		t.Errorf("hangs alone must not lose or shed frames: %+v", s)
	}
	if got := s.FramesProcessed + s.Backlog; got != s.FramesGenerated {
		t.Errorf("conservation under hangs: %d ≠ %d", got, s.FramesGenerated)
	}
	ff := c
	ff.Faults = faults.Scenario{}
	base, err := Run(ff)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanLatency <= base.MeanLatency {
		t.Errorf("hangs must raise mean latency: %v vs fault-free %v", s.MeanLatency, base.MeanLatency)
	}
}

func TestISLOutagesRetryWithBackoff(t *testing.T) {
	c := DefaultConfig(mustApp(t, "Flood Detection"))
	c.Duration = time.Hour
	c.Faults = faults.Scenario{ISLOutageMTBF: 5 * time.Minute, ISLOutageDuration: 30 * time.Second}
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.FramesRetried == 0 {
		t.Error("outages on a busy ISL must force retries")
	}
	if s.ISLDowntime <= 0 {
		t.Error("outages must accumulate ISL downtime")
	}
	if got := s.FramesProcessed + s.Backlog + s.FramesLost; got != s.FramesGenerated {
		t.Errorf("conservation under outages: %d ≠ %d", got, s.FramesGenerated)
	}
}

func TestRetryLimitLosesFrames(t *testing.T) {
	c := DefaultConfig(mustApp(t, "Flood Detection"))
	c.Duration = time.Hour
	c.RetryLimit = 1
	c.RetryBackoff = time.Second
	c.RetryBackoffCap = 2 * time.Second
	c.Faults = faults.Scenario{ISLOutageMTBF: 10 * time.Minute, ISLOutageDuration: 3 * time.Minute}
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.FramesLost == 0 {
		t.Error("long outages with a 1-retry budget must lose frames")
	}
}

func TestLoadSheddingDropsLowestValue(t *testing.T) {
	// Overload Panoptic Segmentation and cap the queue: shedding must
	// kick in, keep the queue bounded, and preferentially keep insights.
	c := DefaultConfig(mustApp(t, "Panoptic Segmentation"))
	c.Duration = time.Hour
	c.ShedThreshold = 64
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.FramesShed == 0 {
		t.Fatal("an overloaded SµDC with a shed threshold must shed frames")
	}
	if s.MaxInputQueue > c.ShedThreshold+1 {
		t.Errorf("shedding must bound the queue: peak %d > threshold %d", s.MaxInputQueue, c.ShedThreshold)
	}
	if got := s.FramesProcessed + s.Backlog + s.FramesShed; got != s.FramesGenerated {
		t.Errorf("conservation under shedding: %d ≠ %d", got, s.FramesGenerated)
	}
	// Shedding drops the lowest analyzer values first, so the processed
	// stream is enriched in insights relative to the raw fraction.
	enriched := float64(s.InsightsDownlinked) / float64(s.FramesProcessed)
	if enriched <= c.InsightFraction {
		t.Errorf("value-aware shedding must enrich insights: got %.3f, raw %.3f",
			enriched, c.InsightFraction)
	}
}

func TestFaultedRunDeterministicWithSeed(t *testing.T) {
	c := faultConfig(t)
	c.Faults.SEFIMTBE = 20 * time.Minute
	c.Faults.SEFIRecovery = 30 * time.Second
	c.Faults.ISLOutageMTBF = 30 * time.Minute
	c.Faults.ISLOutageDuration = time.Minute
	s1, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("same seed must reproduce identical stats under faults")
	}
}

func TestFaultScheduleIndependentOfArrivalStream(t *testing.T) {
	// The fault schedule forks its own streams from Seed: two runs with
	// the same seed but different constellations must see the same
	// worker deaths (observable through availability).
	a := faultConfig(t)
	b := faultConfig(t)
	b.Constellation.Satellites = 1
	sa, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Availability != sb.Availability {
		t.Errorf("availability must depend only on the fault schedule: %v vs %v",
			sa.Availability, sb.Availability)
	}
}

func TestRunReplicasInvariantUnderWorkerCount(t *testing.T) {
	c := faultConfig(t)
	c.Duration = 30 * time.Minute
	ref, err := RunReplicas(c, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got, err := RunReplicas(c, 16, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: replica stats differ from workers=1", w)
		}
	}
	if _, err := RunReplicas(c, 0, 1); err == nil {
		t.Error("zero replicas must error")
	}
	bad := c
	bad.Workers = 0
	if _, err := RunReplicas(bad, 4, 1); err == nil {
		t.Error("invalid config must error")
	}
}

func TestValidateFaultFields(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad scenario", func(c *Config) { c.Faults.NodeMTTF = -1 }},
		{"sefi without recovery", func(c *Config) { c.Faults.SEFIMTBE = time.Hour }},
		{"outage without duration", func(c *Config) { c.Faults.ISLOutageMTBF = time.Hour }},
		{"negative need", func(c *Config) { c.NeedWorkers = -1 }},
		{"need beyond workers", func(c *Config) { c.NeedWorkers = c.Workers + 1 }},
		{"negative retries", func(c *Config) { c.RetryLimit = -1 }},
		{"negative backoff", func(c *Config) { c.RetryBackoff = -time.Second }},
		{"negative cap", func(c *Config) { c.RetryBackoffCap = -time.Second }},
		{"backoff beyond cap", func(c *Config) { c.RetryBackoff = 2 * c.RetryBackoffCap }},
		{"shed below ShedAll", func(c *Config) { c.ShedThreshold = ShedAll - 1 }},
	}
	for _, tt := range tests {
		c := DefaultConfig(mustApp(t, "Air Pollution"))
		tt.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tt.name)
		}
		if _, err := Run(c); err == nil {
			t.Errorf("%s: Run must reject invalid config", tt.name)
		}
	}
	// Spare-aware accounting is valid configuration, not an error.
	c := DefaultConfig(mustApp(t, "Air Pollution"))
	c.NeedWorkers = c.Workers - 1
	if err := c.Validate(); err != nil {
		t.Errorf("spares (need < workers) must validate: %v", err)
	}
}
