package netsim

// Property tests for the sharded synchronizer: the k-way outbox merge
// against the stable sort it replaced, and the conservative scheduler's
// never-skip invariant — no cell is ever left holding an event inside
// its proven-safe run limit.

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"sudc/internal/topo"
	"sudc/internal/workload"
)

// refMergeOrder is the order contract of mergeOutboxes: concatenate the
// sources in cell order and stable-sort by arrival time.
func refMergeOrder(srcs [][]shardMsg) []shardMsg {
	var all []shardMsg
	for _, s := range srcs {
		all = append(all, s...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].at < all[j].at })
	return all
}

// mergeVia runs the runner's k-way merge over the given sorted sources.
func mergeVia(srcs [][]shardMsg) []shardMsg {
	r := &shardRunner{}
	n := 0
	for _, s := range srcs {
		if len(s) > 0 {
			r.msrc = append(r.msrc, s)
			n += len(s)
		}
	}
	r.mergeOutboxes(n)
	return r.pending
}

func TestOutboxMergeMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		// Random source count and lengths, straddling both the
		// insertion-gather fast path (≤ 32 messages) and the tree merge,
		// with arrival times drawn from a small grid to force ties.
		k := 1 + rng.Intn(6)
		srcs := make([][]shardMsg, k)
		id := int64(0)
		for i := range srcs {
			m := rng.Intn(24)
			at := 0.0
			for j := 0; j < m; j++ {
				at += float64(rng.Intn(3))
				id++
				srcs[i] = append(srcs[i], shardMsg{at: at, f: frame{id: id}, cell: i})
			}
		}
		got, want := mergeVia(srcs), refMergeOrder(srcs)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d messages, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: merge diverges at %d:\n got  %+v\n want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// FuzzOutboxMerge feeds arbitrary byte streams through the merge:
// bytes decode as (source, time-delta) pairs, so every source stays
// time-sorted — the merge's precondition — while cross-source ties and
// degenerate shapes (empty sources, single source, all-equal times)
// all occur. The merged order must equal the stable sort.
func FuzzOutboxMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 2, 0})
	f.Add([]byte{0, 1, 1, 1, 0, 0, 1, 0, 3, 2, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 5
		srcs := make([][]shardMsg, k)
		at := [k]float64{}
		id := int64(0)
		for i := 0; i+1 < len(data); i += 2 {
			s := int(data[i]) % k
			at[s] += float64(data[i+1] % 4)
			id++
			srcs[s] = append(srcs[s], shardMsg{at: at[s], f: frame{id: id}, cell: s})
		}
		got, want := mergeVia(srcs), refMergeOrder(srcs)
		if len(got) != len(want) {
			t.Fatalf("merged %d messages, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("merge diverges at %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}

func TestSortMsgsMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 64, 65, 200, 1000} {
		ms := make([]shardMsg, n)
		for i := range ms {
			// A small grid of times forces long runs of ties, so any
			// stability break shows up in the id payloads.
			ms[i] = shardMsg{at: float64(rng.Intn(5)), f: frame{id: int64(i)}}
		}
		want := append([]shardMsg(nil), ms...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		var scratch []shardMsg
		sortMsgs(ms, &scratch)
		for i := range ms {
			if ms[i] != want[i] {
				t.Fatalf("n=%d: sortMsgs diverges at %d: got %+v, want %+v", n, i, ms[i], want[i])
			}
		}
	}
}

// TestActiveSetNeverSkips pins the conservative scheduler's safety
// complement: after every round, no cell still holds an event inside
// the run bound the round proved safe for it. A violation means the
// active-set selection skipped a runnable cell — the failure mode that
// would silently desynchronize the shards.
func TestActiveSetNeverSkips(t *testing.T) {
	g, err := topo.Walker(4, 8, 5, 2, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c := TopologyConfig(workload.Suite[0], g)
	c.Duration = 30 * time.Minute
	c.Seed = 9
	c.Shards = 1
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	plans, err := compile(c.Topology)
	if err != nil {
		t.Fatal(err)
	}
	r, err := newShardRunner(c, plans, nil)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for r.window() {
		rounds++
		for i, s := range r.sims {
			nx := s.nextAt()
			if r.lstamp[i] == r.round {
				// Settled below the horizon: the cell must have consumed
				// everything below its limit (or the whole run, when the
				// limit cleared the horizon).
				if lim := r.limit[i]; lim >= r.horizon {
					if nx <= r.horizon {
						t.Fatalf("round %d: final cell %d still holds an event at %v ≤ horizon", r.round, i, nx)
					}
				} else if nx < lim {
					t.Fatalf("round %d: cell %d still holds an event at %v < limit %v", r.round, i, nx, lim)
				}
			} else if nx <= r.horizon {
				// Never settled this round: only possible for a cell whose
				// earliest activity already lies past the horizon.
				t.Fatalf("round %d: unsettled cell %d holds an event at %v ≤ horizon", r.round, i, nx)
			}
		}
	}
	if rounds == 0 {
		t.Fatal("run executed no rounds")
	}
	for _, s := range r.sims {
		putSim(s)
	}
}
