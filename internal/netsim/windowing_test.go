package netsim

// Tests for the windowed-telemetry wiring: the merged window stream
// must reconcile with end-of-run Stats, the trace-derived
// reconstruction (slo.WindowsFromTrace) must agree with the native
// stream, and SLO burn-rate alerts must land in the trace with a
// non-empty attributed cause.

import (
	"testing"
	"time"

	"sudc/internal/degrade"
	"sudc/internal/obs/slo"
	"sudc/internal/obs/trace"
	"sudc/internal/obs/window"
)

// windowConfig is the shared degraded+faulted legacy scenario with
// 10-minute windows: two satellites, two eclipse crossings, node
// deaths, SEFIs, ISL outages, retries, and shedding all active.
func windowConfig() Config {
	c := degradeBase()
	c.Faults = degradeFaults
	c.RetryLimit = 3
	c.ShedThreshold = 40
	p := degrade.COTSProfile(1)
	c.Degrade = &p
	c.Window = 10 * time.Minute
	return c
}

func TestWindowStreamReconcilesWithStats(t *testing.T) {
	c := windowConfig()
	var wins []window.Window
	c.OnWindow = func(w window.Window) { wins = append(wins, w) }
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) == 0 {
		t.Fatal("windowed run produced no windows")
	}

	width := c.Window.Seconds()
	var total window.Agg
	for i, w := range wins {
		if i > 0 && w.Index <= wins[i-1].Index {
			t.Fatalf("windows out of order: index %d after %d", w.Index, wins[i-1].Index)
		}
		if w.Start != float64(w.Index)*width {
			t.Errorf("w%d start %v, want %v", w.Index, w.Start, float64(w.Index)*width)
		}
		if w.End > c.Duration.Seconds() || w.End <= w.Start {
			t.Errorf("w%d span [%v, %v) escapes the run", w.Index, w.Start, w.End)
		}
		if a := w.Availability(); a < 0 || a > 1 {
			t.Errorf("w%d availability %v outside [0,1]", w.Index, a)
		}
		if w.Sec <= 0 || w.Sec > width {
			t.Errorf("w%d covers %v s, want (0, %v]", w.Index, w.Sec, width)
		}
		for k := range total.Counts {
			total.Counts[k] += w.Counts[k]
		}
		total.LatCount += w.LatCount
		total.EclipseSec += w.EclipseSec
		total.ThrottleSec += w.ThrottleSec
	}

	// The window stream partitions the run: per-window counters must sum
	// to the end-of-run stats exactly.
	for k, want := range map[window.Counter]int{
		window.CntGenerated:    s.FramesGenerated,
		window.CntProcessed:    s.FramesProcessed,
		window.CntInsights:     s.InsightsDownlinked,
		window.CntRetried:      s.FramesRetried,
		window.CntRedispatched: s.FramesRedispatched,
		window.CntShed:         s.FramesShed,
		window.CntLost:         s.FramesLost,
	} {
		if total.Counts[k] != int64(want) {
			t.Errorf("windowed %v total %d, stats say %d", k, total.Counts[k], want)
		}
	}
	if total.LatCount != int64(s.FramesProcessed) {
		t.Errorf("windowed latency samples %d, want one per processed frame %d",
			total.LatCount, s.FramesProcessed)
	}
	// A severity-1 COTS profile over two orbits must show eclipse and
	// throttle occupancy somewhere in the stream.
	if total.EclipseSec == 0 || total.ThrottleSec == 0 {
		t.Errorf("degraded run must accumulate eclipse (%v s) and throttle (%v s) occupancy",
			total.EclipseSec, total.ThrottleSec)
	}

	// Windowing must not perturb the simulation itself.
	plain := c
	plain.Window = 0
	plain.OnWindow = nil
	ps, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if ps != s {
		t.Error("enabling windowed telemetry must not change simulation results")
	}
}

func TestWindowsFromTraceMatchesNative(t *testing.T) {
	c := windowConfig()
	rec := trace.New(0)
	c.Trace = rec
	var native []window.Window
	c.OnWindow = func(w window.Window) { native = append(native, w) }
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}

	derived := slo.WindowsFromTrace(rec, c.Window.Seconds(), c.Duration.Seconds(),
		c.Workers, c.NeedWorkers)
	if len(derived) != len(native) {
		t.Fatalf("trace reconstruction has %d windows, native stream %d", len(derived), len(native))
	}
	// Counters, latency buckets, and sample counts are integer-exact
	// between the live stream and the trace replay; occupancy integrals
	// are reconstructions (eclipse ≈ brownout) and are checked loosely.
	for i := range native {
		n, d := native[i], derived[i]
		if d.Index != n.Index {
			t.Fatalf("window %d: derived index %d, native %d", i, d.Index, n.Index)
		}
		if d.Counts != n.Counts {
			t.Errorf("w%d counts differ:\n trace %v\n native %v", n.Index, d.Counts, n.Counts)
		}
		if d.Lat != n.Lat || d.LatCount != n.LatCount {
			t.Errorf("w%d latency histogram differs:\n trace %v (%d)\n native %v (%d)",
				n.Index, d.Lat, d.LatCount, n.Lat, n.LatCount)
		}
		if (n.ThrottleSec > 0) != (d.ThrottleSec > 0) {
			t.Errorf("w%d throttle occupancy: trace %v s, native %v s",
				n.Index, d.ThrottleSec, n.ThrottleSec)
		}
	}
}

func TestSLOAlertsLandInTraceWithCauses(t *testing.T) {
	c := windowConfig()
	rec := trace.New(0)
	c.Trace = rec
	sloCfg := slo.DefaultConfig()
	c.SLO = &sloCfg
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}

	var alerts []trace.Event
	for _, e := range rec.Events() {
		if e.Kind == trace.SLOAlert {
			alerts = append(alerts, e)
		}
	}
	if len(alerts) == 0 {
		t.Fatal("severity-1 degraded run must fire burn-rate alerts")
	}
	for _, a := range alerts {
		if a.Cause == "" {
			t.Errorf("alert %q at window %d has no attributed cause", a.Name, a.N)
		}
		if a.Name == "" {
			t.Errorf("alert at t=%v carries no objective name", a.T)
		}
		if a.T <= 0 || a.Dur <= 0 {
			t.Errorf("alert %q has degenerate span t=%v dur=%v", a.Name, a.T, a.Dur)
		}
	}
}

func TestWindowConfigValidation(t *testing.T) {
	base := windowConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative window", func(c *Config) { c.Window = -time.Minute }},
		{"OnWindow without window", func(c *Config) {
			c.Window = 0
			c.OnWindow = func(window.Window) {}
		}},
		{"SLO without window", func(c *Config) {
			c.Window = 0
			cfg := slo.DefaultConfig()
			c.SLO = &cfg
		}},
		{"invalid SLO objective", func(c *Config) {
			c.SLO = &slo.Config{Objectives: []slo.Objective{{Kind: slo.Availability, Target: 0.9}}}
		}},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
		}
	}

	// RunReplicas multiplexes runs and cannot deliver a per-run live
	// window stream.
	c := base
	c.OnWindow = func(window.Window) {}
	if _, err := RunReplicas(c, 2, 1); err == nil {
		t.Error("RunReplicas must reject OnWindow")
	}
}
