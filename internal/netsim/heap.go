package netsim

// eventHeap is a concrete 4-ary min-heap of simulation events keyed on
// (at, seq). It replaces container/heap on the DES hot path: a concrete
// element type means no `any` boxing on push/pop (the old heap.Interface
// paid two allocations per event), and the 4-ary layout halves the tree
// depth so sift-down touches fewer cache lines per operation.
//
// Determinism: (at, seq) is a strict total order — seq is unique per
// push — so every correct min-heap pops the exact same event sequence.
// Swapping the binary interface heap for this one cannot reorder events,
// which is what keeps the determinism goldens byte-identical.
type eventHeap struct {
	a []event
}

// eventLess orders events by time, then by push sequence.
func eventLess(x, y *event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

func (h *eventHeap) len() int { return len(h.a) }

// reset empties the heap, keeping the backing array for reuse.
func (h *eventHeap) reset() { h.a = h.a[:0] }

// grow ensures capacity for at least n total events without reallocating
// on later pushes.
func (h *eventHeap) grow(n int) {
	if cap(h.a) < n {
		a := make([]event, len(h.a), n)
		copy(a, h.a)
		h.a = a
	}
}

// push inserts e with an inlined sift-up.
func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	a := h.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(&a[i], &a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

// pop removes and returns the minimum event, zeroing the vacated slot so
// the backing array never retains a stale element past the pop (the old
// eventQueue.Pop left the popped value live until the next reslice).
func (h *eventHeap) pop() event {
	a := h.a
	top := a[0]
	n := len(a) - 1
	hole := a[n]
	a[n] = event{}
	h.a = a[:n]
	if n == 0 {
		return top
	}
	a = h.a
	// Sift the former last element down from the root, moving the hole
	// rather than swapping: one write per level instead of three.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(&a[j], &a[m]) {
				m = j
			}
		}
		if !eventLess(&a[m], &hole) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = hole
	return top
}
