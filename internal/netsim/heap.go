package netsim

// eventHeap is a concrete 4-ary min-heap of simulation events keyed on
// (at, seq). It replaces container/heap on the DES hot path: a concrete
// element type means no `any` boxing on push/pop (the old heap.Interface
// paid two allocations per event), and the 4-ary layout halves the tree
// depth so sift-down touches fewer cache lines per operation.
//
// Determinism: (at, seq) is a strict total order — seq is unique per
// push — so every correct min-heap pops the exact same event sequence.
// Swapping the binary interface heap for this one cannot reorder events,
// which is what keeps the determinism goldens byte-identical.
type eventHeap struct {
	a []event
}

// eventLess orders events by time, then by push sequence.
func eventLess(x, y *event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

func (h *eventHeap) len() int { return len(h.a) }

// reset empties the heap, keeping the backing array for reuse.
func (h *eventHeap) reset() { h.a = h.a[:0] }

// grow ensures capacity for at least n total events without reallocating
// on later pushes.
func (h *eventHeap) grow(n int) {
	if cap(h.a) < n {
		a := make([]event, len(h.a), n)
		copy(a, h.a)
		h.a = a
	}
}

// push inserts e with an inlined sift-up.
func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	a := h.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(&a[i], &a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

// pop removes and returns the minimum event, zeroing the vacated slot so
// the backing array never retains a stale element past the pop (the old
// eventQueue.Pop left the popped value live until the next reslice).
func (h *eventHeap) pop() event {
	a := h.a
	top := a[0]
	n := len(a) - 1
	hole := a[n]
	a[n] = event{}
	h.a = a[:n]
	if n == 0 {
		return top
	}
	a = h.a
	// Sift the former last element down from the root, moving the hole
	// rather than swapping: one write per level instead of three.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(&a[j], &a[m]) {
				m = j
			}
		}
		if !eventLess(&a[m], &hole) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = hole
	return top
}

// frameTimer is one satellite's pending capture, keyed (at, seq) in the
// same global sequence space as eventHeap. The capture timers live in
// their own heap: they are the bulk of the resident events (one per
// satellite, forever), while most pops come from the transient traffic
// events. Splitting them keeps both heaps shallow, which cuts the
// comparisons per sift — the dominant cost of the DES hot loop.
type frameTimer struct {
	at  float64
	seq int // global tiebreak, shared with eventHeap
	who int // satellite index
}

// frameHeap is a concrete 4-ary min-heap of capture timers. A capture
// always reschedules its satellite, so after seeding the heap never
// changes size: the only mutation is replaceTop.
type frameHeap struct {
	a []frameTimer
}

func timerLess(x, y *frameTimer) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// reset empties the heap, keeping the backing array for reuse.
func (h *frameHeap) reset() { h.a = h.a[:0] }

// grow ensures capacity for n timers without reallocating on push.
func (h *frameHeap) grow(n int) {
	if cap(h.a) < n {
		a := make([]frameTimer, len(h.a), n)
		copy(a, h.a)
		h.a = a
	}
}

// push inserts t with an inlined sift-up.
func (h *frameHeap) push(t frameTimer) {
	h.a = append(h.a, t)
	a := h.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !timerLess(&a[i], &a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

// replaceTop overwrites the minimum timer with its successor and sifts
// it down — the capture loop's pop-then-push fused into one sift, with
// no leaf promotion and no append. Any correct heap yields the same
// (at, seq) pop order, so the fusion cannot perturb determinism.
func (h *frameHeap) replaceTop(t frameTimer) {
	a := h.a
	n := len(a)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if timerLess(&a[j], &a[m]) {
				m = j
			}
		}
		if !timerLess(&a[m], &t) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = t
}
