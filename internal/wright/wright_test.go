package wright

import (
	"math"
	"testing"
	"testing/quick"

	"sudc/internal/units"
)

func TestPaperWorkedExample(t *testing.T) {
	// Paper §VI-A: "if C₁ = $1, and b = 0.9, then C₂ = $0.90, and
	// C₄ = $0.81".
	c := Curve{ProgressRatio: 0.9}
	u2, err := c.UnitCost(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(float64(u2), 0.90, 1e-12) {
		t.Errorf("C₂ = %v, want 0.90", u2)
	}
	u4, _ := c.UnitCost(1, 4)
	if !units.ApproxEqual(float64(u4), 0.81, 1e-12) {
		t.Errorf("C₄ = %v, want 0.81", u4)
	}
}

func TestHundredthUnitHalvesCost(t *testing.T) {
	// Paper Fig. 22: at b = 0.75, "By the time the 100th satellite is
	// manufactured, cost has decreased by over 50%."
	u100, err := DefaultAerospace.UnitCost(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if float64(u100) >= 0.5 {
		t.Errorf("C₁₀₀/C₁ = %v, want < 0.5", u100)
	}
}

func TestValidate(t *testing.T) {
	for _, b := range []float64{0, -0.5, 1.1} {
		if err := (Curve{ProgressRatio: b}).Validate(); err == nil {
			t.Errorf("b = %v must be rejected", b)
		}
	}
	if err := (Curve{ProgressRatio: 1}).Validate(); err != nil {
		t.Errorf("b = 1 (no learning) is legal: %v", err)
	}
}

func TestUnitCostErrors(t *testing.T) {
	if _, err := DefaultAerospace.UnitCost(1, 0); err == nil {
		t.Error("unit 0 must error")
	}
	if _, err := (Curve{}).UnitCost(1, 1); err == nil {
		t.Error("invalid curve must error")
	}
}

func TestNoLearningIsFlat(t *testing.T) {
	c := Curve{ProgressRatio: 1}
	for _, n := range []int{1, 2, 10, 100} {
		u, err := c.UnitCost(42, n)
		if err != nil {
			t.Fatal(err)
		}
		if u != 42 {
			t.Errorf("b=1 unit %d cost %v, want 42", n, u)
		}
	}
	cum, _ := c.CumulativeCost(42, 10)
	if cum != 420 {
		t.Errorf("b=1 cumulative(10) = %v, want 420", cum)
	}
}

func TestCumulativeCost(t *testing.T) {
	// b = 0.9: Σ of first 2 units = 1 + 0.9 = 1.9.
	c := Curve{ProgressRatio: 0.9}
	cum, err := c.CumulativeCost(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(float64(cum), 1.9, 1e-12) {
		t.Errorf("cumulative(2) = %v, want 1.9", cum)
	}
	zero, _ := c.CumulativeCost(1, 0)
	if zero != 0 {
		t.Errorf("cumulative(0) = %v, want 0", zero)
	}
	if _, err := c.CumulativeCost(1, -1); err == nil {
		t.Error("negative count must error")
	}
}

func TestMarginalCurve(t *testing.T) {
	m, err := DefaultAerospace.MarginalCurve(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 10 {
		t.Fatalf("len = %d", len(m))
	}
	if m[0] != 100 {
		t.Errorf("first unit = %v, want 100", m[0])
	}
	for i := 1; i < len(m); i++ {
		if m[i] >= m[i-1] {
			t.Error("marginal cost must fall monotonically")
		}
	}
	if _, err := DefaultAerospace.MarginalCurve(100, 0); err == nil {
		t.Error("zero units must error")
	}
}

// linearNRECost is a toy cost model: NRE = 40·(P/32kW)^0.5 M$,
// RE = 20·(P/32kW)^0.45 + 3 M$ — sublinear with a fixed per-satellite
// floor, the structure that creates an interior optimum.
func linearNRECost(per units.Power) (units.Dollars, units.Dollars, error) {
	frac := float64(per) / 32000
	nre := units.MUSD(40 * pow(frac, 0.5))
	re := units.MUSD(20*pow(frac, 0.45) + 3)
	return nre, re, nil
}

func pow(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, e)
}

func TestSweepShape(t *testing.T) {
	pts, err := DefaultAerospace.Sweep(units.KW(32), 8, linearNRECost)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("len = %d", len(pts))
	}
	// N=1 point: NRE + single RE, no learning discount applicable.
	if pts[0].Satellites != 1 {
		t.Error("first point must be monolithic")
	}
	n1, r1, _ := linearNRECost(units.KW(32))
	if !units.ApproxEqual(float64(pts[0].Total), float64(n1+r1), 1e-9) {
		t.Errorf("monolithic total = %v, want %v", pts[0].Total, n1+r1)
	}
	// Per-satellite power divides the target.
	if !units.ApproxEqual(float64(pts[3].PerSatellite), 8000, 1e-9) {
		t.Errorf("N=4 per-satellite = %v, want 8 kW", pts[3].PerSatellite)
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := DefaultAerospace.Sweep(0, 4, linearNRECost); err == nil {
		t.Error("zero target must error")
	}
	if _, err := DefaultAerospace.Sweep(units.KW(32), 0, linearNRECost); err == nil {
		t.Error("zero maxN must error")
	}
	if _, err := DefaultAerospace.Sweep(units.KW(32), 4, nil); err == nil {
		t.Error("nil cost fn must error")
	}
	if _, err := (Curve{}).Sweep(units.KW(32), 4, linearNRECost); err == nil {
		t.Error("bad curve must error")
	}
}

func TestBest(t *testing.T) {
	pts, _ := DefaultAerospace.Sweep(units.KW(32), 8, linearNRECost)
	best, err := Best(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Total < best.Total {
			t.Error("Best did not find the minimum")
		}
	}
	if _, err := Best(nil); err == nil {
		t.Error("empty sweep must error")
	}
}

func TestStrongLearningFavorsDistribution(t *testing.T) {
	// The Figure 23 shape: aggressive learning (b=0.65) puts the optimum
	// at N > 1; weak learning (b=0.95) keeps monolithic competitive.
	strong, _ := Curve{ProgressRatio: 0.65}.Sweep(units.KW(32), 8, linearNRECost)
	bs, _ := Best(strong)
	if bs.Satellites <= 1 {
		t.Errorf("b=0.65 optimum at N=%d, want >1", bs.Satellites)
	}
	weak, _ := Curve{ProgressRatio: 0.95}.Sweep(units.KW(32), 8, linearNRECost)
	bw, _ := Best(weak)
	if bw.Satellites > bs.Satellites {
		t.Error("weaker learning must not favor more distribution")
	}
}

func TestUnitCostMonotone(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw)%200 + 1
		u1, err1 := DefaultAerospace.UnitCost(1000, n)
		u2, err2 := DefaultAerospace.UnitCost(1000, n+1)
		if err1 != nil || err2 != nil {
			return false
		}
		return u2 < u1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
