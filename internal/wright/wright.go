// Package wright implements Wright's-law experience curves (paper §VI):
// Cₙ = C₁ · n^(log₂ b), where b is the progress ratio — every doubling of
// cumulative production multiplies unit cost by b. Aerospace manufacturing
// typically achieves b ∈ [0.7, 0.8].
//
// On top of the curve itself the package provides the paper's
// distributed-vs-monolithic optimizer (Figure 23): for a fixed aggregate
// compute target, find the constellation size N whose total cost (NRE of
// the smaller design + learning-discounted recurring cost of N units)
// is minimal.
package wright

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/units"
)

// Curve is a Wright's-law experience curve.
type Curve struct {
	// ProgressRatio b ∈ (0, 1]: unit-cost multiplier per production
	// doubling. b = 1 means no learning.
	ProgressRatio float64
}

// DefaultAerospace is the paper's Figure 22 assumption, b = 0.75.
var DefaultAerospace = Curve{ProgressRatio: 0.75}

// Validate reports an error for non-physical progress ratios.
func (c Curve) Validate() error {
	if c.ProgressRatio <= 0 || c.ProgressRatio > 1 {
		return fmt.Errorf("wright: progress ratio %v out of (0,1]", c.ProgressRatio)
	}
	return nil
}

// exponent returns log₂(b) ≤ 0.
func (c Curve) exponent() float64 { return math.Log2(c.ProgressRatio) }

// UnitCost returns the cost of the nth unit (n ≥ 1) given first-unit
// recurring cost c1.
func (c Curve) UnitCost(c1 units.Dollars, n int) (units.Dollars, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, errors.New("wright: unit index must be ≥ 1")
	}
	return units.Dollars(float64(c1) * math.Pow(float64(n), c.exponent())), nil
}

// CumulativeCost returns the cost of producing units 1..n:
// c1 · Σ_{i=1..n} i^(log₂ b).
func (c Curve) CumulativeCost(c1 units.Dollars, n int) (units.Dollars, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, errors.New("wright: negative unit count")
	}
	var sum float64
	e := c.exponent()
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), e)
	}
	return units.Dollars(float64(c1) * sum), nil
}

// MarginalCurve returns unit costs for units 1..n.
func (c Curve) MarginalCurve(c1 units.Dollars, n int) ([]units.Dollars, error) {
	if n < 1 {
		return nil, errors.New("wright: need at least one unit")
	}
	out := make([]units.Dollars, n)
	for i := 1; i <= n; i++ {
		u, err := c.UnitCost(c1, i)
		if err != nil {
			return nil, err
		}
		out[i-1] = u
	}
	return out, nil
}

// CostFn gives the NRE and single-unit RE of a satellite design sized to
// one per-satellite compute power. The distributed-vs-monolithic optimizer
// calls it once per candidate constellation size.
type CostFn func(perSatellite units.Power) (nre, re units.Dollars, err error)

// Point is one candidate in a distributed-vs-monolithic sweep.
type Point struct {
	// Satellites is the constellation size N.
	Satellites int
	// PerSatellite is the compute power of each satellite.
	PerSatellite units.Power
	// NRE is the (single) design cost for the class.
	NRE units.Dollars
	// RE is the learning-discounted recurring cost of all N units.
	RE units.Dollars
	// Total = NRE + RE.
	Total units.Dollars
}

// Sweep evaluates constellation sizes 1..maxN for a fixed aggregate
// compute target, applying the learning curve to recurring costs. The NRE
// is paid once per design (amortized across the constellation, as in the
// paper's Figure 23 analysis).
func (c Curve) Sweep(target units.Power, maxN int, cost CostFn) ([]Point, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if target <= 0 {
		return nil, errors.New("wright: non-positive power target")
	}
	if maxN < 1 {
		return nil, errors.New("wright: need at least one constellation size")
	}
	if cost == nil {
		return nil, errors.New("wright: nil cost function")
	}
	out := make([]Point, 0, maxN)
	for n := 1; n <= maxN; n++ {
		per := units.Power(float64(target) / float64(n))
		nre, re, err := cost(per)
		if err != nil {
			return nil, fmt.Errorf("wright: costing %d×%v: %w", n, per, err)
		}
		cum, err := c.CumulativeCost(re, n)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{
			Satellites:   n,
			PerSatellite: per,
			NRE:          nre,
			RE:           cum,
			Total:        nre + cum,
		})
	}
	return out, nil
}

// Best returns the sweep point with minimal total cost.
func Best(points []Point) (Point, error) {
	if len(points) == 0 {
		return Point{}, errors.New("wright: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Total < best.Total {
			best = p
		}
	}
	return best, nil
}
