// Package latency turns a frame-lineage flight recording (package
// trace) into latency attribution: a per-frame critical-path
// decomposition into pipeline stages, stage-level percentile
// summaries, the top-K slowest frames with their event timelines, and
// a degraded-interval report reconstructed from the fault events.
//
// The decomposition is exact by construction: a frame's lifetime is
// partitioned into consecutive inter-event intervals, each attributed
// to the stage the frame was in, so the summed stages telescope back
// to the end-to-end latency (to float64 rounding, well under 1e-9 s).
package latency

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sudc/internal/obs/trace"
)

// Stage is one segment of a frame's critical path.
type Stage int

const (
	// StageQueue is time spent waiting in a queue: behind other frames
	// in the ISL queue, or in the input queue waiting for a batch slot.
	StageQueue Stage = iota
	// StageTransfer is time actively crossing the ISL, including
	// partial transfers aborted by an outage.
	StageTransfer
	// StageRetryBackoff is time waiting out ISL retry backoff windows.
	StageRetryBackoff
	// StageCompute is time dispatched to a worker, including SEFI
	// stalls and service stranded by a node death.
	StageCompute
	// StageDownlinkWait is time between compute completion and the
	// insight downlink (zero in the current pipeline model, where the
	// analyzer downlinks at batch completion).
	StageDownlinkWait

	NumStages
)

var stageNames = [NumStages]string{
	StageQueue:        "queue",
	StageTransfer:     "transfer",
	StageRetryBackoff: "retry-backoff",
	StageCompute:      "compute",
	StageDownlinkWait: "downlink-wait",
}

// String returns the stage's display name.
func (s Stage) String() string {
	if s >= 0 && s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Frame is one frame's reconstructed lineage.
type Frame struct {
	// ID is the stable frame ID; Scope the recorder scope ("" = root).
	ID    int64
	Scope string
	// Captured and Done bound the frame's observed lifetime (Done is
	// the terminal event for completed/shed/lost frames, the last seen
	// event otherwise).
	Captured, Done float64
	// Stages is the critical-path decomposition; the entries sum to
	// Done-Captured exactly (to float64 rounding).
	Stages [NumStages]float64
	// Outcome is "downlinked", "processed", "shed", "lost", or
	// "in-flight".
	Outcome string
	// Tier is the compute tier the placement engine routed the frame to
	// ("onboard", "space", "ground-edge", "cloud"); empty when the run
	// had no placement engine.
	Tier string
	// Causes lists the distinct fault windows that stalled the frame
	// (from retry/loss attribution, node-death re-enqueues, and SEFI
	// windows overlapping its compute), sorted.
	Causes []string
	// Events is the frame's own event timeline, in record order.
	Events []trace.Event
}

// Total is the frame's observed end-to-end latency.
func (f Frame) Total() float64 { return f.Done - f.Captured }

// SumStages is the summed stage decomposition — equal to Total to
// float64 rounding for every frame.
func (f Frame) SumStages() float64 {
	var s float64
	for _, v := range f.Stages {
		s += v
	}
	return s
}

// Completed reports whether the frame finished compute.
func (f Frame) Completed() bool {
	return f.Outcome == "processed" || f.Outcome == "downlinked"
}

// sefiWindow is one reconstructed SEFI hang on one node.
type sefiWindow struct {
	node       int
	start, end float64
}

// Decompose reconstructs per-frame lineages from one scope's events
// (in record order). Frames are returned in ascending ID order.
func Decompose(events []trace.Event) []Frame {
	return decompose("", events)
}

// DecomposeAll reconstructs lineages across the recorder's root scope
// and every child scope, ordered by (scope, frame ID).
func DecomposeAll(rec *trace.Recorder) []Frame {
	var out []Frame
	if rec == nil {
		return nil
	}
	out = append(out, decompose("", rec.Events())...)
	for _, name := range rec.Scopes() {
		out = append(out, DecomposeAllScoped(rec.Child(name), name)...)
	}
	return out
}

// DecomposeAllScoped is DecomposeAll with scope names prefixed by the
// given path — the recursion behind child scopes.
func DecomposeAllScoped(rec *trace.Recorder, prefix string) []Frame {
	if rec == nil {
		return nil
	}
	out := decompose(prefix, rec.Events())
	for _, name := range rec.Scopes() {
		out = append(out, DecomposeAllScoped(rec.Child(name), prefix+"/"+name)...)
	}
	return out
}

func decompose(scope string, events []trace.Event) []Frame {
	type fstate struct {
		frame *Frame
		stage Stage
		last  float64
		open  bool // between capture and terminal event
		node  int  // current worker while computing
	}
	var (
		byID  = map[int64]*fstate{}
		order []int64
		sefis []sefiWindow
	)
	for _, e := range events {
		// Reconstruct SEFI windows for compute-stall attribution.
		if e.Kind == trace.SEFIStart {
			sefis = append(sefis, sefiWindow{node: e.Node, start: e.T, end: e.T + e.Dur})
		}
		if e.Frame == 0 {
			continue
		}
		st, ok := byID[e.Frame]
		if !ok {
			st = &fstate{frame: &Frame{ID: e.Frame, Scope: scope, Captured: e.T,
				Outcome: "in-flight"}, node: -1}
			byID[e.Frame] = st
			order = append(order, e.Frame)
		}
		f := st.frame
		f.Events = append(f.Events, e)
		if e.Kind == trace.FrameCaptured {
			st.open, st.last, st.stage = true, e.T, StageQueue
			f.Captured = e.T
			continue
		}
		if st.open {
			// Close the interval since the previous event under the
			// stage the frame was in, then transition.
			f.Stages[st.stage] += e.T - st.last
			if st.stage == StageCompute && st.node >= 0 {
				attributeSEFI(f, sefis, st.node, st.last, e.T)
			}
			st.last = e.T
		}
		switch e.Kind {
		case trace.ISLSendStart:
			st.stage = StageTransfer
		case trace.ISLSendEnd:
			st.stage = StageQueue
			if e.Cause != "" {
				addCause(f, e.Cause)
			}
		case trace.Retry:
			st.stage = StageRetryBackoff
			addCause(f, e.Cause)
		case trace.Enqueued:
			st.stage = StageQueue
			st.node = -1
			if e.Cause != "" {
				addCause(f, e.Cause)
			}
		case trace.Dispatched:
			st.stage = StageCompute
			st.node = e.Node
		case trace.ComputeEnd:
			st.stage = StageDownlinkWait
			st.node = -1
			f.Outcome = "processed"
			f.Done = e.T
		case trace.Downlinked:
			f.Outcome = "downlinked"
			f.Done = e.T
			st.open = false
		case trace.Shed:
			f.Outcome = "shed"
			f.Done = e.T
			st.open = false
		case trace.Lost:
			f.Outcome = "lost"
			f.Done = e.T
			st.open = false
			addCause(f, e.Cause)
		case trace.Placed:
			f.Tier = e.Tier
		}
		if f.Done < e.T {
			f.Done = e.T
		}
	}
	out := make([]Frame, 0, len(order))
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		out = append(out, *byID[id].frame)
	}
	return out
}

// addCause records a distinct, sorted fault cause on the frame.
func addCause(f *Frame, cause string) {
	if cause == "" {
		return
	}
	i := sort.SearchStrings(f.Causes, cause)
	if i < len(f.Causes) && f.Causes[i] == cause {
		return
	}
	f.Causes = append(f.Causes, "")
	copy(f.Causes[i+1:], f.Causes[i:])
	f.Causes[i] = cause
}

// attributeSEFI adds "sefi#<node>" for SEFI windows on the frame's
// worker overlapping its compute interval.
func attributeSEFI(f *Frame, sefis []sefiWindow, node int, from, to float64) {
	for _, w := range sefis {
		if w.node == node && w.start < to && w.end > from {
			addCause(f, fmt.Sprintf("sefi#%d", node))
		}
	}
}

// StageSummary is one stage's distribution across a frame set.
type StageSummary struct {
	Stage                    Stage
	Mean, P50, P95, P99, Max float64
	// Share is this stage's fraction of the summed end-to-end latency.
	Share float64
}

// Summarize computes per-stage distributions over the completed frames
// of the set, in stage order, with an extra end-to-end pseudo-stage
// (Stage == NumStages) last.
func Summarize(frames []Frame) []StageSummary {
	samples := make([][]float64, NumStages+1)
	var grand float64
	for _, f := range frames {
		if !f.Completed() {
			continue
		}
		for s := Stage(0); s < NumStages; s++ {
			samples[s] = append(samples[s], f.Stages[s])
		}
		samples[NumStages] = append(samples[NumStages], f.Total())
		grand += f.Total()
	}
	out := make([]StageSummary, 0, NumStages+1)
	for s := Stage(0); s <= NumStages; s++ {
		v := samples[s]
		sort.Float64s(v)
		sum := 0.0
		for _, x := range v {
			sum += x
		}
		sm := StageSummary{Stage: s}
		if n := len(v); n > 0 {
			sm.Mean = sum / float64(n)
			sm.P50 = Quantile(v, 0.50)
			sm.P95 = Quantile(v, 0.95)
			sm.P99 = Quantile(v, 0.99)
			sm.Max = v[n-1]
		}
		if grand > 0 {
			sm.Share = sum / grand
			if s == NumStages {
				// The pseudo-stage is the whole: exactly 1 by definition
				// (summation order otherwise leaves ±1 ulp of noise).
				sm.Share = 1
			}
		}
		out = append(out, sm)
	}
	return out
}

// Quantile returns the q-th quantile of an ascending-sorted sample via
// linear interpolation between order statistics; NaN for q outside
// [0,1] or an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// TopK returns the k slowest frames by end-to-end latency (completed
// or not), ties broken by (scope, ID) for determinism.
func TopK(frames []Frame, k int) []Frame {
	sorted := append([]Frame(nil), frames...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Total() != sorted[j].Total() {
			return sorted[i].Total() > sorted[j].Total()
		}
		if sorted[i].Scope != sorted[j].Scope {
			return sorted[i].Scope < sorted[j].Scope
		}
		return sorted[i].ID < sorted[j].ID
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	if k < 0 {
		k = 0
	}
	return sorted[:k]
}

// Interval is one degraded-operation window reconstructed from the
// fault events of a single scope.
type Interval struct {
	// Start and End bound the window (End clipped to the horizon; a
	// node death extends to the horizon).
	Start, End float64
	// Kind is "isl-outage", "sefi", "node-death", "throttle", or
	// "brownout"; Node the affected worker (-1 for ISL outages and the
	// fleet-wide degradation windows); Cause the window's attribution
	// tag.
	Kind  string
	Node  int
	Cause string
	// FramesStalled counts frames whose recorded causes name this
	// window (only outage and death windows carry per-frame tags).
	FramesStalled int
}

// Duration is the window length.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// DegradedIntervals reconstructs the fault windows of one scope's
// events, sorted by start time, with per-window stalled-frame counts
// from the frame decomposition. horizon clips open-ended windows.
func DegradedIntervals(events []trace.Event, horizon float64) []Interval {
	var out []Interval
	open := map[string]int{} // outage cause -> index in out
	brownIdx := -1           // open brownout window (at most one fleet-wide)
	for _, e := range events {
		switch e.Kind {
		case trace.OutageStart:
			end := e.T + e.Dur
			if end > horizon {
				end = horizon
			}
			out = append(out, Interval{Start: e.T, End: end, Kind: "isl-outage",
				Node: -1, Cause: e.Cause})
			open[e.Cause] = len(out) - 1
		case trace.OutageEnd:
			if i, ok := open[e.Cause]; ok {
				out[i].End = e.T
				delete(open, e.Cause)
			}
		case trace.SEFIStart:
			end := e.T + e.Dur
			if end > horizon {
				end = horizon
			}
			out = append(out, Interval{Start: e.T, End: end, Kind: "sefi",
				Node: e.Node, Cause: fmt.Sprintf("sefi#%d", e.Node)})
		case trace.NodeDeath:
			out = append(out, Interval{Start: e.T, End: horizon, Kind: "node-death",
				Node: e.Node, Cause: fmt.Sprintf("node-death#%d", e.Node)})
		case trace.Throttle:
			if e.Mult >= 1 {
				break
			}
			end := e.T + e.Dur
			if end > horizon {
				end = horizon
			}
			out = append(out, Interval{Start: e.T, End: end, Kind: "throttle",
				Node: -1, Cause: fmt.Sprintf("throttle×%.2f", e.Mult)})
		case trace.BrownoutStart:
			end := e.T + e.Dur
			if end > horizon {
				end = horizon
			}
			out = append(out, Interval{Start: e.T, End: end, Kind: "brownout",
				Node: -1, Cause: e.Cause})
			brownIdx = len(out) - 1
		case trace.BrownoutEnd:
			if brownIdx >= 0 {
				out[brownIdx].End = e.T
				brownIdx = -1
			}
		}
	}
	counts := map[string]int{}
	for _, f := range Decompose(events) {
		for _, c := range f.Causes {
			counts[c]++
		}
	}
	for i := range out {
		out[i].FramesStalled = counts[out[i].Cause]
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// AvailabilityFromTrace recomputes the DES time-averaged availability
// of one scope from its fault events alone: the fraction of [0,
// horizon] with at least `need` of `workers` nodes neither dead nor
// hung. It must agree with netsim's Stats.Availability for the same
// run — the EXPERIMENTS.md E7 cross-check.
func AvailabilityFromTrace(events []trace.Event, workers, need int, horizon float64) float64 {
	if horizon <= 0 || workers <= 0 {
		return math.NaN()
	}
	type edge struct {
		t     float64
		delta int
	}
	var edges []edge
	for _, e := range events {
		switch e.Kind {
		case trace.NodeDeath:
			edges = append(edges, edge{e.T, -1})
		case trace.SEFIStart:
			edges = append(edges, edge{e.T, -1})
		case trace.SEFIEnd:
			edges = append(edges, edge{e.T, +1})
		case trace.BrownoutStart:
			edges = append(edges, edge{e.T, -e.N})
		case trace.BrownoutEnd:
			edges = append(edges, edge{e.T, +e.N})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	up, last, effective := 0.0, 0.0, workers
	for _, ed := range edges {
		if ed.t > horizon {
			break
		}
		if effective >= need && ed.t > last {
			up += ed.t - last
		}
		last = ed.t
		effective += ed.delta
	}
	if effective >= need && horizon > last {
		up += horizon - last
	}
	return up / horizon
}

// FormatCauses renders a frame's cause list for display.
func FormatCauses(causes []string) string {
	if len(causes) == 0 {
		return "-"
	}
	return strings.Join(causes, ",")
}
