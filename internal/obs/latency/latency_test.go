package latency_test

import (
	"math"
	"testing"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/faults"
	"sudc/internal/netsim"
	"sudc/internal/obs/latency"
	"sudc/internal/obs/trace"
	"sudc/internal/workload"
)

// faultedRun executes a fault-heavy DES scenario with the flight
// recorder attached and returns the recording plus the run's stats.
func faultedRun(t *testing.T) (*trace.Recorder, netsim.Stats, netsim.Config) {
	t.Helper()
	c := netsim.DefaultConfig(workload.Suite[0])
	c.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	c.Workers = 5
	c.NeedWorkers = 4
	c.BatchSize = 4
	c.BatchTimeout = 30 * time.Second
	c.Duration = time.Hour
	c.Faults = faults.Scenario{
		NodeMTTF:          2 * time.Hour,
		SEFIMTBE:          20 * time.Minute,
		SEFIRecovery:      30 * time.Second,
		ISLOutageMTBF:     30 * time.Minute,
		ISLOutageDuration: time.Minute,
	}
	c.Seed = 9
	c.RetryLimit = 3
	c.ShedThreshold = 40
	rec := trace.New(0)
	c.Trace = rec
	s, err := netsim.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return rec, s, c
}

func TestDecompositionSumsToEndToEnd(t *testing.T) {
	rec, s, _ := faultedRun(t)
	frames := latency.DecomposeAll(rec)
	if len(frames) == 0 {
		t.Fatal("no frames decomposed")
	}
	if len(frames) != s.FramesGenerated {
		t.Errorf("decomposed %d frames, stats generated %d", len(frames), s.FramesGenerated)
	}
	for _, f := range frames {
		if d := math.Abs(f.SumStages() - f.Total()); d > 1e-9 {
			t.Errorf("frame %d: stage sum %.12f != total %.12f (|Δ|=%.3g)",
				f.ID, f.SumStages(), f.Total(), d)
		}
		for st, v := range f.Stages {
			if v < 0 {
				t.Errorf("frame %d: negative %v stage %.12f", f.ID, latency.Stage(st), v)
			}
		}
	}
}

func TestOutcomesMatchStats(t *testing.T) {
	rec, s, _ := faultedRun(t)
	frames := latency.DecomposeAll(rec)
	counts := map[string]int{}
	for _, f := range frames {
		counts[f.Outcome]++
	}
	if got := counts["processed"] + counts["downlinked"]; got != s.FramesProcessed {
		t.Errorf("completed frames %d, stats processed %d", got, s.FramesProcessed)
	}
	if counts["downlinked"] != s.InsightsDownlinked {
		t.Errorf("downlinked frames %d, stats %d", counts["downlinked"], s.InsightsDownlinked)
	}
	if counts["shed"] != s.FramesShed {
		t.Errorf("shed frames %d, stats %d", counts["shed"], s.FramesShed)
	}
	if counts["lost"] != s.FramesLost {
		t.Errorf("lost frames %d, stats %d", counts["lost"], s.FramesLost)
	}
}

func TestAvailabilityFromTraceMatchesDES(t *testing.T) {
	rec, s, c := faultedRun(t)
	got := latency.AvailabilityFromTrace(rec.Events(), c.Workers, c.NeedWorkers,
		c.Duration.Seconds())
	if math.Abs(got-s.Availability) > 1e-9 {
		t.Errorf("availability from trace %.12f, DES reported %.12f", got, s.Availability)
	}
	if !math.IsNaN(latency.AvailabilityFromTrace(nil, 0, 1, 100)) {
		t.Error("zero workers must yield NaN")
	}
	if !math.IsNaN(latency.AvailabilityFromTrace(nil, 4, 4, 0)) {
		t.Error("zero horizon must yield NaN")
	}
	if a := latency.AvailabilityFromTrace(nil, 4, 4, 100); a != 1 {
		t.Errorf("fault-free trace availability = %v, want 1", a)
	}
}

func TestDegradedIntervalsReconstructed(t *testing.T) {
	rec, s, c := faultedRun(t)
	ivs := latency.DegradedIntervals(rec.Events(), c.Duration.Seconds())
	if len(ivs) == 0 {
		t.Fatal("fault-heavy run produced no degraded intervals")
	}
	kinds := map[string]int{}
	var downtime float64
	for i, iv := range ivs {
		kinds[iv.Kind]++
		if iv.Duration() < 0 {
			t.Errorf("interval %d has negative duration: %+v", i, iv)
		}
		if i > 0 && iv.Start < ivs[i-1].Start {
			t.Error("intervals must be sorted by start time")
		}
		if iv.Kind == "isl-outage" {
			downtime += iv.Duration()
		}
	}
	if kinds["isl-outage"] == 0 || kinds["sefi"] == 0 || kinds["node-death"] == 0 {
		t.Errorf("expected all three fault kinds, got %v", kinds)
	}
	if des := s.ISLDowntime.Seconds(); math.Abs(downtime-des) > 1e-6 {
		t.Errorf("summed outage intervals %.6fs, DES ISL downtime %.6fs", downtime, des)
	}
}

func TestTopKDeterministicOrder(t *testing.T) {
	rec, _, _ := faultedRun(t)
	frames := latency.DecomposeAll(rec)
	top := latency.TopK(frames, 10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d frames", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Total() > top[i-1].Total() {
			t.Error("TopK must be sorted by descending total latency")
		}
	}
	if got := latency.TopK(frames, -1); len(got) != 0 {
		t.Error("negative k must yield no frames")
	}
	if got := latency.TopK(frames[:3], 10); len(got) != 3 {
		t.Error("k beyond the set must clamp")
	}
}

func TestSummarizeSharesAndPercentiles(t *testing.T) {
	rec, _, _ := faultedRun(t)
	sums := latency.Summarize(latency.DecomposeAll(rec))
	if len(sums) != int(latency.NumStages)+1 {
		t.Fatalf("Summarize returned %d rows", len(sums))
	}
	var share float64
	for _, sm := range sums[:latency.NumStages] {
		share += sm.Share
		if sm.P50 > sm.P95 || sm.P95 > sm.P99 || sm.P99 > sm.Max {
			t.Errorf("%v: percentiles not monotone: %+v", sm.Stage, sm)
		}
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("stage shares sum to %.12f, want 1", share)
	}
	e2e := sums[latency.NumStages]
	if e2e.Share != 1 {
		t.Errorf("end-to-end share = %v, want 1", e2e.Share)
	}
}

func TestQuantileTable(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	} {
		if got := latency.Quantile(sorted, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(latency.Quantile(nil, 0.5)) {
		t.Error("empty sample must yield NaN")
	}
	if !math.IsNaN(latency.Quantile(sorted, -0.1)) || !math.IsNaN(latency.Quantile(sorted, 1.1)) {
		t.Error("q outside [0,1] must yield NaN")
	}
}

func TestCausesAttributed(t *testing.T) {
	rec, _, _ := faultedRun(t)
	frames := latency.DecomposeAll(rec)
	var tagged int
	for _, f := range frames {
		for i, c := range f.Causes {
			if c == "" {
				t.Errorf("frame %d: empty cause", f.ID)
			}
			if i > 0 && f.Causes[i] <= f.Causes[i-1] {
				t.Errorf("frame %d: causes not sorted/distinct: %v", f.ID, f.Causes)
			}
		}
		tagged += len(f.Causes)
	}
	if tagged == 0 {
		t.Error("fault-heavy run attributed no causes to any frame")
	}
}

func TestFormatCauses(t *testing.T) {
	if got := latency.FormatCauses(nil); got != "-" {
		t.Errorf("FormatCauses(nil) = %q", got)
	}
	if got := latency.FormatCauses([]string{"a", "b"}); got != "a,b" {
		t.Errorf("FormatCauses = %q", got)
	}
}

func TestDecomposeNilAndEmpty(t *testing.T) {
	if latency.DecomposeAll(nil) != nil {
		t.Error("nil recorder must decompose to nil")
	}
	if got := latency.Decompose(nil); len(got) != 0 {
		t.Errorf("no events must decompose to no frames, got %d", len(got))
	}
}
