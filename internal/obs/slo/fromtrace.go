// Trace-derived windows: rebuild the per-window aggregate stream from
// a saved flight recording, so sudcmon can evaluate SLOs and diff two
// runs without re-running the DES. The reconstruction walks each
// recorder scope as one cell, replays its fault/degradation events as
// environment edges, and feeds frame events through the same
// window.Collector the live DES uses — so counters, latency buckets,
// and occupancy agree with the native stream (pinned by test).
//
// Two fields are unreconstructable from a recording and stay zero:
// deferred-batch counts (no trace event) and placement cost sums (the
// model's $ figures never reach the trace). Eclipse occupancy is
// approximated by brownout occupancy, its service-visible footprint.

package slo

import (
	"sort"

	"sudc/internal/obs/latency"
	"sudc/internal/obs/trace"
	"sudc/internal/obs/window"
)

// envEdge is one environment change replayed between counting events.
type envEdge struct {
	t float64
	// deltas applied at t
	throttle, brown, outage, effective int
}

// WindowsFromTrace rebuilds the merged window stream of a recording:
// width is the window size in sim seconds, horizon the run length
// (clips open-ended fault windows), and workers/need the per-scope
// complement for the availability occupancy (workers ≤ 0 disables it,
// leaving per-window availability at 1).
func WindowsFromTrace(rec *trace.Recorder, width, horizon float64, workers, need int) []window.Window {
	if rec == nil || width <= 0 {
		return nil
	}
	born := map[int64]float64{}
	var scopes []string
	byScope := map[string][]trace.Event{}
	var walk func(r *trace.Recorder, prefix string)
	walk = func(r *trace.Recorder, prefix string) {
		events := r.Events()
		for _, e := range events {
			if e.Kind == trace.FrameCaptured {
				born[e.Frame] = e.T
			}
		}
		if hasSimEvents(events) {
			scopes = append(scopes, prefix)
			byScope[prefix] = events
		}
		for _, name := range r.Scopes() {
			full := name
			if prefix != "" {
				full = prefix + "/" + name
			}
			walk(r.Child(name), full)
		}
	}
	walk(rec, "")

	var frags []window.Fragment
	for cell, scope := range scopes {
		frags = append(frags, scopeFragments(byScope[scope], cell, width, horizon, workers, need, born)...)
	}
	return window.Merge(width, frags)
}

// hasSimEvents reports whether the scope carries simulation events
// (anything but spans and SLO alerts — scopes holding only derived
// events must not contribute occupancy).
func hasSimEvents(events []trace.Event) bool {
	for _, e := range events {
		if e.Kind != trace.SpanDone && e.Kind != trace.SLOAlert {
			return true
		}
	}
	return false
}

// scopeFragments replays one scope into per-window fragments.
func scopeFragments(events []trace.Event, cell int, width, horizon float64, workers, need int, born map[int64]float64) []window.Fragment {
	edges := scopeEdges(events, horizon)
	col := window.NewCollector(width, cell)
	var (
		throttled, browned, outages int
		effective                   = workers
		ei                          int
	)
	env := func() window.Env {
		e := window.Env{
			Throttled: throttled > 0,
			Browned:   browned > 0,
			// Eclipse is unrecoverable from the trace; brownout is its
			// service-visible footprint.
			Eclipse:   browned > 0,
			DownLinks: outages,
		}
		if workers > 0 {
			e.Weight = float64(workers)
			e.Up = effective >= need
		}
		return e
	}
	apply := func(upTo float64) {
		for ei < len(edges) && edges[ei].t <= upTo {
			col.Advance(edges[ei].t, env())
			throttled += edges[ei].throttle
			browned += edges[ei].brown
			outages += edges[ei].outage
			effective += edges[ei].effective
			ei++
		}
	}
	for _, e := range events {
		if e.Kind == trace.SpanDone || e.Kind == trace.SLOAlert {
			continue
		}
		apply(e.T)
		col.Advance(e.T, env())
		switch e.Kind {
		case trace.FrameCaptured:
			col.Count(window.CntGenerated, 1)
		case trace.ComputeEnd:
			if e.Frame > 0 {
				col.Count(window.CntProcessed, 1)
				if b, ok := born[e.Frame]; ok {
					col.Latency(e.T - b)
				}
			}
		case trace.Downlinked:
			col.Count(window.CntInsights, 1)
		case trace.Retry:
			col.Count(window.CntRetried, 1)
		case trace.Enqueued:
			if e.Cause != "" {
				col.Count(window.CntRedispatched, 1)
			}
		case trace.Shed:
			col.Count(window.CntShed, 1)
		case trace.Lost:
			col.Count(window.CntLost, 1)
		case trace.Placed:
			if e.Cause == "spill" {
				col.Count(window.CntSpilled, 1)
			}
		}
	}
	apply(horizon)
	col.Advance(horizon, env())
	col.Close()
	return append([]window.Fragment(nil), col.Drain()...)
}

// scopeEdges compiles a scope's fault and degradation events into a
// sorted environment-edge timeline. Occupancy intervals come from the
// latency package's reconstruction (clipped ends, throttle phases with
// Mult < 1 only); effective-worker deltas mirror the availability
// cross-check's edge walk.
func scopeEdges(events []trace.Event, horizon float64) []envEdge {
	var edges []envEdge
	for _, iv := range latency.DegradedIntervals(events, horizon) {
		switch iv.Kind {
		case "throttle":
			edges = append(edges, envEdge{t: iv.Start, throttle: 1}, envEdge{t: iv.End, throttle: -1})
		case "brownout":
			edges = append(edges, envEdge{t: iv.Start, brown: 1}, envEdge{t: iv.End, brown: -1})
		case "isl-outage":
			edges = append(edges, envEdge{t: iv.Start, outage: 1}, envEdge{t: iv.End, outage: -1})
		}
	}
	for _, e := range events {
		switch e.Kind {
		case trace.NodeDeath:
			edges = append(edges, envEdge{t: e.T, effective: -1})
		case trace.SEFIStart:
			edges = append(edges, envEdge{t: e.T, effective: -1})
		case trace.SEFIEnd:
			edges = append(edges, envEdge{t: e.T, effective: +1})
		case trace.BrownoutStart:
			edges = append(edges, envEdge{t: e.T, effective: -e.N})
		case trace.BrownoutEnd:
			edges = append(edges, envEdge{t: e.T, effective: +e.N})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	return edges
}
