package slo

import (
	"strings"
	"testing"

	"sudc/internal/obs/window"
)

// mkWindow builds one synthetic merged window: avail in [0,1] over a
// 600 s span with weight 4, gen/done frame counts, and one latency
// sample per done frame at lat seconds.
func mkWindow(index int, avail float64, gen, done int64, lat float64) window.Window {
	w := window.Window{Index: index, Start: float64(index) * 600, End: float64(index+1) * 600}
	w.Cells = 1
	w.Sec = 600
	w.WeightSec = 600 * 4
	w.UpSec = avail * w.WeightSec
	w.Counts[window.CntGenerated] = gen
	w.Counts[window.CntProcessed] = done
	c := window.NewCollector(600, 0)
	for i := int64(0); i < done; i++ {
		c.Latency(lat)
	}
	c.Close()
	for _, f := range c.Drain() {
		w.Lat = f.Lat
		w.LatCount = f.LatCount
		w.LatSum = f.LatSum
		w.LatMin = f.LatMin
		w.LatMax = f.LatMax
	}
	return w
}

func TestBurnAlertFiresOnRisingEdgeOnly(t *testing.T) {
	cfg := Config{
		Objectives:  []Objective{{Name: "availability", Kind: Availability, Target: 0.99}},
		FastWindows: 1, SlowWindows: 6, FastBurn: 4, SlowBurn: 1,
	}
	wins := []window.Window{
		mkWindow(0, 1, 10, 10, 1),    // healthy
		mkWindow(1, 0.90, 10, 10, 1), // burn 10: fast 10 ≥ 4, slow ≥ 1 → alert
		mkWindow(2, 0.90, 10, 10, 1), // still alerting: no new alert
		mkWindow(3, 1, 10, 10, 1),    // recovers (fast 0)
		mkWindow(4, 0.80, 10, 10, 1), // burn 20 → second alert
	}
	rep := Run(cfg, wins)
	if len(rep.Alerts) != 2 {
		t.Fatalf("got %d alerts, want 2 (rising edges only): %+v", len(rep.Alerts), rep.Alerts)
	}
	if rep.Alerts[0].Window != 1 || rep.Alerts[1].Window != 4 {
		t.Errorf("alert windows %d, %d, want 1, 4", rep.Alerts[0].Window, rep.Alerts[1].Window)
	}
	if rep.Alerts[0].Cause == "" {
		t.Error("alert must carry an attribution")
	}
	if want := 2.0 / 5.0; rep.Attainment != want {
		t.Errorf("attainment %v, want %v (2 of 5 windows within budget)", rep.Attainment, want)
	}
}

func TestSlowBurnSuppressesBlip(t *testing.T) {
	// A long healthy history drags the slow average below 1, so one bad
	// window (fast over threshold) must not alert.
	cfg := Config{
		Objectives:  []Objective{{Name: "availability", Kind: Availability, Target: 0.99}},
		FastWindows: 1, SlowWindows: 6, FastBurn: 4, SlowBurn: 1,
	}
	var wins []window.Window
	for i := 0; i < 5; i++ {
		wins = append(wins, mkWindow(i, 1, 10, 10, 1))
	}
	wins = append(wins, mkWindow(5, 0.95, 10, 10, 1)) // burn 5: slow = 5/6 < 1
	rep := Run(cfg, wins)
	if len(rep.Alerts) != 0 {
		t.Fatalf("slow-burn average must suppress a one-window blip, got %+v", rep.Alerts)
	}
}

func TestLatencyAndLossObjectives(t *testing.T) {
	cfg := Config{Objectives: []Objective{
		{Name: "p99-latency", Kind: LatencyP99, Target: 120},
		{Name: "loss-rate", Kind: LossRate, Target: 0.01},
	}}
	w := mkWindow(0, 1, 100, 100, 700) // every frame at 700 s ≫ 120 s target
	w.Counts[window.CntShed] = 5
	rep := Run(cfg, []window.Window{w})
	if len(rep.Evals) != 2 {
		t.Fatalf("want 2 evals, got %d", len(rep.Evals))
	}
	if lat := rep.Evals[0]; lat.Burn != 100 { // 100% over target / 1% budget
		t.Errorf("latency burn %v, want 100", lat.Burn)
	}
	if loss := rep.Evals[1]; loss.Burn != 5 { // 5% lost / 1% target
		t.Errorf("loss burn %v, want 5", loss.Burn)
	}
}

func TestCostObjectiveDormantWithoutFloor(t *testing.T) {
	cfg := Config{Objectives: []Objective{{Name: "cost", Kind: CostPerFrame, Target: 2}}}
	w := mkWindow(0, 1, 10, 10, 1)
	w.CostSum = 1e9
	rep := Run(cfg, []window.Window{w})
	if rep.Attainment != 1 || rep.Evals[0].Burn != 0 {
		t.Errorf("cost objective must stay dormant without a floor: %+v", rep.Evals[0])
	}
	cfg.CostFloor = 1 // $1 floor, target ≤ $2/frame
	rep = Run(cfg, []window.Window{w})
	if rep.Evals[0].Burn <= 1 {
		t.Errorf("cost burn %v must exceed budget with CostSum 1e9", rep.Evals[0].Burn)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Objectives: []Objective{{Name: "", Kind: Availability, Target: 0.9}}},
		{Objectives: []Objective{{Name: "a", Kind: Kind(99), Target: 0.9}}},
		{Objectives: []Objective{{Name: "a", Kind: Availability, Target: 1.5}}},
		{Objectives: []Objective{{Name: "a", Kind: LossRate, Target: 0}}},
		{FastWindows: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d must fail validation", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestAttributeRanksOccupancy(t *testing.T) {
	var a window.Agg
	a.Sec = 100
	a.ThrottleSec = 81
	a.BrownoutSec = 33
	a.OutageSec = 10
	if got, want := Attribute(&a), "thermal-throttle(0.81)+eclipse-brownout(0.33)"; got != want {
		t.Errorf("Attribute = %q, want %q", got, want)
	}

	var spill window.Agg
	spill.Sec = 100
	spill.Counts[window.CntGenerated] = 100
	spill.Counts[window.CntSpilled] = 40
	if got, want := Attribute(&spill), "queue-spillover(0.40)"; got != want {
		t.Errorf("Attribute = %q, want %q", got, want)
	}

	// OutageSec is per-link seconds and can exceed the span; the weight
	// clamps at 1.
	var out window.Agg
	out.Sec = 100
	out.OutageSec = 250
	if got, want := Attribute(&out), "isl-outage(1.00)"; got != want {
		t.Errorf("Attribute = %q, want %q", got, want)
	}

	var backlog window.Agg
	backlog.Counts[window.CntGenerated] = 10
	backlog.Counts[window.CntProcessed] = 3
	if got, want := Attribute(&backlog), "backlog-growth"; got != want {
		t.Errorf("Attribute = %q, want %q", got, want)
	}
	var quiet window.Agg
	if got, want := Attribute(&quiet), "unattributed"; got != want {
		t.Errorf("Attribute = %q, want %q", got, want)
	}
}

func TestWriteReportRendersAlerts(t *testing.T) {
	cfg := DefaultConfig()
	wins := []window.Window{
		mkWindow(0, 1, 10, 10, 1),
		mkWindow(1, 0.5, 10, 10, 1),
	}
	wins[1].BrownoutSec = 300
	rep := Run(cfg, wins)
	var b strings.Builder
	WriteReport(&b, cfg, wins, rep)
	out := b.String()
	for _, want := range []string{
		"SLO report: 2 windows, 4 objectives",
		"w000 ",
		"w001!",
		"burn-rate alerts: 1",
		"eclipse-brownout",
		"attainment: 50.0% of 2 windows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
