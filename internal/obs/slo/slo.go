// Package slo evaluates declarative service-level objectives over the
// windowed mission telemetry (package window): availability, frame p99
// latency, loss rate, and realized placement cost against the oracle
// floor, each checked per tumbling window with Google-SRE-style
// multi-window burn-rate alerting (a fast average catches sharp
// budget burn, a slow average suppresses blips). Every alert carries
// an attribution ranked from the window's co-occurring environment
// occupancy — eclipse brownout, thermal throttle, ISL outage,
// queue-aware spillover — so "p99 blew its budget in window 7" comes
// with "because the eclipse-exit throttle was active 80% of it".
//
// Everything here is a pure function of the window stream, which is
// itself byte-identical for any shard or worker count, so SLO reports
// inherit the determinism contract.
package slo

import (
	"fmt"
	"io"
	"strings"

	"sudc/internal/obs/window"
)

// Kind identifies one objective family.
type Kind int

const (
	// Availability: weighted fraction of the window at full service
	// must stay at or above Target (error budget 1-Target).
	Availability Kind = iota
	// LatencyP99: at most 1% of the window's frames may exceed Target
	// seconds end-to-end.
	LatencyP99
	// LossRate: the shed+lost fraction of generated frames must stay
	// at or below Target.
	LossRate
	// CostPerFrame: realized placement cost per processed frame must
	// stay within Target × the oracle cost floor.
	CostPerFrame
)

var kindNames = map[Kind]string{
	Availability: "availability",
	LatencyP99:   "p99-latency",
	LossRate:     "loss-rate",
	CostPerFrame: "cost-per-frame",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Objective is one declarative SLO.
type Objective struct {
	// Name labels the objective in reports and alert trace events.
	Name string
	Kind Kind
	// Target is kind-dependent: minimum availability in [0,1]; p99
	// latency bound in seconds; maximum loss fraction; or the allowed
	// multiple of the oracle cost floor.
	Target float64
}

// Config declares the objectives and the burn-rate alert policy.
type Config struct {
	Objectives []Objective
	// FastWindows and SlowWindows are the two burn-averaging horizons
	// in windows; an alert fires when both averages exceed their
	// thresholds (FastBurn, SlowBurn). Zero values take the defaults.
	FastWindows, SlowWindows int
	FastBurn, SlowBurn       float64
	// CostFloor is the placement oracle's $/frame floor; 0 leaves the
	// cost objective dormant (netsim fills it from the placement model).
	CostFloor float64
}

// DefaultObjectives is the standard mission SLO set.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "availability", Kind: Availability, Target: 0.99},
		{Name: "p99-latency", Kind: LatencyP99, Target: 600},
		{Name: "loss-rate", Kind: LossRate, Target: 0.01},
		{Name: "cost-per-frame", Kind: CostPerFrame, Target: 2},
	}
}

// DefaultConfig pairs the standard objectives with a 1-window fast /
// 6-window slow burn policy: the fast average must burn ≥ 4× budget
// and the slow average ≥ 1× for an alert to fire.
func DefaultConfig() Config {
	return Config{
		Objectives:  DefaultObjectives(),
		FastWindows: 1, SlowWindows: 6,
		FastBurn: 4, SlowBurn: 1,
	}
}

// withDefaults fills zero policy fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if len(c.Objectives) == 0 {
		c.Objectives = d.Objectives
	}
	if c.FastWindows <= 0 {
		c.FastWindows = d.FastWindows
	}
	if c.SlowWindows <= 0 {
		c.SlowWindows = d.SlowWindows
	}
	if c.FastBurn <= 0 {
		c.FastBurn = d.FastBurn
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = d.SlowBurn
	}
	return c
}

// Validate rejects malformed objectives.
func (c Config) Validate() error {
	for _, o := range c.Objectives {
		if _, ok := kindNames[o.Kind]; !ok {
			return fmt.Errorf("slo: objective %q has unknown kind %d", o.Name, int(o.Kind))
		}
		if o.Name == "" {
			return fmt.Errorf("slo: objective of kind %v needs a name", o.Kind)
		}
		if o.Target <= 0 || (o.Kind == Availability && o.Target > 1) {
			return fmt.Errorf("slo: objective %q has invalid target %v", o.Name, o.Target)
		}
	}
	if c.FastWindows < 0 || c.SlowWindows < 0 {
		return fmt.Errorf("slo: negative burn horizons %d/%d", c.FastWindows, c.SlowWindows)
	}
	return nil
}

// eval computes one objective's metric value and instantaneous burn
// for a window; active is false when the window carries no signal for
// it (no frames, no weight, or a dormant cost floor).
func (o Objective) eval(w *window.Window, costFloor float64) (value, burn float64, active bool) {
	switch o.Kind {
	case Availability:
		if w.WeightSec == 0 {
			return 1, 0, false
		}
		value = w.Availability()
		budget := 1 - o.Target
		if budget < 1e-9 {
			budget = 1e-9
		}
		return value, (1 - value) / budget, true
	case LatencyP99:
		if w.LatCount == 0 {
			return 0, 0, false
		}
		return w.LatQuantile(0.99), w.FracOver(o.Target) / 0.01, true
	case LossRate:
		if w.Counts[window.CntGenerated] == 0 {
			return 0, 0, false
		}
		value = w.LossRate()
		return value, value / o.Target, true
	case CostPerFrame:
		if costFloor <= 0 || w.CostSum == 0 || w.Counts[window.CntProcessed] == 0 {
			return 0, 0, false
		}
		value = w.CostPerFrame()
		return value, value / (o.Target * costFloor), true
	}
	return 0, 0, false
}

// Eval is one (window, objective) burn evaluation.
type Eval struct {
	Window    int
	Objective string
	// Value is the metric itself (availability fraction, p99 seconds,
	// loss fraction, $/frame); Burn its instantaneous budget burn
	// (≤ 1 is within budget).
	Value, Burn float64
	// Fast and Slow are the multi-window burn averages the alert
	// policy checks; Alerting reports both over threshold.
	Fast, Slow float64
	Alerting   bool
}

// Alert is one burn-rate alert firing (the rising edge of the
// alerting condition).
type Alert struct {
	Objective  string
	Window     int
	Start, End float64
	Fast, Slow float64
	// Cause is the window's ranked environment attribution, e.g.
	// "thermal-throttle(0.81)+eclipse-brownout(0.33)".
	Cause string
}

// Report is a full SLO evaluation over a run's window stream.
type Report struct {
	Windows int
	Evals   []Eval
	Alerts  []Alert
	// Attainment is the fraction of windows with every active
	// objective within budget (burn ≤ 1).
	Attainment float64
}

// Engine evaluates objectives incrementally, one window at a time.
type Engine struct {
	cfg      Config
	burns    [][]float64 // per objective, instantaneous burn history
	alerting []bool
	evals    []Eval
	alerts   []Alert
	windows  int
	attained int
}

// New builds an engine; zero policy fields take the defaults.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:      cfg,
		burns:    make([][]float64, len(cfg.Objectives)),
		alerting: make([]bool, len(cfg.Objectives)),
	}
}

// avgTail averages the last n entries of burns (fewer if the run is
// younger than the horizon).
func avgTail(burns []float64, n int) float64 {
	if n > len(burns) {
		n = len(burns)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for _, b := range burns[len(burns)-n:] {
		s += b
	}
	return s / float64(n)
}

// Observe evaluates one window and returns the alerts it fired.
func (e *Engine) Observe(w window.Window) []Alert {
	var fired []Alert
	within := true
	for i, o := range e.cfg.Objectives {
		value, burn, active := o.eval(&w, e.cfg.CostFloor)
		e.burns[i] = append(e.burns[i], burn)
		fast := avgTail(e.burns[i], e.cfg.FastWindows)
		slow := avgTail(e.burns[i], e.cfg.SlowWindows)
		alerting := active && fast >= e.cfg.FastBurn && slow >= e.cfg.SlowBurn
		if active && burn > 1 {
			within = false
		}
		if alerting && !e.alerting[i] {
			a := Alert{
				Objective: o.Name, Window: w.Index,
				Start: w.Start, End: w.End,
				Fast: fast, Slow: slow,
				Cause: Attribute(&w.Agg),
			}
			e.alerts = append(e.alerts, a)
			fired = append(fired, a)
		}
		e.alerting[i] = alerting
		e.evals = append(e.evals, Eval{
			Window: w.Index, Objective: o.Name,
			Value: value, Burn: burn,
			Fast: fast, Slow: slow, Alerting: alerting,
		})
	}
	e.windows++
	if within {
		e.attained++
	}
	return fired
}

// Report closes the evaluation.
func (e *Engine) Report() Report {
	r := Report{Windows: e.windows, Evals: e.evals, Alerts: e.alerts}
	if e.windows > 0 {
		r.Attainment = float64(e.attained) / float64(e.windows)
	}
	return r
}

// Run evaluates a complete window stream in one call.
func Run(cfg Config, wins []window.Window) Report {
	e := New(cfg)
	for _, w := range wins {
		e.Observe(w)
	}
	return e.Report()
}

// Attribute ranks the environment causes co-occurring with a window's
// aggregate: eclipse brownout, thermal throttle, ISL outage, and
// queue-aware spillover, each weighted by its window occupancy (or
// spill fraction), highest first, top two joined by "+". Windows with
// none of the four fall back to "backlog-growth" when more frames
// arrived than finished, else "unattributed".
func Attribute(a *window.Agg) string {
	type cause struct {
		name   string
		weight float64
	}
	var cs []cause
	if a.Sec > 0 {
		if a.BrownoutSec > 0 {
			cs = append(cs, cause{"eclipse-brownout", a.BrownoutSec / a.Sec})
		}
		if a.ThrottleSec > 0 {
			cs = append(cs, cause{"thermal-throttle", a.ThrottleSec / a.Sec})
		}
		if a.OutageSec > 0 {
			w := a.OutageSec / a.Sec
			if w > 1 {
				w = 1
			}
			cs = append(cs, cause{"isl-outage", w})
		}
	}
	if gen := a.Counts[window.CntGenerated]; gen > 0 && a.Counts[window.CntSpilled] > 0 {
		cs = append(cs, cause{"queue-spillover", float64(a.Counts[window.CntSpilled]) / float64(gen)})
	}
	if len(cs) == 0 {
		done := a.Counts[window.CntProcessed] + a.Counts[window.CntShed] + a.Counts[window.CntLost]
		if a.Counts[window.CntGenerated] > done {
			return "backlog-growth"
		}
		return "unattributed"
	}
	// Stable ranking: weight descending, declaration order on ties.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].weight > cs[j-1].weight; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	if len(cs) > 2 {
		cs = cs[:2]
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%s(%.2f)", c.name, c.weight)
	}
	return strings.Join(parts, "+")
}

// WriteReport renders the per-window SLO table, the alert timeline
// with attributed causes, and the attainment summary. Everything
// printed derives from simulated time, so the output is byte-identical
// for any shard or worker count — the determinism tests pin it.
func WriteReport(out io.Writer, cfg Config, wins []window.Window, rep Report) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(out, "SLO report: %d windows, %d objectives, burn policy fast %dw ≥ %.1f / slow %dw ≥ %.1f\n",
		rep.Windows, len(cfg.Objectives), cfg.FastWindows, cfg.FastBurn, cfg.SlowWindows, cfg.SlowBurn)
	fmt.Fprintf(out, "  %-6s %-18s %6s %6s %7s %8s %7s %9s  %s\n",
		"window", "span", "gen", "done", "avail", "p99", "loss", "$/frame", "burn")
	evalsAt := func(i int) []Eval {
		lo := i * len(cfg.Objectives)
		return rep.Evals[lo : lo+len(cfg.Objectives)]
	}
	for i, w := range wins {
		burns := make([]string, 0, len(cfg.Objectives))
		mark := " "
		for _, ev := range evalsAt(i) {
			burns = append(burns, fmt.Sprintf("%.1f", ev.Burn))
			if ev.Alerting {
				mark = "!"
			}
		}
		cost := "-"
		if w.CostSum > 0 {
			cost = fmt.Sprintf("%.4f", w.CostPerFrame())
		}
		fmt.Fprintf(out, "  w%03d%s  [%6.1fm,%6.1fm) %6d %6d %6.2f%% %7.1fs %6.2f%% %9s  %s\n",
			w.Index, mark, w.Start/60, w.End/60,
			w.Counts[window.CntGenerated], w.Counts[window.CntProcessed],
			100*w.Availability(), w.LatQuantile(0.99), 100*w.LossRate(),
			cost, strings.Join(burns, "/"))
	}
	if len(rep.Alerts) == 0 {
		fmt.Fprintf(out, "no burn-rate alerts\n")
	} else {
		fmt.Fprintf(out, "burn-rate alerts: %d\n", len(rep.Alerts))
		for _, a := range rep.Alerts {
			fmt.Fprintf(out, "  w%03d  %-14s fast %.1f  slow %.1f  cause %s\n",
				a.Window, a.Objective, a.Fast, a.Slow, a.Cause)
		}
	}
	fmt.Fprintf(out, "attainment: %.1f%% of %d windows within budget\n",
		100*rep.Attainment, rep.Windows)
}
