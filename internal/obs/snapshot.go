package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SnapshotOption customizes Snapshot.
type SnapshotOption func(*snapshotOptions)

type snapshotOptions struct {
	wall bool
}

// WithWall includes wall-clock span durations in the snapshot. Wall
// times vary run to run, so snapshots taken with this option are not
// suitable for golden comparisons.
func WithWall() SnapshotOption {
	return func(o *snapshotOptions) { o.wall = true }
}

// Snapshot is a point-in-time copy of a registry, with every section
// sorted by name so identical metric state renders to identical bytes.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
	Series     []SeriesValue    `json:"series,omitempty"`
	Spans      []SpanValue      `json:"spans,omitempty"`
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketValue is one finite histogram bucket: N observations ≤ LE.
type BucketValue struct {
	LE float64 `json:"le"`
	N  int64   `json:"n"`
}

// HistogramValue is one histogram's snapshot. Overflow counts
// observations above the last finite bound (the +Inf bucket, kept out
// of Buckets so the JSON encoding stays finite). P50/P95/P99 are
// bucket-interpolated quantile estimates (Histogram.Quantile).
type HistogramValue struct {
	Name     string        `json:"name"`
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Min      float64       `json:"min"`
	Max      float64       `json:"max"`
	P50      float64       `json:"p50"`
	P95      float64       `json:"p95"`
	P99      float64       `json:"p99"`
	Buckets  []BucketValue `json:"buckets,omitempty"`
	Overflow int64         `json:"overflow"`
}

// SeriesValue is one time series' snapshot.
type SeriesValue struct {
	Name   string  `json:"name"`
	Points []Point `json:"points,omitempty"`
}

// SpanValue is one span name's aggregate.
type SpanValue struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	SimS  float64 `json:"sim_s"`
	// WallMS is populated only under WithWall.
	WallMS float64 `json:"wall_ms,omitempty"`
}

// Snapshot copies the registry's current state. The whole-store view is
// returned regardless of the handle's scope prefix.
func (r *Registry) Snapshot(opts ...SnapshotOption) Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var o snapshotOptions
	for _, opt := range opts {
		opt(&o)
	}
	st := r.st
	st.mu.Lock()
	defer st.mu.Unlock()
	var s Snapshot
	for name, c := range st.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range st.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range st.hists {
		h.mu.Lock()
		hv := HistogramValue{Name: name, Count: h.count, Sum: h.sum}
		if h.count > 0 {
			hv.Min, hv.Max = h.min, h.max
			hv.P50 = h.quantileLocked(0.50)
			hv.P95 = h.quantileLocked(0.95)
			hv.P99 = h.quantileLocked(0.99)
		}
		for i, b := range h.bounds {
			hv.Buckets = append(hv.Buckets, BucketValue{LE: b, N: h.counts[i]})
		}
		hv.Overflow = h.counts[len(h.bounds)]
		h.mu.Unlock()
		s.Histograms = append(s.Histograms, hv)
	}
	for name, ts := range st.series {
		ts.mu.Lock()
		s.Series = append(s.Series, SeriesValue{Name: name, Points: append([]Point(nil), ts.pts...)})
		ts.mu.Unlock()
	}
	for name, sp := range st.spans {
		sv := SpanValue{Name: name, Count: sp.count, SimS: sp.sim}
		if o.wall {
			sv.WallMS = float64(sp.wall) / float64(time.Millisecond)
		}
		s.Spans = append(s.Spans, sv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Series, func(i, j int) bool { return s.Series[i].Name < s.Series[j].Name })
	sort.Slice(s.Spans, func(i, j int) bool { return s.Spans[i].Name < s.Spans[j].Name })
	return s
}

// g formats a float at full round-trip precision.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the snapshot as line-oriented text: one metric per
// line, sections in a fixed order, names sorted — deterministic for
// deterministic metric state.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %s %d\n", c.Name, c.Value)
	}
	for _, gv := range s.Gauges {
		fmt.Fprintf(&b, "gauge %s %s\n", gv.Name, g(gv.Value))
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "histogram %s count=%d sum=%s min=%s max=%s p50=%s p95=%s p99=%s",
			h.Name, h.Count, g(h.Sum), g(h.Min), g(h.Max), g(h.P50), g(h.P95), g(h.P99))
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, " le%s=%d", g(bk.LE), bk.N)
		}
		fmt.Fprintf(&b, " le+Inf=%d\n", h.Overflow)
	}
	for _, ts := range s.Series {
		fmt.Fprintf(&b, "series %s n=%d:", ts.Name, len(ts.Points))
		for _, p := range ts.Points {
			fmt.Fprintf(&b, " %s:%s", g(p.T), g(p.V))
		}
		b.WriteByte('\n')
	}
	for _, sp := range s.Spans {
		fmt.Fprintf(&b, "span %s count=%d sim_s=%s", sp.Name, sp.Count, g(sp.SimS))
		if sp.WallMS != 0 {
			fmt.Fprintf(&b, " wall_ms=%.3f", sp.WallMS)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }
