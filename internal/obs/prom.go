package obs

import (
	"fmt"
	"net/http"
	"strings"
)

// PromText renders a snapshot in the Prometheus text exposition format
// (version 0.0.4), hand-rolled so the repository stays dependency-free:
//
//   - counters expose as "<name> <value>" with TYPE counter,
//   - gauges as TYPE gauge,
//   - histograms as cumulative "<name>_bucket{le=...}" series plus
//     _sum and _count, with the +Inf bucket closing the series,
//   - a time series exposes its latest point as a gauge (Prometheus
//     scrapes are point-in-time; history stays in the snapshot), and
//   - spans expose their completion count as "<name>_spans_total".
//
// Metric names are sanitized to the Prometheus charset (slashes and
// other separators become "_"), and the output preserves the
// snapshot's name sorting, so identical metric state renders to
// identical bytes.
func PromText(s Snapshot) string {
	var b strings.Builder
	for _, c := range s.Counters {
		name := promName(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, gv := range s.Gauges {
		name := promName(gv.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, g(gv.Value))
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum int64
		for _, bk := range h.Buckets {
			cum += bk.N
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, g(bk.LE), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", name, g(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}
	for _, ts := range s.Series {
		if len(ts.Points) == 0 {
			continue
		}
		last := ts.Points[len(ts.Points)-1]
		name := promName(ts.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, g(last.V))
	}
	for _, sp := range s.Spans {
		name := promName(sp.Name) + "_spans_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, sp.Count)
	}
	return b.String()
}

// promName maps a registry name onto the Prometheus metric charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// PromHandler serves the registry's live snapshot at scrape time in
// the Prometheus text format. A nil registry serves an empty body.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, PromText(r.Snapshot()))
	})
}
