package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sudc/internal/obs"
	"sudc/internal/par"
)

// The engine adapter must keep satisfying the engine's observer hook.
var _ par.Observer = (*obs.EngineMetrics)(nil)

func TestCounterGaugeBasics(t *testing.T) {
	r := obs.New()
	c := r.Counter("frames")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("frames") != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("availability")
	g.Set(0.25)
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %v, want last value 0.75", got)
	}
}

func TestHistogramBucketsAndExtrema(t *testing.T) {
	r := obs.New()
	h := r.Histogram("lat", 1, 10)
	for _, v := range []float64{0.5, 1, 2, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Min() != 0.5 || h.Max() != 50 {
		t.Errorf("extrema = [%v, %v], want [0.5, 50]", h.Min(), h.Max())
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(s.Histograms))
	}
	hv := s.Histograms[0]
	// v ≤ 1 → bucket le1 (0.5 and 1), v ≤ 10 → le10 (2), else overflow (50).
	if hv.Buckets[0].N != 2 || hv.Buckets[1].N != 1 || hv.Overflow != 1 {
		t.Errorf("bucket counts = %+v overflow=%d, want [2 1] 1", hv.Buckets, hv.Overflow)
	}
	if empty := r.Histogram("never"); empty.Min() != 0 || empty.Max() != 0 {
		t.Error("empty histogram extrema must read 0")
	}
}

func TestSeriesOrderedPoints(t *testing.T) {
	r := obs.New()
	ts := r.Series("queue")
	for i := 0; i < 3; i++ {
		ts.Sample(float64(i*60), float64(i))
	}
	pts := ts.Points()
	if len(pts) != 3 || pts[2] != (obs.Point{T: 120, V: 2}) {
		t.Errorf("points = %+v", pts)
	}
}

func TestScopePrefixesNames(t *testing.T) {
	r := obs.New()
	r.Scope("netsim").Scope("r01").Counter("frames").Add(7)
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Name != "netsim/r01/frames" {
		t.Errorf("scoped counter name: %+v", s.Counters)
	}
	if s.Counters[0].Value != 7 {
		t.Errorf("scoped counter value = %d", s.Counters[0].Value)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *obs.Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", 1).Observe(2)
	r.Series("s").Sample(0, 0)
	sp := r.StartSpan("span")
	sp.SetSim(3)
	sp.End()
	r.SetTraceWriter(nil)
	if r.Scope("x") != nil {
		t.Error("scoping nil must stay nil")
	}
	if got := r.Snapshot().String(); got != "" {
		t.Errorf("nil registry snapshot = %q, want empty", got)
	}
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	build := func() *obs.Registry {
		r := obs.New()
		// Insertion order differs from name order on purpose.
		r.Counter("z").Add(1)
		r.Counter("a").Add(2)
		r.Gauge("m").Set(3.5)
		r.Histogram("h", 1, 2).Observe(1.5)
		r.Series("t").Sample(1, 2)
		return r
	}
	s1, s2 := build().Snapshot().String(), build().Snapshot().String()
	if s1 != s2 {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", s1, s2)
	}
	if !strings.Contains(s1, "counter a 2\ncounter z 1\n") {
		t.Errorf("counters not name-sorted:\n%s", s1)
	}
	for _, want := range []string{"gauge m 3.5", "histogram h count=1", "le1=0 le2=1 le+Inf=0", "series t n=1: 1:2"} {
		if !strings.Contains(s1, want) {
			t.Errorf("snapshot missing %q:\n%s", want, s1)
		}
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := obs.New()
	r.Counter("c").Add(3)
	r.Histogram("h", 1).Observe(9) // overflow bucket: +Inf must not leak into JSON
	b, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 3 {
		t.Errorf("JSON round trip lost counters: %+v", back)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Overflow != 1 {
		t.Errorf("JSON round trip lost overflow: %+v", back.Histograms)
	}
}

func TestSpansAggregateAndTrace(t *testing.T) {
	r := obs.New()
	var trace strings.Builder
	r.SetTraceWriter(&trace)
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("netsim/run")
		sp.SetSim(7200)
		sp.End()
	}
	s := r.Snapshot()
	if len(s.Spans) != 1 || s.Spans[0].Count != 3 || s.Spans[0].SimS != 3*7200 {
		t.Errorf("span aggregate = %+v", s.Spans)
	}
	if s.Spans[0].WallMS != 0 {
		t.Error("wall time must be excluded without WithWall")
	}
	if got := strings.Count(trace.String(), "trace netsim/run"); got != 3 {
		t.Errorf("trace lines = %d, want 3:\n%s", got, trace.String())
	}
	wall := r.Snapshot(obs.WithWall())
	if wall.Spans[0].WallMS < 0 {
		t.Errorf("wall_ms negative: %+v", wall.Spans)
	}
	if !strings.Contains(r.Snapshot().String(), "span netsim/run count=3 sim_s=21600\n") {
		t.Errorf("span text rendering:\n%s", r.Snapshot().String())
	}
}

func TestConcurrentUseIsSafe(t *testing.T) {
	r := obs.New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scope := r.Scope(fmt.Sprintf("w%d", w))
			for i := 0; i < 500; i++ {
				r.Counter("shared").Inc()
				scope.Counter("own").Inc()
				r.Histogram("h", 1, 10).Observe(float64(i % 20))
				scope.Series("s").Sample(float64(i), 1)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*500 {
		t.Errorf("shared counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h").Count(); got != 8*500 {
		t.Errorf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestEngineMetricsRecordsRuns(t *testing.T) {
	reg := obs.New()
	m := obs.NewEngineMetrics(reg.Scope("par"))
	m.RunStarted(100, 4)
	m.ItemsDone(60)
	m.ItemsDone(40)
	m.RunFinished(100, 4, 5*time.Millisecond)
	s := reg.Snapshot(obs.WithWall())
	find := func(name string) int64 {
		for _, c := range s.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("counter %s missing in %+v", name, s.Counters)
		return 0
	}
	if find("par/runs") != 1 || find("par/items") != 100 {
		t.Errorf("engine counters wrong: %+v", s.Counters)
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "par/run" || s.Spans[0].WallMS < 5 {
		t.Errorf("engine span wrong: %+v", s.Spans)
	}
	// A nil-registry observer must be callable (CLI metrics off).
	var off *obs.EngineMetrics
	off.RunStarted(1, 1)
	off.ItemsDone(1)
	off.RunFinished(1, 1, 0)
	obs.NewEngineMetrics(nil).RunFinished(1, 1, 0)
}

func TestStartPprofServes(t *testing.T) {
	reg := obs.New()
	reg.Counter("frames_total").Add(3)
	addr, err := obs.StartPprof("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "frames_total 3") {
		t.Errorf("/metrics missing counter, got:\n%s", body)
	}

	// A nil registry still serves an (empty) exposition.
	addr, err = obs.StartPprof("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("nil-registry /metrics status = %d", resp.StatusCode)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := obs.New()
	h := r.Histogram("lat", 1, 2, 4)
	// 4 observations in (0,1], 4 in (1,2], 2 in the overflow bucket.
	for _, v := range []float64{0.2, 0.4, 0.6, 0.8, 1.2, 1.4, 1.6, 1.8, 5, 9} {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q, want float64
	}{
		// Linear interpolation inside each bucket; edges clamp to the
		// observed min/max (0.2 and 9), and the overflow bucket
		// interpolates over [4, max].
		{0.0, 0.2},
		{0.2, 0.2 + 0.5*(1-0.2)},
		{0.4, 1},
		{0.5, 1.25},
		{0.8, 2},
		{0.9, 4 + 0.5*(9-4)},
		{1.0, 9},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(h.Quantile(q)) {
			t.Errorf("Quantile(%v) must be NaN", q)
		}
	}
	if got := r.Histogram("empty").Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	var nilH *obs.Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
	// A single observation pins every quantile.
	one := r.Histogram("one", 10)
	one.Observe(3)
	if got := one.Quantile(0.99); got != 3 {
		t.Errorf("single-observation Quantile = %v, want 3", got)
	}
}

func TestNilHistogramMethods(t *testing.T) {
	// The package contract: every method on a nil (disabled) instrument
	// is a no-op returning zero values. Regression: Quantile used to
	// check the q-range before the nil guard, so a nil histogram
	// returned NaN for out-of-range q while every other method returned
	// zero.
	var h *obs.Histogram
	h.Observe(1) // must not panic
	tests := []struct {
		name string
		got  float64
	}{
		{"Count", float64(h.Count())},
		{"Min", h.Min()},
		{"Max", h.Max()},
		{"Quantile(0.5)", h.Quantile(0.5)},
		{"Quantile(-0.1)", h.Quantile(-0.1)},
		{"Quantile(1.1)", h.Quantile(1.1)},
		{"Quantile(NaN)", h.Quantile(math.NaN())},
	}
	for _, tc := range tests {
		if tc.got != 0 {
			t.Errorf("nil histogram %s = %v, want 0", tc.name, tc.got)
		}
	}
}

func TestSnapshotCarriesQuantiles(t *testing.T) {
	r := obs.New()
	h := r.Histogram("lat", 1, 2)
	for _, v := range []float64{0.5, 1.5, 1.5, 1.8} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(s.Histograms))
	}
	hv := s.Histograms[0]
	if hv.P50 != h.Quantile(0.50) || hv.P95 != h.Quantile(0.95) || hv.P99 != h.Quantile(0.99) {
		t.Errorf("snapshot quantiles %v/%v/%v disagree with Quantile", hv.P50, hv.P95, hv.P99)
	}
	if !strings.Contains(s.String(), "p50=") || !strings.Contains(s.String(), "p99=") {
		t.Errorf("snapshot text missing quantiles:\n%s", s.String())
	}
}

func TestSeriesUnboundedByDefault(t *testing.T) {
	r := obs.New()
	s := r.Series("q")
	for i := 0; i < 10000; i++ {
		s.Sample(float64(i), float64(i))
	}
	if got := len(s.Points()); got != 10000 {
		t.Errorf("unbounded series kept %d points, want 10000", got)
	}
}

func TestSeriesMaxPointsDecimates(t *testing.T) {
	r := obs.New()
	s := r.Series("q")
	s.SetMaxPoints(100)
	for i := 0; i < 10000; i++ {
		s.Sample(float64(i), float64(2*i))
	}
	pts := s.Points()
	if len(pts) > 100 || len(pts) <= 50 {
		t.Fatalf("bounded series kept %d points, want in (50, 100]", len(pts))
	}
	// Decimation is deterministic keep-every-other: retained points sit
	// at offered indices ≡ 0 (mod stride) for a power-of-two stride, so
	// they stay evenly spaced from t=0.
	stride := pts[1].T - pts[0].T
	for i, p := range pts {
		if p.T != float64(i)*stride {
			t.Fatalf("point %d at t=%v, want even spacing %v", i, p.T, stride)
		}
		if p.V != 2*p.T {
			t.Fatalf("point %d value %v decoupled from its sample", i, p.V)
		}
	}
	if s2 := func() []obs.Point {
		rr := obs.New().Series("q")
		rr.SetMaxPoints(100)
		for i := 0; i < 10000; i++ {
			rr.Sample(float64(i), float64(2*i))
		}
		return rr.Points()
	}(); !reflect.DeepEqual(pts, s2) {
		t.Error("decimation must be a pure function of the sample sequence")
	}
}

func TestSeriesSetMaxPointsOnExisting(t *testing.T) {
	r := obs.New()
	s := r.Series("q")
	for i := 0; i < 1000; i++ {
		s.Sample(float64(i), 0)
	}
	s.SetMaxPoints(64)
	if got := len(s.Points()); got > 64 {
		t.Errorf("SetMaxPoints on a long series kept %d points", got)
	}
	// Unbounding again stops decimation of new samples but does not
	// restore dropped ones.
	s.SetMaxPoints(0)
	n := len(s.Points())
	s.Sample(1000, 0)
	// The stride survives until reset; acceptance is still strided.
	if got := len(s.Points()); got < n {
		t.Errorf("series shrank after unbounding: %d -> %d", n, got)
	}
	var nilS *obs.Series
	nilS.SetMaxPoints(10)
	nilS.Sample(1, 1)
}

func TestSeriesRate(t *testing.T) {
	s := obs.New().Series("retries")
	for i, v := range []float64{0, 3, 3, 7} {
		s.Sample(float64(60*(i+1)), v)
	}
	got := s.Rate()
	want := []obs.Point{{T: 60, V: 0}, {T: 120, V: 3}, {T: 180, V: 0}, {T: 240, V: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Rate() = %v, want %v", got, want)
	}
	// Rate must not mutate the underlying series.
	if pts := s.Points(); pts[3].V != 7 {
		t.Errorf("Rate mutated the series: %v", pts)
	}
	var nilS *obs.Series
	if nilS.Rate() != nil {
		t.Error("nil Series Rate must be nil")
	}
}
