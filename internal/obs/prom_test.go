package obs_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sudc/internal/obs"
)

// parseProm splits an exposition into (metric line, TYPE line) pairs and
// sanity-checks the format: every sample line is "name value" with a
// preceding "# TYPE name kind" comment.
func parseProm(t *testing.T, text string) (names []string, samples map[string]string) {
	t.Helper()
	samples = map[string]string{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			kind := parts[3]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[parts[2]] = true
			names = append(names, parts[2])
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:i], line[i+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		base := name
		if j := strings.IndexByte(base, '{'); j >= 0 {
			base = base[:j]
		}
		base = strings.TrimSuffix(strings.TrimSuffix(base, "_sum"), "_count")
		base = strings.TrimSuffix(base, "_bucket")
		if !typed[base] {
			t.Fatalf("sample %q has no preceding TYPE comment", line)
		}
		samples[name] = val
	}
	return names, samples
}

func TestPromTextExposition(t *testing.T) {
	r := obs.New()
	r.Counter("netsim/frames/generated").Add(7)
	r.Counter("netsim/frames/shed").Add(2)
	r.Gauge("design/wet_mass_kg").Set(1234.5)
	h := r.Histogram("latency_s", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Series("queue/depth").Sample(1, 3)
	r.Series("queue/depth").Sample(2, 9)
	sp := r.StartSpan("run")
	sp.End()

	text := obs.PromText(r.Snapshot())
	names, samples := parseProm(t, text)

	if got := samples["netsim_frames_generated"]; got != "7" {
		t.Errorf("counter sample = %q, want 7", got)
	}
	if got := samples["design_wet_mass_kg"]; got != "1234.5" {
		t.Errorf("gauge sample = %q", got)
	}
	// Histogram buckets are cumulative and close with +Inf == count.
	if samples[`latency_s_bucket{le="0.1"}`] != "1" ||
		samples[`latency_s_bucket{le="1"}`] != "2" ||
		samples[`latency_s_bucket{le="+Inf"}`] != "3" ||
		samples["latency_s_count"] != "3" {
		t.Errorf("histogram samples wrong:\n%s", text)
	}
	// A series exposes its latest point.
	if got := samples["queue_depth"]; got != "9" {
		t.Errorf("series sample = %q, want latest point 9", got)
	}
	if got := samples["run_spans_total"]; got != "1" {
		t.Errorf("span counter = %q, want 1", got)
	}
	// Name ordering follows the snapshot's sorted sections, so the
	// exposition is deterministic; within each section names ascend.
	sections := [][]string{names[:2], {names[2]}, {names[3]}, {names[4]}, {names[5]}}
	for _, sec := range sections {
		if !sort.StringsAreSorted(sec) {
			t.Errorf("metric names not sorted within section: %v", names)
		}
	}
	if text != obs.PromText(r.Snapshot()) {
		t.Error("exposition is not deterministic across snapshots")
	}
}

func TestPromNameSanitized(t *testing.T) {
	r := obs.New()
	r.Counter("netsim/r000/frames.ok-total").Inc()
	text := obs.PromText(r.Snapshot())
	if !strings.Contains(text, "netsim_r000_frames_ok_total 1") {
		t.Errorf("name not sanitized to Prometheus charset:\n%s", text)
	}
}

func TestPromHandler(t *testing.T) {
	r := obs.New()
	r.Counter("hits").Add(5)
	srv := httptest.NewServer(obs.PromHandler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "hits 5") {
		t.Errorf("handler body missing counter:\n%s", body)
	}

	// A nil registry serves an empty, well-typed exposition.
	nilSrv := httptest.NewServer(obs.PromHandler(nil))
	defer nilSrv.Close()
	resp2, err := http.Get(nilSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("nil-registry handler status = %d", resp2.StatusCode)
	}
}
