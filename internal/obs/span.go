package obs

import (
	"fmt"
	"io"
	"time"
)

// spanStats aggregates all completed spans of one name.
type spanStats struct {
	count int64
	wall  time.Duration
	sim   float64 // simulated seconds
}

// traceSink serializes live trace output.
type traceSink struct {
	w io.Writer
}

// SpanSink receives every completed span — the structural hook that
// lets the flight recorder (internal/obs/trace) log span events
// without this package importing it, the same no-cycle pattern as
// par.Observer / EngineMetrics.
type SpanSink interface {
	SpanDone(name string, wall time.Duration, sim float64)
}

// SetSpanSink installs (or, with nil, removes) a sink notified at
// every Span.End with the span's name, wall duration, and simulated
// duration.
func (r *Registry) SetSpanSink(s SpanSink) {
	if r == nil {
		return
	}
	r.st.mu.Lock()
	r.st.spanSink = s
	r.st.mu.Unlock()
}

// SetTraceWriter directs a live trace line at every Span.End to w
// (nil disables). Trace lines carry wall-clock durations and are for
// humans; the deterministic record is the snapshot.
func (r *Registry) SetTraceWriter(w io.Writer) {
	if r == nil {
		return
	}
	r.st.mu.Lock()
	r.st.trace.w = w
	r.st.mu.Unlock()
}

// Span is one in-flight timed operation. Spans aggregate per name:
// the snapshot reports call count, total simulated duration, and
// (only with WithWall) total wall time.
type Span struct {
	st    *state
	name  string
	start time.Time
	sim   float64
}

// StartSpan opens a span; close it with End. A nil registry returns a
// nil span whose methods are no-ops.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{st: r.st, name: r.prefix + name, start: time.Now()}
}

// SetSim attaches a simulated-clock duration (in seconds) to the span,
// for operations that advance a simulation as well as wall time.
func (s *Span) SetSim(seconds float64) {
	if s != nil {
		s.sim = seconds
	}
}

// End closes the span, folding its wall and simulated durations into
// the per-name aggregate and emitting a trace line if a trace writer
// is installed.
func (s *Span) End() {
	if s == nil {
		return
	}
	wall := time.Since(s.start)
	s.st.mu.Lock()
	agg, ok := s.st.spans[s.name]
	if !ok {
		agg = &spanStats{}
		s.st.spans[s.name] = agg
	}
	agg.count++
	agg.wall += wall
	agg.sim += s.sim
	w := s.st.trace.w
	sink := s.st.spanSink
	s.st.mu.Unlock()
	if sink != nil {
		sink.SpanDone(s.name, wall, s.sim)
	}
	if w != nil {
		if s.sim != 0 {
			fmt.Fprintf(w, "trace %s wall=%v sim=%gs\n", s.name, wall.Round(time.Microsecond), s.sim)
		} else {
			fmt.Fprintf(w, "trace %s wall=%v\n", s.name, wall.Round(time.Microsecond))
		}
	}
}
