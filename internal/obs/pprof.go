package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// StartPprof serves the net/http/pprof profiling endpoints — plus the
// registry's Prometheus text exposition at /metrics — on addr (e.g.
// "localhost:6060"; a ":0" port picks a free one) in a background
// goroutine and returns the bound address. reg may be nil, in which
// case /metrics serves an empty exposition. It uses a private mux, so
// nothing leaks onto http.DefaultServeMux. The listener lives until the
// process exits — this is an opt-in debugging endpoint for the CLIs,
// not a managed server.
func StartPprof(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", PromHandler(reg))
	go func() {
		srv := &http.Server{Handler: mux}
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}
