package window

import (
	"math"
	"reflect"
	"testing"
)

func TestCollectorSplitsAtBoundaries(t *testing.T) {
	c := NewCollector(10, 0)
	// 0→4 up, 4→25 throttled+down-link: spans windows 0, 1, and part of 2.
	c.Advance(4, Env{Up: true, Weight: 2})
	c.Advance(25, Env{Weight: 2, Throttled: true, DownLinks: 3})
	c.Count(CntGenerated, 5)
	c.Latency(7)
	c.Close()
	frags := c.Drain()
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3", len(frags))
	}
	w0, w1, w2 := frags[0], frags[1], frags[2]
	if w0.Index != 0 || w1.Index != 1 || w2.Index != 2 {
		t.Fatalf("indices %d,%d,%d", w0.Index, w1.Index, w2.Index)
	}
	if w0.Sec != 10 || w1.Sec != 10 || w2.Sec != 5 {
		t.Errorf("Sec = %v,%v,%v, want 10,10,5", w0.Sec, w1.Sec, w2.Sec)
	}
	if w0.UpSec != 8 { // 4 s up × weight 2
		t.Errorf("w0.UpSec = %v, want 8", w0.UpSec)
	}
	if w0.ThrottleSec != 6 || w1.ThrottleSec != 10 || w2.ThrottleSec != 5 {
		t.Errorf("ThrottleSec = %v,%v,%v", w0.ThrottleSec, w1.ThrottleSec, w2.ThrottleSec)
	}
	if w0.OutageSec != 18 { // 6 s × 3 links
		t.Errorf("w0.OutageSec = %v, want 18", w0.OutageSec)
	}
	// Counts and latencies land in the window open at call time.
	if w2.Counts[CntGenerated] != 5 || w2.LatCount != 1 || w2.LatSum != 7 {
		t.Errorf("w2 counts = %+v lat %d/%v", w2.Counts, w2.LatCount, w2.LatSum)
	}
}

func TestCollectorEventAtBoundaryOpensNextWindow(t *testing.T) {
	c := NewCollector(10, 0)
	c.Advance(10, Env{})
	c.Count(CntProcessed, 1) // exactly at t=10: belongs to window 1
	c.Close()
	frags := c.Drain()
	if len(frags) != 2 {
		t.Fatalf("got %d fragments, want 2", len(frags))
	}
	if frags[0].Counts[CntProcessed] != 0 || frags[1].Counts[CntProcessed] != 1 {
		t.Errorf("boundary count in wrong window: %+v", frags)
	}
	if frags[1].Sec != 0 {
		t.Errorf("boundary-only window covered %v s, want 0", frags[1].Sec)
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	if n := c.Advance(5, Env{Up: true}); n != 0 {
		t.Errorf("nil Advance = %d", n)
	}
	c.Count(CntShed, 1)
	c.Latency(1)
	c.Cost(1)
	c.Close()
	if got := c.Drain(); got != nil {
		t.Errorf("nil Drain = %v", got)
	}
}

func TestMergeFoldsCellsAndQuantiles(t *testing.T) {
	mk := func(cell int, lats ...float64) Fragment {
		c := NewCollector(60, cell)
		for _, v := range lats {
			c.Latency(v)
			c.Count(CntProcessed, 1)
		}
		c.Advance(60, Env{Up: true, Weight: 1})
		fr := c.Drain()
		if len(fr) != 1 {
			t.Fatalf("want 1 fragment, got %d", len(fr))
		}
		return fr[0]
	}
	wins := Merge(60, []Fragment{mk(0, 1.5, 4, 40), mk(1, 90, 250)})
	if len(wins) != 1 {
		t.Fatalf("got %d windows, want 1", len(wins))
	}
	w := wins[0]
	if w.Cells != 2 || w.LatCount != 5 || w.Counts[CntProcessed] != 5 {
		t.Fatalf("merged window %+v", w)
	}
	if w.LatMin != 1.5 || w.LatMax != 250 {
		t.Errorf("extrema [%v, %v], want [1.5, 250]", w.LatMin, w.LatMax)
	}
	if w.Availability() != 1 {
		t.Errorf("availability %v, want 1", w.Availability())
	}
	p99 := w.LatQuantile(0.99)
	if p99 < 120 || p99 > 250 {
		t.Errorf("p99 = %v, want within (120, 250]", p99)
	}
	if got := w.FracOver(60); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("FracOver(60) = %v, want 0.4 (2 of 5 above a bucket bound)", got)
	}
	if w.FracOver(1e6) != 0 {
		t.Errorf("FracOver above max must be 0, got %v", w.FracOver(1e6))
	}
}

func TestAggRatesOnEmptyWindow(t *testing.T) {
	var a Agg
	if a.Availability() != 1 || a.LossRate() != 0 || a.CostPerFrame() != 0 ||
		a.MeanLatency() != 0 || a.LatQuantile(0.5) != 0 || a.FracOver(1) != 0 {
		t.Errorf("empty-window rates not neutral: %+v", a)
	}
}

func TestMergerLiveFlushMatchesBatchMerge(t *testing.T) {
	var frags []Fragment
	collect := func(cell int, seed int64) {
		c := NewCollector(30, cell)
		t := 0.0
		for i := 0; i < 200; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			t += float64(uint64(seed)%1000) / 97
			c.Advance(t, Env{
				Up: seed&2 != 0, Weight: 3,
				Throttled: seed&4 != 0, Browned: seed&8 != 0,
				Eclipse: seed&8 != 0, DownLinks: int(uint64(seed) % 3),
			})
			c.Count(Counter(uint64(seed)%uint64(NumCounters)), 1)
			c.Latency(float64(uint64(seed) % 4000))
		}
		c.Close()
		frags = append(frags, c.Drain()...)
	}
	collect(0, 11)
	collect(1, 22)
	collect(2, 33)

	want := Merge(30, frags)

	// Live path: feed fragments grouped by barrier-style (cell-major
	// per flush round) order and flush incrementally.
	m := NewMerger(30, nil)
	var live []Window
	m2 := NewMerger(30, func(w Window) { live = append(live, w) })
	// Canonical order: sort as the runner would deliver (all cells
	// flush every barrier, cell-ascending), which per window is cell
	// ascending — the same as Merge's canonical order.
	sorted := append([]Fragment(nil), frags...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			a, b := sorted[i], sorted[j]
			if b.Index < a.Index || (b.Index == a.Index && b.Cell < a.Cell) {
				sorted[i], sorted[j] = b, a
			}
		}
	}
	for _, f := range sorted {
		m.Add(f)
		m2.Add(f)
		m2.Flush(float64(f.Index) * 30) // watermark trails the fragment
	}
	m.Flush(math.Inf(1))
	m2.Flush(math.Inf(1))
	if !reflect.DeepEqual(m.Windows(), want) {
		t.Errorf("merger result differs from batch Merge")
	}
	if !reflect.DeepEqual(live, want) {
		t.Errorf("incrementally flushed windows differ from batch Merge")
	}
}

// FuzzWindowMerge pins the shard-merge determinism contract: merging
// per-cell window fragments in any arrival order yields byte-identical
// aggregates, because Merge canonicalizes by (index, cell) before
// folding floats.
func FuzzWindowMerge(f *testing.F) {
	f.Add(uint64(1), 3, 4, 10.0)
	f.Add(uint64(99), 8, 2, 0.5)
	f.Add(uint64(12345), 1, 16, 3600.0)
	f.Fuzz(func(t *testing.T, seed uint64, cells, perCell int, width float64) {
		if cells < 1 || cells > 16 || perCell < 1 || perCell > 32 {
			t.Skip()
		}
		if !(width > 1e-3) || width > 1e6 || math.IsNaN(width) {
			t.Skip()
		}
		next := func() uint64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return seed
		}
		var frags []Fragment
		for cell := 0; cell < cells; cell++ {
			c := NewCollector(width, cell)
			at := 0.0
			for i := 0; i < perCell; i++ {
				r := next()
				at += float64(r%10000) / 1000 * width / 8
				c.Advance(at, Env{
					Up: r&1 != 0, Weight: float64(1 + r%5),
					Eclipse: r&2 != 0, Throttled: r&4 != 0,
					Browned: r&8 != 0, DownLinks: int(r % 4),
				})
				c.Count(Counter(r%uint64(NumCounters)), int64(r%7))
				c.Latency(float64(r%400000) / 100)
				c.Cost(float64(r%1000) / 256)
			}
			c.Close()
			frags = append(frags, c.Drain()...)
		}
		want := Merge(width, frags)
		// Deterministic shuffle derived from the fuzzed seed.
		shuffled := append([]Fragment(nil), frags...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := int(next() % uint64(i+1))
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		got := Merge(width, shuffled)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merge order changed the aggregate:\n got %+v\nwant %+v", got, want)
		}
	})
}
