// Package window provides watermark-correct windowed aggregation for
// the DES: tumbling sim-time windows of event counters, environment
// occupancy (eclipse, throttle, brownout, ISL outage, up-time), and
// fixed-bucket latency quantiles.
//
// Each topology cell owns a Collector that integrates occupancy along
// its own event stream and closes a Fragment per window it crosses.
// Fragments are merged into per-window aggregates by a Merger; the
// shard runner drains every cell's collector at the conservative
// cross-cell watermark (the minimum next event time across cells and
// in-flight messages), where every cell's environment is known to be
// constant, so the merged stream is byte-identical for any shard or
// worker count. Merge canonicalizes fragment order by (window index,
// cell), so batch merging is order-independent too — FuzzWindowMerge
// pins that property.
package window

import (
	"math"
	"sort"
)

// LatencyBounds are the fixed latency bucket upper bounds in seconds,
// matching the netsim metric recorder's end-of-run histogram so
// windowed quantiles agree with the snapshot. The last bucket is the
// overflow above the final bound.
var LatencyBounds = [...]float64{1, 2, 5, 10, 30, 60, 120, 300, 600, 1800, 3600}

// NumLatBuckets counts the latency buckets including the overflow.
const NumLatBuckets = len(LatencyBounds) + 1

// Counter enumerates the per-window event counters.
type Counter int

const (
	CntGenerated Counter = iota
	CntProcessed
	CntInsights
	CntRetried
	CntRedispatched
	CntShed
	CntLost
	CntDeferred
	CntSpilled
	NumCounters
)

var counterNames = [NumCounters]string{
	"generated", "processed", "insights", "retried", "redispatched",
	"shed", "lost", "deferred", "spilled",
}

func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Env is the environment a collector integrates between events. It is
// sampled by the simulator before each Advance and must stay constant
// over the advanced span — the watermark rule guarantees exactly that.
type Env struct {
	// Up reports full service (effective workers >= needed).
	Up bool
	// Weight is the cell's availability weight (its worker complement).
	Weight float64
	// Eclipse, Throttled, Browned report the degradation phase.
	Eclipse, Throttled, Browned bool
	// DownLinks counts ISL edges currently in outage.
	DownLinks int
}

// Agg is one window's aggregate: counters, a fixed-bucket latency
// histogram, the placement cost sum, and occupancy integrals in
// seconds. All fields fold additively except the latency extrema.
type Agg struct {
	Counts [NumCounters]int64
	// Lat is the latency histogram over LatencyBounds plus overflow.
	Lat      [NumLatBuckets]int64
	LatCount int64
	LatSum   float64
	LatMin   float64
	LatMax   float64
	// CostSum accumulates realized placement cost ($ + weighted
	// latency) over processed frames, zero when placement is off.
	CostSum float64
	// Occupancy integrals: seconds of the window spent in each
	// environment condition. OutageSec weights by concurrently-down
	// links; UpSec and WeightSec weight by Env.Weight so
	// Availability() matches the DES definition.
	EclipseSec  float64
	ThrottleSec float64
	BrownoutSec float64
	OutageSec   float64
	UpSec       float64
	WeightSec   float64
	// Sec is the covered span in seconds (the window width except for
	// a trailing partial window).
	Sec float64
}

// Availability is the weighted fraction of the window at full service.
func (a *Agg) Availability() float64 {
	if a.WeightSec == 0 {
		return 1
	}
	return a.UpSec / a.WeightSec
}

// LossRate is the fraction of generated frames shed or lost.
func (a *Agg) LossRate() float64 {
	if a.Counts[CntGenerated] == 0 {
		return 0
	}
	return float64(a.Counts[CntShed]+a.Counts[CntLost]) / float64(a.Counts[CntGenerated])
}

// CostPerFrame is the realized placement cost per processed frame.
func (a *Agg) CostPerFrame() float64 {
	if a.Counts[CntProcessed] == 0 {
		return 0
	}
	return a.CostSum / float64(a.Counts[CntProcessed])
}

// MeanLatency is the mean end-to-end latency of the window's frames.
func (a *Agg) MeanLatency() float64 {
	if a.LatCount == 0 {
		return 0
	}
	return a.LatSum / float64(a.LatCount)
}

// bucketBounds returns bucket i's span clamped to the observed extrema,
// mirroring the obs histogram quantile so estimates stay in range.
func (a *Agg) bucketBounds(i int) (lo, hi float64) {
	if i > 0 {
		lo = LatencyBounds[i-1]
	}
	if i < len(LatencyBounds) {
		hi = LatencyBounds[i]
	} else {
		hi = a.LatMax
	}
	if a.LatMin > lo {
		lo = a.LatMin
	}
	if a.LatMax < hi {
		hi = a.LatMax
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// LatQuantile estimates the q-quantile of the window's latencies by
// linear interpolation within the straddling bucket.
func (a *Agg) LatQuantile(q float64) float64 {
	if a.LatCount == 0 {
		return 0
	}
	if q <= 0 {
		return a.LatMin
	}
	if q >= 1 {
		return a.LatMax
	}
	rank := q * float64(a.LatCount)
	var cum float64
	for i, n := range a.Lat {
		if n == 0 {
			continue
		}
		fn := float64(n)
		if cum+fn < rank {
			cum += fn
			continue
		}
		lo, hi := a.bucketBounds(i)
		return lo + (rank-cum)/fn*(hi-lo)
	}
	return a.LatMax
}

// FracOver estimates the fraction of the window's latencies above lim
// seconds. Exact when lim is a bucket bound; linearly interpolated
// within the straddling bucket otherwise.
func (a *Agg) FracOver(lim float64) float64 {
	if a.LatCount == 0 {
		return 0
	}
	var cum float64
	for i, n := range a.Lat {
		lo, hi := a.bucketBounds(i)
		if lim >= hi {
			cum += float64(n)
			continue
		}
		if lim > lo && hi > lo {
			cum += float64(n) * (lim - lo) / (hi - lo)
		}
		break
	}
	over := float64(a.LatCount) - cum
	if over < 0 {
		over = 0
	}
	return over / float64(a.LatCount)
}

// Fragment is one cell's contribution to one window.
type Fragment struct {
	// Cell is the contributing topology cell (0 for legacy runs).
	Cell int
	// Index is the window ordinal: window i covers
	// [i*width, (i+1)*width) in sim seconds.
	Index int
	Agg
}

func newFragment(cell, index int) Fragment {
	f := Fragment{Cell: cell, Index: index}
	f.LatMin = math.Inf(1)
	f.LatMax = math.Inf(-1)
	return f
}

// Window is a merged per-window aggregate across cells.
type Window struct {
	Index int
	// Start and End bound the covered span in sim seconds; End is
	// clipped for a trailing partial window.
	Start, End float64
	// Cells counts contributing fragments.
	Cells int
	Agg
}

// fold adds one fragment into the window. Callers must fold fragments
// of equal Index in ascending Cell order for byte-identical floats.
func (w *Window) fold(width float64, f *Fragment) {
	if w.Cells == 0 {
		w.Index = f.Index
		w.Start = float64(f.Index) * width
		w.End = w.Start + f.Sec
	}
	w.Cells++
	for i := range w.Counts {
		w.Counts[i] += f.Counts[i]
	}
	for i := range w.Lat {
		w.Lat[i] += f.Lat[i]
	}
	if f.LatCount > 0 {
		if w.LatCount == 0 || f.LatMin < w.LatMin {
			w.LatMin = f.LatMin
		}
		if w.LatCount == 0 || f.LatMax > w.LatMax {
			w.LatMax = f.LatMax
		}
	}
	w.LatCount += f.LatCount
	w.LatSum += f.LatSum
	w.CostSum += f.CostSum
	w.EclipseSec += f.EclipseSec
	w.ThrottleSec += f.ThrottleSec
	w.BrownoutSec += f.BrownoutSec
	w.OutageSec += f.OutageSec
	w.UpSec += f.UpSec
	w.WeightSec += f.WeightSec
	w.Sec += f.Sec
}

// Collector accumulates one cell's fragments. A nil Collector is a
// no-op on every method, so the DES hot path pays one nil check when
// windowing is off.
type Collector struct {
	width float64
	cell  int
	lastT float64
	cur   Fragment
	out   []Fragment
}

// NewCollector makes a collector for one cell with the given window
// width in sim seconds (must be positive).
func NewCollector(width float64, cell int) *Collector {
	return &Collector{width: width, cell: cell, cur: newFragment(cell, 0)}
}

// Advance integrates env occupancy from the last advanced time to t,
// closing every window boundary crossed, and returns how many windows
// closed. env must be the cell's state over the whole span — callers
// advance at event times (state constant since the previous event) and
// at the cross-cell watermark (state constant up to it by the
// conservative-lookahead bound).
func (c *Collector) Advance(t float64, env Env) int {
	if c == nil || t <= c.lastT {
		return 0
	}
	closed := 0
	for {
		end := float64(c.cur.Index+1) * c.width
		if t < end {
			c.integrate(t-c.lastT, env)
			c.lastT = t
			return closed
		}
		c.integrate(end-c.lastT, env)
		c.lastT = end
		c.out = append(c.out, c.cur)
		c.cur = newFragment(c.cell, c.cur.Index+1)
		closed++
	}
}

func (c *Collector) integrate(dt float64, env Env) {
	if dt <= 0 {
		return
	}
	a := &c.cur.Agg
	a.Sec += dt
	a.WeightSec += dt * env.Weight
	if env.Up {
		a.UpSec += dt * env.Weight
	}
	if env.Eclipse {
		a.EclipseSec += dt
	}
	if env.Throttled {
		a.ThrottleSec += dt
	}
	if env.Browned {
		a.BrownoutSec += dt
	}
	if env.DownLinks > 0 {
		a.OutageSec += dt * float64(env.DownLinks)
	}
}

// Count adds n to counter k in the current window.
func (c *Collector) Count(k Counter, n int64) {
	if c == nil {
		return
	}
	c.cur.Counts[k] += n
}

// Latency records one end-to-end frame latency in seconds.
func (c *Collector) Latency(v float64) {
	if c == nil {
		return
	}
	a := &c.cur.Agg
	i := 0
	for i < len(LatencyBounds) && v > LatencyBounds[i] {
		i++
	}
	a.Lat[i]++
	a.LatCount++
	a.LatSum += v
	if v < a.LatMin {
		a.LatMin = v
	}
	if v > a.LatMax {
		a.LatMax = v
	}
}

// Cost adds one processed frame's realized placement cost.
func (c *Collector) Cost(v float64) {
	if c == nil {
		return
	}
	c.cur.CostSum += v
}

// Close flushes the in-progress window if it covered any span or
// counted any event (a run ending exactly on a boundary leaves an
// empty tail that is dropped).
func (c *Collector) Close() {
	if c == nil {
		return
	}
	if c.cur.Sec > 0 || c.cur.LatCount > 0 || c.cur.Counts != [NumCounters]int64{} {
		c.out = append(c.out, c.cur)
	}
	c.cur = newFragment(c.cell, c.cur.Index+1)
}

// Drain returns the closed fragments and resets the buffer. The
// returned slice is reused by the next Drain, so callers fold it
// before advancing further.
func (c *Collector) Drain() []Fragment {
	if c == nil {
		return nil
	}
	out := c.out
	c.out = c.out[:0]
	return out
}

// Merger folds fragments into per-window aggregates and releases each
// window once the watermark passes its end. Within one window,
// fragments must arrive in ascending cell order — the shard runner
// drains cells in cell order at every barrier, which guarantees it.
type Merger struct {
	width float64
	live  func(Window)
	base  int
	wins  []Window
	done  []Window
}

// NewMerger makes a merger for the given window width; live, when
// non-nil, observes each window as it completes.
func NewMerger(width float64, live func(Window)) *Merger {
	return &Merger{width: width, live: live}
}

// Add folds one fragment.
func (m *Merger) Add(f Fragment) {
	if len(m.wins) == 0 {
		m.base = f.Index
	}
	if f.Index < m.base {
		// A fragment for an already-flushed window violates the
		// watermark contract; tolerate it by re-basing (tests and the
		// fuzz target sort first, the runner never triggers this).
		grow := m.base - f.Index
		m.wins = append(make([]Window, grow, grow+len(m.wins)), m.wins...)
		m.base = f.Index
	}
	for f.Index >= m.base+len(m.wins) {
		m.wins = append(m.wins, Window{})
	}
	m.wins[f.Index-m.base].fold(m.width, &f)
}

// Flush completes every pending window whose end is at or before the
// watermark upTo (sim seconds). Windows with no fragments are skipped.
func (m *Merger) Flush(upTo float64) {
	for len(m.wins) > 0 && float64(m.base+1)*m.width <= upTo {
		w := m.wins[0]
		m.wins = m.wins[1:]
		m.base++
		if w.Cells == 0 {
			continue
		}
		m.done = append(m.done, w)
		if m.live != nil {
			m.live(w)
		}
	}
}

// Windows returns every completed window in index order.
func (m *Merger) Windows() []Window {
	return m.done
}

// Merge folds fragments from any source order into completed windows:
// it canonicalizes by (window index, cell) first, so the result is
// byte-identical however the per-cell fragments were interleaved.
func Merge(width float64, frags []Fragment) []Window {
	sorted := append([]Fragment(nil), frags...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Index != sorted[j].Index {
			return sorted[i].Index < sorted[j].Index
		}
		return sorted[i].Cell < sorted[j].Cell
	})
	m := NewMerger(width, nil)
	for _, f := range sorted {
		m.Add(f)
	}
	m.Flush(math.Inf(1))
	return m.Windows()
}
