package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"sudc/internal/obs/trace"
)

// FuzzDecodeJSONL pins the decoder's round-trip property: any input it
// accepts must re-encode (WriteJSONL) and decode again to the same
// recorder, and the re-encoding must be a fixed point. Inputs it
// rejects must fail without panicking.
func FuzzDecodeJSONL(f *testing.F) {
	var seed bytes.Buffer
	if err := sampleRecorder().WriteJSONL(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"t":1,"k":"shed","f":3,"n":-1}`))
	f.Add([]byte(`{"scope":"r007","t":0.25,"k":"retry","f":1,"n":-1,"a":2,"b":4,"c":"isl-outage#1"}`))
	f.Add([]byte(`{"t":0,"k":"span","n":-1,"d":0.5,"sim":60,"name":"run"}`))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"t":1,"k":"warp_drive","n":-1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := trace.DecodeJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := rec.WriteJSONL(&out); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		back, err := trace.DecodeJSONL(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v\n%s", err, out.Bytes())
		}
		if !reflect.DeepEqual(back.Events(), rec.Events()) ||
			!reflect.DeepEqual(back.Scopes(), rec.Scopes()) {
			t.Fatal("round trip changed the recorder")
		}
		for _, s := range rec.Scopes() {
			if !reflect.DeepEqual(back.Child(s).Events(), rec.Child(s).Events()) {
				t.Fatalf("round trip changed scope %q", s)
			}
		}
		var out2 bytes.Buffer
		if err := back.WriteJSONL(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("encode is not a fixed point after one round trip")
		}
	})
}
