package trace_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"sudc/internal/obs"
	"sudc/internal/obs/trace"
)

// The recorder must keep satisfying the registry's span-sink hook.
var _ obs.SpanSink = (*trace.Recorder)(nil)

func TestRecordAndEvents(t *testing.T) {
	r := trace.New(0)
	r.Record(trace.Event{T: 1, Kind: trace.FrameCaptured, Frame: 1, Node: 3})
	r.Record(trace.Event{T: 2, Kind: trace.Enqueued, Frame: 1, Node: -1})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	ev := r.Events()
	if ev[0].Kind != trace.FrameCaptured || ev[1].Kind != trace.Enqueued {
		t.Errorf("events out of order: %+v", ev)
	}
	// Events returns a copy: mutating it must not affect the recorder.
	ev[0].Frame = 99
	if r.Events()[0].Frame != 1 {
		t.Error("Events must return a copy")
	}
}

func TestBoundedDrops(t *testing.T) {
	r := trace.New(3)
	for i := 0; i < 5; i++ {
		r.Record(trace.Event{T: float64(i), Kind: trace.FrameCaptured, Frame: int64(i + 1), Node: 0})
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3 (bounded)", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
	// The kept events are the earliest — the recorder is a flight
	// recorder for the start of the run, not a ring buffer.
	if ev := r.Events(); ev[0].Frame != 1 || ev[2].Frame != 3 {
		t.Errorf("kept events wrong: %+v", ev)
	}
}

func TestChildScopes(t *testing.T) {
	r := trace.New(0)
	r.Child("r001").Record(trace.Event{T: 1, Kind: trace.Shed, Frame: 1, Node: -1})
	r.Child("r000").Record(trace.Event{T: 2, Kind: trace.Lost, Frame: 2, Node: -1})
	r.Child("r000").Record(trace.Event{T: 3, Kind: trace.Lost, Frame: 3, Node: -1})
	if got := r.Scopes(); !reflect.DeepEqual(got, []string{"r000", "r001"}) {
		t.Errorf("Scopes = %v, want sorted [r000 r001]", got)
	}
	if r.TotalLen() != 3 {
		t.Errorf("TotalLen = %d, want 3", r.TotalLen())
	}
	// Child is idempotent: same name, same scope.
	if r.Child("r000").Len() != 2 {
		t.Errorf("child r000 Len = %d, want 2", r.Child("r000").Len())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *trace.Recorder
	r.Record(trace.Event{})
	r.SpanDone("x", time.Second, 1)
	if r.Child("c") != nil {
		t.Error("nil recorder must hand out nil children")
	}
	if r.Len() != 0 || r.TotalLen() != 0 || r.Dropped() != 0 || r.Events() != nil || r.Scopes() != nil {
		t.Error("nil recorder accessors must be zero-valued")
	}
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil || b.Len() != 0 {
		t.Error("nil recorder must export nothing")
	}
	if err := r.WriteChrome(&b); err != nil || b.Len() != 0 {
		t.Error("nil recorder must export no Chrome trace")
	}
}

func TestSpanDoneRecordsSpanEvent(t *testing.T) {
	r := trace.New(0)
	r.SpanDone("build", 2*time.Second, 7.5)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Kind != trace.SpanDone || ev[0].Name != "build" ||
		ev[0].Dur != 2.0 || ev[0].Sim != 7.5 {
		t.Errorf("span event wrong: %+v", ev)
	}
}

func sampleRecorder() *trace.Recorder {
	r := trace.New(0)
	r.Record(trace.Event{T: 0, Kind: trace.FrameCaptured, Frame: 1, Node: 2})
	r.Record(trace.Event{T: 0.5, Kind: trace.OutageStart, Node: -1, Dur: 3, Cause: "isl-outage#1"})
	r.Record(trace.Event{T: 0.5, Kind: trace.Retry, Frame: 1, Node: -1, Attempt: 1, Backoff: 2, Cause: "isl-outage#1"})
	r.Record(trace.Event{T: 2.5, Kind: trace.ISLSendStart, Frame: 1, Node: -1})
	r.Record(trace.Event{T: 2.6, Kind: trace.ISLSendEnd, Frame: 1, Node: -1})
	r.Record(trace.Event{T: 2.6, Kind: trace.Enqueued, Frame: 1, Node: -1})
	r.Record(trace.Event{T: 3, Kind: trace.Dispatched, Frame: 1, Node: 0})
	r.Record(trace.Event{T: 3, Kind: trace.ComputeStart, Node: 0, N: 1})
	r.Record(trace.Event{T: 3.5, Kind: trace.OutageEnd, Node: -1, Cause: "isl-outage#1"})
	r.Record(trace.Event{T: 4, Kind: trace.ComputeEnd, Node: 0, N: 1})
	r.Record(trace.Event{T: 4, Kind: trace.ComputeEnd, Frame: 1, Node: 0})
	r.Record(trace.Event{T: 4, Kind: trace.Downlinked, Frame: 1, Node: 0})
	c := r.Child("r000")
	c.Record(trace.Event{T: 1, Kind: trace.NodeDeath, Node: 1})
	c.Record(trace.Event{T: 1.5, Kind: trace.SEFIStart, Node: 0, Dur: 30})
	c.Record(trace.Event{T: 31.5, Kind: trace.SEFIEnd, Node: 0})
	return r
}

func TestJSONLRoundTrip(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Events(), r.Events()) {
		t.Error("root events changed over the round trip")
	}
	if !reflect.DeepEqual(back.Scopes(), r.Scopes()) {
		t.Errorf("scopes changed: %v vs %v", back.Scopes(), r.Scopes())
	}
	if !reflect.DeepEqual(back.Child("r000").Events(), r.Child("r000").Events()) {
		t.Error("child events changed over the round trip")
	}
	// Re-encoding the decoded recorder must be byte-identical.
	var buf2 bytes.Buffer
	if err := back.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("JSONL re-encode differs from original encode")
	}
}

func TestDecodeJSONLRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		`{"t":1,"k":"no_such_kind","n":-1}`,
		`{"t":1,"k":"shed","n":-1,"mystery":true}`,
		`not json at all`,
		`{"t":1,"k":"shed","n":-1} {"trailing":1}`,
	} {
		if _, err := trace.DecodeJSONL(strings.NewReader(bad)); err == nil {
			t.Errorf("DecodeJSONL(%q) must error", bad)
		}
	}
	// Blank lines and trailing newlines are tolerated.
	ok := "{\"t\":1,\"k\":\"shed\",\"f\":1,\"n\":-1}\n\n"
	rec, err := trace.DecodeJSONL(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 1 {
		t.Errorf("Len = %d, want 1", rec.Len())
	}
}

func TestChromeExportIsValidAndDeterministic(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if parsed.Unit != "ms" || len(parsed.TraceEvents) == 0 {
		t.Fatalf("unexpected Chrome file shape: unit=%q, %d events", parsed.Unit, len(parsed.TraceEvents))
	}
	names := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"process_name", "thread_name", "frame 1",
		"xfer f1", "retry f1", "batch ×1", "outage", "death", "SEFI"} {
		if !names[want] {
			t.Errorf("Chrome export missing %q event; have %v", want, names)
		}
	}
	var buf2 bytes.Buffer
	if err := r.WriteChrome(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("Chrome export is not deterministic across calls")
	}
}

func TestKindJSONStableNames(t *testing.T) {
	b, err := json.Marshal(trace.FrameCaptured)
	if err != nil || string(b) != `"frame_captured"` {
		t.Errorf("Marshal(FrameCaptured) = %s, %v", b, err)
	}
	var k trace.Kind
	if err := json.Unmarshal([]byte(`"isl_send_end"`), &k); err != nil || k != trace.ISLSendEnd {
		t.Errorf("Unmarshal(isl_send_end) = %v, %v", k, err)
	}
	if err := json.Unmarshal([]byte(`"warp_drive"`), &k); err == nil {
		t.Error("unknown kind must fail to unmarshal")
	}
	if _, err := json.Marshal(trace.Kind(250)); err == nil {
		t.Error("out-of-range kind must fail to marshal")
	}
}

func TestRegistrySpanSinkFeedsRecorder(t *testing.T) {
	reg := obs.New()
	rec := trace.New(0)
	reg.SetSpanSink(rec)
	sp := reg.StartSpan("stage")
	sp.SetSim(42)
	sp.End()
	ev := rec.Events()
	if len(ev) != 1 || ev[0].Kind != trace.SpanDone || ev[0].Name != "stage" || ev[0].Sim != 42 {
		t.Fatalf("span sink event wrong: %+v", ev)
	}
	reg.SetSpanSink(nil)
	reg.StartSpan("ignored").End()
	if rec.Len() != 1 {
		t.Error("removed sink must stop receiving spans")
	}
}
