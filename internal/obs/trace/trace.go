// Package trace is the frame-lineage flight recorder: a bounded,
// simulated-time-stamped structured event log that captures the causal
// history of every EO frame crossing the Figure 14 pipeline — capture,
// ISL transfer (with retries and backoff), batching, compute, and
// downlink — interleaved with the fault events (node deaths, SEFI
// hangs, ISL outages) that stall them. Where package obs aggregates
// (counters, histograms, series), package trace remembers individual
// frames, so tail latency can be attributed to a specific queue wait,
// retry storm, or fault window after the fact.
//
// Determinism contract: a Recorder's event order is the discrete-event
// simulator's event order, which is a pure function of simulated time
// and the seed — never of the process worker count. Concurrent
// producers (simulation replicas) each record into their own child
// scope (Child), and the exporters walk scopes in sorted name order, so
// the JSONL and Chrome exports are byte-identical for any worker count.
//
// Two exporters are provided: WriteJSONL (one JSON object per line,
// round-trippable via DecodeJSONL) and WriteChrome (Chrome trace-event
// JSON loadable in Perfetto or chrome://tracing, with frames as flow
// events and the ISL and each worker as tracks).
//
// Every method is nil-receiver safe: a nil *Recorder swallows events,
// so instrumented code needs no "is tracing on?" branches.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind identifies one event type in the frame-lifecycle taxonomy.
type Kind uint8

// Frame-lifecycle events (Frame > 0) and fault events (Frame == 0)
// forwarded from the internal/faults schedule replay.
const (
	// FrameCaptured: a satellite (Node) finished capturing the frame;
	// it joins the ISL queue.
	FrameCaptured Kind = iota
	// Enqueued: the frame landed in the SµDC input queue. A non-empty
	// Cause ("node-death#w") marks a re-enqueue after its worker died.
	Enqueued
	// Dispatched: the frame left the input queue inside a batch bound
	// for worker Node.
	Dispatched
	// ISLSendStart: the frame started crossing the inter-satellite link.
	ISLSendStart
	// ISLSendEnd: the transfer ended. A non-empty Cause marks an abort
	// (the outage window that killed the transfer); otherwise the frame
	// arrived.
	ISLSendEnd
	// Retry: a transmission attempt failed (Attempt so far) and the
	// frame waits Backoff seconds before retrying. Cause names the
	// outage window responsible.
	Retry
	// Shed: load shedding dropped the frame from the input queue.
	Shed
	// ComputeStart: worker Node started a batch of N frames.
	ComputeStart
	// ComputeEnd: compute finished. Emitted once per batch (Frame == 0,
	// with N) and once per frame (Frame > 0).
	ComputeEnd
	// Downlinked: the analyzer judged the frame an insight and
	// downlinked the result.
	Downlinked
	// Lost: the frame exhausted its ISL retry budget and was dropped.
	Lost
	// NodeDeath: worker Node died permanently.
	NodeDeath
	// SEFIStart: worker Node hung on a transient SEFI; the watchdog
	// recovers it Dur seconds later.
	SEFIStart
	// SEFIEnd: the watchdog recovered worker Node.
	SEFIEnd
	// OutageStart: the ISL went down for Dur seconds. Cause carries the
	// window's ordinal ("isl-outage#k") so frame stalls can name it.
	OutageStart
	// OutageEnd: the ISL recovered.
	OutageEnd
	// SpanDone: a completed obs span (Name, wall Dur, simulated Sim) —
	// recorded when a Recorder is installed as a registry's span sink.
	SpanDone
	// Throttle: the degradation schedule entered a phase whose thermal
	// throttle multiplier (Mult) differs from 1; the phase lasts Dur
	// seconds. Node is -1 (throttling is fleet-wide in this model).
	Throttle
	// BrownoutStart: an eclipse power brownout parked N workers. Cause
	// carries the phase ordinal ("brownout#k") so stranded frames can
	// name it; Dur is the phase length.
	BrownoutStart
	// BrownoutEnd: the previous brownout lifted (N workers return).
	BrownoutEnd
	// Placed: the placement engine routed the frame to compute tier
	// Tier (onboard, space, ground-edge, or cloud) at capture time. A
	// Cause of "spill" marks a queue-aware deviation from the
	// zero-queue base tier.
	Placed
	// SLOAlert: the SLO engine's multi-window burn-rate alert fired
	// for objective Name in window N ([T-Dur, T)); Mult carries the
	// fast burn average and Cause the ranked environment attribution
	// (eclipse brownout, thermal throttle, ISL outage, spillover).
	SLOAlert

	numKinds
)

// kindNames are the stable wire names of each Kind.
var kindNames = [numKinds]string{
	FrameCaptured: "frame_captured",
	Enqueued:      "enqueued",
	Dispatched:    "dispatched",
	ISLSendStart:  "isl_send_start",
	ISLSendEnd:    "isl_send_end",
	Retry:         "retry",
	Shed:          "shed",
	ComputeStart:  "compute_start",
	ComputeEnd:    "compute_end",
	Downlinked:    "downlinked",
	Lost:          "lost",
	NodeDeath:     "node_death",
	SEFIStart:     "sefi_start",
	SEFIEnd:       "sefi_end",
	OutageStart:   "outage_start",
	OutageEnd:     "outage_end",
	SpanDone:      "span",
	Throttle:      "throttle",
	BrownoutStart: "brownout_start",
	BrownoutEnd:   "brownout_end",
	Placed:        "placed",
	SLOAlert:      "slo_alert",
}

// kindByName is the inverse of kindNames, for decoding.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k, n := range kindNames {
		m[n] = Kind(k)
	}
	return m
}()

// String returns the kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one flight-recorder entry. The zero value of each optional
// field means "not applicable" — except Node, whose none value is -1
// (node and satellite indices start at 0).
type Event struct {
	// T is the simulated time in seconds (wall seconds since recorder
	// creation for SpanDone events).
	T float64 `json:"t"`
	// Kind is the event type.
	Kind Kind `json:"k"`
	// Frame is the 1-based stable frame ID; 0 for frame-less events.
	Frame int64 `json:"f,omitempty"`
	// Node is the worker index (or the satellite index for
	// FrameCaptured); -1 when the event is not node-scoped.
	Node int `json:"n"`
	// N is the batch size for batch-level ComputeStart/ComputeEnd.
	N int `json:"sz,omitempty"`
	// Attempt is the failed-attempt count so far (Retry, Lost).
	Attempt int `json:"a,omitempty"`
	// Backoff is the armed retry delay in seconds (Retry).
	Backoff float64 `json:"b,omitempty"`
	// Dur is a duration payload in seconds: SEFI recovery, outage
	// length, or span wall time.
	Dur float64 `json:"d,omitempty"`
	// Sim is a span's simulated duration in seconds (SpanDone).
	Sim float64 `json:"sim,omitempty"`
	// Mult is the service-rate multiplier of a Throttle phase.
	Mult float64 `json:"m,omitempty"`
	// Cause attributes the event to a fault window, e.g.
	// "isl-outage#2" or "node-death#3".
	Cause string `json:"c,omitempty"`
	// Edge names the ISL link ("<from>-<to>") for edge-scoped events in
	// topology mode; empty for the legacy single-link simulator.
	Edge string `json:"e,omitempty"`
	// Tier names the compute tier a Placed frame was routed to.
	Tier string `json:"tr,omitempty"`
	// Name is the span name (SpanDone).
	Name string `json:"name,omitempty"`
}

// DefaultLimit bounds a recorder created with limit ≤ 0: one million
// events (~100 MB at JSON width) before the recorder starts dropping.
const DefaultLimit = 1 << 20

// Recorder is a bounded, append-only event log. Record is safe for
// concurrent use, but the intended discipline is one single-threaded
// producer per recorder: concurrent producers take one child scope
// each (Child) so event order inside every scope stays deterministic.
type Recorder struct {
	limit int
	start time.Time

	mu       sync.Mutex
	events   []Event
	dropped  int64
	children map[string]*Recorder
}

// New returns a recorder bounded at limit events per scope
// (limit ≤ 0 = DefaultLimit).
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Recorder{limit: limit, start: time.Now()}
}

// Child returns the named child scope, creating it (with the parent's
// limit) on first use. Concurrent producers must use distinct names;
// the exporters walk children in sorted name order. A nil recorder
// hands out nil children.
func (r *Recorder) Child(name string) *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.children == nil {
		r.children = map[string]*Recorder{}
	}
	c, ok := r.children[name]
	if !ok {
		c = &Recorder{limit: r.limit, start: r.start}
		r.children[name] = c
	}
	return c
}

// Record appends one event, or counts it as dropped once the recorder
// is full. A nil recorder swallows the event.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.events) >= r.limit {
		r.dropped++
	} else {
		r.events = append(r.events, e)
	}
	r.mu.Unlock()
}

// SpanDone records a completed span — the structural hook behind
// obs.Registry.SetSpanSink, recorded at wall time since recorder
// creation (span timing is a wall-clock affair; the deterministic
// frame events never use it).
func (r *Recorder) SpanDone(name string, wall time.Duration, sim float64) {
	if r == nil {
		return
	}
	r.Record(Event{
		T:    time.Since(r.start).Seconds(),
		Kind: SpanDone,
		Node: -1,
		Dur:  wall.Seconds(),
		Sim:  sim,
		Name: name,
	})
}

// Events returns a copy of this scope's events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events in this scope.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events this scope discarded at its bound.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Scopes returns the child scope names in sorted order.
func (r *Recorder) Scopes() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.children))
	for n := range r.children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalLen returns the event count summed over this scope and every
// descendant scope.
func (r *Recorder) TotalLen() int {
	if r == nil {
		return 0
	}
	n := r.Len()
	for _, name := range r.Scopes() {
		n += r.Child(name).TotalLen()
	}
	return n
}

// walk visits this recorder and every descendant in deterministic
// order: self first, then children ascending by name, with child
// scope paths joined by "/".
func (r *Recorder) walk(prefix string, visit func(scope string, events []Event)) {
	if r == nil {
		return
	}
	visit(prefix, r.Events())
	for _, name := range r.Scopes() {
		full := name
		if prefix != "" {
			full = prefix + "/" + name
		}
		r.Child(name).walk(full, visit)
	}
}
