package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// MarshalJSON encodes the kind as its stable wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("trace: unknown kind %d", uint8(k))
	}
	return json.Marshal(kindNames[k])
}

// UnmarshalJSON decodes a wire name back into a Kind, rejecting
// unknown names.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, ok := kindByName[s]
	if !ok {
		return fmt.Errorf("trace: unknown event kind %q", s)
	}
	*k = v
	return nil
}

// Line is one decoded JSONL record: an event plus the scope it was
// recorded under ("" = the root scope).
type Line struct {
	Scope string `json:"scope,omitempty"`
	Event
}

// WriteJSONL writes the recorder — root scope first, then child scopes
// ascending by name — as one JSON object per line. The output is a
// pure function of the recorded events, so deterministic recordings
// export to byte-identical files.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var err error
	r.walk("", func(scope string, events []Event) {
		if err != nil {
			return
		}
		for _, e := range events {
			if encErr := enc.Encode(Line{Scope: scope, Event: e}); encErr != nil {
				err = encErr
				return
			}
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeJSONL reads a WriteJSONL stream back into a recorder (scopes
// become children of the root), rejecting malformed lines and unknown
// event kinds. Blank lines are skipped, so hand-edited traces with a
// trailing newline still load.
func DecodeJSONL(rd io.Reader) (*Recorder, error) {
	rec := New(0)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ln Line
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ln); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", n, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("trace: line %d: trailing data after event", n)
		}
		target := rec
		if ln.Scope != "" {
			target = rec.Child(ln.Scope)
		}
		target.Record(ln.Event)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rec, nil
}

// Chrome trace-event export. Format reference: the Trace Event Format
// spec consumed by Perfetto and chrome://tracing. Each recorder scope
// becomes one process; inside a process, tid 1 is the frame timeline
// (flow anchors, sheds, losses), tid 2 the ISL (transfer slices,
// outage windows, retries), and tid 10+w worker w (batch slices, SEFI
// windows, deaths). Frames are flow events ("s"/"t"/"f" with a
// per-frame id) threading capture → dispatch → compute end.
const (
	tidFrames = 1
	tidISL    = 2
	tidEnv    = 3  // degradation phases (throttle slices, brownout windows)
	tidWorker = 10 // + worker index
)

// chromeEvent is one trace-event record. Args is encoded with sorted
// keys by encoding/json, keeping the export deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const usPerSec = 1e6

// WriteChrome writes the recorder as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Deterministic for
// deterministic recordings, like WriteJSONL.
func (r *Recorder) WriteChrome(w io.Writer) error {
	if r == nil {
		return nil
	}
	var out []chromeEvent
	pid := 0
	r.walk("", func(scope string, events []Event) {
		pid++
		out = append(out, scopeChrome(pid, scope, events)...)
	})
	b, err := json.Marshal(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms"})
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// scopeChrome renders one scope's events into trace-event records.
func scopeChrome(pid int, scope string, events []Event) []chromeEvent {
	if scope == "" {
		scope = "main"
	}
	var out []chromeEvent
	meta := func(tid int, name string) {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": scope},
	})
	meta(tidFrames, "frames")
	meta(tidISL, "ISL")
	// The environment track is named lazily, like worker tracks, so
	// recordings without degradation events export byte-identically to
	// before the track existed.
	envNamed := false
	env := func() int {
		if !envNamed {
			envNamed = true
			meta(tidEnv, "env")
		}
		return tidEnv
	}
	namedWorkers := map[int]bool{}
	worker := func(node int) int {
		if node >= 0 && !namedWorkers[node] {
			namedWorkers[node] = true
			meta(tidWorker+node, fmt.Sprintf("worker %02d", node))
		}
		return tidWorker + node
	}
	flowID := func(frame int64) string { return fmt.Sprintf("%s/f%d", scope, frame) }

	var (
		sendStart   = map[int64]float64{}     // frame -> in-flight transfer start
		computeOpen = map[int]openBatch{}     // node -> open batch slice
		outages     = map[string]openOutage{} // edge label ("" = legacy ISL) -> open window
		brownout    *openBrownout             // open eclipse-brownout window
		lastT       float64
	)
	outageArgs := func(ow openOutage, edge string) map[string]any {
		args := map[string]any{"cause": ow.cause}
		if edge != "" {
			args["edge"] = edge
		}
		return args
	}
	for _, e := range events {
		if e.T > lastT {
			lastT = e.T
		}
		ts := e.T * usPerSec
		switch e.Kind {
		case FrameCaptured:
			out = append(out,
				chromeEvent{Name: fmt.Sprintf("frame %d", e.Frame), Ph: "i", Ts: ts,
					Pid: pid, Tid: tidFrames, S: "t",
					Args: map[string]any{"satellite": e.Node}},
				chromeEvent{Name: "frame", Ph: "s", Ts: ts, Pid: pid, Tid: tidFrames,
					ID: flowID(e.Frame)})
		case ISLSendStart:
			sendStart[e.Frame] = e.T
		case ISLSendEnd:
			start, ok := sendStart[e.Frame]
			if !ok {
				break
			}
			delete(sendStart, e.Frame)
			ev := chromeEvent{Name: fmt.Sprintf("xfer f%d", e.Frame), Ph: "X",
				Ts: start * usPerSec, Dur: (e.T - start) * usPerSec,
				Pid: pid, Tid: tidISL}
			if e.Cause != "" {
				ev.Name = fmt.Sprintf("xfer f%d (aborted)", e.Frame)
				ev.Args = map[string]any{"cause": e.Cause}
			}
			if e.Edge != "" {
				if ev.Args == nil {
					ev.Args = map[string]any{}
				}
				ev.Args["edge"] = e.Edge
			}
			out = append(out, ev)
		case Retry:
			args := map[string]any{"attempt": e.Attempt, "backoff_s": e.Backoff, "cause": e.Cause}
			if e.Edge != "" {
				args["edge"] = e.Edge
			}
			out = append(out, chromeEvent{Name: fmt.Sprintf("retry f%d", e.Frame),
				Ph: "i", Ts: ts, Pid: pid, Tid: tidISL, S: "t", Args: args})
		case Shed:
			out = append(out, chromeEvent{Name: fmt.Sprintf("shed f%d", e.Frame),
				Ph: "i", Ts: ts, Pid: pid, Tid: tidFrames, S: "t"})
		case Lost:
			out = append(out, chromeEvent{Name: fmt.Sprintf("lost f%d", e.Frame),
				Ph: "i", Ts: ts, Pid: pid, Tid: tidFrames, S: "t",
				Args: map[string]any{"attempts": e.Attempt, "cause": e.Cause}})
		case Dispatched:
			out = append(out, chromeEvent{Name: "frame", Ph: "t", Ts: ts,
				Pid: pid, Tid: worker(e.Node), ID: flowID(e.Frame), BP: "e"})
		case ComputeStart:
			if e.Frame == 0 {
				computeOpen[e.Node] = openBatch{start: e.T, n: e.N}
			}
		case ComputeEnd:
			if e.Frame != 0 {
				out = append(out, chromeEvent{Name: "frame", Ph: "f", Ts: ts,
					Pid: pid, Tid: worker(e.Node), ID: flowID(e.Frame), BP: "e"})
				break
			}
			ob, ok := computeOpen[e.Node]
			if !ok {
				break
			}
			delete(computeOpen, e.Node)
			out = append(out, chromeEvent{Name: fmt.Sprintf("batch ×%d", ob.n), Ph: "X",
				Ts: ob.start * usPerSec, Dur: (e.T - ob.start) * usPerSec,
				Pid: pid, Tid: worker(e.Node)})
		case NodeDeath:
			tid := worker(e.Node)
			if ob, ok := computeOpen[e.Node]; ok {
				// The batch died with its worker: close the slice here.
				delete(computeOpen, e.Node)
				out = append(out, chromeEvent{Name: fmt.Sprintf("batch ×%d (stranded)", ob.n),
					Ph: "X", Ts: ob.start * usPerSec, Dur: (e.T - ob.start) * usPerSec,
					Pid: pid, Tid: tid})
			}
			out = append(out, chromeEvent{Name: "death", Ph: "i", Ts: ts,
				Pid: pid, Tid: tid, S: "t"})
		case SEFIStart:
			out = append(out, chromeEvent{Name: "SEFI", Ph: "X", Ts: ts,
				Dur: e.Dur * usPerSec, Pid: pid, Tid: worker(e.Node)})
		case OutageStart:
			outages[e.Edge] = openOutage{start: e.T, cause: e.Cause}
		case OutageEnd:
			ow, ok := outages[e.Edge]
			if !ok {
				break
			}
			delete(outages, e.Edge)
			out = append(out, chromeEvent{Name: "outage", Ph: "X",
				Ts: ow.start * usPerSec, Dur: (e.T - ow.start) * usPerSec,
				Pid: pid, Tid: tidISL, Args: outageArgs(ow, e.Edge)})
		case SpanDone:
			out = append(out, chromeEvent{Name: e.Name, Ph: "X",
				Ts: (e.T - e.Dur) * usPerSec, Dur: e.Dur * usPerSec,
				Pid: pid, Tid: tidFrames})
		case Throttle:
			out = append(out, chromeEvent{Name: fmt.Sprintf("throttle ×%.2f", e.Mult),
				Ph: "X", Ts: ts, Dur: e.Dur * usPerSec, Pid: pid, Tid: env(),
				Args: map[string]any{"rate_mult": e.Mult}})
		case BrownoutStart:
			brownout = &openBrownout{start: e.T, n: e.N, cause: e.Cause}
		case SLOAlert:
			out = append(out, chromeEvent{Name: fmt.Sprintf("SLO alert: %s", e.Name),
				Ph: "i", Ts: ts, Pid: pid, Tid: env(), S: "t",
				Args: map[string]any{"cause": e.Cause, "fast_burn": e.Mult, "window": e.N}})
		case BrownoutEnd:
			if brownout == nil {
				break
			}
			out = append(out, chromeEvent{Name: fmt.Sprintf("brownout −%d", brownout.n),
				Ph: "X", Ts: brownout.start * usPerSec, Dur: (e.T - brownout.start) * usPerSec,
				Pid: pid, Tid: env(),
				Args: map[string]any{"cause": brownout.cause, "workers_parked": brownout.n}})
			brownout = nil
		}
	}
	// Close windows still open at the end of the recording, edges in
	// sorted order for a deterministic export.
	openEdges := make([]string, 0, len(outages))
	for edge := range outages {
		openEdges = append(openEdges, edge)
	}
	sort.Strings(openEdges)
	for _, edge := range openEdges {
		ow := outages[edge]
		out = append(out, chromeEvent{Name: "outage", Ph: "X",
			Ts: ow.start * usPerSec, Dur: (lastT - ow.start) * usPerSec,
			Pid: pid, Tid: tidISL, Args: outageArgs(ow, edge)})
	}
	if brownout != nil {
		out = append(out, chromeEvent{Name: fmt.Sprintf("brownout −%d (open)", brownout.n),
			Ph: "X", Ts: brownout.start * usPerSec, Dur: (lastT - brownout.start) * usPerSec,
			Pid: pid, Tid: env(),
			Args: map[string]any{"cause": brownout.cause, "workers_parked": brownout.n}})
	}
	nodes := make([]int, 0, len(computeOpen))
	for n := range computeOpen {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		ob := computeOpen[n]
		out = append(out, chromeEvent{Name: fmt.Sprintf("batch ×%d (open)", ob.n),
			Ph: "X", Ts: ob.start * usPerSec, Dur: (lastT - ob.start) * usPerSec,
			Pid: pid, Tid: worker(n)})
	}
	return out
}

type openBatch struct {
	start float64
	n     int
}

type openOutage struct {
	start float64
	cause string
}

type openBrownout struct {
	start float64
	n     int
	cause string
}
