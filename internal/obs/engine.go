package obs

import "time"

// EngineMetrics adapts a registry to the parallel engine's observer
// hook (par.SetObserver) without either package importing the other:
// it structurally satisfies par.Observer.
//
// Recorded metrics: counters "runs" and "items" (worker-count
// invariant), gauge "workers_last" (the most recent run's pool size),
// histogram "run_items" (items per run), and span "run" carrying the
// engine's wall time (excluded from default snapshots).
type EngineMetrics struct {
	reg     *Registry
	runs    *Counter
	items   *Counter
	workers *Gauge
	sizes   *Histogram
}

// NewEngineMetrics returns an engine observer recording into reg.
func NewEngineMetrics(reg *Registry) *EngineMetrics {
	return &EngineMetrics{
		reg:     reg,
		runs:    reg.Counter("runs"),
		items:   reg.Counter("items"),
		workers: reg.Gauge("workers_last"),
		sizes:   reg.Histogram("run_items", 1, 10, 100, 1000, 10000),
	}
}

// RunStarted records the start of one parallel run.
func (m *EngineMetrics) RunStarted(items, workers int) {
	if m == nil {
		return
	}
	m.runs.Inc()
	m.workers.Set(float64(workers))
	m.sizes.Observe(float64(items))
}

// ItemsDone records n completed work items.
func (m *EngineMetrics) ItemsDone(n int) {
	if m == nil {
		return
	}
	m.items.Add(int64(n))
}

// RunFinished records the wall time of one completed parallel run.
func (m *EngineMetrics) RunFinished(items, workers int, wall time.Duration) {
	if m == nil || m.reg == nil {
		return
	}
	sp := m.reg.StartSpan("run")
	sp.start = sp.start.Add(-wall)
	sp.End()
}
