// Package obs is the repository's zero-dependency observability layer:
// a Registry of named counters, gauges, fixed-bucket histograms, and
// simulated-time series, plus lightweight span tracing. Every layer of
// the stack — the parallel engine, the discrete-event simulator, the
// DSE, and the experiment runner — records into it instead of ad-hoc
// printf, and the CLIs expose it behind -metrics/-trace flags.
//
// Determinism contract: metrics driven by model state (counters,
// gauges, histograms, and series sampled on the simulated clock) are
// byte-identical in the default Snapshot for any process worker count.
// Wall-clock measurements exist only inside spans and are excluded from
// snapshots unless WithWall is requested, so golden tests can diff
// snapshots directly.
//
// All metric methods are safe for concurrent use, and every method is
// nil-receiver safe: a nil *Registry hands out nil metrics whose
// operations are no-ops, so instrumented code needs no "is observability
// on?" branches.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// state is the shared storage behind one registry and all its scopes.
type state struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
	spans    map[string]*spanStats
	trace    traceSink
	spanSink SpanSink
}

// Registry is a lightweight handle on a metric store. Scope derives
// handles that share the store under a name prefix, so concurrent
// producers (e.g. simulation replicas) can write disjoint names into
// one snapshot without coordinating.
type Registry struct {
	st     *state
	prefix string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{st: &state{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
		spans:    map[string]*spanStats{},
	}}
}

// Scope returns a handle on the same store that prefixes every metric
// name with name + "/". Scoping a nil registry yields nil.
func (r *Registry) Scope(name string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{st: r.st, prefix: r.prefix + name + "/"}
}

// Counter returns the named monotonic counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	c, ok := r.st.counters[name]
	if !ok {
		c = &Counter{}
		r.st.counters[name] = c
	}
	return c
}

// Gauge returns the named last-value gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	g, ok := r.st.gauges[name]
	if !ok {
		g = &Gauge{}
		r.st.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it with
// the given ascending upper bounds on first use (an implicit +Inf
// overflow bucket is always present; no bounds means only the overflow
// bucket). Later callers share the first creation's bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	h, ok := r.st.hists[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1), min: math.Inf(1), max: math.Inf(-1)}
		r.st.hists[name] = h
	}
	return h
}

// Series returns the named time series, creating it on first use.
// Samples are (t, v) pairs; t is by convention the simulated clock, so
// a series is deterministic whenever the simulation is.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	s, ok := r.st.series[name]
	if !ok {
		s = &Series{}
		r.st.series[name] = s
	}
	return s
}

// Counter is a monotonic event count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct {
	set  atomic.Bool
	bits atomic.Uint64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the last value set (0 before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution with count/sum/min/max.
type Histogram struct {
	bounds []float64 // ascending upper bounds; bucket i counts v ≤ bounds[i]
	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last is the +Inf overflow bucket
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Min and Max return the observed extrema (0 before any observation).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max is the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-th quantile by linear interpolation within
// the bucket holding the target rank, with bucket edges clamped to the
// observed [min, max] so the overflow bucket (and a sparse first
// bucket) interpolate over real mass rather than to ±Inf. It returns
// NaN for q outside [0, 1] and 0 for an empty histogram. The estimate
// is deterministic: a pure function of the bucket counts and extrema.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// quantileLocked is Quantile for callers already holding h.mu.
func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum int64
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := h.min
			if i > 0 && h.bounds[i-1] > lo {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return h.max
}

// Point is one sample of a time series.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Series is an append-only sampled time series. The zero value is
// unbounded; SetMaxPoints bounds its memory with deterministic 2×
// decimation, so long simulations cannot grow the registry without
// limit.
type Series struct {
	mu     sync.Mutex
	pts    []Point
	max    int   // 0 = unbounded
	stride int64 // accept every stride-th offered sample; 0/1 = all
	n      int64 // samples offered so far
}

// SetMaxPoints bounds the series at max retained points (≤ 0 restores
// the unbounded zero-value behavior). When an append would exceed the
// bound, the series decimates 2×: every other retained point is
// dropped and the acceptance stride doubles, so the retained points
// stay evenly spaced over the offered samples and the result is a pure
// function of the sample sequence — worker-count determinism is
// preserved. Retained count stays within (max/2, max].
func (s *Series) SetMaxPoints(max int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if max <= 0 {
		s.max = 0
		return
	}
	s.max = max
	for len(s.pts) > s.max {
		s.decimateLocked()
	}
}

// decimateLocked halves the retained points (keep-every-other) and
// doubles the acceptance stride.
func (s *Series) decimateLocked() {
	kept := s.pts[:0]
	for i := 0; i < len(s.pts); i += 2 {
		kept = append(kept, s.pts[i])
	}
	s.pts = kept
	if s.stride < 1 {
		s.stride = 1
	}
	s.stride *= 2
}

// Sample appends one (t, v) point, subject to the decimation stride
// when the series is bounded.
func (s *Series) Sample(t, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	offered := s.n
	s.n++
	if s.stride > 1 && offered%s.stride != 0 {
		s.mu.Unlock()
		return
	}
	s.pts = append(s.pts, Point{T: t, V: v})
	if s.max > 0 && len(s.pts) > s.max {
		s.decimateLocked()
	}
	s.mu.Unlock()
}

// Points returns a copy of the sampled points in append order.
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.pts...)
}

// Rate returns the per-interval deltas of a monotone (cumulative)
// series: point i carries the increase since the previous sample, and
// the first point the increase from zero. Sampling a cumulative
// counter and reading Rate is therefore equivalent to sampling the
// per-interval rate directly; the timestamps are unchanged.
func (s *Series) Rate() []Point {
	pts := s.Points()
	var prev float64
	for i := range pts {
		v := pts[i].V
		pts[i].V = v - prev
		prev = v
	}
	return pts
}

// global is the process-wide registry used by layers with no natural
// injection point (the DSE); nil means observability is off.
var global atomic.Pointer[Registry]

// SetGlobal installs (or, with nil, removes) the process-wide registry.
func SetGlobal(r *Registry) {
	if r == nil {
		global.Store(nil)
		return
	}
	global.Store(r)
}

// Global returns the process-wide registry, or nil when unset.
func Global() *Registry { return global.Load() }
