// Package dse performs the paper's accelerator design-space exploration
// (§IV-B): it sweeps 7168 Eyeriss-like row-stationary designs — the PE
// grid's x and y lengths and the input-feature, weight, and accumulation
// buffer sizes — over the Figure 13 CNN suite, and derives the three
// system architectures of Figure 18:
//
//   - Global Accelerator: the single design with the best geometric-mean
//     energy efficiency across all network layers;
//   - Per-Network Accelerator: the best design for each network;
//   - Per-Layer Accelerator: the best design for each individual layer.
//
// Energy-efficiency gains are reported against the commodity RTX 3090
// baseline (Figure 17).
package dse

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"sudc/internal/accel"
	"sudc/internal/obs"
	"sudc/internal/par"
	"sudc/internal/workload"
)

// Design-space axes: 7 × 8 × 4 × 4 × 8 = 7168 design points, matching the
// paper's "total of 7168 designs were evaluated".
var (
	peXOptions    = []int{8, 12, 16, 24, 32, 48, 64}
	peYOptions    = []int{1, 2, 3, 4, 5, 7, 12, 16}
	ifmapOptions  = []int{16, 32, 64, 128}
	weightOptions = []int{16, 32, 64, 128}
	accumOptions  = []int{2, 4, 8, 16, 32, 64, 128, 256}
)

// SpaceSize is the number of designs in the exploration.
const SpaceSize = 7 * 8 * 4 * 4 * 8

// space materializes the full design space once; Explore and Space share
// the cached slice, which must never be mutated.
var space = sync.OnceValue(func() []accel.Config {
	out := make([]accel.Config, 0, SpaceSize)
	for _, px := range peXOptions {
		for _, py := range peYOptions {
			for _, ifk := range ifmapOptions {
				for _, wk := range weightOptions {
					for _, ak := range accumOptions {
						out = append(out, accel.Config{
							Name: fmt.Sprintf("rs-%dx%d-i%d-w%d-a%d", px, py, ifk, wk, ak),
							PEX:  px, PEY: py,
							IfmapKB: ifk, WeightKB: wk, AccumKB: ak,
						})
					}
				}
			}
		}
	}
	return out
})

// Space enumerates the full design space in deterministic order. The
// returned slice is the caller's to mutate.
func Space() []accel.Config {
	s := space()
	out := make([]accel.Config, len(s))
	copy(out, s)
	return out
}

// NetworkResult is one network's row in Figure 17.
type NetworkResult struct {
	Network string
	// App is the Table III application driving the network (its measured
	// GPU utilization anchors the baseline energy).
	App string
	// GPUJoules is the commodity-GPU energy per inference.
	GPUJoules float64
	// GlobalJoules, PerNetworkJoules, PerLayerJoules are per-inference
	// energies under the three accelerator system architectures.
	GlobalJoules     float64
	PerNetworkJoules float64
	PerLayerJoules   float64
	// BestConfig is the per-network optimal design.
	BestConfig accel.Config
}

// GlobalGain is the energy-efficiency improvement of the global
// accelerator over the GPU for this network.
func (r NetworkResult) GlobalGain() float64 { return r.GPUJoules / r.GlobalJoules }

// PerNetworkGain mirrors GlobalGain for the per-network architecture.
func (r NetworkResult) PerNetworkGain() float64 { return r.GPUJoules / r.PerNetworkJoules }

// PerLayerGain mirrors GlobalGain for the per-layer architecture.
func (r NetworkResult) PerLayerGain() float64 { return r.GPUJoules / r.PerLayerJoules }

// Result is the full exploration outcome.
type Result struct {
	// DesignsEvaluated is the swept design count (7168).
	DesignsEvaluated int
	// Global is the globally optimal design (geomean over all layers).
	Global accel.Config
	// Networks holds one row per network, in suite order.
	Networks []NetworkResult
}

// geomean over a slice of positive values.
func geomean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// MeanGlobalGain returns the average (geometric mean) energy-efficiency
// gain of the Global Accelerator architecture — the paper's 57.8×.
func (r Result) MeanGlobalGain() float64 {
	gains := make([]float64, len(r.Networks))
	for i, n := range r.Networks {
		gains[i] = n.GlobalGain()
	}
	return geomean(gains)
}

// MeanPerNetworkGain returns the average gain of the Per-Network
// architecture.
func (r Result) MeanPerNetworkGain() float64 {
	gains := make([]float64, len(r.Networks))
	for i, n := range r.Networks {
		gains[i] = n.PerNetworkGain()
	}
	return geomean(gains)
}

// MeanPerLayerGain returns the average gain of the Per-Layer architecture
// — the paper's "up to 116× on average".
func (r Result) MeanPerLayerGain() float64 {
	gains := make([]float64, len(r.Networks))
	for i, n := range r.Networks {
		gains[i] = n.PerLayerGain()
	}
	return geomean(gains)
}

// netWork binds a network to the Table III app whose measured utilization
// anchors its GPU baseline.
type netWork struct {
	net  workload.Network
	app  workload.App
	macs float64
}

// Explore runs the full design-space exploration for the networks behind
// the given apps (deduplicated), against the GPU baseline.
func Explore(apps []workload.App, gpu accel.GPUModel) (Result, error) {
	if len(apps) == 0 {
		return Result{}, errors.New("dse: no applications")
	}
	// The DSE has no natural injection point for a registry, so it
	// records into the process-wide one (nil when observability is off;
	// all calls below are then no-ops). Everything recorded here sits
	// outside the energy-sweep hot loop.
	sp := obs.Global().StartSpan("dse/explore")
	defer sp.End()

	// Deduplicate networks, remembering the highest-utilization app per
	// network (conservative baseline).
	nets := make([]netWork, 0, len(apps))
	seen := map[string]int{}
	for _, a := range apps {
		n, err := workload.NetworkFor(a)
		if err != nil {
			return Result{}, err
		}
		if i, ok := seen[n.Name]; ok {
			if a.GPUUtilization > nets[i].app.GPUUtilization {
				nets[i].app = a
			}
			continue
		}
		seen[n.Name] = len(nets)
		nets = append(nets, netWork{net: n, app: a, macs: float64(n.TotalMACs())})
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i].net.Name < nets[j].net.Name })

	space := space()

	// layers is the concatenation of all networks' layers; refs maps each
	// global layer back to its network.
	type layerRef struct {
		netIdx int
	}
	var layers []workload.Layer
	var refs []layerRef
	for ni, nw := range nets {
		for _, l := range nw.net.Layers {
			layers = append(layers, l)
			refs = append(refs, layerRef{netIdx: ni})
		}
	}
	nLayers := len(layers)

	// Layer energy depends only on the layer's shape, and roughly half the
	// suite's layers share a shape with another layer; memoize per unique
	// shape so each (design, shape) pair is evaluated exactly once and the
	// Global/Per-Network/Per-Layer selections below all read the same
	// matrix instead of re-sweeping the space.
	shapes := make([]workload.Layer, 0, nLayers)
	shapeIdx := make([]int, nLayers)
	seenShapes := map[workload.Layer]int{}
	for li, l := range layers {
		key := l
		key.Name = ""
		si, ok := seenShapes[key]
		if !ok {
			si = len(shapes)
			seenShapes[key] = si
			shapes = append(shapes, l)
		}
		shapeIdx[li] = si
	}

	// energies[c][s] = energy (J) of design c on unique shape s. Each
	// design's row is independent, so the sweep parallelizes over designs.
	energies := make([][]float64, len(space))
	err := par.ForNErr(len(space), func(ci int) error {
		cfg := space[ci]
		row := make([]float64, len(shapes))
		for si, l := range shapes {
			e, err := cfg.LayerEnergy(l)
			if err != nil {
				return fmt.Errorf("dse: %s on %s: %w", cfg.Name, l.Name, err)
			}
			row[si] = e.Joules()
		}
		energies[ci] = row
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	obs.Global().Counter("dse/designs_evaluated").Add(int64(len(space)))
	obs.Global().Counter("dse/layer_energies").Add(int64(len(space) * len(shapes)))
	obs.Global().Gauge("dse/networks").Set(float64(len(nets)))

	// Global optimum: minimize geomean energy across all layers (the
	// paper: "geometric mean of each design's energy efficiency on all
	// neural network layers").
	bestGlobal, bestGlobalScore := 0, math.Inf(1)
	for ci := range space {
		var logSum float64
		for li := 0; li < nLayers; li++ {
			logSum += math.Log(energies[ci][shapeIdx[li]])
		}
		if logSum < bestGlobalScore {
			bestGlobalScore = logSum
			bestGlobal = ci
		}
	}

	// Per-network optima: minimize the network's total inference energy
	// (the metric the per-network system actually pays). Per-layer: sum
	// of per-layer minima.
	perNetBest := make([]int, len(nets))
	perNetScore := make([]float64, len(nets))
	for i := range perNetScore {
		perNetScore[i] = math.Inf(1)
	}
	for ci := range space {
		sums := make([]float64, len(nets))
		for li := 0; li < nLayers; li++ {
			sums[refs[li].netIdx] += energies[ci][shapeIdx[li]]
		}
		for ni := range nets {
			if sums[ni] < perNetScore[ni] {
				perNetScore[ni] = sums[ni]
				perNetBest[ni] = ci
			}
		}
	}
	perLayerMin := make([]float64, nLayers)
	for li := 0; li < nLayers; li++ {
		min := math.Inf(1)
		for ci := range space {
			if e := energies[ci][shapeIdx[li]]; e < min {
				min = e
			}
		}
		perLayerMin[li] = min
	}

	// Assemble per-network results.
	results := make([]NetworkResult, len(nets))
	globalJ := make([]float64, len(nets))
	perNetJ := make([]float64, len(nets))
	perLayerJ := make([]float64, len(nets))
	for li := 0; li < nLayers; li++ {
		ni := refs[li].netIdx
		globalJ[ni] += energies[bestGlobal][shapeIdx[li]]
		perNetJ[ni] += energies[perNetBest[ni]][shapeIdx[li]]
		perLayerJ[ni] += perLayerMin[li]
	}
	for ni, nw := range nets {
		gpuJ, err := gpu.NetworkEnergy(nw.net, nw.app.GPUUtilization)
		if err != nil {
			return Result{}, err
		}
		results[ni] = NetworkResult{
			Network:          nw.net.Name,
			App:              nw.app.Name,
			GPUJoules:        gpuJ,
			GlobalJoules:     globalJ[ni],
			PerNetworkJoules: perNetJ[ni],
			PerLayerJoules:   perLayerJ[ni],
			BestConfig:       space[perNetBest[ni]],
		}
	}

	return Result{
		DesignsEvaluated: len(space),
		Global:           space[bestGlobal],
		Networks:         results,
	}, nil
}
