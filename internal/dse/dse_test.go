package dse

import (
	"reflect"
	"sync"
	"testing"

	"sudc/internal/accel"
	"sudc/internal/par"
	"sudc/internal/workload"
)

// exploreOnce caches the full exploration: it is deterministic and takes a
// couple of seconds, and several tests inspect the same result.
var (
	exploreOnce sync.Once
	exploreRes  Result
	exploreErr  error
)

func explore(t *testing.T) Result {
	t.Helper()
	exploreOnce.Do(func() {
		exploreRes, exploreErr = Explore(workload.Suite, accel.RTX3090Baseline)
	})
	if exploreErr != nil {
		t.Fatal(exploreErr)
	}
	return exploreRes
}

func TestSpaceSize(t *testing.T) {
	// The paper: "A total of 7168 designs were evaluated."
	s := Space()
	if len(s) != 7168 || len(s) != SpaceSize {
		t.Fatalf("space has %d designs, want 7168", len(s))
	}
	seen := map[string]bool{}
	for _, c := range s {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate design %s", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestExploreErrors(t *testing.T) {
	if _, err := Explore(nil, accel.RTX3090Baseline); err == nil {
		t.Error("no apps must error")
	}
	if _, err := Explore([]workload.App{{Name: "x", Network: "nope"}}, accel.RTX3090Baseline); err == nil {
		t.Error("unknown network must error")
	}
}

func TestExploreCoversAllNetworks(t *testing.T) {
	r := explore(t)
	if r.DesignsEvaluated != 7168 {
		t.Errorf("evaluated %d designs, want 7168", r.DesignsEvaluated)
	}
	if len(r.Networks) != 9 {
		t.Errorf("have %d networks, want 9 unique", len(r.Networks))
	}
	for _, n := range r.Networks {
		if n.GPUJoules <= 0 || n.GlobalJoules <= 0 || n.PerNetworkJoules <= 0 || n.PerLayerJoules <= 0 {
			t.Errorf("%s: non-positive energies", n.Network)
		}
	}
}

func TestArchitectureDominanceOrdering(t *testing.T) {
	// Per network: per-layer ≤ per-network ≤ global energy (more
	// specialization can only help), and all beat the GPU.
	r := explore(t)
	for _, n := range r.Networks {
		if n.PerLayerJoules > n.PerNetworkJoules*1.0000001 {
			t.Errorf("%s: per-layer (%.4g J) must beat per-network (%.4g J)",
				n.Network, n.PerLayerJoules, n.PerNetworkJoules)
		}
		if n.PerNetworkJoules > n.GlobalJoules*1.0000001 {
			t.Errorf("%s: per-network (%.4g J) must beat global (%.4g J)",
				n.Network, n.PerNetworkJoules, n.GlobalJoules)
		}
		if n.GlobalGain() <= 1 {
			t.Errorf("%s: global accelerator must beat the GPU (gain %.2f)", n.Network, n.GlobalGain())
		}
	}
}

func TestFig17GlobalGainNearPaper(t *testing.T) {
	// Paper: "the Global Accelerator system provides an average 57.8×
	// improvement to energy efficiency over the baseline."
	r := explore(t)
	got := r.MeanGlobalGain()
	if got < 45 || got > 72 {
		t.Errorf("global gain = %.1f×, want ≈57.8 (band 45-72)", got)
	}
}

func TestFig17HeterogeneityWins(t *testing.T) {
	// Paper: "Heterogeneous architectures provide up to 116× on average."
	// Our analytical model reproduces the ordering and a large per-layer
	// premium; the measured magnitude (≈85×) is below the paper's 116×
	// (see EXPERIMENTS.md).
	r := explore(t)
	global := r.MeanGlobalGain()
	perNet := r.MeanPerNetworkGain()
	perLayer := r.MeanPerLayerGain()
	if !(perLayer > perNet && perNet > global) {
		t.Errorf("gains must order per-layer > per-network > global: %.1f %.1f %.1f",
			perLayer, perNet, global)
	}
	if perLayer < 1.25*global {
		t.Errorf("per-layer premium = %.2f× over global, want ≥1.25×", perLayer/global)
	}
	if perLayer < 70 {
		t.Errorf("per-layer gain = %.1f×, want ≥70", perLayer)
	}
}

func TestPerNetworkConfigsAreHeterogeneous(t *testing.T) {
	// The per-network optima must actually differ across networks — that
	// is the premise of the heterogeneous design (Fig. 18b).
	r := explore(t)
	distinct := map[string]bool{}
	for _, n := range r.Networks {
		distinct[n.BestConfig.Name] = true
	}
	if len(distinct) < 4 {
		t.Errorf("only %d distinct per-network designs; expected real heterogeneity", len(distinct))
	}
}

func TestSpaceReturnsIndependentCopies(t *testing.T) {
	a, b := Space(), Space()
	a[0].Name = "mutated"
	a[0].PEX = 999
	if b[0].Name == "mutated" || b[0].PEX == 999 {
		t.Fatal("mutating one Space() result leaked into another")
	}
	if c := Space(); c[0].Name == "mutated" {
		t.Fatal("mutation leaked into the cached space")
	}
}

func TestExploreInvariantUnderWorkerCount(t *testing.T) {
	ref := explore(t)
	for _, w := range []int{1, 2, 8} {
		prev := par.SetDefaultWorkers(w)
		r, err := Explore(workload.Suite, accel.RTX3090Baseline)
		par.SetDefaultWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(ref, r) {
			t.Errorf("workers=%d: exploration result differs from default-worker run", w)
		}
	}
}

func TestExploreDeterministic(t *testing.T) {
	r1 := explore(t)
	r2, err := Explore(workload.Suite, accel.RTX3090Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Global != r2.Global {
		t.Error("global design must be deterministic")
	}
	for i := range r1.Networks {
		if r1.Networks[i] != r2.Networks[i] {
			t.Errorf("network %d result differs between runs", i)
		}
	}
}
