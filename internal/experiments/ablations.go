package experiments

import (
	"fmt"
	"time"

	"sudc/internal/compress"
	"sudc/internal/core"
	"sudc/internal/netsim"
	"sudc/internal/propulsion"
	"sudc/internal/solar"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// Ablations returns the design-choice studies that back DESIGN.md's
// modeling decisions. They are not paper exhibits; they quantify what
// changes if a modeling choice is made differently.
func Ablations() []Experiment {
	return []Experiment{
		{"Ablation A1", "active heat pump vs passive radiator", AblationThermal},
		{"Ablation A2", "solar EPS vs RTG power source", AblationPowerSource},
		{"Ablation A3", "thruster technology", AblationThruster},
		{"Ablation A4", "solar cell technology", AblationSolarCell},
		{"Ablation A5", "saturating vs linear ISL cost law", AblationISLLaw},
		{"Ablation A6", "compression savings with decode power charged", AblationCompressionDecode},
		{"Ablation A7", "batch size vs latency and utilization", AblationBatchSize},
	}
}

// AblationByID finds an ablation by its ID.
func AblationByID(id string) (Experiment, error) {
	for _, e := range Ablations() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown ablation %q", id)
}

// AblationThermal compares the paper's active heat-pump thermal design
// against an all-passive radiator at the cold-plate temperature.
func AblationThermal() (Table, error) {
	t := Table{
		ID:     "Ablation A1",
		Title:  "active (heat pump, 45 °C radiator) vs passive (20 °C radiator)",
		Header: []string{"compute power", "variant", "radiator m²", "pump W", "EOL kW", "wet kg", "TCO $M"},
	}
	for _, kw := range []float64{0.5, 4, 10} {
		for _, passive := range []bool{false, true} {
			c := core.DefaultConfig(units.KW(kw))
			c.PassiveThermal = passive
			d, err := c.Build()
			if err != nil {
				return Table{}, err
			}
			b, err := d.Cost()
			if err != nil {
				return Table{}, err
			}
			name := "active"
			if passive {
				name = "passive"
			}
			t.AddRow(fmt.Sprintf("%.1f kW", kw), name,
				f2(d.Thermal.Area.SquareMeters()),
				f0(float64(d.Thermal.PumpPower)),
				f2(d.EOLPower.Kilowatts()),
				f0(d.WetMass.Kilograms()),
				f1(b.TCO().Millions()))
		}
	}
	return t, nil
}

// AblationPowerSource compares the solar EPS against a radioisotope
// generator — quantifying why LEO SµDCs are solar.
func AblationPowerSource() (Table, error) {
	t := Table{
		ID:     "Ablation A2",
		Title:  "solar arrays vs GPHS-class RTG",
		Header: []string{"compute power", "source", "EPS kg", "battery kg", "TCO $M"},
	}
	rtg := solar.GPHSClass
	for _, kw := range []float64{0.1, 0.3, 0.5} {
		for _, useRTG := range []bool{false, true} {
			c := core.DefaultConfig(units.KW(kw))
			name := "solar"
			if useRTG {
				c.RTG = &rtg
				name = "RTG"
			}
			d, err := c.Build()
			if err != nil {
				return Table{}, err
			}
			b, err := d.Cost()
			if err != nil {
				return Table{}, err
			}
			t.AddRow(fmt.Sprintf("%.1f kW", kw), name,
				f0(d.EPS.TotalMass().Kilograms()),
				f0(d.EPS.BatteryMass.Kilograms()),
				f1(b.TCO().Millions()))
		}
	}
	return t, nil
}

// AblationThruster compares propulsion technologies for the 4 kW design.
func AblationThruster() (Table, error) {
	t := Table{
		ID:     "Ablation A3",
		Title:  "thruster technology on the 4 kW design",
		Header: []string{"thruster", "Isp s", "propellant kg", "wet kg", "TCO $M"},
	}
	for _, th := range []propulsion.Thruster{
		propulsion.Monopropellant, propulsion.Bipropellant, propulsion.IonThruster,
	} {
		c := core.DefaultConfig(units.KW(4))
		c.Thruster = th
		d, err := c.Build()
		if err != nil {
			return Table{}, err
		}
		b, err := d.Cost()
		if err != nil {
			return Table{}, err
		}
		t.AddRow(th.Name, f0(th.SpecificImpulse),
			f1(d.Propulsion.Propellant.Kilograms()),
			f0(d.WetMass.Kilograms()),
			f1(b.TCO().Millions()))
	}
	return t, nil
}

// AblationSolarCell compares GaAs against legacy silicon arrays.
func AblationSolarCell() (Table, error) {
	t := Table{
		ID:     "Ablation A4",
		Title:  "solar cell technology on the 4 kW design",
		Header: []string{"cell", "array m²", "array kg", "wet kg", "TCO $M"},
	}
	for _, cell := range []solar.CellTechnology{solar.TripleJunctionGaAs, solar.Silicon} {
		c := core.DefaultConfig(units.KW(4))
		c.Solar.Cell = cell
		d, err := c.Build()
		if err != nil {
			return Table{}, err
		}
		b, err := d.Cost()
		if err != nil {
			return Table{}, err
		}
		t.AddRow(cell.Name, f1(d.EPS.ArrayArea.SquareMeters()),
			f0(d.EPS.ArrayMass.Kilograms()),
			f0(d.WetMass.Kilograms()),
			f1(b.TCO().Millions()))
	}
	return t, nil
}

// AblationISLLaw compares the saturating ISL cost law against a
// linearized one (no economies of scale): the linear law reproduces
// Fig. 10's compression savings better but violates Fig. 7's cheap
// large-capacity anchor — the trade DESIGN.md documents.
func AblationISLLaw() (Table, error) {
	t := Table{
		ID:     "Ablation A5",
		Title:  "saturating vs linearized ISL cost law (TCO increase over no-ISL)",
		Header: []string{"ISL rate", "saturating 500 W", "linear 500 W", "saturating 4 kW", "linear 4 kW"},
	}
	// Linearize: push the knee far out and scale peaks to keep the
	// marginal cost at low rates identical (peak/R₀ constant).
	linear := core.DefaultConfig(units.KW(4)).ISLLink
	linear.SaturationRate *= 20
	linear.PeakPower *= 20
	linear.PeakMass *= 20
	linear.PeakCost *= 20

	tcoNoISL := map[float64]float64{}
	for _, kw := range []float64{0.5, 4} {
		c := core.DefaultConfig(units.KW(kw))
		c.OmitISL = true
		v, err := c.TCO()
		if err != nil {
			return Table{}, err
		}
		tcoNoISL[kw] = float64(v)
	}
	for _, g := range []float64{10, 25, 100, 200} {
		row := []string{fmt.Sprintf("%.0f Gbit/s", g)}
		for _, kw := range []float64{0.5, 4} {
			for _, lin := range []bool{false, true} {
				c := core.DefaultConfig(units.KW(kw))
				c.ISLRate = units.GbpsOf(g)
				if lin {
					c.ISLLink = linear
				}
				v, err := c.TCO()
				if err != nil {
					return Table{}, err
				}
				row = append(row, pct(float64(v)/tcoNoISL[kw]-1))
			}
		}
		// Reorder: sat500, lin500, sat4k, lin4k already in order.
		t.AddRow(row...)
	}
	return t, nil
}

// AblationCompressionDecode refines Figure 10: the paper's savings are
// upper bounds that ignore decompression power; this charges it.
func AblationCompressionDecode() (Table, error) {
	base := core.DefaultConfig(units.KW(4))
	plain, err := base.TCO()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Ablation A6",
		Title:  "4 kW compression savings: upper bound vs decode power charged",
		Header: []string{"algorithm", "upper-bound saving", "with decode power", "decode W"},
	}
	raw := core.DesignISLRate(units.KW(4))
	for _, alg := range compress.All() {
		upper := base
		upper.Compression = alg
		u, err := upper.TCO()
		if err != nil {
			return Table{}, err
		}
		refined := upper
		refined.IncludeDecodePower = true
		r, err := refined.TCO()
		if err != nil {
			return Table{}, err
		}
		t.AddRow(alg.Name,
			pct2(1-float64(u)/float64(plain)),
			pct2(1-float64(r)/float64(plain)),
			f1(float64(alg.DecodePower(raw))))
	}
	return t, nil
}

// AblationBatchSize sweeps the SµDC batcher: larger batches amortize
// launch overheads (modeled in the paper as energy-minimizing) but grow
// queueing latency — the Fig. 14 trade, run through the DES.
func AblationBatchSize() (Table, error) {
	app, err := workload.ByName("Crop Monitoring")
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Ablation A7",
		Title:  "batch size on the Fig. 14 pipeline (Crop Monitoring, 64 satellites)",
		Header: []string{"batch", "mean latency", "p95 latency", "worker util", "kept up"},
	}
	for _, bs := range []int{1, 4, 8, 16, 32} {
		c := netsim.DefaultConfig(app)
		c.BatchSize = bs
		c.BatchTimeout = 5 * time.Minute
		c.Duration = time.Hour
		s, err := netsim.Run(c)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(fmt.Sprintf("%d", bs),
			s.MeanLatency.Truncate(time.Second).String(),
			s.P95Latency.Truncate(time.Second).String(),
			pct(s.WorkerUtilization),
			fmt.Sprintf("%v", s.KeptUp))
	}
	return t, nil
}
