package experiments

import (
	"time"

	"sudc/internal/degrade"
	"sudc/internal/faults"
	"sudc/internal/netsim"
	"sudc/internal/reliability"
	"sudc/internal/workload"
)

// DegradationPoint is one cell of the E9 severity × eclipse-fraction
// grid: the DES-measured availability of the E7 overprovisioning
// scenario (4 workers needed + 1 spare) with the COTS degradation
// schedule layered on top.
type DegradationPoint struct {
	// Severity scales the COTS envelope; EclipseFraction is the orbit
	// fraction spent on the eclipse power budget.
	Severity, EclipseFraction float64
	// Measured is the replica-mean DES availability; Analytic the
	// fault-only binomial anchor (severity-independent — the gap is
	// what degradation costs).
	Measured, Analytic float64
	// MeanRateMult is the replica-mean time-averaged service-rate
	// multiplier; ThrottledFrac and BrownoutFrac the horizon fractions
	// spent throttled / power-capped.
	MeanRateMult, ThrottledFrac, BrownoutFrac float64
	// ProcessedFrac is the mean fraction of generated frames processed.
	ProcessedFrac float64
}

// degradationConfig is E9's base scenario: the E7 overprovisioning
// setup (need 4, one spare, deaths with MTTF = 2× horizon) over a
// 2-hour horizon that crosses a full default-EO orbit.
func degradationConfig() netsim.Config {
	c := overprovisionConfig(workload.Suite[0])
	c.Workers = c.NeedWorkers + 1
	c.Duration = 2 * time.Hour
	c.Faults = faults.Scenario{NodeMTTF: 4 * time.Hour}
	return c
}

// DegradationSweep runs the severity × eclipse-fraction grid, each cell
// averaging `replicas` independent fault schedules. The severity-0
// column is the cross-check anchor: with the whole envelope scaled to
// identity the schedule compiles away and the measured availability
// must land within 2% of reliability.MeanAvailability — E7's
// near-free-spares claim — while rising severity shows the same spare
// margin being eaten by throttle and brownout instead of deaths.
func DegradationSweep(severities, eclipseFracs []float64, replicas int) ([]DegradationPoint, error) {
	base := degradationConfig()
	horizon := base.Duration.Seconds()
	analytic, err := reliability.MeanAvailability(base.Workers, base.NeedWorkers,
		horizon/base.Faults.NodeMTTF.Seconds())
	if err != nil {
		return nil, err
	}
	points := make([]DegradationPoint, 0, len(severities)*len(eclipseFracs))
	for _, ef := range eclipseFracs {
		for _, sev := range severities {
			c := base
			p := degrade.COTSProfile(sev)
			p.EclipseFraction = ef
			c.Degrade = &p
			all, err := netsim.RunReplicas(c, replicas, 0)
			if err != nil {
				return nil, err
			}
			pt := DegradationPoint{Severity: sev, EclipseFraction: ef, Analytic: analytic}
			for _, s := range all {
				pt.Measured += s.Availability
				pt.MeanRateMult += s.MeanRateMult
				pt.ThrottledFrac += s.ThrottledTime.Seconds() / horizon
				pt.BrownoutFrac += s.BrownoutTime.Seconds() / horizon
				if s.FramesGenerated > 0 {
					pt.ProcessedFrac += float64(s.FramesProcessed) / float64(s.FramesGenerated)
				}
			}
			n := float64(len(all))
			pt.Measured /= n
			pt.MeanRateMult /= n
			pt.ThrottledFrac /= n
			pt.BrownoutFrac /= n
			pt.ProcessedFrac /= n
			points = append(points, pt)
		}
	}
	return points, nil
}

// ExtDegradation renders E9: the COTS degradation grid over the E7
// spare-provisioned SµDC.
func ExtDegradation() (Table, error) {
	points, err := DegradationSweep([]float64{0, 0.5, 1}, []float64{0.25, 0.38, 0.50}, 100)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Extension E9",
		Title:  "COTS degradation (Xing et al. calibration) over the E7 spare-provisioned SµDC",
		Header: []string{"severity", "eclipse frac", "rate mult", "throttled", "brownout", "DES availability", "fault-only analytic", "processed"},
	}
	for _, p := range points {
		t.AddRow(f2(p.Severity), f2(p.EclipseFraction), f2(p.MeanRateMult),
			pct(p.ThrottledFrac), pct(p.BrownoutFrac),
			pct(p.Measured), pct(p.Analytic), pct(p.ProcessedFrac))
	}
	return t, nil
}

// ExtSurvivability renders E10: the compressed-horizon program replay —
// the per-orbit degradation schedule collapsed to its capacity factor
// and run through the fleet-maintenance lifecycle over the full program
// horizon. Head-count availability barely moves with severity (the
// lifecycle keeps satellites flying), while capacity availability — the
// fraction of program time the degradation-adjusted fleet still meets
// the target — is what throttling breaks.
func ExtSurvivability() (Table, error) {
	t := Table{
		ID:     "Extension E10",
		Title:  "compressed-horizon survivability: COTS degradation × fleet lifecycle",
		Header: []string{"severity", "capacity factor", "units built", "head-count avail", "capacity avail", "mean capacity"},
	}
	for _, sev := range []float64{0, 0.5, 1} {
		cfg := degrade.DefaultSurvivalConfig(sev)
		r, err := degrade.Survive(cfg)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(f2(sev), f2(r.CapacityFactor), f1(r.UnitsBuilt),
			pct(r.Availability), pct(r.CapacityAvailability), f2(r.MeanCapacity))
	}
	return t, nil
}
