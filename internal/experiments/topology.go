package experiments

import (
	"fmt"
	"time"

	"sudc/internal/faults"
	"sudc/internal/netsim"
	"sudc/internal/topo"
	"sudc/internal/workload"
)

// topologyFaults is the E8 fault environment: every fault process
// active at rates that bite within the 30-minute horizon, so the
// availability column reflects degraded service, not a constant 1.
var topologyFaults = faults.Scenario{
	NodeMTTF:          3 * time.Hour,
	SEFIMTBE:          2 * time.Hour,
	SEFIRecovery:      5 * time.Minute,
	ISLOutageMTBF:     time.Hour,
	ISLOutageDuration: 2 * time.Minute,
}

// ExtShardedTopology scales a Walker constellation from a single star
// to eight planes with sparse SµDC placement, running each point
// through the sharded conservative-lookahead DES. Denser relay rings
// push a larger share of frames across cell boundaries; the table
// shows what that costs in tail latency and whether the placed SµDCs
// still keep up. Shard count never appears as a column because it
// cannot matter: results are byte-identical for any Config.Shards.
func ExtShardedTopology() (Table, error) {
	app := workload.Suite[0]
	t := Table{
		ID:     "Extension E8",
		Title:  "Walker topology scaling under faults (8 sats/plane, 5 workers/SµDC, 250 ms ISL)",
		Header: []string{"planes", "SµDCs", "frames", "cross-hops/frame", "p95 latency", "availability", "keeps up"},
	}
	for _, pt := range []struct {
		planes, sudcEvery int
	}{
		{1, 1}, // degenerate star: one plane, no ring
		{2, 1}, // every plane served locally
		{4, 2}, // alternating relay planes
		{8, 2},
		{8, 4}, // sparse placement: three relay planes per SµDC
	} {
		g, err := topo.Walker(pt.planes, 8, 5, pt.sudcEvery, 250*time.Millisecond)
		if err != nil {
			return Table{}, err
		}
		c := netsim.TopologyConfig(app, g)
		c.BatchSize = 4
		c.BatchTimeout = 30 * time.Second
		c.Duration = 30 * time.Minute
		c.Faults = topologyFaults
		c.RetryLimit = 4
		c.ShedThreshold = 200
		c.Seed = 11
		s, err := netsim.Run(c)
		if err != nil {
			return Table{}, err
		}
		sudcs := (pt.planes + pt.sudcEvery - 1) / pt.sudcEvery
		keeps := "yes"
		if !s.KeptUp {
			keeps = "NO"
		}
		// CrossShardFrames counts boundary crossings, so a frame relayed
		// through k cells contributes k — the ratio is hops per frame.
		t.AddRow(fmt.Sprintf("%d", pt.planes), fmt.Sprintf("%d", sudcs),
			fmt.Sprintf("%d", s.FramesGenerated),
			f2(float64(s.CrossShardFrames)/float64(s.FramesGenerated)),
			fmt.Sprintf("%.1fs", s.P95Latency.Seconds()),
			pct(s.Availability), keeps)
	}
	return t, nil
}
