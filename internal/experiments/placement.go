package experiments

// Extension E11: the "when to compute in space" frontier. The
// four-tier placement engine routes one application stream across the
// onboard / SµDC / ground-edge / cloud tiers while the sweep varies
// traffic intensity (frames per minute per satellite) and downlink
// capacity. Space-side $/frame amortizes the fixed SµDC TCO over the
// offered stream, so goodput-per-TCO-dollar rises with traffic until
// it crosses the bent-pipe-to-cloud line — the paper's demand-side
// argument for computing in space — while shrinking downlink capacity
// moves the crossover earlier by starving the bent pipe. The offline
// Oracle floor lower-bounds every realized policy at every sweep
// point, and the low-load cells are cross-checked against the
// Erlang-C M/M/c wait.

import (
	"fmt"
	"time"

	"sudc/internal/netsim"
	"sudc/internal/placement"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// PlacementPoint is one cell of the E11 traffic × downlink grid.
type PlacementPoint struct {
	// FramesPerMinute is the per-satellite capture rate; DownlinkGbps
	// the constellation-aggregate downlink capacity.
	FramesPerMinute float64
	DownlinkGbps    float64

	// SpaceCost .. QueueCost are the DES-realized mean per-frame costs
	// ($ + latency-weighted seconds) under static-to-space,
	// static-to-cloud, greedy, and queue-aware placement. OracleCost is
	// the analytic per-frame floor no policy can beat.
	SpaceCost, CloudCost, GreedyPolCost, QueuePolCost, OracleCost float64

	// SpacePerDollar and CloudPerDollar are goodput per TCO dollar:
	// frames actually processed divided by what the tier charges for
	// the whole offered stream. Saturation (shed frames, a starved
	// downlink) lowers them; SpaceWins marks the frontier.
	SpacePerDollar, CloudPerDollar float64
	SpaceWins                      bool

	// EdgeWaitDES is the measured ground-edge queueing wait (mean
	// latency above the transport+service floor) under static-to-edge;
	// EdgeWaitMMc the Erlang-C wait of the matching M/M/c system. At
	// low load both sit at ≈0 — the analytic anchor.
	EdgeWaitDES, EdgeWaitMMc float64
}

// placementScenario derives the E11 pricing scenario for one traffic
// intensity.
func placementScenario(app workload.App, fpm float64) placement.Scenario {
	s := placement.DefaultScenario(app)
	s.FramesPerMinute = fpm
	return s
}

// placementConfig lowers one sweep cell into a DES configuration for
// the given policy.
func placementConfig(app workload.App, fpm, gbps float64, p placement.Policy) (netsim.Config, error) {
	pc, err := placementScenario(app, fpm).Config(p)
	if err != nil {
		return netsim.Config{}, err
	}
	pc.DownlinkRate = units.GbpsOf(gbps)
	c := netsim.DefaultConfig(app)
	c.Constellation.FramesPerMinute = fpm
	c.Duration = 30 * time.Minute
	c.Placement = pc
	return c, nil
}

// PlacementSweep runs the E11 grid. Each cell runs the DES once per
// policy — static-to-space, static-to-cloud, static-to-edge (the
// M/M/c anchor), greedy, and queue-aware — over a 30-minute horizon of
// the 64-satellite reference constellation.
func PlacementSweep(app workload.App, fpms, downlinkGbps []float64) ([]PlacementPoint, error) {
	points := make([]PlacementPoint, 0, len(fpms)*len(downlinkGbps))
	for _, gbps := range downlinkGbps {
		for _, fpm := range fpms {
			pt := PlacementPoint{FramesPerMinute: fpm, DownlinkGbps: gbps}

			run := func(p placement.Policy) (netsim.Stats, *placement.Config, error) {
				c, err := placementConfig(app, fpm, gbps, p)
				if err != nil {
					return netsim.Stats{}, nil, err
				}
				s, err := netsim.Run(c)
				return s, c.Placement, err
			}

			space, pc, err := run(placement.Policy{Kind: placement.Static, StaticTier: placement.TierSpace})
			if err != nil {
				return nil, err
			}
			cloud, _, err := run(placement.Policy{Kind: placement.Static, StaticTier: placement.TierCloud})
			if err != nil {
				return nil, err
			}
			edge, _, err := run(placement.Policy{Kind: placement.Static, StaticTier: placement.TierGroundEdge})
			if err != nil {
				return nil, err
			}
			greedy, _, err := run(placement.Policy{Kind: placement.GreedyCost})
			if err != nil {
				return nil, err
			}
			queue, _, err := run(placement.Policy{Kind: placement.QueueAware})
			if err != nil {
				return nil, err
			}

			pt.SpaceCost = space.PlacedMeanCost
			pt.CloudCost = cloud.PlacedMeanCost
			pt.GreedyPolCost = greedy.PlacedMeanCost
			pt.QueuePolCost = queue.PlacedMeanCost
			pt.OracleCost = pc.Model.OracleCost()

			// Goodput per TCO dollar charges each tier for the whole
			// offered stream: frames the run shed or stranded in a starved
			// downlink earn nothing but still cost their amortized share.
			spaceDollars := pc.Model.Tiers[placement.TierSpace].DollarsPerFrame * float64(space.FramesGenerated)
			cloudDollars := pc.Model.Tiers[placement.TierCloud].DollarsPerFrame * float64(cloud.FramesGenerated)
			if spaceDollars > 0 {
				pt.SpacePerDollar = float64(space.FramesProcessed) / spaceDollars
			}
			if cloudDollars > 0 {
				pt.CloudPerDollar = float64(cloud.FramesProcessed) / cloudDollars
			}
			pt.SpaceWins = pt.SpacePerDollar > pt.CloudPerDollar

			// M/M/c anchor at the ground edge: measured wait above the
			// deterministic floor vs the Erlang-C wait at the same load.
			ec := pc.Model.Tiers[placement.TierGroundEdge]
			floor := app.FrameBits()/pc.Ratio()/float64(pc.DownlinkRate) +
				pc.AccessDelay.Seconds() + ec.ServiceTime
			pt.EdgeWaitDES = edge.TierMeanLatency[placement.TierGroundEdge].Seconds() - floor
			lambda := fpm / 60 * 64
			pt.EdgeWaitMMc = placement.MMcWait(lambda, 1/ec.ServiceTime, ec.Servers)

			points = append(points, pt)
		}
	}
	return points, nil
}

// ExtPlacement renders E11.
func ExtPlacement() (Table, error) {
	points, err := PlacementSweep(workload.Suite[0],
		[]float64{0.5, 2, 6, 24}, []float64{1, 10})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "Extension E11",
		Title: "when to compute in space: goodput per TCO dollar vs bent pipe, four-tier placement",
		Header: []string{"frames/min", "downlink Gbps", "space fr/$", "cloud fr/$", "winner",
			"$space", "$cloud", "$greedy", "$queue", "$oracle", "edge wait DES", "edge wait M/M/c"},
	}
	for _, p := range points {
		winner := "bent pipe"
		if p.SpaceWins {
			winner = "space"
		}
		t.AddRow(f1(p.FramesPerMinute), f1(p.DownlinkGbps),
			g3(p.SpacePerDollar), g3(p.CloudPerDollar), winner,
			g3(p.SpaceCost), g3(p.CloudCost), g3(p.GreedyPolCost), g3(p.QueuePolCost), g3(p.OracleCost),
			g3(p.EdgeWaitDES), g3(p.EdgeWaitMMc))
	}
	return t, nil
}

// g3 renders small dollar and second magnitudes without drowning them
// in fixed-point zeros.
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
