package experiments

import (
	"fmt"

	"sudc/internal/constellation"
	"sudc/internal/core"
	"sudc/internal/reliability"
	"sudc/internal/units"
	"sudc/internal/wright"
)

// Fig19 reproduces Figure 19: relative TCO of the SµDC serving a
// constellation as the EO satellites' edge filtering rate improves
// (baseline: the 4 kW SµDC at zero filtering).
func Fig19() (Table, error) {
	base := core.DefaultConfig(units.KW(4))
	zero, err := constellation.CollaborativeConfig(base, 0, 1)
	if err != nil {
		return Table{}, err
	}
	ref, err := zero.TCO()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Figure 19",
		Title:  "relative TCO vs edge filtering rate (baseline: 4 kW SµDC)",
		Header: []string{"filter rate", "SµDC compute", "relative TCO"},
	}
	phis := []float64{0, 0.1, 0.25, 1.0 / 3, 0.5, 2.0 / 3, 0.8, 0.9}
	cfgs := make([]core.Config, len(phis))
	for i, phi := range phis {
		cfg, err := constellation.CollaborativeConfig(base, phi, 1)
		if err != nil {
			return Table{}, err
		}
		cfgs[i] = cfg
	}
	tcos, err := core.SweepTCO(cfgs)
	if err != nil {
		return Table{}, err
	}
	for i, phi := range phis {
		t.AddRow(f2(phi), cfgs[i].ComputePower.String(), f2(float64(tcos[i])/float64(ref)))
	}
	return t, nil
}

// Fig21 reproduces Figure 21: TCO improvement from a collaborative compute
// constellation vs hardware energy-efficiency factor and filtering rate.
// The three architecture rows use the DSE-measured efficiency factors for
// the commodity GPU, the global accelerator and the per-layer
// (heterogeneous) accelerator.
func Fig21() (Table, error) {
	r, err := DSEResult()
	if err != nil {
		return Table{}, err
	}
	archs := []struct {
		name string
		e    float64
	}{
		{"commodity GPU", 1},
		{"global accelerator", r.MeanGlobalGain()},
		{"heterogeneous (per-layer)", r.MeanPerLayerGain()},
	}
	base := core.DefaultConfig(units.KW(4))
	t := Table{
		ID:     "Figure 21",
		Title:  "collaborative-constellation TCO improvement (×) vs filtering rate",
		Header: []string{"architecture", "eff ×", "φ=1/3", "φ=1/2", "φ=2/3 (cloud filtering)"},
	}
	for _, a := range archs {
		row := []string{a.name, f1(a.e)}
		imps, err := constellation.ImprovementSweep(base, []float64{1.0 / 3, 0.5, 2.0 / 3}, a.e)
		if err != nil {
			return Table{}, err
		}
		for _, imp := range imps {
			row = append(row, f2(imp)+"×")
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig22 reproduces Figure 22: Wright's-law marginal satellite cost vs
// cumulative units for the three reference design points at b = 0.75.
func Fig22() (Table, error) {
	t := Table{
		ID:     "Figure 22",
		Title:  "marginal satellite cost vs units produced (b = 0.75, $M)",
		Header: []string{"unit #", "500 W", "4 kW", "10 kW"},
	}
	type point struct {
		nre, re units.Dollars
	}
	costs := make([]point, 0, 3)
	for _, p := range referencePowers {
		b, err := core.DefaultConfig(p).Breakdown()
		if err != nil {
			return Table{}, err
		}
		tot := b.Total()
		costs = append(costs, point{nre: tot.NRE, re: tot.RE})
	}
	for _, n := range []int{1, 2, 5, 10, 25, 50, 100} {
		row := []string{fmt.Sprintf("%d", n)}
		for _, c := range costs {
			unit, err := wright.DefaultAerospace.UnitCost(c.re, n)
			if err != nil {
				return Table{}, err
			}
			if n == 1 {
				unit += c.nre // the first unit carries the NRE
			}
			row = append(row, f1(unit.Millions()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig23 reproduces Figure 23: total constellation cost (NRE + learning-
// discounted RE) vs the number of satellites sharing a fixed 32 kW
// aggregate compute target, for several progress ratios.
func Fig23() (Table, error) {
	ratios := []float64{0.65, 0.70, 0.75, 0.80, 0.85}
	costFn := func(per units.Power) (units.Dollars, units.Dollars, error) {
		b, err := core.DefaultConfig(per).Breakdown()
		if err != nil {
			return 0, 0, err
		}
		tot := b.Total()
		return tot.NRE, tot.RE, nil
	}
	const maxN = 10
	sweeps := make([][]wright.Point, len(ratios))
	for i, b := range ratios {
		pts, err := wright.Curve{ProgressRatio: b}.Sweep(units.KW(32), maxN, costFn)
		if err != nil {
			return Table{}, err
		}
		sweeps[i] = pts
	}
	t := Table{
		ID:     "Figure 23",
		Title:  "constellation TCO ($M) vs # satellites at 32 kW aggregate",
		Header: []string{"# satellites", "b=0.65", "b=0.70", "b=0.75", "b=0.80", "b=0.85"},
	}
	for n := 1; n <= maxN; n++ {
		row := []string{fmt.Sprintf("%d", n)}
		for i := range ratios {
			row = append(row, f1(sweeps[i][n-1].Total.Millions()))
		}
		t.AddRow(row...)
	}
	best := []string{"optimum N"}
	for i := range ratios {
		b, err := wright.Best(sweeps[i])
		if err != nil {
			return Table{}, err
		}
		best = append(best, fmt.Sprintf("%d", b.Satellites))
	}
	t.AddRow(best...)
	return t, nil
}

// overprovisioningFactors are Figure 24/25's node counts (10 needed).
var overprovisioningFactors = []int{10, 15, 20, 25, 30}

// Fig24 reproduces Figure 24: the probability that at least 10 servers
// work vs time, for overprovisioning factors n = 10…30.
func Fig24() (Table, error) {
	t := Table{
		ID:     "Figure 24",
		Title:  "P(≥10 servers alive) vs time (in MTTF units)",
		Header: []string{"t/T", "n=10", "n=15", "n=20", "n=25", "n=30"},
	}
	for _, tt := range []float64{0, 0.25, 0.46, 0.5, 0.8, 1.0, 1.25, 1.43, 1.89, 2.5} {
		row := []string{f2(tt)}
		for _, n := range overprovisioningFactors {
			a, err := reliability.Availability(n, 10, tt)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmt.Sprintf("%.4f", a))
		}
		t.AddRow(row...)
	}
	row := []string{"t @ P=1%"}
	for _, n := range overprovisioningFactors {
		v, err := reliability.TimeToAvailability(n, 10, 0.01)
		if err != nil {
			return Table{}, err
		}
		row = append(row, f2(v))
	}
	t.AddRow(row...)
	return t, nil
}

// Fig25 reproduces Figure 25: the expected number of working servers
// (capped at 10 by the power budget) vs time.
func Fig25() (Table, error) {
	t := Table{
		ID:     "Figure 25",
		Title:  "E[min(10, working servers)] vs time (in MTTF units)",
		Header: []string{"t/T", "n=10", "n=15", "n=20", "n=25", "n=30"},
	}
	for _, tt := range []float64{0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5} {
		row := []string{f2(tt)}
		for _, n := range overprovisioningFactors {
			e, err := reliability.ExpectedWorking(n, 10, tt)
			if err != nil {
				return Table{}, err
			}
			row = append(row, f2(e))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig26 reproduces Figure 26: total ionizing dose before failure vs
// technology node, against the 5-year LEO mission dose.
func Fig26() (Table, error) {
	t := Table{
		ID:     "Figure 26",
		Title:  "TID before failure vs technology node (5-yr LEO dose ≈ 2.5 krad)",
		Header: []string{"processor", "node (nm)", "TID (krad)", "censored", "margin over 5-yr LEO"},
	}
	const fiveYearLEOKrad = 2.5
	for _, r := range reliability.TIDDataset() {
		cens := ""
		if r.NoFailure {
			cens = "no failure observed"
		}
		t.AddRow(r.Processor, f0(r.TechNodeNm), f0(r.ToleranceKrad), cens,
			f1(r.ToleranceKrad/fiveYearLEOKrad)+"×")
	}
	return t, nil
}

// Fig27 reproduces Figure 27: ImageNet accuracy vs soft-error flux under
// the paper's pessimistic every-upset-misclassifies assumption.
func Fig27() (Table, error) {
	fluxes := []float64{0, 0.01, 0.05, 0.1, 0.5, 1}
	t := Table{
		ID:     "Figure 27",
		Title:  "ImageNet top-1 accuracy vs upset flux (upsets/Mbit/s)",
		Header: []string{"network", "0", "0.01", "0.05", "0.1", "0.5", "1"},
	}
	for _, n := range reliability.SoftErrorSuite() {
		row := []string{n.Name}
		for _, f := range fluxes {
			a, err := n.AccuracyUnderFlux(f)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmt.Sprintf("%.3f", a))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig28 reproduces Figure 28: relative TCO of TMR, DMR and software
// redundancy for equivalent computing powers of 0.5–4 kW. The baseline is
// the unprotected SµDC at each equivalent power.
func Fig28() (Table, error) {
	t := Table{
		ID:     "Figure 28",
		Title:  "relative TCO of redundancy schemes (baseline: unprotected, per power level)",
		Header: []string{"equivalent power", "TMR", "DMR", "software"},
	}
	// One parallel sweep over the power × scheme grid, with each power's
	// unprotected baseline leading its stripe.
	powers := []float64{0.5, 1, 2, 4}
	schemes := reliability.Schemes()
	stride := 1 + len(schemes)
	cfgs := make([]core.Config, 0, len(powers)*stride)
	for _, kw := range powers {
		cfgs = append(cfgs, core.DefaultConfig(units.KW(kw)))
		for _, s := range schemes {
			cfgs = append(cfgs, core.DefaultConfig(units.Power(kw*1000*s.PowerOverhead)))
		}
	}
	tcos, err := core.SweepTCO(cfgs)
	if err != nil {
		return Table{}, err
	}
	for ki, kw := range powers {
		base := tcos[ki*stride]
		row := []string{fmt.Sprintf("%.1f kW", kw)}
		for si := range schemes {
			row = append(row, f2(float64(tcos[ki*stride+1+si])/float64(base)))
		}
		t.AddRow(row...)
	}
	return t, nil
}
