package experiments

import (
	"fmt"
	"time"

	"sudc/internal/constellation"
	"sudc/internal/core"
	"sudc/internal/faults"
	"sudc/internal/netsim"
	"sudc/internal/obs/latency"
	"sudc/internal/obs/trace"
	"sudc/internal/reliability"
	"sudc/internal/sscm"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// OverprovisionPoint is one spare-count setting of the overprovisioning
// sweep: the DES-measured availability under injected node deaths next
// to its analytic binomial anchor, plus the TCO share the spares add.
type OverprovisionPoint struct {
	// Spares and Nodes describe the configuration: Nodes = need + Spares.
	Spares, Nodes int
	// Need is the worker count defining full service.
	Need int
	// Measured is the mean DES availability over the replicas; Analytic
	// is reliability.MeanAvailability at the same (n, need, horizon/MTTF).
	Measured, Analytic float64
	// DegradedFraction is the mean fraction of the run spent below the
	// installed worker count (any fault active).
	DegradedFraction float64
	// SpareTCOShare is the fraction of the SµDC's total cost of ownership
	// the spare compute nodes add (compute hardware only — cold spares
	// draw no power and need no extra solar or thermal capacity).
	SpareTCOShare float64
}

// overprovisionConfig is the sweep's base scenario: a small constellation
// feeding a 4-worker SµDC whose nodes die with MTTF = 2× the simulated
// horizon, so availability visibly decays within a run.
func overprovisionConfig(app workload.App) netsim.Config {
	c := netsim.DefaultConfig(app)
	c.Constellation = constellation.Constellation{Satellites: 2, FramesPerMinute: 6}
	c.Workers = 4
	c.NeedWorkers = 4
	c.BatchSize = 4
	c.BatchTimeout = 30 * time.Second
	c.Duration = 2 * time.Hour
	c.Faults = faults.Scenario{NodeMTTF: 4 * time.Hour}
	c.Seed = 11
	return c
}

// OverprovisionSweep sweeps spare compute nodes (n = need … need+4) and
// cross-checks the DES-measured availability against the closed-form
// binomial model — the paper's §VII overprovisioning argument replayed
// through the fault-injection engine. Each spare count averages the
// time-averaged availability of `replicas` independent fault schedules.
func OverprovisionSweep(replicas int) ([]OverprovisionPoint, error) {
	base := overprovisionConfig(workload.Suite[0])
	need := base.NeedWorkers
	horizonOverT := base.Duration.Seconds() / base.Faults.NodeMTTF.Seconds()

	b, err := core.DefaultConfig(units.KW(4)).Breakdown()
	if err != nil {
		return nil, err
	}
	computeShare := b.Share(sscm.PayloadCompute)

	points := make([]OverprovisionPoint, 0, 5)
	for spares := 0; spares <= 4; spares++ {
		c := base
		c.Workers = need + spares
		all, err := netsim.RunReplicas(c, replicas, 0)
		if err != nil {
			return nil, err
		}
		var availSum, degSum float64
		for _, s := range all {
			availSum += s.Availability
			degSum += s.DegradedFraction
		}
		analytic, err := reliability.MeanAvailability(need+spares, need, horizonOverT)
		if err != nil {
			return nil, err
		}
		points = append(points, OverprovisionPoint{
			Spares:           spares,
			Nodes:            need + spares,
			Need:             need,
			Measured:         availSum / float64(len(all)),
			Analytic:         analytic,
			DegradedFraction: degSum / float64(len(all)),
			SpareTCOShare:    computeShare * float64(spares) / float64(need),
		})
	}
	return points, nil
}

// OverprovisionTraceCheck replays one spare-count setting of the E7
// scenario with the frame-lineage flight recorder attached and
// recomputes each replica's availability from the trace's fault events
// alone (latency.AvailabilityFromTrace). It returns the replica-mean
// availability both ways — DES-measured and trace-derived. The two are
// equal to float64 rounding: the recording carries enough causal
// information to reproduce the paper's availability numbers after the
// fact, which is what makes saved traces trustworthy evidence.
func OverprovisionTraceCheck(spares, replicas int) (des, fromTrace float64, err error) {
	if spares < 0 || replicas < 1 {
		return 0, 0, fmt.Errorf("experiments: bad trace check (spares %d, replicas %d)", spares, replicas)
	}
	c := overprovisionConfig(workload.Suite[0])
	c.Workers = c.NeedWorkers + spares
	rec := trace.New(0)
	c.Trace = rec
	all, err := netsim.RunReplicas(c, replicas, 0)
	if err != nil {
		return 0, 0, err
	}
	horizon := c.Duration.Seconds()
	for r, s := range all {
		des += s.Availability
		events := rec.Child(fmt.Sprintf("r%03d", r)).Events()
		fromTrace += latency.AvailabilityFromTrace(events, c.Workers, c.NeedWorkers, horizon)
	}
	n := float64(len(all))
	return des / n, fromTrace / n, nil
}

// ExtOverprovision renders the overprovisioning sweep: DES availability
// vs the analytic binomial anchor, and the near-zero TCO cost of spares.
func ExtOverprovision() (Table, error) {
	points, err := OverprovisionSweep(200)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Extension E7",
		Title:  "overprovisioning a 4-worker SµDC under injected node deaths (MTTF = 2× horizon)",
		Header: []string{"spares", "nodes", "DES availability", "analytic", "|Δ|", "degraded time", "spare TCO"},
	}
	for _, p := range points {
		delta := p.Measured - p.Analytic
		if delta < 0 {
			delta = -delta
		}
		t.AddRow(fmt.Sprintf("%d", p.Spares), fmt.Sprintf("%d", p.Nodes),
			pct(p.Measured), pct(p.Analytic), pct2(delta),
			pct(p.DegradedFraction), pct2(p.SpareTCOShare))
	}
	return t, nil
}
