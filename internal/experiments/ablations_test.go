package experiments

import (
	"testing"
	"time"
)

func TestAllAblationsRun(t *testing.T) {
	abl := Ablations()
	if len(abl) != 7 {
		t.Fatalf("have %d ablations, want 7", len(abl))
	}
	for _, e := range abl {
		tbl, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		for ri, r := range tbl.Rows {
			if len(r) != len(tbl.Header) {
				t.Errorf("%s row %d: %d cells for %d columns", e.ID, ri, len(r), len(tbl.Header))
			}
		}
	}
}

func TestAblationByID(t *testing.T) {
	if _, err := AblationByID("Ablation A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationByID("Ablation A99"); err == nil {
		t.Error("unknown ablation must error")
	}
}

func TestAblationThermalTrade(t *testing.T) {
	tbl := run(t, AblationThermal)
	// Rows alternate active/passive per power level.
	for i := 0; i+1 < len(tbl.Rows); i += 2 {
		active, passive := tbl.Rows[i], tbl.Rows[i+1]
		if parseCell(t, passive[2]) <= parseCell(t, active[2]) {
			t.Errorf("%s: passive radiator must be larger", active[0])
		}
		if parseCell(t, passive[3]) != 0 {
			t.Errorf("%s: passive pump power must be 0", active[0])
		}
		if parseCell(t, passive[4]) >= parseCell(t, active[4]) {
			t.Errorf("%s: passive EOL power must be lower (no pump)", active[0])
		}
	}
}

func TestAblationPowerSourceRTGLoses(t *testing.T) {
	tbl := run(t, AblationPowerSource)
	for i := 0; i+1 < len(tbl.Rows); i += 2 {
		sol, rtg := tbl.Rows[i], tbl.Rows[i+1]
		if parseCell(t, rtg[4]) <= parseCell(t, sol[4]) {
			t.Errorf("%s: RTG must cost more than solar at LEO", sol[0])
		}
		if parseCell(t, rtg[3]) != 0 {
			t.Error("RTG flies no battery")
		}
	}
}

func TestAblationThrusterIonSavesPropellant(t *testing.T) {
	tbl := run(t, AblationThruster)
	if len(tbl.Rows) != 3 {
		t.Fatal("want 3 thrusters")
	}
	monoProp := parseCell(t, tbl.Rows[0][2])
	ionProp := parseCell(t, tbl.Rows[2][2])
	if ionProp >= monoProp/5 {
		t.Errorf("ion propellant (%v kg) must be far below monoprop (%v kg)", ionProp, monoProp)
	}
}

func TestAblationSolarCellSiliconHeavier(t *testing.T) {
	tbl := run(t, AblationSolarCell)
	gaas, si := tbl.Rows[0], tbl.Rows[1]
	if parseCell(t, si[1]) <= parseCell(t, gaas[1]) {
		t.Error("silicon array must be larger")
	}
	if parseCell(t, si[4]) <= parseCell(t, gaas[4]) {
		t.Error("silicon design must cost more (mass cascade)")
	}
}

func TestAblationISLLawDiverges(t *testing.T) {
	tbl := run(t, AblationISLLaw)
	// At 200 Gbit/s the linear law must be far costlier than saturating.
	last := tbl.Rows[len(tbl.Rows)-1]
	if parseCell(t, last[2]) <= parseCell(t, last[1]) {
		t.Error("linear 500 W must exceed saturating at high rates")
	}
	if parseCell(t, last[4]) <= 1.5*parseCell(t, last[3]) {
		t.Error("linear 4 kW must far exceed saturating at 200 Gbit/s")
	}
}

func TestAblationDecodePowerShrinksSavings(t *testing.T) {
	tbl := run(t, AblationCompressionDecode)
	for _, r := range tbl.Rows {
		upper := parseCell(t, r[1])
		refined := parseCell(t, r[2])
		if refined >= upper {
			t.Errorf("%s: decode power must shrink the saving (%v vs %v)", r[0], refined, upper)
		}
		if refined <= 0 {
			t.Errorf("%s: compression must still pay off net of decode power", r[0])
		}
	}
}

func TestAblationBatchSizeLatencyGrows(t *testing.T) {
	tbl := run(t, AblationBatchSize)
	if len(tbl.Rows) != 5 {
		t.Fatal("want 5 batch sizes")
	}
	// Latency at batch 32 exceeds latency at batch 1.
	first := tbl.Rows[0][1]
	last := tbl.Rows[len(tbl.Rows)-1][1]
	d1, err1 := parseDuration(first)
	d2, err2 := parseDuration(last)
	if err1 != nil || err2 != nil {
		t.Fatalf("bad durations %q %q", first, last)
	}
	if d2 <= d1 {
		t.Errorf("batch 32 latency (%v) must exceed batch 1 (%v)", d2, d1)
	}
}

func parseDuration(s string) (time.Duration, error) { return time.ParseDuration(s) }
