package experiments

import (
	"fmt"

	"sudc/internal/compress"
	"sudc/internal/core"
	"sudc/internal/hardware"
	"sudc/internal/solar"
	"sudc/internal/sscm"
	"sudc/internal/terrestrial"
	"sudc/internal/thermal"
	"sudc/internal/units"
)

// referencePowers are the paper's three headline design points.
var referencePowers = []units.Power{units.KW(0.5), units.KW(4), units.KW(10)}

// TableI prints the derivations behind the SSCM-SµDC input parameters for
// the 4 kW reference design — the quantities Table I of the paper derives.
func TableI() (Table, error) {
	d, err := core.DefaultConfig(units.KW(4)).Build()
	if err != nil {
		return Table{}, err
	}
	sc := solar.DefaultConfig()
	t := Table{
		ID:     "Table I",
		Title:  "SSCM-SµDC input parameter derivations (4 kW reference design)",
		Header: []string{"parameter", "value", "derivation"},
	}
	t.AddRow("compute payload power", d.ComputePower.String(), "design variable")
	t.AddRow("ISL rate", d.InstalledISLRate.String(), "geomean workload saturation")
	t.AddRow("ISL power", d.ISL.Power.String(), "saturating link law")
	t.AddRow("heat-pump power", d.Thermal.PumpPower.String(), "heat load / CoP")
	t.AddRow("EOL system power", d.EOLPower.String(), "payload + bus + pump")
	t.AddRow("BOL array power", units.Power(d.Drivers.BOLPower).String(),
		fmt.Sprintf("EOL / (eclipse·PMAD·(1-%.3f)^L)", sc.Cell.AnnualDegradation))
	t.AddRow("solar array area", d.EPS.ArrayArea.String(), "BOL / (S·η·ID)")
	t.AddRow("radiator area", d.Thermal.Area.String(), "Q / εσ(T⁴-T_s⁴)·2 faces")
	t.AddRow("battery capacity", fmt.Sprintf("%.1f kWh", d.EPS.BatteryCapacity.WattHours()/1e3), "eclipse load / DoD")
	t.AddRow("propellant mass", d.Propulsion.Propellant.String(), "m_dry(e^{Δv/vₑ}-1)")
	t.AddRow("dry mass", d.DryMass.String(), "fixed-point mass closure")
	t.AddRow("wet mass", d.WetMass.String(), "dry + propellant")
	t.AddRow("C&DH rate (X-band eq.)", fmt.Sprintf("%.0f Mbit/s", d.Drivers.CDHRateMbps), "FSO / (FSO:X-band ratio)")
	return t, nil
}

// Fig3 reproduces Figure 3: the subsystem cost breakdown of a 4 kW SµDC
// under the SSCM-SµDC-like and SEER-like parameter sets.
func Fig3() (Table, error) {
	d, err := core.DefaultConfig(units.KW(4)).Build()
	if err != nil {
		return Table{}, err
	}
	ref, err := sscm.Reference().Estimate(d.Drivers)
	if err != nil {
		return Table{}, err
	}
	alt, err := sscm.Alt().Estimate(d.Drivers)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Figure 3",
		Title:  "4 kW SµDC subsystem cost shares: SSCM-SµDC vs SEER-like",
		Header: []string{"subsystem", "SSCM-SµDC", "SEER-like"},
	}
	for _, s := range sscm.Subsystems() {
		t.AddRow(s.String(), pct(ref.Share(s)), pct(alt.Share(s)))
	}
	t.AddRow("power+thermal", pct(ref.Share(sscm.Power)+ref.Share(sscm.Thermal)),
		pct(alt.Share(sscm.Power)+alt.Share(sscm.Thermal)))
	return t, nil
}

// Fig4 reproduces Figure 4: TCO vs lifetime for 0.5/4/10 kW SµDCs,
// relative to the 500 W SµDC with a one-year lifetime. The 19-point
// lifetime × power grid is evaluated in one parallel sweep.
func Fig4() (Table, error) {
	years := []int{1, 2, 3, 5, 7, 10}
	base := core.DefaultConfig(units.KW(0.5))
	base.Lifetime = 1
	cfgs := []core.Config{base} // index 0 is the baseline
	for _, yr := range years {
		for _, p := range referencePowers {
			c := core.DefaultConfig(p)
			c.Lifetime = units.Years(yr)
			cfgs = append(cfgs, c)
		}
	}
	tcos, err := core.SweepTCO(cfgs)
	if err != nil {
		return Table{}, err
	}
	ref := tcos[0]
	t := Table{
		ID:     "Figure 4",
		Title:  "relative TCO vs lifetime (baseline: 500 W, 1 yr)",
		Header: []string{"lifetime (yr)", "500 W", "4 kW", "10 kW"},
	}
	for yi, yr := range years {
		row := []string{fmt.Sprintf("%d", yr)}
		for pi := range referencePowers {
			v := tcos[1+yi*len(referencePowers)+pi]
			row = append(row, f2(float64(v)/float64(ref)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig5 reproduces Figure 5: total and subsystem-level TCO vs compute
// power, normalized to the 500 W total.
func Fig5() (Table, error) {
	base, err := core.DefaultConfig(units.KW(0.5)).Breakdown()
	if err != nil {
		return Table{}, err
	}
	ref := float64(base.TCO())
	groups := []struct {
		name string
		subs []sscm.Subsystem
	}{
		{"power+thermal", []sscm.Subsystem{sscm.Power, sscm.Thermal}},
		{"structure+prop", []sscm.Subsystem{sscm.Structure, sscm.Propulsion}},
		{"avionics", []sscm.Subsystem{sscm.ADCS, sscm.CDH, sscm.TTC}},
		{"compute hw", []sscm.Subsystem{sscm.PayloadCompute}},
		{"comms", []sscm.Subsystem{sscm.FSOComm}},
		{"wraps+launch+ops", []sscm.Subsystem{sscm.IAT, sscm.ProgramMgmt, sscm.LOOS, sscm.Launch, sscm.Operations}},
	}
	t := Table{
		ID:     "Figure 5",
		Title:  "relative TCO vs compute power (baseline: 500 W total)",
		Header: []string{"compute power", "total", "power+thermal", "structure+prop", "avionics", "compute hw", "comms", "wraps+launch+ops", "compute hw share"},
	}
	for _, kw := range []float64{0.5, 1, 2, 4, 6, 8, 10} {
		b, err := core.DefaultConfig(units.KW(kw)).Breakdown()
		if err != nil {
			return Table{}, err
		}
		row := []string{fmt.Sprintf("%.1f kW", kw), f2(float64(b.TCO()) / ref)}
		for _, g := range groups {
			var sum units.Dollars
			for _, s := range g.subs {
				sum += b.Items[s].FirstUnit()
			}
			row = append(row, f2(float64(sum)/ref))
		}
		row = append(row, pct(b.Share(sscm.PayloadCompute)))
		t.AddRow(row...)
	}
	return t, nil
}

// Fig6 reproduces Figure 6: satellite mass breakdown vs compute power,
// normalized to the 500 W total mass.
func Fig6() (Table, error) {
	base, err := core.DefaultConfig(units.KW(0.5)).Build()
	if err != nil {
		return Table{}, err
	}
	ref := float64(base.WetMass)
	t := Table{
		ID:     "Figure 6",
		Title:  "relative mass vs compute power (baseline: 500 W total mass)",
		Header: []string{"compute power", "total", "compute", "power", "thermal", "structure", "propellant", "other", "compute share"},
	}
	for _, kw := range []float64{0.5, 1, 2, 4, 6, 8, 10} {
		d, err := core.DefaultConfig(units.KW(kw)).Build()
		if err != nil {
			return Table{}, err
		}
		other := d.WetMass - d.ComputeMass - d.EPS.TotalMass() - d.Thermal.TotalMass() -
			d.StructureMass - d.Propulsion.Propellant
		t.AddRow(fmt.Sprintf("%.1f kW", kw),
			f2(float64(d.WetMass)/ref),
			f2(float64(d.ComputeMass)/ref),
			f2(float64(d.EPS.TotalMass())/ref),
			f2(float64(d.Thermal.TotalMass())/ref),
			f2(float64(d.StructureMass)/ref),
			f2(float64(d.Propulsion.Propellant)/ref),
			f2(float64(other)/ref),
			pct(d.ComputeMassShare()))
	}
	return t, nil
}

// Fig7 reproduces Figure 7: TCO vs installed ISL capacity for the three
// reference sizes, as increase over the no-ISL satellite.
func Fig7() (Table, error) {
	t := Table{
		ID:     "Figure 7",
		Title:  "TCO increase vs ISL data rate (relative to a no-ISL SµDC)",
		Header: []string{"ISL rate", "500 W", "4 kW", "10 kW"},
	}
	// One parallel sweep: the three no-ISL baselines followed by the
	// rate × power grid.
	rates := []float64{0, 5, 10, 25, 50, 100, 200}
	cfgs := make([]core.Config, 0, len(referencePowers)*(len(rates)+1))
	for _, p := range referencePowers {
		c := core.DefaultConfig(p)
		c.OmitISL = true
		cfgs = append(cfgs, c)
	}
	for _, g := range rates {
		for _, p := range referencePowers {
			c := core.DefaultConfig(p)
			if g == 0 {
				c.OmitISL = true
			} else {
				c.ISLRate = units.GbpsOf(g)
			}
			cfgs = append(cfgs, c)
		}
	}
	tcos, err := core.SweepTCO(cfgs)
	if err != nil {
		return Table{}, err
	}
	for gi, g := range rates {
		row := []string{fmt.Sprintf("%.0f Gbit/s", g)}
		for pi := range referencePowers {
			base := float64(tcos[pi])
			v := tcos[len(referencePowers)*(1+gi)+pi]
			row = append(row, pct(float64(v)/base-1))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig9 reproduces Figure 9: TCO across processor architectures at the
// three reference power budgets, relative to the RTX 3090 500 W design.
func Fig9() (Table, error) {
	baseCfg := core.DefaultConfig(units.KW(0.5))
	ref, err := baseCfg.TCO()
	if err != nil {
		return Table{}, err
	}
	devices := []hardware.Device{hardware.RTX3090, hardware.A100, hardware.H100}
	t := Table{
		ID:     "Figure 9",
		Title:  "relative TCO vs architecture (baseline: 500 W RTX 3090)",
		Header: []string{"compute power", "RTX 3090", "A100", "H100", "TFLOPs/$TCO best"},
	}
	for _, p := range referencePowers {
		row := []string{p.String()}
		bestName, bestPerf := "", 0.0
		for _, dev := range devices {
			c := core.DefaultConfig(p)
			c.Server = hardware.DefaultServer(dev)
			v, err := c.TCO()
			if err != nil {
				return Table{}, err
			}
			row = append(row, f2(float64(v)/float64(ref)))
			// Performance per TCO dollar: sustained tensor FLOP/s per $.
			flops := dev.FLOPsPerWatt(true) * float64(p)
			if perf := flops / float64(v); perf > bestPerf {
				bestPerf = perf
				bestName = dev.Name
			}
		}
		row = append(row, bestName)
		t.AddRow(row...)
	}
	return t, nil
}

// Fig10 reproduces Figure 10: TCO of a 4 kW-workload SµDC vs compute
// energy-efficiency scalar, with each compression algorithm shrinking the
// ISL, normalized to the uncompressed e=1 point.
func Fig10() (Table, error) {
	islRate := core.DesignISLRate(units.KW(4))
	configFor := func(e float64, alg compress.Algorithm) core.Config {
		c := core.DefaultConfig(units.Power(4000 / e))
		c.ISLRate = islRate
		c.Compression = alg
		return c
	}
	ref, err := configFor(1, compress.None).TCO()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Figure 10",
		Title:  "relative TCO vs energy-efficiency scalar under compression (4 kW workload)",
		Header: []string{"efficiency", "uncompressed", "CCSDS", "JPEG2000", "neural", "neural saving"},
	}
	for _, e := range []float64{1, 2, 5, 10, 50, 100, 1000} {
		row := []string{fmt.Sprintf("%g×", e)}
		var plain, neural float64
		for _, alg := range []compress.Algorithm{compress.None, compress.CCSDS, compress.JPEG2000, compress.Neural} {
			v, err := configFor(e, alg).TCO()
			if err != nil {
				return Table{}, err
			}
			row = append(row, f2(float64(v)/float64(ref)))
			if alg.Name == compress.None.Name {
				plain = float64(v)
			}
			if alg.Name == compress.Neural.Name {
				neural = float64(v)
			}
		}
		row = append(row, pct(1-neural/plain))
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11 reproduces Figure 11: normalized TCO category breakdowns for two
// satellite cost models and three terrestrial datacenter models.
func Fig11() (Table, error) {
	d, err := core.DefaultConfig(units.KW(4)).Build()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Figure 11",
		Title:  "normalized TCO shares: satellite vs terrestrial models",
		Header: []string{"model", "servers", "networking", "power", "infrastructure", "other"},
	}
	// Satellite models: map subsystems onto the figure's categories.
	for _, m := range []sscm.Model{sscm.Reference(), sscm.Alt()} {
		b, err := m.Estimate(d.Drivers)
		if err != nil {
			return Table{}, err
		}
		servers := b.Share(sscm.PayloadCompute)
		networking := b.Share(sscm.FSOComm) + b.Share(sscm.CDH) + b.Share(sscm.TTC)
		power := b.Share(sscm.Power) + b.Share(sscm.Thermal)
		infra := b.Share(sscm.Structure) + b.Share(sscm.ADCS) + b.Share(sscm.Propulsion) + b.Share(sscm.Launch)
		other := 1 - servers - networking - power - infra
		t.AddRow(m.Name, pct(servers), pct(networking), pct(power), pct(infra), pct(other))
	}
	for _, m := range terrestrial.Models() {
		t.AddRow(m.Name,
			pct(m.Share(terrestrial.Servers)),
			pct(m.Share(terrestrial.Networking)),
			pct(m.Share(terrestrial.PowerEnergy)+m.Share(terrestrial.PowerDistribution)),
			pct(m.Share(terrestrial.Infrastructure)),
			pct(m.Share(terrestrial.Other)))
	}
	return t, nil
}

// Fig12 reproduces Figure 12: required radiator area vs panel temperature
// for 500 W, 4 kW and 10 kW of rejected heat.
func Fig12() (Table, error) {
	t := Table{
		ID:     "Figure 12",
		Title:  "radiator area vs temperature (ε = 0.86, both faces to space)",
		Header: []string{"temperature", "500 W", "4 kW", "10 kW"},
	}
	for _, celsius := range []float64{-20, 0, 20, 45, 70, 100} {
		r := thermal.DefaultRadiator
		r.Temperature = units.Celsius(celsius)
		row := []string{fmt.Sprintf("%.0f °C", celsius)}
		for _, q := range []units.Power{units.KW(0.5), units.KW(4), units.KW(10)} {
			a, err := r.AreaFor(q)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmt.Sprintf("%.2f m²", a.SquareMeters()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig15 reproduces Figure 15: relative TCO vs energy-efficiency scalar for
// the in-space datacenter and the three on-Earth scaling modes, with
// constant hardware prices.
func Fig15() (Table, error) {
	return efficiencyScalingTable("Figure 15",
		"relative TCO vs energy efficiency (constant hardware cost)",
		terrestrial.ConstantPrice)
}

// Fig16 reproduces Figure 16: the same sweep with hardware prices scaling
// logarithmically in the efficiency gain.
func Fig16() (Table, error) {
	return efficiencyScalingTable("Figure 16",
		"relative TCO vs energy efficiency (logarithmic hardware price scaling)",
		terrestrial.LogarithmicPrice)
}

func efficiencyScalingTable(id, title string, price terrestrial.PriceScaling) (Table, error) {
	islRate := core.DesignISLRate(units.KW(4))
	spaceTCO := func(e float64) (float64, error) {
		c := core.DefaultConfig(units.Power(4000 / e))
		c.ISLRate = islRate
		if price == terrestrial.LogarithmicPrice {
			c.Server.IntegrationCostFactor *= price.PriceMultiplier(e)
		}
		v, err := c.TCO()
		return float64(v), err
	}
	ref, err := spaceTCO(1)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"efficiency", "in-space", "On-Earth (Default)", "On-Earth (HPE)", "On-Earth (LPO)"},
	}
	for _, e := range []float64{1, 2, 5, 10, 50, 100, 200, 500, 1000} {
		v, err := spaceTCO(e)
		if err != nil {
			return Table{}, err
		}
		row := []string{fmt.Sprintf("%g×", e), f2(v / ref)}
		for _, mode := range []terrestrial.ScalingMode{terrestrial.DefaultScaling, terrestrial.HPEScaling, terrestrial.LPOScaling} {
			r, err := terrestrial.Hardy.RelativeTCO(e, mode, price)
			if err != nil {
				return Table{}, err
			}
			row = append(row, f2(r))
		}
		t.AddRow(row...)
	}
	return t, nil
}
