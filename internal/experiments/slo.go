package experiments

// Extension E12: SLO attainment under COTS degradation. E9 showed the
// spare margin being eaten by throttle and brownout as a shift in mean
// availability; E12 re-asks the question the way an operator would —
// through the windowed SLO engine. Each cell of the same severity ×
// eclipse-fraction grid runs the DES with 10-minute tumbling telemetry
// windows and evaluates the default objectives (availability, frame
// p99, loss rate) with multi-window burn-rate alerting. The headline is
// *where* the alerts land: the share firing in eclipse-exit throttle
// windows — windows with throttle occupancy whose own or preceding
// window saw eclipse — rises with severity, because the post-eclipse
// catch-up happens exactly when the thermal envelope clamps the
// service rate.

import (
	"time"

	"sudc/internal/degrade"
	"sudc/internal/netsim"
	"sudc/internal/obs/slo"
	"sudc/internal/obs/window"
	"sudc/internal/par"
)

// SLOPoint is one cell of the E12 severity × eclipse-fraction grid,
// averaged over independent fault-schedule replicas.
type SLOPoint struct {
	Severity, EclipseFraction float64
	// Attainment is the replica-mean fraction of windows with every
	// active objective within budget; Alerts the replica-mean count of
	// burn-rate alert firings.
	Attainment, Alerts float64
	// EclipseExitShare is the fraction of all alerts (across replicas)
	// that fired in an eclipse-exit throttle window: ThrottleSec > 0
	// and eclipse occupancy in the same or the preceding window.
	EclipseExitShare float64
	// Attributed is the fraction of all alerts carrying a named cause
	// (not "unattributed") — the attribution-coverage check.
	Attributed float64
}

// eclipseExit reports whether window i of wins is an eclipse-exit
// throttle window: the service rate is clamped while the cell is in —
// or just out of — eclipse.
func eclipseExit(wins []window.Window, i int) bool {
	if wins[i].ThrottleSec <= 0 {
		return false
	}
	if wins[i].EclipseSec > 0 {
		return true
	}
	return i > 0 && wins[i-1].EclipseSec > 0
}

// SLOSweep runs the E12 grid over the E9 base scenario (spare-
// provisioned SµDC, 2-hour horizon crossing a full orbit), each cell
// averaging `replicas` serial DES runs with forked seeds. Windowed
// telemetry uses per-run OnWindow state, so replicas run through
// netsim.Run directly rather than RunReplicas.
func SLOSweep(severities, eclipseFracs []float64, replicas int) ([]SLOPoint, error) {
	base := degradationConfig()
	base.Window = 10 * time.Minute
	cfg := slo.DefaultConfig()
	points := make([]SLOPoint, 0, len(severities)*len(eclipseFracs))
	for _, ef := range eclipseFracs {
		for _, sev := range severities {
			pt := SLOPoint{Severity: sev, EclipseFraction: ef}
			var alerts, exit, attributed int
			for r := 0; r < replicas; r++ {
				c := base
				p := degrade.COTSProfile(sev)
				p.EclipseFraction = ef
				c.Degrade = &p
				c.Seed = par.ForkSeed(base.Seed, r)
				var wins []window.Window
				c.OnWindow = func(w window.Window) { wins = append(wins, w) }
				if _, err := netsim.Run(c); err != nil {
					return nil, err
				}
				rep := slo.Run(cfg, wins)
				pt.Attainment += rep.Attainment
				alerts += len(rep.Alerts)
				for _, a := range rep.Alerts {
					if eclipseExit(wins, a.Window) {
						exit++
					}
					if a.Cause != "unattributed" {
						attributed++
					}
				}
			}
			n := float64(replicas)
			pt.Attainment /= n
			pt.Alerts = float64(alerts) / n
			if alerts > 0 {
				pt.EclipseExitShare = float64(exit) / float64(alerts)
				pt.Attributed = float64(attributed) / float64(alerts)
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// ExtSLO renders E12: burn-rate alerting over the E9 degradation grid.
func ExtSLO() (Table, error) {
	points, err := SLOSweep([]float64{0, 0.5, 1}, []float64{0.25, 0.38, 0.50}, 20)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Extension E12",
		Title:  "SLO attainment and burn-rate alerts over the E9 degradation grid (10 min windows)",
		Header: []string{"severity", "eclipse frac", "attainment", "alerts/run", "eclipse-exit share", "attributed"},
	}
	for _, p := range points {
		t.AddRow(f2(p.Severity), f2(p.EclipseFraction), pct(p.Attainment),
			f2(p.Alerts), pct(p.EclipseExitShare), pct(p.Attributed))
	}
	return t, nil
}
