package experiments

import (
	"strconv"
	"testing"
)

func TestAllExtensionsRun(t *testing.T) {
	ext := Extensions()
	if len(ext) != 12 {
		t.Fatalf("have %d extensions, want 12", len(ext))
	}
	for _, e := range ext {
		tbl, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		for ri, r := range tbl.Rows {
			if len(r) != len(tbl.Header) {
				t.Errorf("%s row %d: column mismatch", e.ID, ri)
			}
		}
	}
}

func TestExtensionByID(t *testing.T) {
	if _, err := ExtensionByID("Extension E1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtensionByID("Extension E99"); err == nil {
		t.Error("unknown extension must error")
	}
}

func TestExtFleetPlanAcceleratorsShrinkFleet(t *testing.T) {
	tbl := run(t, ExtFleetPlan)
	if len(tbl.Rows) != 2 {
		t.Fatal("want GPU and accelerator rows")
	}
	gpuN, _ := strconv.Atoi(tbl.Rows[0][1])
	accN, _ := strconv.Atoi(tbl.Rows[1][1])
	if accN >= gpuN {
		t.Errorf("accelerator fleet (%d) must be smaller than GPU fleet (%d)", accN, gpuN)
	}
	if parseCell(t, tbl.Rows[1][5]) >= parseCell(t, tbl.Rows[0][5]) {
		t.Error("accelerator fleet must cost less")
	}
}

func TestExtMaintenanceSparesTrade(t *testing.T) {
	tbl := run(t, ExtMaintenance)
	if len(tbl.Rows) != 3 {
		t.Fatal("want 3 sparing policies")
	}
	// Availability rises with spares; so does program cost.
	for i := 1; i < len(tbl.Rows); i++ {
		if parseCell(t, tbl.Rows[i][1]) < parseCell(t, tbl.Rows[i-1][1]) {
			t.Error("availability must not fall with more spares")
		}
		if parseCell(t, tbl.Rows[i][4]) <= parseCell(t, tbl.Rows[i-1][4]) {
			t.Error("program cost must rise with more spares")
		}
	}
}

func TestExtGEOFindings(t *testing.T) {
	tbl := run(t, ExtGEO)
	get := func(metric string) (string, string) {
		t.Helper()
		for _, r := range tbl.Rows {
			if r[0] == metric {
				return r[1], r[2]
			}
		}
		t.Fatalf("metric %q missing", metric)
		return "", ""
	}
	// GEO: ~8× the dose, COTS margin collapses below 1×.
	leoDose, geoDose := get("5-yr TID @200 mils (krad)")
	if parseCell(t, geoDose) < 5*parseCell(t, leoDose) {
		t.Error("GEO dose must be several times LEO")
	}
	_, geoMargin := get("COTS GPU TID margin")
	if parseCell(t, geoMargin) >= 1 {
		t.Errorf("COTS GPU must NOT clear the GEO dose (margin %s)", geoMargin)
	}
	// GEO eclipses are rarer but *longer* (up to ~70 min vs ~36 min in
	// LEO), so the battery grows — while the array shrinks because the
	// orbit is almost always in sun.
	leoBatt, geoBatt := get("battery (kg)")
	if parseCell(t, geoBatt) <= parseCell(t, leoBatt) {
		t.Error("GEO battery must be heavier (longer eclipse duration)")
	}
	leoBOL, geoBOL := get("BOL power (kW)")
	if parseCell(t, geoBOL) >= parseCell(t, leoBOL) {
		t.Error("GEO array must install less BOL power (sun-rich orbit)")
	}
	// The relay-class ISL draws more power.
	leoISL, geoISL := get("ISL power (W)")
	if parseCell(t, geoISL) <= parseCell(t, leoISL) {
		t.Error("GEO relay ISL must draw more power")
	}
}

func TestExtBentPipeShowsTheMotivation(t *testing.T) {
	tbl := run(t, ExtBentPipe)
	if len(tbl.Rows) != 4 {
		t.Fatal("want 4 application rows")
	}
	for _, r := range tbl.Rows {
		// The 45 Mpix-class apps suffer a large deficit; latency is tens
		// of minutes; the ISL share stays modest.
		if r[0] == "Flood Detection" {
			if parseCell(t, r[3]) < 50 {
				t.Errorf("flood deficit = %s, want severe", r[3])
			}
		}
		if parseCell(t, r[5]) > 100 {
			t.Errorf("%s: ISL share %s exceeds one crosslink head", r[0], r[5])
		}
	}
}

func TestExtTradeStudyFront(t *testing.T) {
	tbl := run(t, ExtTradeStudy)
	// One front point per compute level (the cheapest lifetime wins each).
	if len(tbl.Rows) != 7 {
		t.Errorf("front has %d rows, want 7", len(tbl.Rows))
	}
	// Front is monotone: more compute costs more.
	for i := 1; i < len(tbl.Rows); i++ {
		if parseCell(t, tbl.Rows[i][2]) <= parseCell(t, tbl.Rows[i-1][2]) &&
			parseCell(t, tbl.Rows[i][0]) > parseCell(t, tbl.Rows[i-1][0]) {
			t.Error("front must trade TCO for compute monotonically")
		}
	}
}

func TestExtPipelineTimingSane(t *testing.T) {
	tbl := run(t, ExtPipelineTiming)
	if len(tbl.Rows) != 9 {
		t.Fatalf("want 9 networks, got %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if parseCell(t, r[2]) <= 0 {
			t.Errorf("%s: non-positive throughput", r[0])
		}
		if parseCell(t, r[3]) <= 0 {
			t.Errorf("%s: non-positive latency", r[0])
		}
		if r[4] == "" {
			t.Errorf("%s: missing bottleneck", r[0])
		}
	}
}

func TestExtShardedTopologyScaling(t *testing.T) {
	tbl := run(t, ExtShardedTopology)
	if len(tbl.Rows) != 5 {
		t.Fatalf("want 5 topology points, got %d", len(tbl.Rows))
	}
	// The single-plane star relays nothing; the sparsest placement
	// (SµDC every 4th plane) averages a full boundary crossing per frame.
	if hops := parseCell(t, tbl.Rows[0][3]); hops != 0 {
		t.Errorf("single plane has %v cross-hops/frame, want 0", hops)
	}
	if hops := parseCell(t, tbl.Rows[len(tbl.Rows)-1][3]); hops < 0.9 {
		t.Errorf("sparse placement has %v cross-hops/frame, want ≈ 1", hops)
	}
	for _, r := range tbl.Rows {
		if a := parseCell(t, r[5]); a <= 0 || a > 100 {
			t.Errorf("planes=%s: availability %s out of range", r[0], r[5])
		}
	}
}

func TestOverprovisionSweepMatchesAnalytic(t *testing.T) {
	pts, err := OverprovisionSweep(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("want 5 spare counts, got %d", len(pts))
	}
	for i, p := range pts {
		if p.Spares != i || p.Nodes != p.Need+i {
			t.Errorf("point %d: spares=%d nodes=%d need=%d", i, p.Spares, p.Nodes, p.Need)
		}
		delta := p.Measured - p.Analytic
		if delta < 0 {
			delta = -delta
		}
		if delta > 0.02 {
			t.Errorf("spares=%d: DES availability %.4f vs analytic %.4f — |Δ| %.4f > 2%%",
				p.Spares, p.Measured, p.Analytic, delta)
		}
		if i > 0 {
			if p.Measured <= pts[i-1].Measured {
				t.Errorf("spares=%d: availability must grow with spares", p.Spares)
			}
			if p.SpareTCOShare <= pts[i-1].SpareTCOShare {
				t.Errorf("spares=%d: spare TCO share must grow with spares", p.Spares)
			}
		}
	}
	// The paper's near-free-spares claim: even 4 spares (2× compute) add
	// under 1% to the SµDC's total cost of ownership.
	if last := pts[len(pts)-1]; last.SpareTCOShare >= 0.01 {
		t.Errorf("4 spares add %.2f%% of TCO, want < 1%%", last.SpareTCOShare*100)
	}
}

func TestOverprovisionTraceCheckAgrees(t *testing.T) {
	// The E7 availability numbers must be reproducible from a saved
	// flight recording alone: recomputing availability from the trace's
	// fault events has to agree with the DES to float64 rounding.
	for _, spares := range []int{0, 2} {
		des, fromTrace, err := OverprovisionTraceCheck(spares, 25)
		if err != nil {
			t.Fatal(err)
		}
		if des <= 0 || des > 1 {
			t.Fatalf("spares=%d: DES availability %.6f out of range", spares, des)
		}
		delta := des - fromTrace
		if delta < 0 {
			delta = -delta
		}
		if delta > 1e-9 {
			t.Errorf("spares=%d: DES availability %.12f vs trace-derived %.12f — |Δ| %.3g",
				spares, des, fromTrace, delta)
		}
	}
	if _, _, err := OverprovisionTraceCheck(-1, 10); err == nil {
		t.Error("negative spares must error")
	}
	if _, _, err := OverprovisionTraceCheck(0, 0); err == nil {
		t.Error("zero replicas must error")
	}
}
