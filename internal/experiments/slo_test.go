package experiments

import (
	"reflect"
	"testing"
)

// TestSLOSweepDeterministic pins E12's reproducibility: the sweep is a
// pure function of the grid and the forked seeds, so two runs agree
// exactly — the window stream underneath is byte-identical for any
// shard or worker count and the SLO engine is pure.
func TestSLOSweepDeterministic(t *testing.T) {
	a, err := SLOSweep([]float64{0, 1}, []float64{0.38}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SLOSweep([]float64{0, 1}, []float64{0.38}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("E12 sweep is not reproducible:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSLOAlertsConcentrateAtEclipseExit pins E12's headline findings on
// the full grid: degradation costs attainment, and the alerts it adds
// fire where the physics says they must — in the eclipse-exit throttle
// windows — with every degraded alert carrying a named cause.
func TestSLOAlertsConcentrateAtEclipseExit(t *testing.T) {
	pts, err := SLOSweep([]float64{0, 0.5, 1}, []float64{0.25, 0.38, 0.50}, 20)
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[[2]float64]SLOPoint, len(pts))
	for _, p := range pts {
		byCell[[2]float64{p.Severity, p.EclipseFraction}] = p
	}
	for _, ef := range []float64{0.25, 0.38, 0.50} {
		base, full := byCell[[2]float64{0, ef}], byCell[[2]float64{1, ef}]
		if base.EclipseExitShare != 0 {
			t.Errorf("ef %.2f: severity-0 run has eclipse-exit alerts (share %.2f) with no schedule compiled",
				ef, base.EclipseExitShare)
		}
		if full.Attainment >= base.Attainment {
			t.Errorf("ef %.2f: full-severity attainment %.3f not below severity-0 %.3f",
				ef, full.Attainment, base.Attainment)
		}
		if full.EclipseExitShare <= base.EclipseExitShare {
			t.Errorf("ef %.2f: alerts do not concentrate at eclipse exit (share %.2f)",
				ef, full.EclipseExitShare)
		}
		if full.Alerts > 0 && full.Attributed != 1 {
			t.Errorf("ef %.2f: only %.0f%% of degraded alerts carry a cause, want all",
				ef, full.Attributed*100)
		}
	}
	// A longer eclipse leaves more post-eclipse catch-up inside the
	// throttle clamp, so the full-severity share rises with eclipse
	// fraction across the grid's extremes.
	lo, hi := byCell[[2]float64{1, 0.25}], byCell[[2]float64{1, 0.50}]
	if hi.EclipseExitShare <= lo.EclipseExitShare {
		t.Errorf("eclipse-exit share does not rise with eclipse fraction: %.2f (ef 0.25) vs %.2f (ef 0.50)",
			lo.EclipseExitShare, hi.EclipseExitShare)
	}
}

// TestExtSLOTable smoke-checks the rendered E12 grid.
func TestExtSLOTable(t *testing.T) {
	e, err := ExtensionByID("Extension E12")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("E12 has %d rows, want 9", len(tbl.Rows))
	}
	for ri, r := range tbl.Rows {
		if len(r) != len(tbl.Header) {
			t.Errorf("row %d: %d columns, want %d", ri, len(r), len(tbl.Header))
		}
	}
}
