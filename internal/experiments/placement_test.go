package experiments

import (
	"testing"

	"sudc/internal/workload"
)

// TestPlacementSweepFrontier pins E11's two headline findings: the
// traffic-intensity crossover where space goodput-per-TCO-dollar
// overtakes the bent pipe, and the Oracle floor lower-bounding every
// realized policy at every sweep point.
func TestPlacementSweepFrontier(t *testing.T) {
	points, err := PlacementSweep(workload.Suite[0], []float64{0.5, 6}, []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for _, p := range points {
		// At 0.5 frames/min the SµDC TCO is amortized over too few
		// frames and the bent pipe wins; at 6 frames/min demand
		// amortization flips the frontier — at either downlink capacity.
		wantSpace := p.FramesPerMinute >= 6
		if p.SpaceWins != wantSpace {
			t.Errorf("fpm=%v dl=%v: SpaceWins=%v, want %v (space %.3g fr/$, cloud %.3g fr/$)",
				p.FramesPerMinute, p.DownlinkGbps, p.SpaceWins, wantSpace,
				p.SpacePerDollar, p.CloudPerDollar)
		}
		// The analytic floor lower-bounds every realized mean cost.
		for name, c := range map[string]float64{
			"static-space": p.SpaceCost,
			"static-cloud": p.CloudCost,
			"greedy":       p.GreedyPolCost,
			"queue":        p.QueuePolCost,
		} {
			if c < p.OracleCost*(1-1e-9) {
				t.Errorf("fpm=%v dl=%v: %s mean cost %.6g beats the oracle floor %.6g",
					p.FramesPerMinute, p.DownlinkGbps, name, c, p.OracleCost)
			}
		}
		if p.SpacePerDollar <= 0 || p.CloudPerDollar <= 0 {
			t.Errorf("fpm=%v dl=%v: non-positive goodput per dollar", p.FramesPerMinute, p.DownlinkGbps)
		}
	}
}

// TestPlacementSweepMMcAnchor cross-checks the DES against the
// Erlang-C wait at low load: with 0.5 frames/min into a 10 Gbps
// downlink, both the analytic M/M/c wait and the measured ground-edge
// wait above the deterministic floor are negligible.
func TestPlacementSweepMMcAnchor(t *testing.T) {
	points, err := PlacementSweep(workload.Suite[0], []float64{0.5}, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.EdgeWaitMMc > 1e-6 {
		t.Errorf("analytic M/M/c wait %.3g s not negligible at low load", p.EdgeWaitMMc)
	}
	if p.EdgeWaitDES < 0 || p.EdgeWaitDES > 0.1 {
		t.Errorf("measured edge wait %.3g s off the analytic ≈0 anchor", p.EdgeWaitDES)
	}
}

// TestExtPlacementTable smoke-checks the rendered E11 grid.
func TestExtPlacementTable(t *testing.T) {
	if _, err := ExtensionByID("Extension E11"); err != nil {
		t.Fatal(err)
	}
	tbl := run(t, ExtPlacement)
	if len(tbl.Rows) != 8 {
		t.Fatalf("E11 has %d rows, want 8", len(tbl.Rows))
	}
	winners := map[string]int{}
	for _, r := range tbl.Rows {
		winners[r[4]]++
	}
	if winners["space"] == 0 || winners["bent pipe"] == 0 {
		t.Errorf("E11 grid shows no crossover: %v", winners)
	}
}
