package experiments

import (
	"fmt"
	"sync"

	"sudc/internal/accel"
	"sudc/internal/constellation"
	"sudc/internal/dse"
	"sudc/internal/hardware"
	"sudc/internal/units"
	"sudc/internal/workload"
)

// TableII prints the hardware catalog (price, TDP, TFLOPs, TID) with the
// derived FLOPs/W and FLOPs/$ ratios the paper's §III analysis uses.
func TableII() (Table, error) {
	t := Table{
		ID:     "Table II",
		Title:  "GPGPU and radiation-hardened processor catalog",
		Header: []string{"system", "class", "TID (krad)", "price ($)", "TDP (W)", "FP32 TFLOPs", "TF32 TFLOPs", "GFLOPs/W", "GFLOPs/$"},
	}
	for _, d := range hardware.Catalog() {
		price, tdp, tf32 := "N/A", "N/A", "N/A"
		if d.Price > 0 {
			price = f0(float64(d.Price))
		}
		if d.TDP > 0 {
			tdp = f0(float64(d.TDP))
		}
		if d.TF32TFLOPs > 0 {
			tf32 = f1(d.TF32TFLOPs)
		}
		perW, perD := "N/A", "N/A"
		if v := d.FLOPsPerWatt(true); v > 0 {
			perW = f1(v / 1e9)
		}
		if v := d.FLOPsPerDollar(true); v > 0 {
			perD = f1(v / 1e9)
		}
		t.AddRow(d.Name, d.Class.String(), f0(float64(d.TIDToleranceKrad)),
			price, tdp, fmt.Sprintf("%g", d.FP32TFLOPs), tf32, perW, perD)
	}
	return t, nil
}

// TableIII prints the application suite with the measured RTX 3090
// characteristics and the number of 4 kW SµDCs needed for a 64-satellite
// constellation.
func TableIII() (Table, error) {
	t := Table{
		ID:     "Table III",
		Title:  "application performance on RTX 3090 + SµDCs for 64 EO satellites",
		Header: []string{"app", "P (W)", "util", "infer (s)", "kpixel/J", "# SµDC"},
	}
	for _, a := range workload.Suite {
		n, err := constellation.Default64.SuDCsNeeded(a, units.KW(4))
		if err != nil {
			return Table{}, err
		}
		t.AddRow(a.Name, f0(float64(a.GPUPower)), pct(a.GPUUtilization),
			f2(a.InferTime), f0(a.KPixelPerJoule), fmt.Sprintf("%d", n))
	}
	return t, nil
}

// Fig8 reproduces Figure 8: the ISL data rate needed to saturate RTX 3090
// fleets of 0.5–10 kW for each application.
func Fig8() (Table, error) {
	t := Table{
		ID:     "Figure 8",
		Title:  "ISL rate (Gbit/s) to saturate compute, per application",
		Header: []string{"app", "0.5 kW", "2 kW", "4 kW", "10 kW"},
	}
	for _, a := range workload.Suite {
		row := []string{a.Name}
		for _, p := range []units.Power{units.KW(0.5), units.KW(2), units.KW(4), units.KW(10)} {
			r, err := a.SaturationRate(p)
			if err != nil {
				return Table{}, err
			}
			row = append(row, f1(r.Gigabits()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// The 7168-design exploration is the repo's most expensive computation;
// share one run across Fig17, Fig21 and any caller that needs the
// architecture efficiency factors. Explore itself parallelizes over the
// design space, so concurrent first callers just wait on one sweep.
var dseResult = sync.OnceValues(func() (dse.Result, error) {
	return dse.Explore(workload.Suite, accel.RTX3090Baseline)
})

// DSEResult returns the cached full design-space exploration.
func DSEResult() (dse.Result, error) { return dseResult() }

// Fig17 reproduces Figure 17: per-network energy-efficiency gains of the
// Global, Per-Network and Per-Layer accelerator architectures over the
// commodity GPU baseline.
func Fig17() (Table, error) {
	r, err := DSEResult()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Figure 17",
		Title:  fmt.Sprintf("accelerator energy-efficiency gains over RTX 3090 (%d designs)", r.DesignsEvaluated),
		Header: []string{"network", "global", "per-network", "per-layer", "per-network design"},
	}
	for _, n := range r.Networks {
		t.AddRow(n.Network, f1(n.GlobalGain())+"×", f1(n.PerNetworkGain())+"×",
			f1(n.PerLayerGain())+"×", n.BestConfig.String())
	}
	t.AddRow("geomean", f1(r.MeanGlobalGain())+"×", f1(r.MeanPerNetworkGain())+"×",
		f1(r.MeanPerLayerGain())+"×", r.Global.String()+" (global)")
	return t, nil
}
