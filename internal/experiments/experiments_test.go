package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parseCell parses a formatted numeric cell ("1.23", "45.6%", "12.3×").
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "×")
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func run(t *testing.T, f func() (Table, error)) Table {
	t.Helper()
	tbl, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		tbl, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		if len(tbl.Header) == 0 {
			t.Errorf("%s: no header", e.ID)
		}
		for ri, r := range tbl.Rows {
			if len(r) != len(tbl.Header) {
				t.Errorf("%s row %d: %d cells for %d columns", e.ID, ri, len(r), len(tbl.Header))
			}
		}
		if out := tbl.String(); !strings.Contains(out, tbl.ID) {
			t.Errorf("%s: rendering must include the exhibit ID", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("figure 5")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "Figure 5" {
		t.Errorf("ByID returned %q", e.ID)
	}
	if _, err := ByID("Figure 99"); err == nil {
		t.Error("unknown exhibit must error")
	}
}

func TestAllCountMatchesDesignDoc(t *testing.T) {
	// DESIGN.md's per-experiment index: 3 tables + 22 data figures.
	if got := len(All()); got != 25 {
		t.Errorf("have %d experiments, want 25", got)
	}
}

func TestFig4LastRowLargest(t *testing.T) {
	tbl := run(t, Fig4)
	first := parseCell(t, tbl.Rows[0][1])
	if first != 1.00 {
		t.Errorf("baseline cell = %v, want 1.00", first)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	for col := 1; col <= 3; col++ {
		if parseCell(t, last[col]) <= parseCell(t, tbl.Rows[0][col]) {
			t.Errorf("column %d must grow with lifetime", col)
		}
	}
}

func TestFig5Headline(t *testing.T) {
	tbl := run(t, Fig5)
	// Row order: 0.5 … 10 kW; total column index 1.
	first := parseCell(t, tbl.Rows[0][1])
	last := parseCell(t, tbl.Rows[len(tbl.Rows)-1][1])
	ratio := last / first
	if ratio <= 3 || ratio >= 4 {
		t.Errorf("Fig5 total ratio = %.2f, want (3,4)", ratio)
	}
	// Compute hardware share stays below 1% in every row.
	shareCol := len(tbl.Header) - 1
	for _, r := range tbl.Rows {
		if parseCell(t, r[shareCol]) >= 1.0 {
			t.Errorf("compute share %s ≥ 1%%", r[shareCol])
		}
	}
}

func TestFig7Anchors(t *testing.T) {
	tbl := run(t, Fig7)
	// Find the 25 Gbit/s row: 500 W increase must be below 30%.
	for _, r := range tbl.Rows {
		if r[0] == "25 Gbit/s" {
			if v := parseCell(t, r[1]); v >= 30 || v < 10 {
				t.Errorf("500 W at 25 Gbit/s = %v%%, want [10,30)", v)
			}
		}
		if r[0] == "200 Gbit/s" {
			if v := parseCell(t, r[2]); v >= 26 {
				t.Errorf("4 kW at 200 Gbit/s = %v%%, want <26", v)
			}
		}
	}
}

func TestFig9ArchitectureColumnsNearlyEqual(t *testing.T) {
	tbl := run(t, Fig9)
	for _, r := range tbl.Rows {
		a := parseCell(t, r[1])
		h := parseCell(t, r[3])
		if (h-a)/a > 0.05 {
			t.Errorf("%s: architecture TCO spread %.3f, want <5%%", r[0], (h-a)/a)
		}
		// FLOPs per TCO dollar is always won by the best FLOPs/W part.
		if r[4] != "H100" {
			t.Errorf("%s: best perf/TCO$ = %s, want H100", r[0], r[4])
		}
	}
}

func TestFig10SavingsOrderingAndAsymptote(t *testing.T) {
	tbl := run(t, Fig10)
	first := tbl.Rows[0]
	last := tbl.Rows[len(tbl.Rows)-1]
	// At every efficiency, stronger compression costs less.
	for _, r := range tbl.Rows {
		plain, ccsds, jp2, neural := parseCell(t, r[1]), parseCell(t, r[2]), parseCell(t, r[3]), parseCell(t, r[4])
		if !(neural < jp2 && jp2 < ccsds && ccsds < plain) {
			t.Errorf("row %s: compression ordering broken", r[0])
		}
	}
	// Asymptotic neural saving exceeds today's (Fig. 10's key trend).
	if parseCell(t, last[5]) <= parseCell(t, first[5]) {
		t.Error("asymptotic compression savings must exceed today's")
	}
}

func TestFig11PowerDominatesInSpaceOnly(t *testing.T) {
	tbl := run(t, Fig11)
	if len(tbl.Rows) != 5 {
		t.Fatalf("want 5 models, have %d", len(tbl.Rows))
	}
	for i, r := range tbl.Rows {
		servers := parseCell(t, r[1])
		power := parseCell(t, r[3])
		if i < 2 { // satellite models
			if power <= servers {
				t.Errorf("%s: power (%v%%) must dominate servers (%v%%) in space", r[0], power, servers)
			}
			if servers >= 5 {
				t.Errorf("%s: satellite server share = %v%%, want tiny", r[0], servers)
			}
		} else { // terrestrial models
			if servers <= power {
				t.Errorf("%s: servers must dominate power on Earth", r[0])
			}
		}
	}
}

func TestFig12MatchesPaperAnchor(t *testing.T) {
	tbl := run(t, Fig12)
	// At 45 °C the 4 kW column reads ≈4 m².
	for _, r := range tbl.Rows {
		if r[0] == "45 °C" {
			v := parseCell(t, strings.TrimSuffix(r[2], " m²"))
			if v < 3.8 || v > 4.3 {
				t.Errorf("4 kW at 45°C = %v m², want ≈4", v)
			}
		}
	}
}

func TestFig15Shape(t *testing.T) {
	tbl := run(t, Fig15)
	last := tbl.Rows[len(tbl.Rows)-1]
	inSpace := parseCell(t, last[1])
	def := parseCell(t, last[2])
	lpo := parseCell(t, last[4])
	if inSpace >= lpo {
		t.Errorf("in-space asymptote (%.2f) must undercut every on-Earth curve (%.2f)", inSpace, lpo)
	}
	if def < 0.90 || def > 0.96 {
		t.Errorf("On-Earth Default asymptote = %.2f, want ≈0.93", def)
	}
	if inSpace > 0.55 {
		t.Errorf("in-space asymptote = %.2f, want large TCO reduction", inSpace)
	}
}

func TestFig16TerrestrialRises(t *testing.T) {
	tbl := run(t, Fig16)
	// With log price scaling, terrestrial TCO at 200× exceeds 2.
	for _, r := range tbl.Rows {
		if r[0] == "200×" {
			if v := parseCell(t, r[2]); v <= 2.0 {
				t.Errorf("On-Earth Default at 200× = %.2f, want >2", v)
			}
			// In space, still below 1 (decreasing).
			if v := parseCell(t, r[1]); v >= 1.0 {
				t.Errorf("in-space at 200× = %.2f, want <1", v)
			}
		}
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if v := parseCell(t, last[1]); v >= 1 {
		t.Errorf("in-space TCO still decreasing at 1000×, got %.2f", v)
	}
}

func TestFig17GeomeanRow(t *testing.T) {
	tbl := run(t, Fig17)
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "geomean" {
		t.Fatal("last row must be the geomean")
	}
	global := parseCell(t, last[1])
	perLayer := parseCell(t, last[3])
	if global < 45 || global > 72 {
		t.Errorf("global gain = %v×, want ≈57.8", global)
	}
	if perLayer <= global {
		t.Error("per-layer must beat global")
	}
}

func TestFig19HalvesPowerAtHalfFiltering(t *testing.T) {
	tbl := run(t, Fig19)
	for _, r := range tbl.Rows {
		if r[0] == "0.50" {
			if r[1] != "2 kW" {
				t.Errorf("φ=0.5 SµDC compute = %s, want 2 kW", r[1])
			}
			if v := parseCell(t, r[2]); v >= 1 {
				t.Errorf("φ=0.5 relative TCO = %v, want <1", v)
			}
		}
	}
	// Monotone decreasing TCO.
	prev := 2.0
	for _, r := range tbl.Rows {
		v := parseCell(t, r[2])
		if v > prev {
			t.Errorf("TCO must fall with filtering, row %s", r[0])
		}
		prev = v
	}
}

func TestFig21OrderingMatchesPaper(t *testing.T) {
	tbl := run(t, Fig21)
	if len(tbl.Rows) != 3 {
		t.Fatalf("want 3 architecture rows")
	}
	cloudCol := len(tbl.Header) - 1
	gpu := parseCell(t, tbl.Rows[0][cloudCol])
	global := parseCell(t, tbl.Rows[1][cloudCol])
	hetero := parseCell(t, tbl.Rows[2][cloudCol])
	if !(gpu > global && global >= hetero) {
		t.Errorf("improvement ordering: %v %v %v, want GPU > global ≥ hetero", gpu, global, hetero)
	}
	if gpu < 1.3 || gpu > 2.0 {
		t.Errorf("GPU improvement = %v×, want ≈1.74", gpu)
	}
	if hetero < 1.05 {
		t.Errorf("hetero improvement = %v×, want >1", hetero)
	}
}

func TestFig22MarginalCostFalls(t *testing.T) {
	tbl := run(t, Fig22)
	// First unit (with NRE) dwarfs later units; 100th is <50% of unit 2.
	for col := 1; col <= 3; col++ {
		u1 := parseCell(t, tbl.Rows[0][col])
		u2 := parseCell(t, tbl.Rows[1][col])
		u100 := parseCell(t, tbl.Rows[len(tbl.Rows)-1][col])
		if u1 <= u2 {
			t.Errorf("col %d: first unit must carry NRE", col)
		}
		if u100 >= 0.5*u2 {
			t.Errorf("col %d: 100th unit (%v) must be <50%% of 2nd (%v)", col, u100, u2)
		}
	}
	// Paper: "the 100th 10 kW SµDC is cheaper than the first 4 kW SµDC."
	if parseCell(t, tbl.Rows[len(tbl.Rows)-1][3]) >= parseCell(t, tbl.Rows[0][2]) {
		t.Error("100th 10 kW unit must undercut the first 4 kW unit")
	}
}

func TestFig23DistributedOptimum(t *testing.T) {
	tbl := run(t, Fig23)
	opt := tbl.Rows[len(tbl.Rows)-1]
	if opt[0] != "optimum N" {
		t.Fatal("last row must be the optimum")
	}
	n65, _ := strconv.Atoi(opt[1])
	n85, _ := strconv.Atoi(opt[5])
	// Paper: pessimistic (0.85) → monolithic; aggressive (≤0.65) → >4.
	if n85 != 1 {
		t.Errorf("b=0.85 optimum N = %d, want 1 (monolithic)", n85)
	}
	if n65 <= 4 {
		t.Errorf("b=0.65 optimum N = %d, want >4", n65)
	}
	// And >10% TCO advantage at b=0.65.
	mono := parseCell(t, tbl.Rows[0][1])
	best := parseCell(t, tbl.Rows[n65-1][1])
	if (mono-best)/mono <= 0.10 {
		t.Errorf("b=0.65 distributed saving = %.3f, want >10%%", (mono-best)/mono)
	}
}

func TestFig24Anchors(t *testing.T) {
	tbl := run(t, Fig24)
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "t @ P=1%" {
		t.Fatal("last row must be the 1% crossing")
	}
	// Paper: 0.46 / 1.43 / 1.89 for n = 10 / 20 / 30.
	checks := map[int]float64{1: 0.46, 3: 1.43, 5: 1.89}
	for col, want := range checks {
		if got := parseCell(t, last[col]); got < want-0.03 || got > want+0.03 {
			t.Errorf("1%% crossing col %d = %v, want %v", col, got, want)
		}
	}
}

func TestFig25CappedAtTen(t *testing.T) {
	tbl := run(t, Fig25)
	for _, r := range tbl.Rows {
		prev := -1.0
		for col := 1; col < len(r); col++ {
			v := parseCell(t, r[col])
			if v > 10.0001 {
				t.Errorf("expected working servers capped at 10, got %v", v)
			}
			// More spares → more expected capacity at the same time.
			if v < prev-1e-9 {
				t.Errorf("row %s: capacity must not fall with overprovisioning", r[0])
			}
			prev = v
		}
	}
}

func TestFig26AllRowsHaveMargin(t *testing.T) {
	tbl := run(t, Fig26)
	for _, r := range tbl.Rows {
		margin := parseCell(t, r[4])
		if margin < 1 {
			t.Errorf("%s: TID margin %v×, all parts should exceed a 5-yr LEO dose", r[0], margin)
		}
	}
}

func TestFig27AccuracyFallsWithFlux(t *testing.T) {
	tbl := run(t, Fig27)
	for _, r := range tbl.Rows {
		prev := 1.0
		for col := 1; col < len(r); col++ {
			v := parseCell(t, r[col])
			if v > prev {
				t.Errorf("%s: accuracy must fall with flux", r[0])
			}
			prev = v
		}
	}
}

func TestFig28SoftwareBeatsHardwareRedundancy(t *testing.T) {
	tbl := run(t, Fig28)
	for _, r := range tbl.Rows {
		tmr := parseCell(t, r[1])
		dmr := parseCell(t, r[2])
		sw := parseCell(t, r[3])
		if !(tmr > dmr && dmr > sw) {
			t.Errorf("%s: redundancy TCO must order TMR > DMR > software: %v %v %v", r[0], tmr, dmr, sw)
		}
		if sw >= 1.2 {
			t.Errorf("%s: software hardening TCO = %v×, want small (<1.2×)", r[0], sw)
		}
		if tmr <= 1.3 {
			t.Errorf("%s: TMR TCO = %v×, should be substantially costlier", r[0], tmr)
		}
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	tbl := run(t, TableIII)
	if len(tbl.Rows) != 10 {
		t.Fatalf("Table III must have 10 apps")
	}
	for _, r := range tbl.Rows {
		want := "1"
		if r[0] == "Panoptic Segmentation" {
			want = "4"
		}
		if r[5] != want {
			t.Errorf("%s: # SµDC = %s, want %s", r[0], r[5], want)
		}
	}
}

func TestTableIIListsEightDevices(t *testing.T) {
	tbl := run(t, TableII)
	if len(tbl.Rows) != 8 {
		t.Errorf("Table II must list 8 devices, has %d", len(tbl.Rows))
	}
}

func TestFig8LightestAppUnder25G(t *testing.T) {
	tbl := run(t, Fig8)
	var maxAt500 float64
	for _, r := range tbl.Rows {
		if v := parseCell(t, r[1]); v > maxAt500 {
			maxAt500 = v
		}
	}
	if maxAt500 > 25 {
		t.Errorf("max 500 W saturation rate = %.1f Gbit/s, want ≤25", maxAt500)
	}
}
