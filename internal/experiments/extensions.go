package experiments

import (
	"fmt"

	"sudc/internal/accel"
	"sudc/internal/constellation"
	"sudc/internal/core"
	"sudc/internal/downlink"
	"sudc/internal/fso"
	"sudc/internal/hardware"
	"sudc/internal/lifecycle"
	"sudc/internal/orbit"
	"sudc/internal/planner"
	"sudc/internal/trade"
	"sudc/internal/units"
	"sudc/internal/workload"
	"sudc/internal/wright"
)

// Extensions returns the studies that go beyond the paper's evaluation:
// fleet planning for application mixes, constellation maintenance
// economics, a GEO variant, and accelerator pipeline timing.
func Extensions() []Experiment {
	return []Experiment{
		{"Extension E1", "fleet plan for the full application suite", ExtFleetPlan},
		{"Extension E2", "constellation maintenance: spares vs availability & cost", ExtMaintenance},
		{"Extension E3", "LEO vs GEO SµDC", ExtGEO},
		{"Extension E4", "accelerator pipeline throughput and latency", ExtPipelineTiming},
		{"Extension E5", "bent-pipe downlink vs in-space processing", ExtBentPipe},
		{"Extension E6", "power × lifetime trade study Pareto front", ExtTradeStudy},
		{"Extension E7", "overprovisioning under injected faults: DES vs analytic availability", ExtOverprovision},
		{"Extension E8", "Walker topology scaling through the sharded conservative-lookahead DES", ExtShardedTopology},
		{"Extension E9", "COTS degradation: throttle severity × eclipse fraction vs fault-only availability", ExtDegradation},
		{"Extension E10", "compressed-horizon survivability under degradation and fleet lifecycle", ExtSurvivability},
		{"Extension E11", "when to compute in space: four-tier placement frontier vs bent pipe", ExtPlacement},
		{"Extension E12", "SLO attainment and burn-rate alert placement under COTS degradation", ExtSLO},
	}
}

// ExtensionByID finds an extension study by ID.
func ExtensionByID(id string) (Experiment, error) {
	for _, e := range Extensions() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown extension %q", id)
}

// ExtFleetPlan packs the whole Table III suite onto 4 kW SµDCs, for the
// commodity-GPU payload and for a global-accelerator payload.
func ExtFleetPlan() (Table, error) {
	dseRes, err := DSEResult()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Extension E1",
		Title:  "fleet plan: full application suite over 64 EO satellites",
		Header: []string{"payload", "SµDCs", "fleet utilization", "fleet NRE $M", "fleet RE $M", "fleet TCO $M"},
	}
	for _, arch := range []struct {
		name string
		gain float64
	}{
		{"commodity GPU", 1},
		{"global accelerator", dseRes.MeanGlobalGain()},
	} {
		demands := make([]planner.Demand, 0, len(workload.Suite))
		for _, a := range workload.Suite {
			demands = append(demands, planner.Demand{App: a, Coverage: 1, EfficiencyGain: arch.gain})
		}
		plan := planner.DefaultPlan(constellation.Default64, demands)
		r, err := plan.Pack()
		if err != nil {
			return Table{}, err
		}
		t.AddRow(arch.name, fmt.Sprintf("%d", len(r.SuDCs)), pct(r.Utilization),
			f1(r.FleetNRE.Millions()), f1(r.FleetRE.Millions()), f1(r.FleetTCO.Millions()))
	}
	return t, nil
}

// ExtMaintenance sweeps sparing policies for a 15-year program keeping
// four 4 kW SµDCs operational.
func ExtMaintenance() (Table, error) {
	b, err := core.DefaultConfig(units.KW(4)).Breakdown()
	if err != nil {
		return Table{}, err
	}
	tot := b.Total()
	t := Table{
		ID:     "Extension E2",
		Title:  "15-year program keeping 4 × 4 kW SµDCs operational (b = 0.75)",
		Header: []string{"spares", "availability", "mean operational", "units built", "program cost $M"},
	}
	for _, spares := range []int{0, 1, 2} {
		p := lifecycle.DefaultPolicy()
		p.Spares = spares
		sim, err := p.Simulate(20, 3)
		if err != nil {
			return Table{}, err
		}
		cost, err := p.ProgramCost(tot.NRE, tot.RE, wright.DefaultAerospace)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(fmt.Sprintf("%d", spares), pct(sim.Availability),
			f2(sim.MeanOperational), f1(sim.UnitsBuilt), f1(cost.Millions()))
	}
	return t, nil
}

// ExtGEO contrasts a LEO SµDC with a GEO one: the GEO relay-class ISL is
// heavier and hungrier, eclipse nearly vanishes, disposal is cheap, but
// the radiation environment forces the COTS-vs-rad-hard decision the
// paper's §VIII discusses.
func ExtGEO() (Table, error) {
	t := Table{
		ID:     "Extension E3",
		Title:  "4 kW SµDC: LEO vs GEO",
		Header: []string{"metric", "LEO 550 km", "GEO"},
	}
	leoCfg := core.DefaultConfig(units.KW(4))
	geoCfg := core.DefaultConfig(units.KW(4))
	geoCfg.Orbit = orbit.GEO()
	geoCfg.ISLLink = fso.GEORelayClass

	leo, err := leoCfg.Build()
	if err != nil {
		return Table{}, err
	}
	geo, err := geoCfg.Build()
	if err != nil {
		return Table{}, err
	}
	leoB, err := leo.Cost()
	if err != nil {
		return Table{}, err
	}
	geoB, err := geo.Cost()
	if err != nil {
		return Table{}, err
	}

	leoDose := leoCfg.Orbit.RadiationAt(200).LifetimeDose(leoCfg.Lifetime)
	geoDose := geoCfg.Orbit.RadiationAt(200).LifetimeDose(geoCfg.Lifetime)

	t.AddRow("eclipse fraction", f2(leoCfg.Orbit.EclipseFraction()), f2(geoCfg.Orbit.EclipseFraction()))
	t.AddRow("mission Δv (m/s)", f0(float64(leoCfg.Orbit.BudgetFor(5).Total(5))),
		f0(float64(geoCfg.Orbit.BudgetFor(5).Total(5))))
	t.AddRow("5-yr TID @200 mils (krad)", f1(float64(leoDose)), f1(float64(geoDose)))
	t.AddRow("COTS GPU TID margin", f1(float64(hardware.RTX3090.TIDToleranceKrad)/float64(leoDose))+"×",
		f1(float64(hardware.RTX3090.TIDToleranceKrad)/float64(geoDose))+"×")
	t.AddRow("BOL power (kW)", f1(leo.Drivers.BOLPower/1e3), f1(geo.Drivers.BOLPower/1e3))
	t.AddRow("battery (kg)", f0(leo.EPS.BatteryMass.Kilograms()), f0(geo.EPS.BatteryMass.Kilograms()))
	t.AddRow("ISL power (W)", f0(float64(leo.ISL.Power)), f0(float64(geo.ISL.Power)))
	t.AddRow("wet mass (kg)", f0(leo.WetMass.Kilograms()), f0(geo.WetMass.Kilograms()))
	t.AddRow("TCO ($M)", f1(leoB.TCO().Millions()), f1(geoB.TCO().Millions()))
	return t, nil
}

// ExtPipelineTiming reports per-network throughput and latency of a
// per-layer accelerator pipeline at the DSE-selected designs.
func ExtPipelineTiming() (Table, error) {
	r, err := DSEResult()
	if err != nil {
		return Table{}, err
	}
	nets := workload.Networks()
	t := Table{
		ID:     "Extension E4",
		Title:  "per-network accelerator pipeline timing (DSE-selected designs)",
		Header: []string{"network", "stages", "throughput /s", "fill latency ms", "bottleneck stage"},
	}
	for _, nr := range r.Networks {
		n := nets[nr.Network]
		cfg := nr.BestConfig
		p, err := accel.BuildPipeline(n, accel.DefaultClockHz, func(workload.Layer) (accel.Config, error) {
			return cfg, nil
		})
		if err != nil {
			return Table{}, err
		}
		thr, err := p.Throughput()
		if err != nil {
			return Table{}, err
		}
		lat, err := p.Latency()
		if err != nil {
			return Table{}, err
		}
		bi, err := p.Bottleneck()
		if err != nil {
			return Table{}, err
		}
		t.AddRow(nr.Network, fmt.Sprintf("%d", len(p.Stages)),
			f1(thr), f1(lat*1e3), p.Stages[bi].Layer.Name)
	}
	return t, nil
}

// ExtBentPipe quantifies the paper's Figure 1 motivation: the bent-pipe
// downlink path versus in-space processing, for the 64-satellite
// constellation — data deficit and latency floor per application class.
func ExtBentPipe() (Table, error) {
	t := Table{
		ID:     "Extension E5",
		Title:  "bent-pipe downlink vs in-space processing (64 satellites, 3 X-band stations)",
		Header: []string{"app", "offered", "deliverable", "deficit", "bent-pipe latency", "SµDC ISL share"},
	}
	net := downlink.DefaultNetwork
	for _, name := range []string{"Flood Detection", "Aircraft Detection", "Traffic Monitoring", "Panoptic Segmentation"} {
		app, err := workload.ByName(name)
		if err != nil {
			return Table{}, err
		}
		b, err := downlink.Plan(orbit.DefaultEO, net, app, 6, 64)
		if err != nil {
			return Table{}, err
		}
		// The SµDC path carries the same raw data over the ISL; its share
		// of a single CONDOR-class link shows how easily a crosslink
		// absorbs what the ground network cannot.
		demand, err := constellation.Default64.DataDemand(app)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(app.Name,
			b.OfferedRate.String(),
			b.DeliverableRate.String(),
			pct(b.DeficitRatio()),
			fmt.Sprintf("%.0f min", b.MeanLatency/60),
			pct(float64(demand)/float64(fso.CondorClass.HeadRate)))
	}
	return t, nil
}

// ExtTradeStudy runs a two-dimensional power×lifetime sweep and reports
// the Pareto front over (minimize TCO, maximize compute) — the
// multi-dimensional generalization of the paper's Figures 4 and 5.
func ExtTradeStudy() (Table, error) {
	pts, err := trade.Sweep(core.DefaultConfig(units.KW(4)), []trade.Dimension{
		trade.ComputePowerKW(0.5, 1, 2, 4, 6, 8, 10),
		trade.LifetimeYears(3, 5, 7, 10),
	})
	if err != nil {
		return Table{}, err
	}
	front, err := trade.ParetoFront(pts, []trade.Objective{trade.MinTCO, trade.MaxComputePower})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Extension E6",
		Title:  fmt.Sprintf("Pareto front of a %d-point power × lifetime sweep (min TCO, max compute)", len(pts)),
		Header: []string{"compute kW", "lifetime yr", "TCO $M", "wet kg", "BOL kW"},
	}
	for _, p := range front {
		t.AddRow(f1(p.Coords["compute kW"]), f0(p.Coords["lifetime yr"]),
			f1(p.TCO.Millions()), f0(p.WetMass.Kilograms()), f1(p.BOLPower.Kilowatts()))
	}
	return t, nil
}
