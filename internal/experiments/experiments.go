// Package experiments regenerates every data table and figure in the
// paper's evaluation. Each exported function reproduces one exhibit and
// returns a Table — the same rows/series the paper plots — so the cmd
// tools, the benchmark harness, and EXPERIMENTS.md all print from one
// source of truth.
//
// The per-experiment index lives in DESIGN.md; paper-vs-measured values
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"sudc/internal/obs"
	"sudc/internal/par"
)

// Table is a rendered experiment: a titled grid of string cells.
type Table struct {
	// ID is the paper exhibit ("Table III", "Figure 5", …).
	ID string
	// Title is a one-line description.
	Title string
	// Header labels the columns.
	Header []string
	// Rows are the data rows.
	Rows [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(c))
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// f2, f1 and f0 format floats at fixed precision.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// pct2 is pct at two decimals, for small differences.
func pct2(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// Experiment is one runnable exhibit, for enumeration by cmd/experiments
// and the benchmark harness.
type Experiment struct {
	ID   string
	Name string
	Run  func() (Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"Table I", "model input parameter derivations", TableI},
		{"Table II", "hardware catalog", TableII},
		{"Table III", "app performance on RTX 3090 + # SµDC", TableIII},
		{"Figure 3", "4 kW subsystem cost breakdown, two cost models", Fig3},
		{"Figure 4", "TCO vs lifetime", Fig4},
		{"Figure 5", "TCO vs compute power", Fig5},
		{"Figure 6", "mass vs compute power", Fig6},
		{"Figure 7", "TCO vs ISL data rate", Fig7},
		{"Figure 8", "ISL rates to saturate compute", Fig8},
		{"Figure 9", "TCO vs processor architecture", Fig9},
		{"Figure 10", "TCO vs energy efficiency under compression", Fig10},
		{"Figure 11", "normalized TCO, satellite vs terrestrial models", Fig11},
		{"Figure 12", "radiator area vs temperature", Fig12},
		{"Figure 15", "TCO vs efficiency, in-space vs on-Earth", Fig15},
		{"Figure 16", "same with logarithmic hardware price scaling", Fig16},
		{"Figure 17", "accelerator energy-efficiency gains", Fig17},
		{"Figure 19", "TCO vs edge filtering rate", Fig19},
		{"Figure 21", "TCO vs efficiency × filtering", Fig21},
		{"Figure 22", "Wright's-law marginal cost", Fig22},
		{"Figure 23", "distributed vs monolithic at 32 kW", Fig23},
		{"Figure 24", "availability vs time under overprovisioning", Fig24},
		{"Figure 25", "expected working servers vs time", Fig25},
		{"Figure 26", "TID tolerance vs technology node", Fig26},
		{"Figure 27", "soft-error impact on ImageNet ANNs", Fig27},
		{"Figure 28", "TCO of redundancy schemes", Fig28},
	}
}

// RunAll executes the experiments concurrently over the shared parallel
// engine and returns their tables in input order, so rendered output is
// byte-identical to a serial run for any worker count. workers ≤ 0 uses
// the engine default (GOMAXPROCS). The first failing exhibit (lowest
// index among those observed) aborts the run.
func RunAll(exps []Experiment, workers int) ([]Table, error) {
	return RunAllObserved(exps, workers, nil)
}

// RunAllObserved is RunAll with per-exhibit span timing recorded into
// reg (nil disables recording; spans are aggregated under
// "experiments/<ID>" plus a total exhibit counter).
func RunAllObserved(exps []Experiment, workers int, reg *obs.Registry) ([]Table, error) {
	tables, err := par.MapErr(exps, func(e Experiment) (Table, error) {
		sp := reg.StartSpan("experiments/" + e.ID)
		t, err := e.Run()
		sp.End()
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		return t, nil
	}, par.Workers(workers))
	if err == nil {
		reg.Counter("experiments/exhibits").Add(int64(len(exps)))
	}
	return tables, err
}

// ByID finds an experiment by its exhibit ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown exhibit %q", id)
}
