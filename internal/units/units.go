// Package units defines the physical quantity types shared by every model
// in the repository, together with the handful of physical constants the
// paper's derivations rely on.
//
// Quantities are defined as distinct float64 types so that, for example, a
// power cannot be silently passed where a mass is expected. Arithmetic that
// crosses dimensions goes through explicit helper functions (Energy over
// time, radiated flux over area, …) which keeps unit errors out of the
// higher-level models.
package units

import (
	"fmt"
	"math"
	"time"
)

// Physical constants.
const (
	// StefanBoltzmann is σ in W·m⁻²·K⁻⁴.
	StefanBoltzmann = 5.670374419e-8

	// SolarConstant is the solar irradiance at 1 AU in W/m².
	SolarConstant = 1361.0

	// EarthMu is Earth's gravitational parameter in m³/s².
	EarthMu = 3.986004418e14

	// EarthRadius is Earth's mean equatorial radius in meters.
	EarthRadius = 6.3781e6

	// SpaceBackgroundTemp is the cosmic microwave background temperature
	// in kelvin — the radiative sink for a deep-space-facing radiator.
	SpaceBackgroundTemp = 2.7

	// StandardGravity is g₀ in m/s², used to convert specific impulse to
	// exhaust velocity.
	StandardGravity = 9.80665
)

// Power is electrical or thermal power in watts.
type Power float64

// Power helpers.
const (
	Watt     Power = 1
	Kilowatt Power = 1e3
	Megawatt Power = 1e6
)

// KW returns a power of kw kilowatts.
func KW(kw float64) Power { return Power(kw * 1e3) }

// Kilowatts reports the power in kilowatts.
func (p Power) Kilowatts() float64 { return float64(p) / 1e3 }

// Watts reports the power in watts.
func (p Power) Watts() float64 { return float64(p) }

func (p Power) String() string {
	switch {
	case math.Abs(float64(p)) >= 1e6:
		return fmt.Sprintf("%.3g MW", float64(p)/1e6)
	case math.Abs(float64(p)) >= 1e3:
		return fmt.Sprintf("%.3g kW", float64(p)/1e3)
	default:
		return fmt.Sprintf("%.3g W", float64(p))
	}
}

// Mass is mass in kilograms.
type Mass float64

// Kg returns a mass of kg kilograms.
func Kg(kg float64) Mass { return Mass(kg) }

// Kilograms reports the mass in kilograms.
func (m Mass) Kilograms() float64 { return float64(m) }

func (m Mass) String() string {
	if math.Abs(float64(m)) >= 1e3 {
		return fmt.Sprintf("%.3g t", float64(m)/1e3)
	}
	return fmt.Sprintf("%.3g kg", float64(m))
}

// Area is area in square meters.
type Area float64

// SquareMeters reports the area in m².
func (a Area) SquareMeters() float64 { return float64(a) }

func (a Area) String() string { return fmt.Sprintf("%.3g m²", float64(a)) }

// Temperature is absolute temperature in kelvin.
type Temperature float64

// Celsius returns the absolute temperature for a Celsius reading.
func Celsius(c float64) Temperature { return Temperature(c + 273.15) }

// Kelvin reports the temperature in kelvin.
func (t Temperature) Kelvin() float64 { return float64(t) }

// ToCelsius reports the temperature in degrees Celsius.
func (t Temperature) ToCelsius() float64 { return float64(t) - 273.15 }

func (t Temperature) String() string { return fmt.Sprintf("%.4g K", float64(t)) }

// Energy is energy in joules.
type Energy float64

// Joules reports the energy in joules.
func (e Energy) Joules() float64 { return float64(e) }

// WattHours reports the energy in watt-hours.
func (e Energy) WattHours() float64 { return float64(e) / 3600 }

// EnergyOver returns the energy delivered by power p over duration d.
func EnergyOver(p Power, d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// Dollars is monetary cost in US dollars (fiscal-year-fixed).
type Dollars float64

// MUSD returns m million dollars.
func MUSD(m float64) Dollars { return Dollars(m * 1e6) }

// Millions reports the cost in millions of dollars.
func (d Dollars) Millions() float64 { return float64(d) / 1e6 }

func (d Dollars) String() string {
	v := float64(d)
	switch {
	case math.Abs(v) >= 1e9:
		return fmt.Sprintf("$%.3gB", v/1e9)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("$%.3gM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("$%.3gk", v/1e3)
	default:
		return fmt.Sprintf("$%.3g", v)
	}
}

// DataRate is a channel capacity in bits per second.
type DataRate float64

// DataRate helpers.
const (
	BitPerSecond DataRate = 1
	Kbps         DataRate = 1e3
	Mbps         DataRate = 1e6
	Gbps         DataRate = 1e9
	Tbps         DataRate = 1e12
)

// GbpsOf returns a data rate of g gigabits per second.
func GbpsOf(g float64) DataRate { return DataRate(g * 1e9) }

// Gigabits reports the rate in Gbit/s.
func (r DataRate) Gigabits() float64 { return float64(r) / 1e9 }

func (r DataRate) String() string {
	v := float64(r)
	switch {
	case math.Abs(v) >= 1e9:
		return fmt.Sprintf("%.3g Gbit/s", v/1e9)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3g Mbit/s", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.3g kbit/s", v/1e3)
	default:
		return fmt.Sprintf("%.3g bit/s", v)
	}
}

// Dose is accumulated ionizing radiation dose in krad(Si).
type Dose float64

// Krad reports the dose in krad(Si).
func (d Dose) Krad() float64 { return float64(d) }

func (d Dose) String() string { return fmt.Sprintf("%.3g krad(Si)", float64(d)) }

// Velocity is speed in m/s (used for Δv budgets and exhaust velocities).
type Velocity float64

// MetersPerSecond reports the velocity in m/s.
func (v Velocity) MetersPerSecond() float64 { return float64(v) }

func (v Velocity) String() string { return fmt.Sprintf("%.4g m/s", float64(v)) }

// Years is a duration in Julian years, the natural unit for mission
// lifetimes and degradation rates.
type Years float64

// Duration converts a year count to a time.Duration.
func (y Years) Duration() time.Duration {
	return time.Duration(float64(y) * 365.25 * 24 * float64(time.Hour))
}

// Seconds reports the duration in seconds.
func (y Years) Seconds() float64 { return float64(y) * 365.25 * 24 * 3600 }

func (y Years) String() string { return fmt.Sprintf("%.3g yr", float64(y)) }

// SpecificPower is power per unit mass in W/kg, the figure of merit for
// solar arrays and packaged compute.
type SpecificPower float64

// MassFor returns the mass needed to supply power p at this specific power.
func (s SpecificPower) MassFor(p Power) Mass {
	if s <= 0 {
		return 0
	}
	return Mass(float64(p) / float64(s))
}

// ArealDensity is mass per unit area in kg/m² (radiator and array panels).
type ArealDensity float64

// MassFor returns the mass of area a of panel at this areal density.
func (d ArealDensity) MassFor(a Area) Mass { return Mass(float64(d) * float64(a)) }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// ApproxEqual reports whether a and b agree to within rel relative
// tolerance (or 1e-12 absolute for values near zero).
func ApproxEqual(a, b, rel float64) bool {
	d := math.Abs(a - b)
	if d <= 1e-12 {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return d/den <= rel
}
