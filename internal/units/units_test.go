package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPowerConversions(t *testing.T) {
	if got := KW(4).Watts(); got != 4000 {
		t.Errorf("KW(4).Watts() = %v, want 4000", got)
	}
	if got := Power(2500).Kilowatts(); got != 2.5 {
		t.Errorf("Power(2500).Kilowatts() = %v, want 2.5", got)
	}
}

func TestPowerString(t *testing.T) {
	tests := []struct {
		p    Power
		want string
	}{
		{Power(5), "5 W"},
		{KW(4), "4 kW"},
		{Megawatt * 2, "2 MW"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Power(%v).String() = %q, want %q", float64(tt.p), got, tt.want)
		}
	}
}

func TestTemperature(t *testing.T) {
	if got := Celsius(45).Kelvin(); math.Abs(got-318.15) > 1e-9 {
		t.Errorf("Celsius(45) = %v K, want 318.15", got)
	}
	if got := Temperature(273.15).ToCelsius(); math.Abs(got) > 1e-9 {
		t.Errorf("273.15K in Celsius = %v, want 0", got)
	}
}

func TestEnergyOver(t *testing.T) {
	e := EnergyOver(KW(1), time.Hour)
	if got := e.WattHours(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("1 kW over 1h = %v Wh, want 1000", got)
	}
	if got := e.Joules(); math.Abs(got-3.6e6) > 1e-3 {
		t.Errorf("1 kW over 1h = %v J, want 3.6e6", got)
	}
}

func TestDollarsString(t *testing.T) {
	tests := []struct {
		d    Dollars
		want string
	}{
		{Dollars(12), "$12"},
		{Dollars(4500), "$4.5k"},
		{MUSD(3.2), "$3.2M"},
		{Dollars(2.5e9), "$2.5B"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Dollars(%v).String() = %q, want %q", float64(tt.d), got, tt.want)
		}
	}
}

func TestDataRate(t *testing.T) {
	if got := GbpsOf(25).Gigabits(); got != 25 {
		t.Errorf("GbpsOf(25).Gigabits() = %v, want 25", got)
	}
	if got := (100 * Mbps).String(); got != "100 Mbit/s" {
		t.Errorf("100 Mbps String = %q", got)
	}
}

func TestSpecificPowerMassFor(t *testing.T) {
	// An NVIDIA A40-class server at 35 W/kg: 3500 W of servers weigh 100 kg.
	s := SpecificPower(35)
	if got := s.MassFor(Power(3500)).Kilograms(); math.Abs(got-100) > 1e-9 {
		t.Errorf("35 W/kg for 3.5 kW = %v kg, want 100", got)
	}
	if got := SpecificPower(0).MassFor(Power(100)); got != 0 {
		t.Errorf("zero specific power must yield zero mass, got %v", got)
	}
}

func TestArealDensityMassFor(t *testing.T) {
	d := ArealDensity(6)
	if got := d.MassFor(Area(4)).Kilograms(); math.Abs(got-24) > 1e-9 {
		t.Errorf("6 kg/m² × 4 m² = %v kg, want 24", got)
	}
}

func TestYears(t *testing.T) {
	y := Years(5)
	if got := y.Seconds(); math.Abs(got-5*365.25*86400) > 1 {
		t.Errorf("5 yr = %v s", got)
	}
	if got := y.Duration().Hours(); math.Abs(got-5*365.25*24) > 1e-6 {
		t.Errorf("5 yr = %v h", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(10, 20, 0.5); got != 15 {
		t.Errorf("Lerp(10,20,0.5) = %v, want 15", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(100, 100.5, 0.01) {
		t.Error("100 vs 100.5 should be within 1%")
	}
	if ApproxEqual(100, 105, 0.01) {
		t.Error("100 vs 105 should not be within 1%")
	}
	if !ApproxEqual(0, 1e-13, 0.0) {
		t.Error("values within absolute epsilon should compare equal")
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpEndpointsProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e100 || math.Abs(b) > 1e100 {
			return true // avoid overflow in b-a
		}
		// t=0 is exact; t=1 cancels (b-a) so the error bound is relative
		// to the larger operand, not to b.
		scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
		return Lerp(a, b, 0) == a && math.Abs(Lerp(a, b, 1)-b) <= 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
