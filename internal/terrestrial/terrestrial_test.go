package terrestrial

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sudc/internal/units"
)

func TestModelsValid(t *testing.T) {
	if len(Models()) != 3 {
		t.Fatal("want three terrestrial models")
	}
	for _, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateCatchesBadShares(t *testing.T) {
	bad := Model{Name: "bad", Shares: map[Category]float64{Servers: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Error("shares not summing to 1 must error")
	}
	neg := Model{Name: "neg", Shares: map[Category]float64{Servers: -0.5, Other: 1.5}}
	if err := neg.Validate(); err == nil {
		t.Error("negative share must error")
	}
}

func TestPaperShareBands(t *testing.T) {
	// Paper: "server costs range from 57% to 72% of TCO, while power costs
	// are only 7% to 13% of TCO in terrestrial datacenters".
	for _, m := range Models() {
		if s := m.Share(Servers); s < 0.57 || s > 0.72 {
			t.Errorf("%s: server share %.2f outside [0.57, 0.72]", m.Name, s)
		}
		if p := m.Share(PowerEnergy); p < 0.07 || p > 0.13 {
			t.Errorf("%s: power share %.2f outside [0.07, 0.13]", m.Name, p)
		}
	}
}

func TestFig15Asymptotes(t *testing.T) {
	// Figure 15's labels at large efficiency scalar: Default ≈ 0.93,
	// HPE ≈ 0.85, LPO ≈ 0.76 (constant hardware price).
	tests := []struct {
		mode ScalingMode
		want float64
	}{
		{DefaultScaling, 0.93},
		{HPEScaling, 0.85},
		{LPOScaling, 0.76},
	}
	for _, tt := range tests {
		got, err := Hardy.RelativeTCO(1e6, tt.mode, ConstantPrice)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 0.035 {
			t.Errorf("%v asymptote = %.3f, want ≈%.2f", tt.mode, got, tt.want)
		}
	}
}

func TestFig15BaselineIsOne(t *testing.T) {
	for _, m := range Models() {
		for _, mode := range []ScalingMode{DefaultScaling, HPEScaling, LPOScaling} {
			got, err := m.RelativeTCO(1, mode, ConstantPrice)
			if err != nil {
				t.Fatal(err)
			}
			if !units.ApproxEqual(got, 1, 1e-12) {
				t.Errorf("%s/%v at e=1 = %v, want 1", m.Name, mode, got)
			}
		}
	}
}

func TestFig15DefaultImpactUnderTenPercent(t *testing.T) {
	// Paper: "the impact of compute energy efficiency on TCO of a
	// terrestrial datacenter is minimal — less than ten percent for the
	// On-Earth (Default) case", and ≤25% for LPO.
	d, _ := Hardy.RelativeTCO(1000, DefaultScaling, ConstantPrice)
	if 1-d >= 0.10 {
		t.Errorf("Default saving = %.3f, want <0.10", 1-d)
	}
	l, _ := Hardy.RelativeTCO(1000, LPOScaling, ConstantPrice)
	if 1-l >= 0.25 {
		t.Errorf("LPO saving = %.3f, want <0.25", 1-l)
	}
}

func TestFig16LogPriceDoublesTerrestrialTCO(t *testing.T) {
	// Paper: with logarithmic price scaling, terrestrial TCO shows "over a
	// 100% increase in TCO with 200× energy efficiency scaling".
	got, err := Barroso.RelativeTCO(200, DefaultScaling, LogarithmicPrice)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 2.0 {
		t.Errorf("Barroso at 200× with log price = %.2f, want >2", got)
	}
	// And rises monotonically past e ≈ 10 (price growth beats energy saving).
	v100, _ := Barroso.RelativeTCO(100, DefaultScaling, LogarithmicPrice)
	v1000, _ := Barroso.RelativeTCO(1000, DefaultScaling, LogarithmicPrice)
	if !(v1000 > v100 && v100 > 1) {
		t.Errorf("log-price TCO must grow: %v %v", v100, v1000)
	}
}

func TestPriceMultiplier(t *testing.T) {
	// "computer hardware which is 100× more energy efficient than baseline
	// costs 3× more money."
	if got := LogarithmicPrice.PriceMultiplier(100); !units.ApproxEqual(got, 3, 1e-12) {
		t.Errorf("log price at 100× = %v, want 3", got)
	}
	if got := ConstantPrice.PriceMultiplier(100); got != 1 {
		t.Errorf("constant price at 100× = %v, want 1", got)
	}
	if got := LogarithmicPrice.PriceMultiplier(0.5); got != 1 {
		t.Errorf("sub-1 efficiency clamps to baseline, got %v", got)
	}
}

func TestRelativeTCOErrors(t *testing.T) {
	if _, err := Hardy.RelativeTCO(0.5, DefaultScaling, ConstantPrice); err == nil {
		t.Error("efficiency < 1 must error")
	}
	bad := Model{Name: "bad", Shares: map[Category]float64{Servers: 2}}
	if _, err := bad.RelativeTCO(2, DefaultScaling, ConstantPrice); err == nil {
		t.Error("invalid model must error")
	}
}

func TestScalingModeOrdering(t *testing.T) {
	// At any efficiency > 1: LPO saves most, Default least.
	f := func(raw uint8) bool {
		e := 1 + float64(raw)
		d, err1 := Hardy.RelativeTCO(e, DefaultScaling, ConstantPrice)
		h, err2 := Hardy.RelativeTCO(e, HPEScaling, ConstantPrice)
		l, err3 := Hardy.RelativeTCO(e, LPOScaling, ConstantPrice)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return l <= h && h <= d && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	if !strings.Contains(HPEScaling.String(), "HPE") {
		t.Error("ScalingMode string")
	}
	if Servers.String() != "servers" {
		t.Error("Category string")
	}
	if !strings.Contains(Category(55).String(), "55") || !strings.Contains(ScalingMode(55).String(), "55") {
		t.Error("unknown enum strings")
	}
	if len(Categories()) != int(numCategories) {
		t.Error("Categories() incomplete")
	}
}
