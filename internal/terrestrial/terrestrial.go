// Package terrestrial models terrestrial datacenter TCO breakdowns — the
// comparison baseline for the paper's Figures 11, 15 and 16. Unlike a
// SµDC, a terrestrial datacenter's TCO is dominated by server capital and
// facilities, not power: "server costs range from 57% to 72% of TCO, while
// power costs are only 7% to 13%" (paper §IV-B, after Hardy et al. [30],
// Barroso et al. [8], and Cui et al. [15]).
package terrestrial

import (
	"errors"
	"fmt"
	"math"
)

// Category is a terrestrial TCO cost category (Figure 11's legend).
type Category int

// Categories in reporting order.
const (
	Servers Category = iota
	Networking
	PowerEnergy
	PowerDistribution
	Infrastructure
	Other
	numCategories
)

var categoryNames = [...]string{
	"servers", "networking", "power-energy", "power-distribution",
	"infrastructure", "other",
}

func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Categories returns all categories in reporting order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Model is a normalized terrestrial TCO breakdown (shares sum to 1).
type Model struct {
	Name   string
	Shares map[Category]float64
}

// The three terrestrial models the paper compares against.
var (
	// Hardy is the analytical framework of Hardy et al. [30] — the TCO
	// breakdown the paper's Figure 15/16 scaling study is built on.
	Hardy = Model{
		Name: "Hardy et al.",
		Shares: map[Category]float64{
			Servers: 0.57, Networking: 0.08, PowerEnergy: 0.07,
			PowerDistribution: 0.12, Infrastructure: 0.10, Other: 0.06,
		},
	}
	// Barroso is the warehouse-scale-computer breakdown of Barroso &
	// Hölzle [8]: server-capital heavy, cheap hyperscale power.
	Barroso = Model{
		Name: "Barroso & Hölzle",
		Shares: map[Category]float64{
			Servers: 0.72, Networking: 0.05, PowerEnergy: 0.07,
			PowerDistribution: 0.08, Infrastructure: 0.06, Other: 0.02,
		},
	}
	// Cui is the thermally-focused model of Cui et al. [15].
	Cui = Model{
		Name: "Cui et al.",
		Shares: map[Category]float64{
			Servers: 0.62, Networking: 0.07, PowerEnergy: 0.10,
			PowerDistribution: 0.12, Infrastructure: 0.06, Other: 0.03,
		},
	}
)

// Models returns the three terrestrial models in the paper's order.
func Models() []Model { return []Model{Hardy, Barroso, Cui} }

// Validate checks that shares are a distribution.
func (m Model) Validate() error {
	var sum float64
	for _, s := range m.Shares {
		if s < 0 {
			return fmt.Errorf("terrestrial: %s: negative share", m.Name)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("terrestrial: %s: shares sum to %v, want 1", m.Name, sum)
	}
	return nil
}

// Share returns the share of a category (0 if absent).
func (m Model) Share(c Category) float64 { return m.Shares[c] }

// ScalingMode selects which cost categories shrink as compute hardware
// energy efficiency improves (Figure 15's three on-Earth curves).
type ScalingMode int

// Scaling modes.
const (
	// DefaultScaling scales only the energy bill.
	DefaultScaling ScalingMode = iota
	// HPEScaling also scales power-distribution hardware sized for
	// high-performance server configurations (half of it).
	HPEScaling
	// LPOScaling scales energy and the full power-distribution plant for
	// low-power high-density configurations.
	LPOScaling
)

func (s ScalingMode) String() string {
	switch s {
	case DefaultScaling:
		return "On-Earth (Default)"
	case HPEScaling:
		return "On-Earth (HPE)"
	case LPOScaling:
		return "On-Earth (LPO)"
	default:
		return fmt.Sprintf("ScalingMode(%d)", int(s))
	}
}

// scalingShare is the fraction of TCO that shrinks with 1/efficiency.
func (m Model) scalingShare(mode ScalingMode) float64 {
	switch mode {
	case HPEScaling:
		return m.Share(PowerEnergy) + 0.5*m.Share(PowerDistribution)
	case LPOScaling:
		return m.Share(PowerEnergy) + m.Share(PowerDistribution) + 0.5*m.Share(Infrastructure)
	default:
		return m.Share(PowerEnergy)
	}
}

// PriceScaling models how compute hardware price responds to an energy
// efficiency improvement (Figure 16: "computer hardware which is 100× more
// energy efficient than baseline costs 3× more money").
type PriceScaling int

// Price scaling regimes.
const (
	// ConstantPrice holds hardware cost invariant (Figure 15).
	ConstantPrice PriceScaling = iota
	// LogarithmicPrice multiplies hardware cost by 1 + log10(efficiency).
	LogarithmicPrice
)

// PriceMultiplier returns the hardware price multiplier at an efficiency
// scalar e ≥ 1.
func (p PriceScaling) PriceMultiplier(e float64) float64 {
	if e < 1 {
		e = 1
	}
	if p == LogarithmicPrice {
		return 1 + math.Log10(e)
	}
	return 1
}

// RelativeTCO returns the datacenter TCO at compute-hardware energy
// efficiency scalar e (≥1), relative to the e=1 baseline, under the given
// scaling mode and hardware price response.
func (m Model) RelativeTCO(e float64, mode ScalingMode, price PriceScaling) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if e < 1 {
		return 0, errors.New("terrestrial: efficiency scalar must be ≥ 1")
	}
	scaling := m.scalingShare(mode)
	fixed := 1 - scaling - m.Share(Servers)
	return m.Share(Servers)*price.PriceMultiplier(e) + fixed + scaling/e, nil
}
