package adcs

import (
	"strings"
	"testing"
	"testing/quick"

	"sudc/internal/units"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		c       Config
		wantErr bool
	}{
		{"default", DefaultConfig(), false},
		{"two wheels", Config{Pointing: StandardPointing, WheelCount: 2, StarTrackers: 2}, true},
		{"no trackers", Config{Pointing: StandardPointing, WheelCount: 4, StarTrackers: 0}, true},
	}
	for _, tt := range tests {
		if err := tt.c.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tt.name, err, tt.wantErr)
		}
	}
}

func TestSizeErrors(t *testing.T) {
	if _, err := Size(Config{WheelCount: 1, StarTrackers: 1}, 500); err == nil {
		t.Error("invalid config must error")
	}
	if _, err := Size(DefaultConfig(), -1); err == nil {
		t.Error("negative dry mass must error")
	}
}

func TestSizePlausible500kg(t *testing.T) {
	d, err := Size(DefaultConfig(), 500)
	if err != nil {
		t.Fatal(err)
	}
	// A 500 kg smallsat carries roughly 10-20 kg of ADCS.
	if m := d.Mass.Kilograms(); m < 8 || m > 25 {
		t.Errorf("ADCS mass = %.1f kg, want 8-25", m)
	}
	if p := d.Power.Watts(); p < 20 || p > 80 {
		t.Errorf("ADCS power = %.1f W, want 20-80", p)
	}
	if d.HardwareCost < 1e6 || d.HardwareCost > 5e6 {
		t.Errorf("ADCS cost = %v, want low single-digit $M", d.HardwareCost)
	}
}

func TestSublinearMassScaling(t *testing.T) {
	// 4× the satellite should need well under 4× the ADCS (Amdahl effect
	// the paper cites for TCO sublinearity).
	d1, _ := Size(DefaultConfig(), 500)
	d4, _ := Size(DefaultConfig(), 2000)
	ratio := float64(d4.Mass) / float64(d1.Mass)
	if ratio <= 1 || ratio >= 3 {
		t.Errorf("ADCS mass ratio for 4× sat = %.2f, want (1,3)", ratio)
	}
}

func TestFinePointingCostsMore(t *testing.T) {
	std := DefaultConfig()
	fine := DefaultConfig()
	fine.Pointing = FinePointing
	coarse := DefaultConfig()
	coarse.Pointing = CoarsePointing
	dStd, _ := Size(std, 500)
	dFine, _ := Size(fine, 500)
	dCoarse, _ := Size(coarse, 500)
	if !(dFine.HardwareCost > dStd.HardwareCost && dStd.HardwareCost > dCoarse.HardwareCost) {
		t.Errorf("cost must rise with pointing class: %v %v %v",
			dCoarse.HardwareCost, dStd.HardwareCost, dFine.HardwareCost)
	}
	// Pointing class must not change mass, only cost.
	if dFine.Mass != dStd.Mass {
		t.Error("pointing class must not change ADCS mass in this model")
	}
}

func TestPointingClassString(t *testing.T) {
	if !strings.Contains(FinePointing.String(), "fine") {
		t.Errorf("FinePointing.String() = %q", FinePointing)
	}
	if got := PointingClass(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown class String() = %q", got)
	}
}

func TestMassMonotoneInDryMass(t *testing.T) {
	f := func(raw uint16) bool {
		m := units.Mass(10 + float64(raw))
		d1, err1 := Size(DefaultConfig(), m)
		d2, err2 := Size(DefaultConfig(), m+50)
		if err1 != nil || err2 != nil {
			return false
		}
		return d2.Mass > d1.Mass && d2.Power > d1.Power && d2.HardwareCost > d1.HardwareCost
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
