// Package adcs sizes the Attitude Determination and Control System of a
// SµDC. ADCS mass grows with the spacecraft's inertia (reaction wheels must
// absorb gravity-gradient and aerodynamic torques that scale with size) and
// its cost grows steeply with pointing precision — the effect the paper
// points to when explaining why SSCM-SµDC and SEER-Space book ADCS
// differently (SSCM-SµDC "enables fine-grained control over ADCS
// performance parameters").
package adcs

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/units"
)

// PointingClass buckets pointing requirements, coarse to fine.
type PointingClass int

// Pointing classes, coarsest first.
const (
	// CoarsePointing (~1°) suits power- and comms-only buses.
	CoarsePointing PointingClass = iota
	// StandardPointing (~0.1°) suits FSO ISL acquisition with fine-steering
	// mirrors downstream; the SµDC reference designs use this.
	StandardPointing
	// FinePointing (~50 micro-arcmin class, the paper's example) suits
	// imaging payloads.
	FinePointing
)

// String implements fmt.Stringer.
func (p PointingClass) String() string {
	switch p {
	case CoarsePointing:
		return "coarse (~1°)"
	case StandardPointing:
		return "standard (~0.1°)"
	case FinePointing:
		return "fine (µ-arcmin)"
	default:
		return fmt.Sprintf("PointingClass(%d)", int(p))
	}
}

// costFactor is the relative cost multiplier per pointing class.
func (p PointingClass) costFactor() float64 {
	switch p {
	case CoarsePointing:
		return 0.6
	case StandardPointing:
		return 1.0
	case FinePointing:
		return 2.2
	default:
		return 1.0
	}
}

// Config describes the ADCS design inputs.
type Config struct {
	Pointing PointingClass
	// WheelCount is the number of reaction wheels (≥3; 4 for redundancy).
	WheelCount int
	// StarTrackers is the number of star-tracker heads.
	StarTrackers int
}

// DefaultConfig is the SµDC reference ADCS: standard pointing, a redundant
// 4-wheel set, and two star trackers.
func DefaultConfig() Config {
	return Config{Pointing: StandardPointing, WheelCount: 4, StarTrackers: 2}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.WheelCount < 3 {
		return errors.New("adcs: three-axis control needs at least 3 wheels")
	}
	if c.StarTrackers < 1 {
		return errors.New("adcs: at least one star tracker required")
	}
	return nil
}

// Design is a sized ADCS.
type Design struct {
	Config Config
	// Mass is the total ADCS hardware mass.
	Mass units.Mass
	// Power is the orbit-average ADCS electrical draw.
	Power units.Power
	// HardwareCost is the recurring ADCS hardware cost.
	HardwareCost units.Dollars
}

// Size sizes the ADCS for a satellite of the given dry mass. Wheel momentum
// capacity — and thus wheel mass and power — scales with the disturbance
// torques, which grow roughly with m^(5/3) for geometrically similar
// spacecraft; we use the standard smallsat regression mass_adcs ≈
// base + k·m_dry^0.7 which captures the same "scales, but slowly" behaviour
// the paper leans on for its sublinearity argument.
func Size(c Config, dryMass units.Mass) (Design, error) {
	if err := c.Validate(); err != nil {
		return Design{}, err
	}
	if dryMass < 0 {
		return Design{}, errors.New("adcs: negative dry mass")
	}
	m := float64(dryMass)

	wheelSet := 1.2*float64(c.WheelCount) + 0.55*float64(c.WheelCount)*math.Pow(m/500, 0.7)
	trackers := 1.1 * float64(c.StarTrackers)
	electronics := 3.0 + 0.4*math.Pow(m/500, 0.7)
	mass := units.Mass(wheelSet + trackers + electronics)

	power := units.Power(15 + 20*math.Pow(m/500, 0.7))

	cost := units.Dollars((0.9e6 + 1.4e6*math.Pow(m/500, 0.5)) * c.Pointing.costFactor())

	return Design{Config: c, Mass: mass, Power: power, HardwareCost: cost}, nil
}
