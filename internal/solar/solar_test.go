package solar

import (
	"math"
	"testing"
	"testing/quick"

	"sudc/internal/units"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero efficiency", func(c *Config) { c.Cell.Efficiency = 0 }},
		{"efficiency > 1", func(c *Config) { c.Cell.Efficiency = 1.2 }},
		{"zero DoD", func(c *Config) { c.Battery.DepthOfDischarge = 0 }},
		{"zero lifetime", func(c *Config) { c.Lifetime = 0 }},
		{"zero PMAD eff", func(c *Config) { c.PMADEfficiency = 0 }},
	}
	for _, tt := range tests {
		c := DefaultConfig()
		tt.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tt.name)
		}
	}
}

func TestSizeRejectsNegativeLoad(t *testing.T) {
	if _, err := DefaultConfig().Size(units.Power(-1)); err == nil {
		t.Error("expected error for negative load")
	}
}

func TestLifetimeDegradation(t *testing.T) {
	c := DefaultConfig()
	got := c.LifetimeDegradation()
	want := math.Pow(1-0.0275, 5)
	if !units.ApproxEqual(got, want, 1e-12) {
		t.Errorf("degradation = %v, want %v", got, want)
	}
	// Longer lifetime → more degradation → more BOL power required.
	c10 := c
	c10.Lifetime = 10
	if c10.LifetimeDegradation() >= got {
		t.Error("degradation factor must shrink with lifetime")
	}
}

func TestBOLExceedsEOLLoad(t *testing.T) {
	d, err := DefaultConfig().Size(units.KW(4))
	if err != nil {
		t.Fatal(err)
	}
	// Eclipse recharge + degradation + PMAD means BOL array ≫ load.
	ratio := float64(d.BOLArrayPower) / float64(d.EOLLoad)
	if ratio < 1.3 || ratio > 2.5 {
		t.Errorf("BOL/EOL ratio = %.2f, want in [1.3, 2.5]", ratio)
	}
}

func TestFourKWDesignPlausible(t *testing.T) {
	d, err := DefaultConfig().Size(units.KW(4))
	if err != nil {
		t.Fatal(err)
	}
	// ~4 kW EOL load with GaAs: array of roughly 15-30 m².
	if a := d.ArrayArea.SquareMeters(); a < 10 || a > 40 {
		t.Errorf("array area = %.1f m², want 10-40", a)
	}
	// Array mass via 80 W/kg: ~70-120 kg.
	if m := d.ArrayMass.Kilograms(); m < 50 || m > 150 {
		t.Errorf("array mass = %.1f kg, want 50-150", m)
	}
	// Battery: one ~36 min eclipse of 4 kW at 30% DoD ≈ 8 kWh → ~55 kg.
	if m := d.BatteryMass.Kilograms(); m < 30 || m > 100 {
		t.Errorf("battery mass = %.1f kg, want 30-100", m)
	}
	if d.HardwareCost <= 0 {
		t.Error("hardware cost must be positive")
	}
	if got := d.TotalMass(); got != d.ArrayMass+d.BatteryMass+d.PMADMass {
		t.Errorf("TotalMass inconsistent: %v", got)
	}
}

func TestSizeLinearity(t *testing.T) {
	// The EPS model is linear in load: doubling load doubles everything.
	c := DefaultConfig()
	d1, _ := c.Size(units.KW(2))
	d2, _ := c.Size(units.KW(4))
	if !units.ApproxEqual(2*float64(d1.BOLArrayPower), float64(d2.BOLArrayPower), 1e-9) {
		t.Error("BOL power not linear in load")
	}
	if !units.ApproxEqual(2*float64(d1.TotalMass()), float64(d2.TotalMass()), 1e-9) {
		t.Error("EPS mass not linear in load")
	}
}

func TestSiliconHeavierThanGaAs(t *testing.T) {
	ga := DefaultConfig()
	si := DefaultConfig()
	si.Cell = Silicon
	dGa, _ := ga.Size(units.KW(4))
	dSi, _ := si.Size(units.KW(4))
	if dSi.ArrayMass <= dGa.ArrayMass {
		t.Error("silicon array should be heavier than GaAs for same load")
	}
	if dSi.ArrayArea <= dGa.ArrayArea {
		t.Error("silicon array should be larger than GaAs for same load")
	}
}

func TestLongerLifetimeNeedsBiggerArray(t *testing.T) {
	c5 := DefaultConfig()
	c10 := DefaultConfig()
	c10.Lifetime = 10
	d5, _ := c5.Size(units.KW(4))
	d10, _ := c10.Size(units.KW(4))
	if d10.BOLArrayPower <= d5.BOLArrayPower {
		t.Error("10-yr mission must install more BOL power than 5-yr")
	}
}

func TestZeroLoadZeroDesign(t *testing.T) {
	d, err := DefaultConfig().Size(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalMass() != 0 || d.BOLArrayPower != 0 || d.HardwareCost != 0 {
		t.Errorf("zero load must produce zero design, got %+v", d)
	}
}

func TestSizeMonotoneProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(raw uint16) bool {
		load := units.Power(10 + float64(raw)) // 10 W .. ~65 kW
		d1, err1 := c.Size(load)
		d2, err2 := c.Size(load + 100)
		if err1 != nil || err2 != nil {
			return false
		}
		return d2.BOLArrayPower > d1.BOLArrayPower &&
			d2.TotalMass() > d1.TotalMass() &&
			d2.HardwareCost > d1.HardwareCost
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeRTG(t *testing.T) {
	d, err := SizeRTG(GPHSClass, units.Power(300), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Decay over 5 years means BOL > EOL.
	if d.BOLArrayPower <= d.EOLLoad {
		t.Error("RTG BOL output must exceed EOL load")
	}
	// GPHS class: ~300 W needs ~56 kg and >$100M.
	if m := d.ArrayMass.Kilograms(); m < 40 || m > 80 {
		t.Errorf("RTG mass = %.0f kg, want ≈56", m)
	}
	if d.HardwareCost < 100e6 {
		t.Errorf("RTG cost = %v, want >$100M (why LEO SµDCs are solar)", d.HardwareCost)
	}
	// No battery: the source never eclipses.
	if d.BatteryMass != 0 || d.BatteryCapacity != 0 {
		t.Error("RTG design needs no battery")
	}
}

func TestSizeRTGErrors(t *testing.T) {
	if _, err := SizeRTG(GPHSClass, -1, 5); err == nil {
		t.Error("negative load must error")
	}
	if _, err := SizeRTG(GPHSClass, 100, 0); err == nil {
		t.Error("zero lifetime must error")
	}
	if _, err := SizeRTG(RTG{}, 100, 5); err == nil {
		t.Error("zero specific power must error")
	}
}

func TestRTGVsSolarTradeoff(t *testing.T) {
	// At LEO loads, solar hardware is orders of magnitude cheaper per
	// watt; the RTG's only advantage is eclipse-free operation.
	sol, err := DefaultConfig().Size(units.Power(300))
	if err != nil {
		t.Fatal(err)
	}
	rtg, err := SizeRTG(GPHSClass, units.Power(300), 5)
	if err != nil {
		t.Fatal(err)
	}
	if float64(rtg.HardwareCost) < 50*float64(sol.HardwareCost) {
		t.Error("RTG must be dramatically costlier than solar at LEO")
	}
	if rtg.ArrayArea != 0 {
		t.Error("RTG has no array area")
	}
}
