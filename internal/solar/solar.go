// Package solar sizes the electrical power subsystem (EPS) of a SµDC:
// solar array area and mass for a required end-of-life load, battery
// capacity for eclipse operation, and power management & distribution
// (PMAD) overheads.
//
// The paper's TCO model increases the required power-generation capacity of
// the satellite by the power cost of computation, derives beginning-of-life
// (BOL) power from end-of-life (EOL) power using the solar-cell technology
// and an orbit-specific degradation rate (≤3 %/yr), and propagates the
// resulting array and battery mass into the structural, ADCS and propulsion
// sizing. This package implements those derivations.
package solar

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/orbit"
	"sudc/internal/units"
)

// CellTechnology describes a photovoltaic cell technology.
type CellTechnology struct {
	Name string
	// Efficiency is the BOL cell conversion efficiency (0–1).
	Efficiency float64
	// AnnualDegradation is the fractional efficiency loss per year
	// (the paper: "generally ≤3 % annual loss").
	AnnualDegradation float64
	// InherentDegradation covers packing factor, wiring, temperature and
	// pointing losses between cell and array output (typical ~0.77).
	InherentDegradation float64
	// SpecificPower is array-level W/kg at BOL including substrate and
	// deployment mechanism.
	SpecificPower units.SpecificPower
	// CostPerWatt is the recurring array cost in $/W(BOL).
	CostPerWatt units.Dollars
}

// Standard cell technologies.
var (
	// TripleJunctionGaAs is the modern smallsat default.
	TripleJunctionGaAs = CellTechnology{
		Name:                "triple-junction GaAs",
		Efficiency:          0.295,
		AnnualDegradation:   0.0275,
		InherentDegradation: 0.77,
		SpecificPower:       55,
		CostPerWatt:         400,
	}
	// Silicon is the legacy low-cost option.
	Silicon = CellTechnology{
		Name:                "silicon",
		Efficiency:          0.17,
		AnnualDegradation:   0.0375,
		InherentDegradation: 0.77,
		SpecificPower:       45,
		CostPerWatt:         150,
	}
)

// BatteryTechnology describes secondary-battery characteristics.
type BatteryTechnology struct {
	Name string
	// SpecificEnergy in Wh/kg.
	SpecificEnergy float64
	// DepthOfDischarge is the allowed DoD for the required cycle life
	// (LEO means ~30k cycles over 5 years, so DoD is kept low).
	DepthOfDischarge float64
	// RoundTripEfficiency of charge/discharge.
	RoundTripEfficiency float64
	// CostPerWh is recurring cost in $/Wh.
	CostPerWh units.Dollars
}

// LithiumIon is the modern default battery technology.
var LithiumIon = BatteryTechnology{
	Name:                "lithium-ion",
	SpecificEnergy:      150,
	DepthOfDischarge:    0.30,
	RoundTripEfficiency: 0.90,
	CostPerWh:           80,
}

// Config collects the EPS design inputs.
type Config struct {
	Cell    CellTechnology
	Battery BatteryTechnology
	Orbit   orbit.Orbit
	// Lifetime is the mission duration that BOL sizing must cover.
	Lifetime units.Years
	// PMADMassFraction is the mass of regulators/harness as a fraction of
	// array+battery mass.
	PMADMassFraction float64
	// PMADEfficiency is the end-to-end distribution efficiency.
	PMADEfficiency float64
}

// DefaultConfig returns the configuration used for the paper's reference
// designs: GaAs cells, Li-ion batteries, a 550 km EO orbit, 5-year life.
func DefaultConfig() Config {
	return Config{
		Cell:             TripleJunctionGaAs,
		Battery:          LithiumIon,
		Orbit:            orbit.DefaultEO,
		Lifetime:         5,
		PMADMassFraction: 0.20,
		PMADEfficiency:   0.95,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cell.Efficiency <= 0 || c.Cell.Efficiency >= 1 {
		return fmt.Errorf("solar: cell efficiency %v out of (0,1)", c.Cell.Efficiency)
	}
	if c.Battery.DepthOfDischarge <= 0 || c.Battery.DepthOfDischarge > 1 {
		return errors.New("solar: battery depth of discharge out of (0,1]")
	}
	if c.Lifetime <= 0 {
		return errors.New("solar: lifetime must be positive")
	}
	if c.PMADEfficiency <= 0 || c.PMADEfficiency > 1 {
		return errors.New("solar: PMAD efficiency out of (0,1]")
	}
	return nil
}

// Design is the sized EPS.
type Design struct {
	// EOLLoad is the continuous load the EPS must supply at end of life.
	EOLLoad units.Power
	// BOLArrayPower is the array output that must be installed at BOL.
	BOLArrayPower units.Power
	// ArrayArea is the solar array area.
	ArrayArea units.Area
	// ArrayMass, BatteryMass, PMADMass are subsystem masses.
	ArrayMass   units.Mass
	BatteryMass units.Mass
	PMADMass    units.Mass
	// BatteryCapacity is the installed battery energy.
	BatteryCapacity units.Energy
	// HardwareCost is the recurring EPS hardware cost.
	HardwareCost units.Dollars
}

// TotalMass returns the EPS mass.
func (d Design) TotalMass() units.Mass {
	return d.ArrayMass + d.BatteryMass + d.PMADMass
}

// LifetimeDegradation returns the fraction of BOL array output remaining
// after the configured lifetime: (1-d)^L.
func (c Config) LifetimeDegradation() float64 {
	return math.Pow(1-c.Cell.AnnualDegradation, float64(c.Lifetime))
}

// Size designs an EPS that can deliver the given continuous load at end of
// life, through eclipse, for the configured orbit and lifetime.
//
// The array must supply, while in sun: the load itself, the battery
// recharge for the next eclipse (inflated by round-trip efficiency), and
// PMAD losses; and it must still do so after lifetime degradation.
func (c Config) Size(eolLoad units.Power) (Design, error) {
	if err := c.Validate(); err != nil {
		return Design{}, err
	}
	if eolLoad < 0 {
		return Design{}, errors.New("solar: negative load")
	}

	fe := c.Orbit.EclipseFraction()
	fs := 1 - fe

	// Energy balance per orbit at EOL: array (in sun) covers sun-side load
	// plus eclipse-side load routed through the battery.
	// P_array_eol * fs = load*fs + load*fe/η_battery, all over η_PMAD.
	load := float64(eolLoad)
	arrayEOL := (load*fs + load*fe/c.Battery.RoundTripEfficiency) / fs / c.PMADEfficiency

	// BOL array output accounting for lifetime degradation.
	arrayBOL := arrayEOL / c.LifetimeDegradation()

	// Area from cell efficiency and inherent degradation.
	area := arrayBOL / (units.SolarConstant * c.Cell.Efficiency * c.Cell.InherentDegradation)

	// Battery stores one eclipse worth of load energy at the allowed DoD.
	eclipseSeconds := c.Orbit.Period() * fe
	eclipseEnergy := load * eclipseSeconds
	capacity := eclipseEnergy / c.Battery.DepthOfDischarge

	arrayMass := c.Cell.SpecificPower.MassFor(units.Power(arrayBOL))
	batteryMass := units.Mass(capacity / 3600 / c.Battery.SpecificEnergy)
	pmadMass := units.Mass(c.PMADMassFraction * float64(arrayMass+batteryMass))

	cost := units.Dollars(arrayBOL*float64(c.Cell.CostPerWatt) +
		capacity/3600*float64(c.Battery.CostPerWh))

	return Design{
		EOLLoad:         eolLoad,
		BOLArrayPower:   units.Power(arrayBOL),
		ArrayArea:       units.Area(area),
		ArrayMass:       arrayMass,
		BatteryMass:     batteryMass,
		PMADMass:        pmadMass,
		BatteryCapacity: units.Energy(capacity),
		HardwareCost:    cost,
	}, nil
}

// RTG describes a radioisotope thermoelectric generator — the "nuclear
// battery" option the paper notes for distant missions [63]. RTGs deliver
// continuous power with no eclipse battery, but at miserable specific
// power and extreme cost, which is why LEO SµDCs are solar.
type RTG struct {
	Name string
	// SpecificPower is electrical W per kg at beginning of life.
	SpecificPower units.SpecificPower
	// AnnualDecay is the isotope+thermocouple output decay per year.
	AnnualDecay float64
	// CostPerWatt is recurring cost per BOL electrical watt.
	CostPerWatt units.Dollars
}

// GPHSClass is a GPHS-RTG-class generator (≈300 W, ≈55 kg, Pu-238).
var GPHSClass = RTG{
	Name:          "GPHS-RTG class",
	SpecificPower: 5.4,
	AnnualDecay:   0.008,
	CostPerWatt:   400e3,
}

// SizeRTG designs an RTG power subsystem for a continuous end-of-life
// load over the given lifetime. No battery is needed (the source does not
// eclipse), but BOL output must cover the decay.
func SizeRTG(r RTG, eolLoad units.Power, lifetime units.Years) (Design, error) {
	if eolLoad < 0 {
		return Design{}, errors.New("solar: negative load")
	}
	if lifetime <= 0 {
		return Design{}, errors.New("solar: lifetime must be positive")
	}
	if r.SpecificPower <= 0 {
		return Design{}, errors.New("solar: RTG needs positive specific power")
	}
	remaining := math.Pow(1-r.AnnualDecay, float64(lifetime))
	bol := float64(eolLoad) / remaining
	return Design{
		EOLLoad:       eolLoad,
		BOLArrayPower: units.Power(bol),
		ArrayMass:     r.SpecificPower.MassFor(units.Power(bol)),
		HardwareCost:  units.Dollars(bol * float64(r.CostPerWatt)),
	}, nil
}
