package trade

import (
	"reflect"
	"testing"

	"sudc/internal/core"
	"sudc/internal/par"
	"sudc/internal/units"
)

func base() core.Config { return core.DefaultConfig(units.KW(4)) }

func TestDimensionValidate(t *testing.T) {
	good := ComputePowerKW(1, 2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Dimension{
		{Name: "", Values: []float64{1}, Apply: func(*core.Config, float64) {}},
		{Name: "x", Values: nil, Apply: func(*core.Config, float64) {}},
		{Name: "x", Values: []float64{1}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSweepCartesianProduct(t *testing.T) {
	pts, err := Sweep(base(), []Dimension{
		ComputePowerKW(0.5, 2, 4),
		LifetimeYears(3, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("sweep produced %d points, want 6", len(pts))
	}
	// Every combination present exactly once.
	seen := map[[2]float64]bool{}
	for _, p := range pts {
		key := [2]float64{p.Coords["compute kW"], p.Coords["lifetime yr"]}
		if seen[key] {
			t.Errorf("duplicate point %v", key)
		}
		seen[key] = true
		if p.TCO <= 0 || p.WetMass <= 0 || p.BOLPower <= 0 {
			t.Errorf("point %v has non-positive metrics", key)
		}
	}
	if len(seen) != 6 {
		t.Errorf("only %d distinct combinations", len(seen))
	}
}

func TestSweepMonotoneInPower(t *testing.T) {
	pts, err := Sweep(base(), []Dimension{ComputePowerKW(0.5, 1, 2, 4, 8)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TCO <= pts[i-1].TCO {
			t.Error("TCO must grow along the power axis")
		}
		if pts[i].WetMass <= pts[i-1].WetMass {
			t.Error("mass must grow along the power axis")
		}
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := Sweep(base(), nil); err == nil {
		t.Error("no dimensions must error")
	}
	if _, err := Sweep(base(), []Dimension{{Name: "x", Values: []float64{1}}}); err == nil {
		t.Error("invalid dimension must error")
	}
	// A value that breaks the config surfaces the build error with coords.
	if _, err := Sweep(base(), []Dimension{ComputePowerKW(0)}); err == nil {
		t.Error("invalid config value must error")
	}
	// Oversized sweeps are rejected up front.
	big := make([]float64, 400)
	for i := range big {
		big[i] = 1 + float64(i)
	}
	if _, err := Sweep(base(), []Dimension{
		ComputePowerKW(big...), LifetimeYears(big[:300]...),
	}); err == nil {
		t.Error("100k+ sweep must be rejected")
	}
}

func TestParetoFrontInvariants(t *testing.T) {
	pts, err := Sweep(base(), []Dimension{
		ComputePowerKW(0.5, 1, 2, 4, 8),
		LifetimeYears(3, 5, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	objs := []Objective{MinTCO, MaxComputePower}
	front, err := ParetoFront(pts, objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 || len(front) > len(pts) {
		t.Fatalf("front size %d out of range", len(front))
	}
	// No front point dominates another front point.
	for i, p := range front {
		for j, q := range front {
			if i != j && dominates(p, q, objs) {
				t.Errorf("front point %v dominates front point %v", p.Coords, q.Coords)
			}
		}
	}
	// Every non-front point is dominated by some front point.
	inFront := func(p Point) bool {
		for _, q := range front {
			if &q != &p && q.TCO == p.TCO && q.WetMass == p.WetMass {
				return true
			}
		}
		return false
	}
	for _, p := range pts {
		if inFront(p) {
			continue
		}
		dominated := false
		for _, q := range front {
			if dominates(q, p, objs) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("non-front point %v is not dominated", p.Coords)
		}
	}
	// With TCO-vs-compute objectives, each power level's cheapest lifetime
	// is on the front: expect one point per power value.
	if len(front) != 5 {
		t.Errorf("front has %d points, want one per power level (5)", len(front))
	}
}

func TestParetoErrors(t *testing.T) {
	if _, err := ParetoFront(nil, []Objective{MinTCO}); err == nil {
		t.Error("no points must error")
	}
	if _, err := ParetoFront([]Point{{}}, nil); err == nil {
		t.Error("no objectives must error")
	}
}

func TestBest(t *testing.T) {
	pts, err := Sweep(base(), []Dimension{ComputePowerKW(0.5, 2, 8)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Best(pts, MinTCO)
	if err != nil {
		t.Fatal(err)
	}
	if b.Coords["compute kW"] != 0.5 {
		t.Errorf("cheapest point at %v kW, want 0.5", b.Coords["compute kW"])
	}
	if _, err := Best(nil, MinTCO); err == nil {
		t.Error("no points must error")
	}
}

func TestAltitudeDimension(t *testing.T) {
	pts, err := Sweep(base(), []Dimension{AltitudeKM(400, 550, 800)})
	if err != nil {
		t.Fatal(err)
	}
	// Lower orbits fight more drag: more propellant, more TCO, all else equal.
	if pts[0].TCO <= pts[2].TCO {
		t.Error("a 400 km orbit must cost more than 800 km (drag make-up)")
	}
}

func TestISLDimension(t *testing.T) {
	pts, err := Sweep(base(), []Dimension{ISLGbps(5, 50, 200)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TCO <= pts[i-1].TCO {
			t.Error("TCO must grow with installed ISL capacity")
		}
	}
}

func TestSweepInvariantUnderWorkerCount(t *testing.T) {
	dims := []Dimension{
		ComputePowerKW(0.5, 2, 4, 8),
		LifetimeYears(3, 5, 10),
		ISLGbps(10, 50),
	}
	ref, err := Sweep(base(), dims)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		prev := par.SetDefaultWorkers(w)
		pts, err := Sweep(base(), dims)
		par.SetDefaultWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(ref, pts) {
			t.Errorf("workers=%d: sweep points differ from default-worker run", w)
		}
	}
}

func TestSweepErrorIsDeterministic(t *testing.T) {
	// A dimension that drives the design infeasible partway through the
	// grid must cancel the sweep and surface the failing coordinates.
	dims := []Dimension{ComputePowerKW(4, -1, -2)}
	for _, w := range []int{1, 4} {
		prev := par.SetDefaultWorkers(w)
		_, err := Sweep(base(), dims)
		par.SetDefaultWorkers(prev)
		if err == nil {
			t.Fatalf("workers=%d: infeasible point must error", w)
		}
	}
}
