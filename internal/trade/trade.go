// Package trade is a design-space sweep engine over SµDC configurations:
// define dimensions (compute power, lifetime, altitude, ISL capacity, …),
// sweep their cartesian product through the core design+cost model, and
// extract the Pareto front over any set of objectives (TCO, wet mass,
// power). It generalizes the paper's one-dimensional sensitivity figures
// into the multi-dimensional trade studies a mission designer runs.
package trade

import (
	"errors"
	"fmt"

	"sudc/internal/core"
	"sudc/internal/par"
	"sudc/internal/units"
)

// Dimension is one swept axis of the configuration space.
type Dimension struct {
	// Name labels the axis ("compute kW", "lifetime yr").
	Name string
	// Values are the grid points.
	Values []float64
	// Apply writes one value into a configuration.
	Apply func(*core.Config, float64)
}

// Common dimensions.
var (
	// ComputePowerKW sweeps the compute budget.
	ComputePowerKW = func(values ...float64) Dimension {
		return Dimension{
			Name:   "compute kW",
			Values: values,
			Apply:  func(c *core.Config, v float64) { c.ComputePower = units.KW(v) },
		}
	}
	// LifetimeYears sweeps the mission duration.
	LifetimeYears = func(values ...float64) Dimension {
		return Dimension{
			Name:   "lifetime yr",
			Values: values,
			Apply:  func(c *core.Config, v float64) { c.Lifetime = units.Years(v) },
		}
	}
	// ISLGbps sweeps the installed crosslink capacity.
	ISLGbps = func(values ...float64) Dimension {
		return Dimension{
			Name:   "isl Gbit/s",
			Values: values,
			Apply:  func(c *core.Config, v float64) { c.ISLRate = units.GbpsOf(v) },
		}
	}
	// AltitudeKM sweeps the orbit altitude.
	AltitudeKM = func(values ...float64) Dimension {
		return Dimension{
			Name:   "altitude km",
			Values: values,
			Apply:  func(c *core.Config, v float64) { c.Orbit.AltitudeM = v * 1e3 },
		}
	}
)

// Validate reports dimension errors.
func (d Dimension) Validate() error {
	if d.Name == "" {
		return errors.New("trade: dimension without name")
	}
	if len(d.Values) == 0 {
		return fmt.Errorf("trade: dimension %q has no values", d.Name)
	}
	if d.Apply == nil {
		return fmt.Errorf("trade: dimension %q has no Apply", d.Name)
	}
	return nil
}

// Point is one evaluated design in the sweep.
type Point struct {
	// Coords are the swept values, keyed by dimension name.
	Coords map[string]float64
	// TCO, WetMass, BOLPower, RadiatorArea are the evaluated metrics.
	TCO          units.Dollars
	WetMass      units.Mass
	BOLPower     units.Power
	RadiatorArea units.Area
}

// Objective extracts a to-be-minimized metric from a point.
type Objective struct {
	Name  string
	Value func(Point) float64
}

// Standard objectives.
var (
	// MinTCO minimizes first-unit total cost of ownership.
	MinTCO = Objective{Name: "TCO", Value: func(p Point) float64 { return float64(p.TCO) }}
	// MinWetMass minimizes launch mass.
	MinWetMass = Objective{Name: "wet mass", Value: func(p Point) float64 { return float64(p.WetMass) }}
	// MaxComputePower maximizes the compute budget (negated for the
	// minimizing front).
	MaxComputePower = Objective{Name: "-compute", Value: func(p Point) float64 { return -p.Coords["compute kW"] }}
)

// Sweep evaluates the cartesian product of the dimensions applied to the
// base configuration. Grid points are independent, so the design+cost
// evaluations run in parallel; results keep odometer (row-major) order.
func Sweep(base core.Config, dims []Dimension) ([]Point, error) {
	if len(dims) == 0 {
		return nil, errors.New("trade: no dimensions")
	}
	total := 1
	for _, d := range dims {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		total *= len(d.Values)
		if total > 100000 {
			return nil, errors.New("trade: sweep larger than 100k points")
		}
	}

	// Enumerate the grid first (cheap), then fan the evaluations out.
	combos := make([][]float64, 0, total)
	idx := make([]int, len(dims))
	for {
		vals := make([]float64, len(dims))
		for di, d := range dims {
			vals[di] = d.Values[idx[di]]
		}
		combos = append(combos, vals)

		// Advance the odometer.
		k := len(dims) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(dims[k].Values) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}

	return par.MapErr(combos, func(vals []float64) (Point, error) {
		cfg := base
		coords := make(map[string]float64, len(dims))
		for di, d := range dims {
			d.Apply(&cfg, vals[di])
			coords[d.Name] = vals[di]
		}
		d, err := cfg.Build()
		if err != nil {
			return Point{}, fmt.Errorf("trade: at %v: %w", coords, err)
		}
		b, err := d.Cost()
		if err != nil {
			return Point{}, fmt.Errorf("trade: at %v: %w", coords, err)
		}
		return Point{
			Coords:       coords,
			TCO:          b.TCO(),
			WetMass:      d.WetMass,
			BOLPower:     units.Power(d.Drivers.BOLPower),
			RadiatorArea: d.Thermal.Area,
		}, nil
	})
}

// dominates reports whether a is at least as good as b on every objective
// and strictly better on at least one.
func dominates(a, b Point, objs []Objective) bool {
	strictly := false
	for _, o := range objs {
		va, vb := o.Value(a), o.Value(b)
		if va > vb {
			return false
		}
		if va < vb {
			strictly = true
		}
	}
	return strictly
}

// ParetoFront returns the non-dominated points under the (minimizing)
// objectives, in the order they appear in points.
func ParetoFront(points []Point, objs []Objective) ([]Point, error) {
	if len(objs) < 1 {
		return nil, errors.New("trade: need at least one objective")
	}
	if len(points) == 0 {
		return nil, errors.New("trade: no points")
	}
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if dominates(q, p, objs) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front, nil
}

// Best returns the sweep point minimizing a single objective.
func Best(points []Point, obj Objective) (Point, error) {
	if len(points) == 0 {
		return Point{}, errors.New("trade: no points")
	}
	best := points[0]
	for _, p := range points[1:] {
		if obj.Value(p) < obj.Value(best) {
			best = p
		}
	}
	return best, nil
}
