// Package orbit models the low-Earth-orbit environment a SµDC operates in:
// orbital geometry (period, eclipse fraction), the station-keeping and
// deorbit Δv budget that drives propellant mass, and the ionizing-radiation
// environment that drives the COTS-vs-rad-hard hardware decision (paper
// §VIII).
package orbit

import (
	"errors"
	"fmt"
	"math"

	"sudc/internal/units"
)

// Orbit describes a circular orbit by altitude and inclination.
type Orbit struct {
	// AltitudeM is the orbit altitude above the surface in meters.
	AltitudeM float64
	// InclinationDeg is the orbital inclination in degrees.
	InclinationDeg float64
}

// LEO returns a typical Earth-observation LEO at the given altitude (m)
// in a sun-synchronous-like 97.5° inclination.
func LEO(altitudeM float64) Orbit {
	return Orbit{AltitudeM: altitudeM, InclinationDeg: 97.5}
}

// DefaultEO is the reference 550 km orbit used throughout the paper's
// analysis (Starlink-class altitude).
var DefaultEO = LEO(550e3)

// GEOAltitudeM is the geostationary altitude in meters.
const GEOAltitudeM = 35786e3

// GEO returns the geostationary orbit — the regime the paper contrasts
// with LEO when arguing COTS hardware suffices (§VIII: GEO satellites
// inside the outer van Allen belt see ~8× the LEO dose rate and need
// rad-hard parts).
func GEO() Orbit {
	return Orbit{AltitudeM: GEOAltitudeM, InclinationDeg: 0}
}

// IsGEO reports whether the orbit is in the geosynchronous regime.
func (o Orbit) IsGEO() bool { return o.AltitudeM > 10000e3 }

// SemiMajorAxis returns the orbit's semi-major axis in meters.
func (o Orbit) SemiMajorAxis() float64 { return units.EarthRadius + o.AltitudeM }

// Period returns the orbital period in seconds: 2π√(a³/µ).
func (o Orbit) Period() float64 {
	a := o.SemiMajorAxis()
	return 2 * math.Pi * math.Sqrt(a*a*a/units.EarthMu)
}

// Velocity returns the circular orbital velocity in m/s.
func (o Orbit) Velocity() units.Velocity {
	return units.Velocity(math.Sqrt(units.EarthMu / o.SemiMajorAxis()))
}

// EclipseFraction returns the worst-case fraction of the orbit spent in
// Earth's shadow, using the cylindrical-shadow approximation for a circular
// orbit with the sun in the orbit plane (β = 0): the satellite is eclipsed
// while it is within the half-angle asin(Re/a) of the anti-sun direction.
//
// For a 550 km orbit this is ≈ 0.38, the canonical LEO design value.
func (o Orbit) EclipseFraction() float64 {
	a := o.SemiMajorAxis()
	halfAngle := math.Asin(units.EarthRadius / a)
	return halfAngle / math.Pi
}

// SunFraction returns 1 − EclipseFraction.
func (o Orbit) SunFraction() float64 { return 1 - o.EclipseFraction() }

// OrbitsPerDay returns the number of revolutions per 24 h.
func (o Orbit) OrbitsPerDay() float64 { return 86400 / o.Period() }

func (o Orbit) String() string {
	return fmt.Sprintf("%.0f km × %.1f°", o.AltitudeM/1e3, o.InclinationDeg)
}

// Validate reports an error for physically meaningless orbits.
func (o Orbit) Validate() error {
	if o.AltitudeM < 120e3 {
		return errors.New("orbit: altitude below 120 km decays immediately")
	}
	if o.AltitudeM > 2000e3 && !o.IsGEO() {
		return errors.New("orbit: altitude between LEO and GEO regimes is unsupported")
	}
	if o.AltitudeM > GEOAltitudeM+1e6 {
		return errors.New("orbit: altitude above GEO is unsupported")
	}
	if o.InclinationDeg < 0 || o.InclinationDeg > 180 {
		return fmt.Errorf("orbit: inclination %.1f° out of range [0,180]", o.InclinationDeg)
	}
	return nil
}

// DragDecayRate returns the approximate station-keeping Δv in m/s per year
// required to counter atmospheric drag at the orbit's altitude, using an
// exponential atmosphere fit anchored at published drag make-up budgets
// (~20 m/s/yr at 400 km ISS-like conditions, a few m/s/yr at 550 km).
//
// The exact value varies with solar activity and ballistic coefficient;
// the paper only requires that fuel mass scales linearly with lifetime and
// satellite mass, which this preserves.
func (o Orbit) DragDecayRate() float64 {
	// Scale height ~60 km in the relevant thermosphere band.
	const (
		refAltM    = 400e3
		refDvPerYr = 20.0
		scaleH     = 60e3
	)
	return refDvPerYr * math.Exp(-(o.AltitudeM-refAltM)/scaleH)
}

// DeltaVBudget is the mission Δv allocation that sizes the propellant load.
type DeltaVBudget struct {
	// StationKeepingPerYear is drag make-up and phasing, m/s per year.
	StationKeepingPerYear float64
	// Deorbit is the end-of-life disposal burn, m/s.
	Deorbit float64
	// Margin is a multiplicative reserve (e.g. 0.1 for 10 %).
	Margin float64
}

// BudgetFor builds the Δv budget for a mission of the given lifetime on
// this orbit, including a controlled-deorbit allocation (a Hohmann-like
// transfer to a 50 km disposal perigee) and a 10 % reserve.
func (o Orbit) BudgetFor(lifetime units.Years) DeltaVBudget {
	return DeltaVBudget{
		StationKeepingPerYear: o.DragDecayRate(),
		Deorbit:               o.deorbitDv(),
		Margin:                0.10,
	}
}

// deorbitDv returns the end-of-life disposal Δv: for LEO, a
// perigee-lowering burn to 50 km (the first half of a Hohmann transfer);
// for GEO, a ~300 km graveyard-orbit raise (~11 m/s).
func (o Orbit) deorbitDv() float64 {
	if o.IsGEO() {
		return 11
	}
	a1 := o.SemiMajorAxis()
	rp := units.EarthRadius + 50e3
	at := (a1 + rp) / 2
	vCirc := math.Sqrt(units.EarthMu / a1)
	vApo := math.Sqrt(units.EarthMu * (2/a1 - 1/at))
	return vCirc - vApo
}

// Total returns the full-mission Δv in m/s for the given lifetime.
func (b DeltaVBudget) Total(lifetime units.Years) units.Velocity {
	raw := b.StationKeepingPerYear*float64(lifetime) + b.Deorbit
	return units.Velocity(raw * (1 + b.Margin))
}

// RadiationEnvironment captures the annual total-ionizing-dose rate behind
// a given aluminum shield thickness, per paper §VIII ([48], [71]).
type RadiationEnvironment struct {
	// DosePerYear is the TID accumulation rate in krad(Si)/yr.
	DosePerYear units.Dose
	// ShieldingMils is the aluminum shield thickness in mils (1/1000 in).
	ShieldingMils float64
	// Regime names the orbital regime ("LEO", "GEO", …).
	Regime string
}

// RadiationAt returns the TID environment for the orbit behind the given
// shielding. Anchored at the paper's cited values: non-polar LEO sees
// ~0.5 krad(Si)/yr at 200 mils, ~0.2 at 400 mils.
func (o Orbit) RadiationAt(shieldingMils float64) RadiationEnvironment {
	if o.IsGEO() {
		return GEORadiation(shieldingMils)
	}
	if shieldingMils <= 0 {
		shieldingMils = 100
	}
	// Empirical two-point exponential fit through (200 mils, 0.5 krad/yr)
	// and (400 mils, 0.2 krad/yr): dose = 1.25·exp(-mils/218.3).
	const (
		amp   = 1.25
		scale = 218.3
	)
	dose := amp * math.Exp(-shieldingMils/scale)
	// Polar and near-polar orbits pass through the auroral horns; apply a
	// modest multiplier above 80° inclination.
	if o.InclinationDeg > 80 && o.InclinationDeg < 100 {
		dose *= 1.3
	}
	return RadiationEnvironment{
		DosePerYear:   units.Dose(dose),
		ShieldingMils: shieldingMils,
		Regime:        "LEO",
	}
}

// GEORadiation returns the GEO environment at the given shielding,
// anchored at the paper's cited 4 krad(Si)/yr behind 200 mils.
func GEORadiation(shieldingMils float64) RadiationEnvironment {
	if shieldingMils <= 0 {
		shieldingMils = 100
	}
	const (
		amp   = 10.0
		scale = 218.3
	)
	return RadiationEnvironment{
		DosePerYear:   units.Dose(amp * math.Exp(-shieldingMils/scale)),
		ShieldingMils: shieldingMils,
		Regime:        "GEO",
	}
}

// LifetimeDose returns the accumulated TID over a mission lifetime.
func (r RadiationEnvironment) LifetimeDose(lifetime units.Years) units.Dose {
	return units.Dose(float64(r.DosePerYear) * float64(lifetime))
}

// ImagingRate describes how fast an EO satellite on this orbit produces
// frames: the paper states "around six images per minute (exact rate
// depends on orbital velocity, and ground frame size)".
func (o Orbit) ImagingRate(groundFrameLengthM float64) float64 {
	if groundFrameLengthM <= 0 {
		return 0
	}
	groundSpeed := float64(o.Velocity()) * units.EarthRadius / o.SemiMajorAxis()
	return groundSpeed / groundFrameLengthM // frames per second
}
