package orbit

import (
	"math"
	"testing"
	"testing/quick"

	"sudc/internal/units"
)

func TestPeriod550km(t *testing.T) {
	// A 550 km circular orbit has a ~95.6 minute period.
	p := DefaultEO.Period() / 60
	if p < 94 || p > 97 {
		t.Errorf("550 km period = %.2f min, want ≈95.6", p)
	}
}

func TestVelocity550km(t *testing.T) {
	// Circular velocity at 550 km is ≈ 7.59 km/s.
	v := float64(DefaultEO.Velocity())
	if v < 7500 || v > 7700 {
		t.Errorf("550 km velocity = %.0f m/s, want ≈7590", v)
	}
}

func TestEclipseFraction(t *testing.T) {
	// Canonical LEO worst-case eclipse fraction is ≈ 0.35–0.40.
	f := DefaultEO.EclipseFraction()
	if f < 0.33 || f > 0.42 {
		t.Errorf("eclipse fraction = %.3f, want ≈0.37", f)
	}
	if got := DefaultEO.SunFraction() + f; math.Abs(got-1) > 1e-12 {
		t.Errorf("sun + eclipse fractions = %v, want 1", got)
	}
}

func TestEclipseFractionDecreasesWithAltitude(t *testing.T) {
	low, high := LEO(400e3), LEO(1200e3)
	if low.EclipseFraction() <= high.EclipseFraction() {
		t.Errorf("eclipse fraction should shrink with altitude: %.3f vs %.3f",
			low.EclipseFraction(), high.EclipseFraction())
	}
}

func TestOrbitsPerDay(t *testing.T) {
	n := DefaultEO.OrbitsPerDay()
	if n < 14.5 || n > 15.5 {
		t.Errorf("550 km orbits/day = %.2f, want ≈15", n)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		o       Orbit
		wantErr bool
	}{
		{"default", DefaultEO, false},
		{"too low", LEO(100e3), true},
		{"too high", LEO(3000e3), true},
		{"bad inclination", Orbit{AltitudeM: 550e3, InclinationDeg: 200}, true},
	}
	for _, tt := range tests {
		if err := tt.o.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("%s: Validate() err = %v, wantErr = %v", tt.name, err, tt.wantErr)
		}
	}
}

func TestDragDecayRate(t *testing.T) {
	// Anchor point: ~20 m/s/yr at 400 km.
	if got := LEO(400e3).DragDecayRate(); math.Abs(got-20) > 0.1 {
		t.Errorf("drag Δv at 400 km = %v, want 20", got)
	}
	// Monotone decreasing with altitude.
	if LEO(550e3).DragDecayRate() >= LEO(400e3).DragDecayRate() {
		t.Error("drag Δv should decrease with altitude")
	}
	// 550 km should be single-digit m/s per year.
	if got := LEO(550e3).DragDecayRate(); got < 0.5 || got > 10 {
		t.Errorf("drag Δv at 550 km = %v, want single-digit m/s/yr", got)
	}
}

func TestDeltaVBudgetScalesWithLifetime(t *testing.T) {
	b := DefaultEO.BudgetFor(5)
	dv1 := float64(b.Total(1))
	dv5 := float64(b.Total(5))
	dv10 := float64(b.Total(10))
	if dv5 <= dv1 || dv10 <= dv5 {
		t.Errorf("Δv must grow with lifetime: %v %v %v", dv1, dv5, dv10)
	}
	// Linear in station-keeping: (dv10-dv5) == (dv5-dv1)*(5/4)
	lhs := dv10 - dv5
	rhs := (dv5 - dv1) * 5 / 4
	if !units.ApproxEqual(lhs, rhs, 1e-9) {
		t.Errorf("station-keeping not linear in lifetime: %v vs %v", lhs, rhs)
	}
}

func TestDeorbitDvReasonable(t *testing.T) {
	// Perigee-lowering from 550 km to 50 km costs on the order of 100-160 m/s.
	b := DefaultEO.BudgetFor(5)
	if b.Deorbit < 100 || b.Deorbit > 200 {
		t.Errorf("deorbit Δv = %.1f m/s, want ≈140", b.Deorbit)
	}
}

func TestRadiationAnchors(t *testing.T) {
	// Paper §VIII: non-polar LEO ~0.5 krad/yr @ 200 mils, ~0.2 @ 400 mils.
	nonPolar := Orbit{AltitudeM: 550e3, InclinationDeg: 53}
	r200 := nonPolar.RadiationAt(200)
	if !units.ApproxEqual(float64(r200.DosePerYear), 0.5, 0.01) {
		t.Errorf("LEO @200 mils = %v krad/yr, want 0.5", r200.DosePerYear)
	}
	r400 := nonPolar.RadiationAt(400)
	if !units.ApproxEqual(float64(r400.DosePerYear), 0.2, 0.01) {
		t.Errorf("LEO @400 mils = %v krad/yr, want 0.2", r400.DosePerYear)
	}
	// GEO ~4 krad/yr @ 200 mils.
	g := GEORadiation(200)
	if !units.ApproxEqual(float64(g.DosePerYear), 4.0, 0.01) {
		t.Errorf("GEO @200 mils = %v krad/yr, want 4.0", g.DosePerYear)
	}
}

func TestPolarOrbitSeesMoreDose(t *testing.T) {
	polar := Orbit{AltitudeM: 550e3, InclinationDeg: 97.5}
	nonPolar := Orbit{AltitudeM: 550e3, InclinationDeg: 53}
	if polar.RadiationAt(200).DosePerYear <= nonPolar.RadiationAt(200).DosePerYear {
		t.Error("polar orbit should accumulate more dose than 53°")
	}
}

func TestLifetimeDose(t *testing.T) {
	nonPolar := Orbit{AltitudeM: 550e3, InclinationDeg: 53}
	d := nonPolar.RadiationAt(200).LifetimeDose(5)
	// 5-year LEO mission: ~2.5 krad — an order of magnitude under the
	// ~10+ krad tolerance of modern COTS silicon (paper's argument).
	if float64(d) < 2 || float64(d) > 3 {
		t.Errorf("5-yr LEO dose = %v, want ≈2.5 krad", d)
	}
}

func TestImagingRateSixPerMinute(t *testing.T) {
	// The paper: "A LEO Earth observation satellite may produce around six
	// images per minute". Ground speed ~7 km/s; a ~70 km frame ≈ 6/min.
	rate := DefaultEO.ImagingRate(70e3) * 60
	if rate < 5 || rate > 7 {
		t.Errorf("imaging rate = %.2f frames/min, want ≈6", rate)
	}
	if DefaultEO.ImagingRate(0) != 0 {
		t.Error("zero frame size must give zero rate")
	}
}

func TestPeriodMonotoneInAltitude(t *testing.T) {
	f := func(raw uint16) bool {
		alt := 200e3 + math.Mod(float64(raw)*25, 1.5e6) // 200-1700 km
		lo, hi := LEO(alt), LEO(alt+50e3)
		return lo.Period() < hi.Period()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDoseDecreasesWithShielding(t *testing.T) {
	f := func(raw uint8) bool {
		mils := 50 + float64(raw)*3
		o := Orbit{AltitudeM: 550e3, InclinationDeg: 53}
		return o.RadiationAt(mils+10).DosePerYear < o.RadiationAt(mils).DosePerYear
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGEO(t *testing.T) {
	g := GEO()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsGEO() || DefaultEO.IsGEO() {
		t.Error("IsGEO misclassifies")
	}
	// GEO period ≈ 24 h (sidereal day, 23.93 h).
	if p := g.Period() / 3600; p < 23.8 || p > 24.1 {
		t.Errorf("GEO period = %.2f h, want ≈23.93", p)
	}
	// GEO eclipse fraction is tiny (seasonal, ≲5%).
	if f := g.EclipseFraction(); f > 0.06 {
		t.Errorf("GEO eclipse fraction = %.3f, want small", f)
	}
	// Disposal is a cheap graveyard raise, not a deorbit.
	b := g.BudgetFor(15)
	if b.Deorbit > 20 {
		t.Errorf("GEO disposal Δv = %.1f m/s, want ≈11", b.Deorbit)
	}
	// No meaningful drag.
	if g.DragDecayRate() > 1e-6 {
		t.Errorf("GEO drag = %v, want ≈0", g.DragDecayRate())
	}
	// Radiation: the paper's 4 krad/yr behind 200 mils.
	r := g.RadiationAt(200)
	if !units.ApproxEqual(float64(r.DosePerYear), 4.0, 0.01) {
		t.Errorf("GEO dose = %v, want 4 krad/yr", r.DosePerYear)
	}
	if r.Regime != "GEO" {
		t.Errorf("regime = %q", r.Regime)
	}
}

func TestMidAltitudeRejected(t *testing.T) {
	if err := (Orbit{AltitudeM: 5000e3, InclinationDeg: 0}).Validate(); err == nil {
		t.Error("MEO gap must be rejected")
	}
	if err := (Orbit{AltitudeM: 50000e3, InclinationDeg: 0}).Validate(); err == nil {
		t.Error("super-GEO must be rejected")
	}
}
