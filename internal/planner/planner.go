// Package planner turns the paper's models into a fleet-planning tool:
// given an Earth-observation constellation and a mix of applications to
// run over its imagery, it sizes the per-application compute demand,
// packs the demands onto SµDCs of a chosen class (first-fit-decreasing
// bin packing), and prices the resulting fleet — with Wright's-law
// learning across the fleet's units.
//
// This operationalizes the paper's observation that a 4 kW SµDC supports
// a 64-satellite constellation "for nearly all applications" (Table III):
// the planner answers the follow-on question of how many SµDCs a *mix*
// of applications needs and what the fleet costs.
package planner

import (
	"errors"
	"fmt"
	"sort"

	"sudc/internal/constellation"
	"sudc/internal/core"
	"sudc/internal/units"
	"sudc/internal/workload"
	"sudc/internal/wright"
)

// Demand is one application the constellation's imagery must be run
// through.
type Demand struct {
	App workload.App
	// Coverage is the fraction of the constellation's frames this app
	// processes (1 = every frame).
	Coverage float64
	// EfficiencyGain divides the commodity-GPU power requirement —
	// set it to a DSE result to plan an accelerator-equipped fleet.
	EfficiencyGain float64
}

// Validate reports demand errors.
func (d Demand) Validate() error {
	if err := d.App.Validate(); err != nil {
		return err
	}
	if d.Coverage <= 0 || d.Coverage > 1 {
		return fmt.Errorf("planner: %s: coverage %v out of (0,1]", d.App.Name, d.Coverage)
	}
	if d.EfficiencyGain < 0 {
		return fmt.Errorf("planner: %s: negative efficiency gain", d.App.Name)
	}
	return nil
}

// Plan is the planning input.
type Plan struct {
	Constellation constellation.Constellation
	Demands       []Demand
	// SuDCClass is the per-satellite compute budget to pack into.
	SuDCClass units.Power
	// BaseConfig produces the SµDC design; its ComputePower is overridden
	// with SuDCClass.
	BaseConfig core.Config
	// Learning prices the fleet (zero value = no learning).
	Learning wright.Curve
	// Spares is how many cold-spare SµDCs fly beyond the packed fleet.
	// Spares carry no allocations but are priced (and, sitting at the
	// deep end of the learning curve, cost less than any active unit) —
	// the fleet-level version of the paper's near-free overprovisioning.
	Spares int
}

// DefaultPlan plans 4 kW reference SµDCs with aerospace-typical learning.
func DefaultPlan(eo constellation.Constellation, demands []Demand) Plan {
	return Plan{
		Constellation: eo,
		Demands:       demands,
		SuDCClass:     units.KW(4),
		BaseConfig:    core.DefaultConfig(units.KW(4)),
		Learning:      wright.DefaultAerospace,
	}
}

// Allocation is one application's share of one SµDC.
type Allocation struct {
	App   string
	Power units.Power
}

// SuDCLoad is one planned satellite and what runs on it.
type SuDCLoad struct {
	Index       int
	Allocations []Allocation
	// Used is the allocated compute power; Free = class − used.
	Used units.Power
	Free units.Power
}

// Result is a complete fleet plan.
type Result struct {
	// PerApp lists each demand's total power requirement.
	PerApp []Allocation
	// SuDCs is the packed fleet, largest loads first.
	SuDCs []SuDCLoad
	// FleetNRE is paid once (one satellite class); FleetRE is the
	// learning-discounted recurring cost of all units; FleetTCO the sum.
	FleetNRE units.Dollars
	FleetRE  units.Dollars
	FleetTCO units.Dollars
	// Utilization is used power over installed power across the fleet,
	// spares included in the denominator.
	Utilization float64
	// SpareUnits is the planned cold-spare count; SpareCost is the
	// marginal learning-discounted recurring cost those spares add.
	SpareUnits int
	SpareCost  units.Dollars
}

// Size computes the per-application compute power demands.
func (p Plan) Size() ([]Allocation, error) {
	if len(p.Demands) == 0 {
		return nil, errors.New("planner: no demands")
	}
	if err := p.Constellation.Validate(); err != nil {
		return nil, err
	}
	out := make([]Allocation, 0, len(p.Demands))
	for _, d := range p.Demands {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		pw, err := p.Constellation.RequiredComputePower(d.App, 1)
		if err != nil {
			return nil, err
		}
		gain := d.EfficiencyGain
		if gain == 0 {
			gain = 1
		}
		out = append(out, Allocation{
			App:   d.App.Name,
			Power: units.Power(float64(pw) * d.Coverage / gain),
		})
	}
	return out, nil
}

// Pack runs the full plan: size demands, first-fit-decreasing pack them
// into SuDCClass-sized satellites (splitting demands larger than one
// satellite), and price the fleet.
func (p Plan) Pack() (Result, error) {
	if p.SuDCClass <= 0 {
		return Result{}, errors.New("planner: SµDC class must be positive")
	}
	if p.Spares < 0 {
		return Result{}, errors.New("planner: negative spares")
	}
	perApp, err := p.Size()
	if err != nil {
		return Result{}, err
	}

	// Split any demand larger than one satellite into class-sized chunks.
	type chunk struct {
		app   string
		power units.Power
	}
	var chunks []chunk
	for _, a := range perApp {
		rest := a.Power
		for rest > p.SuDCClass {
			chunks = append(chunks, chunk{a.App, p.SuDCClass})
			rest -= p.SuDCClass
		}
		if rest > 0 {
			chunks = append(chunks, chunk{a.App, rest})
		}
	}
	sort.SliceStable(chunks, func(i, j int) bool { return chunks[i].power > chunks[j].power })

	// First-fit decreasing.
	var sudcs []SuDCLoad
	for _, c := range chunks {
		placed := false
		for i := range sudcs {
			if sudcs[i].Free >= c.power {
				sudcs[i].Allocations = append(sudcs[i].Allocations, Allocation{c.app, c.power})
				sudcs[i].Used += c.power
				sudcs[i].Free = p.SuDCClass - sudcs[i].Used
				placed = true
				break
			}
		}
		if !placed {
			sudcs = append(sudcs, SuDCLoad{
				Index:       len(sudcs),
				Allocations: []Allocation{{c.app, c.power}},
				Used:        c.power,
				Free:        p.SuDCClass - c.power,
			})
		}
	}

	// Price the fleet: one NRE for the class, learning-discounted REs.
	cfg := p.BaseConfig
	cfg.ComputePower = p.SuDCClass
	b, err := cfg.Breakdown()
	if err != nil {
		return Result{}, err
	}
	tot := b.Total()
	curve := p.Learning
	if curve.ProgressRatio == 0 {
		curve = wright.Curve{ProgressRatio: 1}
	}
	activeRE, err := curve.CumulativeCost(tot.RE, len(sudcs))
	if err != nil {
		return Result{}, err
	}
	re := activeRE
	if p.Spares > 0 {
		re, err = curve.CumulativeCost(tot.RE, len(sudcs)+p.Spares)
		if err != nil {
			return Result{}, err
		}
	}

	var used units.Power
	for _, s := range sudcs {
		used += s.Used
	}
	installed := float64(p.SuDCClass) * float64(len(sudcs)+p.Spares)
	util := 0.0
	if installed > 0 {
		util = float64(used) / installed
	}

	return Result{
		PerApp:      perApp,
		SuDCs:       sudcs,
		FleetNRE:    tot.NRE,
		FleetRE:     re,
		FleetTCO:    tot.NRE + re,
		Utilization: util,
		SpareUnits:  p.Spares,
		SpareCost:   re - activeRE,
	}, nil
}
