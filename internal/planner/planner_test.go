package planner

import (
	"testing"

	"sudc/internal/constellation"
	"sudc/internal/units"
	"sudc/internal/workload"
)

func demandsFor(t *testing.T, names ...string) []Demand {
	t.Helper()
	out := make([]Demand, 0, len(names))
	for _, n := range names {
		a, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Demand{App: a, Coverage: 1})
	}
	return out
}

func TestDemandValidate(t *testing.T) {
	good := demandsFor(t, "Flood Detection")[0]
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Coverage = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero coverage must error")
	}
	bad = good
	bad.Coverage = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("coverage > 1 must error")
	}
	bad = good
	bad.EfficiencyGain = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative gain must error")
	}
	bad = good
	bad.App.GPUPower = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid app must error")
	}
}

func TestSizeMatchesConstellationMath(t *testing.T) {
	p := DefaultPlan(constellation.Default64, demandsFor(t, "Flood Detection"))
	per, err := p.Size()
	if err != nil {
		t.Fatal(err)
	}
	// 288 Mpix/s ÷ 307 kpix/J ≈ 938 W.
	if got := per[0].Power.Watts(); got < 900 || got > 1000 {
		t.Errorf("Flood Detection demand = %.0f W, want ≈938", got)
	}
}

func TestCoverageAndGainScaleDemand(t *testing.T) {
	base := DefaultPlan(constellation.Default64, demandsFor(t, "Flood Detection"))
	full, _ := base.Size()

	half := base
	half.Demands = demandsFor(t, "Flood Detection")
	half.Demands[0].Coverage = 0.5
	h, _ := half.Size()
	if !units.ApproxEqual(float64(h[0].Power), float64(full[0].Power)/2, 1e-9) {
		t.Error("coverage must scale demand linearly")
	}

	accel := base
	accel.Demands = demandsFor(t, "Flood Detection")
	accel.Demands[0].EfficiencyGain = 58
	a, _ := accel.Size()
	if !units.ApproxEqual(float64(a[0].Power), float64(full[0].Power)/58, 1e-9) {
		t.Error("efficiency gain must divide demand")
	}
}

func TestPackSingleSmallDemand(t *testing.T) {
	p := DefaultPlan(constellation.Default64, demandsFor(t, "Traffic Monitoring"))
	r, err := p.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SuDCs) != 1 {
		t.Errorf("lightest app should fit one SµDC, got %d", len(r.SuDCs))
	}
	if r.FleetTCO != r.FleetNRE+r.FleetRE {
		t.Error("fleet TCO must be NRE + RE")
	}
}

func TestPackFullSuiteMatchesTableIIIScale(t *testing.T) {
	// Running the whole Table III suite at full coverage on 4 kW GPUs:
	// Panoptic alone needs ~3.6 satellites of power; the mix packs into
	// a handful of SµDCs.
	names := make([]string, len(workload.Suite))
	for i, a := range workload.Suite {
		names[i] = a.Name
	}
	p := DefaultPlan(constellation.Default64, demandsFor(t, names...))
	r, err := p.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SuDCs) < 4 || len(r.SuDCs) > 8 {
		t.Errorf("full suite packs into %d SµDCs, want 4-8", len(r.SuDCs))
	}
	// Conservation: allocations sum to the per-app demands.
	var allocSum, demandSum float64
	for _, s := range r.SuDCs {
		for _, a := range s.Allocations {
			allocSum += float64(a.Power)
		}
		if s.Used+s.Free != p.SuDCClass {
			t.Errorf("SµDC %d: used+free != class", s.Index)
		}
	}
	for _, a := range r.PerApp {
		demandSum += float64(a.Power)
	}
	if !units.ApproxEqual(allocSum, demandSum, 1e-9) {
		t.Errorf("allocated %v != demanded %v", allocSum, demandSum)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Errorf("utilization = %v out of (0,1]", r.Utilization)
	}
}

func TestAcceleratorFleetShrinks(t *testing.T) {
	names := make([]string, len(workload.Suite))
	for i, a := range workload.Suite {
		names[i] = a.Name
	}
	gpu := DefaultPlan(constellation.Default64, demandsFor(t, names...))
	gpuR, err := gpu.Pack()
	if err != nil {
		t.Fatal(err)
	}
	accel := DefaultPlan(constellation.Default64, demandsFor(t, names...))
	for i := range accel.Demands {
		accel.Demands[i].EfficiencyGain = 58
	}
	accelR, err := accel.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(accelR.SuDCs) >= len(gpuR.SuDCs) {
		t.Errorf("accelerators (%d SµDCs) must shrink the GPU fleet (%d)",
			len(accelR.SuDCs), len(gpuR.SuDCs))
	}
	if accelR.FleetTCO >= gpuR.FleetTCO {
		t.Error("accelerator fleet must cost less")
	}
}

func TestLearningDiscountsFleet(t *testing.T) {
	names := []string{"Panoptic Segmentation", "Flood Detection", "Oil Spill Monitoring"}
	withLearning := DefaultPlan(constellation.Default64, demandsFor(t, names...))
	rL, err := withLearning.Pack()
	if err != nil {
		t.Fatal(err)
	}
	noLearning := DefaultPlan(constellation.Default64, demandsFor(t, names...))
	noLearning.Learning.ProgressRatio = 1
	rN, err := noLearning.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(rL.SuDCs) < 2 {
		t.Skip("need a multi-satellite fleet for this check")
	}
	if rL.FleetRE >= rN.FleetRE {
		t.Error("learning must discount a multi-unit fleet")
	}
	if rL.FleetNRE != rN.FleetNRE {
		t.Error("learning must not change NRE")
	}
}

func TestPackErrors(t *testing.T) {
	p := DefaultPlan(constellation.Default64, nil)
	if _, err := p.Pack(); err == nil {
		t.Error("no demands must error")
	}
	p = DefaultPlan(constellation.Default64, demandsFor(t, "Flood Detection"))
	p.SuDCClass = 0
	if _, err := p.Pack(); err == nil {
		t.Error("zero class must error")
	}
	p = DefaultPlan(constellation.Constellation{}, demandsFor(t, "Flood Detection"))
	if _, err := p.Pack(); err == nil {
		t.Error("invalid constellation must error")
	}
	p = DefaultPlan(constellation.Default64, demandsFor(t, "Flood Detection"))
	p.BaseConfig.Lifetime = 0
	if _, err := p.Pack(); err == nil {
		t.Error("invalid base config must error")
	}
}

func TestOversizedDemandSplits(t *testing.T) {
	// Panoptic Segmentation at full coverage needs ≈3.6 satellites of
	// power: the planner must split it across ≥4 class-sized chunks.
	p := DefaultPlan(constellation.Default64, demandsFor(t, "Panoptic Segmentation"))
	r, err := p.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SuDCs) != 4 {
		t.Errorf("panoptic packs into %d SµDCs, want 4 (Table III)", len(r.SuDCs))
	}
}

func TestSparesArePricedNearlyFree(t *testing.T) {
	base := DefaultPlan(constellation.Default64, demandsFor(t, "Flood Detection", "Crop Monitoring", "Air Pollution"))
	r0, err := base.Pack()
	if err != nil {
		t.Fatal(err)
	}
	spared := base
	spared.Spares = 2
	r2, err := spared.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if r2.SpareUnits != 2 || r0.SpareUnits != 0 {
		t.Fatalf("spare units: got %d and %d, want 2 and 0", r2.SpareUnits, r0.SpareUnits)
	}
	if r2.SpareCost <= 0 {
		t.Error("spares must carry a positive marginal cost")
	}
	if got := r2.FleetRE - r0.FleetRE; got != r2.SpareCost {
		t.Errorf("SpareCost %v must equal the fleet RE delta %v", r2.SpareCost, got)
	}
	// Learning: two extra units at the deep end of the curve must cost
	// less than two at the front (the near-free-spares argument).
	perFirst := float64(r0.FleetRE) / float64(len(r0.SuDCs))
	perSpare := float64(r2.SpareCost) / 2
	if perSpare >= perFirst {
		t.Errorf("per-spare RE %.0f must undercut mean active RE %.0f", perSpare, perFirst)
	}
	if r0.SpareCost != 0 {
		t.Error("a plan without spares must report zero spare cost")
	}
	// Spares dilute utilization: denominator includes idle units.
	if r2.Utilization >= r0.Utilization {
		t.Errorf("spares must dilute utilization: %v vs %v", r2.Utilization, r0.Utilization)
	}
}

func TestPackRejectsNegativeSpares(t *testing.T) {
	p := DefaultPlan(constellation.Default64, demandsFor(t, "Flood Detection"))
	p.Spares = -1
	if _, err := p.Pack(); err == nil {
		t.Error("negative spares must error")
	}
}

func TestSizeErrors(t *testing.T) {
	if _, err := (Plan{}).Size(); err == nil {
		t.Error("empty plan must error")
	}
	p := DefaultPlan(constellation.Constellation{}, demandsFor(t, "Flood Detection"))
	if _, err := p.Size(); err == nil {
		t.Error("invalid constellation must error")
	}
	p = DefaultPlan(constellation.Default64, demandsFor(t, "Flood Detection"))
	p.Demands[0].Coverage = 2
	if _, err := p.Size(); err == nil {
		t.Error("invalid demand must error")
	}
}
