// Package topo models a constellation as an explicit graph: satellite
// capture groups, SµDC compute nodes, and ground stations joined by
// inter-satellite links (ISLs) and downlinks, each edge carrying its own
// rate and propagation delay. The graph is the system-level object the
// paper's SµDC argument needs — compute placed *somewhere* in a
// constellation, fed over *specific* links — and it is what the
// discrete-event simulator (internal/netsim), the fault engine
// (internal/faults), and the flight recorder consume instead of the old
// implicit "every satellite feeds one SµDC over one aggregate ISL".
//
// Cells and sharding. Every node belongs to a cell (an orbital plane or
// a dense formation-flying cluster). Cells are the unit of parallel
// simulation: each cell advances on its own event loop and cells
// synchronize conservatively, using the minimum cross-cell ISL
// propagation delay as the lookahead window. The package therefore
// validates the property the conservative synchronizer depends on:
// every edge that crosses a cell boundary must have a positive
// propagation delay.
//
// Three constructors cover the architecture space the related work
// spans: Star (the paper's single-SµDC reference shape), Walker
// (multi-plane constellations with an SµDC every k-th plane and
// inter-plane relay rings), and Clusters (dense formation-flying
// clusters of single-satellite FSO links into a hub, after Pénot &
// Balakrishnan).
package topo

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sudc/internal/units"
)

// NodeKind classifies a graph node.
type NodeKind uint8

const (
	// Source is a group of EO capture satellites sharing one first-hop
	// link (Sats counts them). Source nodes may also relay transit
	// frames toward an SµDC.
	Source NodeKind = iota
	// SuDC is a compute node hosting Workers GPU workers; frames route
	// to their nearest SuDC.
	SuDC
	// Ground is a ground station, the terminus of downlink edges.
	Ground
)

// String returns the kind's stable name.
func (k NodeKind) String() string {
	switch k {
	case Source:
		return "source"
	case SuDC:
		return "sudc"
	case Ground:
		return "ground"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Node is one graph vertex.
type Node struct {
	// Name is the unique node label; it names the node in metrics,
	// traces, and fault schedules.
	Name string
	Kind NodeKind
	// Cell is the shard cell (orbital plane or cluster) the node
	// belongs to; cells must be numbered 0..Cells()-1 with no gaps.
	Cell int
	// Sats is the capture-satellite count of a Source node (≥ 1).
	Sats int
	// Workers is the GPU worker count of a SuDC node (≥ 1).
	Workers int
}

// EdgeKind classifies a graph edge.
type EdgeKind uint8

const (
	// ISL is an optical inter-satellite link; frames route over ISLs.
	ISL EdgeKind = iota
	// Downlink is a space-to-ground link; insights leave over it.
	// Downlinks are expressible and validated but carry no simulated
	// frame traffic yet (insight accounting happens at the SµDC).
	Downlink
)

// Edge is one directed link. Frame traffic flows From → To.
type Edge struct {
	From, To int
	Kind     EdgeKind
	// Rate is the link capacity; 0 means "inherit the simulation
	// config's aggregate ISL rate".
	Rate units.DataRate
	// Delay is the one-way propagation delay. Edges that cross cells
	// must have Delay > 0: it bounds the conservative lookahead.
	Delay time.Duration
}

// Graph is an explicit constellation topology.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// EdgeName returns the stable label of edge i: "<from>-<to>".
func (g *Graph) EdgeName(i int) string {
	e := g.Edges[i]
	return g.Nodes[e.From].Name + "-" + g.Nodes[e.To].Name
}

// Cells returns the cell count (max cell index + 1).
func (g *Graph) Cells() int {
	max := -1
	for _, n := range g.Nodes {
		if n.Cell > max {
			max = n.Cell
		}
	}
	return max + 1
}

// Sats returns the total capture-satellite count.
func (g *Graph) Sats() int {
	total := 0
	for _, n := range g.Nodes {
		if n.Kind == Source {
			total += n.Sats
		}
	}
	return total
}

// Workers returns the total GPU worker count over all SµDC nodes.
func (g *Graph) Workers() int {
	total := 0
	for _, n := range g.Nodes {
		if n.Kind == SuDC {
			total += n.Workers
		}
	}
	return total
}

// MinCrossDelay returns the smallest propagation delay over ISL edges
// whose endpoints lie in different cells — the conservative lookahead
// window — and whether any such edge exists.
func (g *Graph) MinCrossDelay() (time.Duration, bool) {
	min, found := time.Duration(math.MaxInt64), false
	for _, e := range g.Edges {
		if e.Kind != ISL {
			continue
		}
		if g.Nodes[e.From].Cell != g.Nodes[e.To].Cell {
			found = true
			if e.Delay < min {
				min = e.Delay
			}
		}
	}
	if !found {
		return 0, false
	}
	return min, true
}

// CellEdge is one directed edge of the cell graph: the minimum
// propagation delay over the cross-cell ISL edges joining one cell to
// another. The sharded simulator's per-cell conservative lookahead is
// computed over these tables.
type CellEdge struct {
	Cell  int
	Delay time.Duration
}

// CellGraph condenses the cross-cell ISL edges into per-cell min-delay
// adjacency tables: out[c] lists the cells c sends into and in[c] the
// cells that send into c, each with the minimum delay over the
// parallel physical edges and sorted by ascending cell index. Both
// tables are pure functions of the graph, so anything derived from
// them inherits the sharded runner's determinism contract.
func (g *Graph) CellGraph() (out, in [][]CellEdge) {
	cells := g.Cells()
	out = make([][]CellEdge, cells)
	in = make([][]CellEdge, cells)
	for _, e := range g.Edges {
		if e.Kind != ISL {
			continue
		}
		from, to := g.Nodes[e.From].Cell, g.Nodes[e.To].Cell
		if from == to {
			continue
		}
		out[from] = insertCellEdge(out[from], to, e.Delay)
		in[to] = insertCellEdge(in[to], from, e.Delay)
	}
	return out, in
}

// insertCellEdge merges one physical edge into a cell-sorted adjacency
// row, keeping the minimum delay per destination cell.
func insertCellEdge(row []CellEdge, cell int, delay time.Duration) []CellEdge {
	i := 0
	for i < len(row) && row[i].Cell < cell {
		i++
	}
	if i < len(row) && row[i].Cell == cell {
		if delay < row[i].Delay {
			row[i].Delay = delay
		}
		return row
	}
	row = append(row, CellEdge{})
	copy(row[i+1:], row[i:])
	row[i] = CellEdge{Cell: cell, Delay: delay}
	return row
}

// Routes computes static nearest-SµDC routing: out[u] is the ISL edge
// node u forwards frames on (toward the SµDC minimizing propagation
// delay, then hop count, then node index — a deterministic tie-break),
// or -1 for SuDC and Ground nodes. Unreachable Source nodes yield an
// error; Validate calls Routes, so a validated graph always routes.
func (g *Graph) Routes() ([]int, error) {
	n := len(g.Nodes)
	const inf = math.MaxFloat64
	dist := make([]float64, n) // delay-seconds to nearest SuDC
	hops := make([]int, n)
	out := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i], hops[i], out[i] = inf, math.MaxInt32, -1
	}
	for i, nd := range g.Nodes {
		if nd.Kind == SuDC {
			dist[i], hops[i] = 0, 0
		}
	}
	// Dijkstra from all sinks over reversed ISL edges. Graphs are small
	// (thousands of nodes at mega-constellation scale), so the O(V²)
	// selection loop with a deterministic (dist, hops, index) order is
	// simpler than a heap and equally deterministic.
	better := func(d float64, h, u int, d2 float64, h2, u2 int) bool {
		if d != d2 {
			return d < d2
		}
		if h != h2 {
			return h < h2
		}
		return u < u2
	}
	for {
		u := -1
		for v := 0; v < n; v++ {
			if done[v] || dist[v] == inf {
				continue
			}
			if u < 0 || better(dist[v], hops[v], v, dist[u], hops[u], u) {
				u = v
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for ei, e := range g.Edges {
			if e.Kind != ISL || e.To != u || done[e.From] {
				continue
			}
			d, h := dist[u]+e.Delay.Seconds(), hops[u]+1
			v := e.From
			if better(d, h, ei, dist[v], hops[v], out[v]) {
				dist[v], hops[v], out[v] = d, h, ei
			}
		}
	}
	for i, nd := range g.Nodes {
		if nd.Kind == Source && dist[i] == inf {
			return nil, fmt.Errorf("topo: source %q cannot reach any SµDC", nd.Name)
		}
	}
	return out, nil
}

// Validate reports structural errors: dangling edge indices, duplicate
// or empty node names, non-contiguous cells, invalid per-kind counts,
// negative rates or delays, zero-delay cross-cell edges (they would
// collapse the conservative lookahead window), downlinks not ending at
// ground, and Source nodes with no route to an SµDC.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return errors.New("topo: graph has no nodes")
	}
	names := make(map[string]bool, len(g.Nodes))
	maxCell := -1
	sudcs := 0
	for i, nd := range g.Nodes {
		if nd.Name == "" {
			return fmt.Errorf("topo: node %d has no name", i)
		}
		if names[nd.Name] {
			return fmt.Errorf("topo: duplicate node name %q", nd.Name)
		}
		names[nd.Name] = true
		if nd.Cell < 0 {
			return fmt.Errorf("topo: node %q has negative cell %d", nd.Name, nd.Cell)
		}
		if nd.Cell > maxCell {
			maxCell = nd.Cell
		}
		switch nd.Kind {
		case Source:
			if nd.Sats < 1 {
				return fmt.Errorf("topo: source %q needs ≥ 1 satellite", nd.Name)
			}
		case SuDC:
			if nd.Workers < 1 {
				return fmt.Errorf("topo: sudc %q needs ≥ 1 worker", nd.Name)
			}
			sudcs++
		case Ground:
		default:
			return fmt.Errorf("topo: node %q has unknown kind %d", nd.Name, nd.Kind)
		}
	}
	if sudcs == 0 {
		return errors.New("topo: graph has no SµDC")
	}
	cellSeen := make([]bool, maxCell+1)
	for _, nd := range g.Nodes {
		cellSeen[nd.Cell] = true
	}
	for c, seen := range cellSeen {
		if !seen {
			return fmt.Errorf("topo: cell %d is empty (cells must be contiguous)", c)
		}
	}
	for i, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return fmt.Errorf("topo: edge %d dangles (%d → %d of %d nodes)", i, e.From, e.To, len(g.Nodes))
		}
		if e.From == e.To {
			return fmt.Errorf("topo: edge %d is a self-loop on %q", i, g.Nodes[e.From].Name)
		}
		if e.Rate < 0 {
			return fmt.Errorf("topo: edge %s has negative rate", g.EdgeName(i))
		}
		if e.Delay < 0 {
			return fmt.Errorf("topo: edge %s has negative delay", g.EdgeName(i))
		}
		switch e.Kind {
		case ISL:
			if g.Nodes[e.To].Kind == Ground {
				return fmt.Errorf("topo: ISL edge %s ends at a ground station", g.EdgeName(i))
			}
			if g.Nodes[e.From].Cell != g.Nodes[e.To].Cell && e.Delay <= 0 {
				return fmt.Errorf("topo: cross-cell edge %s needs a positive delay (conservative lookahead)", g.EdgeName(i))
			}
		case Downlink:
			if g.Nodes[e.To].Kind != Ground {
				return fmt.Errorf("topo: downlink edge %s must end at a ground station", g.EdgeName(i))
			}
			if g.Nodes[e.From].Kind == Ground {
				return fmt.Errorf("topo: downlink edge %s starts at a ground station", g.EdgeName(i))
			}
		default:
			return fmt.Errorf("topo: edge %d has unknown kind %d", i, e.Kind)
		}
	}
	if _, err := g.Routes(); err != nil {
		return err
	}
	return nil
}

// Star is the paper's reference shape and the legacy simulator model:
// one aggregate Source of sats capture satellites feeding one SµDC of
// workers GPU workers over a single zero-delay aggregate ISL.
func Star(sats, workers int) *Graph {
	return &Graph{
		Nodes: []Node{
			{Name: "sats", Kind: Source, Cell: 0, Sats: sats},
			{Name: "sudc", Kind: SuDC, Cell: 0, Workers: workers},
		},
		Edges: []Edge{{From: 0, To: 1, Kind: ISL}},
	}
}

// Walker builds a Walker-style multi-plane constellation: planes orbital
// planes of satsPerPlane capture satellites each, with an SµDC of
// workersPerSuDC workers in every sudcEvery-th plane (plane 0, plane
// sudcEvery, …). Each plane is one cell. Within an SµDC plane, the
// plane's aggregate source feeds its SµDC over a zero-delay intra-plane
// ISL (the legacy star shape, per plane). When sudcEvery > 1 the planes
// are joined into a relay ring: every plane's source connects to both
// neighbor planes' sources with interPlaneDelay of propagation, and
// SµDC-less planes route their frames around the ring to the nearest
// compute plane — the cross-cell traffic the sharded simulator carries
// as timestamped messages. Ring edges inherit the config ISL rate.
func Walker(planes, satsPerPlane, workersPerSuDC, sudcEvery int, interPlaneDelay time.Duration) (*Graph, error) {
	switch {
	case planes < 1:
		return nil, errors.New("topo: walker needs ≥ 1 plane")
	case satsPerPlane < 1:
		return nil, errors.New("topo: walker needs ≥ 1 satellite per plane")
	case workersPerSuDC < 1:
		return nil, errors.New("topo: walker needs ≥ 1 worker per SµDC")
	case sudcEvery < 1 || sudcEvery > planes:
		return nil, fmt.Errorf("topo: walker sudcEvery %d out of [1, %d]", sudcEvery, planes)
	case sudcEvery > 1 && interPlaneDelay <= 0:
		return nil, errors.New("topo: walker relay rings need a positive inter-plane delay")
	}
	g := &Graph{}
	src := make([]int, planes)
	for p := 0; p < planes; p++ {
		src[p] = len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{
			Name: fmt.Sprintf("p%02d/sats", p), Kind: Source, Cell: p, Sats: satsPerPlane,
		})
		if p%sudcEvery == 0 {
			sudc := len(g.Nodes)
			g.Nodes = append(g.Nodes, Node{
				Name: fmt.Sprintf("p%02d/sudc", p), Kind: SuDC, Cell: p, Workers: workersPerSuDC,
			})
			g.Edges = append(g.Edges, Edge{From: src[p], To: sudc, Kind: ISL})
		}
	}
	if sudcEvery > 1 {
		for p := 0; p < planes; p++ {
			next := (p + 1) % planes
			g.Edges = append(g.Edges, Edge{From: src[p], To: src[next], Kind: ISL, Delay: interPlaneDelay})
			if planes > 2 {
				// With > 2 planes the reverse direction is a distinct
				// physical link; with exactly 2, p→next and next→p are
				// already both emitted by the loop.
				g.Edges = append(g.Edges, Edge{From: src[next], To: src[p], Kind: ISL, Delay: interPlaneDelay})
			}
		}
	}
	return g, nil
}

// Clusters builds dense formation-flying clusters (Pénot & Balakrishnan):
// clusters independent cells, each of satsPerCluster single-satellite
// Source nodes with their own short FSO link (fsoRate, fsoDelay) into
// the cluster's hub SµDC of workersPerHub workers. Unlike Star's one
// aggregate link, every satellite here owns a link — per-edge queueing
// and per-edge outages become visible.
func Clusters(clusters, satsPerCluster, workersPerHub int, fsoRate units.DataRate, fsoDelay time.Duration) (*Graph, error) {
	switch {
	case clusters < 1:
		return nil, errors.New("topo: need ≥ 1 cluster")
	case satsPerCluster < 1:
		return nil, errors.New("topo: need ≥ 1 satellite per cluster")
	case workersPerHub < 1:
		return nil, errors.New("topo: need ≥ 1 worker per hub")
	case fsoRate < 0:
		return nil, errors.New("topo: negative FSO rate")
	case fsoDelay < 0:
		return nil, errors.New("topo: negative FSO delay")
	}
	g := &Graph{}
	for c := 0; c < clusters; c++ {
		hub := len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{
			Name: fmt.Sprintf("c%02d/hub", c), Kind: SuDC, Cell: c, Workers: workersPerHub,
		})
		for i := 0; i < satsPerCluster; i++ {
			sat := len(g.Nodes)
			g.Nodes = append(g.Nodes, Node{
				Name: fmt.Sprintf("c%02d/sat%02d", c, i), Kind: Source, Cell: c, Sats: 1,
			})
			g.Edges = append(g.Edges, Edge{From: sat, To: hub, Kind: ISL, Rate: fsoRate, Delay: fsoDelay})
		}
	}
	return g, nil
}

// ClustersRing joins dense formation-flying clusters into an
// inter-cluster relay ring, the shape where per-cell lookahead
// diverges most from a single global window: intra-cluster FSO hops
// are short (fsoDelay) while the inter-cluster ring hops are long
// (ringDelay). Every sudcEvery-th cluster's hub is an SµDC of
// workersPerHub workers; the other clusters get a relay hub (a
// single-satellite Source) whose cluster forwards around the ring to
// the nearest compute cluster. Ring edges are emitted only in the
// directions that can carry traffic — out of relay hubs — so compute
// clusters have no outgoing cross-cell edges and their cells
// synchronize only against their upstream relays.
func ClustersRing(clusters, satsPerCluster, workersPerHub, sudcEvery int, fsoRate units.DataRate, fsoDelay, ringDelay time.Duration) (*Graph, error) {
	switch {
	case clusters < 1:
		return nil, errors.New("topo: need ≥ 1 cluster")
	case satsPerCluster < 1:
		return nil, errors.New("topo: need ≥ 1 satellite per cluster")
	case workersPerHub < 1:
		return nil, errors.New("topo: need ≥ 1 worker per hub")
	case sudcEvery < 1 || sudcEvery > clusters:
		return nil, fmt.Errorf("topo: ring sudcEvery %d out of [1, %d]", sudcEvery, clusters)
	case fsoRate < 0:
		return nil, errors.New("topo: negative FSO rate")
	case fsoDelay < 0:
		return nil, errors.New("topo: negative FSO delay")
	case sudcEvery > 1 && ringDelay <= 0:
		return nil, errors.New("topo: relay rings need a positive ring delay")
	}
	g := &Graph{}
	hub := make([]int, clusters)
	relay := make([]bool, clusters)
	for c := 0; c < clusters; c++ {
		hub[c] = len(g.Nodes)
		relay[c] = c%sudcEvery != 0
		if relay[c] {
			g.Nodes = append(g.Nodes, Node{
				Name: fmt.Sprintf("c%02d/hub", c), Kind: Source, Cell: c, Sats: 1,
			})
		} else {
			g.Nodes = append(g.Nodes, Node{
				Name: fmt.Sprintf("c%02d/hub", c), Kind: SuDC, Cell: c, Workers: workersPerHub,
			})
		}
		for i := 0; i < satsPerCluster; i++ {
			sat := len(g.Nodes)
			g.Nodes = append(g.Nodes, Node{
				Name: fmt.Sprintf("c%02d/sat%02d", c, i), Kind: Source, Cell: c, Sats: 1,
			})
			g.Edges = append(g.Edges, Edge{From: sat, To: hub[c], Kind: ISL, Rate: fsoRate, Delay: fsoDelay})
		}
	}
	for c := 0; c < clusters; c++ {
		next := (c + 1) % clusters
		if next == c {
			break // single cluster: no ring
		}
		if relay[c] {
			g.Edges = append(g.Edges, Edge{From: hub[c], To: hub[next], Kind: ISL, Delay: ringDelay})
		}
		if relay[next] {
			g.Edges = append(g.Edges, Edge{From: hub[next], To: hub[c], Kind: ISL, Delay: ringDelay})
		}
		if clusters == 2 {
			break // the single pair has been emitted in both directions
		}
	}
	return g, nil
}

// AddDownlink appends a downlink edge from the named SµDC to a new
// ground-station node (created in the SµDC's cell on first use).
func (g *Graph) AddDownlink(sudcName, groundName string, rate units.DataRate, delay time.Duration) error {
	from, ground := -1, -1
	for i, nd := range g.Nodes {
		if nd.Name == sudcName && nd.Kind == SuDC {
			from = i
		}
		if nd.Name == groundName {
			ground = i
		}
	}
	if from < 0 {
		return fmt.Errorf("topo: no SµDC named %q", sudcName)
	}
	if ground < 0 {
		ground = len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{Name: groundName, Kind: Ground, Cell: g.Nodes[from].Cell})
	} else if g.Nodes[ground].Kind != Ground {
		return fmt.Errorf("topo: node %q is not a ground station", groundName)
	}
	g.Edges = append(g.Edges, Edge{From: from, To: ground, Kind: Downlink, Rate: rate, Delay: delay})
	return nil
}
