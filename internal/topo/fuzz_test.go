package topo

// Fuzz target for graph validation: build an arbitrary small graph
// from fuzzer bytes and check Validate's postconditions — a graph that
// passes validation has no dangling edges and every Source node's
// route chain reaches an SµDC sink without cycling. Validate rejecting
// a graph is never a failure; the fuzzer hunts for graphs that pass
// validation yet break the invariants the simulator's topology
// compiler relies on.

import (
	"testing"
	"time"

	"sudc/internal/units"
)

// fuzzGraph decodes a byte string into a small graph: the first byte
// picks the node count (1..12), each node consumes two bytes (kind and
// cell/population mix), and each remaining byte pair becomes an edge.
func fuzzGraph(data []byte) *Graph {
	if len(data) == 0 {
		return &Graph{}
	}
	n := int(data[0])%12 + 1
	data = data[1:]
	g := &Graph{}
	names := [...]string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for i := 0; i < n; i++ {
		var b0, b1 byte
		if len(data) > 0 {
			b0 = data[0]
			data = data[1:]
		}
		if len(data) > 0 {
			b1 = data[0]
			data = data[1:]
		}
		nd := Node{Name: names[i], Cell: int(b1 % 4)}
		switch b0 % 3 {
		case 0:
			nd.Kind = Source
			nd.Sats = int(b1%8) + 1
		case 1:
			nd.Kind = SuDC
			nd.Workers = int(b1%8) + 1
		case 2:
			nd.Kind = Ground
		}
		g.Nodes = append(g.Nodes, nd)
	}
	for len(data) >= 2 {
		e := Edge{
			From:  int(data[0] % 16),
			To:    int(data[1] % 16),
			Delay: time.Duration(data[1]%5) * 50 * time.Millisecond,
		}
		if data[0]&0x10 != 0 {
			e.Kind = Downlink
		}
		if data[0]&0x20 != 0 {
			e.Rate = units.GbpsOf(float64(data[1]%30) + 1)
		}
		g.Edges = append(g.Edges, e)
		data = data[2:]
	}
	return g
}

func FuzzValidate(f *testing.F) {
	f.Add([]byte{2, 0, 1, 1, 2, 0, 1}) // source + sudc + one edge
	f.Add([]byte{4, 0, 0, 1, 0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{1, 1, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		if g.Validate() != nil {
			return // rejection is fine; the invariants below apply to accepted graphs
		}
		for i, e := range g.Edges {
			if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
				t.Fatalf("validated graph has dangling edge %d: %+v", i, e)
			}
		}
		routes, err := g.Routes()
		if err != nil {
			t.Fatalf("validated graph fails to route: %v", err)
		}
		if g.Cells() < 1 {
			t.Fatalf("validated graph has %d cells", g.Cells())
		}
		for i, nd := range g.Nodes {
			if nd.Kind != Source {
				continue
			}
			// Walk the route chain: it must reach an SµDC sink in at most
			// |V| hops (no cycles, no dead ends), with every hop's edge
			// departing from the node that owns it.
			u, steps := i, 0
			for g.Nodes[u].Kind != SuDC {
				ei := routes[u]
				if ei < 0 || ei >= len(g.Edges) {
					t.Fatalf("route chain from %q dead-ends at %q", nd.Name, g.Nodes[u].Name)
				}
				if g.Edges[ei].From != u {
					t.Fatalf("route edge %d does not depart node %q", ei, g.Nodes[u].Name)
				}
				u = g.Edges[ei].To
				if steps++; steps > len(g.Nodes) {
					t.Fatalf("route chain from %q cycles", nd.Name)
				}
			}
		}
	})
}
