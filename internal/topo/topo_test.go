package topo

import (
	"strings"
	"testing"
	"time"

	"sudc/internal/units"
)

func TestStarShape(t *testing.T) {
	g := Star(64, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Sats() != 64 || g.Workers() != 5 || g.Cells() != 1 {
		t.Errorf("star: sats %d workers %d cells %d, want 64/5/1", g.Sats(), g.Workers(), g.Cells())
	}
	if len(g.Edges) != 1 || g.EdgeName(0) != "sats-sudc" {
		t.Errorf("star edge = %q, want sats-sudc", g.EdgeName(0))
	}
	if _, ok := g.MinCrossDelay(); ok {
		t.Error("single-cell star reports a cross-cell delay")
	}
}

func TestWalkerShape(t *testing.T) {
	g, err := Walker(6, 32, 8, 2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 6 {
		t.Errorf("cells = %d, want 6 (one per plane)", g.Cells())
	}
	if g.Sats() != 6*32 {
		t.Errorf("sats = %d, want %d", g.Sats(), 6*32)
	}
	// SµDCs in planes 0, 2, 4.
	if g.Workers() != 3*8 {
		t.Errorf("workers = %d, want %d", g.Workers(), 3*8)
	}
	w, ok := g.MinCrossDelay()
	if !ok || w != 200*time.Millisecond {
		t.Errorf("min cross delay = %v/%v, want 200ms/true", w, ok)
	}
	// Every plane's source must route somewhere; SµDC-less planes route
	// around the ring.
	routes, err := g.Routes()
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range g.Nodes {
		if nd.Kind == Source && routes[i] < 0 {
			t.Errorf("source %s has no route", nd.Name)
		}
	}
}

func TestWalkerTwoPlanesHasNoDuplicateRingEdges(t *testing.T) {
	g, err := Walker(2, 4, 2, 2, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range g.Edges {
		name := g.EdgeName(i)
		if seen[name] {
			t.Errorf("duplicate edge %s", name)
		}
		seen[name] = true
	}
}

func TestWalkerDegenerateSingle(t *testing.T) {
	g, err := Walker(1, 64, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 1 || len(g.Edges) != 1 {
		t.Errorf("1-plane walker: cells %d edges %d, want 1/1 (the star)", g.Cells(), len(g.Edges))
	}
}

func TestWalkerRejectsBadArgs(t *testing.T) {
	cases := []struct {
		name string
		fn   func() (*Graph, error)
	}{
		{"no planes", func() (*Graph, error) { return Walker(0, 1, 1, 1, 0) }},
		{"no sats", func() (*Graph, error) { return Walker(2, 0, 1, 1, time.Second) }},
		{"no workers", func() (*Graph, error) { return Walker(2, 1, 0, 1, time.Second) }},
		{"sudcEvery too big", func() (*Graph, error) { return Walker(2, 1, 1, 3, time.Second) }},
		{"ring without delay", func() (*Graph, error) { return Walker(4, 1, 1, 2, 0) }},
	}
	for _, tc := range cases {
		if _, err := tc.fn(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestClustersShape(t *testing.T) {
	g, err := Clusters(3, 8, 4, units.GbpsOf(10), 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 3 || g.Sats() != 24 || g.Workers() != 12 {
		t.Errorf("clusters: cells %d sats %d workers %d, want 3/24/12", g.Cells(), g.Sats(), g.Workers())
	}
	if len(g.Edges) != 24 {
		t.Errorf("edges = %d, want one per satellite (24)", len(g.Edges))
	}
	if _, ok := g.MinCrossDelay(); ok {
		t.Error("independent clusters report a cross-cell delay")
	}
	if g.EdgeName(0) != "c00/sat00-c00/hub" {
		t.Errorf("edge name = %q", g.EdgeName(0))
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Graph { return Star(4, 2) }
	cases := []struct {
		name string
		mut  func(*Graph)
		want string
	}{
		{"empty", func(g *Graph) { g.Nodes = nil; g.Edges = nil }, "no nodes"},
		{"dangling edge", func(g *Graph) { g.Edges[0].To = 9 }, "dangles"},
		{"self loop", func(g *Graph) { g.Edges[0].To = 0 }, "self-loop"},
		{"dup name", func(g *Graph) { g.Nodes[1].Name = "sats" }, "duplicate"},
		{"unnamed", func(g *Graph) { g.Nodes[0].Name = "" }, "no name"},
		{"negative cell", func(g *Graph) { g.Nodes[0].Cell = -1 }, "negative cell"},
		{"gap cell", func(g *Graph) { g.Nodes[1].Cell = 2 }, "empty"},
		{"no sats", func(g *Graph) { g.Nodes[0].Sats = 0 }, "satellite"},
		{"no workers", func(g *Graph) { g.Nodes[1].Workers = 0 }, "worker"},
		{"no sudc", func(g *Graph) { g.Nodes[1].Kind = Ground; g.Edges = nil }, "no SµDC"},
		{"negative rate", func(g *Graph) { g.Edges[0].Rate = -1 }, "negative rate"},
		{"negative delay", func(g *Graph) { g.Edges[0].Delay = -time.Second }, "negative delay"},
		{"unroutable source", func(g *Graph) { g.Edges = nil }, "cannot reach"},
	}
	for _, tc := range cases {
		g := base()
		tc.mut(g)
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateRejectsZeroDelayCrossCellEdge(t *testing.T) {
	g := &Graph{
		Nodes: []Node{
			{Name: "a", Kind: Source, Cell: 0, Sats: 1},
			{Name: "b", Kind: SuDC, Cell: 1, Workers: 1},
		},
		Edges: []Edge{{From: 0, To: 1, Kind: ISL}},
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "positive delay") {
		t.Errorf("err = %v, want the conservative-lookahead complaint", err)
	}
	g.Edges[0].Delay = time.Millisecond
	if err := g.Validate(); err != nil {
		t.Errorf("with delay: %v", err)
	}
}

func TestRoutesPreferNearestSuDC(t *testing.T) {
	// A relay chain: s0 → s1 → sudc. s0 must route via s1; the route
	// edge of each source must depart from that source.
	g := &Graph{
		Nodes: []Node{
			{Name: "s0", Kind: Source, Cell: 0, Sats: 1},
			{Name: "s1", Kind: Source, Cell: 0, Sats: 1},
			{Name: "dc", Kind: SuDC, Cell: 0, Workers: 1},
		},
		Edges: []Edge{
			{From: 0, To: 1, Kind: ISL},
			{From: 1, To: 2, Kind: ISL},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	routes, err := g.Routes()
	if err != nil {
		t.Fatal(err)
	}
	if routes[0] != 0 || routes[1] != 1 {
		t.Errorf("routes = %v, want [0 1 -1]", routes)
	}
	if routes[2] != -1 {
		t.Errorf("SµDC route = %d, want -1", routes[2])
	}
}

func TestAddDownlink(t *testing.T) {
	g := Star(4, 2)
	if err := g.AddDownlink("sudc", "gs-svalbard", units.GbpsOf(2), 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 3 || g.Nodes[2].Kind != Ground {
		t.Fatalf("ground node not created: %+v", g.Nodes)
	}
	if err := g.AddDownlink("nope", "gs", 0, 0); err == nil {
		t.Error("unknown SµDC accepted")
	}
	if err := g.AddDownlink("sudc", "sats", 0, 0); err == nil {
		t.Error("non-ground target accepted")
	}
	// ISL edges must not terminate at the ground station.
	g.Edges = append(g.Edges, Edge{From: 0, To: 2, Kind: ISL})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "ground") {
		t.Errorf("ISL into ground: err = %v", err)
	}
}

func TestCellGraphWalker(t *testing.T) {
	g, err := Walker(4, 8, 5, 2, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	out, in := g.CellGraph()
	if len(out) != 4 || len(in) != 4 {
		t.Fatalf("cell tables sized %d/%d, want 4/4", len(out), len(in))
	}
	for c := 0; c < 4; c++ {
		for _, e := range out[c] {
			if e.Cell == c {
				t.Errorf("out[%d] contains a same-cell edge", c)
			}
			if e.Delay != 250*time.Millisecond {
				t.Errorf("out[%d]→%d delay %v, want 250ms", c, e.Cell, e.Delay)
			}
			// Every out edge must appear as the destination's in edge.
			found := false
			for _, r := range in[e.Cell] {
				if r.Cell == c && r.Delay == e.Delay {
					found = true
				}
			}
			if !found {
				t.Errorf("out[%d]→%d has no matching in edge", c, e.Cell)
			}
		}
		for i := 1; i < len(out[c]); i++ {
			if out[c][i-1].Cell >= out[c][i].Cell {
				t.Errorf("out[%d] not in ascending cell order: %v", c, out[c])
			}
		}
	}
}

func TestCellGraphKeepsMinDelay(t *testing.T) {
	// Two parallel physical edges between the same cell pair must
	// condense to one adjacency entry carrying the smaller delay.
	g := &Graph{
		Nodes: []Node{
			{Name: "a/sats", Kind: Source, Cell: 0, Sats: 4},
			{Name: "a/dc", Kind: SuDC, Cell: 0, Workers: 2},
			{Name: "b/dc", Kind: SuDC, Cell: 1, Workers: 2},
		},
		Edges: []Edge{
			{From: 0, To: 1, Kind: ISL},
			{From: 1, To: 2, Kind: ISL, Delay: 300 * time.Millisecond},
			{From: 1, To: 2, Kind: ISL, Delay: 100 * time.Millisecond},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	out, in := g.CellGraph()
	if len(out[0]) != 1 || out[0][0] != (CellEdge{Cell: 1, Delay: 100 * time.Millisecond}) {
		t.Errorf("out[0] = %v, want one edge to cell 1 at 100ms", out[0])
	}
	if len(in[1]) != 1 || in[1][0] != (CellEdge{Cell: 0, Delay: 100 * time.Millisecond}) {
		t.Errorf("in[1] = %v, want one edge from cell 0 at 100ms", in[1])
	}
}

func TestClustersRingShape(t *testing.T) {
	g, err := ClustersRing(6, 8, 4, 2, 10*units.Gbps, 2*time.Millisecond, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 6 {
		t.Fatalf("cells = %d, want 6", g.Cells())
	}
	// Every second cluster hosts an SµDC; relay clusters contribute
	// their hub as an extra source satellite.
	if got, want := g.Workers(), 3*4; got != want {
		t.Errorf("workers = %d, want %d", got, want)
	}
	if got, want := g.Sats(), 6*8+3; got != want {
		t.Errorf("sats = %d, want %d", got, want)
	}
	// The cell graph must be heterogeneous: intra-cluster FSO hops do
	// not appear (same cell), ring edges carry the long delay, and all
	// cross-cell delay flows through relay hubs.
	out, _ := g.CellGraph()
	crossEdges := 0
	for c := range out {
		for _, e := range out[c] {
			crossEdges++
			if e.Delay != 400*time.Millisecond {
				t.Errorf("ring edge %d→%d delay %v, want 400ms", c, e.Cell, e.Delay)
			}
			if c%2 != 1 {
				t.Errorf("SµDC cluster %d sends into the ring", c)
			}
		}
	}
	if crossEdges != 6 {
		t.Errorf("cross-cell edges = %d, want 6 (each relay to both neighbors)", crossEdges)
	}
}

func TestClustersRingSingleAndPair(t *testing.T) {
	// One cluster: no ring at all.
	g, err := ClustersRing(1, 4, 2, 1, 10*units.Gbps, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	out, _ := g.CellGraph()
	if len(out[0]) != 0 {
		t.Errorf("single cluster has cross edges: %v", out[0])
	}
	// Two clusters: exactly one relay→SµDC pair, no duplicate edges.
	g, err = ClustersRing(2, 4, 2, 2, 10*units.Gbps, time.Millisecond, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ring := 0
	for _, e := range g.Edges {
		if e.Kind == ISL && g.Nodes[e.From].Cell != g.Nodes[e.To].Cell {
			ring++
		}
	}
	if ring != 1 {
		t.Errorf("two-cluster ring has %d cross edges, want 1", ring)
	}
}

func TestClustersRingValidation(t *testing.T) {
	cases := []struct {
		name string
		err  string
		call func() (*Graph, error)
	}{
		{"no clusters", "≥ 1 cluster", func() (*Graph, error) {
			return ClustersRing(0, 4, 2, 1, units.Gbps, 0, 0)
		}},
		{"no sats", "per cluster", func() (*Graph, error) {
			return ClustersRing(2, 0, 2, 1, units.Gbps, 0, time.Second)
		}},
		{"no workers", "worker per hub", func() (*Graph, error) {
			return ClustersRing(2, 4, 0, 1, units.Gbps, 0, time.Second)
		}},
		{"sudcEvery range", "out of", func() (*Graph, error) {
			return ClustersRing(2, 4, 2, 3, units.Gbps, 0, time.Second)
		}},
		{"relay needs ring delay", "positive ring delay", func() (*Graph, error) {
			return ClustersRing(4, 4, 2, 2, units.Gbps, 0, 0)
		}},
	}
	for _, tc := range cases {
		if _, err := tc.call(); err == nil || !strings.Contains(err.Error(), tc.err) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.err)
		}
	}
}
